// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (Section 6), plus the §6.2 microbenchmarks and the ablations
// called out in DESIGN.md. Simulated quantities (virtual milliseconds,
// joules, bytes) are attached to each benchmark via ReportMetric; wall-clock
// ns/op measures the simulator itself.
package micropnp_test

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"micropnp"

	"micropnp/internal/bytecode"
	"micropnp/internal/driver"
	"micropnp/internal/dsl"
	"micropnp/internal/energy"
	"micropnp/internal/experiments"
	"micropnp/internal/hw"
	"micropnp/internal/vm"
)

// BenchmarkIdentification regenerates the hardware numbers behind
// Figures 2/3/5 and Section 6.1: a full identification scan of one
// peripheral on the default 3-channel board.
func BenchmarkIdentification(b *testing.B) {
	p, err := hw.NewPeripheral(hw.PeripheralSpec{ID: 0xad1cbe01, Bus: hw.BusADC})
	if err != nil {
		b.Fatal(err)
	}
	board := hw.NewControlBoard(hw.BoardConfig{})
	if err := board.Plug(0, p); err != nil {
		b.Fatal(err)
	}
	var res hw.IdentifyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = board.Identify()
	}
	b.ReportMetric(float64(res.Duration.Milliseconds()), "sim-ms/scan")
	b.ReportMetric(float64(res.Energy)*1e3, "sim-mJ/scan")
}

// BenchmarkFig12EnergySweep regenerates Figure 12: the full change-rate ×
// interconnect grid of the one-year energy simulation.
func BenchmarkFig12EnergySweep(b *testing.B) {
	var rows []energy.SweepPoint
	for i := 0; i < b.N; i++ {
		rows = energy.Sweep(energy.Figure12Rates(), energy.Figure12Profiles)
	}
	hourly := energy.Simulate(energy.DeploymentConfig{ChangePeriod: time.Hour, Profile: energy.ProfileADC})
	b.ReportMetric(float64(len(rows)), "points")
	b.ReportMetric(float64(hourly.USB)/float64(hourly.UPnPMean), "usb/upnp@hourly")
}

// BenchmarkTable2Footprint regenerates Table 2's measurable artefacts.
func BenchmarkTable2Footprint(b *testing.B) {
	var rows []experiments.Table2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table2()
	}
	b.ReportMetric(float64(rows[len(rows)-1].Measured), "driver-bytes-total")
}

// BenchmarkTable3Compile regenerates Table 3: compiling all four standard
// drivers from DSL source to bytecode.
func BenchmarkTable3Compile(b *testing.B) {
	srcs := make(map[hw.DeviceID]string)
	var total int
	for _, sd := range driver.StandardDrivers {
		src, err := driver.Source(sd)
		if err != nil {
			b.Fatal(err)
		}
		srcs[sd.ID] = src
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = 0
		for _, sd := range driver.StandardDrivers {
			prog, err := dsl.Compile(srcs[sd.ID], uint32(sd.ID))
			if err != nil {
				b.Fatal(err)
			}
			total += prog.Size()
		}
	}
	b.ReportMetric(float64(total), "dsl-bytes-total")
}

// vmBenchRuntime builds a machine around a tight arithmetic handler.
func vmBenchMachine(b *testing.B) *vm.Machine {
	src := `int32_t acc;

event init():
    acc = 0;

event destroy():
    pass;

event work(int32_t x):
    acc = ((x * 3 + 7) / 2 - 5) % 1000;
    acc = acc + (x << 2) - (x >> 1);
`
	prog, err := dsl.Compile(src, 1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := vm.NewMachine(prog)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkVMInstruction reproduces the §6.2 instruction-cost measurement:
// the paper reports 39.7 µs per bytecode instruction on the 16 MHz AVR; the
// emulated cost model is reported alongside our wall-clock speed.
func BenchmarkVMInstruction(b *testing.B) {
	m := vmBenchMachine(b)
	var res vm.RunResult
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = m.Run("work", []int32{int32(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	perInstr := float64(res.EmulatedTime.Microseconds()) / float64(res.Instructions)
	b.ReportMetric(float64(res.Instructions), "instr/handler")
	b.ReportMetric(perInstr, "sim-us/instr")
}

// BenchmarkStackPushPop isolates the push/pop costs (§6.2: 11.1 µs / 8.9 µs).
func BenchmarkStackPushPop(b *testing.B) {
	src := `int32_t sink;

event init():
    pass;

event destroy():
    pass;

event pushpop():
    sink = 1;
    sink = 2;
    sink = 3;
`
	prog, err := dsl.Compile(src, 2)
	if err != nil {
		b.Fatal(err)
	}
	m, err := vm.NewMachine(prog)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run("pushpop", nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tm := vm.DefaultAVRTimeModel
	b.ReportMetric(float64(tm.PushCost.Nanoseconds())/1e3, "sim-us/push")
	b.ReportMetric(float64(tm.PopCost.Nanoseconds())/1e3, "sim-us/pop")
}

// BenchmarkEventRouter measures event dispatch through the two-queue router
// (§6.2: 77.79 µs per event, linear scaling).
func BenchmarkEventRouter(b *testing.B) {
	r := vm.NewRouter()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Post(vm.Event{Name: "e", IsError: i%8 == 0})
		if _, ok := r.Next(); !ok {
			b.Fatal("router lost an event")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(vm.DefaultAVRTimeModel.Dispatch.Nanoseconds())/1e3, "sim-us/event")
}

// BenchmarkTable4Plugin regenerates Table 4: the full plug-in sequence
// (identification excluded; the network phases) on a one-hop deployment.
func BenchmarkTable4Plugin(b *testing.B) {
	var total, endToEnd time.Duration
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d, err := micropnp.NewDeployment()
		if err != nil {
			b.Fatal(err)
		}
		th, err := d.AddThing("bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := th.PlugTMP36(0); err != nil {
			b.Fatal(err)
		}
		d.Run()
		tr := th.Traces()[0]
		if !tr.Done {
			b.Fatal("plug-in did not finish")
		}
		total = tr.NetworkTotal
		endToEnd = tr.Total
	}
	b.ReportMetric(float64(total.Microseconds())/1e3, "sim-ms/plugin-net")
	b.ReportMetric(float64(endToEnd.Microseconds())/1e3, "sim-ms/plugin-e2e")
}

// BenchmarkRealtimeThroughput measures the concurrent wall-clock runtime:
// one iteration is 64 goroutines each issuing 8 reads against a 100-Thing
// realtime deployment (accelerated 4000x). ns/op is the wall time of the
// 512-read batch — long enough (milliseconds) to ride over OS timer
// granularity, since unlike the virtual-clock benchmarks this one measures
// real scheduler behaviour; reads/s is reported alongside.
func BenchmarkRealtimeThroughput(b *testing.B) {
	d, err := micropnp.NewDeployment(
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(4000),
		micropnp.WithRequestTimeout(30*time.Minute))
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	const nThings = 100
	things := make([]*micropnp.Thing, nThings)
	for i := range things {
		th, err := d.AddThing("bench")
		if err != nil {
			b.Fatal(err)
		}
		if err := th.PlugTMP36(0); err != nil {
			b.Fatal(err)
		}
		things[i] = th
	}
	cl, err := d.AddClient()
	if err != nil {
		b.Fatal(err)
	}
	d.Run()
	ctx := context.Background()
	const readers, per = 64, 8
	var failed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for g := 0; g < readers; g++ {
			g := g
			wg.Add(1)
			go func() {
				defer wg.Done()
				for k := 0; k < per; k++ {
					if _, err := cl.Read(ctx, things[(g*per+k)%nThings].Addr(), micropnp.TMP36); err != nil {
						failed.Add(1)
					}
				}
			}()
		}
		wg.Wait()
	}
	b.StopTimer()
	if failed.Load() != 0 {
		b.Fatalf("%d reads failed", failed.Load())
	}
	b.ReportMetric(float64(readers*per*b.N)/b.Elapsed().Seconds(), "reads/s")
}

// BenchmarkVirtualRead measures the hottest SDK call on a warm virtual
// deployment, one blocking read per iteration. The allocs/op column tracks
// the pooled-completion design: the reply callback writes into the pooled
// completion's result slots, so a Read costs the callback closure and the
// Reading assembly rather than per-call result cells (the ROADMAP per-Read
// allocation residual). The ReadInto variant recycles the value buffer and
// is the floor the load generators sit on.
func BenchmarkVirtualRead(b *testing.B) {
	setup := func(b *testing.B) (*micropnp.Deployment, *micropnp.Client, *micropnp.Thing) {
		d, err := micropnp.NewDeployment()
		if err != nil {
			b.Fatal(err)
		}
		th, err := d.AddThing("bench", micropnp.WithPeripherals(micropnp.TMP36))
		if err != nil {
			b.Fatal(err)
		}
		cl, err := d.AddClient()
		if err != nil {
			b.Fatal(err)
		}
		d.Run()
		// Warm the pooled-completion and scratch paths before the timer: the
		// allocs/op baseline pins the steady state, which must hold even at
		// -benchtime 1x (the CI gate's setting), not the cold first call.
		for i := 0; i < 32; i++ {
			if _, err := cl.Read(context.Background(), th.Addr(), micropnp.TMP36); err != nil {
				b.Fatal(err)
			}
		}
		return d, cl, th
	}
	b.Run("read", func(b *testing.B) {
		_, cl, th := setup(b)
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cl.Read(ctx, th.Addr(), micropnp.TMP36); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("readinto", func(b *testing.B) {
		_, cl, th := setup(b)
		ctx := context.Background()
		var buf []int32
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r, err := cl.ReadInto(ctx, th.Addr(), micropnp.TMP36, buf)
			if err != nil {
				b.Fatal(err)
			}
			buf = r.Values
		}
	})
}

// BenchmarkAblationPulseEncoding quantifies the §3 design choice: worst-case
// signal time of the 4×8-bit pulse train versus a single 16-bit pulse.
func BenchmarkAblationPulseEncoding(b *testing.B) {
	var four, single16 time.Duration
	for i := 0; i < b.N; i++ {
		four = hw.DefaultPulseCoder.TrainDuration(0xffffffff)
		sc := hw.SinglePulseCoder{TMin: hw.DefaultPulseCoder.TMin, Ratio: hw.DefaultPulseCoder.Ratio, Bits: 16}
		single16 = sc.WorstCase()
	}
	b.ReportMetric(float64(four.Microseconds())/1e3, "sim-ms/4x8bit")
	b.ReportMetric(single16.Hours(), "sim-h/1x16bit")
}

// BenchmarkAblationMulticastVsUnicast quantifies the §5 design choice:
// per-hop transmissions for discovery over SMRF multicast versus unicast
// flooding in a 31-Thing tree.
func BenchmarkAblationMulticastVsUnicast(b *testing.B) {
	var res *experiments.AblationMulticastResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.AblationMulticast(31)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MulticastTransmissions), "tx-multicast")
	b.ReportMetric(float64(res.UnicastTransmissions), "tx-unicast")
}

// BenchmarkDriverInterpretation measures end-to-end interpreted driver work:
// one BMP180 read through calibration'd compensation (the heaviest shipped
// driver), including VM, router and native library overhead.
func BenchmarkDriverInterpretation(b *testing.B) {
	repo, err := driver.StandardRepository()
	if err != nil {
		b.Fatal(err)
	}
	entry, _ := repo.Lookup(driver.IDBMP180)
	if _, err := bytecode.Decode(entry.Bytecode); err != nil {
		b.Fatal(err)
	}
	d, err := micropnp.NewDeployment()
	if err != nil {
		b.Fatal(err)
	}
	th, err := d.AddThing("bench")
	if err != nil {
		b.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		b.Fatal(err)
	}
	if err := th.PlugBMP180(0); err != nil {
		b.Fatal(err)
	}
	d.Run()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Read(ctx, th.Addr(), micropnp.BMP180); err != nil {
			b.Fatal(err)
		}
	}
}
