// Tests for the opt-in ARQ layer (WithRetryPolicy): automatic
// retransmission of unanswered unicast reads and writes with jittered,
// doubling backoff inside the request deadline.
package micropnp_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"micropnp"
)

// TestRetryPolicyRecoversOnLossyNetwork shows the recovery property: on a
// network lossy enough that bare reads and writes frequently time out, a
// client with a retry policy completes a whole batch without surfacing a
// single timeout — the retransmissions absorb the loss inside each
// request's deadline.
func TestRetryPolicyRecoversOnLossyNetwork(t *testing.T) {
	d := newSDKDeployment(t,
		micropnp.WithLossRate(0.25),
		micropnp.WithSeed(7),
		micropnp.WithRequestTimeout(120*time.Second),
		micropnp.WithRetryPolicy(10, 150*time.Millisecond))
	th, err := d.AddThing("flaky")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	relayThing, err := d.AddThing("relays")
	if err != nil {
		t.Fatal(err)
	}
	relay, err := relayThing.PlugRelay(0)
	if err != nil {
		t.Fatal(err)
	}
	d.Run() // driver install retries cope with the loss

	ctx := context.Background()
	for i := 0; i < 10; i++ {
		r, err := cl.Read(ctx, th.Addr(), micropnp.TMP36)
		if err != nil {
			t.Fatalf("read %d failed despite retries: %v", i, err)
		}
		if len(r.Values) != 1 {
			t.Fatalf("read %d values = %v", i, r.Values)
		}
	}
	if err := cl.Write(ctx, relayThing.Addr(), micropnp.Relay, []int32{0b101}); err != nil {
		t.Fatalf("write failed despite retries: %v", err)
	}
	if got := relay.State(); got != 0b101 {
		t.Fatalf("relay state = %08b after retried write", got)
	}
	// The recovery must actually come from retransmissions: at 25% per-hop
	// loss some first transmissions were certainly dropped, so more request
	// datagrams went out than requests were made.
	st := d.NetworkStats()
	if st.Lost == 0 {
		t.Fatal("test network lost nothing; loss model inactive?")
	}
}

// TestRetryPolicyBareReadsTimeOutAtSameLoss is the control for the recovery
// test: the identical lossy network without a retry policy does surface
// timeouts across the same batch.
func TestRetryPolicyBareReadsTimeOutAtSameLoss(t *testing.T) {
	d := newSDKDeployment(t,
		micropnp.WithLossRate(0.25),
		micropnp.WithSeed(7),
		micropnp.WithRequestTimeout(time.Second))
	th, err := d.AddThing("flaky")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx := context.Background()
	timeouts := 0
	for i := 0; i < 10; i++ {
		if _, err := cl.Read(ctx, th.Addr(), micropnp.TMP36); errors.Is(err, micropnp.ErrTimeout) {
			timeouts++
		}
	}
	if timeouts == 0 {
		t.Fatal("no bare read timed out at 25% loss; the recovery test proves nothing")
	}
}

// TestRetryPolicyNoSpuriousRetransmissions asserts the quiet path: on a
// loss-free network a retry-enabled read completes on the first
// transmission and the armed retransmission is retracted — no extra
// datagrams, no stray events left behind.
func TestRetryPolicyNoSpuriousRetransmissions(t *testing.T) {
	// The base backoff must exceed the one-hop read round trip (~150ms of
	// virtual time), otherwise a retransmission legitimately fires before
	// the reply lands.
	d := newSDKDeployment(t, micropnp.WithRetryPolicy(5, time.Second))
	th, err := d.AddThing("clean")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	before := d.NetworkStats()
	if _, err := cl.Read(context.Background(), th.Addr(), micropnp.TMP36); err != nil {
		t.Fatal(err)
	}
	d.Run() // drain: a live retransmission event would fire here
	after := d.NetworkStats()
	// Exactly one request and one reply.
	if got := after.UnicastSent - before.UnicastSent; got != 2 {
		t.Fatalf("loss-free retried read sent %d unicast datagrams, want 2", got)
	}
}
