// Package micropnp is the public SDK of the µPnP reproduction: a Go API for
// programming against simulated µPnP deployments — plug-and-play peripheral
// networks in the style of "µPnP: Plug and Play Peripherals for the Internet
// of Things" (Yang et al., EuroSys 2015).
//
// A Deployment bundles a simulated IPv6 mesh, a µPnP manager serving the
// standard driver repository, and a shared physical environment. Things host
// peripherals; Clients discover and use them through synchronous,
// context-aware calls that drive the discrete-event simulator under the
// hood and return real errors:
//
//	d, _ := micropnp.NewDeployment(micropnp.WithSeed(7))
//	th, _ := d.AddThing("kitchen")
//	cl, _ := d.AddClient()
//	th.PlugTMP36(0)
//	d.Run() // identification, OTA driver install, advertisement
//
//	r, err := cl.Read(context.Background(), th.Addr(), micropnp.TMP36)
//	if err != nil { ... }                     // loss and absence surface as errors
//	fmt.Println(r.Values[0], r.Units, r.At)   // 238 0.1°C 1.08s
//
// # Runtime modes
//
// A Deployment runs in one of two clock modes:
//
//   - Virtual (the default): the simulator's clock advances only while
//     calls drive it, so programs are deterministic and fast regardless of
//     how much simulated time passes. Context deadlines are translated to
//     virtual-time budgets; cancellation is honoured between simulation
//     steps.
//   - Real time (WithRealTime): the network event loop runs on its own
//     goroutine against the wall clock, handlers dispatch from a bounded
//     worker pool, and calls genuinely block on channels — so hundreds of
//     goroutines can issue requests against one deployment concurrently.
//     WithTimeScale compresses virtual time for accelerated runs.
//     Determinism is traded away; remember to Close the deployment.
//
// A Deployment and its Things and Clients are safe for concurrent use in
// both modes; only the realtime mode executes handlers in parallel.
//
// The implementation lives under internal/ (see the repository README for a
// tour); this package is the only importable surface.
package micropnp

import (
	"context"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/core"
	"micropnp/internal/energy"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/thing"
)

// Option configures a Deployment (functional options).
type Option func(*config)

type config struct {
	core    core.DeploymentConfig
	timeout time.Duration
}

// WithLossRate sets the per-hop frame loss probability (0..1).
func WithLossRate(p float64) Option {
	return func(c *config) { c.core.LossRate = p }
}

// WithProcJitter adds relative per-delivery latency noise (e.g. 0.05 for
// ±5%), modelling CSMA backoff and stack scheduling variance.
func WithProcJitter(p float64) Option {
	return func(c *config) { c.core.ProcJitter = p }
}

// WithSeed selects the random stream for loss and jitter sampling, making
// lossy runs reproducible. Zero keeps the fixed default stream.
func WithSeed(seed int64) Option {
	return func(c *config) { c.core.Seed = seed }
}

// WithStreamPeriod overrides the Things' stream production period
// (default 10 s of virtual time).
func WithStreamPeriod(d time.Duration) Option {
	return func(c *config) { c.core.StreamPeriod = d }
}

// WithRequestTimeout sets the default virtual-time deadline for requests
// issued without a context deadline (default 5 s).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.core.RequestTimeout = d; c.timeout = d }
}

// WithRealTime runs the deployment on the wall clock instead of the
// caller-driven virtual clock: the network event loop gets its own
// goroutine, timers fire as real time passes, and handlers dispatch from a
// bounded worker pool, so SDK calls genuinely block and may be issued from
// many goroutines at once. Determinism is traded away. Deployments in this
// mode hold goroutines; call Close when done.
func WithRealTime() Option {
	return func(c *config) { c.core.Realtime = true }
}

// WithTimeScale compresses virtual time relative to wall time in real-time
// mode: at scale s, one wall second covers s seconds of virtual time, so
// the paper's multi-second plug-in sequences and request deadlines play out
// s-fold accelerated. 1 (or 0) runs in real time. Ignored by the virtual
// clock, whose virtual time is unrelated to wall time.
func WithTimeScale(s float64) Option {
	return func(c *config) { c.core.TimeScale = s }
}

// WithWorkers bounds the real-time handler worker pool: at most n network
// handlers run concurrently (0 = min(GOMAXPROCS, 8)). Ignored by the
// virtual clock, which executes handlers inline on the driving goroutine.
func WithWorkers(n int) Option {
	return func(c *config) { c.core.Workers = n }
}

// WithZones partitions the deployment into n address zones, each run on its
// own event heap, RNG stream and lock domain by the zone-sharded
// conservative-PDES virtual clock (classic conservative synchronization with
// barrier rounds; see the README's "Zone-sharded simulation" section). Zones
// parallelize across cores while runs stay bit-identical per (topology,
// seed): same delivery order, same stats, same latency histograms as the
// sequential single-loop schedule of the same program. 0 or 1 keeps the
// classic single-loop virtual clock; ignored in real-time mode. Place Things
// in zones with AddThing(name, InZone(z)); the manager and clients live in
// zone 0.
func WithZones(n int) Option {
	return func(c *config) { c.core.Zones = n }
}

// WithShardWorkers bounds the sharded clock's per-round parallelism: 1
// forces the sequential single-loop schedule (bit-identical to any parallel
// run — the determinism cross-check mode), 0 means GOMAXPROCS. In real-time
// mode the same knob bounds the handler worker pool (see WithWorkers).
func WithShardWorkers(n int) Option {
	return func(c *config) { c.core.Workers = n }
}

// WithGlobalLookahead pins the zone-sharded clock to the single global
// one-hop lookahead quantum instead of the per-lane-pair lookahead matrix it
// derives from the cross-zone topology by default. The matrix lets zones far
// apart in the routing tree run many quanta ahead of each other per barrier
// round (fewer rounds, better scaling) while runs stay bit-identical across
// worker counts; the global quantum is the conservative pre-matrix behaviour
// and the comparison knob (the upnp-load/upnp-sim -lookahead flag). Ignored
// off the sharded clock.
func WithGlobalLookahead() Option {
	return func(c *config) { c.core.GlobalLookahead = true }
}

// WithRetryPolicy enables automatic retransmission of unanswered unicast
// reads and writes (the ARQ layer the paper defers): when no reply arrived
// baseBackoff of virtual time after a transmission, the request is resent,
// up to attempts extra transmissions with doubling backoff and ±50% jitter,
// all inside the request's overall deadline. Lost requests then surface as
// ErrTimeout only after every transmission went unanswered. Multicast
// discoveries and stream subscriptions are never retransmitted.
func WithRetryPolicy(attempts int, baseBackoff time.Duration) Option {
	return func(c *config) {
		c.core.Retry = client.RetryPolicy{Attempts: attempts, BaseBackoff: baseBackoff}
	}
}

// WithCompiledDrivers selects the driver execution engine. Drivers compile
// to a pre-decoded block-threaded form at install time (the default);
// passing false pins the reference bytecode interpreter instead. The two
// engines are transcript-identical — same results, traps, signal order and
// emulated time — so this only trades execution speed, never behaviour;
// false is the escape hatch and the differential-testing knob (the
// upnp-sim/upnp-load -interp flag).
func WithCompiledDrivers(enabled bool) Option {
	return func(c *config) { c.core.InterpDrivers = !enabled }
}

// WithManagers stands the deployment up with n manager instances behind the
// well-known anycast address instead of one (Section 5 network-level
// redundancy): every management request and OTA driver install routes to the
// nearest live instance, and when one fails (FailManager) traffic re-routes
// to the survivors — in-flight driver installs retry through the Things' ARQ
// policy, pending management requests migrate. n < 2 keeps the single
// border-router manager; more instances can be added later with AddManager.
func WithManagers(n int) Option {
	return func(c *config) { c.core.Managers = n }
}

// WithSite places the deployment on its own 48-bit network prefix: site 0
// (the default) is the classic 2001:db8::/48, site k occupies
// 2001:db8:k::/48 — manager, anycast, Things and multicast groups included.
// Deployments federated behind one Fleet must use distinct sites so a
// Thing's address identifies its deployment.
func WithSite(site int) Option {
	return func(c *config) { c.core.Site = site }
}

// Deployment is a complete simulated µPnP network: one manager at the
// border-router position serving the standard driver repository, plus the
// Things and Clients added to it. A Deployment is safe for concurrent use:
// in virtual mode concurrent blocked calls elect one goroutine to drive the
// simulator while the others park on their completion channels; in
// real-time mode every call simply blocks until its reply arrives.
type Deployment struct {
	core     *core.Deployment
	timeout  time.Duration
	realtime bool
	scale    float64

	// pumpMu elects the single virtual-mode simulator driver; stepMu/stepCh
	// broadcast simulation progress to parked waiters (the channel is closed
	// and replaced on each broadcast). waiters counts goroutines that may
	// park on stepCh, so the driver skips the broadcast entirely in the
	// common single-goroutine case. driverGid records the driver's
	// goroutine, letting SDK calls made from inside a simulator-driven
	// callback (OnReading, OnAdvert, ScheduleAfter closures) detect the
	// reentrancy and pump directly instead of parking on themselves.
	pumpMu    sync.Mutex
	stepMu    sync.Mutex
	stepCh    chan struct{}
	waiters   atomic.Int32
	driverGid atomic.Int64

	// conduct publishes the active Conduct call's strand registry; SDK calls
	// made on a strand goroutine divert into the baton protocol instead of
	// the driver election (see conduct.go).
	conduct atomic.Pointer[conductor]

	// closeCh unblocks realtime calls parked in await when the deployment
	// is closed (their expiry events die with the clock).
	closeCh   chan struct{}
	closeOnce sync.Once
}

// NewDeployment builds a deployment.
func NewDeployment(opts ...Option) (*Deployment, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	d, err := core.NewDeployment(cfg.core)
	if err != nil {
		return nil, err
	}
	timeout := cfg.timeout
	if timeout <= 0 {
		timeout = client.DefaultTimeout
	}
	scale := cfg.core.TimeScale
	if scale <= 0 {
		scale = 1
	}
	return &Deployment{
		core:     d,
		timeout:  timeout,
		realtime: cfg.core.Realtime,
		scale:    scale,
		stepCh:   make(chan struct{}),
		closeCh:  make(chan struct{}),
	}, nil
}

// Close releases the deployment's runtime resources: in real-time mode it
// stops the network event loop and the worker pool (a handler already
// running finishes first) and discards scheduled events; in virtual mode
// only the bookkeeping applies. Close is idempotent. Calls blocked on
// in-flight requests when Close runs fail with ErrClosed (their expiry
// events die with the clock, so they could never complete).
func (d *Deployment) Close() {
	d.closeOnce.Do(func() { close(d.closeCh) })
	d.core.Close()
}

// Realtime reports whether the deployment runs on the wall clock.
func (d *Deployment) Realtime() bool { return d.realtime }

// ThingOption configures one AddThing call (functional options).
type ThingOption func(*thingConfig)

type thingConfig struct {
	zone   uint16
	parent *Thing
	devs   []DeviceID
}

// InZone places the Thing's address in the given zone. On a sharded
// deployment (WithZones) its deliveries and timers then run on that zone's
// event lane.
func InZone(zone uint16) ThingOption {
	return func(c *thingConfig) { c.zone = zone }
}

// Under attaches the Thing below an existing Thing in the routing tree,
// enabling multi-hop topologies; without it the Thing sits one hop from the
// manager. Combining Under with InZone keeps a zone's Things in a common
// subtree, so intra-zone traffic stays on one event lane.
func Under(parent *Thing) ThingOption {
	return func(c *thingConfig) { c.parent = parent }
}

// WithPeripherals plugs the given peripherals into successive channels
// (device i on channel i) as part of AddThing. Remember to Run the
// deployment afterwards so the plug-in sequences play out. Peripherals whose
// device-side handle matters (the RFID reader's card presenter, the relay
// bank's output observer) are better plugged explicitly via PlugRFID /
// PlugRelay, which return the handle.
func WithPeripherals(devs ...DeviceID) ThingOption {
	return func(c *thingConfig) { c.devs = append(c.devs, devs...) }
}

// AddThing creates a Thing. With no options it sits one hop from the
// manager with no peripherals — configure placement and initial peripherals
// with InZone, Under and WithPeripherals:
//
//	th, _ := d.AddThing("kitchen", micropnp.InZone(3), micropnp.Under(root),
//		micropnp.WithPeripherals(micropnp.TMP36, micropnp.Relay))
func (d *Deployment) AddThing(name string, opts ...ThingOption) (*Thing, error) {
	var cfg thingConfig
	for _, o := range opts {
		o(&cfg)
	}
	var parent *netsim.Node
	if cfg.parent != nil {
		parent = cfg.parent.th.Node()
	}
	var (
		th  *thing.Thing
		err error
	)
	if cfg.zone != 0 {
		th, err = d.core.AddThingInZone(name, cfg.zone, parent)
	} else if parent != nil {
		th, err = d.core.AddThingAt(name, parent)
	} else {
		th, err = d.core.AddThing(name)
	}
	if err != nil {
		return nil, err
	}
	t := &Thing{d: d, th: th}
	for ch, dev := range cfg.devs {
		if err := t.plug(ch, dev); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// AddThingUnder creates a Thing attached below an existing Thing in the
// routing tree.
//
// Deprecated: use AddThing(name, Under(parent)).
func (d *Deployment) AddThingUnder(name string, parent *Thing) (*Thing, error) {
	return d.AddThing(name, Under(parent))
}

// AddThingInZone creates a Thing whose address carries the given zone, one
// hop from the manager.
//
// Deprecated: use AddThing(name, InZone(zone)).
func (d *Deployment) AddThingInZone(name string, zone uint16) (*Thing, error) {
	return d.AddThing(name, InZone(zone))
}

// AddThingInZoneUnder creates a Thing in a zone attached below an existing
// Thing in the routing tree.
//
// Deprecated: use AddThing(name, InZone(zone), Under(parent)).
func (d *Deployment) AddThingInZoneUnder(name string, zone uint16, parent *Thing) (*Thing, error) {
	return d.AddThing(name, InZone(zone), Under(parent))
}

// AddZonedThing creates a Thing placed in a location zone with the
// structured namespace enabled (the Section 9 extensions): clients can then
// discover its peripherals by device class and by physical location.
func (d *Deployment) AddZonedThing(name string, zone uint16) (*Thing, error) {
	th, err := d.core.AddZonedThing(name, zone)
	if err != nil {
		return nil, err
	}
	return &Thing{d: d, th: th}, nil
}

// AddClient creates a client one hop from the manager.
func (d *Deployment) AddClient() (*Client, error) {
	cl, err := d.core.AddClient()
	if err != nil {
		return nil, err
	}
	return &Client{d: d, cl: cl}, nil
}

// AddClientUnder creates a client attached below a Thing in the routing
// tree.
func (d *Deployment) AddClientUnder(parent *Thing) (*Client, error) {
	cl, err := d.core.AddClientAt(parent.th.Node())
	if err != nil {
		return nil, err
	}
	return &Client{d: d, cl: cl}, nil
}

// Run drives the network until idle — use it after plugging peripherals to
// let the plug-in sequence (identification, driver install, advertisement)
// play out. In real-time mode it blocks until the runtime has drained
// (nothing scheduled, queued or running); do not call it while a stream is
// active in that mode — active streams reschedule forever and never drain.
// Use RunFor to let a fixed span elapse, or Quiesce to drain with a bound.
func (d *Deployment) Run() {
	if d.realtime {
		d.core.Run()
		return
	}
	d.pump(d.core.Run)
}

// RunFor lets a span of virtual time elapse: in virtual mode it drives the
// network inline, in real-time mode it sleeps until the span has passed on
// the (scaled) wall clock. Use it for streams, which reschedule themselves
// and never go idle.
func (d *Deployment) RunFor(span time.Duration) {
	if d.realtime {
		d.core.RunFor(span)
		return
	}
	d.pump(func() { d.core.RunFor(span) })
}

// Quiesce drives the network until idle or until horizon of virtual time has
// elapsed, whichever comes first, and reports whether it went idle. It is
// the bounded drain Run cannot provide while subscriptions are active:
// streams reschedule themselves forever, so a deployment with live streams
// never goes idle — Quiesce lets their traffic (and everything else in
// flight) play out for at most the horizon and then returns, leaving the
// streams ticking. With no streams active it returns true as soon as the
// in-flight cascade drained, which may be well before the horizon.
func (d *Deployment) Quiesce(horizon time.Duration) bool {
	if d.realtime {
		return d.core.Quiesce(horizon)
	}
	var idle bool
	d.pump(func() { idle = d.core.Quiesce(horizon) })
	return idle
}

// pump runs a virtual-mode drive function as the elected driver: it takes
// the driver lock, records its goroutine so nested SDK calls from inside
// handlers pump reentrantly instead of deadlocking, and broadcasts progress
// to parked await waiters afterwards. Called from a handler the current
// driver is running, it drives the core directly — the election is already
// held further up this goroutine's stack.
func (d *Deployment) pump(drive func()) {
	self := gid()
	if d.driverGid.Load() == self {
		drive()
		return
	}
	d.waiters.Add(1)
	defer d.waiters.Add(-1)
	d.pumpMu.Lock()
	d.driverGid.Store(self)
	drive()
	d.driverGid.Store(0)
	d.pumpMu.Unlock()
	d.broadcastStep()
}

// Now returns the current virtual time.
func (d *Deployment) Now() time.Duration { return d.core.Network.Now() }

// ScheduleAfter runs fn after a span of virtual time. Use it to stage
// device-side stimuli — card swipes, environment changes — that should
// occur while a synchronous call is driving the simulator.
func (d *Deployment) ScheduleAfter(delay time.Duration, fn func()) {
	d.core.Network.Schedule(delay, fn)
}

// SetEnvironment updates the shared physical conditions every sensor
// observes: temperature (°C), relative humidity (%) and pressure (Pa).
func (d *Deployment) SetEnvironment(tempC, humidityRH, pressurePa float64) {
	d.core.Env.Set(tempC, humidityRH, pressurePa)
}

// Environment returns the current physical conditions.
func (d *Deployment) Environment() (tempC, humidityRH, pressurePa float64) {
	return d.core.Env.Snapshot()
}

// SetAcceleration updates the acceleration vector (in g) accelerometers
// observe.
func (d *Deployment) SetAcceleration(x, y, z float64) {
	d.core.Env.SetAcceleration(x, y, z)
}

// ManagerUploads returns the number of driver uploads the managers served —
// a cached driver is uploaded at most once per Thing.
func (d *Deployment) ManagerUploads() int { return d.core.Uploads() }

// ManagerCount returns the number of manager instances in the deployment
// (failed ones included — a crashed manager's node stays in the routing
// tree).
func (d *Deployment) ManagerCount() int { return len(d.core.Managers()) }

// AddManager stands up an additional manager instance behind the
// deployment's anycast address (the paper's Section 5 redundancy) and
// returns its index for use with FailManager. Things keep addressing the
// anycast; the network routes each request to the nearest live manager.
func (d *Deployment) AddManager() (int, error) {
	if _, err := d.core.AddManager(); err != nil {
		return 0, err
	}
	return len(d.core.Managers()) - 1, nil
}

// FailManager crashes manager i for fault injection: it leaves the anycast
// group, unbinds its management port (requests reaching it drop as
// NoHandler) and stops sending, though its node keeps relaying frames for
// the subtree beneath it. Pending manager-side requests migrate to a
// surviving manager with a fresh deadline; if none survives they fail with
// ErrTimeout. Things with driver installs in flight recover on their own:
// the install request is retransmitted to the anycast on the ARQ schedule
// and lands on the nearest survivor.
func (d *Deployment) FailManager(i int) error { return d.core.FailManager(i) }

// NetworkStats is a snapshot of network activity counters.
type NetworkStats struct {
	UnicastSent   int
	MulticastSent int
	// Transmissions counts per-hop frame transmissions, the energy-relevant
	// quantity.
	Transmissions int
	Delivered     int
	Lost          int
	// NoHandler counts datagrams dropped at a node because no handler was
	// bound to the destination port.
	NoHandler int

	// Sharded-clock barrier telemetry; zero on non-sharded deployments.
	// All counts are deterministic per schedule, identical across worker
	// counts.
	ShardLanes int // zone lanes (0 = not sharded)
	// ShardRounds counts barrier rounds; ShardEvents the events executed in
	// them, so ShardEvents/ShardRounds is the mean round batch size the
	// lookahead windows achieved.
	ShardRounds int64
	ShardEvents int64
	// ShardLaneRounds sums each round's active-lane count;
	// ShardLaneRounds/(ShardRounds×ShardLanes) is the mean lane occupancy.
	ShardLaneRounds int64
	// ShardCrossMerged counts cross-lane events merged at barriers (summed
	// outbox merge sizes).
	ShardCrossMerged int64
	// ShardCausalityViolations counts merged cross-lane events timestamped
	// before their destination lane's clock — zero when the lookahead bounds
	// are sound.
	ShardCausalityViolations int64
}

// NetworkStats returns a snapshot of the network counters.
func (d *Deployment) NetworkStats() NetworkStats {
	s := d.core.Network.Stats()
	ns := NetworkStats{
		UnicastSent:   s.UnicastSent,
		MulticastSent: s.MulticastSent,
		Transmissions: s.Transmissions,
		Delivered:     s.Delivered,
		Lost:          s.Lost,
		NoHandler:     s.NoHandler,
	}
	if ss, ok := d.core.Network.ShardStats(); ok {
		lanes, _, _ := d.core.Network.Sharded()
		ns.ShardLanes = lanes
		ns.ShardRounds = ss.Rounds
		ns.ShardEvents = ss.Events
		ns.ShardLaneRounds = ss.LaneRounds
		ns.ShardCrossMerged = ss.CrossMerged
		ns.ShardCausalityViolations = ss.CausalityViolations
	}
	return ns
}

// DiscoverDrivers asks a Thing for its installed drivers through the
// manager (protocol messages 6/7).
func (d *Deployment) DiscoverDrivers(ctx context.Context, th *Thing) ([]DeviceID, error) {
	var ids []DeviceID
	cpl, err := d.await(ctx, func(timeout time.Duration, cpl *completion) (retract func()) {
		return d.core.Mgmt().DiscoverDrivers(th.Addr(), timeout, func(got []hw.DeviceID, err error) {
			for _, id := range got {
				ids = append(ids, DeviceID(id))
			}
			cpl.err = err
			cpl.complete()
		})
	})
	if err != nil {
		return nil, err
	}
	derr := cpl.err
	cpl.recycle()
	return ids, derr
}

// RemoveDriver removes a driver from a Thing through the manager (protocol
// messages 8/9), stopping any runtime serving it.
func (d *Deployment) RemoveDriver(ctx context.Context, th *Thing, id DeviceID) error {
	cpl, err := d.await(ctx, func(timeout time.Duration, cpl *completion) (retract func()) {
		return d.core.Mgmt().RemoveDriver(th.Addr(), hw.DeviceID(id), timeout, func(err error) {
			cpl.err = err
			cpl.complete()
		})
	})
	if err != nil {
		return err
	}
	rerr := cpl.err
	cpl.recycle()
	return rerr
}

// await is the synchronous-call harness every SDK request goes through: it
// translates the context into a virtual-time budget, lets start register
// the request (whose completion callback must invoke cpl.complete, exactly
// once, from whichever goroutine the network delivers on), then blocks
// until completion or context cancellation. start returns a retract
// function (possibly nil) that withdraws the registered request without
// firing its callback; await invokes it whenever it returns without
// completion, so a cancelled call's pending-request entry is reclaimed
// immediately instead of lingering until its deadline expires.
//
// In real-time mode the block is a plain channel wait — the event loop and
// worker pool advance the network, and the registration's expiry timer
// guarantees completion. In virtual mode nothing advances the clock unless
// a caller does, so the blocked goroutines elect a driver: whoever acquires
// pumpMu steps the simulator (completing everyone's requests, not just its
// own) and broadcasts progress; the rest park until the next step or their
// own completion. Every request arms a virtual-time expiry event at
// registration, so a drained queue without completion cannot happen in
// practice; it is reported as a timeout defensively.
// On success await returns the fired completion WITHOUT recycling it: the
// caller harvests the result slots (vals, err, at) the callback filled and
// then calls recycle itself. On error the completion is abandoned to the GC
// (see recycle's comment) and the returned completion is nil.
func (d *Deployment) await(ctx context.Context, start func(timeout time.Duration, cpl *completion) (retract func())) (*completion, error) {
	timeout, err := d.timeoutFrom(ctx)
	if err != nil {
		return nil, err
	}
	cpl := completionPool.Get().(*completion)
	retract := start(timeout, cpl)
	if retract == nil {
		retract = noRetract // avoids nil checks at every abandonment site
	}
	if d.realtime {
		select {
		case <-cpl.ch:
			return cpl, nil
		case <-ctx.Done():
			retract()
			return nil, ctx.Err()
		case <-d.closeCh:
			// The clock died with our expiry event still queued; nothing
			// can complete this request anymore.
			retract()
			return nil, ErrClosed
		}
	}
	self := gid()
	// A conducted strand never joins the driver election: the Conduct
	// orchestrator owns the simulator and resumes the strand when its
	// completion has fired.
	if s := d.conductedStrand(self); s != nil {
		if err := s.parkAwait(cpl); err != nil {
			return nil, err
		}
		return cpl, nil
	}
	// Count ourselves as a potential parker BEFORE sampling the progress
	// channel: drivers check the count after releasing pumpMu, so a failed
	// TryLock guarantees the holder will observe us and broadcast.
	d.waiters.Add(1)
	defer d.waiters.Add(-1)
	for {
		select {
		case <-cpl.ch:
			return cpl, nil
		default:
		}
		if err := ctx.Err(); err != nil {
			retract()
			return nil, err
		}
		// Sample the progress channel BEFORE trying to become the driver:
		// every broadcast after this point closes the sampled channel, so a
		// driver finishing between our failed TryLock and our wait cannot
		// strand us on a channel nobody closes.
		progress := d.stepChan()
		if d.pumpMu.TryLock() {
			d.driverGid.Store(self)
			stepped := d.core.Network.Step()
			d.driverGid.Store(0)
			d.pumpMu.Unlock()
			// Broadcast AFTER releasing pumpMu: a goroutine whose TryLock
			// failed while we held the lock sampled its channel before this
			// point, and this broadcast closes it.
			d.broadcastStep()
			if !stepped {
				select {
				case <-cpl.ch:
					return cpl, nil
				default:
					retract()
					return nil, ErrTimeout
				}
			}
		} else if d.driverGid.Load() == self {
			// We ARE the driver, reentered from inside a handler it is
			// running (an SDK call in an OnReading/OnAdvert callback or a
			// ScheduleAfter closure). Pump directly, as the pre-runtime
			// SDK's inline Step loop did — parking would deadlock on
			// ourselves.
			if !d.core.Network.Step() {
				select {
				case <-cpl.ch:
					return cpl, nil
				default:
					retract()
					return nil, ErrTimeout
				}
			}
		} else {
			select {
			case <-cpl.ch:
				return cpl, nil
			case <-ctx.Done():
				retract()
				return nil, ctx.Err()
			case <-progress:
			}
		}
	}
}

// noRetract is the shared no-op for registrations with nothing to withdraw.
func noRetract() {}

// completion is the once-only done signal of one await, drawn from a pool:
// the registered callback invokes complete(), which wins the CAS and sends
// the single token into the cap-1 channel; the await consumes the token and
// recycles the completion. Passing the *completion itself into start (rather
// than the bound method value cpl.complete) keeps the hot path free of the
// method-value closure allocation.
type completion struct {
	ch    chan struct{} // cap 1; carries the single completion token
	fired atomic.Bool

	// Result slots the registered callback fills before complete(): the
	// request's reply values, its application-level error, and the virtual
	// time the reply landed. Carrying results here instead of in variables
	// captured by a per-call closure keeps the hot read path at the pooled
	// completion's allocation instead of a fresh heap cell per call; the
	// awaiting goroutine harvests them after await hands the completion back
	// and then recycles it.
	vals []int32
	err  error
	at   time.Duration
}

var completionPool = sync.Pool{New: func() any {
	return &completion{ch: make(chan struct{}, 1)}
}}

func (c *completion) complete() {
	if c.fired.CompareAndSwap(false, true) {
		c.ch <- struct{}{}
	}
}

// recycle returns a completion whose token has been consumed to the pool.
// Abandoned completions (context cancellation, deployment close, the
// defensive drained-queue timeout) are deliberately NOT recycled: the
// registered callback may already be mid-dispatch and fire complete() after
// the caller gave up — retract only prevents callbacks that have not started
// — and a recycled completion would deliver that stale token to an unrelated
// call. Those rare abandonments are left to the GC.
func (c *completion) recycle() {
	c.fired.Store(false)
	c.vals = nil
	c.err = nil
	c.at = 0
	completionPool.Put(c)
}

// gid returns the current goroutine's id (parsed from runtime.Stack; there
// is no cheaper portable way). Called once per blocking SDK call, not per
// simulation step.
func gid() int64 {
	var buf [64]byte
	n := runtime.Stack(buf[:], false)
	// The header is "goroutine <id> [...".
	s := buf[len("goroutine "):n]
	var id int64
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// stepChan returns the channel closed at the next simulation progress
// broadcast.
func (d *Deployment) stepChan() <-chan struct{} {
	d.stepMu.Lock()
	defer d.stepMu.Unlock()
	return d.stepCh
}

// broadcastStep wakes every parked waiter by closing the current progress
// channel and installing a fresh one. Every caller is itself registered in
// d.waiters, so a count of 1 means no one else can be parked (a goroutine
// registers BEFORE sampling the channel, and the sequentially consistent
// atomics make its registration visible to the driver's post-step load) —
// the common single-goroutine virtual program pays one atomic load per
// step and the hot loop stays allocation-free.
func (d *Deployment) broadcastStep() {
	if d.waiters.Load() <= 1 {
		return
	}
	d.stepMu.Lock()
	close(d.stepCh)
	d.stepCh = make(chan struct{})
	d.stepMu.Unlock()
}

// timeoutFrom translates a context deadline into a virtual-time budget: a
// context with a deadline t from now bounds the request to t of virtual
// time (scaled by the time-scale factor in real-time mode, so the virtual
// expiry and the wall deadline coincide). Without a deadline the default
// virtual-time timeout applies. An already-expired context fails
// immediately.
//
// Note the wall-clock sampling: the budget is time.Until(deadline) at call
// time, so runs using context deadlines close to the actual virtual reply
// latency are not bit-for-bit reproducible. Callers that need the fully
// deterministic behaviour the virtual clock otherwise guarantees should use
// WithRequestTimeout (a pure virtual-time bound) and plain contexts.
func (d *Deployment) timeoutFrom(ctx context.Context) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return 0, context.DeadlineExceeded
		}
		if d.realtime {
			rem = time.Duration(float64(rem) * d.scale)
		}
		return rem, nil
	}
	return d.timeout, nil
}

// USBHostEnergy returns the energy (in joules) an always-on USB host
// controller would consume over a span — the baseline the paper's Section 6
// energy argument compares µPnP's on-demand identification against.
func USBHostEnergy(span time.Duration) float64 {
	return float64(energy.DefaultUSBHost.Energy(span))
}

// ---------------------------------------------------------------------------
// Things

// PluginTrace records the timing and energy of one peripheral plug-in
// event: identification, address generation, group join, driver request and
// install, and advertisement.
type PluginTrace = thing.PluginTrace

// BoardStats counts control-board activity: interrupts, identification
// scans, active time and energy.
type BoardStats = hw.BoardStats

// Thing is one µPnP Thing: an embedded device hosting peripherals behind a
// µPnP control board.
type Thing struct {
	d  *Deployment
	th *thing.Thing
}

// Addr returns the Thing's unicast IPv6 address.
func (t *Thing) Addr() netip.Addr { return t.th.Addr() }

// Traces returns the plug-in traces recorded so far.
func (t *Thing) Traces() []*PluginTrace { return t.th.Traces() }

// InstalledDrivers lists the locally installed driver identifiers.
func (t *Thing) InstalledDrivers() []DeviceID {
	ids := t.th.InstalledDrivers()
	out := make([]DeviceID, len(ids))
	for i, id := range ids {
		out[i] = DeviceID(id)
	}
	return out
}

// BoardStats returns the control board's activity counters.
func (t *Thing) BoardStats() BoardStats { return t.th.Board().Stats() }

// Unplug disconnects the peripheral on a channel; the Thing tears down its
// driver and advertises the change.
func (t *Thing) Unplug(channel int) error { return t.th.Unplug(channel) }

// StopStream terminates an active stream served by this Thing, notifying
// subscribers.
func (t *Thing) StopStream(id DeviceID) { t.th.StopStream(hw.DeviceID(id)) }

// Deployment returns the deployment the Thing belongs to — handy when
// Things from several deployments mingle behind one Fleet.
func (t *Thing) Deployment() *Deployment { return t.d }

// InstalledDriverBytes returns a copy of the driver artefact installed for
// a device type, or nil when none is installed. Failover tests use it to
// assert an install completed through a manager crash is byte-identical to
// the no-failure run's.
func (t *Thing) InstalledDriverBytes(id DeviceID) []byte {
	return t.th.InstalledDriverBytes(hw.DeviceID(id))
}

// plug installs the peripheral for dev on a channel, discarding any
// device-side handle (WithPeripherals path).
func (t *Thing) plug(channel int, dev DeviceID) error {
	switch dev {
	case TMP36:
		return t.PlugTMP36(channel)
	case HIH4030:
		return t.PlugHIH4030(channel)
	case BMP180:
		return t.PlugBMP180(channel)
	case ADXL345:
		return t.PlugADXL345(channel)
	case ID20LA:
		_, err := t.PlugRFID(channel)
		return err
	case Relay:
		_, err := t.PlugRelay(channel)
		return err
	default:
		return fmt.Errorf("micropnp: no peripheral model for device %v", dev)
	}
}

// PlugTMP36 plugs a TMP36 temperature sensor (ADC) into a channel.
func (t *Thing) PlugTMP36(channel int) error { return t.d.core.PlugTMP36(t.th, channel) }

// PlugHIH4030 plugs an HIH-4030 humidity sensor (ADC) into a channel.
func (t *Thing) PlugHIH4030(channel int) error { return t.d.core.PlugHIH4030(t.th, channel) }

// PlugBMP180 plugs a BMP180 pressure sensor (I²C) into a channel.
func (t *Thing) PlugBMP180(channel int) error { return t.d.core.PlugBMP180(t.th, channel) }

// PlugADXL345 plugs an ADXL345 accelerometer (SPI) into a channel.
func (t *Thing) PlugADXL345(channel int) error { return t.d.core.PlugADXL345(t.th, channel) }

// RFIDReader is the device-side handle of a plugged ID-20LA RFID reader:
// present cards to it and read them remotely.
type RFIDReader struct {
	dev *core.RFIDDevice
}

// PresentCard simulates a card with the given 10-hex-digit identifier
// entering the reader's field.
func (r *RFIDReader) PresentCard(cardID string) error { return r.dev.PresentCard(cardID) }

// PlugRFID plugs an ID-20LA RFID reader (UART) into a channel and returns
// the handle for presenting cards.
func (t *Thing) PlugRFID(channel int) (*RFIDReader, error) {
	dev, err := t.d.core.PlugRFID(t.th, channel)
	if err != nil {
		return nil, err
	}
	return &RFIDReader{dev: dev}, nil
}

// RelayBank is the device-side handle of a plugged PCF8574 relay bank:
// observe the outputs the network writes set.
type RelayBank struct {
	dev *core.RelayDevice
}

// State returns the relay outputs (bit i = relay i energised).
func (r *RelayBank) State() byte { return r.dev.State() }

// PlugRelay plugs a PCF8574 relay bank (I²C) into a channel and returns the
// handle for observing the outputs.
func (t *Thing) PlugRelay(channel int) (*RelayBank, error) {
	dev, err := t.d.core.PlugRelay(t.th, channel)
	if err != nil {
		return nil, err
	}
	return &RelayBank{dev: dev}, nil
}
