// Package micropnp is the public SDK of the µPnP reproduction: a Go API for
// programming against simulated µPnP deployments — plug-and-play peripheral
// networks in the style of "µPnP: Plug and Play Peripherals for the Internet
// of Things" (Yang et al., EuroSys 2015).
//
// A Deployment bundles a simulated IPv6 mesh, a µPnP manager serving the
// standard driver repository, and a shared physical environment. Things host
// peripherals; Clients discover and use them through synchronous,
// context-aware calls that drive the discrete-event simulator under the
// hood and return real errors:
//
//	d, _ := micropnp.NewDeployment(micropnp.WithSeed(7))
//	th, _ := d.AddThing("kitchen")
//	cl, _ := d.AddClient()
//	th.PlugTMP36(0)
//	d.Run() // identification, OTA driver install, advertisement
//
//	r, err := cl.Read(context.Background(), th.Addr(), micropnp.TMP36)
//	if err != nil { ... }                     // loss and absence surface as errors
//	fmt.Println(r.Values[0], r.Units, r.At)   // 238 0.1°C 1.08s
//
// All timing is virtual: the simulator's clock advances only while calls
// drive it, so programs are deterministic and fast regardless of how much
// simulated time passes. Context deadlines are translated to virtual-time
// budgets; cancellation is honoured between simulation steps.
//
// The implementation lives under internal/ (see the repository README for a
// tour); this package is the only importable surface.
package micropnp

import (
	"context"
	"net/netip"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/core"
	"micropnp/internal/energy"
	"micropnp/internal/hw"
	"micropnp/internal/thing"
)

// Option configures a Deployment (functional options).
type Option func(*config)

type config struct {
	core    core.DeploymentConfig
	timeout time.Duration
}

// WithLossRate sets the per-hop frame loss probability (0..1).
func WithLossRate(p float64) Option {
	return func(c *config) { c.core.LossRate = p }
}

// WithProcJitter adds relative per-delivery latency noise (e.g. 0.05 for
// ±5%), modelling CSMA backoff and stack scheduling variance.
func WithProcJitter(p float64) Option {
	return func(c *config) { c.core.ProcJitter = p }
}

// WithSeed selects the random stream for loss and jitter sampling, making
// lossy runs reproducible. Zero keeps the fixed default stream.
func WithSeed(seed int64) Option {
	return func(c *config) { c.core.Seed = seed }
}

// WithStreamPeriod overrides the Things' stream production period
// (default 10 s of virtual time).
func WithStreamPeriod(d time.Duration) Option {
	return func(c *config) { c.core.StreamPeriod = d }
}

// WithRequestTimeout sets the default virtual-time deadline for requests
// issued without a context deadline (default 5 s).
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) { c.core.RequestTimeout = d; c.timeout = d }
}

// Deployment is a complete simulated µPnP network: one manager at the
// border-router position serving the standard driver repository, plus the
// Things and Clients added to it.
type Deployment struct {
	core    *core.Deployment
	timeout time.Duration
}

// NewDeployment builds a deployment.
func NewDeployment(opts ...Option) (*Deployment, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	d, err := core.NewDeployment(cfg.core)
	if err != nil {
		return nil, err
	}
	timeout := cfg.timeout
	if timeout <= 0 {
		timeout = client.DefaultTimeout
	}
	return &Deployment{core: d, timeout: timeout}, nil
}

// AddThing creates a Thing one hop from the manager.
func (d *Deployment) AddThing(name string) (*Thing, error) {
	th, err := d.core.AddThing(name)
	if err != nil {
		return nil, err
	}
	return &Thing{d: d, th: th}, nil
}

// AddThingUnder creates a Thing attached below an existing Thing in the
// routing tree, enabling multi-hop topologies.
func (d *Deployment) AddThingUnder(name string, parent *Thing) (*Thing, error) {
	th, err := d.core.AddThingAt(name, parent.th.Node())
	if err != nil {
		return nil, err
	}
	return &Thing{d: d, th: th}, nil
}

// AddZonedThing creates a Thing placed in a location zone with the
// structured namespace enabled (the Section 9 extensions): clients can then
// discover its peripherals by device class and by physical location.
func (d *Deployment) AddZonedThing(name string, zone uint16) (*Thing, error) {
	th, err := d.core.AddZonedThing(name, zone)
	if err != nil {
		return nil, err
	}
	return &Thing{d: d, th: th}, nil
}

// AddClient creates a client one hop from the manager.
func (d *Deployment) AddClient() (*Client, error) {
	cl, err := d.core.AddClient()
	if err != nil {
		return nil, err
	}
	return &Client{d: d, cl: cl}, nil
}

// AddClientUnder creates a client attached below a Thing in the routing
// tree.
func (d *Deployment) AddClientUnder(parent *Thing) (*Client, error) {
	cl, err := d.core.AddClientAt(parent.th.Node())
	if err != nil {
		return nil, err
	}
	return &Client{d: d, cl: cl}, nil
}

// Run drives the network until idle — use it after plugging peripherals to
// let the plug-in sequence (identification, driver install, advertisement)
// play out.
func (d *Deployment) Run() { d.core.Run() }

// RunFor drives the network for a span of virtual time. Use it for streams,
// which reschedule themselves and never go idle.
func (d *Deployment) RunFor(span time.Duration) { d.core.RunFor(span) }

// Now returns the current virtual time.
func (d *Deployment) Now() time.Duration { return d.core.Network.Now() }

// ScheduleAfter runs fn after a span of virtual time. Use it to stage
// device-side stimuli — card swipes, environment changes — that should
// occur while a synchronous call is driving the simulator.
func (d *Deployment) ScheduleAfter(delay time.Duration, fn func()) {
	d.core.Network.Schedule(delay, fn)
}

// SetEnvironment updates the shared physical conditions every sensor
// observes: temperature (°C), relative humidity (%) and pressure (Pa).
func (d *Deployment) SetEnvironment(tempC, humidityRH, pressurePa float64) {
	d.core.Env.Set(tempC, humidityRH, pressurePa)
}

// Environment returns the current physical conditions.
func (d *Deployment) Environment() (tempC, humidityRH, pressurePa float64) {
	return d.core.Env.Snapshot()
}

// SetAcceleration updates the acceleration vector (in g) accelerometers
// observe.
func (d *Deployment) SetAcceleration(x, y, z float64) {
	d.core.Env.SetAcceleration(x, y, z)
}

// ManagerUploads returns the number of driver uploads the manager served —
// a cached driver is uploaded at most once per Thing.
func (d *Deployment) ManagerUploads() int { return d.core.Manager.Uploads() }

// NetworkStats is a snapshot of network activity counters.
type NetworkStats struct {
	UnicastSent   int
	MulticastSent int
	// Transmissions counts per-hop frame transmissions, the energy-relevant
	// quantity.
	Transmissions int
	Delivered     int
	Lost          int
	// NoHandler counts datagrams dropped at a node because no handler was
	// bound to the destination port.
	NoHandler int
}

// NetworkStats returns a snapshot of the network counters.
func (d *Deployment) NetworkStats() NetworkStats {
	s := d.core.Network.Stats()
	return NetworkStats{
		UnicastSent:   s.UnicastSent,
		MulticastSent: s.MulticastSent,
		Transmissions: s.Transmissions,
		Delivered:     s.Delivered,
		Lost:          s.Lost,
		NoHandler:     s.NoHandler,
	}
}

// DiscoverDrivers asks a Thing for its installed drivers through the
// manager (protocol messages 6/7).
func (d *Deployment) DiscoverDrivers(ctx context.Context, th *Thing) ([]DeviceID, error) {
	var (
		ids  []DeviceID
		derr error
	)
	err := d.await(ctx, func(timeout time.Duration, complete func()) {
		d.core.Manager.DiscoverDrivers(th.Addr(), timeout, func(got []hw.DeviceID, err error) {
			complete()
			derr = err
			for _, id := range got {
				ids = append(ids, DeviceID(id))
			}
		})
	})
	if err != nil {
		return nil, err
	}
	return ids, derr
}

// RemoveDriver removes a driver from a Thing through the manager (protocol
// messages 8/9), stopping any runtime serving it.
func (d *Deployment) RemoveDriver(ctx context.Context, th *Thing, id DeviceID) error {
	var rerr error
	err := d.await(ctx, func(timeout time.Duration, complete func()) {
		d.core.Manager.RemoveDriver(th.Addr(), hw.DeviceID(id), timeout, func(err error) {
			complete()
			rerr = err
		})
	})
	if err != nil {
		return err
	}
	return rerr
}

// await is the synchronous-call harness every SDK request goes through: it
// translates the context into a virtual-time budget, lets start register
// the request (whose completion callback must invoke complete), then steps
// the simulator until completion, context cancellation, or a drained event
// queue. Every request arms a virtual-time expiry event at registration,
// so a drained queue without completion cannot happen in practice; it is
// reported as a timeout defensively.
func (d *Deployment) await(ctx context.Context, start func(timeout time.Duration, complete func())) error {
	timeout, err := timeoutFrom(ctx, d.timeout)
	if err != nil {
		return err
	}
	done := false
	start(timeout, func() { done = true })
	for !done {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !d.core.Network.Step() {
			return ErrTimeout
		}
	}
	return nil
}

// timeoutFrom translates a context deadline into a virtual-time budget: a
// context with a deadline t from now bounds the request to t of virtual
// time. Without a deadline the default applies. An already-expired context
// fails immediately.
//
// Note the wall-clock sampling: the budget is time.Until(deadline) at call
// time, so runs using context deadlines close to the actual virtual reply
// latency are not bit-for-bit reproducible. Callers that need the fully
// deterministic behaviour the simulator otherwise guarantees should use
// WithRequestTimeout (a pure virtual-time bound) and plain contexts.
func timeoutFrom(ctx context.Context, def time.Duration) (time.Duration, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return 0, context.DeadlineExceeded
		}
		return rem, nil
	}
	return def, nil
}

// USBHostEnergy returns the energy (in joules) an always-on USB host
// controller would consume over a span — the baseline the paper's Section 6
// energy argument compares µPnP's on-demand identification against.
func USBHostEnergy(span time.Duration) float64 {
	return float64(energy.DefaultUSBHost.Energy(span))
}

// ---------------------------------------------------------------------------
// Things

// PluginTrace records the timing and energy of one peripheral plug-in
// event: identification, address generation, group join, driver request and
// install, and advertisement.
type PluginTrace = thing.PluginTrace

// BoardStats counts control-board activity: interrupts, identification
// scans, active time and energy.
type BoardStats = hw.BoardStats

// Thing is one µPnP Thing: an embedded device hosting peripherals behind a
// µPnP control board.
type Thing struct {
	d  *Deployment
	th *thing.Thing
}

// Addr returns the Thing's unicast IPv6 address.
func (t *Thing) Addr() netip.Addr { return t.th.Addr() }

// Traces returns the plug-in traces recorded so far.
func (t *Thing) Traces() []*PluginTrace { return t.th.Traces() }

// InstalledDrivers lists the locally installed driver identifiers.
func (t *Thing) InstalledDrivers() []DeviceID {
	ids := t.th.InstalledDrivers()
	out := make([]DeviceID, len(ids))
	for i, id := range ids {
		out[i] = DeviceID(id)
	}
	return out
}

// BoardStats returns the control board's activity counters.
func (t *Thing) BoardStats() BoardStats { return t.th.Board().Stats() }

// Unplug disconnects the peripheral on a channel; the Thing tears down its
// driver and advertises the change.
func (t *Thing) Unplug(channel int) error { return t.th.Unplug(channel) }

// StopStream terminates an active stream served by this Thing, notifying
// subscribers.
func (t *Thing) StopStream(id DeviceID) { t.th.StopStream(hw.DeviceID(id)) }

// PlugTMP36 plugs a TMP36 temperature sensor (ADC) into a channel.
func (t *Thing) PlugTMP36(channel int) error { return t.d.core.PlugTMP36(t.th, channel) }

// PlugHIH4030 plugs an HIH-4030 humidity sensor (ADC) into a channel.
func (t *Thing) PlugHIH4030(channel int) error { return t.d.core.PlugHIH4030(t.th, channel) }

// PlugBMP180 plugs a BMP180 pressure sensor (I²C) into a channel.
func (t *Thing) PlugBMP180(channel int) error { return t.d.core.PlugBMP180(t.th, channel) }

// PlugADXL345 plugs an ADXL345 accelerometer (SPI) into a channel.
func (t *Thing) PlugADXL345(channel int) error { return t.d.core.PlugADXL345(t.th, channel) }

// RFIDReader is the device-side handle of a plugged ID-20LA RFID reader:
// present cards to it and read them remotely.
type RFIDReader struct {
	dev *core.RFIDDevice
}

// PresentCard simulates a card with the given 10-hex-digit identifier
// entering the reader's field.
func (r *RFIDReader) PresentCard(cardID string) error { return r.dev.PresentCard(cardID) }

// PlugRFID plugs an ID-20LA RFID reader (UART) into a channel and returns
// the handle for presenting cards.
func (t *Thing) PlugRFID(channel int) (*RFIDReader, error) {
	dev, err := t.d.core.PlugRFID(t.th, channel)
	if err != nil {
		return nil, err
	}
	return &RFIDReader{dev: dev}, nil
}

// RelayBank is the device-side handle of a plugged PCF8574 relay bank:
// observe the outputs the network writes set.
type RelayBank struct {
	dev *core.RelayDevice
}

// State returns the relay outputs (bit i = relay i energised).
func (r *RelayBank) State() byte { return r.dev.State() }

// PlugRelay plugs a PCF8574 relay bank (I²C) into a channel and returns the
// handle for observing the outputs.
func (t *Thing) PlugRelay(channel int) (*RelayBank, error) {
	dev, err := t.d.core.PlugRelay(t.th, channel)
	if err != nil {
		return nil, err
	}
	return &RelayBank{dev: dev}, nil
}
