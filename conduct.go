package micropnp

import (
	"time"
)

// Conduct runs a set of functions as cooperative strands of one
// deterministic schedule, in virtual mode: each strand gets its own
// goroutine, but exactly one runs at a time, handed a baton by an
// orchestrator that owns the simulator for the duration of the call. A
// strand runs until it blocks — on a synchronous SDK call (Read, Write,
// Discover, Subscribe, ...) or on Strand.Until — then yields; the
// orchestrator resumes every runnable strand in index order, and only when
// none is runnable advances the network by one bounded barrier round (or to
// the earliest Until deadline) and re-checks. Conduct returns when every
// strand function has returned.
//
// Because strand interleaving is decided purely by strand index, virtual
// time and completion state — never by goroutine scheduling — a conducted
// program is bit-deterministic like a single-goroutine one, while zone-aware
// workloads issue ops from one strand per zone group between rounds instead
// of a single thread feeding all lanes (the loadgen zoned engine).
//
// Constraints: virtual mode only (panics in realtime mode — plain goroutines
// are the right tool there); strand functions must make SDK calls with
// contexts that carry no deadline (WithRequestTimeout bounds them in virtual
// time; wall-clock deadlines would break determinism) and must not call
// Run/RunFor/Quiesce/Conduct themselves — the orchestrator owns the clock.
func (d *Deployment) Conduct(fns ...func(*Strand)) {
	if d.realtime {
		panic("micropnp: Conduct requires virtual mode")
	}
	if len(fns) == 0 {
		return
	}
	self := gid()
	d.waiters.Add(1)
	defer d.waiters.Add(-1)
	d.pumpMu.Lock()
	d.driverGid.Store(self)
	defer func() {
		d.conduct.Store(nil)
		d.driverGid.Store(0)
		d.pumpMu.Unlock()
		d.broadcastStep()
	}()
	c := &conductor{byGid: make(map[int64]*Strand, len(fns))}
	for _, fn := range fns {
		s := &Strand{d: d, resume: make(chan struct{}), yielded: make(chan struct{})}
		c.strands = append(c.strands, s)
		go s.top(fn)
		<-s.yielded // the strand recorded its gid and parked before fn runs
		c.byGid[s.gid] = s
	}
	// Publish the gid map only when complete: from here SDK calls on strand
	// goroutines divert into parkAwait instead of the await driver election.
	d.conduct.Store(c)
	net := d.core.Network
	for {
		// Resume every runnable strand, in index order, until a full pass
		// finds none. A resumed strand may complete another's wake condition
		// (an op it issues can't, before time advances, but finishing changes
		// allDone), so the pass repeats while it makes progress.
		for progress := true; progress; {
			progress = false
			for _, s := range c.strands {
				if s.state != strandDone && s.runnable(net.Now()) {
					s.handoff()
					progress = true
				}
			}
		}
		allDone := true
		wake := time.Duration(-1)
		for _, s := range c.strands {
			switch s.state {
			case strandDone:
				continue
			case strandWaitUntil:
				if wake < 0 || s.wakeAt < wake {
					wake = s.wakeAt
				}
			}
			allDone = false
		}
		if allDone {
			return
		}
		if wake >= 0 {
			net.StepUntil(wake)
			continue
		}
		// Every live strand waits on a completion; one bounded round fires
		// the earliest pending events. Every SDK request arms a virtual-time
		// expiry at registration, so a drained queue here cannot happen.
		if !net.Step() {
			panic("micropnp: conducted strands blocked on a drained simulator")
		}
	}
}

// conductor is one Conduct call's strand registry; immutable once published.
type conductor struct {
	strands []*Strand
	byGid   map[int64]*Strand
}

// conductedStrand returns the Strand owning the calling goroutine, or nil
// when no Conduct is active or the goroutine is not a strand.
func (d *Deployment) conductedStrand(self int64) *Strand {
	c := d.conduct.Load()
	if c == nil {
		return nil
	}
	return c.byGid[self]
}

type strandState int

const (
	strandRunnable  strandState = iota // primed or resumable; run on next pass
	strandWaitDone                     // parked in an SDK call on cpl
	strandWaitUntil                    // parked in Until(wakeAt)
	strandDone                         // function returned
)

// Strand is one cooperative lane of a Conduct schedule. Its methods are only
// meaningful on the strand's own goroutine, while it holds the baton.
type Strand struct {
	d   *Deployment
	gid int64
	// resume and yielded are the unbuffered baton channels: the orchestrator
	// sends resume to run the strand and receives yielded when it parks or
	// finishes. The state fields below are written by whichever side holds
	// the baton and read by the other after the handoff, so the channel
	// synchronization orders every access.
	resume  chan struct{}
	yielded chan struct{}
	state   strandState
	wakeAt  time.Duration
	cpl     *completion
}

// top is the strand goroutine's trampoline: record the gid, park once for
// registration, then run fn to completion.
func (s *Strand) top(fn func(*Strand)) {
	s.gid = gid()
	s.yielded <- struct{}{}
	<-s.resume
	fn(s)
	s.state = strandDone
	s.yielded <- struct{}{}
}

// runnable reports whether the strand's wake condition holds.
func (s *Strand) runnable(now time.Duration) bool {
	switch s.state {
	case strandRunnable:
		return true
	case strandWaitDone:
		return s.cpl.fired.Load()
	case strandWaitUntil:
		return now >= s.wakeAt
	}
	return false
}

// handoff passes the baton to the strand and waits for it back.
func (s *Strand) handoff() {
	s.state = strandRunnable
	s.resume <- struct{}{}
	<-s.yielded
}

// Until parks the strand until virtual time reaches t. If the clock is
// already past t (lanes can run ahead of a strand's schedule), it returns
// immediately — open-loop issue semantics.
func (s *Strand) Until(t time.Duration) {
	if s.d.Now() >= t {
		return
	}
	s.state = strandWaitUntil
	s.wakeAt = t
	s.yielded <- struct{}{}
	<-s.resume
}

// Now returns the current virtual time.
func (s *Strand) Now() time.Duration { return s.d.Now() }

// parkAwait is the conducted branch of Deployment.await: instead of joining
// the driver election, the strand yields the baton with its completion
// attached and blocks until the orchestrator — having advanced the simulator
// far enough for the completion to fire — resumes it. The request's
// virtual-time expiry guarantees the completion fires, so conducted calls
// never hang and never time out at this layer (the op itself may still
// report ErrTimeout through its callback).
func (s *Strand) parkAwait(cpl *completion) error {
	s.state = strandWaitDone
	s.cpl = cpl
	s.yielded <- struct{}{}
	<-s.resume
	s.cpl = nil
	<-cpl.ch
	// Not recycled here: await hands the fired completion back to the SDK
	// call, which harvests its result slots and recycles it.
	return nil
}
