// Tests for the public SDK: the context-aware request/response surface over
// the simulated µPnP network. Everything here uses only the root package —
// the same constraint external consumers live under.
package micropnp_test

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"micropnp"
)

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }

func newSDKDeployment(t *testing.T, opts ...micropnp.Option) *micropnp.Deployment {
	t.Helper()
	d, err := micropnp.NewDeployment(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestSDKReadRoundTrip is the quickstart scenario through the public API:
// plug, run the plug-in sequence, read synchronously, get a typed Reading.
func TestSDKReadRoundTrip(t *testing.T) {
	d := newSDKDeployment(t)
	d.SetEnvironment(24.0, 40, 101_325)
	th, err := d.AddThing("lab")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	before := d.Now()
	r, err := cl.Read(context.Background(), th.Addr(), micropnp.TMP36)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) != 1 || r.Values[0] < 230 || r.Values[0] > 250 {
		t.Fatalf("values = %v, want ~240 tenths °C", r.Values)
	}
	if r.Device != micropnp.TMP36 || r.Thing != th.Addr() {
		t.Errorf("reading metadata = %+v", r)
	}
	if r.Units != "0.1°C" {
		t.Errorf("units = %q, want 0.1°C (advertised by the Thing)", r.Units)
	}
	if r.At <= before {
		t.Errorf("timestamp %v must be after the request started (%v)", r.At, before)
	}
}

// TestSDKReadUnreachableThingTimesOut is the acceptance criterion of the
// API redesign: a read addressed to a Thing that does not exist returns a
// context/timeout error instead of never invoking a callback.
func TestSDKReadUnreachableThingTimesOut(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithRequestTimeout(500*time.Millisecond))
	if _, err := d.AddThing("only"); err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	ghost := mustAddr("2001:db8::7777") // no node has this address
	start := d.Now()
	_, err = cl.Read(context.Background(), ghost, micropnp.TMP36)
	if !errors.Is(err, micropnp.ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", err)
	}
	// The timeout is a context deadline error too.
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("ErrTimeout must satisfy errors.Is(err, context.DeadlineExceeded)")
	}
	// The call consumed (virtual) time up to the deadline, then returned —
	// it did not hang.
	if waited := d.Now() - start; waited < 400*time.Millisecond || waited > 600*time.Millisecond {
		t.Errorf("virtual wait = %v, want ~500ms", waited)
	}
}

// TestSDKLossyReadTimesOut asserts the lossy-network behaviour: with total
// loss the reply can never arrive and the call must surface ErrTimeout
// rather than leaving a callback hanging forever.
func TestSDKLossyReadTimesOut(t *testing.T) {
	d := newSDKDeployment(t,
		micropnp.WithLossRate(1.0),
		micropnp.WithSeed(42),
		micropnp.WithRequestTimeout(time.Second))
	th, err := d.AddThing("unlucky")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run() // identification runs; every datagram is lost

	_, err = cl.Read(context.Background(), th.Addr(), micropnp.TMP36)
	if !errors.Is(err, micropnp.ErrTimeout) {
		t.Fatalf("read over total loss = %v, want ErrTimeout", err)
	}
}

// TestSDKPartialLossRecovers uses a moderately lossy network: some reads
// fail with a timeout, and the caller can simply retry — the error-returning
// API makes loss a handleable condition instead of a hang.
func TestSDKPartialLossRecovers(t *testing.T) {
	d := newSDKDeployment(t,
		micropnp.WithLossRate(0.3),
		micropnp.WithSeed(7),
		micropnp.WithRequestTimeout(time.Second))
	th, err := d.AddThing("flaky")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run() // driver install retries cope with the loss

	ctx := context.Background()
	got := false
	for attempt := 0; attempt < 20; attempt++ {
		r, err := cl.Read(ctx, th.Addr(), micropnp.TMP36)
		if err == nil {
			if len(r.Values) != 1 {
				t.Fatalf("values = %v", r.Values)
			}
			got = true
			break
		}
		if !errors.Is(err, micropnp.ErrTimeout) {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if !got {
		t.Fatal("no read succeeded in 20 attempts at 30% loss")
	}
}

func TestSDKReadAbsentPeripheral(t *testing.T) {
	d := newSDKDeployment(t)
	th, _ := d.AddThing("bare")
	cl, _ := d.AddClient()
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	_, err := cl.Read(context.Background(), th.Addr(), micropnp.BMP180)
	if !errors.Is(err, micropnp.ErrNoPeripheral) {
		t.Fatalf("error = %v, want ErrNoPeripheral", err)
	}
}

func TestSDKWriteRoundTrip(t *testing.T) {
	d := newSDKDeployment(t)
	th, _ := d.AddThing("panel")
	cl, _ := d.AddClient()
	relays, err := th.PlugRelay(0)
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx := context.Background()
	if err := cl.Write(ctx, th.Addr(), micropnp.Relay, []int32{0b0101_0101}); err != nil {
		t.Fatal(err)
	}
	if relays.State() != 0b0101_0101 {
		t.Fatalf("relay state = %08b", relays.State())
	}
	// Write to an absent peripheral is rejected, not dropped.
	err = cl.Write(ctx, th.Addr(), micropnp.TMP36, []int32{1})
	if !errors.Is(err, micropnp.ErrWriteRejected) {
		t.Fatalf("error = %v, want ErrWriteRejected", err)
	}
}

func TestSDKDiscover(t *testing.T) {
	d := newSDKDeployment(t)
	t1, _ := d.AddThing("alpha")
	t2, _ := d.AddThing("beta")
	cl, _ := d.AddClient()
	if err := t1.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	if err := t2.PlugBMP180(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx := context.Background()
	found, err := cl.Discover(ctx, micropnp.BMP180)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Thing != t2.Addr() || found[0].Device != micropnp.BMP180 {
		t.Fatalf("discover(BMP180) = %+v", found)
	}
	if found[0].Name != "beta" || found[0].Channel != 0 {
		t.Errorf("advert metadata = %+v", found[0])
	}

	all, err := cl.Discover(ctx, micropnp.AllPeripherals)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("discover(all) = %+v", all)
	}
	// An empty result is not an error.
	none, err := cl.Discover(ctx, micropnp.ID20LA)
	if err != nil || len(none) != 0 {
		t.Fatalf("discover(absent) = %v, %v", none, err)
	}
}

func TestSDKDiscoverByClass(t *testing.T) {
	d := newSDKDeployment(t)
	th, err := d.AddZonedThing("mover", 1)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := d.AddClient()
	if err := th.PlugADXL345(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	found, err := cl.DiscoverClass(context.Background(), micropnp.ClassAccelerometer)
	if err != nil {
		t.Fatal(err)
	}
	if len(found) != 1 || found[0].Device.Class() != micropnp.ClassAccelerometer {
		t.Fatalf("class discovery = %+v", found)
	}
}

func TestSDKSubscribe(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithStreamPeriod(10*time.Second))
	d.SetEnvironment(20, 40, 101_325)
	th, _ := d.AddThing("src")
	cl, _ := d.AddClient()
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	var delivered []micropnp.Reading
	sub, err := cl.Subscribe(context.Background(), th.Addr(), micropnp.TMP36,
		func(r micropnp.Reading) { delivered = append(delivered, r) })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	d.RunFor(35 * time.Second) // three ticks
	if len(delivered) != 3 || len(sub.Readings()) != 3 {
		t.Fatalf("delivered = %d, history = %d, want 3", len(delivered), len(sub.Readings()))
	}
	for _, r := range sub.Readings() {
		if r.Device != micropnp.TMP36 || r.Units != "0.1°C" || len(r.Values) != 1 {
			t.Fatalf("stream reading = %+v", r)
		}
	}
	// The Thing closing the stream marks the handle closed.
	th.StopStream(micropnp.TMP36)
	d.Run()
	if !sub.Closed() {
		t.Fatal("subscription must observe the Thing-side close")
	}
}

// TestSDKReadInto: the caller-scratch read parses the reply into the
// provided buffer (reusing its backing array) instead of allocating, and
// recycling the returned Values keeps working across calls.
func TestSDKReadInto(t *testing.T) {
	d := newSDKDeployment(t)
	d.SetEnvironment(24.0, 40, 101_325)
	th, _ := d.AddThing("lab")
	cl, _ := d.AddClient()
	if err := th.PlugBMP180(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	scratch := make([]int32, 0, 8)
	r, err := cl.ReadInto(context.Background(), th.Addr(), micropnp.BMP180, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Values) != 2 || r.Units != "0.1°C,Pa" {
		t.Fatalf("reading = %+v", r)
	}
	if &r.Values[0] != &scratch[:1][0] {
		t.Fatal("ReadInto must parse into the caller's scratch backing array")
	}
	// Recycle the returned Values as the next call's scratch.
	r2, err := cl.ReadInto(context.Background(), th.Addr(), micropnp.BMP180, r.Values)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Values) != 2 || &r2.Values[0] != &r.Values[0] {
		t.Fatalf("recycled scratch not reused: %+v", r2)
	}
	// Error semantics match Read.
	if _, err := cl.ReadInto(context.Background(), th.Addr(), micropnp.TMP36, r2.Values); !errors.Is(err, micropnp.ErrNoPeripheral) {
		t.Fatalf("absent peripheral = %v, want ErrNoPeripheral", err)
	}
}

// TestSDKQuiesce: Quiesce is the bounded drain — with an active stream the
// deployment can never go idle, so it must advance exactly the horizon and
// report false; once the stream stops it drains and reports true early.
func TestSDKQuiesce(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithStreamPeriod(10*time.Second))
	th, _ := d.AddThing("src")
	cl, _ := d.AddClient()
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if !d.Quiesce(time.Minute) {
		t.Fatal("an idle deployment must quiesce immediately")
	}

	got := 0
	sub, err := cl.Subscribe(context.Background(), th.Addr(), micropnp.TMP36,
		func(micropnp.Reading) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	before := d.Now()
	if d.Quiesce(35 * time.Second) {
		t.Fatal("quiesce with an active stream must hit the horizon")
	}
	if moved := d.Now() - before; moved != 35*time.Second {
		t.Fatalf("quiesce advanced %v, want exactly the 35s horizon", moved)
	}
	if got != 3 {
		t.Fatalf("stream delivered %d readings inside the horizon, want 3", got)
	}
	th.StopStream(micropnp.TMP36)
	if !d.Quiesce(time.Minute) {
		t.Fatal("deployment must drain once the stream stopped")
	}
	if d.Now()-before >= time.Minute {
		t.Fatal("post-stop quiesce should drain well before its horizon")
	}
}

// TestSDKQuiesceRealtime: same semantics on the wall-clock runtime.
func TestSDKQuiesceRealtime(t *testing.T) {
	d := newSDKDeployment(t,
		micropnp.WithRealTime(), micropnp.WithTimeScale(200),
		micropnp.WithStreamPeriod(2*time.Second))
	defer d.Close()
	th, _ := d.AddThing("src")
	cl, _ := d.AddClient()
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	sub, err := cl.Subscribe(context.Background(), th.Addr(), micropnp.TMP36, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	if d.Quiesce(5 * time.Second) {
		t.Fatal("quiesce with an active stream must hit the horizon")
	}
	th.StopStream(micropnp.TMP36)
	if !d.Quiesce(time.Minute) {
		t.Fatal("deployment must drain once the stream stopped")
	}
}

func TestSDKSubscribeUnreachableTimesOut(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithRequestTimeout(300*time.Millisecond))
	if _, err := d.AddThing("x"); err != nil {
		t.Fatal(err)
	}
	cl, _ := d.AddClient()
	d.Run()

	_, err := cl.Subscribe(context.Background(), mustAddr("2001:db8::9999"), micropnp.TMP36, nil)
	if !errors.Is(err, micropnp.ErrTimeout) {
		t.Fatalf("subscribe to unreachable = %v, want ErrTimeout", err)
	}
}

func TestSDKContextCancellation(t *testing.T) {
	d := newSDKDeployment(t)
	th, _ := d.AddThing("t")
	cl, _ := d.AddClient()
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cl.Read(ctx, th.Addr(), micropnp.TMP36); !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

// TestSDKCancellationRetractsPending: a call abandoned by context
// cancellation must withdraw its pending-request entry immediately, not
// leave it to expire at its (possibly distant) virtual deadline.
func TestSDKCancellationRetractsPending(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithRequestTimeout(time.Hour))
	if _, err := d.AddThing("t"); err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx, cancel := context.WithCancel(context.Background())
	// Reads to a nonexistent address never complete; cancel the context from
	// inside the simulation so the blocked call observes it deterministically
	// long before the one-hour deadline.
	d.ScheduleAfter(50*time.Millisecond, cancel)
	_, rerr := cl.Read(ctx, mustAddr("2001:db8::9999"), micropnp.TMP36)
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", rerr)
	}
	if n := cl.InFlight(); n != 0 {
		t.Fatalf("InFlight = %d after cancellation; the pending entry must be retracted, not left to expire", n)
	}
	if now := d.Now(); now >= time.Hour {
		t.Fatalf("virtual time advanced to %v; retraction must not wait for the deadline", now)
	}
}

// TestSDKCancellationRetractsPendingRealtime is the wall-clock variant: the
// blocked call returns on ctx cancellation and the entry is gone without
// waiting out the request deadline.
func TestSDKCancellationRetractsPendingRealtime(t *testing.T) {
	d := newSDKDeployment(t,
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(1000),
		micropnp.WithRequestTimeout(time.Hour))
	defer d.Close()
	if _, err := d.AddThing("t"); err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	_, rerr := cl.Read(ctx, mustAddr("2001:db8::9999"), micropnp.TMP36)
	if !errors.Is(rerr, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", rerr)
	}
	// The retract runs on the cancelling goroutine before Read returns.
	if n := cl.InFlight(); n != 0 {
		t.Fatalf("InFlight = %d after realtime cancellation, want 0", n)
	}
}

func TestSDKDriverManagement(t *testing.T) {
	d := newSDKDeployment(t)
	th, _ := d.AddThing("managed")
	cl, _ := d.AddClient()
	if err := th.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx := context.Background()
	ids, err := d.DiscoverDrivers(ctx, th)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != micropnp.TMP36 {
		t.Fatalf("discovered drivers = %v", ids)
	}
	if err := d.RemoveDriver(ctx, th, micropnp.TMP36); err != nil {
		t.Fatal(err)
	}
	// With the driver gone, reads surface the absence.
	if _, err := cl.Read(ctx, th.Addr(), micropnp.TMP36); !errors.Is(err, micropnp.ErrNoPeripheral) {
		t.Fatalf("read after removal = %v, want ErrNoPeripheral", err)
	}
	// Removing again is rejected.
	if err := d.RemoveDriver(ctx, th, micropnp.TMP36); !errors.Is(err, micropnp.ErrRemovalRejected) {
		t.Fatalf("second removal = %v, want ErrRemovalRejected", err)
	}
}

// TestSDKNoInternalImports would not compile if the SDK failed to cover the
// examples' needs; the real guard is the CI grep for internal imports
// outside internal/ (see .github/workflows/ci.yml). Here we just pin the
// re-exported identifiers.
func TestSDKIdentifiers(t *testing.T) {
	if micropnp.TMP36.String() != "0xad1cbe01" {
		t.Errorf("TMP36 = %v", micropnp.TMP36)
	}
	if micropnp.ADXL345.Class() != micropnp.ClassAccelerometer {
		t.Errorf("ADXL345 class = %#x", micropnp.ADXL345.Class())
	}
	if micropnp.AllPeripherals != 0 {
		t.Errorf("AllPeripherals = %v", micropnp.AllPeripherals)
	}
}
