// Smart lab: actuators, accelerometers and the Section 9 extensions.
//
// Two zoned Things — a vibration monitor with an ADXL345 accelerometer
// (SPI) in the machine room, and a relay panel (I²C) in the electrical
// cabinet. A client discovers the accelerometer by *device class* (no
// vendor knowledge needed), polls it, and trips the ventilation relays when
// vibration exceeds a threshold — exercising the write operation against
// real (simulated) actuator hardware.
//
// Run with: go run ./examples/smart-lab
package main

import (
	"context"
	"fmt"
	"log"
	"math"

	"micropnp"
)

const (
	zoneMachineRoom = 1
	zoneCabinet     = 2
)

func main() {
	d, err := micropnp.NewDeployment()
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := d.AddZonedThing("vibration-monitor", zoneMachineRoom)
	if err != nil {
		log.Fatal(err)
	}
	panel, err := d.AddZonedThing("relay-panel", zoneCabinet)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	if err := monitor.PlugADXL345(0); err != nil {
		log.Fatal(err)
	}
	relays, err := panel.PlugRelay(0)
	if err != nil {
		log.Fatal(err)
	}
	d.Run()

	ctx := context.Background()

	// Discover any accelerometer by device class (§9 hierarchical typing):
	// the client needs no vendor or product knowledge.
	found, err := cl.DiscoverClass(ctx, micropnp.ClassAccelerometer)
	if err != nil {
		log.Fatal(err)
	}
	var accel *micropnp.Advert
	for i, a := range found {
		if a.Device.Class() == micropnp.ClassAccelerometer {
			accel = &found[i]
			break
		}
	}
	if accel == nil {
		log.Fatal("no accelerometer discovered")
	}
	fmt.Printf("found accelerometer %v (%s) on %v\n", accel.Device, accel.Name, accel.Thing)

	// Poll vibration over a few machine states and actuate the relays.
	scenarios := []struct {
		label   string
		x, y, z float64
	}{
		{"machine off", 0.00, 0.00, 1.00},
		{"machine running", 0.05, 0.03, 1.02},
		{"bearing failure!", 0.60, 0.45, 1.30},
	}
	const thresholdMilliG = 200.0
	for _, sc := range scenarios {
		d.SetAcceleration(sc.x, sc.y, sc.z)

		r, err := cl.Read(ctx, accel.Thing, accel.Device)
		if err != nil {
			log.Fatalf("accelerometer read failed: %v", err)
		}
		axes := r.Values
		if len(axes) != 3 {
			log.Fatalf("accelerometer read returned %v", axes)
		}
		// Vibration magnitude relative to 1 g of gravity, in mg.
		mag := math.Sqrt(float64(axes[0])*float64(axes[0])+
			float64(axes[1])*float64(axes[1])+
			float64(axes[2])*float64(axes[2])) - 1000
		fmt.Printf("%-18s accel = [%5d %5d %5d] %s, vibration %.0f mg\n",
			sc.label, axes[0], axes[1], axes[2], r.Units, mag)

		want := int32(0b0000_0000)
		if mag > thresholdMilliG {
			want = 0b0000_1111 // all four ventilation relays on
		}
		if err := cl.Write(ctx, panel.Addr(), micropnp.Relay, []int32{want}); err != nil {
			log.Fatalf("relay write failed: %v", err)
		}
		fmt.Printf("%-18s relay outputs now %08b\n", "", relays.State())
	}
}
