// Smart lab: actuators, accelerometers and the Section 9 extensions.
//
// Two zoned Things — a vibration monitor with an ADXL345 accelerometer
// (SPI) in the machine room, and a relay panel (I²C) in the electrical
// cabinet. A client discovers the accelerometer by *device class* (no
// vendor knowledge needed), polls it, and trips the ventilation relays when
// vibration exceeds a threshold — exercising the write operation against
// real (simulated) actuator hardware.
//
// Run with: go run ./examples/smart-lab
package main

import (
	"fmt"
	"log"
	"math"

	"micropnp/internal/client"
	"micropnp/internal/core"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
)

const (
	zoneMachineRoom = 1
	zoneCabinet     = 2
)

func main() {
	d, err := core.NewDeployment(core.DeploymentConfig{})
	if err != nil {
		log.Fatal(err)
	}
	monitor, err := d.AddZonedThing("vibration-monitor", zoneMachineRoom)
	if err != nil {
		log.Fatal(err)
	}
	panel, err := d.AddZonedThing("relay-panel", zoneCabinet)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	if err := d.PlugADXL345(monitor, 0); err != nil {
		log.Fatal(err)
	}
	relays, err := d.PlugRelay(panel, 0)
	if err != nil {
		log.Fatal(err)
	}
	d.Run()

	// Discover any accelerometer by device class (§9 hierarchical typing):
	// the client needs no vendor or product knowledge.
	cl.DiscoverClass(hw.ClassAccelerometer)
	d.Run()
	var accelThing *client.Advert
	for _, a := range cl.Adverts() {
		if a.Solicited && a.Peripheral.ID.Structured().Class == hw.ClassAccelerometer {
			accelThing = &a
			break
		}
	}
	if accelThing == nil {
		log.Fatal("no accelerometer discovered")
	}
	fmt.Printf("found accelerometer %v (%s) on %v\n",
		accelThing.Peripheral.ID, accelThing.Peripheral.ID.Structured(), accelThing.Thing)

	// Poll vibration over a few machine states and actuate the relays.
	scenarios := []struct {
		label   string
		x, y, z float64
	}{
		{"machine off", 0.00, 0.00, 1.00},
		{"machine running", 0.05, 0.03, 1.02},
		{"bearing failure!", 0.60, 0.45, 1.30},
	}
	const thresholdMilliG = 200.0
	for _, sc := range scenarios {
		d.Env.SetAcceleration(sc.x, sc.y, sc.z)

		var axes []int32
		cl.Read(accelThing.Thing, accelThing.Peripheral.ID, func(v []int32) { axes = v })
		d.Run()
		if len(axes) != 3 {
			log.Fatalf("accelerometer read failed: %v", axes)
		}
		// Vibration magnitude relative to 1 g of gravity, in mg.
		mag := math.Sqrt(float64(axes[0])*float64(axes[0])+
			float64(axes[1])*float64(axes[1])+
			float64(axes[2])*float64(axes[2])) - 1000
		fmt.Printf("%-18s accel = [%5d %5d %5d] mg, vibration %.0f mg\n",
			sc.label, axes[0], axes[1], axes[2], mag)

		want := int32(0b0000_0000)
		if mag > thresholdMilliG {
			want = 0b0000_1111 // all four ventilation relays on
		}
		cl.Write(panel.Addr(), driver.IDRelay, []int32{want}, nil)
		d.Run()
		fmt.Printf("%-18s relay outputs now %08b\n", "", relays.State())
	}
}
