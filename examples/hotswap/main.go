// Hotswap: runtime peripheral churn with energy accounting.
//
// The paper's energy argument (Section 6.1) is that the µPnP board only
// draws power while peripherals are being identified. This example churns
// peripherals through a Thing's channels — plug, use, unplug, repeat — and
// reports the identification energy alongside what an always-on USB host
// controller would have burned over the same (virtual) span. It also shows
// driver caching: the manager uploads each driver only once per Thing.
//
// Run with: go run ./examples/hotswap
package main

import (
	"fmt"
	"log"
	"time"

	"micropnp/internal/core"
	"micropnp/internal/driver"
	"micropnp/internal/energy"
)

func main() {
	d, err := core.NewDeployment(core.DeploymentConfig{})
	if err != nil {
		log.Fatal(err)
	}
	th, err := d.AddThing("bench")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}
	d.Env.Set(21, 50, 101_000)

	// Churn: alternate a TMP36 and an HIH-4030 through channel 0, with an
	// hour of idle (virtual) time between changes.
	const cycles = 4
	for i := 0; i < cycles; i++ {
		var err error
		var id = driver.IDTMP36
		if i%2 == 1 {
			id = driver.IDHIH4030
			err = d.PlugHIH4030(th, 0)
		} else {
			err = d.PlugTMP36(th, 0)
		}
		if err != nil {
			log.Fatal(err)
		}
		d.Run()

		cl.Read(th.Addr(), id, func(v []int32) {
			fmt.Printf("cycle %d: %v reads %.1f\n", i+1, id, float64(v[0])/10)
		})
		d.Run()

		if err := th.Unplug(0); err != nil {
			log.Fatal(err)
		}
		d.Run()
		d.RunFor(time.Hour) // idle: the µPnP board is powered down
	}

	stats := th.Board().Stats()
	span := d.Network.Now()
	usb := energy.DefaultUSBHost.Energy(span)
	fmt.Printf("\nover %v of virtual time:\n", span.Round(time.Minute))
	fmt.Printf("  %d interrupts, %d identification scans\n", stats.Interrupts, stats.Scans)
	fmt.Printf("  µPnP board energy: %.4g J (active for %v total)\n",
		float64(stats.EnergyTotal), stats.ActiveTime.Round(time.Millisecond))
	fmt.Printf("  USB host baseline: %.4g J (always on)\n", float64(usb))
	fmt.Printf("  ratio: %.0fx in favour of µPnP\n", float64(usb)/float64(stats.EnergyTotal))
	fmt.Printf("  manager uploads: %d (drivers are cached after first install)\n", d.Manager.Uploads())
}
