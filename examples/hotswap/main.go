// Hotswap: runtime peripheral churn with energy accounting.
//
// The paper's energy argument (Section 6.1) is that the µPnP board only
// draws power while peripherals are being identified. This example churns
// peripherals through a Thing's channels — plug, use, unplug, repeat — and
// reports the identification energy alongside what an always-on USB host
// controller would have burned over the same (virtual) span. It also shows
// driver caching: the manager uploads each driver only once per Thing.
//
// Run with: go run ./examples/hotswap
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"micropnp"
)

func main() {
	d, err := micropnp.NewDeployment()
	if err != nil {
		log.Fatal(err)
	}
	th, err := d.AddThing("bench")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}
	d.SetEnvironment(21, 50, 101_000)

	ctx := context.Background()

	// Churn: alternate a TMP36 and an HIH-4030 through channel 0, with an
	// hour of idle (virtual) time between changes.
	const cycles = 4
	for i := 0; i < cycles; i++ {
		var err error
		var id = micropnp.TMP36
		if i%2 == 1 {
			id = micropnp.HIH4030
			err = th.PlugHIH4030(0)
		} else {
			err = th.PlugTMP36(0)
		}
		if err != nil {
			log.Fatal(err)
		}
		d.Run()

		r, err := cl.Read(ctx, th.Addr(), id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cycle %d: %v reads %d %s\n", i+1, id, r.Values[0], r.Units)

		if err := th.Unplug(0); err != nil {
			log.Fatal(err)
		}
		d.Run()
		d.RunFor(time.Hour) // idle: the µPnP board is powered down
	}

	stats := th.BoardStats()
	span := d.Now()
	usb := micropnp.USBHostEnergy(span)
	fmt.Printf("\nover %v of virtual time:\n", span.Round(time.Minute))
	fmt.Printf("  %d interrupts, %d identification scans\n", stats.Interrupts, stats.Scans)
	fmt.Printf("  µPnP board energy: %.4g J (active for %v total)\n",
		float64(stats.EnergyTotal), stats.ActiveTime.Round(time.Millisecond))
	fmt.Printf("  USB host baseline: %.4g J (always on)\n", usb)
	fmt.Printf("  ratio: %.0fx in favour of µPnP\n", usb/float64(stats.EnergyTotal))
	fmt.Printf("  manager uploads: %d (drivers are cached after first install)\n", d.ManagerUploads())
}
