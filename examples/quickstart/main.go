// Quickstart: the smallest possible µPnP session.
//
// One Thing, one client, one TMP36 temperature sensor. Plugging the sensor
// triggers the whole plug-and-play pipeline of the paper: the control board
// identifies the peripheral from its resistor-encoded pulse train, the Thing
// fetches the driver over the air from the manager, joins the peripheral's
// multicast group and advertises it — after which the client reads the
// temperature remotely.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"micropnp/internal/core"
	"micropnp/internal/driver"
)

func main() {
	// A deployment bundles the simulated IPv6 network, a µPnP manager
	// preloaded with the standard drivers, and a shared physical
	// environment for the sensors.
	d, err := core.NewDeployment(core.DeploymentConfig{})
	if err != nil {
		log.Fatal(err)
	}
	d.Env.Set(22.5, 45, 101_325) // 22.5 °C, 45 %RH, 1013.25 hPa

	th, err := d.AddThing("kitchen")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	// Plug the TMP36 into channel 0 and let the network run.
	if err := d.PlugTMP36(th, 0); err != nil {
		log.Fatal(err)
	}
	d.Run()

	tr := th.Traces()[0]
	fmt.Printf("peripheral %v identified in %v (%.3g mJ)\n",
		tr.DeviceID, tr.Identification.Round(0), float64(tr.Energy)*1e3)
	fmt.Printf("driver installed over the air; plug-and-play total: %v\n", tr.Total.Round(0))

	// The client saw the unsolicited advertisement...
	for _, a := range cl.Adverts() {
		fmt.Printf("client: %v advertises peripheral %v\n", a.Thing, a.Peripheral.ID)
	}

	// ...and can read the sensor remotely.
	cl.Read(th.Addr(), driver.IDTMP36, func(v []int32) {
		fmt.Printf("client: kitchen temperature is %.1f °C\n", float64(v[0])/10)
	})
	d.Run()
}
