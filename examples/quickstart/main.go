// Quickstart: the smallest possible µPnP session, on the public SDK.
//
// One Thing, one client, one TMP36 temperature sensor. Plugging the sensor
// triggers the whole plug-and-play pipeline of the paper: the control board
// identifies the peripheral from its resistor-encoded pulse train, the Thing
// fetches the driver over the air from the manager, joins the peripheral's
// multicast group and advertises it — after which the client reads the
// temperature remotely with one synchronous, error-returning call.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"micropnp"
)

func main() {
	// A deployment bundles the simulated IPv6 network, a µPnP manager
	// preloaded with the standard drivers, and a shared physical
	// environment for the sensors.
	d, err := micropnp.NewDeployment()
	if err != nil {
		log.Fatal(err)
	}
	d.SetEnvironment(22.5, 45, 101_325) // 22.5 °C, 45 %RH, 1013.25 hPa

	th, err := d.AddThing("kitchen")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	// Plug the TMP36 into channel 0 and let the plug-in sequence run.
	if err := th.PlugTMP36(0); err != nil {
		log.Fatal(err)
	}
	d.Run()

	tr := th.Traces()[0]
	fmt.Printf("peripheral %v identified in %v (%.3g mJ)\n",
		tr.DeviceID, tr.Identification.Round(0), float64(tr.Energy)*1e3)
	fmt.Printf("driver installed over the air; plug-and-play total: %v\n", tr.Total.Round(0))

	// The client saw the unsolicited advertisement...
	for _, a := range cl.Adverts() {
		fmt.Printf("client: %v advertises peripheral %v (%s)\n", a.Thing, a.Device, a.Units)
	}

	// ...and can read the sensor remotely. Loss, absence and timeouts all
	// surface as errors instead of callbacks that never fire.
	r, err := cl.Read(context.Background(), th.Addr(), micropnp.TMP36)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client: kitchen temperature is %.1f °C (units %s, at %v)\n",
		float64(r.Values[0])/10, r.Units, r.At.Round(0))
}
