// RFID access control: the Listing 1 scenario as an application.
//
// An ID-20LA RFID card reader is plugged into a door-side Thing. A client
// implements a tiny access-control list: it requests reads, cards are
// presented to the reader, and each returned card identifier is checked
// against the whitelist. The driver running on the Thing is the paper's
// Listing 1 driver, compiled from the DSL and interpreted by the stack VM.
//
// Run with: go run ./examples/rfid-access-control
package main

import (
	"fmt"
	"log"
	"time"

	"micropnp/internal/core"
	"micropnp/internal/driver"
)

var whitelist = map[string]string{
	"0415AB96C3": "alice",
	"04A1B2C3D4": "bob",
}

func main() {
	d, err := core.NewDeployment(core.DeploymentConfig{})
	if err != nil {
		log.Fatal(err)
	}
	door, err := d.AddThing("front-door")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	reader, err := d.PlugRFID(door, 0)
	if err != nil {
		log.Fatal(err)
	}
	d.Run() // identification + OTA driver install + advertisement

	fmt.Printf("reader %v online at %v\n", driver.IDID20LA, door.Addr())

	// Swipe a few cards. For each: the client issues a read, the card
	// appears at the reader, and the driver returns the 12-character frame
	// (10 ID characters + 2 checksum characters).
	cards := []string{"0415AB96C3", "DEADBEEF00", "04A1B2C3D4"}
	for _, card := range cards {
		var got []int32
		cl.Read(door.Addr(), driver.IDID20LA, func(v []int32) { got = v })
		// The read request travels client -> manager -> Thing (two hops in
		// the tree); give it time to arrive and arm the UART.
		d.RunFor(100 * time.Millisecond)

		if err := reader.PresentCard(card); err != nil {
			log.Fatal(err)
		}
		d.RunFor(200 * time.Millisecond) // bytes arrive, reply travels back

		if len(got) != 12 {
			fmt.Printf("card %s: no read (%v)\n", card, got)
			continue
		}
		id := make([]byte, 10)
		for i := range id {
			id[i] = byte(got[i])
		}
		if who, ok := whitelist[string(id)]; ok {
			fmt.Printf("card %s: ACCESS GRANTED (%s)\n", id, who)
		} else {
			fmt.Printf("card %s: access denied\n", id)
		}
	}
}
