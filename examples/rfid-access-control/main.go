// RFID access control: the Listing 1 scenario as an application.
//
// An ID-20LA RFID card reader is plugged into a door-side Thing. A client
// implements a tiny access-control list: it requests reads, cards are
// presented to the reader, and each returned card identifier is checked
// against the whitelist. The driver running on the Thing is the paper's
// Listing 1 driver, compiled from the DSL and interpreted by the stack VM.
// A read with no card in the field times out with a real error instead of
// hanging forever.
//
// Run with: go run ./examples/rfid-access-control
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"micropnp"
)

var whitelist = map[string]string{
	"0415AB96C3": "alice",
	"04A1B2C3D4": "bob",
}

func main() {
	d, err := micropnp.NewDeployment()
	if err != nil {
		log.Fatal(err)
	}
	door, err := d.AddThing("front-door")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	reader, err := door.PlugRFID(0)
	if err != nil {
		log.Fatal(err)
	}
	d.Run() // identification + OTA driver install + advertisement

	fmt.Printf("reader %v online at %v\n", micropnp.ID20LA, door.Addr())

	ctx := context.Background()

	// Swipe a few cards. For each: the client issues a read, the card
	// appears at the reader shortly after (scheduled on the virtual
	// clock), and the driver returns the 12-character frame (10 ID
	// characters + 2 checksum characters).
	cards := []string{"0415AB96C3", "DEADBEEF00", "04A1B2C3D4"}
	for _, card := range cards {
		// The read request travels client -> Thing and arms the UART;
		// schedule the card presentation 100 virtual milliseconds from
		// now, so it happens while the synchronous Read drives the
		// simulator.
		card := card
		d.ScheduleAfter(100*time.Millisecond, func() {
			if err := reader.PresentCard(card); err != nil {
				log.Fatal(err)
			}
		})

		r, err := cl.Read(ctx, door.Addr(), micropnp.ID20LA)
		if err != nil {
			fmt.Printf("card %s: no read (%v)\n", card, err)
			continue
		}
		id := make([]byte, 10)
		for i := range id {
			id[i] = byte(r.Values[i])
		}
		if who, ok := whitelist[string(id)]; ok {
			fmt.Printf("card %s: ACCESS GRANTED (%s)\n", id, who)
		} else {
			fmt.Printf("card %s: access denied\n", id)
		}
	}

	// No card at all: the read surfaces a timeout error.
	if _, err := cl.Read(ctx, door.Addr(), micropnp.ID20LA); errors.Is(err, micropnp.ErrTimeout) {
		fmt.Println("no card presented: read timed out as expected")
	}
}
