// Weather station: three heterogeneous sensors on one Thing.
//
// A TMP36 (ADC), an HIH-4030 humidity sensor (ADC) and a BMP180 barometer
// (I²C) share one µPnP control board — exactly the kind of multi-peripheral
// customisation the paper's introduction motivates. The client discovers
// all three by type, reads them together, then subscribes to a pressure
// stream while the weather changes.
//
// Run with: go run ./examples/weather-station
package main

import (
	"fmt"
	"log"
	"time"

	"micropnp/internal/core"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
)

func main() {
	d, err := core.NewDeployment(core.DeploymentConfig{StreamPeriod: 10 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	station, err := d.AddThing("rooftop")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	// Morning conditions.
	d.Env.Set(14.5, 72, 100_400)

	// All three sensors share the board's three channels.
	if err := d.PlugTMP36(station, 0); err != nil {
		log.Fatal(err)
	}
	if err := d.PlugHIH4030(station, 1); err != nil {
		log.Fatal(err)
	}
	if err := d.PlugBMP180(station, 2); err != nil {
		log.Fatal(err)
	}
	d.Run()

	fmt.Println("discovering every peripheral type on the network...")
	cl.Discover(hw.DeviceIDAllPeripherals)
	d.Run()
	for _, a := range cl.Adverts() {
		if a.Solicited {
			fmt.Printf("  found %v on %v\n", a.Peripheral.ID, a.Thing)
		}
	}

	read := func(id hw.DeviceID, label string, format func([]int32) string) {
		cl.Read(station.Addr(), id, func(v []int32) {
			fmt.Printf("  %-10s %s\n", label+":", format(v))
		})
	}
	fmt.Println("morning readings:")
	read(driver.IDTMP36, "temp", func(v []int32) string { return fmt.Sprintf("%.1f °C", float64(v[0])/10) })
	read(driver.IDHIH4030, "humidity", func(v []int32) string { return fmt.Sprintf("%.1f %%RH", float64(v[0])/10) })
	read(driver.IDBMP180, "pressure", func(v []int32) string {
		return fmt.Sprintf("%.1f °C / %.2f hPa", float64(v[0])/10, float64(v[1])/100)
	})
	d.Run()

	// Subscribe to the pressure stream, then let a front roll in.
	fmt.Println("streaming pressure while a front approaches:")
	tick := 0
	cl.Stream(station.Addr(), driver.IDBMP180, func(v []int32) {
		tick++
		fmt.Printf("  t+%02ds  %.2f hPa\n", tick*10, float64(v[1])/100)
	}, func() {
		fmt.Println("  stream closed by the station")
	})
	for i := 0; i < 3; i++ {
		d.RunFor(10 * time.Second)
		_, _, p := d.Env.Snapshot()
		d.Env.Set(14.0, 75, p-250) // pressure falling
	}
	d.RunFor(2 * time.Second) // catch the tick at the loop boundary
	station.StopStream(driver.IDBMP180)
	d.Run()
}
