// Weather station: three heterogeneous sensors on one Thing.
//
// A TMP36 (ADC), an HIH-4030 humidity sensor (ADC) and a BMP180 barometer
// (I²C) share one µPnP control board — exactly the kind of multi-peripheral
// customisation the paper's introduction motivates. The client discovers
// all three by type, reads them together, then subscribes to a pressure
// stream while the weather changes.
//
// Run with: go run ./examples/weather-station
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"micropnp"
)

func main() {
	d, err := micropnp.NewDeployment(micropnp.WithStreamPeriod(10 * time.Second))
	if err != nil {
		log.Fatal(err)
	}
	station, err := d.AddThing("rooftop")
	if err != nil {
		log.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}

	// Morning conditions.
	d.SetEnvironment(14.5, 72, 100_400)

	// All three sensors share the board's three channels.
	if err := station.PlugTMP36(0); err != nil {
		log.Fatal(err)
	}
	if err := station.PlugHIH4030(1); err != nil {
		log.Fatal(err)
	}
	if err := station.PlugBMP180(2); err != nil {
		log.Fatal(err)
	}
	d.Run()

	ctx := context.Background()

	fmt.Println("discovering every peripheral type on the network...")
	found, err := cl.Discover(ctx, micropnp.AllPeripherals)
	if err != nil {
		log.Fatal(err)
	}
	for _, a := range found {
		fmt.Printf("  found %v (%s) on %v\n", a.Device, a.Units, a.Thing)
	}

	read := func(id micropnp.DeviceID, label string, format func([]int32) string) {
		r, err := cl.Read(ctx, station.Addr(), id)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("  %-10s %s\n", label+":", format(r.Values))
	}
	fmt.Println("morning readings:")
	read(micropnp.TMP36, "temp", func(v []int32) string { return fmt.Sprintf("%.1f °C", float64(v[0])/10) })
	read(micropnp.HIH4030, "humidity", func(v []int32) string { return fmt.Sprintf("%.1f %%RH", float64(v[0])/10) })
	read(micropnp.BMP180, "pressure", func(v []int32) string {
		return fmt.Sprintf("%.1f °C / %.2f hPa", float64(v[0])/10, float64(v[1])/100)
	})

	// Subscribe to the pressure stream, then let a front roll in.
	fmt.Println("streaming pressure while a front approaches:")
	tick := 0
	sub, err := cl.Subscribe(ctx, station.Addr(), micropnp.BMP180, func(r micropnp.Reading) {
		tick++
		fmt.Printf("  t+%02ds  %.2f hPa\n", tick*10, float64(r.Values[1])/100)
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	for i := 0; i < 3; i++ {
		d.RunFor(10 * time.Second)
		_, _, p := d.Environment()
		d.SetEnvironment(14.0, 75, p-250) // pressure falling
	}
	d.RunFor(2 * time.Second) // catch the tick at the loop boundary
	station.StopStream(micropnp.BMP180)
	d.Run()
	if sub.Closed() {
		fmt.Println("  stream closed by the station")
	}
}
