// Example realtime-readers demonstrates the wall-clock runtime: the network
// event loop runs on its own goroutines, so many reader goroutines can
// block on Reads against one deployment concurrently — the shape of a µPnP
// gateway serving interactive traffic.
//
// The deployment runs 500x accelerated (WithTimeScale): the plug-in
// sequences and per-hop 802.15.4 latencies play out with their real
// relative timing, compressed into milliseconds of wall time.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"micropnp"
)

func main() {
	d, err := micropnp.NewDeployment(
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(500),
		micropnp.WithRequestTimeout(5*time.Minute), // virtual; 600ms of wall time
	)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	// A small fleet: 24 Things, one TMP36 each.
	const nThings = 24
	things := make([]*micropnp.Thing, nThings)
	for i := range things {
		th, err := d.AddThing(fmt.Sprintf("sensor-%02d", i))
		if err != nil {
			log.Fatal(err)
		}
		if err := th.PlugTMP36(0); err != nil {
			log.Fatal(err)
		}
		things[i] = th
	}
	cl, err := d.AddClient()
	if err != nil {
		log.Fatal(err)
	}
	d.SetEnvironment(23.5, 40, 101_300)
	d.Run() // block until all plug-in cascades drained
	fmt.Printf("fleet up: %d Things plugged and advertised (virtual %v)\n", nThings, d.Now().Round(time.Millisecond))

	// 32 concurrent readers, each polling the fleet.
	const readers, perReader = 32, 8
	var wg sync.WaitGroup
	var ok, failed atomic.Int64
	ctx := context.Background()
	start := time.Now()
	for g := 0; g < readers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perReader; k++ {
				th := things[(g+k)%nThings]
				r, err := cl.Read(ctx, th.Addr(), micropnp.TMP36)
				if err != nil {
					failed.Add(1)
					continue
				}
				ok.Add(1)
				if g == 0 && k == 0 {
					fmt.Printf("first reading: %s = %.1f %s\n", th.Addr(), float64(r.Values[0])/10, "°C")
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("%d goroutines completed %d reads (%d failed) in %v wall — %.0f reads/s\n",
		readers, ok.Load(), failed.Load(), elapsed.Round(time.Millisecond),
		float64(ok.Load())/elapsed.Seconds())

	st := d.NetworkStats()
	fmt.Printf("network: %d unicast, %d transmissions, %d delivered (virtual time %v)\n",
		st.UnicastSent, st.Transmissions, st.Delivered, d.Now().Round(time.Millisecond))
}
