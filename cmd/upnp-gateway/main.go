// Command upnp-gateway serves the HTTP/JSON front door over a simulated
// µPnP deployment: it boots a deployment (deterministic virtual clock by
// default, -realtime for the wall-clock runtime), plugs a sensor/actuator
// population, and exposes it through the internal/gateway REST surface —
// paged catalog listings, unicast reads and writes, multicast discovery and
// SSE subscription streams.
//
// A refresher goroutine issues a wildcard discovery every -refresh interval.
// The discovery replies renew the catalog's TTL leases (so hot-unplugged
// peripherals age out within one TTL + sweep), and in virtual mode the
// blocked discovery call doubles as the simulator pump: virtual time
// advances one discovery window per round even when no external request is
// driving it.
//
// Usage:
//
//	upnp-gateway [-addr :8080] [-things N] [-relays N] [-seed S]
//	             [-ttl D] [-sweep D] [-refresh D]
//	             [-request-timeout D] [-stream-period D]
//	             [-realtime] [-timescale X]
//
// Examples:
//
//	go run ./cmd/upnp-gateway -things 100
//	curl -s localhost:8080/things?limit=5
//	curl -s "localhost:8080/things/$ADDR/read?peripheral=tmp36"
//	curl -N "localhost:8080/things/$ADDR/stream?peripheral=tmp36"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"micropnp"
	"micropnp/internal/catalog"
	"micropnp/internal/gateway"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		things     = flag.Int("things", 24, "deployment size")
		relays     = flag.Int("relays", 0, "Things that also carry a relay bank (0 = every 8th)")
		seed       = flag.Int64("seed", 1, "deployment randomness seed")
		ttl        = flag.Duration("ttl", 30*time.Second, "catalog lease TTL (virtual time)")
		sweep      = flag.Duration("sweep", time.Second, "catalog sweep interval (wall time)")
		refresh    = flag.Duration("refresh", 2*time.Second, "lease-refresh discovery interval (wall time)")
		reqTimeout = flag.Duration("request-timeout", 0, "deployment request timeout (virtual; 0 = SDK default)")
		streamPer  = flag.Duration("stream-period", 5*time.Second, "subscription stream tick period (virtual)")
		realtime   = flag.Bool("realtime", false, "run the deployment on the wall clock")
		timescale  = flag.Float64("timescale", 0, "virtual seconds per wall second in -realtime mode")
	)
	flag.Parse()
	if err := run(*addr, *things, *relays, *seed, *ttl, *sweep, *refresh, *reqTimeout, *streamPer, *realtime, *timescale); err != nil {
		fmt.Fprintln(os.Stderr, "upnp-gateway:", err)
		os.Exit(1)
	}
}

func run(addr string, things, relays int, seed int64, ttl, sweepIv, refreshIv, reqTimeout, streamPer time.Duration, realtime bool, timescale float64) error {
	opts := []micropnp.Option{micropnp.WithSeed(seed), micropnp.WithStreamPeriod(streamPer)}
	if reqTimeout > 0 {
		opts = append(opts, micropnp.WithRequestTimeout(reqTimeout))
	}
	if realtime {
		opts = append(opts, micropnp.WithRealTime())
		if timescale > 0 {
			opts = append(opts, micropnp.WithTimeScale(timescale))
		}
	}
	d, err := micropnp.NewDeployment(opts...)
	if err != nil {
		return err
	}
	defer d.Close()

	cl, err := d.AddClient()
	if err != nil {
		return err
	}
	cat, err := catalog.New(catalog.Config{TTL: ttl, Now: d.Now})
	if err != nil {
		return err
	}
	cl.AddAdvertHook(cat.Observe)

	if relays <= 0 {
		relays = (things + 7) / 8
	}
	if err := buildPopulation(d, things, relays); err != nil {
		return err
	}
	d.Run() // let every plug-in sequence (and its advert) play out
	fmt.Printf("upnp-gateway: %d things, %d catalogued peripherals, mode %s\n",
		things, cat.Size(), mode(d))

	stopSweep := cat.Start(sweepIv)
	defer stopSweep()

	// Lease refresher (and virtual-clock pump).
	refreshCtx, stopRefresh := context.WithCancel(context.Background())
	defer stopRefresh()
	refreshDone := make(chan struct{})
	go func() {
		defer close(refreshDone)
		t := time.NewTicker(refreshIv)
		defer t.Stop()
		for {
			select {
			case <-refreshCtx.Done():
				return
			case <-t.C:
				if _, err := cl.Discover(refreshCtx, micropnp.AllPeripherals); err != nil &&
					!errors.Is(err, context.Canceled) && !errors.Is(err, micropnp.ErrClosed) {
					fmt.Fprintln(os.Stderr, "upnp-gateway: refresh discovery:", err)
				}
			}
		}
	}()

	gw, err := gateway.New(gateway.Config{Deployment: d, Client: cl, Catalog: cat})
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: gw}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("upnp-gateway: listening on %s\n", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		stopRefresh()
		<-refreshDone
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, finish in-flight handlers, stop
	// the refresher, then drain the deployment's in-flight traffic.
	fmt.Println("upnp-gateway: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "upnp-gateway: shutdown:", err)
	}
	stopRefresh()
	<-refreshDone
	stopSweep()
	d.Quiesce(30 * time.Second)
	return nil
}

func mode(d *micropnp.Deployment) string {
	if d.Realtime() {
		return "realtime"
	}
	return "virtual"
}

// buildPopulation plugs a deterministic sensor cycle (TMP36, HIH4030,
// BMP180, ADXL345) into n Things, the first nRelay of them also carrying a
// relay bank on channel 1.
func buildPopulation(d *micropnp.Deployment, n, nRelay int) error {
	for i := 0; i < n; i++ {
		th, err := d.AddThing(fmt.Sprintf("thing-%03d", i))
		if err != nil {
			return err
		}
		switch i % 4 {
		case 0:
			err = th.PlugTMP36(0)
		case 1:
			err = th.PlugHIH4030(0)
		case 2:
			err = th.PlugBMP180(0)
		default:
			err = th.PlugADXL345(0)
		}
		if err != nil {
			return err
		}
		if i < nRelay {
			if _, err := th.PlugRelay(1); err != nil {
				return err
			}
		}
	}
	return nil
}
