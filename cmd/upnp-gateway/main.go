// Command upnp-gateway serves the HTTP/JSON front door over a simulated
// µPnP deployment: it boots a deployment (deterministic virtual clock by
// default, -realtime for the wall-clock runtime), plugs a sensor/actuator
// population, and exposes it through the internal/gateway REST surface —
// paged catalog listings, unicast reads and writes, multicast discovery and
// SSE subscription streams.
//
// -deployments N federates N virtual deployments (distinct site prefixes,
// -things split across them) behind one micropnp.Fleet, fronted by the same
// REST surface: requests route to the owning member by Thing address prefix,
// the shared catalog leases each member's peripherals on that member's own
// clock (one catalog feed per member), and -managers M gives every member M
// redundant anycast manager instances. POST /admin/fail-manager crashes one
// of them for failover drills.
//
// A refresher goroutine issues a wildcard discovery every -refresh interval.
// The discovery replies renew the catalog's TTL leases (so hot-unplugged
// peripherals age out within one TTL + sweep), and in virtual mode the
// blocked discovery call doubles as the simulator pump: virtual time
// advances one discovery window per round even when no external request is
// driving it (the fleet fan-out pumps every member in federation order).
//
// Usage:
//
//	upnp-gateway [-addr :8080] [-things N] [-relays N] [-seed S]
//	             [-deployments N] [-managers M]
//	             [-ttl D] [-sweep D] [-refresh D]
//	             [-request-timeout D] [-stream-period D]
//	             [-realtime] [-timescale X]
//
// Examples:
//
//	go run ./cmd/upnp-gateway -things 100
//	go run ./cmd/upnp-gateway -deployments 3 -managers 2 -things 24
//	curl -s localhost:8080/things?limit=5
//	curl -s "localhost:8080/things/$ADDR/read?peripheral=tmp36"
//	curl -N "localhost:8080/things/$ADDR/stream?peripheral=tmp36"
//	curl -s -X POST "localhost:8080/admin/fail-manager?deployment=0&manager=0"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"micropnp"
	"micropnp/internal/catalog"
	"micropnp/internal/gateway"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		things     = flag.Int("things", 24, "deployment size (split across -deployments members)")
		relays     = flag.Int("relays", 0, "Things that also carry a relay bank (0 = every 8th)")
		seed       = flag.Int64("seed", 1, "deployment randomness seed")
		depCount   = flag.Int("deployments", 1, "federate this many deployments behind one fleet (distinct site prefixes)")
		managers   = flag.Int("managers", 1, "anycast manager instances per deployment")
		ttl        = flag.Duration("ttl", 30*time.Second, "catalog lease TTL (virtual time)")
		sweep      = flag.Duration("sweep", time.Second, "catalog sweep interval (wall time)")
		refresh    = flag.Duration("refresh", 2*time.Second, "lease-refresh discovery interval (wall time)")
		reqTimeout = flag.Duration("request-timeout", 0, "deployment request timeout (virtual; 0 = SDK default)")
		streamPer  = flag.Duration("stream-period", 5*time.Second, "subscription stream tick period (virtual)")
		realtime   = flag.Bool("realtime", false, "run the deployment on the wall clock")
		timescale  = flag.Float64("timescale", 0, "virtual seconds per wall second in -realtime mode")
	)
	flag.Parse()
	if err := run(*addr, *things, *relays, *seed, *depCount, *managers, *ttl, *sweep, *refresh, *reqTimeout, *streamPer, *realtime, *timescale); err != nil {
		fmt.Fprintln(os.Stderr, "upnp-gateway:", err)
		os.Exit(1)
	}
}

func run(addr string, things, relays int, seed int64, depCount, managers int, ttl, sweepIv, refreshIv, reqTimeout, streamPer time.Duration, realtime bool, timescale float64) error {
	if depCount < 1 {
		return fmt.Errorf("-deployments must be >= 1 (got %d)", depCount)
	}
	baseOpts := func(memberSeed int64, site int) []micropnp.Option {
		opts := []micropnp.Option{micropnp.WithSeed(memberSeed), micropnp.WithStreamPeriod(streamPer)}
		if site > 0 {
			opts = append(opts, micropnp.WithSite(site))
		}
		if managers > 1 {
			opts = append(opts, micropnp.WithManagers(managers))
		}
		if reqTimeout > 0 {
			opts = append(opts, micropnp.WithRequestTimeout(reqTimeout))
		}
		if realtime {
			opts = append(opts, micropnp.WithRealTime())
			if timescale > 0 {
				opts = append(opts, micropnp.WithTimeScale(timescale))
			}
		}
		return opts
	}

	// Boot the members: site i gets the 2001:db8:i::/48 prefix, a salted
	// seed, and its share of the Thing population.
	deps := make([]*micropnp.Deployment, depCount)
	for i := range deps {
		d, err := micropnp.NewDeployment(baseOpts(seed+int64(i)*104729, i)...)
		if err != nil {
			return err
		}
		defer d.Close()
		deps[i] = d
	}

	var (
		cat     *catalog.Catalog
		gwCfg   gateway.Config
		refresh func(ctx context.Context) error
		quiesce func(horizon time.Duration)
		err     error
	)
	if depCount == 1 {
		d := deps[0]
		cl, err2 := d.AddClient()
		if err2 != nil {
			return err2
		}
		if cat, err = catalog.New(catalog.Config{TTL: ttl, Now: d.Now}); err != nil {
			return err
		}
		cl.AddAdvertHook(cat.Observe)
		gwCfg = gateway.Config{Deployment: d, Client: cl, Catalog: cat}
		refresh = func(ctx context.Context) error {
			_, err := cl.Discover(ctx, micropnp.AllPeripherals)
			return err
		}
		quiesce = func(h time.Duration) { d.Quiesce(h) }
	} else {
		fleet, err2 := micropnp.NewFleet(deps...)
		if err2 != nil {
			return err2
		}
		// One catalog over the fleet: feed 0 rides member 0's clock, AddFeed
		// registers the rest, and the fleet-wide advert hook attributes each
		// sighting to its owning member by address prefix.
		if cat, err = catalog.New(catalog.Config{TTL: ttl, Now: deps[0].Now}); err != nil {
			return err
		}
		observers := map[*micropnp.Deployment]func(micropnp.Advert){deps[0]: cat.Observe}
		for _, d := range deps[1:] {
			feed, err2 := cat.AddFeed(d.Now)
			if err2 != nil {
				return err2
			}
			observers[d] = feed.Observe
		}
		fleet.AddAdvertHook(func(a micropnp.Advert) {
			if d := fleet.DeploymentFor(a.Thing); d != nil {
				observers[d](a)
			}
		})
		gwCfg = gateway.Config{Fleet: fleet, Catalog: cat}
		refresh = func(ctx context.Context) error {
			_, err := fleet.Discover(ctx, micropnp.AllPeripherals)
			return err
		}
		quiesce = func(h time.Duration) { fleet.Quiesce(h) }
	}

	if relays <= 0 {
		relays = (things + 7) / 8
	}
	for i, d := range deps {
		// Member i gets an even share of the population (earlier members
		// absorb the remainder), with its slice of the relay banks.
		share := things / depCount
		if i < things%depCount {
			share++
		}
		relayShare := relays / depCount
		if i < relays%depCount {
			relayShare++
		}
		if err := buildPopulation(d, i, share, relayShare); err != nil {
			return err
		}
		d.Run() // let every plug-in sequence (and its advert) play out
	}
	fmt.Printf("upnp-gateway: %d things across %d deployment(s) (%d manager(s) each), %d catalogued peripherals, mode %s\n",
		things, depCount, max(managers, 1), cat.Size(), mode(deps[0]))

	stopSweep := cat.Start(sweepIv)
	defer stopSweep()

	// Lease refresher (and virtual-clock pump).
	refreshCtx, stopRefresh := context.WithCancel(context.Background())
	defer stopRefresh()
	refreshDone := make(chan struct{})
	go func() {
		defer close(refreshDone)
		t := time.NewTicker(refreshIv)
		defer t.Stop()
		for {
			select {
			case <-refreshCtx.Done():
				return
			case <-t.C:
				if err := refresh(refreshCtx); err != nil &&
					!errors.Is(err, context.Canceled) && !errors.Is(err, micropnp.ErrClosed) {
					fmt.Fprintln(os.Stderr, "upnp-gateway: refresh discovery:", err)
				}
			}
		}
	}()

	gw, err := gateway.New(gwCfg)
	if err != nil {
		return err
	}
	srv := &http.Server{Addr: addr, Handler: gw}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		fmt.Printf("upnp-gateway: listening on %s\n", addr)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	select {
	case err := <-errCh:
		stopRefresh()
		<-refreshDone
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting, finish in-flight handlers, stop
	// the refresher, then drain the deployment's in-flight traffic.
	fmt.Println("upnp-gateway: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "upnp-gateway: shutdown:", err)
	}
	stopRefresh()
	<-refreshDone
	stopSweep()
	quiesce(30 * time.Second)
	return nil
}

func mode(d *micropnp.Deployment) string {
	if d.Realtime() {
		return "realtime"
	}
	return "virtual"
}

// buildPopulation plugs a deterministic sensor cycle (TMP36, HIH4030,
// BMP180, ADXL345) into n Things of one fleet member, the first nRelay of
// them also carrying a relay bank on channel 1.
func buildPopulation(d *micropnp.Deployment, member, n, nRelay int) error {
	for i := 0; i < n; i++ {
		th, err := d.AddThing(fmt.Sprintf("d%d-thing-%03d", member, i))
		if err != nil {
			return err
		}
		switch i % 4 {
		case 0:
			err = th.PlugTMP36(0)
		case 1:
			err = th.PlugHIH4030(0)
		case 2:
			err = th.PlugBMP180(0)
		default:
			err = th.PlugADXL345(0)
		}
		if err != nil {
			return err
		}
		if i < nRelay {
			if _, err := th.PlugRelay(1); err != nil {
				return err
			}
		}
	}
	return nil
}
