// Command upnpc is the µPnP driver compiler: it translates driver source in
// the µPnP DSL (Section 4.1) into the compact bytecode distributed over the
// air to µPnP Things.
//
// Usage:
//
//	upnpc -id 0xad1cbe01 [-o driver.upbc] [-S] [-sloc] driver.updsl
//
// Flags:
//
//	-id    device-type identifier the driver claims (required)
//	-o     output file (default: input with .upbc extension)
//	-S     print the disassembly instead of writing the binary
//	-sloc  print the source-lines-of-code count (Table 3 metric)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"micropnp/internal/bytecode"
	"micropnp/internal/dsl"
)

func main() {
	idFlag := flag.String("id", "", "device-type identifier, e.g. 0xad1cbe01")
	out := flag.String("o", "", "output file (default: <input>.upbc)")
	disasm := flag.Bool("S", false, "print disassembly instead of writing the binary")
	sloc := flag.Bool("sloc", false, "print the SLoC count of the source")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: upnpc -id 0x<device-id> [-o out.upbc] [-S] driver.updsl")
		os.Exit(2)
	}
	input := flag.Arg(0)
	src, err := os.ReadFile(input)
	if err != nil {
		fatal(err)
	}
	if *sloc {
		fmt.Printf("%s: %d SLoC\n", input, dsl.SLoC(string(src)))
	}
	if *idFlag == "" {
		fatal(fmt.Errorf("the -id flag is required (the claimed device type)"))
	}
	id, err := strconv.ParseUint(strings.TrimPrefix(*idFlag, "0x"), 16, 32)
	if err != nil {
		fatal(fmt.Errorf("bad device id %q: %w", *idFlag, err))
	}

	prog, err := dsl.Compile(string(src), uint32(id))
	if err != nil {
		fatal(err)
	}
	if *disasm {
		fmt.Print(bytecode.DisassembleProgram(prog))
		return
	}
	code, err := prog.Encode()
	if err != nil {
		fatal(err)
	}
	dest := *out
	if dest == "" {
		dest = strings.TrimSuffix(input, ".updsl") + ".upbc"
	}
	if err := os.WriteFile(dest, code, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d bytes -> %s\n", input, len(code), dest)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "upnpc:", err)
	os.Exit(1)
}
