// Command upnp-addrgen reproduces the µPnP address-space tool of
// Section 3.3: given an assigned 32-bit device-type identifier it generates
// the set of identification resistors a peripheral designer must place on
// the board (Figure 4), using purchasable E-series preferred values, and
// verifies that the realised values decode back to the identifier through
// the control-board electronics.
//
// Usage:
//
//	upnp-addrgen [-series 12|24|96] 0xad1cbe01 [more ids...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"micropnp/internal/hw"
)

func main() {
	series := flag.Int("series", 96, "IEC 60063 E-series to draw resistors from (12, 24 or 96)")
	flag.Parse()

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: upnp-addrgen [-series 96] 0x<device-id>...")
		os.Exit(2)
	}
	var s hw.ESeries
	switch *series {
	case 12:
		s = hw.E12
	case 24:
		s = hw.E24
	case 96:
		s = hw.E96
	default:
		fmt.Fprintf(os.Stderr, "upnp-addrgen: unsupported series E%d\n", *series)
		os.Exit(2)
	}

	for _, arg := range flag.Args() {
		id, err := strconv.ParseUint(strings.TrimPrefix(arg, "0x"), 16, 32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "upnp-addrgen: bad identifier %q: %v\n", arg, err)
			os.Exit(1)
		}
		set, err := hw.GenerateResistorSet(hw.DeviceID(id), s)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upnp-addrgen:", err)
			os.Exit(1)
		}
		fmt.Print(set.BOM())
		fmt.Println()
	}
}
