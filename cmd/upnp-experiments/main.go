// Command upnp-experiments regenerates every table and figure of the
// paper's evaluation (Section 6) from the simulated µPnP system.
//
// Usage:
//
//	upnp-experiments [-exp waveforms|fig12|table2|table3|table4|endtoend|ablation|all] [-runs N]
package main

import (
	"flag"
	"fmt"
	"os"

	"micropnp/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: waveforms, fig12, table2, table3, table4, endtoend, ablation, all")
	runs := flag.Int("runs", 10, "repetitions for timing experiments (Table 4)")
	flag.Parse()

	switch *exp {
	case "waveforms", "fig12", "table2", "table3", "table4", "endtoend", "ablation", "all":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}

	run := func(name string, fn func() string) {
		if *exp != "all" && *exp != name {
			return
		}
		fmt.Println(fn())
	}

	run("waveforms", experiments.Waveforms)
	run("fig12", experiments.Figure12Table)
	run("table2", experiments.Table2Text)
	run("table3", experiments.Table3Text)
	run("table4", func() string { return experiments.Table4Text(*runs) })
	run("endtoend", func() string {
		res, err := experiments.Table4(*runs)
		if err != nil {
			return err.Error()
		}
		return fmt.Sprintf("End-to-end plug-and-play (identification + driver install + group join):\n%s: %v ± %v (paper: 488.53 ms)\n",
			res.EndToEnd.Operation, res.EndToEnd.Mean, res.EndToEnd.Stddev)
	})
	run("ablation", func() string {
		return experiments.AblationPulse() + "\n" + experiments.AblationMulticastText()
	})
}
