// Command upnp-load drives a simulated µPnP deployment with a configurable
// workload — open-loop (Poisson or fixed-rate) or closed-loop (worker
// population with think time) arrivals over a weighted mix of SDK
// operations — and reports per-operation latency percentiles, throughput
// and error counters, as a human-readable table and as machine-readable
// JSON (LOAD_result.json) for the CI latency gate (cmd/benchgate -latency).
//
// Usage:
//
//	upnp-load [-scenario smoke|steady|churn|zoned|fleet|fanout|http-smoke] [-things N] [-shape wide|deep|branches|zones]
//	          [-rate R | -workers W -think D] [-mix read=60,write=10,...]
//	          [-warmup D] [-duration D] [-cooldown D] [-seed S] [-loss P]
//	          [-zones Z] [-shard-workers W] [-lookahead pair|global]
//	          [-deployments N] [-managers M] [-fail-at D]
//	          [-realtime] [-timescale X] [-clients N] [-out FILE]
//	          [-target http://HOST:PORT [-ops N]]
//
// -deployments > 1 federates that many virtual deployments (distinct sites)
// behind one micropnp.Fleet and routes the whole workload through the fleet
// surface, member clocks stepped round-robin by the conductor — still
// bit-deterministic per (scenario, seed), at any -shard-workers value.
// -managers sets per-deployment anycast manager redundancy, and -fail-at
// crashes manager 0 of deployment 0 that far into the workload (the
// deterministic failover-under-load scenario; the "fleet" preset does all
// three).
//
// -target switches to the HTTP client mode: instead of building an
// in-process deployment, the reads, writes and discoveries of the mix are
// issued as REST calls against a running cmd/upnp-gateway, and latency is
// the gateway's X-Upnp-Virtual-Ns virtual-time span. Against a quiet
// virtual-mode gateway the single-lane http-smoke scenario is deterministic
// and CI gates its p99s (LOAD_http_baseline.json).
//
// Virtual-mode runs (the default) are deterministic: the same scenario and
// seed reproduce the op schedule and every histogram bit for bit, on any
// machine — which is what lets CI gate latency percentiles against a
// committed baseline. -realtime runs the same schedule concurrently against
// the wall clock (compressed by -timescale) and measures real latencies.
//
// Examples:
//
//	go run ./cmd/upnp-load -scenario smoke -out LOAD_result.json
//	go run ./cmd/upnp-load -scenario smoke -realtime -timescale 50
//	go run ./cmd/upnp-load -scenario steady -workers 8 -think 100ms
//	go run ./cmd/benchgate -latency -baseline LOAD_baseline.json -input LOAD_result.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"micropnp/internal/loadgen"
)

func main() {
	var (
		scenario     = flag.String("scenario", "smoke", "preset: "+strings.Join(loadgen.Scenarios(), "|"))
		things       = flag.Int("things", 0, "override deployment size")
		shape        = flag.String("shape", "", "override topology: wide|deep|branches|zones")
		clients      = flag.Int("clients", 0, "override client count")
		rate         = flag.Float64("rate", 0, "override open-loop arrival rate (ops per virtual second)")
		process      = flag.String("process", "", "open-loop inter-arrival process: poisson|fixed")
		workers      = flag.Int("workers", 0, "run closed-loop with this worker population instead of open-loop")
		think        = flag.Duration("think", 0, "closed-loop think time between a completion and the next issue (virtual)")
		mix          = flag.String("mix", "", "override op mix, e.g. read=60,write=10,discover=5,subscribe=10,hotswap=10,discover_drivers=5")
		warmup       = flag.Duration("warmup", -1, "override warmup span (virtual; ops run unrecorded)")
		duration     = flag.Duration("duration", 0, "override measure window (virtual)")
		cooldown     = flag.Duration("cooldown", 0, "override drain horizon after the window (virtual)")
		seed         = flag.Int64("seed", 0, "override workload seed (0 keeps the preset's)")
		loss         = flag.Float64("loss", 0, "per-hop frame loss probability")
		zones        = flag.Int("zones", 0, "override zone-sharded lane count (>1 runs the parallel clock; virtual mode only)")
		shardWorkers = flag.Int("shard-workers", 0, "sharded round parallelism: 0 = GOMAXPROCS, 1 = the sequential single-loop schedule (determinism cross-check mode)")
		lookahead    = flag.String("lookahead", "pair", "sharded barrier window policy: pair (per-lane-pair topology matrix) | global (conservative one-hop quantum)")
		deployments  = flag.Int("deployments", 0, "federate this many virtual deployments behind one Fleet (>1; virtual open-loop only)")
		managers     = flag.Int("managers", 0, "per-deployment anycast manager redundancy (default 1)")
		failAt       = flag.Duration("fail-at", 0, "crash manager 0 of deployment 0 this far into the workload (virtual; needs -managers >= 2)")
		interp       = flag.Bool("interp", false, "pin driver execution to the reference bytecode interpreter instead of the compiled engine (transcript-identical; virtual-mode results stay byte-identical)")
		realtime     = flag.Bool("realtime", false, "run on the wall clock (concurrent runtime) instead of the deterministic virtual clock")
		timescale    = flag.Float64("timescale", 0, "virtual seconds per wall second in -realtime mode (preset default 50)")
		target       = flag.String("target", "", "HTTP client mode: drive a running cmd/upnp-gateway at this base URL instead of an in-process deployment")
		ops          = flag.Int("ops", 0, "HTTP mode: total operations to issue (default 200)")
		out          = flag.String("out", "LOAD_result.json", "write the JSON result here (\"-\" for stdout, \"\" to skip)")
		quiet        = flag.Bool("q", false, "suppress the human-readable summary")
	)
	flag.Parse()

	cfg, err := loadgen.Preset(*scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upnp-load:", err)
		os.Exit(2)
	}
	if *things > 0 {
		cfg.Things = *things
	}
	if *shape != "" {
		cfg.Shape = loadgen.Shape(*shape)
	}
	if *clients > 0 {
		cfg.Clients = *clients
	}
	if *rate > 0 {
		cfg.Rate = *rate
	}
	switch *process {
	case "":
	case "poisson":
		cfg.Process = loadgen.ProcessPoisson
	case "fixed":
		cfg.Process = loadgen.ProcessFixed
	default:
		fmt.Fprintf(os.Stderr, "upnp-load: unknown process %q\n", *process)
		os.Exit(2)
	}
	if *workers > 0 {
		cfg.Arrival = loadgen.ArrivalClosed
		cfg.Workers = *workers
	}
	if *think > 0 {
		cfg.Think = *think
	}
	if *mix != "" {
		if cfg.Mix, err = loadgen.ParseMix(*mix); err != nil {
			fmt.Fprintln(os.Stderr, "upnp-load:", err)
			os.Exit(2)
		}
	}
	if *warmup >= 0 {
		cfg.Warmup = *warmup
	}
	if *duration > 0 {
		cfg.Duration = *duration
	}
	if *cooldown > 0 {
		cfg.Cooldown = *cooldown
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *loss > 0 {
		cfg.LossRate = *loss
	}
	if *zones > 0 {
		cfg.Zones = *zones
	}
	if *shardWorkers > 0 {
		cfg.ShardWorkers = *shardWorkers
	}
	switch *lookahead {
	case "pair", "":
	case "global":
		cfg.GlobalLookahead = true
	default:
		fmt.Fprintf(os.Stderr, "upnp-load: unknown lookahead policy %q (want pair or global)\n", *lookahead)
		os.Exit(2)
	}
	if *deployments > 0 {
		cfg.Deployments = *deployments
	}
	if *managers > 0 {
		cfg.Managers = *managers
	}
	if *failAt > 0 {
		cfg.ManagerFailAt = *failAt
	}
	cfg.InterpDrivers = *interp
	cfg.Realtime = *realtime
	if *timescale > 0 {
		cfg.TimeScale = *timescale
	}
	cfg.Target = *target
	if *ops > 0 {
		cfg.HTTPOps = *ops
	}

	started := time.Now()
	res, err := loadgen.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "upnp-load:", err)
		os.Exit(1)
	}
	if !*quiet {
		res.Summarize(os.Stdout)
		fmt.Printf("wall time %.2fs\n", time.Since(started).Seconds())
	}
	if *out != "" {
		if err := res.WriteJSON(*out); err != nil {
			fmt.Fprintln(os.Stderr, "upnp-load:", err)
			os.Exit(1)
		}
		if *out != "-" && !*quiet {
			fmt.Printf("result written to %s\n", *out)
		}
	}
}
