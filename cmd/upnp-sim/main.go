// Command upnp-sim runs a scripted µPnP deployment scenario on the
// simulated network and prints a trace of what happened: peripherals get
// plugged into Things, drivers are fetched over the air from the manager,
// clients discover and read the peripherals. It is written entirely against
// the public SDK (package micropnp).
//
// Usage:
//
//	upnp-sim [-things N] [-hops H] [-loss P] [-churn K] [-seed S] [-realtime] [-timescale X]
//	         [-zones Z] [-shard-workers W] [-lookahead pair|global]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// Flags:
//
//	-things    number of Things (default 3)
//	-hops      depth of the RPL tree the Things hang from (default 1)
//	-loss      per-hop frame loss probability (default 0)
//	-churn     extra plug/unplug cycles to simulate (default 1)
//	-seed      random seed for loss/jitter sampling (default 1)
//	-realtime  run on the wall clock: the network advances on its own
//	           goroutines and SDK calls genuinely block (default: the
//	           deterministic virtual clock)
//	-timescale virtual seconds per wall second in -realtime mode
//	           (default 60; 1 = true real time)
//	-zones     run on the zone-sharded parallel clock with this many
//	           address zones (virtual mode only); Things spread round
//	           robin across per-zone subtrees. Results are bit-identical
//	           to the single-loop schedule of the same seed.
//	-shard-workers
//	           sharded round parallelism: 0 = GOMAXPROCS (default),
//	           1 = the sequential single-loop schedule
//	-lookahead sharded barrier window policy: pair (default — per-lane-pair
//	           topology lookahead matrix) or global (the conservative
//	           one-hop quantum)
//	-cpuprofile / -memprofile
//	           write pprof profiles of the scenario — the quickest way to
//	           diagnose a regression the benchgate CI gate flagged:
//	           go run ./cmd/upnp-sim -things 100 -churn 10 -cpuprofile cpu.pprof -memprofile mem.pprof
//	           go tool pprof -top cpu.pprof
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"micropnp"
)

func main() {
	nThings := flag.Int("things", 3, "number of Things")
	hops := flag.Int("hops", 1, "tree depth of the Things")
	loss := flag.Float64("loss", 0, "per-hop frame loss probability")
	churn := flag.Int("churn", 1, "extra plug/unplug cycles")
	seed := flag.Int64("seed", 1, "random seed for loss/jitter sampling")
	realtime := flag.Bool("realtime", false, "run on the wall clock (concurrent runtime)")
	timescale := flag.Float64("timescale", 60, "virtual seconds per wall second in -realtime mode")
	zones := flag.Int("zones", 0, "zone-sharded lane count (>1 enables the parallel clock; virtual mode only)")
	shardWorkers := flag.Int("shard-workers", 0, "sharded round parallelism: 0 = GOMAXPROCS, 1 = sequential single-loop schedule")
	lookahead := flag.String("lookahead", "pair", "sharded barrier window policy: pair (per-lane-pair topology matrix) | global (conservative one-hop quantum)")
	interp := flag.Bool("interp", false, "pin driver execution to the reference bytecode interpreter instead of the compiled engine (transcript-identical)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the scenario to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile (after the scenario) to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upnp-sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "upnp-sim:", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	globalLA := false
	switch *lookahead {
	case "pair", "":
	case "global":
		globalLA = true
	default:
		fmt.Fprintf(os.Stderr, "upnp-sim: unknown lookahead policy %q (want pair or global)\n", *lookahead)
		os.Exit(2)
	}

	if err := run(*nThings, *hops, *loss, *churn, *seed, *realtime, *timescale, *zones, *shardWorkers, globalLA, *interp); err != nil {
		fmt.Fprintln(os.Stderr, "upnp-sim:", err)
		os.Exit(1)
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "upnp-sim:", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // settle live objects so the profile shows retention, not churn
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "upnp-sim:", err)
			os.Exit(1)
		}
	}
}

func run(nThings, hops int, loss float64, churn int, seed int64, realtime bool, timescale float64, zones, shardWorkers int, globalLA, interp bool) error {
	opts := []micropnp.Option{micropnp.WithLossRate(loss), micropnp.WithSeed(seed)}
	if interp {
		opts = append(opts, micropnp.WithCompiledDrivers(false))
	}
	if realtime {
		opts = append(opts, micropnp.WithRealTime(), micropnp.WithTimeScale(timescale))
		zones = 0 // the sharded clock is a virtual-mode construct
	}
	if zones > 1 {
		opts = append(opts, micropnp.WithZones(zones))
		if shardWorkers > 0 {
			opts = append(opts, micropnp.WithShardWorkers(shardWorkers))
		}
		if globalLA {
			opts = append(opts, micropnp.WithGlobalLookahead())
		}
	}
	d, err := micropnp.NewDeployment(opts...)
	if err != nil {
		return err
	}
	defer d.Close()
	mode := "virtual clock"
	if realtime {
		mode = fmt.Sprintf("wall clock, %gx accelerated", timescale)
	} else if zones > 1 {
		mode = fmt.Sprintf("virtual clock, zone-sharded across %d lanes", zones)
	}
	fmt.Printf("deployment: loss=%.2f seed=%d runtime=%s\n", loss, seed, mode)
	ctx := context.Background()

	// Build a chain of relays to reach the requested depth, then hang the
	// Things off the last relay.
	var parent *micropnp.Thing
	for h := 1; h < hops; h++ {
		relay, err := addThing(d, fmt.Sprintf("relay-%d", h), parent)
		if err != nil {
			return err
		}
		parent = relay
	}

	things := make([]*micropnp.Thing, 0, nThings)
	kinds := []string{"TMP36", "HIH-4030", "BMP180", "ID-20LA"}
	// Under -zones, Things spread round robin across per-zone subtrees
	// hanging off the relay chain. Location zones are 1-based: zone 0 is
	// the control lane (manager, clients, relays).
	var zoneRoots []*micropnp.Thing
	if zones > 1 {
		zoneRoots = make([]*micropnp.Thing, zones+1)
	}
	for i := 0; i < nThings; i++ {
		name := fmt.Sprintf("thing-%d", i)
		var th *micropnp.Thing
		var err error
		if zoneRoots != nil {
			z := uint16(1 + i%zones)
			if zoneRoots[z] == nil {
				th, err = addThingInZone(d, name, z, parent)
				zoneRoots[z] = th
			} else {
				th, err = d.AddThing(name, micropnp.InZone(z), micropnp.Under(zoneRoots[z]))
			}
		} else {
			th, err = addThing(d, name, parent)
		}
		if err != nil {
			return err
		}
		things = append(things, th)
	}
	cl, err := d.AddClient()
	if err != nil {
		return err
	}
	cl.OnAdvert(func(a micropnp.Advert) {
		kind := "unsolicited"
		if a.Solicited {
			kind = "solicited"
		}
		fmt.Printf("  [client] %s advert: %v serves %v\n", kind, a.Thing, a.Device)
	})

	// Plug one peripheral per Thing, round robin over the standard set.
	for i, th := range things {
		var err error
		switch i % 4 {
		case 0:
			err = th.PlugTMP36(0)
		case 1:
			err = th.PlugHIH4030(0)
		case 2:
			err = th.PlugBMP180(0)
		case 3:
			_, err = th.PlugRFID(0)
		}
		if err != nil {
			return err
		}
		fmt.Printf("[plug] %s into %s (%v)\n", kinds[i%4], th.Addr(), d.Now())
	}
	d.Run()

	for _, th := range things {
		for _, tr := range th.Traces() {
			fmt.Printf("[trace] %v ch%d: identify=%v energy=%.3gmJ network=%v total=%v\n",
				tr.DeviceID, tr.Channel, tr.Identification.Round(0),
				float64(tr.Energy)*1e3, tr.NetworkTotal.Round(0), tr.Total.Round(0))
		}
	}
	fmt.Printf("[manager] served %d driver uploads\n", d.ManagerUploads())

	// Discovery sweep.
	fmt.Println("[client] discovering all peripherals...")
	if _, err := cl.Discover(ctx, micropnp.AllPeripherals); err != nil {
		return err
	}

	// Read every discovered temperature sensor; on a lossy network a read
	// may time out — the error surfaces instead of a callback hanging.
	for _, addr := range cl.Things(micropnp.TMP36) {
		r, err := cl.Read(ctx, addr, micropnp.TMP36)
		if err != nil {
			fmt.Printf("  [client] %v TMP36 read failed: %v\n", addr, err)
			continue
		}
		fmt.Printf("  [client] %v TMP36 reads %.1f °C\n", addr, float64(r.Values[0])/10)
	}

	// Churn: unplug and replug channel 0 of the first Thing.
	for k := 0; k < churn && len(things) > 0; k++ {
		th := things[0]
		fmt.Printf("[churn %d] unplug + replug on %v\n", k+1, th.Addr())
		if err := th.Unplug(0); err != nil {
			return err
		}
		d.Run()
		if err := th.PlugTMP36(0); err != nil {
			return err
		}
		d.Run()
	}
	st := d.NetworkStats()
	fmt.Printf("network: %d unicast, %d multicast, %d transmissions, %d delivered, %d lost, %d unhandled (virtual time %v)\n",
		st.UnicastSent, st.MulticastSent, st.Transmissions, st.Delivered, st.Lost, st.NoHandler, d.Now().Round(0))
	if st.ShardLanes > 0 && st.ShardRounds > 0 {
		fmt.Printf("sharded clock: %d lanes, %d rounds, %d events (%.1f events/round, %.0f%% lane occupancy), %d cross-lane merges, %d causality violations\n",
			st.ShardLanes, st.ShardRounds, st.ShardEvents,
			float64(st.ShardEvents)/float64(st.ShardRounds),
			100*float64(st.ShardLaneRounds)/(float64(st.ShardRounds)*float64(st.ShardLanes)),
			st.ShardCrossMerged, st.ShardCausalityViolations)
	}
	return nil
}

// addThing attaches a Thing at the root or under a parent.
func addThing(d *micropnp.Deployment, name string, parent *micropnp.Thing) (*micropnp.Thing, error) {
	if parent == nil {
		return d.AddThing(name)
	}
	return d.AddThing(name, micropnp.Under(parent))
}

func addThingInZone(d *micropnp.Deployment, name string, zone uint16, parent *micropnp.Thing) (*micropnp.Thing, error) {
	if parent == nil {
		return d.AddThing(name, micropnp.InZone(zone))
	}
	return d.AddThing(name, micropnp.InZone(zone), micropnp.Under(parent))
}
