// Command upnp-sim runs a scripted µPnP deployment scenario on the
// simulated network and prints a trace of what happened: peripherals get
// plugged into Things, drivers are fetched over the air from the manager,
// clients discover and read the peripherals.
//
// Usage:
//
//	upnp-sim [-things N] [-hops H] [-loss P] [-churn K]
//
// Flags:
//
//	-things  number of Things (default 3)
//	-hops    depth of the RPL tree the Things hang from (default 1)
//	-loss    per-hop frame loss probability (default 0)
//	-churn   extra plug/unplug cycles to simulate (default 1)
package main

import (
	"flag"
	"fmt"
	"os"

	"micropnp/internal/client"
	"micropnp/internal/core"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/thing"
)

func main() {
	nThings := flag.Int("things", 3, "number of Things")
	hops := flag.Int("hops", 1, "tree depth of the Things")
	loss := flag.Float64("loss", 0, "per-hop frame loss probability")
	churn := flag.Int("churn", 1, "extra plug/unplug cycles")
	flag.Parse()

	if err := run(*nThings, *hops, *loss, *churn); err != nil {
		fmt.Fprintln(os.Stderr, "upnp-sim:", err)
		os.Exit(1)
	}
}

func run(nThings, hops int, loss float64, churn int) error {
	d, err := core.NewDeployment(core.DeploymentConfig{LossRate: loss})
	if err != nil {
		return err
	}
	fmt.Printf("deployment: manager at %v (anycast %v), loss=%.2f\n",
		d.Manager.Node().Addr(), core.ManagerAnycast, loss)

	// Build a chain of relays to reach the requested depth, then hang the
	// Things off the last relay.
	parent := d.Manager.Node()
	for h := 1; h < hops; h++ {
		relay, err := d.AddThingAt(fmt.Sprintf("relay-%d", h), parent)
		if err != nil {
			return err
		}
		parent = relay.Node()
	}

	things := make([]*thing.Thing, 0, nThings)
	kinds := []string{"TMP36", "HIH-4030", "BMP180", "ID-20LA"}
	for i := 0; i < nThings; i++ {
		th, err := d.AddThingAt(fmt.Sprintf("thing-%d", i), parent)
		if err != nil {
			return err
		}
		things = append(things, th)
	}
	cl, err := d.AddClient()
	if err != nil {
		return err
	}
	cl.OnAdvert(func(a client.Advert) {
		kind := "unsolicited"
		if a.Solicited {
			kind = "solicited"
		}
		fmt.Printf("  [client] %s advert: %v serves %v\n", kind, a.Thing, a.Peripheral.ID)
	})

	// Plug one peripheral per Thing, round robin over the standard set.
	for i, th := range things {
		var err error
		switch i % 4 {
		case 0:
			err = d.PlugTMP36(th, 0)
		case 1:
			err = d.PlugHIH4030(th, 0)
		case 2:
			err = d.PlugBMP180(th, 0)
		case 3:
			_, err = d.PlugRFID(th, 0)
		}
		if err != nil {
			return err
		}
		fmt.Printf("[plug] %s into %s (%v)\n", kinds[i%4], th.Addr(), d.Network.Now())
	}
	d.Run()

	for _, th := range things {
		for _, tr := range th.Traces() {
			fmt.Printf("[trace] %v ch%d: identify=%v energy=%.3gmJ network=%v total=%v\n",
				tr.DeviceID, tr.Channel, tr.Identification.Round(0),
				float64(tr.Energy)*1e3, tr.NetworkTotal.Round(0), tr.Total.Round(0))
		}
	}
	fmt.Printf("[manager] served %d driver uploads\n", d.Manager.Uploads())

	// Discovery sweep.
	fmt.Println("[client] discovering all peripherals...")
	cl.Discover(hw.DeviceIDAllPeripherals)
	d.Run()

	// Read every discovered temperature sensor.
	for _, addr := range cl.Things(driver.IDTMP36) {
		a := addr
		cl.Read(a, driver.IDTMP36, func(v []int32) {
			if len(v) == 1 {
				fmt.Printf("  [client] %v TMP36 reads %.1f °C\n", a, float64(v[0])/10)
			}
		})
	}
	d.Run()

	// Churn: unplug and replug channel 0 of the first Thing.
	for k := 0; k < churn && len(things) > 0; k++ {
		th := things[0]
		fmt.Printf("[churn %d] unplug + replug on %v\n", k+1, th.Addr())
		if err := th.Unplug(0); err != nil {
			return err
		}
		d.Run()
		if err := d.PlugTMP36(th, 0); err != nil {
			return err
		}
		d.Run()
	}
	st := d.Network.Stats()
	fmt.Printf("network: %d unicast, %d multicast, %d transmissions, %d delivered, %d lost (virtual time %v)\n",
		st.UnicastSent, st.MulticastSent, st.Transmissions, st.Delivered, st.Lost,
		d.Network.Now().Round(0))
	_ = netsim.Port6030
	return nil
}
