// Command benchgate is the CI benchmark-regression gate: it parses `go test
// -bench` output, reduces the -count repetitions of each benchmark to their
// median ns/op, and compares against a committed JSON baseline. The build
// fails when the geometric mean of the per-benchmark ratios (new/baseline)
// exceeds the threshold.
//
// Gate a run:
//
//	go test -run '^$' -bench <pattern> -benchtime 1x -count 6 ./... | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -input bench.txt
//
// Refresh the baseline after an intentional performance change:
//
//	go run ./cmd/benchgate -input bench.txt -update -baseline BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to the
	// median ns/op of the baseline run.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)

// parseBench reduces a `go test -bench` output stream to median ns/op per
// benchmark name.
func parseBench(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		samples[m[1]] = append(samples[m[1]], v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	medians := map[string]float64{}
	for name, vals := range samples {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			medians[name] = vals[n/2]
		} else {
			medians[name] = (vals[n/2-1] + vals[n/2]) / 2
		}
	}
	return medians, nil
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
		inputPath    = flag.String("input", "", "benchmark output file (from go test -bench)")
		threshold    = flag.Float64("threshold", 1.20, "fail when the geomean ratio (new/baseline) exceeds this")
		update       = flag.Bool("update", false, "write the baseline from -input instead of comparing")
	)
	flag.Parse()
	if *inputPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -input is required")
		os.Exit(2)
	}
	medians, err := parseBench(*inputPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(medians) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark lines found in %s\n", *inputPath)
		os.Exit(2)
	}

	if *update {
		out, err := json.MarshalIndent(Baseline{
			Note:    "median ns/op from: go test -run '^$' -bench <gate pattern> -benchtime 1x -count 6; refresh with: go run ./cmd/benchgate -input bench.txt -update",
			NsPerOp: medians,
		}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks to %s\n", len(medians), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	names := make([]string, 0, len(base.NsPerOp))
	for name := range base.NsPerOp {
		names = append(names, name)
	}
	sort.Strings(names)

	logSum, compared, missing := 0.0, 0, 0
	fmt.Printf("%-55s %14s %14s %8s\n", "benchmark", "baseline", "new", "ratio")
	for _, name := range names {
		got, ok := medians[name]
		if !ok {
			fmt.Printf("%-55s %14.1f %14s %8s\n", name, base.NsPerOp[name], "MISSING", "-")
			missing++
			continue
		}
		ratio := got / base.NsPerOp[name]
		fmt.Printf("%-55s %14.1f %14.1f %7.3fx\n", name, base.NsPerOp[name], got, ratio)
		logSum += math.Log(ratio)
		compared++
	}
	for name := range medians {
		if _, ok := base.NsPerOp[name]; !ok {
			fmt.Printf("%-55s %14s %14.1f %8s  (not in baseline; run -update)\n", name, "-", medians[name], "-")
		}
	}
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %d baseline benchmark(s) missing from the run; update %s if they were renamed\n", missing, *baselinePath)
		os.Exit(1)
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — nothing to compare")
		os.Exit(1)
	}
	geomean := math.Exp(logSum / float64(compared))
	fmt.Printf("geomean ratio over %d benchmarks: %.3fx (threshold %.2fx)\n", compared, geomean, *threshold)
	if geomean > *threshold {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean regression %.3fx exceeds %.2fx\n", geomean, *threshold)
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}
