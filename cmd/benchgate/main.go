// Command benchgate is the CI benchmark-regression gate: it parses `go test
// -bench` output, reduces the -count repetitions of each benchmark to their
// median ns/op and allocs/op, and compares against a committed JSON baseline.
// The build fails when the geometric mean of the per-benchmark ratios
// (new/baseline) exceeds the threshold — on either metric: wall time and
// allocation count are gated independently, so a change that stays fast but
// reintroduces per-message allocations still fails.
//
// With -latency the gate instead compares a cmd/upnp-load result
// (LOAD_result.json) against a committed latency baseline
// (LOAD_baseline.json): the per-operation p99s are ratioed and the same
// geomean-over-threshold rule applies. Virtual-mode load runs are
// deterministic, so the committed baseline reproduces exactly on any
// machine and the gate has no noise floor:
//
//	go run ./cmd/upnp-load -scenario smoke -out LOAD_result.json
//	go run ./cmd/benchgate -latency -baseline LOAD_baseline.json -input LOAD_result.json
//	go run ./cmd/benchgate -latency -input LOAD_result.json -update -baseline LOAD_baseline.json
//
// Gate a run:
//
//	go test -run '^$' -bench <pattern> -benchtime 1x -count 6 ./... | tee bench.txt
//	go run ./cmd/benchgate -baseline BENCH_baseline.json -input bench.txt
//
// With -speedup the gate instead pairs fast sub-benchmarks with their slow
// twins (`-pair fast,slow`, default `clock=sharded,clock=single`) and gates
// the slow/fast ns/op ratio against an absolute floor (-min-speedup) and the
// committed baseline ratios (same >20% regression rule, applied to the
// ratio). The parallel simulator and the compiled driver plane both gate
// this way:
//
//	go test -run '^$' -bench BenchmarkScaleMulticast/zoned -benchtime 1x -count 6 ./internal/netsim | tee speedup.txt
//	go run ./cmd/benchgate -speedup -input speedup.txt -min-speedup 2.0
//
//	go test -run '^$' -bench BenchmarkDriverExec -benchtime 200ms -count 6 ./internal/vm | tee driver.txt
//	go run ./cmd/benchgate -speedup -pair driver=compiled,driver=interp -baseline SPEEDUP_driver.json -input driver.txt -min-speedup 2.0
//
// With -slo the gate asserts absolute per-op p99 ceilings from a committed
// SLO file against a cmd/upnp-load result — no relative baseline involved,
// which is what makes wall-clock (realtime) legs gateable at all:
//
//	go run ./cmd/benchgate -slo LOAD_steady_SLO.json -input LOAD_steady_realtime.json
//
// Refresh the baseline after an intentional performance change:
//
//	go run ./cmd/benchgate -input bench.txt -update -baseline BENCH_baseline.json
//
// Diagnose a regression the gate flagged (no Makefile needed): pass -profile
// to print ready-to-run `go test -cpuprofile/-memprofile` command lines for
// the worst offenders, or profile a scenario end to end with
// `go run ./cmd/upnp-sim -cpuprofile cpu.pprof -memprofile mem.pprof`.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Baseline is the committed benchmark reference.
type Baseline struct {
	// Note documents how to regenerate the file.
	Note string `json:"note"`
	// NsPerOp maps benchmark name (GOMAXPROCS suffix stripped) to the
	// median ns/op of the baseline run.
	NsPerOp map[string]float64 `json:"ns_per_op"`
	// AllocsPerOp is the median allocs/op for benchmarks that report it
	// (b.ReportAllocs or -benchmem).
	AllocsPerOp map[string]float64 `json:"allocs_per_op,omitempty"`
}

var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op`)
	allocsPart = regexp.MustCompile(`\s([0-9.]+) allocs/op`)
)

// parseBench reduces a `go test -bench` output stream to median ns/op (and,
// where reported, median allocs/op) per benchmark name.
func parseBench(path string) (ns, allocs map[string]float64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	nsSamples := map[string][]float64{}
	allocSamples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		v, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, nil, fmt.Errorf("bad ns/op in %q: %v", line, err)
		}
		nsSamples[m[1]] = append(nsSamples[m[1]], v)
		if am := allocsPart.FindStringSubmatch(line); am != nil {
			a, err := strconv.ParseFloat(am[1], 64)
			if err != nil {
				return nil, nil, fmt.Errorf("bad allocs/op in %q: %v", line, err)
			}
			allocSamples[m[1]] = append(allocSamples[m[1]], a)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return medians(nsSamples), medians(allocSamples), nil
}

func medians(samples map[string][]float64) map[string]float64 {
	out := map[string]float64{}
	for name, vals := range samples {
		sort.Float64s(vals)
		n := len(vals)
		if n%2 == 1 {
			out[name] = vals[n/2]
		} else {
			out[name] = (vals[n/2-1] + vals[n/2]) / 2
		}
	}
	return out
}

// compare prints a baseline-versus-run table for one metric and returns the
// geomean ratio, how many benchmarks were compared and how many baseline
// entries the run is missing. For allocs/op the ratio is smoothed as
// (new+1)/(baseline+1) so zero-allocation baselines stay comparable (and a
// 0→N regression still shows up as a large ratio).
func compare(metric string, base, got map[string]float64, smooth float64) (geomean float64, compared, missing int, worst []string) {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		name  string
		ratio float64
	}
	var rows []row
	logSum := 0.0
	fmt.Printf("%-55s %14s %14s %8s\n", metric, "baseline", "new", "ratio")
	for _, name := range names {
		g, ok := got[name]
		if !ok {
			fmt.Printf("%-55s %14.1f %14s %8s\n", name, base[name], "MISSING", "-")
			missing++
			continue
		}
		ratio := (g + smooth) / (base[name] + smooth)
		fmt.Printf("%-55s %14.1f %14.1f %7.3fx\n", name, base[name], g, ratio)
		logSum += math.Log(ratio)
		compared++
		rows = append(rows, row{name, ratio})
	}
	for name := range got {
		if _, ok := base[name]; !ok {
			fmt.Printf("%-55s %14s %14.1f %8s  (not in baseline; run -update)\n", name, "-", got[name], "-")
		}
	}
	if compared == 0 {
		return 1, 0, missing, nil
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].ratio > rows[j].ratio })
	for i := 0; i < len(rows) && i < 3; i++ {
		if rows[i].ratio > 1 {
			worst = append(worst, rows[i].name)
		}
	}
	return math.Exp(logSum / float64(compared)), compared, missing, worst
}

// LatencyBaseline is the committed load-latency reference: the per-op p99s
// of one deterministic virtual-mode cmd/upnp-load run.
type LatencyBaseline struct {
	Note string `json:"note"`
	// Scenario and Seed pin the run the baseline came from; the gate
	// refuses to compare a result from a different scenario or seed.
	Scenario string `json:"scenario"`
	Seed     int64  `json:"seed"`
	Mode     string `json:"mode"`
	// P99Ns maps operation name to its p99 latency in nanoseconds of
	// virtual time.
	P99Ns map[string]float64 `json:"p99_ns"`
}

// loadResult is the subset of cmd/upnp-load's LOAD_result.json the latency
// gate consumes.
type loadResult struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"`
	Seed     int64  `json:"seed"`
	Ops      map[string]struct {
		P99Ns float64 `json:"p99_ns"`
	} `json:"ops"`
}

// latencySmooth is added to both sides of every p99 ratio so zero-sample
// operations stay comparable (1ms, well under any real op latency in the
// gated scenarios).
const latencySmooth = 1e6

// latencyGate implements -latency: gate (or -update) a LOAD_result.json
// against a committed LOAD_baseline.json on per-op p99 geomean.
func latencyGate(baselinePath, inputPath string, threshold float64, update bool) {
	raw, err := os.ReadFile(inputPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var res loadResult
	if err := json.Unmarshal(raw, &res); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", inputPath, err)
		os.Exit(2)
	}
	if len(res.Ops) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no ops in %s\n", inputPath)
		os.Exit(2)
	}
	p99s := map[string]float64{}
	for name, op := range res.Ops {
		p99s[name] = op.P99Ns
	}

	if update {
		out, err := json.MarshalIndent(LatencyBaseline{
			Note:     "per-op p99 (ns, virtual) from: go run ./cmd/upnp-load -scenario " + res.Scenario + " ; refresh with: go run ./cmd/benchgate -latency -input LOAD_result.json -update",
			Scenario: res.Scenario,
			Seed:     res.Seed,
			Mode:     res.Mode,
			P99Ns:    p99s,
		}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d op p99s (scenario %s, seed %d) to %s\n", len(p99s), res.Scenario, res.Seed, baselinePath)
		return
	}

	braw, err := os.ReadFile(baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var base LatencyBaseline
	if err := json.Unmarshal(braw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", baselinePath, err)
		os.Exit(2)
	}
	if base.Scenario != res.Scenario || base.Seed != res.Seed || (base.Mode != "" && base.Mode != res.Mode) {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — baseline is scenario %q seed %d mode %q but the run is scenario %q seed %d mode %q; latency ratios only mean something within one deterministic scenario\n",
			base.Scenario, base.Seed, base.Mode, res.Scenario, res.Seed, res.Mode)
		os.Exit(1)
	}

	geo, compared, missing, _ := compare("load latency (p99 ns)", base.P99Ns, p99s, latencySmooth)
	fmt.Println()
	fail := false
	if missing > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %d baseline op(s) missing from the run; update %s if the mix changed\n", missing, baselinePath)
		fail = true
	}
	if compared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — nothing to compare")
		fail = true
	}
	fmt.Printf("geomean p99 ratio over %d ops: %.3fx (threshold %.2fx)\n", compared, geo, threshold)
	if geo > threshold {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean p99 regression %.3fx exceeds %.2fx\n", geo, threshold)
		fail = true
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

// SpeedupBaseline is the committed speedup reference: the slow/fast ns/op
// ratio per benchmark stem from one paired run (e.g. single-loop/sharded for
// the parallel simulator, interp/compiled for the driver plane).
type SpeedupBaseline struct {
	Note string `json:"note"`
	// Speedup maps benchmark stem (the name with the fast `-pair` component
	// removed) to the median-ns/op ratio slow/fast.
	Speedup map[string]float64 `json:"speedup"`
}

// speedupRatios pairs every benchmark carrying the fast sub-benchmark tag
// (e.g. `clock=sharded` or `driver=compiled`) with its slow twin (the same
// name with the slow tag substituted) and returns the slow/fast median-ns/op
// ratio per stem (the name with the `/fast` component removed). A fast
// benchmark without a twin is an error: a lone half would silently un-gate
// the speedup.
func speedupRatios(ns map[string]float64, fastTag, slowTag string) (map[string]float64, error) {
	fast := "/" + fastTag
	slow := "/" + slowTag
	ratios := map[string]float64{}
	for name, fastNs := range ns {
		if !strings.Contains(name, fast) {
			continue
		}
		twin := strings.Replace(name, fast, slow, 1)
		slowNs, ok := ns[twin]
		if !ok {
			return nil, fmt.Errorf("%s has no %s twin in the run", name, slow)
		}
		if fastNs <= 0 {
			return nil, fmt.Errorf("%s: non-positive ns/op", name)
		}
		ratios[strings.Replace(name, fast, "", 1)] = slowNs / fastNs
	}
	return ratios, nil
}

// speedupGate implements -speedup: gate (or -update) the speedup ratios of a
// paired fast-vs-slow benchmark run — `/clock=sharded` vs `/clock=single` for
// the parallel simulator, `/driver=compiled` vs `/driver=interp` for the
// driver plane, or any other `-pair fast,slow` sub-benchmark twins. Two rules
// apply: the geomean ratio over the pair set must reach the absolute
// -min-speedup floor (the speedup must actually pay), and no individual
// ratio may fall more than the threshold factor below the committed baseline
// ratio (the >20% regression rule on the ratio itself).
func speedupGate(baselinePath, inputPath, pair string, minSpeedup, threshold float64, update bool) {
	fastTag, slowTag, ok := strings.Cut(pair, ",")
	if !ok || fastTag == "" || slowTag == "" {
		fmt.Fprintf(os.Stderr, "benchgate: -pair must be \"fast,slow\" sub-benchmark tags, got %q\n", pair)
		os.Exit(2)
	}
	ns, _, err := parseBench(inputPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	ratios, err := speedupRatios(ns, fastTag, slowTag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %v\n", err)
		os.Exit(1)
	}
	if len(ratios) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no /%s benchmarks found in %s\n", fastTag, inputPath)
		os.Exit(2)
	}

	if update {
		out, err := json.MarshalIndent(SpeedupBaseline{
			Note: fmt.Sprintf("%s/%s ns/op ratios from the paired speedup benchmarks; refresh with: go run ./cmd/benchgate -speedup -pair %s -input bench.txt -update -baseline %s",
				slowTag, fastTag, pair, baselinePath),
			Speedup: ratios,
		}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d speedup ratio(s) to %s\n", len(ratios), baselinePath)
		return
	}

	var base SpeedupBaseline
	if braw, err := os.ReadFile(baselinePath); err == nil {
		if err := json.Unmarshal(braw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", baselinePath, err)
			os.Exit(2)
		}
	} else if !os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}

	names := make([]string, 0, len(ratios))
	for name := range ratios {
		names = append(names, name)
	}
	sort.Strings(names)
	fail := false
	logSum := 0.0
	fmt.Printf("%-55s %10s %10s\n", fmt.Sprintf("speedup (%s/%s ns/op)", slowTag, fastTag), "baseline", "new")
	for _, name := range names {
		baseStr := "-"
		if b, ok := base.Speedup[name]; ok {
			baseStr = fmt.Sprintf("%.2fx", b)
		}
		fmt.Printf("%-55s %10s %9.2fx\n", name, baseStr, ratios[name])
		logSum += math.Log(ratios[name])
		if b, ok := base.Speedup[name]; ok && ratios[name] < b/threshold {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — %s speedup %.2fx regressed more than %.0f%% from the %.2fx baseline\n",
				name, ratios[name], (threshold-1)*100, b)
			fail = true
		}
	}
	// The absolute floor applies to the geomean over the pair set, not each
	// ratio: a pair set is one optimization (one parallel simulator, one
	// compiled driver plane) and the claim being gated is that it pays off
	// overall, while individual members (a signal-bound relay driver, say)
	// may legitimately sit below the floor. With a single pair the geomean
	// is that pair's ratio, so the original clock=sharded gate is unchanged.
	geo := math.Exp(logSum / float64(len(ratios)))
	fmt.Printf("geomean speedup over %d pair(s): %.2fx (floor %.2fx)\n", len(ratios), geo, minSpeedup)
	if geo < minSpeedup {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean speedup %.2fx is below the %.2fx floor\n", geo, minSpeedup)
		fail = true
	}
	for name := range base.Speedup {
		if _, ok := ratios[name]; !ok {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — baseline speedup pair %s missing from the run; update %s if it was renamed\n", name, baselinePath)
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

// SLOFile is a committed set of absolute per-op p99 ceilings (wall or
// virtual nanoseconds, matching the run's mode) for one load scenario.
type SLOFile struct {
	Note string `json:"note"`
	// Scenario pins the run the ceilings apply to.
	Scenario string `json:"scenario"`
	// Mode guards against gating a virtual run with wall-clock ceilings.
	Mode string `json:"mode,omitempty"`
	// P99MaxNs maps operation name to its absolute p99 ceiling.
	P99MaxNs map[string]float64 `json:"p99_max_ns"`
}

// sloGate implements -slo: assert a cmd/upnp-load result against absolute
// per-op p99 ceilings. Unlike the relative -latency rule this needs no
// baseline run to compare against, so it can gate wall-clock (realtime)
// legs where a committed relative baseline would be all noise — the
// ceilings just have to clear the characterized runner jitter.
func sloGate(sloPath, inputPath string) {
	raw, err := os.ReadFile(inputPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var res loadResult
	if err := json.Unmarshal(raw, &res); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", inputPath, err)
		os.Exit(2)
	}
	sraw, err := os.ReadFile(sloPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var slo SLOFile
	if err := json.Unmarshal(sraw, &slo); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", sloPath, err)
		os.Exit(2)
	}
	if len(slo.P99MaxNs) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no p99_max_ns ceilings in %s\n", sloPath)
		os.Exit(2)
	}
	if slo.Scenario != res.Scenario || (slo.Mode != "" && slo.Mode != res.Mode) {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — SLO file is for scenario %q mode %q but the run is scenario %q mode %q\n",
			slo.Scenario, slo.Mode, res.Scenario, res.Mode)
		os.Exit(1)
	}
	names := make([]string, 0, len(slo.P99MaxNs))
	for name := range slo.P99MaxNs {
		names = append(names, name)
	}
	sort.Strings(names)
	fail := false
	fmt.Printf("%-30s %14s %14s\n", "op p99 SLO (ns)", "ceiling", "measured")
	for _, name := range names {
		op, ok := res.Ops[name]
		if !ok {
			fmt.Printf("%-30s %14.0f %14s\n", name, slo.P99MaxNs[name], "MISSING")
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — op %s has an SLO but is missing from the run\n", name)
			fail = true
			continue
		}
		fmt.Printf("%-30s %14.0f %14.0f\n", name, slo.P99MaxNs[name], op.P99Ns)
		if op.P99Ns > slo.P99MaxNs[name] {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL — op %s p99 %.0fns exceeds the %.0fns SLO\n", name, op.P99Ns, slo.P99MaxNs[name])
			fail = true
		}
	}
	if fail {
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_baseline.json", "baseline JSON path")
		inputPath    = flag.String("input", "", "benchmark output file (from go test -bench), or a LOAD_result.json with -latency")
		threshold    = flag.Float64("threshold", 1.20, "fail when a geomean ratio (new/baseline) exceeds this")
		update       = flag.Bool("update", false, "write the baseline from -input instead of comparing")
		profile      = flag.Bool("profile", false, "on regression, print go test -cpuprofile/-memprofile commands for the worst benchmarks")
		latency      = flag.Bool("latency", false, "gate cmd/upnp-load latency percentiles (p99 geomean) instead of go test -bench output")
		speedup      = flag.Bool("speedup", false, "gate the speedup of paired fast-vs-slow sub-benchmarks (see -pair)")
		pair         = flag.String("pair", "clock=sharded,clock=single", "with -speedup: \"fast,slow\" sub-benchmark tags to twin, e.g. driver=compiled,driver=interp")
		minSpeedup   = flag.Float64("min-speedup", 1.0, "with -speedup: fail when any slow/fast ratio is below this floor")
		sloPath      = flag.String("slo", "", "gate a LOAD_result.json against absolute per-op p99 ceilings from this SLO file")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: go run ./cmd/benchgate -input bench.txt [-baseline BENCH_baseline.json] [-threshold 1.20] [-update] [-profile]\n"+
			"       go run ./cmd/benchgate -latency -input LOAD_result.json [-baseline LOAD_baseline.json] [-threshold 1.20] [-update]\n"+
			"       go run ./cmd/benchgate -speedup -input bench.txt [-pair fast,slow] [-baseline SPEEDUP_baseline.json] [-min-speedup 2.0] [-update]\n"+
			"       go run ./cmd/benchgate -slo LOAD_steady_SLO.json -input LOAD_steady_realtime.json\n\n"+
			"Gates both ns/op and allocs/op medians against the committed baseline;\n"+
			"-latency gates a cmd/upnp-load run's per-op p99s instead.\n"+
			"Diagnose a flagged regression without any Makefile:\n"+
			"  go run ./cmd/benchgate -input bench.txt -profile\n"+
			"  go run ./cmd/upnp-sim -cpuprofile cpu.pprof -memprofile mem.pprof -things 100\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *inputPath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	if *sloPath != "" {
		sloGate(*sloPath, *inputPath)
		return
	}
	if *speedup {
		baselineSet := false
		flag.Visit(func(f *flag.Flag) { baselineSet = baselineSet || f.Name == "baseline" })
		if !baselineSet {
			*baselinePath = "SPEEDUP_baseline.json"
		}
		speedupGate(*baselinePath, *inputPath, *pair, *minSpeedup, *threshold, *update)
		return
	}
	if *latency {
		baselineSet := false
		flag.Visit(func(f *flag.Flag) { baselineSet = baselineSet || f.Name == "baseline" })
		if !baselineSet {
			*baselinePath = "LOAD_baseline.json"
		}
		latencyGate(*baselinePath, *inputPath, *threshold, *update)
		return
	}
	ns, allocs, err := parseBench(*inputPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(ns) == 0 {
		fmt.Fprintf(os.Stderr, "benchgate: no benchmark lines found in %s\n", *inputPath)
		os.Exit(2)
	}

	if *update {
		out, err := json.MarshalIndent(Baseline{
			Note:        "median ns/op and allocs/op from: go test -run '^$' -bench <gate pattern> -benchtime 1x -count 6; refresh with: go run ./cmd/benchgate -input bench.txt -update",
			NsPerOp:     ns,
			AllocsPerOp: allocs,
		}, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(out, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchgate: wrote %d benchmarks (%d with allocs/op) to %s\n", len(ns), len(allocs), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: parsing %s: %v\n", *baselinePath, err)
		os.Exit(2)
	}

	nsGeo, nsCompared, nsMissing, nsWorst := compare("benchmark (ns/op)", base.NsPerOp, ns, 0)
	fmt.Println()
	allocGeo, allocCompared, allocMissing, allocWorst := compare("benchmark (allocs/op)", base.AllocsPerOp, allocs, 1)
	fmt.Println()

	fail := false
	if nsMissing > 0 || allocMissing > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — %d ns/op and %d allocs/op baseline benchmark(s) missing from the run; update %s if they were renamed\n",
			nsMissing, allocMissing, *baselinePath)
		fail = true
	}
	if nsCompared == 0 {
		fmt.Fprintln(os.Stderr, "benchgate: FAIL — nothing to compare")
		fail = true
	}
	fmt.Printf("geomean ns/op ratio over %d benchmarks: %.3fx (threshold %.2fx)\n", nsCompared, nsGeo, *threshold)
	if allocCompared > 0 {
		fmt.Printf("geomean allocs/op ratio over %d benchmarks: %.3fx (threshold %.2fx)\n", allocCompared, allocGeo, *threshold)
	}
	var regressed []string
	if nsGeo > *threshold {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean ns/op regression %.3fx exceeds %.2fx\n", nsGeo, *threshold)
		regressed = append(regressed, nsWorst...)
		fail = true
	}
	if allocCompared > 0 && allocGeo > *threshold {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL — geomean allocs/op regression %.3fx exceeds %.2fx\n", allocGeo, *threshold)
		regressed = append(regressed, allocWorst...)
		fail = true
	}
	if fail {
		if *profile && len(regressed) > 0 {
			fmt.Fprintln(os.Stderr, "\nprofile the worst offenders:")
			seen := map[string]bool{}
			for _, name := range regressed {
				if seen[name] {
					continue
				}
				seen[name] = true
				fmt.Fprintf(os.Stderr, "  go test -run '^$' -bench '^%s$' -benchtime 10x -cpuprofile cpu.pprof -memprofile mem.pprof ./...\n", benchRootName(name))
			}
			fmt.Fprintln(os.Stderr, "  go tool pprof -top cpu.pprof   # or: -alloc_objects mem.pprof")
		}
		os.Exit(1)
	}
	fmt.Println("benchgate: OK")
}

// benchRootName strips a sub-benchmark suffix ("BenchmarkX/depth=10") down to
// the function name `go test -bench` can anchor on.
func benchRootName(name string) string {
	for i, r := range name {
		if r == '/' {
			return name[:i]
		}
	}
	return name
}
