// Manager-redundancy failover tests: the Section 5 anycast redundancy
// reachable through the public SDK. Everything here uses only the root
// package — the same constraint external consumers live under.
package micropnp_test

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"micropnp"
)

// installVictim builds a two-manager deployment, completes one reference
// plug-in (to learn the deterministic identification duration), then plugs
// a second "victim" Thing, optionally crashing the nearest manager failAfter
// into the victim's plug-in sequence. It returns the victim's installed
// driver bytes (nil when the install never completed) and the uploads total.
func installVictim(t *testing.T, fail bool, failAfter func(identify time.Duration) time.Duration) ([]byte, int) {
	t.Helper()
	d := newSDKDeployment(t, micropnp.WithManagers(2))
	probe, err := d.AddThing("probe")
	if err != nil {
		t.Fatal(err)
	}
	if err := probe.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	traces := probe.Traces()
	if len(traces) != 1 || !traces[0].Done {
		t.Fatal("reference plug-in did not complete")
	}
	identify := traces[0].Identification

	victim, err := d.AddThing("victim")
	if err != nil {
		t.Fatal(err)
	}
	if fail {
		d.ScheduleAfter(failAfter(identify), func() {
			if err := d.FailManager(0); err != nil {
				t.Errorf("FailManager: %v", err)
			}
		})
	}
	if err := victim.PlugTMP36(0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	return victim.InstalledDriverBytes(micropnp.TMP36), d.ManagerUploads()
}

// TestDriverInstallThroughFailover pins the acceptance contract: a driver
// install completed through a manager crash is byte-identical to the
// no-failure run's installed driver state. The crash lands after the
// victim's install request reached the nearest manager and before the
// upload left it (identification + ~27 ms arrival, + 26 ms lookup), so the
// upload is suppressed and the Thing's ARQ retransmission to the anycast
// must finish the job on the survivor.
func TestDriverInstallThroughFailover(t *testing.T) {
	want, wantUploads := installVictim(t, false, nil)
	if len(want) == 0 {
		t.Fatal("no-failure run installed no driver")
	}
	got, uploads := installVictim(t, true, func(identify time.Duration) time.Duration {
		return identify + 40*time.Millisecond
	})
	if len(got) == 0 {
		t.Fatal("victim never got its driver through failover")
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("failover-installed driver differs from no-failure run: %d vs %d bytes", len(got), len(want))
	}
	if uploads != wantUploads {
		t.Fatalf("failover run served %d uploads, no-failure run %d", uploads, wantUploads)
	}
}

// TestDriverInstallRequestInFlight crashes the manager while the victim's
// very first install request is still on the wire (2 ms after it was sent,
// one hop takes ≥26 ms): the datagram lands on the dead instance's unbound
// port and is dropped, and only the ARQ retransmission — routed to the
// surviving anycast member — installs the driver.
func TestDriverInstallRequestInFlight(t *testing.T) {
	want, _ := installVictim(t, false, nil)
	got, _ := installVictim(t, true, func(identify time.Duration) time.Duration {
		return identify + 2*time.Millisecond
	})
	if !bytes.Equal(got, want) {
		t.Fatalf("in-flight-failure install differs from no-failure run: %d vs %d bytes", len(got), len(want))
	}
}

// TestHotPlugDuringFailover pins the tentpole scenario: a Thing plugged in
// AFTER the nearest manager already crashed still gets its driver — the
// install request routes to the surviving anycast member directly.
func TestHotPlugDuringFailover(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithManagers(2))
	if n := d.ManagerCount(); n != 2 {
		t.Fatalf("ManagerCount = %d, want 2", n)
	}
	if err := d.FailManager(0); err != nil {
		t.Fatal(err)
	}
	th, err := d.AddThing("hotplug", micropnp.WithPeripherals(micropnp.TMP36))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if len(th.InstalledDriverBytes(micropnp.TMP36)) == 0 {
		t.Fatal("Thing hot-plugged during failover never got its driver")
	}
	if got := d.ManagerUploads(); got != 1 {
		t.Fatalf("uploads = %d, want 1 (served by the survivor)", got)
	}
	// A read through the freshly installed driver works end to end.
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.SetEnvironment(21.0, 40, 101_325)
	if _, err := cl.Read(context.Background(), th.Addr(), micropnp.TMP36); err != nil {
		t.Fatalf("read after failover install: %v", err)
	}
}

// TestAllManagersDown is the negative control: with every manager crashed
// the install request has no live anycast member at all, the ARQ gives up
// after MaxDriverRequests, and no driver appears.
func TestAllManagersDown(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithManagers(2))
	if err := d.FailManager(0); err != nil {
		t.Fatal(err)
	}
	if err := d.FailManager(1); err != nil {
		t.Fatal(err)
	}
	th, err := d.AddThing("orphan", micropnp.WithPeripherals(micropnp.TMP36))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if got := th.InstalledDriverBytes(micropnp.TMP36); got != nil {
		t.Fatalf("driver installed with every manager down (%d bytes)", len(got))
	}
}

// TestManagerLossMidDiscoverDrivers crashes the serving manager while a
// DiscoverDrivers request is in flight: the drained pending entry migrates
// to the survivor (re-issued with a fresh sequence number and full
// timeout), so the blocked SDK call still returns the driver list.
func TestManagerLossMidDiscoverDrivers(t *testing.T) {
	d := newSDKDeployment(t, micropnp.WithManagers(2))
	th, err := d.AddThing("lab", micropnp.WithPeripherals(micropnp.TMP36))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	// The request datagram needs ≥26 ms for its first hop: a crash 2 ms in
	// catches it mid-flight with the pending entry still on manager 0.
	d.ScheduleAfter(2*time.Millisecond, func() {
		if err := d.FailManager(0); err != nil {
			t.Errorf("FailManager: %v", err)
		}
	})
	ids, err := d.DiscoverDrivers(context.Background(), th)
	if err != nil {
		t.Fatalf("DiscoverDrivers through failover: %v", err)
	}
	if len(ids) != 1 || ids[0] != micropnp.TMP36 {
		t.Fatalf("DiscoverDrivers = %v, want [TMP36]", ids)
	}
}

// TestManagerLossMidDiscoverNoSurvivor: with the last manager crashing
// mid-request there is nothing to migrate to — the call fails with
// ErrTimeout immediately instead of hanging until the deadline.
func TestManagerLossMidDiscoverNoSurvivor(t *testing.T) {
	d := newSDKDeployment(t)
	th, err := d.AddThing("lab", micropnp.WithPeripherals(micropnp.TMP36))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	d.ScheduleAfter(2*time.Millisecond, func() {
		if err := d.FailManager(0); err != nil {
			t.Errorf("FailManager: %v", err)
		}
	})
	if _, err := d.DiscoverDrivers(context.Background(), th); !errors.Is(err, micropnp.ErrTimeout) {
		t.Fatalf("DiscoverDrivers with no survivor = %v, want ErrTimeout", err)
	}
}

// TestAddManagerAfterCreation grows the redundancy set at runtime and pins
// the index contract FailManager names instances by.
func TestAddManagerAfterCreation(t *testing.T) {
	d := newSDKDeployment(t)
	if n := d.ManagerCount(); n != 1 {
		t.Fatalf("ManagerCount = %d, want 1", n)
	}
	idx, err := d.AddManager()
	if err != nil {
		t.Fatal(err)
	}
	if idx != 1 || d.ManagerCount() != 2 {
		t.Fatalf("AddManager = %d (count %d), want index 1 of 2", idx, d.ManagerCount())
	}
	if err := d.FailManager(2); err == nil {
		t.Fatal("FailManager(2) on a 2-manager deployment must fail")
	}
	if err := d.FailManager(0); err != nil {
		t.Fatal(err)
	}
	th, err := d.AddThing("late", micropnp.WithPeripherals(micropnp.TMP36))
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	if len(th.InstalledDrivers()) != 1 {
		t.Fatal("install through the runtime-added manager failed")
	}
}
