// Fleet federation tests: prefix routing, fan-out discovery, the unified
// advert flow, and -race coverage of concurrent Fleet calls in both clock
// modes.
package micropnp_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"micropnp"
)

// newTestFleet builds an n-deployment fleet (sites 0..n-1, two managers
// each), one Thing per deployment carrying a TMP36, all plug-ins completed.
func newTestFleet(t *testing.T, n int, extra ...micropnp.Option) (*micropnp.Fleet, []*micropnp.Thing) {
	t.Helper()
	deps := make([]*micropnp.Deployment, n)
	things := make([]*micropnp.Thing, n)
	for i := range deps {
		opts := append([]micropnp.Option{
			micropnp.WithSite(i),
			micropnp.WithManagers(2),
		}, extra...)
		d := newSDKDeployment(t, opts...)
		d.SetEnvironment(20.0+float64(i), 40, 101_325)
		th, err := d.AddThing("probe", micropnp.WithPeripherals(micropnp.TMP36))
		if err != nil {
			t.Fatal(err)
		}
		deps[i] = d
		things[i] = th
	}
	f, err := micropnp.NewFleet(deps...)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range deps {
		d.Run()
		if d.Realtime() {
			t.Cleanup(d.Close)
		}
	}
	return f, things
}

// TestFleetPrefixRouting reads every deployment's Thing through one Fleet:
// each request must land on the right network, which shows in the distinct
// simulated temperatures.
func TestFleetPrefixRouting(t *testing.T) {
	f, things := newTestFleet(t, 3)
	ctx := context.Background()
	for i, th := range things {
		r, err := f.Read(ctx, th.Addr(), micropnp.TMP36)
		if err != nil {
			t.Fatalf("fleet read of deployment %d: %v", i, err)
		}
		want := int32((20 + i) * 10) // TMP36 reports tenths of °C
		if len(r.Values) != 1 || r.Values[0] < want-2 || r.Values[0] > want+2 {
			t.Fatalf("deployment %d read %v, want ~[%d] (its own simulated climate)", i, r.Values, want)
		}
		if got := f.DeploymentFor(th.Addr()); got != th.Deployment() {
			t.Fatalf("DeploymentFor(%v) routed to the wrong deployment", th.Addr())
		}
	}
	// Writes route as well: the relay lives only in deployment 1.
	relay, err := things[1].Deployment().AddThing("panel")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relay.PlugRelay(0); err != nil {
		t.Fatal(err)
	}
	things[1].Deployment().Run()
	if err := f.Write(ctx, relay.Addr(), micropnp.Relay, []int32{1}); err != nil {
		t.Fatalf("fleet write: %v", err)
	}
}

// TestFleetNoDeployment pins the routing error: an address under no member
// prefix fails fast with ErrNoDeployment, wrapped for errors.Is.
func TestFleetNoDeployment(t *testing.T) {
	f, _ := newTestFleet(t, 2)
	stranger := mustAddr("2001:db8:99::123")
	if _, err := f.Read(context.Background(), stranger, micropnp.TMP36); !errors.Is(err, micropnp.ErrNoDeployment) {
		t.Fatalf("Read(foreign addr) = %v, want ErrNoDeployment", err)
	}
	if err := f.Write(context.Background(), stranger, micropnp.Relay, []int32{1}); !errors.Is(err, micropnp.ErrNoDeployment) {
		t.Fatalf("Write(foreign addr) = %v, want ErrNoDeployment", err)
	}
	if f.DeploymentFor(stranger) != nil {
		t.Fatal("DeploymentFor(foreign addr) must be nil")
	}
}

// TestFleetDuplicatePrefix: two deployments on the same site cannot be
// federated — prefix routing could not tell them apart.
func TestFleetDuplicatePrefix(t *testing.T) {
	a := newSDKDeployment(t)
	b := newSDKDeployment(t)
	if _, err := micropnp.NewFleet(a, b); err == nil {
		t.Fatal("NewFleet with duplicate prefixes must fail")
	}
	if _, err := micropnp.NewFleet(); err == nil {
		t.Fatal("NewFleet() with no deployments must fail")
	}
}

// TestFleetDiscoverAndStats fans a discovery out across the fleet and
// checks the aggregate surfaces: adverts concatenate in federation order,
// Things merges the per-deployment answers, Stats sums the counters.
func TestFleetDiscoverAndStats(t *testing.T) {
	f, things := newTestFleet(t, 3)
	adverts, err := f.Discover(context.Background(), micropnp.TMP36)
	if err != nil {
		t.Fatal(err)
	}
	if len(adverts) != 3 {
		t.Fatalf("fleet discovery found %d adverts, want 3", len(adverts))
	}
	for i, a := range adverts {
		if a.Thing != things[i].Addr() {
			t.Fatalf("advert %d from %v, want %v (federation order)", i, a.Thing, things[i].Addr())
		}
	}
	if got := f.Things(micropnp.TMP36); len(got) != 3 {
		t.Fatalf("fleet Things = %d, want 3", len(got))
	}
	total, per := f.Stats(), f.DeploymentStats()
	if len(per) != 3 {
		t.Fatalf("DeploymentStats has %d entries, want 3", len(per))
	}
	sum := 0
	for _, s := range per {
		sum += s.Delivered
	}
	if total.Delivered != sum || total.Delivered == 0 {
		t.Fatalf("Stats().Delivered = %d, want the per-deployment sum %d (nonzero)", total.Delivered, sum)
	}
	if !f.Quiesce(time.Second) {
		t.Fatal("an idle fleet must quiesce")
	}
}

// TestFleetAdvertHook registers one hook across the fleet and hot-plugs a
// peripheral in each member: every advert arrives on the unified flow,
// attributable to its deployment by address prefix.
func TestFleetAdvertHook(t *testing.T) {
	f, things := newTestFleet(t, 2)
	var mu sync.Mutex
	perDep := map[int]int{}
	f.AddAdvertHook(func(a micropnp.Advert) {
		mu.Lock()
		defer mu.Unlock()
		for i, th := range things {
			if f.DeploymentFor(a.Thing) == th.Deployment() {
				perDep[i]++
			}
		}
	})
	for _, th := range things {
		if err := th.PlugHIH4030(1); err != nil {
			t.Fatal(err)
		}
		th.Deployment().Run()
	}
	mu.Lock()
	defer mu.Unlock()
	for i := range things {
		if perDep[i] == 0 {
			t.Fatalf("unified advert hook saw no advert from deployment %d (got %v)", i, perDep)
		}
	}
}

// TestFleetSubscribe streams from a Thing in the second deployment through
// the fleet surface.
func TestFleetSubscribe(t *testing.T) {
	f, things := newTestFleet(t, 2)
	sub, err := f.Subscribe(context.Background(), things[1].Addr(), micropnp.TMP36, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	things[1].Deployment().RunFor(25 * time.Second)
	if len(sub.Readings()) == 0 {
		t.Fatal("fleet subscription delivered no readings")
	}
}

// fleetStorm issues concurrent reads from many goroutines across every
// deployment of a fleet — the -race leg for both clock modes.
func fleetStorm(t *testing.T, f *micropnp.Fleet, things []*micropnp.Thing) {
	t.Helper()
	ctx := context.Background()
	const goroutines, per = 8, 6
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*per)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				th := things[(g+k)%len(things)]
				if _, err := f.Read(ctx, th.Addr(), micropnp.TMP36); err != nil {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestFleetConcurrentVirtual exercises concurrent Fleet calls on virtual
// clocks: each member deployment's await driver election must cope with
// cross-deployment callers mixing freely.
func TestFleetConcurrentVirtual(t *testing.T) {
	f, things := newTestFleet(t, 3)
	fleetStorm(t, f, things)
}

// TestFleetConcurrentRealtime is the same storm against wall-clock members.
func TestFleetConcurrentRealtime(t *testing.T) {
	f, things := newTestFleet(t, 3,
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(2000),
		micropnp.WithRequestTimeout(30*time.Minute))
	fleetStorm(t, f, things)
}
