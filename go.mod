module micropnp

go 1.24
