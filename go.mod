module micropnp

go 1.23
