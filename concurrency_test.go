// Concurrency tests for the SDK: parallel Read/Write/Subscribe/Unsubscribe
// across both clock modes, the subscription Close lifecycle, the retry
// (ARQ) layer, and the realtime throughput acceptance test (hundreds of
// goroutines against a 1,000-Thing deployment). All of these run under the
// CI race leg (go test -race -short ./...).
package micropnp_test

import (
	"context"
	"errors"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"micropnp"
)

// throughputScale keeps accelerated-runtime tests fast: virtual seconds
// pass in wall milliseconds.
const throughputScale = 4000

// plugFleet builds a deployment with n Things, each serving a TMP36, and
// returns the Things. The plug-in sequences are left to play out by the
// caller (d.Run()).
func plugFleet(t testing.TB, d *micropnp.Deployment, n int) []*micropnp.Thing {
	t.Helper()
	things := make([]*micropnp.Thing, n)
	for i := range things {
		th, err := d.AddThing(fmt.Sprintf("thing-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if err := th.PlugTMP36(0); err != nil {
			t.Fatal(err)
		}
		things[i] = th
	}
	return things
}

// TestConcurrentReadsVirtual drives many goroutines through the virtual
// clock: the blocked calls elect one driver to step the simulator while the
// rest park on their completion channels.
func TestConcurrentReadsVirtual(t *testing.T) {
	d, err := micropnp.NewDeployment()
	if err != nil {
		t.Fatal(err)
	}
	things := plugFleet(t, d, 4)
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	const goroutines, per = 24, 5
	var wg sync.WaitGroup
	var failures atomic.Int32
	ctx := context.Background()
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				th := things[(g+k)%len(things)]
				r, err := cl.Read(ctx, th.Addr(), micropnp.TMP36)
				if err != nil || len(r.Values) == 0 {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d/%d concurrent virtual reads failed", n, goroutines*per)
	}
}

// TestConcurrentMixedOpsRealtime exercises parallel Read, Write, Discover,
// Subscribe and Close against a realtime deployment.
func TestConcurrentMixedOpsRealtime(t *testing.T) {
	d, err := micropnp.NewDeployment(
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(throughputScale),
		micropnp.WithRequestTimeout(30*time.Minute),
		micropnp.WithStreamPeriod(2*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	things := plugFleet(t, d, 6)
	relayThing, err := d.AddThing("relays")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := relayThing.PlugRelay(0); err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Readers.
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				th := things[(g+k)%len(things)]
				if _, err := cl.Read(ctx, th.Addr(), micropnp.TMP36); err != nil {
					errs <- fmt.Errorf("read: %w", err)
				}
			}
		}()
	}
	// Writers against the relay bank.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				if err := cl.Write(ctx, relayThing.Addr(), micropnp.Relay, []int32{int32(g + k)}); err != nil {
					errs <- fmt.Errorf("write: %w", err)
				}
			}
		}()
	}
	// Discoverers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := cl.Discover(ctx, micropnp.TMP36); err != nil {
				errs <- fmt.Errorf("discover: %w", err)
			}
		}()
	}
	// Subscribers: establish, collect a tick or two, close.
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			sub, err := cl.Subscribe(ctx, things[g%len(things)].Addr(), micropnp.TMP36, nil)
			if err != nil {
				errs <- fmt.Errorf("subscribe: %w", err)
				return
			}
			d.RunFor(3 * time.Second)
			sub.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRealtimeThroughput is the acceptance test for the concurrent runtime:
// over a hundred goroutines issue Reads against a 1,000-Thing realtime
// deployment; every read must succeed, and closing the deployment must
// leak no goroutines.
func TestRealtimeThroughput(t *testing.T) {
	nThings, readers, perReader := 1000, 120, 4
	if testing.Short() {
		nThings, readers = 300, 100
	}
	before := runtime.NumGoroutine()
	d, err := micropnp.NewDeployment(
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(throughputScale),
		// A large virtual deadline: the loop fires events in virtual-time
		// order, so replies (sub-second virtual) always beat this expiry
		// even when the worker pool is backlogged on the wall clock.
		micropnp.WithRequestTimeout(30*time.Minute),
	)
	if err != nil {
		t.Fatal(err)
	}
	things := plugFleet(t, d, nThings)
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run() // all 1,000 plug-in cascades drain

	ctx := context.Background()
	var wg sync.WaitGroup
	var ok, failed atomic.Int64
	start := time.Now()
	for g := 0; g < readers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perReader; k++ {
				th := things[(g*perReader+k*31)%len(things)]
				if _, err := cl.Read(ctx, th.Addr(), micropnp.TMP36); err != nil {
					failed.Add(1)
				} else {
					ok.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if f := failed.Load(); f != 0 {
		t.Fatalf("%d/%d concurrent reads failed", f, int64(readers*perReader))
	}
	t.Logf("%d reads by %d goroutines against %d Things in %v (%.0f reads/s)",
		ok.Load(), readers, nThings, elapsed, float64(ok.Load())/elapsed.Seconds())

	d.Close()
	// The loop and every pool worker must exit; allow unrelated runtime
	// goroutines a moment to settle.
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("goroutine leak: %d before, %d after Close", before, after)
	}
}

// TestNestedSDKCallFromCallbackVirtual guards the reentrant pump path: an
// SDK call issued from inside a simulator-driven callback (here a Write
// from OnReading) must pump the simulator recursively, exactly as the
// pre-runtime inline Step loop did, instead of parking on the driver —
// which is this same goroutine, blocked inside its own handler.
func TestNestedSDKCallFromCallbackVirtual(t *testing.T) {
	d, err := micropnp.NewDeployment(micropnp.WithStreamPeriod(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	th := plugFleet(t, d, 1)[0]
	relayThing, err := d.AddThing("relays")
	if err != nil {
		t.Fatal(err)
	}
	relay, err := relayThing.PlugRelay(0)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	ctx := context.Background()
	var nestedErr error
	nested := false
	sub, err := cl.Subscribe(ctx, th.Addr(), micropnp.TMP36, func(r micropnp.Reading) {
		if nested {
			return
		}
		nested = true
		// A blocking SDK call from inside the delivery callback.
		nestedErr = cl.Write(ctx, relayThing.Addr(), micropnp.Relay, []int32{0b11})
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	done := make(chan struct{})
	go func() {
		d.RunFor(3 * time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("nested SDK call deadlocked the virtual pump")
	}
	if !nested {
		t.Fatal("stream never delivered; nested call untested")
	}
	if nestedErr != nil {
		t.Fatalf("nested write failed: %v", nestedErr)
	}
	if got := relay.State(); got != 0b11 {
		t.Fatalf("relay state = %08b after nested write", got)
	}
}

// TestCloseUnblocksParkedCalls closes a realtime deployment while readers
// are parked on requests that can never complete (unreachable Thing, huge
// deadline): every parked call must return ErrClosed promptly instead of
// hanging forever on an expiry event the dead clock will never fire.
func TestCloseUnblocksParkedCalls(t *testing.T) {
	d, err := micropnp.NewDeployment(
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(10), // slow: the virtual expiry is hours of wall time away
		micropnp.WithRequestTimeout(24*time.Hour),
	)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	ghost := netip.MustParseAddr("2001:db8::dead")
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			_, err := cl.Read(context.Background(), ghost, micropnp.TMP36)
			errs <- err
		}()
	}
	time.Sleep(20 * time.Millisecond) // let the readers park
	d.Close()
	for g := 0; g < 8; g++ {
		select {
		case err := <-errs:
			if !errors.Is(err, micropnp.ErrClosed) {
				t.Fatalf("parked read returned %v, want ErrClosed", err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("read still parked after Close")
		}
	}
}

// TestSubscriptionCloseIdempotent double-closes a subscription in virtual
// mode: the second Close must be a no-op and the handle must stay usable.
func TestSubscriptionCloseIdempotent(t *testing.T) {
	d, err := micropnp.NewDeployment(micropnp.WithStreamPeriod(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	th := plugFleet(t, d, 1)[0]
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()
	sub, err := cl.Subscribe(context.Background(), th.Addr(), micropnp.TMP36, nil)
	if err != nil {
		t.Fatal(err)
	}
	d.RunFor(2500 * time.Millisecond)
	got := len(sub.Readings())
	if got == 0 {
		t.Fatal("no readings before Close")
	}
	sub.Close()
	sub.Close() // idempotent
	if !sub.Closed() {
		t.Fatal("Closed() false after Close")
	}
	d.RunFor(3 * time.Second)
	if after := len(sub.Readings()); after != got {
		t.Fatalf("readings grew after Close: %d -> %d", got, after)
	}
}

// TestSubscriptionCloseConcurrentWithDelivery races many Closes against
// in-flight stream deliveries on the realtime runtime: no panic, no double
// teardown, and Readings stays stable once Close has been observed.
func TestSubscriptionCloseConcurrentWithDelivery(t *testing.T) {
	d, err := micropnp.NewDeployment(
		micropnp.WithRealTime(),
		micropnp.WithTimeScale(throughputScale),
		micropnp.WithRequestTimeout(30*time.Minute),
		micropnp.WithStreamPeriod(500*time.Millisecond), // dense virtual ticks
	)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	th := plugFleet(t, d, 1)[0]
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	// Stream ticks fire on the network's own goroutines; pace the test on
	// the wall clock rather than virtual spans.
	waitFor := func(cond func() bool) bool {
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		return false
	}

	ctx := context.Background()
	for round := 0; round < 5; round++ {
		var delivered atomic.Int32
		sub, err := cl.Subscribe(ctx, th.Addr(), micropnp.TMP36, func(micropnp.Reading) {
			delivered.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		// Let ticks flow, then close from several goroutines at once while
		// deliveries are still arriving.
		if !waitFor(func() bool { return delivered.Load() >= 2 }) {
			t.Fatalf("round %d: stream delivered nothing", round)
		}
		var wg sync.WaitGroup
		for c := 0; c < 8; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				sub.Close()
			}()
		}
		wg.Wait()
		if !sub.Closed() {
			t.Fatal("Closed() false after concurrent Close")
		}
		// The stream keeps ticking on the Thing side; the closed handle
		// must stay stable (modulo the one documented in-flight delivery,
		// which the handle's closed check drops from Readings).
		stable := len(sub.Readings())
		time.Sleep(20 * time.Millisecond)
		if after := len(sub.Readings()); after != stable {
			t.Fatalf("round %d: readings grew after Close: %d -> %d", round, stable, after)
		}
	}
	// The Thing still streams; a fresh subscription must work after all
	// those closes.
	sub, err := cl.Subscribe(ctx, th.Addr(), micropnp.TMP36, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !waitFor(func() bool { return len(sub.Readings()) > 0 }) {
		t.Fatal("no readings on a fresh subscription after concurrent closes")
	}
	sub.Close()
}
