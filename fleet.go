package micropnp

import (
	"context"
	"fmt"
	"net/netip"
	"time"

	"micropnp/internal/netsim"
)

// Fleet federates several deployments — independent µPnP networks, each
// with its own manager set and address prefix — behind one client surface:
// the paper's single-LAN design scaled to a building of LANs. Requests
// carrying a Thing address route to that Thing's deployment by the 48-bit
// network prefix the address starts with; discovery fans out to every
// deployment and concatenates the answers in deployment order, so fleet
// results are as deterministic as the member deployments' clocks.
//
// Construct the members with distinct WithSite values (site 0 is the
// default) and federate them:
//
//	north, _ := micropnp.NewDeployment(micropnp.WithManagers(2))
//	south, _ := micropnp.NewDeployment(micropnp.WithSite(1), micropnp.WithManagers(2))
//	fleet, _ := micropnp.NewFleet(north, south)
//	r, err := fleet.Read(ctx, thingAddr, micropnp.TMP36) // routes by prefix
//
// A Fleet is safe for concurrent use whenever its member deployments are:
// its own state is immutable after NewFleet, and every call delegates to a
// per-deployment client. Note that each member keeps its own virtual clock —
// the Fleet does not interleave them; drive each deployment (or use the
// loadgen fleet conductor, which steps them round-robin).
type Fleet struct {
	deps     []*Deployment
	clients  []*Client
	byPrefix map[netsim.NetworkPrefix]int
}

// NewFleet federates the given deployments behind one Fleet. Each
// deployment must carry a distinct network prefix (distinct WithSite
// values); a duplicate is a configuration error, since prefix routing could
// not tell the two apart. NewFleet attaches one client node to every
// deployment for the fleet's own traffic.
func NewFleet(deployments ...*Deployment) (*Fleet, error) {
	if len(deployments) == 0 {
		return nil, fmt.Errorf("micropnp: NewFleet needs at least one deployment")
	}
	f := &Fleet{
		deps:     append([]*Deployment(nil), deployments...),
		clients:  make([]*Client, len(deployments)),
		byPrefix: make(map[netsim.NetworkPrefix]int, len(deployments)),
	}
	for i, d := range f.deps {
		if d == nil {
			return nil, fmt.Errorf("micropnp: NewFleet deployment %d is nil", i)
		}
		p := d.core.Prefix()
		if j, dup := f.byPrefix[p]; dup {
			return nil, fmt.Errorf("micropnp: deployments %d and %d share network prefix %v — give each a distinct WithSite", j, i, p)
		}
		f.byPrefix[p] = i
		cl, err := d.AddClient()
		if err != nil {
			return nil, err
		}
		f.clients[i] = cl
	}
	return f, nil
}

// Deployments returns the member deployments, in federation order.
func (f *Fleet) Deployments() []*Deployment {
	return append([]*Deployment(nil), f.deps...)
}

// DeploymentFor returns the member deployment owning a Thing address, or
// nil when no member's network prefix matches.
func (f *Fleet) DeploymentFor(thing netip.Addr) *Deployment {
	if i, ok := f.byPrefix[netsim.PrefixFromAddr(thing)]; ok {
		return f.deps[i]
	}
	return nil
}

// route resolves the client for a Thing-addressed request.
func (f *Fleet) route(thing netip.Addr) (*Client, error) {
	if i, ok := f.byPrefix[netsim.PrefixFromAddr(thing)]; ok {
		return f.clients[i], nil
	}
	return nil, fmt.Errorf("%w: %v", ErrNoDeployment, thing)
}

// Read routes a Client.Read to the deployment owning the Thing's prefix.
func (f *Fleet) Read(ctx context.Context, thing netip.Addr, id DeviceID) (Reading, error) {
	cl, err := f.route(thing)
	if err != nil {
		return Reading{}, err
	}
	return cl.Read(ctx, thing, id)
}

// ReadInto routes a Client.ReadInto to the deployment owning the Thing's
// prefix; the scratch-buffer contract is Client.ReadInto's.
func (f *Fleet) ReadInto(ctx context.Context, thing netip.Addr, id DeviceID, scratch []int32) (Reading, error) {
	cl, err := f.route(thing)
	if err != nil {
		return Reading{}, err
	}
	return cl.ReadInto(ctx, thing, id, scratch)
}

// Write routes a Client.Write to the deployment owning the Thing's prefix.
func (f *Fleet) Write(ctx context.Context, thing netip.Addr, id DeviceID, vals []int32) error {
	cl, err := f.route(thing)
	if err != nil {
		return err
	}
	return cl.Write(ctx, thing, id, vals)
}

// Subscribe routes a Client.Subscribe to the deployment owning the Thing's
// prefix. Remember that stream data only flows while that Thing's own
// deployment runs.
func (f *Fleet) Subscribe(ctx context.Context, thing netip.Addr, id DeviceID, onReading func(Reading)) (*Subscription, error) {
	cl, err := f.route(thing)
	if err != nil {
		return nil, err
	}
	return cl.Subscribe(ctx, thing, id, onReading)
}

// Discover multicasts a discovery in every member deployment, in
// federation order, and concatenates the adverts. An empty result is not an
// error. The fan-out is sequential — deployment i+1's window opens after
// deployment i's closed — keeping the combined result order deterministic
// on virtual clocks.
func (f *Fleet) Discover(ctx context.Context, id DeviceID) ([]Advert, error) {
	var all []Advert
	for _, cl := range f.clients {
		got, err := cl.Discover(ctx, id)
		if err != nil {
			return all, err
		}
		all = append(all, got...)
	}
	return all, nil
}

// DiscoverInZone is Discover restricted to a location zone, fanned out
// across the fleet (the same zone number may exist in every deployment).
func (f *Fleet) DiscoverInZone(ctx context.Context, zone uint16, id DeviceID) ([]Advert, error) {
	var all []Advert
	for _, cl := range f.clients {
		got, err := cl.DiscoverInZone(ctx, zone, id)
		if err != nil {
			return all, err
		}
		all = append(all, got...)
	}
	return all, nil
}

// Things returns the distinct Things that advertised a peripheral type to
// the fleet's clients, concatenated in federation order.
func (f *Fleet) Things(id DeviceID) []netip.Addr {
	var all []netip.Addr
	for _, cl := range f.clients {
		all = append(all, cl.Things(id)...)
	}
	return all
}

// AddAdvertHook registers an advertisement listener on every member
// deployment's fleet client — one unified advert flow for catalogs and
// monitors fronting the whole fleet. The hook runs on whichever
// deployment's goroutine delivers the advert and must not block; use
// Advert.Thing's prefix (DeploymentFor) to attribute it.
func (f *Fleet) AddAdvertHook(fn func(Advert)) {
	for _, cl := range f.clients {
		cl.AddAdvertHook(fn)
	}
}

// Quiesce drains every member deployment (Deployment.Quiesce, same
// horizon), in federation order, reporting whether all of them drained.
func (f *Fleet) Quiesce(horizon time.Duration) bool {
	all := true
	for _, d := range f.deps {
		if !d.Quiesce(horizon) {
			all = false
		}
	}
	return all
}

// Stats sums the member deployments' network counters into one fleet-wide
// snapshot (ShardLanes is the sum of member lane counts).
func (f *Fleet) Stats() NetworkStats {
	var total NetworkStats
	for _, d := range f.deps {
		s := d.NetworkStats()
		total.UnicastSent += s.UnicastSent
		total.MulticastSent += s.MulticastSent
		total.Transmissions += s.Transmissions
		total.Delivered += s.Delivered
		total.Lost += s.Lost
		total.NoHandler += s.NoHandler
		total.ShardLanes += s.ShardLanes
		total.ShardRounds += s.ShardRounds
		total.ShardEvents += s.ShardEvents
		total.ShardLaneRounds += s.ShardLaneRounds
		total.ShardCrossMerged += s.ShardCrossMerged
		total.ShardCausalityViolations += s.ShardCausalityViolations
	}
	return total
}

// DeploymentStats returns each member deployment's own network counters,
// in federation order.
func (f *Fleet) DeploymentStats() []NetworkStats {
	out := make([]NetworkStats, len(f.deps))
	for i, d := range f.deps {
		out[i] = d.NetworkStats()
	}
	return out
}
