package micropnp

import (
	"context"
	"net/netip"
	"sync"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
)

// Client is a µPnP client: software that discovers and uses peripherals
// hosted by Things. Its calls are synchronous: each one blocks until the
// reply arrives, the deadline passes, or the context is cancelled. In
// virtual mode blocked calls cooperatively drive the discrete-event
// simulator; in real-time mode they wait on channels while the network's
// own goroutines do the work. A Client is safe for concurrent use — any
// number of goroutines may issue Reads, Writes, Discovers and Subscribes
// at once.
type Client struct {
	d  *Deployment
	cl *client.Client
}

// Addr returns the client's unicast IPv6 address.
func (c *Client) Addr() netip.Addr { return c.cl.Addr() }

// Adverts returns every advertisement the client observed so far,
// unsolicited ones included.
func (c *Client) Adverts() []Advert { return advertsFrom(c.cl.Adverts()) }

// Things returns the distinct Things that advertised a peripheral type
// (AllPeripherals matches any).
func (c *Client) Things(id DeviceID) []netip.Addr { return c.cl.Things(hw.DeviceID(id)) }

// InFlight returns the number of requests (reads, writes, discoveries) this
// client currently has pending — a diagnostic for load tooling, and zero
// once every call returned: cancelled calls retract their pending entry
// immediately rather than letting it expire at its deadline.
func (c *Client) InFlight() int { return c.cl.Pending() }

// OnAdvert registers a callback invoked for every incoming advertisement,
// replacing any callback registered before. For composable listeners use
// AddAdvertHook.
func (c *Client) OnAdvert(fn func(Advert)) {
	if fn == nil {
		c.cl.OnAdvert(nil)
		return
	}
	c.cl.OnAdvert(func(a client.Advert) { fn(advertFrom(a)) })
}

// AddAdvertHook registers an additional advertisement listener. Unlike
// OnAdvert it composes: every registered hook fires for every advert,
// alongside the OnAdvert callback, so independent consumers — a catalog
// feeding on the advert flow, an application callback — can coexist without
// clobbering each other. Hooks cannot be removed; they live as long as the
// client. Hooks run on the goroutine delivering the advert (a pool worker in
// real-time mode) and must not block.
func (c *Client) AddAdvertHook(fn func(Advert)) {
	if fn == nil {
		return
	}
	c.cl.AddAdvertHook(func(a client.Advert) { fn(advertFrom(a)) })
}

// units resolves the unit string for a peripheral type: what the Thing
// advertised, falling back to the shipped-driver registry.
func (c *Client) units(id DeviceID) string {
	if u := c.cl.Units(hw.DeviceID(id)); u != "" {
		return u
	}
	return driver.UnitsFor(hw.DeviceID(id))
}

// Read requests one value set from a peripheral on a Thing and blocks
// (driving the simulator) until the reply arrives or the deadline passes.
// It returns ErrTimeout when the Thing is unreachable or the reply is lost,
// ErrNoPeripheral when the Thing serves no such device, and the context's
// error on cancellation.
func (c *Client) Read(ctx context.Context, thing netip.Addr, id DeviceID) (Reading, error) {
	// The reply callback writes into the pooled completion's result slots —
	// no per-call result cell on the heap, and the callback closure captures
	// only the deployment alongside the completion it is handed. The Reading
	// itself is assembled here after await hands the completion back; only
	// the reply timestamp must be sampled inside the callback, while the
	// simulator still stands at the delivery instant.
	d := c.d
	cpl, err := d.await(ctx, func(timeout time.Duration, cpl *completion) (retract func()) {
		return c.cl.Read(thing, hw.DeviceID(id), timeout, func(vals []int32, err error) {
			// Write the results before signalling completion: the awaiting
			// goroutine reads them the moment complete() delivers the token.
			cpl.vals, cpl.err = vals, err
			cpl.at = d.Now()
			cpl.complete()
		})
	})
	if err != nil {
		return Reading{}, err
	}
	vals, rerr, at := cpl.vals, cpl.err, cpl.at
	cpl.recycle()
	if rerr != nil {
		return Reading{}, rerr
	}
	return Reading{
		Thing:  thing,
		Device: id,
		Values: vals,
		Units:  c.units(id),
		At:     at,
	}, nil
}

// ReadInto is Read with a caller-provided value buffer: the reply's values
// are parsed by appending into scratch[:0] (growing it only when capacity is
// short), so the returned Reading.Values alias the scratch instead of a
// fresh allocation. Recycling the returned Values as the next call's scratch
// makes steady-state reads free of the per-read value allocation — the shape
// load generators use so measurement does not perturb the zero-allocation
// hot path:
//
//	var buf []int32
//	for ... {
//		r, err := cl.ReadInto(ctx, addr, id, buf)
//		if err == nil { buf = r.Values } // reuse the (possibly grown) buffer
//	}
//
// The aliasing means the Reading is only valid until the scratch is reused;
// copy Values to retain them. Do not issue a second ReadInto with the same
// scratch while one is still in flight.
func (c *Client) ReadInto(ctx context.Context, thing netip.Addr, id DeviceID, scratch []int32) (Reading, error) {
	d := c.d
	cpl, err := d.await(ctx, func(timeout time.Duration, cpl *completion) (retract func()) {
		return c.cl.ReadInto(thing, hw.DeviceID(id), scratch, timeout, func(vals []int32, err error) {
			cpl.vals, cpl.err = vals, err
			cpl.at = d.Now()
			cpl.complete()
		})
	})
	if err != nil {
		return Reading{}, err
	}
	vals, rerr, at := cpl.vals, cpl.err, cpl.at
	cpl.recycle()
	if rerr != nil {
		return Reading{}, rerr
	}
	return Reading{
		Thing:  thing,
		Device: id,
		Values: vals,
		Units:  c.units(id),
		At:     at,
	}, nil
}

// Write sends values to a peripheral (e.g. an actuator) and blocks until
// the acknowledgement. It returns ErrWriteRejected when the Thing serves no
// such peripheral or rejects the payload, ErrTimeout on loss.
func (c *Client) Write(ctx context.Context, thing netip.Addr, id DeviceID, vals []int32) error {
	cpl, err := c.d.await(ctx, func(timeout time.Duration, cpl *completion) (retract func()) {
		return c.cl.Write(thing, hw.DeviceID(id), vals, timeout, func(err error) {
			cpl.err = err
			cpl.complete()
		})
	})
	if err != nil {
		return err
	}
	werr := cpl.err
	cpl.recycle()
	return werr
}

// Discover multicasts a discovery for a peripheral type (AllPeripherals for
// everything) and collects the solicited advertisements that arrive within
// the discovery window — the context deadline when one is set, the default
// request timeout otherwise. An empty result is not an error; the network
// may genuinely serve no such peripheral.
func (c *Client) Discover(ctx context.Context, id DeviceID) ([]Advert, error) {
	return c.runDiscovery(ctx, discoverByType, id, 0, 0)
}

// discoverKind selects the discovery flavour.
const (
	discoverByType = iota
	discoverByClass
	discoverByZone
)

func (c *Client) runDiscovery(ctx context.Context, kind int, id DeviceID, class uint8, zone uint16) ([]Advert, error) {
	var got []Advert
	cpl, err := c.d.await(ctx, func(timeout time.Duration, cpl *completion) (retract func()) {
		collect := func(adverts []client.Advert) {
			got = advertsFrom(adverts)
			cpl.complete()
		}
		switch kind {
		case discoverByClass:
			return c.cl.DiscoverClass(class, timeout, collect)
		case discoverByZone:
			return c.cl.DiscoverInZone(zone, hw.DeviceID(id), timeout, collect)
		default:
			return c.cl.Discover(hw.DeviceID(id), timeout, collect)
		}
	})
	if err != nil {
		return nil, err
	}
	cpl.recycle()
	return got, nil
}

// DiscoverClass discovers any peripheral of a device class, regardless of
// vendor or product (Section 9 hierarchical typing). Only Things running
// the structured namespace respond.
func (c *Client) DiscoverClass(ctx context.Context, class uint8) ([]Advert, error) {
	return c.runDiscovery(ctx, discoverByClass, 0, class, 0)
}

// DiscoverInZone discovers a peripheral type within a location zone
// (Section 9 location-aware multicast).
func (c *Client) DiscoverInZone(ctx context.Context, zone uint16, id DeviceID) ([]Advert, error) {
	return c.runDiscovery(ctx, discoverByZone, id, 0, zone)
}

// ---------------------------------------------------------------------------
// Subscriptions

// Subscription is a handle on a peripheral's value stream. Data arrives
// while the deployment runs (Deployment.RunFor); each reading is delivered
// to the OnReading callback and retained in the handle's history.
type Subscription struct {
	c      *Client
	stream *client.Stream
	thing  netip.Addr
	id     DeviceID

	mu       sync.Mutex
	readings []Reading
	closed   bool
	onRead   func(Reading)
}

// Device returns the peripheral type the subscription serves.
func (s *Subscription) Device() DeviceID { return s.id }

// Thing returns the streaming Thing's address.
func (s *Subscription) Thing() netip.Addr { return s.thing }

// Readings returns the readings received so far.
func (s *Subscription) Readings() []Reading {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Reading(nil), s.readings...)
}

// Closed reports whether the stream ended — by the Thing closing it or by
// Close.
func (s *Subscription) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close unsubscribes locally. The Thing keeps streaming for any other
// subscribers until it closes the stream itself.
//
// Close is idempotent and safe to call from any goroutine, concurrently
// with other Closes and with in-flight deliveries: the node leaves the
// stream's multicast group exactly once (and only when no other live
// subscription still needs it), and a redundant Close is a no-op. One
// delivery already being dispatched when Close is called may still invoke
// OnReading (and be retained in Readings) after Close returns — Close
// synchronizes the subscription's state, not the network's in-flight
// traffic; no deliveries are dispatched after that final race window.
func (s *Subscription) Close() {
	s.mu.Lock()
	s.closed = true
	stream := s.stream
	s.mu.Unlock()
	// stream is nil when the subscribe request was never sent (context
	// already expired before registration).
	if stream != nil {
		stream.Close()
	}
}

// Subscribe requests a peripheral's value stream from a Thing and blocks
// until the stream is established (the Thing answers with the multicast
// group to join) or the deadline passes. onReading may be nil; readings are
// always retained in the returned handle. Remember to Close the
// subscription when done:
//
//	sub, err := cl.Subscribe(ctx, th.Addr(), micropnp.BMP180, nil)
//	if err != nil { ... }
//	defer sub.Close()
//	d.RunFor(30 * time.Second) // three 10 s stream ticks
//	for _, r := range sub.Readings() { ... }
func (c *Client) Subscribe(ctx context.Context, thing netip.Addr, id DeviceID, onReading func(Reading)) (*Subscription, error) {
	sub := &Subscription{c: c, thing: thing, id: id, onRead: onReading}
	cpl, err := c.d.await(ctx, func(timeout time.Duration, cpl *completion) (retract func()) {
		sub.stream = c.cl.Subscribe(thing, hw.DeviceID(id), client.SubscribeOptions{
			Timeout: timeout,
			OnData: func(vals []int32) {
				r := Reading{
					Thing:  thing,
					Device: id,
					Values: vals,
					Units:  c.units(id),
					At:     c.d.Now(),
				}
				sub.mu.Lock()
				if sub.closed {
					// Close won the race against this delivery: drop it so
					// Readings stays stable once Close was observed.
					sub.mu.Unlock()
					return
				}
				sub.readings = append(sub.readings, r)
				cb := sub.onRead
				sub.mu.Unlock()
				if cb != nil {
					cb(r)
				}
			},
			OnClosed: func() {
				sub.mu.Lock()
				sub.closed = true
				sub.mu.Unlock()
			},
			OnEstablished: func(err error) {
				cpl.err = err
				cpl.complete()
			},
		})
		// Subscriptions retract through sub.Close below: closing also leaves
		// the stream's multicast group when it was already established.
		return nil
	})
	if err != nil {
		// Cancelled mid-establishment: retract the subscription so a later
		// establishment reply cannot join the group for an orphaned handle.
		sub.Close()
		return nil, err
	}
	serr := cpl.err
	cpl.recycle()
	if serr != nil {
		return nil, serr
	}
	return sub, nil
}
