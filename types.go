package micropnp

import (
	"errors"
	"net/netip"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/proto"
)

// DeviceID is a 32-bit µPnP device-type identifier, electrically encoded in
// a peripheral's identification resistors (Section 3). Identifiers
// allocated under the structured namespace decompose into vendor, device
// class and product.
type DeviceID uint32

// String renders the identifier in the 0x%08x form used throughout the
// paper.
func (id DeviceID) String() string { return hw.DeviceID(id).String() }

// Class returns the device class of a structured identifier, or 0 when the
// identifier is unstructured.
func (id DeviceID) Class() uint8 { return hw.DeviceID(id).Structured().Class }

// AllPeripherals addresses every peripheral type at once (discovery
// wildcard).
const AllPeripherals DeviceID = DeviceID(hw.DeviceIDAllPeripherals)

// Standard peripheral identifiers of the evaluation (Table 3) plus the two
// extension peripherals.
var (
	// TMP36 is the Analog Devices TMP36 temperature sensor (ADC).
	TMP36 = DeviceID(driver.IDTMP36)
	// HIH4030 is the Honeywell HIH-4030 humidity sensor (ADC).
	HIH4030 = DeviceID(driver.IDHIH4030)
	// BMP180 is the Bosch BMP180 pressure sensor (I²C).
	BMP180 = DeviceID(driver.IDBMP180)
	// ID20LA is the ID Innovations ID-20LA RFID card reader (UART).
	ID20LA = DeviceID(driver.IDID20LA)
	// ADXL345 is the Analog Devices ADXL345 accelerometer (SPI).
	ADXL345 = DeviceID(driver.IDADXL345)
	// Relay is the PCF8574 eight-relay bank (I²C).
	Relay = DeviceID(driver.IDRelay)
)

// Device classes of the structured namespace (Section 9 extension), for
// class-based discovery.
const (
	ClassTemperature   = hw.ClassTemperature
	ClassAccelerometer = hw.ClassAccelerometer
	ClassActuatorRelay = hw.ClassActuatorRelay
)

// Request errors. ErrTimeout matches errors.Is(err, context.DeadlineExceeded),
// so virtual-clock expiry can be handled exactly like a context deadline.
var (
	// ErrTimeout reports that a request's deadline passed without a reply:
	// the datagram or its answer was lost, or the Thing is unreachable.
	ErrTimeout = client.ErrTimeout
	// ErrNoPeripheral reports that the addressed Thing answered but serves
	// no such peripheral.
	ErrNoPeripheral = client.ErrNoPeripheral
	// ErrWriteRejected reports a negatively acknowledged write.
	ErrWriteRejected = client.ErrWriteRejected
	// ErrRemovalRejected reports a negatively acknowledged driver removal.
	ErrRemovalRejected = client.ErrRemovalRejected
	// ErrClosed reports that the deployment was closed while the request
	// was in flight (real-time mode): the clock died with the request's
	// expiry event, so it could never complete or time out.
	ErrClosed = errors.New("micropnp: deployment closed")
	// ErrNoDeployment reports a Fleet request whose Thing address matches no
	// member deployment's network prefix — the wrapped error carries the
	// address.
	ErrNoDeployment = errors.New("micropnp: no deployment for address")
)

// Reading is one value set produced by a peripheral, with the metadata a
// raw []int32 reply lacks.
type Reading struct {
	// Thing is the address of the Thing that produced the reading.
	Thing netip.Addr
	// Device is the peripheral type read.
	Device DeviceID
	// Values are the driver's return values (e.g. [tenths °C] for the
	// TMP36, [tenths °C, Pa] for the BMP180, 12 ASCII codes for a card).
	Values []int32
	// Units describes the values, as advertised by the Thing ("0.1°C",
	// "0.1°C,Pa", "mg", ...). Empty when the peripheral advertised none.
	Units string
	// At is the virtual time the reading arrived at the client.
	At time.Duration
}

// Advert is one peripheral sighting: a Thing advertising a connected
// peripheral, either unsolicited (after plug-in) or in reply to a
// discovery.
type Advert struct {
	// Thing is the advertising Thing's address.
	Thing netip.Addr
	// Device is the advertised peripheral type.
	Device DeviceID
	// Name is the Thing's human-readable name, when advertised.
	Name string
	// Units describes the peripheral's values, when advertised.
	Units string
	// Channel is the control-board channel serving the peripheral
	// (-1 when not advertised).
	Channel int
	// Solicited distinguishes discovery replies from unsolicited
	// advertisements.
	Solicited bool
	// At is the virtual time the advertisement arrived.
	At time.Duration
}

// advertFrom converts an internal advertisement.
func advertFrom(a client.Advert) Advert {
	out := Advert{
		Thing:     a.Thing,
		Device:    DeviceID(a.Peripheral.ID),
		Channel:   -1,
		Solicited: a.Solicited,
		At:        a.At,
	}
	if name, ok := a.Peripheral.TLVString(proto.TLVName); ok {
		out.Name = name
	}
	if units, ok := a.Peripheral.TLVString(proto.TLVUnits); ok {
		out.Units = units
	}
	if ch, ok := a.Peripheral.TLVByte(proto.TLVChannel); ok {
		out.Channel = int(ch)
	}
	return out
}

func advertsFrom(in []client.Advert) []Advert {
	out := make([]Advert, len(in))
	for i, a := range in {
		out[i] = advertFrom(a)
	}
	return out
}
