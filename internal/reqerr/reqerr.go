// Package reqerr defines the request-layer errors and the default deadline
// shared by the µPnP network entities (client and manager): both track
// requests in deadline-armed pending tables and surface the same error
// vocabulary, without depending on each other.
package reqerr

import (
	"context"
	"errors"
	"os"
	"time"
)

// DefaultTimeout bounds a request when the caller passes no explicit
// timeout: ample for the multi-hop trees of the evaluation (a read over the
// deepest Table 4 topology completes in well under a second of virtual
// time), yet short enough that lossy-network failures surface quickly.
const DefaultTimeout = 5 * time.Second

// timeoutError is the expiry error for requests whose reply never arrived.
// It matches errors.Is(err, context.DeadlineExceeded) so callers can treat
// virtual-clock expiry exactly like a context deadline, and implements the
// net.Error-style Timeout contract.
type timeoutError struct{}

func (timeoutError) Error() string { return "micropnp: request timed out (no reply before deadline)" }
func (timeoutError) Timeout() bool { return true }
func (timeoutError) Is(target error) bool {
	return target == context.DeadlineExceeded || target == os.ErrDeadlineExceeded
}

// ErrTimeout is returned when a request's deadline passes without a reply —
// the datagram or its answer was lost, or the peer is unreachable.
var ErrTimeout error = timeoutError{}

// ErrNoPeripheral is returned when the addressed Thing answers but serves no
// such peripheral (the protocol's empty-data reply).
var ErrNoPeripheral = errors.New("micropnp: thing serves no such peripheral")

// ErrWriteRejected is returned when a write is answered with a non-zero
// status: the peripheral is absent or the payload was malformed.
var ErrWriteRejected = errors.New("micropnp: write rejected by thing")

// ErrRemovalRejected is returned when a driver-removal request is
// negatively acknowledged: the Thing holds no such driver.
var ErrRemovalRejected = errors.New("micropnp: driver removal rejected by thing")
