package client

import (
	"context"
	"errors"
	"net/netip"
	"testing"
	"time"

	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// fakeThing is a scripted peer that answers protocol messages like a Thing.
type fakeThing struct {
	node   *netsim.Node
	net    *netsim.Network
	served hw.DeviceID
	// mute drops all requests when set, simulating an unresponsive Thing.
	mute bool
}

func newFakeThing(t *testing.T, n *netsim.Network, parent *netsim.Node, a netip.Addr, id hw.DeviceID) *fakeThing {
	t.Helper()
	node, err := n.AddNode(a, parent)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeThing{node: node, net: n, served: id}
	prefix := netsim.PrefixFromAddr(a)
	node.JoinGroup(netsim.MulticastAddr(prefix, id))
	node.JoinGroup(netsim.AllPeripheralsAddr(prefix))
	node.Bind(netsim.Port6030, f.handle)
	return f
}

func (f *fakeThing) send(dst netip.Addr, m *proto.Message) {
	payload, _ := m.Encode()
	f.node.Send(dst, netsim.Port6030, payload)
}

func (f *fakeThing) handle(msg netsim.Message) {
	m, err := proto.Decode(msg.Payload)
	if err != nil || f.mute {
		return
	}
	switch m.Type {
	case proto.MsgDiscovery:
		f.send(msg.Src, &proto.Message{Type: proto.MsgSolicitedAdvert, Seq: m.Seq,
			Peripherals: []proto.PeripheralInfo{{ID: f.served}}})
	case proto.MsgRead:
		f.send(msg.Src, &proto.Message{Type: proto.MsgData, Seq: m.Seq, DeviceID: m.DeviceID,
			Data: proto.Values32([]int32{123})})
	case proto.MsgWrite:
		f.send(msg.Src, &proto.Message{Type: proto.MsgWriteAck, Seq: m.Seq, DeviceID: m.DeviceID, Status: 0})
	case proto.MsgStream:
		group := netsim.MulticastAddr(netsim.PrefixFromAddr(f.node.Addr()), m.DeviceID)
		est := &proto.Message{Type: proto.MsgEstablished, Seq: m.Seq, DeviceID: m.DeviceID}
		copy(est.Group[:], group.AsSlice())
		f.send(msg.Src, est)
		// Two data messages, then close — after the established reply has
		// reached the subscriber and it has joined the group.
		f.net.Schedule(200*time.Millisecond, func() {
			f.send(group, &proto.Message{Type: proto.MsgData, Seq: m.Seq, DeviceID: m.DeviceID, Data: proto.Values32([]int32{1})})
		})
		f.net.Schedule(400*time.Millisecond, func() {
			f.send(group, &proto.Message{Type: proto.MsgData, Seq: m.Seq, DeviceID: m.DeviceID, Data: proto.Values32([]int32{2})})
		})
		f.net.Schedule(600*time.Millisecond, func() {
			f.send(group, &proto.Message{Type: proto.MsgClosed, Seq: m.Seq, DeviceID: m.DeviceID})
		})
	}
}

func setup(t *testing.T) (*netsim.Network, *Client, *fakeThing) {
	t.Helper()
	n := netsim.New(netsim.Config{})
	root, err := n.AddNode(addr("2001:db8::1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Network: n, Addr: addr("2001:db8::2"), Parent: root})
	if err != nil {
		t.Fatal(err)
	}
	ft := newFakeThing(t, n, root, addr("2001:db8::3"), 0xad1cbe01)
	return n, cl, ft
}

func TestClientDiscoverAndThings(t *testing.T) {
	n, cl, ft := setup(t)
	var collected []Advert
	cl.Discover(0xad1cbe01, 0, func(got []Advert) { collected = got })
	n.RunUntilIdle(0)

	adverts := cl.Adverts()
	if len(adverts) != 1 || !adverts[0].Solicited || adverts[0].Thing != ft.node.Addr() {
		t.Fatalf("adverts = %+v", adverts)
	}
	// The discovery window closes (at the default timeout) with the
	// solicited advertisements it gathered.
	if len(collected) != 1 || collected[0].Thing != ft.node.Addr() {
		t.Fatalf("collected = %+v", collected)
	}
	if got := cl.Things(0xad1cbe01); len(got) != 1 || got[0] != ft.node.Addr() {
		t.Fatalf("things = %v", got)
	}
	if got := cl.Things(0x9999); len(got) != 0 {
		t.Fatalf("things for absent type = %v", got)
	}
	if got := cl.Things(hw.DeviceIDAllPeripherals); len(got) != 1 {
		t.Fatalf("wildcard things = %v", got)
	}
}

func TestClientDiscoverEmptyWindow(t *testing.T) {
	n, cl, ft := setup(t)
	ft.mute = true
	done := false
	var collected []Advert
	cl.Discover(0xad1cbe01, 50*time.Millisecond, func(got []Advert) { done = true; collected = got })
	n.RunUntilIdle(0)
	if !done {
		t.Fatal("discovery window must close even with no replies")
	}
	if len(collected) != 0 {
		t.Fatalf("collected = %+v", collected)
	}
}

func TestClientReceivesUnsolicited(t *testing.T) {
	n, cl, ft := setup(t)
	var cbGot []Advert
	cl.OnAdvert(func(a Advert) { cbGot = append(cbGot, a) })

	// Thing broadcasts an unsolicited advertisement to all clients.
	ft.send(netsim.AllClientsAddr(netsim.PrefixFromAddr(ft.node.Addr())),
		&proto.Message{Type: proto.MsgUnsolicitedAdvert, Seq: 1,
			Peripherals: []proto.PeripheralInfo{{ID: 0xad1cbe01}}})
	n.RunUntilIdle(0)

	if len(cl.Adverts()) != 1 || cl.Adverts()[0].Solicited {
		t.Fatalf("adverts = %+v", cl.Adverts())
	}
	if len(cbGot) != 1 {
		t.Fatalf("callback fired %d times", len(cbGot))
	}
}

func TestClientReadAndWrite(t *testing.T) {
	n, cl, ft := setup(t)
	var vals []int32
	var readErr error
	cl.Read(ft.node.Addr(), 0xad1cbe01, 0, func(v []int32, err error) { vals, readErr = v, err })
	n.RunUntilIdle(0)
	if readErr != nil {
		t.Fatal(readErr)
	}
	if len(vals) != 1 || vals[0] != 123 {
		t.Fatalf("read = %v", vals)
	}

	var writeErr = errors.New("not called")
	cl.Write(ft.node.Addr(), 0xad1cbe01, []int32{7}, 0, func(err error) { writeErr = err })
	n.RunUntilIdle(0)
	if writeErr != nil {
		t.Fatalf("write error = %v", writeErr)
	}
}

// TestClientReadTimesOut is the headline fix of the API redesign: a read
// whose reply never arrives completes with ErrTimeout instead of leaking a
// pending-table entry forever.
func TestClientReadTimesOut(t *testing.T) {
	n, cl, ft := setup(t)
	ft.mute = true
	var readErr error
	done := false
	cl.Read(ft.node.Addr(), 0xad1cbe01, 200*time.Millisecond, func(v []int32, err error) {
		done = true
		readErr = err
	})
	n.RunUntilIdle(0)
	if !done {
		t.Fatal("read callback must fire on expiry")
	}
	if !errors.Is(readErr, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", readErr)
	}
	// ErrTimeout doubles as a context deadline error.
	if !errors.Is(readErr, context.DeadlineExceeded) {
		t.Fatal("ErrTimeout must match context.DeadlineExceeded")
	}
	// The pending table must be empty again — no leak.
	cl.mu.Lock()
	pending := len(cl.pending)
	cl.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending entries after expiry = %d", pending)
	}
}

func TestClientReadUnreachableThing(t *testing.T) {
	n, cl, _ := setup(t)
	var readErr error
	cl.Read(addr("2001:db8::dead"), 0xad1cbe01, 100*time.Millisecond, func(_ []int32, err error) {
		readErr = err
	})
	n.RunUntilIdle(0)
	if !errors.Is(readErr, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", readErr)
	}
}

func TestClientWriteTimesOut(t *testing.T) {
	n, cl, ft := setup(t)
	ft.mute = true
	var writeErr error
	cl.Write(ft.node.Addr(), 0xad1cbe01, []int32{1}, 150*time.Millisecond, func(err error) {
		writeErr = err
	})
	n.RunUntilIdle(0)
	if !errors.Is(writeErr, ErrTimeout) {
		t.Fatalf("error = %v, want ErrTimeout", writeErr)
	}
	cl.mu.Lock()
	pending := len(cl.pending)
	cl.mu.Unlock()
	if pending != 0 {
		t.Fatalf("pending entries after expiry = %d", pending)
	}
}

func TestClientEmptyDataMeansNoPeripheral(t *testing.T) {
	n, cl, ft := setup(t)
	var readErr error
	cl.Read(ft.node.Addr(), 0x42, 0, func(_ []int32, err error) { readErr = err })
	// The Thing answers with an empty data reply (absent peripheral).
	ft.send(cl.Addr(), &proto.Message{Type: proto.MsgData, Seq: 1, DeviceID: 0x42})
	n.RunUntilIdle(0)
	if !errors.Is(readErr, ErrNoPeripheral) {
		t.Fatalf("error = %v, want ErrNoPeripheral", readErr)
	}
}

func TestClientStream(t *testing.T) {
	n, cl, ft := setup(t)
	var got []int32
	closed := false
	established := false
	s := cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{
		OnData:        func(v []int32) { got = append(got, v...) },
		OnClosed:      func() { closed = true },
		OnEstablished: func(err error) { established = err == nil },
	})
	n.RunUntilIdle(0)

	if !established {
		t.Fatal("stream must establish")
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("stream data = %v", got)
	}
	if !closed || !s.Closed() {
		t.Fatal("closed callback must fire")
	}
	// After close, the client must have left the group.
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	if cl.Node().InGroup(group) {
		t.Fatal("client must leave the stream group after close")
	}
}

func TestClientStreamEstablishTimesOut(t *testing.T) {
	n, cl, ft := setup(t)
	ft.mute = true
	var estErr error
	cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{
		Timeout:       100 * time.Millisecond,
		OnEstablished: func(err error) { estErr = err },
	})
	n.RunUntilIdle(0)
	if !errors.Is(estErr, ErrTimeout) {
		t.Fatalf("establishment error = %v, want ErrTimeout", estErr)
	}
}

func TestClientStreamCloseHandle(t *testing.T) {
	n, cl, ft := setup(t)
	var got int
	s := cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{
		OnData: func([]int32) { got++ },
	})
	// Run until the two data messages arrived (sent 200/400 ms after the
	// stream request lands, plus multicast transit), then close the handle.
	n.RunUntil(600 * time.Millisecond)
	s.Close()
	// Further group data must not reach the handler.
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	ft.send(group, &proto.Message{Type: proto.MsgData, Seq: 9, DeviceID: 0xad1cbe01, Data: proto.Values32([]int32{3})})
	n.RunUntilIdle(0)
	if got != 2 {
		t.Fatalf("stream callbacks = %d, want the 2 pre-close ones", got)
	}
	if cl.Node().InGroup(group) {
		t.Fatal("client must leave the group when the last handle closes")
	}
}

func TestClientTwoStreamsShareGroup(t *testing.T) {
	n, cl, ft := setup(t)
	var a, b int
	s1 := cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{OnData: func([]int32) { a++ }})
	s2 := cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{OnData: func([]int32) { b++ }})
	n.RunUntil(600 * time.Millisecond)
	// The scripted thing emits one data pair per stream request; both
	// handles must see every group datagram.
	if a < 2 || a != b {
		t.Fatalf("deliveries a=%d b=%d, want both handles fed equally", a, b)
	}
	// Closing one handle must keep the group joined for the other.
	s1.Close()
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	if !cl.Node().InGroup(group) {
		t.Fatal("group must stay joined while another handle is live")
	}
	s2.Close()
	if cl.Node().InGroup(group) {
		t.Fatal("group must be left when the last handle closes")
	}
}

// TestClientStreamDataCannotCompleteRead: stream data is multicast on a
// shared group with a sequence number chosen thing-side (by the last
// subscriber, possibly another client), so a colliding number must never
// complete this client's pending unicast read.
func TestClientStreamDataCannotCompleteRead(t *testing.T) {
	n, cl, ft := setup(t)
	// Subscribe (seq 1) so the client is in the group; the scripted data
	// messages echo the subscribe seq, as a real Thing does.
	var streamed int
	cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{OnData: func([]int32) { streamed++ }})
	n.RunUntil(150 * time.Millisecond) // established

	// Issue a read (seq 2) the Thing never answers, then inject group data
	// carrying that exact seq — the collision scenario.
	ft.mute = true
	var vals []int32
	var readErr error
	cl.Read(ft.node.Addr(), 0xad1cbe01, 300*time.Millisecond, func(v []int32, err error) {
		vals, readErr = v, err
	})
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	ft.send(group, &proto.Message{Type: proto.MsgData, Seq: 2, DeviceID: 0xad1cbe01,
		Data: proto.Values32([]int32{999})})
	n.RunUntilIdle(0)

	if vals != nil {
		t.Fatalf("multicast stream data completed the read with %v", vals)
	}
	if !errors.Is(readErr, ErrTimeout) {
		t.Fatalf("read error = %v, want ErrTimeout", readErr)
	}
	if streamed == 0 {
		t.Fatal("the data must still reach the stream handle")
	}
}

// TestClientStreamDataFiltersBySender: the group is shared per device
// type, so data from another Thing streaming the same type must not be
// delivered to (and misattributed by) this Thing's subscription.
func TestClientStreamDataFiltersBySender(t *testing.T) {
	n, cl, ft := setup(t)
	other := newFakeThing(t, n, ft.node, addr("2001:db8::4"), 0xad1cbe01)
	other.mute = true

	var streamed int
	cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{OnData: func([]int32) { streamed++ }})
	n.RunUntil(150 * time.Millisecond) // established
	base := streamed

	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	other.send(group, &proto.Message{Type: proto.MsgData, Seq: 5, DeviceID: 0xad1cbe01,
		Data: proto.Values32([]int32{404})})
	n.RunUntil(250 * time.Millisecond)
	if streamed != base {
		t.Fatalf("another thing's stream data reached this subscription (%d)", streamed-base)
	}
	// The serving Thing's own data still flows.
	n.RunUntilIdle(0)
	if streamed <= base {
		t.Fatal("the serving thing's data must still be delivered")
	}
}

// TestClientStaleReplyCannotFeedStream is the reverse direction: a unicast
// data reply that matches no pending read (e.g. landing after its expiry)
// must be dropped, not delivered to stream handles as if it were group
// data.
func TestClientStaleReplyCannotFeedStream(t *testing.T) {
	n, cl, ft := setup(t)
	var streamed int
	cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{OnData: func([]int32) { streamed++ }})
	n.RunUntil(150 * time.Millisecond) // established
	base := streamed

	// A unicast data message with an unknown seq for the subscribed type.
	ft.send(cl.Addr(), &proto.Message{Type: proto.MsgData, Seq: 999, DeviceID: 0xad1cbe01,
		Data: proto.Values32([]int32{777})})
	n.RunUntil(200 * time.Millisecond)
	if streamed != base {
		t.Fatalf("stale unicast reply reached the stream handle (%d deliveries)", streamed-base)
	}
}

// TestClientClosedFiltersBySender: several Things can stream the same
// peripheral type over the shared group; one Thing closing its stream must
// not tear down subscriptions served by the others.
func TestClientClosedFiltersBySender(t *testing.T) {
	n, cl, ft := setup(t)
	other := newFakeThing(t, n, ft.node, addr("2001:db8::4"), 0xad1cbe01)
	other.mute = true

	s := cl.Subscribe(ft.node.Addr(), 0xad1cbe01, SubscribeOptions{})
	n.RunUntil(150 * time.Millisecond) // established
	if !s.Established() {
		t.Fatal("setup: stream must establish")
	}

	// A close from an unrelated Thing on the same group: no effect.
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	other.send(group, &proto.Message{Type: proto.MsgClosed, Seq: 9, DeviceID: 0xad1cbe01})
	n.RunUntil(300 * time.Millisecond)
	if s.Closed() {
		t.Fatal("close from another thing must not affect this subscription")
	}

	// The serving Thing's scripted close (at ~650 ms) does close it.
	n.RunUntilIdle(0)
	if !s.Closed() {
		t.Fatal("close from the serving thing must close the subscription")
	}
}

func TestClientIgnoresGarbage(t *testing.T) {
	n, cl, ft := setup(t)
	ft.node.Send(cl.Addr(), netsim.Port6030, []byte{0x00, 0x01})
	ft.node.Send(cl.Addr(), netsim.Port6030, nil)
	n.RunUntilIdle(0)
	if len(cl.Adverts()) != 0 {
		t.Fatal("garbage must not produce adverts")
	}
}

func TestClientJoinsAllClientsGroup(t *testing.T) {
	_, cl, _ := setup(t)
	if !cl.Node().InGroup(netsim.AllClientsAddr(netsim.PrefixFromAddr(cl.Addr()))) {
		t.Fatal("clients must join the all-clients group by default")
	}
}

func TestClientDataWithBadLengthIsError(t *testing.T) {
	n, cl, ft := setup(t)
	var readErr error
	var vals []int32
	cl.Read(ft.node.Addr(), 0x42, 0, func(v []int32, err error) { vals, readErr = v, err })
	// Deliver a data reply whose payload is not a multiple of 4.
	ft.send(cl.Addr(), &proto.Message{Type: proto.MsgData, Seq: 1, DeviceID: 0x42, Data: []byte{1, 2, 3}})
	n.RunUntilIdle(0)
	if readErr == nil || vals != nil {
		t.Fatalf("mis-sized data must surface a decode error, got vals=%v err=%v", vals, readErr)
	}
	if errors.Is(readErr, ErrTimeout) {
		t.Fatal("decode failure must not masquerade as a timeout")
	}
}

// TestClientSeqSkipsBusyEntries covers the 2^16 wrap hazard: sequence
// allocation must never hand out a number still bound to an in-flight
// request.
func TestClientSeqSkipsBusyEntries(t *testing.T) {
	_, cl, ft := setup(t)
	cl.mu.Lock()
	cl.seq = 0xFFFE
	cl.mu.Unlock()
	// Occupy 0xFFFF so the wrap must skip it (and the reserved 0).
	cl.Read(ft.node.Addr(), 0xad1cbe01, time.Hour, func([]int32, error) {})
	cl.mu.Lock()
	_, busy := cl.pending[0xFFFF]
	cl.mu.Unlock()
	if !busy {
		t.Fatal("setup: expected seq 0xFFFF to be pending")
	}
	cl.mu.Lock()
	next := cl.nextSeqLocked()
	cl.mu.Unlock()
	if next == 0 || next == 0xFFFF {
		t.Fatalf("nextSeq = %#x, must skip 0 and busy entries", next)
	}
}
