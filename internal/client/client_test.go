package client

import (
	"net/netip"
	"testing"
	"time"

	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// fakeThing is a scripted peer that answers protocol messages like a Thing.
type fakeThing struct {
	node   *netsim.Node
	net    *netsim.Network
	served hw.DeviceID
}

func newFakeThing(t *testing.T, n *netsim.Network, parent *netsim.Node, a netip.Addr, id hw.DeviceID) *fakeThing {
	t.Helper()
	node, err := n.AddNode(a, parent)
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeThing{node: node, net: n, served: id}
	prefix := netsim.PrefixFromAddr(a)
	node.JoinGroup(netsim.MulticastAddr(prefix, id))
	node.JoinGroup(netsim.AllPeripheralsAddr(prefix))
	node.Bind(netsim.Port6030, f.handle)
	return f
}

func (f *fakeThing) send(dst netip.Addr, m *proto.Message) {
	payload, _ := m.Encode()
	f.node.Send(dst, netsim.Port6030, payload)
}

func (f *fakeThing) handle(msg netsim.Message) {
	m, err := proto.Decode(msg.Payload)
	if err != nil {
		return
	}
	switch m.Type {
	case proto.MsgDiscovery:
		f.send(msg.Src, &proto.Message{Type: proto.MsgSolicitedAdvert, Seq: m.Seq,
			Peripherals: []proto.PeripheralInfo{{ID: f.served}}})
	case proto.MsgRead:
		f.send(msg.Src, &proto.Message{Type: proto.MsgData, Seq: m.Seq, DeviceID: m.DeviceID,
			Data: proto.Values32([]int32{123})})
	case proto.MsgWrite:
		f.send(msg.Src, &proto.Message{Type: proto.MsgWriteAck, Seq: m.Seq, DeviceID: m.DeviceID, Status: 0})
	case proto.MsgStream:
		group := netsim.MulticastAddr(netsim.PrefixFromAddr(f.node.Addr()), m.DeviceID)
		est := &proto.Message{Type: proto.MsgEstablished, Seq: m.Seq, DeviceID: m.DeviceID}
		copy(est.Group[:], group.AsSlice())
		f.send(msg.Src, est)
		// Two data messages, then close — after the established reply has
		// reached the subscriber and it has joined the group.
		f.net.Schedule(200*time.Millisecond, func() {
			f.send(group, &proto.Message{Type: proto.MsgData, Seq: m.Seq, DeviceID: m.DeviceID, Data: proto.Values32([]int32{1})})
		})
		f.net.Schedule(400*time.Millisecond, func() {
			f.send(group, &proto.Message{Type: proto.MsgData, Seq: m.Seq, DeviceID: m.DeviceID, Data: proto.Values32([]int32{2})})
		})
		f.net.Schedule(600*time.Millisecond, func() {
			f.send(group, &proto.Message{Type: proto.MsgClosed, Seq: m.Seq, DeviceID: m.DeviceID})
		})
	}
}

func setup(t *testing.T) (*netsim.Network, *Client, *fakeThing) {
	t.Helper()
	n := netsim.New(netsim.Config{})
	root, err := n.AddNode(addr("2001:db8::1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := New(Config{Network: n, Addr: addr("2001:db8::2"), Parent: root})
	if err != nil {
		t.Fatal(err)
	}
	ft := newFakeThing(t, n, root, addr("2001:db8::3"), 0xad1cbe01)
	return n, cl, ft
}

func TestClientDiscoverAndThings(t *testing.T) {
	n, cl, ft := setup(t)
	cl.Discover(0xad1cbe01)
	n.RunUntilIdle(0)

	adverts := cl.Adverts()
	if len(adverts) != 1 || !adverts[0].Solicited || adverts[0].Thing != ft.node.Addr() {
		t.Fatalf("adverts = %+v", adverts)
	}
	if got := cl.Things(0xad1cbe01); len(got) != 1 || got[0] != ft.node.Addr() {
		t.Fatalf("things = %v", got)
	}
	if got := cl.Things(0x9999); len(got) != 0 {
		t.Fatalf("things for absent type = %v", got)
	}
	if got := cl.Things(hw.DeviceIDAllPeripherals); len(got) != 1 {
		t.Fatalf("wildcard things = %v", got)
	}
}

func TestClientReceivesUnsolicited(t *testing.T) {
	n, cl, ft := setup(t)
	var cbGot []Advert
	cl.OnAdvert(func(a Advert) { cbGot = append(cbGot, a) })

	// Thing broadcasts an unsolicited advertisement to all clients.
	ft.send(netsim.AllClientsAddr(netsim.PrefixFromAddr(ft.node.Addr())),
		&proto.Message{Type: proto.MsgUnsolicitedAdvert, Seq: 1,
			Peripherals: []proto.PeripheralInfo{{ID: 0xad1cbe01}}})
	n.RunUntilIdle(0)

	if len(cl.Adverts()) != 1 || cl.Adverts()[0].Solicited {
		t.Fatalf("adverts = %+v", cl.Adverts())
	}
	if len(cbGot) != 1 {
		t.Fatalf("callback fired %d times", len(cbGot))
	}
}

func TestClientReadAndWrite(t *testing.T) {
	n, cl, ft := setup(t)
	var vals []int32
	cl.Read(ft.node.Addr(), 0xad1cbe01, func(v []int32) { vals = v })
	n.RunUntilIdle(0)
	if len(vals) != 1 || vals[0] != 123 {
		t.Fatalf("read = %v", vals)
	}

	var acked bool
	cl.Write(ft.node.Addr(), 0xad1cbe01, []int32{7}, func(ok bool) { acked = ok })
	n.RunUntilIdle(0)
	if !acked {
		t.Fatal("write must be acked")
	}
}

func TestClientStream(t *testing.T) {
	n, cl, ft := setup(t)
	var got []int32
	closed := false
	cl.Stream(ft.node.Addr(), 0xad1cbe01, func(v []int32) { got = append(got, v...) }, func() { closed = true })
	n.RunUntilIdle(0)

	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("stream data = %v", got)
	}
	if !closed {
		t.Fatal("closed callback must fire")
	}
	// After close, the client must have left the group.
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	if cl.Node().InGroup(group) {
		t.Fatal("client must leave the stream group after close")
	}
}

func TestClientUnsubscribe(t *testing.T) {
	n, cl, ft := setup(t)
	var got int
	cl.Stream(ft.node.Addr(), 0xad1cbe01, func([]int32) { got++ }, nil)
	n.RunUntilIdle(0)
	cl.Unsubscribe(0xad1cbe01)
	// Further group data must not reach the handler.
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(ft.node.Addr()), 0xad1cbe01)
	ft.send(group, &proto.Message{Type: proto.MsgData, Seq: 9, DeviceID: 0xad1cbe01, Data: proto.Values32([]int32{3})})
	n.RunUntilIdle(0)
	if got != 2 {
		t.Fatalf("stream callbacks = %d, want the 2 pre-unsubscribe ones", got)
	}
}

func TestClientIgnoresGarbage(t *testing.T) {
	n, cl, ft := setup(t)
	ft.node.Send(cl.Addr(), netsim.Port6030, []byte{0x00, 0x01})
	ft.node.Send(cl.Addr(), netsim.Port6030, nil)
	n.RunUntilIdle(0)
	if len(cl.Adverts()) != 0 {
		t.Fatal("garbage must not produce adverts")
	}
}

func TestClientJoinsAllClientsGroup(t *testing.T) {
	_, cl, _ := setup(t)
	if !cl.Node().InGroup(netsim.AllClientsAddr(netsim.PrefixFromAddr(cl.Addr()))) {
		t.Fatal("clients must join the all-clients group by default")
	}
}

func TestClientDataWithBadLengthIgnored(t *testing.T) {
	n, cl, ft := setup(t)
	var called bool
	cl.Read(ft.node.Addr(), 0x42, func([]int32) { called = true })
	// Deliver a data reply whose payload is not a multiple of 4.
	ft.send(cl.Addr(), &proto.Message{Type: proto.MsgData, Seq: 1, DeviceID: 0x42, Data: []byte{1, 2, 3}})
	n.RunUntilIdle(0)
	if called {
		t.Fatal("mis-sized data must not invoke the callback")
	}
}
