// Package client implements the µPnP Client: software that remotely
// discovers and uses peripherals hosted by µPnP Things (Section 5). Clients
// may run on embedded devices or standard computers; this implementation
// drives the simulated network.
package client

import (
	"net/netip"
	"sync"

	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
)

// Advert is one peripheral sighting: a Thing's advertisement of a connected
// peripheral.
type Advert struct {
	Thing      netip.Addr
	Peripheral proto.PeripheralInfo
	// Solicited distinguishes discovery replies from unsolicited
	// advertisements.
	Solicited bool
}

// Client is one µPnP client instance.
type Client struct {
	net    *netsim.Network
	node   *netsim.Node
	prefix netsim.NetworkPrefix

	mu       sync.Mutex
	seq      uint16
	adverts  []Advert
	reads    map[uint16]func([]int32)
	writes   map[uint16]func(ok bool)
	streams  map[hw.DeviceID]*streamSub
	onAdvert func(Advert)
}

type streamSub struct {
	group  netip.Addr
	joined bool
	cb     func([]int32)
	closed func()
}

// Config configures a client.
type Config struct {
	Network *netsim.Network
	Addr    netip.Addr
	Parent  *netsim.Node
}

// New builds and registers a client. Clients join the all-clients multicast
// group of their network prefix by default (Figure 11), so unsolicited
// advertisements reach them.
func New(cfg Config) (*Client, error) {
	node, err := cfg.Network.AddNode(cfg.Addr, cfg.Parent)
	if err != nil {
		return nil, err
	}
	c := &Client{
		net:     cfg.Network,
		node:    node,
		prefix:  netsim.PrefixFromAddr(cfg.Addr),
		reads:   map[uint16]func([]int32){},
		writes:  map[uint16]func(bool){},
		streams: map[hw.DeviceID]*streamSub{},
	}
	node.JoinGroup(netsim.AllClientsAddr(c.prefix))
	node.Bind(netsim.Port6030, c.handle)
	return c, nil
}

// Addr returns the client's unicast address.
func (c *Client) Addr() netip.Addr { return c.node.Addr() }

// Node exposes the network node.
func (c *Client) Node() *netsim.Node { return c.node }

// Adverts returns every advertisement observed so far.
func (c *Client) Adverts() []Advert {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Advert(nil), c.adverts...)
}

// OnAdvert registers a callback for every incoming advertisement.
func (c *Client) OnAdvert(fn func(Advert)) {
	c.mu.Lock()
	c.onAdvert = fn
	c.mu.Unlock()
}

// Things returns the distinct Things that advertised a given peripheral
// type (hw.DeviceIDAllPeripherals matches any type).
func (c *Client) Things(id hw.DeviceID) []netip.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[netip.Addr]bool{}
	var out []netip.Addr
	for _, a := range c.adverts {
		if id != hw.DeviceIDAllPeripherals && a.Peripheral.ID != id {
			continue
		}
		if !seen[a.Thing] {
			seen[a.Thing] = true
			out = append(out, a.Thing)
		}
	}
	return out
}

func (c *Client) nextSeq() uint16 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	return c.seq
}

func (c *Client) send(dst netip.Addr, m *proto.Message) {
	payload, err := m.Encode()
	if err != nil {
		return
	}
	c.node.Send(dst, netsim.Port6030, payload)
}

// Discover multicasts a peripheral discovery (message 2) to the group of
// Things serving the given peripheral type. Solicited advertisements arrive
// asynchronously; observe them via Adverts/Things/OnAdvert after running
// the network.
func (c *Client) Discover(id hw.DeviceID, filter ...proto.TLV) {
	group := netsim.MulticastAddr(c.prefix, id)
	c.send(group, &proto.Message{Type: proto.MsgDiscovery, Seq: c.nextSeq(), Filter: filter})
}

// DiscoverClass discovers any peripheral of a device class, regardless of
// vendor or product — the Section 9 hierarchical-typing extension. Only
// Things running with the structured namespace respond.
func (c *Client) DiscoverClass(class uint8, filter ...proto.TLV) {
	c.Discover(hw.ClassWildcard(class), filter...)
}

// DiscoverInZone discovers a peripheral type within a location zone — the
// Section 9 location-aware multicast extension. Only Things placed in the
// zone receive the discovery.
func (c *Client) DiscoverInZone(zone uint16, id hw.DeviceID, filter ...proto.TLV) {
	group := netsim.MulticastAddrZone(c.prefix, zone, id)
	c.send(group, &proto.Message{Type: proto.MsgDiscovery, Seq: c.nextSeq(), Filter: filter})
}

// Read requests a single value from a peripheral (messages 10/11).
func (c *Client) Read(thing netip.Addr, id hw.DeviceID, cb func([]int32)) {
	seq := c.nextSeq()
	if cb != nil {
		c.mu.Lock()
		c.reads[seq] = cb
		c.mu.Unlock()
	}
	c.send(thing, &proto.Message{Type: proto.MsgRead, Seq: seq, DeviceID: id})
}

// Write sends a value to a peripheral, e.g. an actuator (messages 16/17).
func (c *Client) Write(thing netip.Addr, id hw.DeviceID, vals []int32, cb func(ok bool)) {
	seq := c.nextSeq()
	if cb != nil {
		c.mu.Lock()
		c.writes[seq] = cb
		c.mu.Unlock()
	}
	c.send(thing, &proto.Message{Type: proto.MsgWrite, Seq: seq, DeviceID: id, Data: proto.Values32(vals)})
}

// Stream subscribes to a peripheral's value stream (messages 12-15): the
// Thing replies with the multicast group to join; data then arrives on the
// group until the Thing closes the stream.
func (c *Client) Stream(thing netip.Addr, id hw.DeviceID, data func([]int32), closed func()) {
	c.mu.Lock()
	c.streams[id] = &streamSub{cb: data, closed: closed}
	c.mu.Unlock()
	c.send(thing, &proto.Message{Type: proto.MsgStream, Seq: c.nextSeq(), DeviceID: id})
}

// Unsubscribe leaves a stream's group locally (the Thing keeps streaming
// for other subscribers until it closes the stream).
func (c *Client) Unsubscribe(id hw.DeviceID) {
	c.mu.Lock()
	sub, ok := c.streams[id]
	delete(c.streams, id)
	c.mu.Unlock()
	if ok && sub.joined {
		c.node.LeaveGroup(sub.group)
	}
}

// handle processes incoming protocol messages.
func (c *Client) handle(msg netsim.Message) {
	m, err := proto.Decode(msg.Payload)
	if err != nil {
		return
	}
	switch m.Type {
	case proto.MsgUnsolicitedAdvert, proto.MsgSolicitedAdvert:
		c.mu.Lock()
		var cb func(Advert)
		for _, p := range m.Peripherals {
			a := Advert{Thing: msg.Src, Peripheral: p, Solicited: m.Type == proto.MsgSolicitedAdvert}
			c.adverts = append(c.adverts, a)
			cb = c.onAdvert
			if cb != nil {
				defer cb(a)
			}
		}
		c.mu.Unlock()

	case proto.MsgData:
		c.mu.Lock()
		if cb, ok := c.reads[m.Seq]; ok {
			delete(c.reads, m.Seq)
			c.mu.Unlock()
			vals, err := proto.ParseValues32(m.Data)
			if err == nil && cb != nil {
				cb(vals)
			}
			return
		}
		sub := c.streams[m.DeviceID]
		c.mu.Unlock()
		if sub != nil && sub.cb != nil {
			if vals, err := proto.ParseValues32(m.Data); err == nil {
				sub.cb(vals)
			}
		}

	case proto.MsgWriteAck:
		c.mu.Lock()
		cb, ok := c.writes[m.Seq]
		delete(c.writes, m.Seq)
		c.mu.Unlock()
		if ok && cb != nil {
			cb(m.Status == 0)
		}

	case proto.MsgEstablished:
		group, okAddr := netip.AddrFromSlice(m.Group[:])
		if !okAddr {
			return
		}
		c.mu.Lock()
		sub, ok := c.streams[m.DeviceID]
		if ok {
			sub.group = group
			sub.joined = true
		}
		c.mu.Unlock()
		if ok {
			c.node.JoinGroup(group)
		}

	case proto.MsgClosed:
		c.mu.Lock()
		sub, ok := c.streams[m.DeviceID]
		delete(c.streams, m.DeviceID)
		c.mu.Unlock()
		if ok {
			if sub.joined {
				c.node.LeaveGroup(sub.group)
			}
			if sub.closed != nil {
				sub.closed()
			}
		}
	}
}
