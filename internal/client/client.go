// Package client implements the µPnP Client: software that remotely
// discovers and uses peripherals hosted by µPnP Things (Section 5). Clients
// may run on embedded devices or standard computers; this implementation
// drives the simulated network.
//
// Every request is tracked in a pending-request table with a virtual-time
// deadline: replies complete the request, lost replies expire it with
// ErrTimeout, and nothing leaks. Completion is callback-based and every
// callback fires exactly once, off the network's clock — under the realtime
// clock that means a pool worker's goroutine — so the public SDK in the
// repository root can wrap this layer in synchronous, context-aware calls
// that block on channels. All Client methods are safe for concurrent use.
//
// An optional RetryPolicy adds an ARQ layer: unanswered unicast reads and
// writes are retransmitted with doubling, jittered backoff inside the
// request's deadline (the paper defers unreliable-network handling; this is
// the reproduction's extension).
package client

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
	"micropnp/internal/reqerr"
)

// DefaultTimeout bounds a request when the caller passes no explicit
// timeout (see reqerr.DefaultTimeout).
const DefaultTimeout = reqerr.DefaultTimeout

// Request errors, shared with the manager via internal/reqerr. ErrTimeout
// matches errors.Is(err, context.DeadlineExceeded).
var (
	ErrTimeout         = reqerr.ErrTimeout
	ErrNoPeripheral    = reqerr.ErrNoPeripheral
	ErrWriteRejected   = reqerr.ErrWriteRejected
	ErrRemovalRejected = reqerr.ErrRemovalRejected
)

// Advert is one peripheral sighting: a Thing's advertisement of a connected
// peripheral.
type Advert struct {
	Thing      netip.Addr
	Peripheral proto.PeripheralInfo
	// Solicited distinguishes discovery replies from unsolicited
	// advertisements.
	Solicited bool
	// At is the virtual time the advertisement arrived.
	At time.Duration
}

type pendingKind uint8

const (
	pendingRead pendingKind = iota
	pendingWrite
	pendingDiscover
)

// pending is one in-flight request. Exactly one of the completion paths
// fires: the matching reply, or the deadline expiry scheduled at send time.
//
// Entries are pooled: the completion/expiry/retract path that removes the
// entry from the table releases it back to pendingPool. gen survives
// recycling and is bumped on every release (under Client.mu), so a stale
// handle — an expiry event or retract that captured the entry before it was
// recycled into a newer request — fails its generation check and becomes a
// no-op even when the pool hands back the same entry at the same sequence
// number (the identity check alone cannot catch that ABA).
type pending struct {
	kind pendingKind
	// thing and id identify the peer and peripheral a read was addressed
	// to: a data message only completes the read when both match (stream
	// data multicast on a shared group may carry a colliding sequence
	// number chosen by another client).
	thing      netip.Addr
	id         hw.DeviceID
	onRead     func([]int32, error)
	onWrite    func(error)
	onDiscover func([]Advert)
	adverts    []Advert
	// scratch, when hasScratch is set, is the caller-provided value buffer a
	// read reply is parsed into (appended to scratch[:0]) instead of a fresh
	// allocation — see ReadInto. The callback's values then alias the scratch
	// and are only valid until the next request reusing it.
	scratch    []int32
	hasScratch bool
	// expiry retracts the typed deadline event once a reply completed the
	// request, so finished requests leave no dead deadline in the queue.
	expiry netsim.ExpiryRef
	// cancelRetx retracts the pending retransmission (RetryPolicy) when the
	// request completes or expires. Guarded by Client.mu.
	cancelRetx func()
	// gen guards pooled reuse (see above). Written only under Client.mu.
	gen uint64
}

var pendingPool = sync.Pool{New: func() any { return new(pending) }}

// release recycles a pending entry after its terminal path ran. The caller
// must have removed it from c.pending and fired its callback already; no
// other goroutine may touch the entry's non-gen fields once it left the
// table.
func (c *Client) release(p *pending) {
	c.mu.Lock()
	p.gen++
	c.mu.Unlock()
	p.kind = 0
	p.thing = netip.Addr{}
	p.id = 0
	p.onRead, p.onWrite, p.onDiscover = nil, nil, nil
	p.adverts = nil // handed to the callback, possibly retained: do not reuse
	p.scratch, p.hasScratch = nil, false
	p.expiry = netsim.ExpiryRef{}
	p.cancelRetx = nil
	pendingPool.Put(p)
}

// RetryPolicy enables automatic retransmission of unanswered unicast
// requests (reads and writes): when no reply arrived BaseBackoff after a
// transmission, the request is retransmitted, up to Attempts extra
// transmissions with doubling backoff and ±50% jitter. The request's
// overall deadline is unchanged — retries happen inside it, and the request
// still expires with ErrTimeout when every transmission goes unanswered.
// Multicast discoveries are never retransmitted (their window closing is
// completion, not failure), nor are stream subscriptions.
type RetryPolicy struct {
	// Attempts is the maximum number of retransmissions after the first
	// send (0 disables retries).
	Attempts int
	// BaseBackoff is the delay before the first retransmission; attempt k
	// waits BaseBackoff<<(k-1), capped at 32*BaseBackoff and jittered by a
	// factor in [0.5, 1.5).
	BaseBackoff time.Duration
}

// maxBackoffShift caps the exponential backoff at BaseBackoff<<5 (32x) so
// long retry budgets spread transmissions across the deadline instead of
// pushing the tail attempts past it.
const maxBackoffShift = 5

func (p RetryPolicy) enabled() bool { return p.Attempts > 0 && p.BaseBackoff > 0 }

// Client is one µPnP client instance.
type Client struct {
	net     *netsim.Network
	node    *netsim.Node
	prefix  netsim.NetworkPrefix
	timeout time.Duration
	retry   RetryPolicy

	mu             sync.Mutex
	retryRng       *rand.Rand // backoff jitter; guarded by mu
	seq            uint16
	adverts        []Advert
	pending        map[uint16]*pending
	streams        map[hw.DeviceID][]*Stream
	pendingStreams map[uint16]*Stream
	units          map[hw.DeviceID]string
	onAdvert       func(Advert)
	advertHooks    []func(Advert)
}

// Config configures a client.
type Config struct {
	Network *netsim.Network
	Addr    netip.Addr
	Parent  *netsim.Node
	// DefaultTimeout bounds requests made without an explicit timeout
	// (zero = DefaultTimeout).
	DefaultTimeout time.Duration
	// Retry enables automatic retransmission of unanswered unicast reads
	// and writes (zero value disables).
	Retry RetryPolicy
}

// New builds and registers a client. Clients join the all-clients multicast
// group of their network prefix by default (Figure 11), so unsolicited
// advertisements reach them.
func New(cfg Config) (*Client, error) {
	node, err := cfg.Network.AddNode(cfg.Addr, cfg.Parent)
	if err != nil {
		return nil, err
	}
	timeout := cfg.DefaultTimeout
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	// The jitter stream is seeded per client (from its address), so
	// co-deployed clients desynchronize their retransmissions instead of
	// retrying in lockstep, while each client stays deterministic.
	a16 := cfg.Addr.As16()
	var jitterSeed int64 = 0x6031
	for _, b := range a16 {
		jitterSeed = jitterSeed*131 + int64(b)
	}
	c := &Client{
		net:            cfg.Network,
		node:           node,
		prefix:         netsim.PrefixFromAddr(cfg.Addr),
		timeout:        timeout,
		retry:          cfg.Retry,
		retryRng:       rand.New(rand.NewSource(jitterSeed)),
		pending:        map[uint16]*pending{},
		streams:        map[hw.DeviceID][]*Stream{},
		pendingStreams: map[uint16]*Stream{},
		units:          map[hw.DeviceID]string{},
	}
	node.JoinGroup(netsim.AllClientsAddr(c.prefix))
	node.Bind(netsim.Port6030, c.handle)
	return c, nil
}

// Addr returns the client's unicast address.
func (c *Client) Addr() netip.Addr { return c.node.Addr() }

// Node exposes the network node.
func (c *Client) Node() *netsim.Node { return c.node }

// Adverts returns every advertisement observed so far.
func (c *Client) Adverts() []Advert {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Advert(nil), c.adverts...)
}

// OnAdvert registers the callback for incoming advertisements, replacing any
// previous one (the original single-listener surface).
func (c *Client) OnAdvert(fn func(Advert)) {
	c.mu.Lock()
	c.onAdvert = fn
	c.mu.Unlock()
}

// AddAdvertHook registers an additional advertisement listener. Unlike
// OnAdvert it composes: every hook fires for every advert, alongside the
// OnAdvert callback, so independent consumers (a catalog, an application
// callback) can observe the advert flow without clobbering each other.
// Hooks cannot be removed; they live as long as the client.
func (c *Client) AddAdvertHook(fn func(Advert)) {
	if fn == nil {
		return
	}
	c.mu.Lock()
	c.advertHooks = append(c.advertHooks, fn)
	c.mu.Unlock()
}

// Units returns the unit string a peripheral type advertised, or "".
func (c *Client) Units(id hw.DeviceID) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.units[id]
}

// Things returns the distinct Things that advertised a given peripheral
// type (hw.DeviceIDAllPeripherals matches any type).
func (c *Client) Things(id hw.DeviceID) []netip.Addr {
	c.mu.Lock()
	defer c.mu.Unlock()
	seen := map[netip.Addr]bool{}
	var out []netip.Addr
	for _, a := range c.adverts {
		if id != hw.DeviceIDAllPeripherals && a.Peripheral.ID != id {
			continue
		}
		if !seen[a.Thing] {
			seen[a.Thing] = true
			out = append(out, a.Thing)
		}
	}
	return out
}

// nextSeqLocked allocates the next sequence number, skipping values still
// bound to an in-flight request or a live stream (Things tag stream data
// with the subscribe seq), so a 2^16 wrap cannot alias two requests.
func (c *Client) nextSeqLocked() uint16 {
	for {
		c.seq++
		if c.seq == 0 {
			continue
		}
		if _, busy := c.pending[c.seq]; busy {
			continue
		}
		if _, busy := c.pendingStreams[c.seq]; busy {
			continue
		}
		if c.streamSeqBusyLocked(c.seq) {
			continue
		}
		return c.seq
	}
}

// streamSeqBusyLocked reports whether an established, still-open stream
// holds the sequence number (c.mu held).
func (c *Client) streamSeqBusyLocked(seq uint16) bool {
	for _, list := range c.streams {
		for _, s := range list {
			s.mu.Lock()
			busy := s.seq == seq && !s.closed
			s.mu.Unlock()
			if busy {
				return true
			}
		}
	}
	return false
}

func (c *Client) timeoutOr(t time.Duration) time.Duration {
	if t <= 0 {
		return c.timeout
	}
	return t
}

// register inserts a pending request and arms its expiry as a typed clock
// event (netsim.Expirer) — no closure, no allocation. It returns the
// sequence number and the entry's generation; both are packed into the
// event's seq cookie and checked on firing, so neither a recycled sequence
// number nor a recycled pool entry can expire a newer request.
func (c *Client) register(p *pending, timeout time.Duration) (uint16, uint64) {
	c.mu.Lock()
	seq := c.nextSeqLocked()
	gen := p.gen
	c.pending[seq] = p
	c.mu.Unlock()
	ref := c.node.ScheduleExpiry(c.timeoutOr(timeout), c, uint64(seq)|gen<<16, p)
	c.mu.Lock()
	if cur, ok := c.pending[seq]; ok && cur == p && p.gen == gen {
		p.expiry = ref
		c.mu.Unlock()
		return seq, gen
	}
	c.mu.Unlock()
	// The request already terminated (possible under the realtime clock when
	// the deadline fires between scheduling and this registration): the ref
	// is orphaned — cancelling the already-fired event is a no-op.
	ref.Cancel()
	return seq, gen
}

// ExpireEvent implements netsim.Expirer: the typed deadline of a pending
// request. seqgen packs the sequence number (low 16 bits) and the pooled
// entry's generation (upper bits).
func (c *Client) ExpireEvent(seqgen uint64, tok any) {
	p := tok.(*pending)
	seq := uint16(seqgen)
	gen := seqgen >> 16
	c.mu.Lock()
	cur, ok := c.pending[seq]
	if !ok || cur != p || p.gen != gen {
		c.mu.Unlock()
		return
	}
	delete(c.pending, seq)
	adverts := p.adverts
	cancelRetx := p.cancelRetx
	c.mu.Unlock()
	if cancelRetx != nil {
		cancelRetx()
	}
	switch p.kind {
	case pendingRead:
		if p.onRead != nil {
			p.onRead(nil, ErrTimeout)
		}
	case pendingWrite:
		if p.onWrite != nil {
			p.onWrite(ErrTimeout)
		}
	case pendingDiscover:
		// A discovery window closing is completion, not failure: deliver
		// whatever arrived.
		if p.onDiscover != nil {
			p.onDiscover(adverts)
		}
	}
	c.release(p)
}

// send encodes into a pooled buffer and hands it to the network (zero-copy,
// zero-allocation in steady state). Deliberately duplicated across client,
// manager and thing rather than shared behind an interface — see the note in
// netsim/packet.go.
func (c *Client) send(dst netip.Addr, m *proto.Message) {
	pb := netsim.AcquireBuf()
	b, err := m.AppendEncode(pb.B[:0])
	if err != nil {
		pb.Release()
		return
	}
	pb.B = b
	c.node.SendBuf(dst, netsim.Port6030, pb)
}

// Pending returns the number of in-flight requests (reads, writes and
// discoveries awaiting completion). Streams pending establishment are not
// counted.
func (c *Client) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// retract withdraws an in-flight request without firing its callback: the
// pending entry is removed and its expiry and retransmission events are
// cancelled. Used by the SDK when the caller's context is done — the caller
// has already returned, so neither a late reply nor the deadline may complete
// the request. Retracting an already-completed request is a no-op.
func (c *Client) retract(seq uint16, gen uint64, p *pending) {
	c.mu.Lock()
	cur, ok := c.pending[seq]
	if !ok || cur != p || p.gen != gen {
		c.mu.Unlock()
		return
	}
	delete(c.pending, seq)
	ref, cancelRetx := p.expiry, p.cancelRetx
	c.mu.Unlock()
	ref.Cancel()
	if cancelRetx != nil {
		cancelRetx()
	}
	c.release(p)
}

// noRetract is returned for fire-and-forget requests with nothing to
// withdraw.
func noRetract() {}

// Discover multicasts a peripheral discovery (message 2) to the group of
// Things serving the given peripheral type. When done is non-nil it fires
// once the discovery window (timeout, 0 = the default) closes, with every
// solicited advertisement the request gathered; a nil done is
// fire-and-forget — observe results via Adverts/Things/OnAdvert. The
// returned retract withdraws the request without firing done (see retract).
func (c *Client) Discover(id hw.DeviceID, timeout time.Duration, done func([]Advert), filter ...proto.TLV) (retract func()) {
	return c.discoverGroup(netsim.MulticastAddr(c.prefix, id), timeout, done, filter)
}

// DiscoverClass discovers any peripheral of a device class, regardless of
// vendor or product — the Section 9 hierarchical-typing extension. Only
// Things running with the structured namespace respond.
func (c *Client) DiscoverClass(class uint8, timeout time.Duration, done func([]Advert), filter ...proto.TLV) (retract func()) {
	return c.Discover(hw.ClassWildcard(class), timeout, done, filter...)
}

// DiscoverInZone discovers a peripheral type within a location zone — the
// Section 9 location-aware multicast extension. Only Things placed in the
// zone receive the discovery.
func (c *Client) DiscoverInZone(zone uint16, id hw.DeviceID, timeout time.Duration, done func([]Advert), filter ...proto.TLV) (retract func()) {
	return c.discoverGroup(netsim.MulticastAddrZone(c.prefix, zone, id), timeout, done, filter)
}

func (c *Client) discoverGroup(group netip.Addr, timeout time.Duration, done func([]Advert), filter []proto.TLV) (retract func()) {
	var seq uint16
	retract = noRetract
	if done != nil {
		p := pendingPool.Get().(*pending)
		p.kind, p.onDiscover = pendingDiscover, done
		var gen uint64
		seq, gen = c.register(p, timeout)
		retract = func() { c.retract(seq, gen, p) }
	} else {
		c.mu.Lock()
		seq = c.nextSeqLocked()
		c.mu.Unlock()
	}
	c.send(group, &proto.Message{Type: proto.MsgDiscovery, Seq: seq, Filter: filter})
	return retract
}

// Read requests a single value from a peripheral (messages 10/11). The
// callback fires exactly once: with the decoded values, or with an error —
// ErrTimeout when no reply arrives within the timeout (0 = the default),
// ErrNoPeripheral when the Thing serves no such device, or a decode error
// for a malformed reply. With a RetryPolicy configured, unanswered requests
// are retransmitted with backoff inside the deadline. The returned retract
// withdraws the request without firing cb (see retract).
func (c *Client) Read(thing netip.Addr, id hw.DeviceID, timeout time.Duration, cb func([]int32, error)) (retract func()) {
	return c.read(thing, id, nil, false, timeout, cb)
}

// ReadInto is Read with a caller-provided scratch buffer: the reply's values
// are parsed by appending into scratch[:0] (growing it only when capacity is
// short) instead of allocating a fresh slice, so a caller that recycles the
// values handed to its callback as the next call's scratch performs
// steady-state reads without the per-read value allocation. The values
// passed to cb alias the scratch: they are valid only until the caller
// reuses it, and must be copied to be retained. One outstanding request per
// scratch buffer — issuing a second ReadInto with the same scratch before
// the first callback fired would let the two replies race on the buffer.
func (c *Client) ReadInto(thing netip.Addr, id hw.DeviceID, scratch []int32, timeout time.Duration, cb func([]int32, error)) (retract func()) {
	return c.read(thing, id, scratch, true, timeout, cb)
}

func (c *Client) read(thing netip.Addr, id hw.DeviceID, scratch []int32, hasScratch bool, timeout time.Duration, cb func([]int32, error)) (retract func()) {
	var seq uint16
	var gen uint64
	var p *pending
	retract = noRetract
	if cb != nil {
		p = pendingPool.Get().(*pending)
		p.kind, p.thing, p.id = pendingRead, thing, id
		p.onRead, p.scratch, p.hasScratch = cb, scratch, hasScratch
		seq, gen = c.register(p, timeout)
		retract = func() { c.retract(seq, gen, p) }
	} else {
		c.mu.Lock()
		seq = c.nextSeqLocked()
		c.mu.Unlock()
	}
	// Two message paths, two variables: the retransmit arm retains its
	// message, so sharing one variable across both branches would force the
	// no-retry message onto the heap too. Kept separate, the hot no-retry
	// send stack-allocates.
	if p != nil && c.retry.enabled() {
		m := &proto.Message{Type: proto.MsgRead, Seq: seq, DeviceID: id}
		c.send(thing, m)
		c.armRetransmit(seq, gen, p, thing, m, 1)
	} else {
		m := proto.Message{Type: proto.MsgRead, Seq: seq, DeviceID: id}
		c.send(thing, &m)
	}
	return retract
}

// Write sends a value to a peripheral, e.g. an actuator (messages 16/17).
// The callback fires exactly once with nil on acknowledgement, ErrTimeout
// on expiry, or ErrWriteRejected on a negative acknowledgement. With a
// RetryPolicy configured, unanswered requests are retransmitted with
// backoff inside the deadline. Writes are assumed idempotent at the Thing
// (the driver re-applies the same values); callers for whom duplicate
// application matters should not enable retries. The returned retract
// withdraws the request without firing cb (see retract).
func (c *Client) Write(thing netip.Addr, id hw.DeviceID, vals []int32, timeout time.Duration, cb func(error)) (retract func()) {
	var seq uint16
	var gen uint64
	var p *pending
	retract = noRetract
	if cb != nil {
		p = pendingPool.Get().(*pending)
		p.kind, p.onWrite = pendingWrite, cb
		seq, gen = c.register(p, timeout)
		retract = func() { c.retract(seq, gen, p) }
	} else {
		c.mu.Lock()
		seq = c.nextSeqLocked()
		c.mu.Unlock()
	}
	if p != nil && c.retry.enabled() {
		m := &proto.Message{Type: proto.MsgWrite, Seq: seq, DeviceID: id, Data: proto.Values32(vals)}
		c.send(thing, m)
		c.armRetransmit(seq, gen, p, thing, m, 1)
	} else {
		m := proto.Message{Type: proto.MsgWrite, Seq: seq, DeviceID: id, Data: proto.Values32(vals)}
		c.send(thing, &m)
	}
	return retract
}

// armRetransmit schedules the attempt-th retransmission of an unanswered
// unicast request: attempt k fires BaseBackoff<<(k-1) (jittered ±50%) after
// the previous transmission, resends the identical datagram — same sequence
// number, so a late reply to any transmission completes the request — and
// arms the next attempt. Completion and expiry retract the pending
// retransmission through pending.cancelRetx.
func (c *Client) armRetransmit(seq uint16, gen uint64, p *pending, dst netip.Addr, m *proto.Message, attempt int) {
	if p == nil || !c.retry.enabled() || attempt > c.retry.Attempts {
		return
	}
	shift := attempt - 1
	if shift > maxBackoffShift {
		shift = maxBackoffShift
	}
	base := c.retry.BaseBackoff << shift
	c.mu.Lock()
	jitter := 0.5 + c.retryRng.Float64()
	c.mu.Unlock()
	delay := time.Duration(float64(base) * jitter)
	cancel := c.node.ScheduleCancelable(delay, func() {
		c.mu.Lock()
		cur, ok := c.pending[seq]
		if !ok || cur != p || p.gen != gen {
			c.mu.Unlock()
			return
		}
		c.mu.Unlock()
		c.send(dst, m)
		c.armRetransmit(seq, gen, p, dst, m, attempt+1)
	})
	c.mu.Lock()
	if cur, ok := c.pending[seq]; ok && cur == p && p.gen == gen {
		p.cancelRetx = cancel
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()
	// The request completed between scheduling and registration (possible
	// under the realtime clock): retract the orphaned retransmission.
	cancel()
}

// ---------------------------------------------------------------------------
// Streams

// Stream is one subscription handle to a peripheral's value stream
// (messages 12–15). Handles replace the former per-DeviceID callback map:
// several subscriptions to the same peripheral type coexist, and each is
// closed independently.
type Stream struct {
	c     *Client
	thing netip.Addr
	id    hw.DeviceID
	// seq is the subscribe sequence number; the Thing tags the stream's
	// data messages with it, so it stays reserved while the stream lives.
	seq uint16

	mu          sync.Mutex
	group       netip.Addr
	established bool
	closed      bool
	onData      func([]int32)
	onClosed    func()
	// onEstablishedHook fires once on establishment; cleared afterwards.
	onEstablishedHook func(error)
	// cancelExpiry retracts the establishment deadline once established.
	cancelExpiry func()
}

// SubscribeOptions configures a stream subscription.
type SubscribeOptions struct {
	// Timeout bounds stream establishment (0 = the client default).
	Timeout time.Duration
	// OnData receives each decoded data message.
	OnData func([]int32)
	// OnClosed fires when the Thing closes the stream.
	OnClosed func()
	// OnEstablished fires once: with nil when the Thing answered with the
	// stream's multicast group, or with ErrTimeout on expiry.
	OnEstablished func(error)
}

// DeviceID returns the peripheral type the stream serves.
func (s *Stream) DeviceID() hw.DeviceID { return s.id }

// Established reports whether the Thing acknowledged the subscription.
func (s *Stream) Established() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.established
}

// Closed reports whether the stream ended (Thing-side close or local Close).
func (s *Stream) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// Close unsubscribes locally: the handle stops receiving data and the node
// leaves the stream's multicast group once no other handle needs it. The
// Thing keeps streaming for other subscribers until it closes the stream.
func (s *Stream) Close() {
	s.c.closeStream(s, false)
}

// Subscribe requests a peripheral's value stream from a Thing. The Thing
// replies with the multicast group to join; data then arrives on the group
// until the Thing closes the stream or the handle is Closed.
func (c *Client) Subscribe(thing netip.Addr, id hw.DeviceID, opts SubscribeOptions) *Stream {
	s := &Stream{c: c, thing: thing, id: id, onData: opts.OnData, onClosed: opts.OnClosed,
		onEstablishedHook: opts.OnEstablished}
	c.mu.Lock()
	seq := c.nextSeqLocked()
	s.seq = seq
	c.pendingStreams[seq] = s
	c.mu.Unlock()
	onEst := opts.OnEstablished
	cancel := c.node.ScheduleCancelable(c.timeoutOr(opts.Timeout), func() {
		c.mu.Lock()
		cur, ok := c.pendingStreams[seq]
		if !ok || cur != s {
			c.mu.Unlock()
			return
		}
		delete(c.pendingStreams, seq)
		c.mu.Unlock()
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		if onEst != nil {
			onEst(ErrTimeout)
		}
	})
	s.mu.Lock()
	s.cancelExpiry = cancel
	s.mu.Unlock()
	c.send(thing, &proto.Message{Type: proto.MsgStream, Seq: seq, DeviceID: id})
	return s
}

// closeStream detaches a handle; thingClosed distinguishes the Thing's close
// message (which fires OnClosed) from a local Close.
func (c *Client) closeStream(s *Stream, thingClosed bool) {
	c.mu.Lock()
	list := c.streams[s.id]
	idx := -1
	for i, x := range list {
		if x == s {
			idx = i
			break
		}
	}
	if idx >= 0 {
		c.streams[s.id] = append(list[:idx:idx], list[idx+1:]...)
	}
	// Also drop a not-yet-established handle from the pending table.
	for seq, x := range c.pendingStreams {
		if x == s {
			delete(c.pendingStreams, seq)
		}
	}
	s.mu.Lock()
	alreadyClosed := s.closed
	s.closed = true
	group := s.group
	joined := s.established
	onClosed := s.onClosed
	cancel := s.cancelExpiry
	s.cancelExpiry = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	leave := joined && group.IsValid() && !c.groupStillNeededLocked(group)
	c.mu.Unlock()
	if leave {
		c.node.LeaveGroup(group)
	}
	if thingClosed && !alreadyClosed && onClosed != nil {
		onClosed()
	}
}

// groupStillNeededLocked reports whether any live established stream still
// listens on the group (c.mu held).
func (c *Client) groupStillNeededLocked(group netip.Addr) bool {
	for _, list := range c.streams {
		for _, s := range list {
			s.mu.Lock()
			need := s.established && !s.closed && s.group == group
			s.mu.Unlock()
			if need {
				return true
			}
		}
	}
	return false
}

// handle processes incoming protocol messages. Decoding borrows a pooled
// Decoder — the decoded message (and msg.Payload it aliases) is valid only
// within this call, so anything retained (adverts) is cloned.
func (c *Client) handle(msg netsim.Message) {
	dec := proto.AcquireDecoder()
	defer proto.ReleaseDecoder(dec)
	m, err := dec.Decode(msg.Payload)
	if err != nil {
		return
	}
	switch m.Type {
	case proto.MsgUnsolicitedAdvert, proto.MsgSolicitedAdvert:
		c.handleAdvert(msg, m)

	case proto.MsgData:
		// Read replies are unicast from the addressed Thing for the
		// requested peripheral; anything else with a matching sequence
		// number (stream data on a shared multicast group, where another
		// client chose the number) must not complete a pending read.
		c.mu.Lock()
		if p, ok := c.pending[m.Seq]; ok && p.kind == pendingRead &&
			!msg.Dst.IsMulticast() && msg.Src == p.thing && m.DeviceID == p.id {
			delete(c.pending, m.Seq)
			ref, cancelRetx := p.expiry, p.cancelRetx
			c.mu.Unlock()
			ref.Cancel()
			if cancelRetx != nil {
				cancelRetx()
			}
			c.completeRead(p, m)
			c.release(p)
			return
		}
		c.mu.Unlock()
		// Stream data arrives on the multicast group; a unicast data
		// message that matched no pending read (e.g. a reply landing after
		// its expiry) must not masquerade as stream data.
		if msg.Dst.IsMulticast() {
			c.routeStreamData(msg.Src, m)
		}

	case proto.MsgWriteAck:
		c.mu.Lock()
		p, ok := c.pending[m.Seq]
		var ref netsim.ExpiryRef
		var cancelRetx func()
		if ok && p.kind == pendingWrite {
			delete(c.pending, m.Seq)
			ref, cancelRetx = p.expiry, p.cancelRetx
		}
		c.mu.Unlock()
		if ok && p.kind == pendingWrite {
			ref.Cancel()
			if cancelRetx != nil {
				cancelRetx()
			}
			if p.onWrite != nil {
				if m.Status == 0 {
					p.onWrite(nil)
				} else {
					p.onWrite(ErrWriteRejected)
				}
			}
			c.release(p)
		}

	case proto.MsgEstablished:
		group, okAddr := netip.AddrFromSlice(m.Group[:])
		if !okAddr {
			return
		}
		c.mu.Lock()
		s, ok := c.pendingStreams[m.Seq]
		if ok {
			delete(c.pendingStreams, m.Seq)
			c.streams[s.id] = append(c.streams[s.id], s)
		}
		c.mu.Unlock()
		if !ok {
			return
		}
		s.mu.Lock()
		s.group = group
		s.established = true
		onEst := s.onEstablishedHook
		s.onEstablishedHook = nil
		cancel := s.cancelExpiry
		s.cancelExpiry = nil
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		c.node.JoinGroup(group)
		if onEst != nil {
			onEst(nil)
		}

	case proto.MsgClosed:
		// Close only the subscriptions served by the closing Thing: several
		// Things may stream the same peripheral type over the shared group,
		// and one closing must not tear down the others' handles.
		c.mu.Lock()
		var subs []*Stream
		for _, s := range c.streams[m.DeviceID] {
			if s.thing == msg.Src {
				subs = append(subs, s)
			}
		}
		c.mu.Unlock()
		for _, s := range subs {
			c.closeStream(s, true)
		}
	}
}

// routeStreamData delivers group data to the live subscriptions of the
// peripheral type served by the sending Thing. The group is shared per
// device type, so data from other Things streaming the same type arrives
// here too and must not be misattributed to this handle's Thing.
func (c *Client) routeStreamData(src netip.Addr, m *proto.Message) {
	c.mu.Lock()
	var subs []*Stream
	for _, s := range c.streams[m.DeviceID] {
		if s.thing == src {
			subs = append(subs, s)
		}
	}
	c.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	vals, err := proto.ParseValues32(m.Data)
	if err != nil {
		return
	}
	for _, s := range subs {
		s.mu.Lock()
		cb := s.onData
		dead := s.closed
		s.mu.Unlock()
		if !dead && cb != nil {
			cb(vals)
		}
	}
}

// completeRead decodes a data reply and fires the read callback.
func (c *Client) completeRead(p *pending, m *proto.Message) {
	if p.onRead == nil {
		return
	}
	if len(m.Data) == 0 {
		// The Thing's empty reply signals the peripheral's absence.
		p.onRead(nil, ErrNoPeripheral)
		return
	}
	var (
		vals []int32
		err  error
	)
	if p.hasScratch {
		vals, err = proto.AppendParseValues32(p.scratch[:0], m.Data)
	} else {
		vals, err = proto.ParseValues32(m.Data)
	}
	if err != nil {
		p.onRead(nil, fmt.Errorf("micropnp: malformed data reply: %w", err))
		return
	}
	p.onRead(vals, nil)
}

// handleAdvert records advertisements, captures advertised units, routes
// solicited replies to their discovery collector, and fires OnAdvert.
func (c *Client) handleAdvert(msg netsim.Message, m *proto.Message) {
	solicited := m.Type == proto.MsgSolicitedAdvert
	c.mu.Lock()
	cb := c.onAdvert
	hooks := c.advertHooks
	var fired []Advert
	for _, p := range m.Peripherals {
		// Clone: the decoded TLVs alias the datagram buffer, which the
		// network recycles after this handler returns, while adverts are
		// retained indefinitely.
		a := Advert{Thing: msg.Src, Peripheral: p.Clone(), Solicited: solicited, At: c.node.Now()}
		c.adverts = append(c.adverts, a)
		if u, ok := p.TLVString(proto.TLVUnits); ok {
			c.units[p.ID] = u
		}
		if solicited {
			if pd, ok := c.pending[m.Seq]; ok && pd.kind == pendingDiscover {
				pd.adverts = append(pd.adverts, a)
			}
		}
		fired = append(fired, a)
	}
	c.mu.Unlock()
	for _, a := range fired {
		if cb != nil {
			cb(a)
		}
		for _, hook := range hooks {
			hook(a)
		}
	}
}
