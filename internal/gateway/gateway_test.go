package gateway

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"micropnp"
	"micropnp/internal/catalog"
)

// rig is one virtual deployment fronted by a gateway under httptest.
type rig struct {
	d      *micropnp.Deployment
	cl     *micropnp.Client
	cat    *catalog.Catalog
	srv    *Server
	ts     *httptest.Server
	things []*micropnp.Thing
}

// newRig boots nThings Things (TMP36 on channel 0, the first Thing also a
// Relay on channel 1) behind a gateway.
func newRig(t *testing.T, nThings int, ttl time.Duration, opts ...micropnp.Option) *rig {
	t.Helper()
	d, err := micropnp.NewDeployment(opts...)
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	t.Cleanup(d.Close)
	cl, err := d.AddClient()
	if err != nil {
		t.Fatalf("AddClient: %v", err)
	}
	cat, err := catalog.New(catalog.Config{TTL: ttl, Now: d.Now})
	if err != nil {
		t.Fatalf("catalog.New: %v", err)
	}
	cl.AddAdvertHook(cat.Observe)
	var things []*micropnp.Thing
	for i := 0; i < nThings; i++ {
		th, err := d.AddThing(fmt.Sprintf("thing-%d", i))
		if err != nil {
			t.Fatalf("AddThing: %v", err)
		}
		if err := th.PlugTMP36(0); err != nil {
			t.Fatalf("PlugTMP36: %v", err)
		}
		if i == 0 {
			if _, err := th.PlugRelay(1); err != nil {
				t.Fatalf("PlugRelay: %v", err)
			}
		}
		things = append(things, th)
	}
	d.Run()
	srv, err := New(Config{Deployment: d, Client: cl, Catalog: cat})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return &rig{d: d, cl: cl, cat: cat, srv: srv, ts: ts, things: things}
}

func (r *rig) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(r.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp, body
}

func (r *rig) getJSON(t *testing.T, path string, into any) *http.Response {
	t.Helper()
	resp, body := r.get(t, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, body %s", path, resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", path, body, err)
	}
	return resp
}

func TestNewValidatesConfig(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New accepted an empty config")
	}
}

func TestParseDevice(t *testing.T) {
	for in, want := range map[string]micropnp.DeviceID{
		"tmp36": micropnp.TMP36,
		"RELAY": micropnp.Relay,
		"all":   micropnp.AllPeripherals,
		"0x12":  micropnp.DeviceID(0x12),
		"18":    micropnp.DeviceID(18),
	} {
		got, err := ParseDevice(in)
		if err != nil || got != want {
			t.Fatalf("ParseDevice(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseDevice("no-such-device"); err == nil {
		t.Fatal("ParseDevice accepted garbage")
	}
}

func TestListAndThingEndpoints(t *testing.T) {
	r := newRig(t, 3, time.Minute)

	var list ListJSON
	r.getJSON(t, "/things", &list)
	if list.Total != 4 || list.Count != 4 { // 3 TMP36 + 1 relay
		t.Fatalf("list = total %d count %d, want 4/4", list.Total, list.Count)
	}

	// Filtered by device.
	r.getJSON(t, "/things?device=relay", &list)
	if list.Total != 1 {
		t.Fatalf("relay filter total = %d, want 1", list.Total)
	}

	// Paged: two pages of 3+1.
	r.getJSON(t, "/things?limit=3", &list)
	if list.Total != 4 || list.Count != 3 {
		t.Fatalf("page 1 = total %d count %d, want 4/3", list.Total, list.Count)
	}
	r.getJSON(t, "/things?limit=3&offset=3", &list)
	if list.Total != 4 || list.Count != 1 {
		t.Fatalf("page 2 = total %d count %d, want 4/1", list.Total, list.Count)
	}

	// Single Thing: the relay host lists two peripherals.
	var entries []EntryJSON
	r.getJSON(t, "/things/"+r.things[0].Addr().String(), &entries)
	if len(entries) != 2 {
		t.Fatalf("thing 0 entries = %d, want 2", len(entries))
	}

	// Unknown Thing → 404; bad address → 400.
	if resp, _ := r.get(t, "/things/fd00::dead"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown thing status = %d, want 404", resp.StatusCode)
	}
	if resp, _ := r.get(t, "/things/not-an-addr"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad address status = %d, want 400", resp.StatusCode)
	}
}

func TestReadEndpoint(t *testing.T) {
	r := newRig(t, 2, time.Minute)
	addr := r.things[1].Addr().String()

	var reading ReadingJSON
	resp := r.getJSON(t, "/things/"+addr+"/read?peripheral=tmp36", &reading)
	if len(reading.Values) == 0 {
		t.Fatalf("read returned no values: %+v", reading)
	}
	if reading.Thing != addr {
		t.Fatalf("reading.Thing = %s, want %s", reading.Thing, addr)
	}
	span, err := strconv.ParseInt(resp.Header.Get("X-Upnp-Virtual-Ns"), 10, 64)
	if err != nil || span <= 0 {
		t.Fatalf("X-Upnp-Virtual-Ns = %q, want a positive span", resp.Header.Get("X-Upnp-Virtual-Ns"))
	}

	// Virtual-mode determinism: the same read has the same virtual span.
	resp2 := r.getJSON(t, "/things/"+addr+"/read?peripheral=tmp36", &reading)
	if got := resp2.Header.Get("X-Upnp-Virtual-Ns"); got != strconv.FormatInt(span, 10) {
		t.Fatalf("virtual span not deterministic: %s then %s", strconv.FormatInt(span, 10), got)
	}

	// No such peripheral on a live Thing → 404.
	if resp, _ := r.get(t, "/things/"+addr+"/read?peripheral=bmp180"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing peripheral status = %d, want 404", resp.StatusCode)
	}
	// Missing parameter → 400.
	if resp, _ := r.get(t, "/things/"+addr+"/read"); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing parameter status = %d, want 400", resp.StatusCode)
	}
	// Unreachable Thing → the SDK read expires → 504.
	if resp, _ := r.get(t, "/things/fd00::dead/read?peripheral=tmp36"); resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("unreachable thing status = %d, want 504", resp.StatusCode)
	}
}

func TestWriteEndpoint(t *testing.T) {
	r := newRig(t, 1, time.Minute)
	addr := r.things[0].Addr().String()

	put := func(path, body string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, r.ts.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatalf("NewRequest: %v", err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("PUT %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	if resp := put("/things/"+addr+"/write?peripheral=relay", `{"values":[1]}`); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("relay write status = %d, want 204", resp.StatusCode)
	}
	// Writing to a peripheral the Thing does not serve is rejected → 409.
	if resp := put("/things/"+addr+"/write?peripheral=bmp180", `{"values":[1]}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("absent-peripheral write status = %d, want 409", resp.StatusCode)
	}
	// Empty values → 400.
	if resp := put("/things/"+addr+"/write?peripheral=relay", `{"values":[]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty write status = %d, want 400", resp.StatusCode)
	}
}

func TestDiscoverRefreshesLeases(t *testing.T) {
	r := newRig(t, 2, 30*time.Second)

	// Let most of the TTL elapse, then discover: the replies must extend
	// every lease past the original deadline.
	r.d.RunFor(25 * time.Second)
	var out struct {
		Count int `json:"count"`
	}
	post, err := http.Post(r.ts.URL+"/discover", "application/json", nil)
	if err != nil {
		t.Fatalf("POST /discover: %v", err)
	}
	data, _ := io.ReadAll(post.Body)
	post.Body.Close()
	if post.StatusCode != http.StatusOK {
		t.Fatalf("POST /discover status = %d, body %s", post.StatusCode, data)
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("discover JSON: %v", err)
	}
	if out.Count != 3 { // 2 TMP36 + the first Thing's relay
		t.Fatalf("discover count = %d, want 3", out.Count)
	}

	// Past the original TTL the sweep drops nothing: leases were refreshed.
	r.d.RunFor(10 * time.Second)
	if n := r.cat.Sweep(); n != 0 {
		t.Fatalf("sweep dropped %d refreshed leases", n)
	}
}

// TestHotplugLifecycleOverHTTP is the PR's acceptance assertion: a
// hot-plugged peripheral appears in GET /things within one refresh round,
// and an unplugged one disappears within one TTL + sweep.
func TestHotplugLifecycleOverHTTP(t *testing.T) {
	const ttl = 30 * time.Second
	r := newRig(t, 2, ttl)

	listTotal := func() int {
		var list ListJSON
		r.getJSON(t, "/things", &list)
		return list.Total
	}
	discover := func() {
		resp, err := http.Post(r.ts.URL+"/discover", "application/json", nil)
		if err != nil {
			t.Fatalf("POST /discover: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /discover status = %d", resp.StatusCode)
		}
	}

	if got := listTotal(); got != 3 { // 2 TMP36 + relay
		t.Fatalf("initial total = %d, want 3", got)
	}

	// Hot-plug: the plug-in advert alone (no discovery round) must surface
	// the new peripheral in the listing.
	if err := r.things[1].PlugBMP180(1); err != nil {
		t.Fatalf("PlugBMP180: %v", err)
	}
	r.d.Run() // one advert interval: let the plug-in sequence play out
	if got := listTotal(); got != 4 {
		t.Fatalf("total after hot-plug = %d, want 4 (plug-in advert not catalogued)", got)
	}

	// Hot-unplug: after one TTL of refresh rounds that no longer cover the
	// peripheral, plus one sweep, the listing drops it.
	if err := r.things[1].Unplug(1); err != nil {
		t.Fatalf("Unplug: %v", err)
	}
	entry, ok := r.cat.Get(r.things[1].Addr(), micropnp.BMP180)
	if !ok {
		t.Fatal("unplugged entry gone before its lease expired")
	}
	for r.d.Now() <= entry.Expires {
		r.d.RunFor(10 * time.Second)
		discover()
	}
	r.cat.Sweep()
	if got := listTotal(); got != 3 {
		t.Fatalf("total after unplug+TTL+sweep = %d, want 3", got)
	}
	if _, ok := r.cat.Get(r.things[1].Addr(), micropnp.BMP180); ok {
		t.Fatal("unplugged peripheral still catalogued")
	}
}

func TestStreamSSE(t *testing.T) {
	r := newRig(t, 1, time.Minute, micropnp.WithStreamPeriod(5*time.Second))
	addr := r.things[0].Addr().String()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.ts.URL+"/things/"+addr+"/stream?peripheral=tmp36", nil)
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET stream: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("stream status = %d, body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type = %q", ct)
	}

	// Drive the simulator so stream ticks flow while we read events.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ctx.Err() == nil {
			r.d.RunFor(5 * time.Second)
		}
	}()

	sc := bufio.NewScanner(resp.Body)
	readings := 0
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rd ReadingJSON
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rd); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		if len(rd.Values) == 0 || rd.Thing != addr {
			t.Fatalf("bad SSE reading: %+v", rd)
		}
		readings++
		if readings >= 3 {
			break
		}
	}
	if readings < 3 {
		t.Fatalf("got %d stream readings, want 3 (scan err %v)", readings, sc.Err())
	}
	cancel()
	<-done
}

func TestHealthzAndMetrics(t *testing.T) {
	r := newRig(t, 1, time.Minute)

	var hz struct {
		OK      bool   `json:"ok"`
		Mode    string `json:"mode"`
		Catalog int    `json:"catalog_size"`
	}
	r.getJSON(t, "/healthz", &hz)
	if !hz.OK || hz.Mode != "virtual" || hz.Catalog != 2 {
		t.Fatalf("healthz = %+v", hz)
	}

	// Generate some traffic so the counters move.
	var reading ReadingJSON
	r.getJSON(t, "/things/"+r.things[0].Addr().String()+"/read?peripheral=tmp36", &reading)
	r.get(t, "/things/not-an-addr") // one error

	resp, body := r.get(t, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	text := string(body)
	for _, want := range []string{
		"upnp_gateway_requests_total",
		"upnp_gateway_errors_total 1",
		"upnp_gateway_catalog_size 2",
		"upnp_gateway_read_count 1",
		"upnp_gateway_read_virtual_ns{q=\"0.99\"}",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
