// Package gateway is the HTTP/JSON front door over the µPnP SDK: an edge
// service that exposes a deployment's peripherals to plain web clients, the
// way the paper's gateway scenarios front 6LoWPAN networks with an IP-side
// service. It pairs a TTL-leased catalog (fed from live advertisements) with
// handlers that translate REST calls into SDK reads, writes, discoveries and
// subscription streams:
//
//	GET  /things                     paged, filtered catalog listing
//	GET  /things/{addr}              one Thing's catalogued peripherals
//	GET  /things/{addr}/read         unicast read (ReadInto, pooled scratch)
//	PUT  /things/{addr}/write        unicast write ({"values":[...]})
//	POST /discover                   multicast discovery (also refreshes leases)
//	GET  /things/{addr}/stream       SSE bridge over Subscribe
//	GET  /healthz                    liveness + mode
//	GET  /metrics                    text counters and latency quantiles
//
// Handlers deliberately attach no deadline to the SDK context: request
// deadlines come from the deployment's virtual-time request timeout, so
// virtual-mode latencies stay deterministic. Each data-path response carries
// the SDK call's virtual-time span in the X-Upnp-Virtual-Ns header — the
// latency signal load generators record in virtual mode, where wall time is
// meaningless.
//
// The SSE bridge gives every stream client a private buffered send queue: a
// slow consumer sheds (drops) readings once its queue is full rather than
// backpressuring the advert/stream delivery goroutine, which must never
// block.
package gateway

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"micropnp"
	"micropnp/internal/catalog"
	"micropnp/internal/loadgen"
)

// DefaultStreamBuffer is the per-client SSE send-queue depth when
// Config.StreamBuffer is zero.
const DefaultStreamBuffer = 16

// Backend is the SDK data-path surface the gateway fronts. Both
// *micropnp.Client (one deployment) and *micropnp.Fleet (a federation,
// routing by address prefix) satisfy it with identical semantics — the
// handlers never know which they talk to.
type Backend interface {
	ReadInto(ctx context.Context, thing netip.Addr, id micropnp.DeviceID, scratch []int32) (micropnp.Reading, error)
	Write(ctx context.Context, thing netip.Addr, id micropnp.DeviceID, vals []int32) error
	Discover(ctx context.Context, id micropnp.DeviceID) ([]micropnp.Advert, error)
	Subscribe(ctx context.Context, thing netip.Addr, id micropnp.DeviceID, onReading func(micropnp.Reading)) (*micropnp.Subscription, error)
}

// Config wires a Server to a deployment or a whole fleet.
type Config struct {
	// Deployment and Client front a single deployment. Mutually exclusive
	// with Fleet.
	Deployment *micropnp.Deployment
	Client     *micropnp.Client
	// Fleet fronts a federation: requests route by Thing address prefix,
	// and each data-path response's X-Upnp-Virtual-Ns span is measured on
	// the owning member's clock (members keep independent timelines).
	Fleet *micropnp.Fleet
	// Catalog is the lease registry backing the listing endpoints. The
	// caller owns wiring (Client.AddAdvertHook(Catalog.Observe), or one
	// catalog.AddFeed per fleet member) and the sweep goroutine; the
	// gateway only reads it.
	Catalog *catalog.Catalog
	// StreamBuffer is the per-client SSE queue depth (0 = DefaultStreamBuffer).
	// A reading arriving at a full queue is shed.
	StreamBuffer int
}

// Server is the gateway's http.Handler. Create with New.
type Server struct {
	deps      []*micropnp.Deployment // fleet members, or the one deployment
	be        Backend
	fleet     *micropnp.Fleet // nil when fronting a single deployment
	cat       *catalog.Catalog
	mux       *http.ServeMux
	streamBuf int

	requests      atomic.Uint64
	errs          atomic.Uint64
	inFlight      atomic.Int64
	streamClients atomic.Int64
	streamSent    atomic.Uint64
	streamDrops   atomic.Uint64

	// Virtual-time latency histograms of the SDK calls behind the data-path
	// endpoints (the same log-linear histogram the load generator gates on).
	readLat     loadgen.Histogram
	writeLat    loadgen.Histogram
	discoverLat loadgen.Histogram

	// scratch pools per-request ReadInto value buffers so steady-state
	// gateway reads stay off the per-read allocation path.
	scratch sync.Pool
}

// New builds the gateway server over one deployment (Deployment+Client) or a
// federation (Fleet).
func New(cfg Config) (*Server, error) {
	if cfg.Catalog == nil {
		return nil, fmt.Errorf("gateway: Config.Catalog is required")
	}
	s := &Server{
		cat:       cfg.Catalog,
		mux:       http.NewServeMux(),
		streamBuf: cfg.StreamBuffer,
	}
	if s.streamBuf <= 0 {
		s.streamBuf = DefaultStreamBuffer
	}
	switch {
	case cfg.Fleet != nil:
		if cfg.Deployment != nil || cfg.Client != nil {
			return nil, fmt.Errorf("gateway: Config.Fleet is mutually exclusive with Deployment/Client")
		}
		s.fleet = cfg.Fleet
		s.deps = cfg.Fleet.Deployments()
		s.be = cfg.Fleet
	case cfg.Deployment != nil && cfg.Client != nil:
		s.deps = []*micropnp.Deployment{cfg.Deployment}
		s.be = cfg.Client
	default:
		return nil, fmt.Errorf("gateway: need Config.Fleet, or Config.Deployment and Config.Client")
	}
	s.scratch.New = func() any { b := make([]int32, 0, 16); return &b }
	s.mux.HandleFunc("GET /things", s.handleList)
	s.mux.HandleFunc("GET /things/{addr}", s.handleThing)
	s.mux.HandleFunc("GET /things/{addr}/read", s.handleRead)
	s.mux.HandleFunc("PUT /things/{addr}/write", s.handleWrite)
	s.mux.HandleFunc("POST /discover", s.handleDiscover)
	s.mux.HandleFunc("GET /things/{addr}/stream", s.handleStream)
	s.mux.HandleFunc("POST /admin/fail-manager", s.handleFailManager)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// clockFor resolves the deployment whose virtual clock times a request on a
// Thing address: the owning fleet member, or the single fronted deployment.
// Unroutable addresses fall back to member 0 — the SDK call will fail with
// its own routing error, and the span is still well-defined.
func (s *Server) clockFor(thing netip.Addr) *micropnp.Deployment {
	if s.fleet != nil {
		if d := s.fleet.DeploymentFor(thing); d != nil {
			return d
		}
	}
	return s.deps[0]
}

// ServeHTTP dispatches with request/in-flight accounting.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	s.inFlight.Add(1)
	defer s.inFlight.Add(-1)
	s.mux.ServeHTTP(w, r)
}

// ---------------------------------------------------------------------------
// JSON shapes

// EntryJSON is the wire form of one catalogued peripheral.
type EntryJSON struct {
	Thing       string `json:"thing"`
	Device      string `json:"device"`
	Name        string `json:"name,omitempty"`
	Units       string `json:"units,omitempty"`
	Channel     int    `json:"channel"`
	FirstSeenNs int64  `json:"first_seen_ns"`
	LastSeenNs  int64  `json:"last_seen_ns"`
	ExpiresNs   int64  `json:"expires_ns"`
	Solicited   bool   `json:"solicited"`
}

func entryJSON(e catalog.Entry) EntryJSON {
	return EntryJSON{
		Thing:       e.Thing.String(),
		Device:      e.Device.String(),
		Name:        e.Name,
		Units:       e.Units,
		Channel:     e.Channel,
		FirstSeenNs: int64(e.FirstSeen),
		LastSeenNs:  int64(e.LastSeen),
		ExpiresNs:   int64(e.Expires),
		Solicited:   e.Solicited,
	}
}

// ListJSON is the paged listing response.
type ListJSON struct {
	Total  int         `json:"total"`
	Offset int         `json:"offset"`
	Count  int         `json:"count"`
	Things []EntryJSON `json:"things"`
}

// ReadingJSON is the wire form of one reading.
type ReadingJSON struct {
	Thing  string  `json:"thing"`
	Device string  `json:"device"`
	Values []int32 `json:"values"`
	Units  string  `json:"units,omitempty"`
	AtNs   int64   `json:"at_ns"`
}

// AdvertJSON is the wire form of one discovery sighting.
type AdvertJSON struct {
	Thing     string `json:"thing"`
	Device    string `json:"device"`
	Name      string `json:"name,omitempty"`
	Units     string `json:"units,omitempty"`
	Channel   int    `json:"channel"`
	Solicited bool   `json:"solicited"`
	AtNs      int64  `json:"at_ns"`
}

type errorJSON struct {
	Error string `json:"error"`
}

// ---------------------------------------------------------------------------
// Helpers

// deviceNames maps the CLI/JSON names of the shipped peripherals; numeric
// forms (0x04000000 or decimal) are accepted everywhere too.
var deviceNames = map[string]micropnp.DeviceID{
	"tmp36":   micropnp.TMP36,
	"hih4030": micropnp.HIH4030,
	"bmp180":  micropnp.BMP180,
	"id20la":  micropnp.ID20LA,
	"adxl345": micropnp.ADXL345,
	"relay":   micropnp.Relay,
	"all":     micropnp.AllPeripherals,
}

// ParseDevice resolves a device-type argument: a shipped-peripheral name
// (tmp36, relay, ..., all) or a numeric identifier (0x-prefixed or decimal).
func ParseDevice(s string) (micropnp.DeviceID, error) {
	if id, ok := deviceNames[strings.ToLower(s)]; ok {
		return id, nil
	}
	n, err := strconv.ParseUint(s, 0, 32)
	if err != nil {
		names := make([]string, 0, len(deviceNames))
		for name := range deviceNames {
			names = append(names, name)
		}
		sort.Strings(names)
		return 0, fmt.Errorf("unknown device %q (names: %s; or a numeric id)", s, strings.Join(names, ", "))
	}
	return micropnp.DeviceID(n), nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.errs.Add(1)
	s.writeJSON(w, status, errorJSON{Error: fmt.Sprintf(format, args...)})
}

// failSDK maps an SDK error to a status: unreachable/lost → 504, no such
// peripheral → 404, rejected write → 409, closed deployment → 503,
// cancelled request → 499 (client went away; nobody reads it).
func (s *Server) failSDK(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, micropnp.ErrNoPeripheral):
		s.fail(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, micropnp.ErrTimeout):
		s.fail(w, http.StatusGatewayTimeout, "%v", err)
	case errors.Is(err, micropnp.ErrWriteRejected):
		s.fail(w, http.StatusConflict, "%v", err)
	case errors.Is(err, micropnp.ErrClosed):
		s.fail(w, http.StatusServiceUnavailable, "%v", err)
	default:
		s.fail(w, 499, "%v", err)
	}
}

func (s *Server) pathAddr(w http.ResponseWriter, r *http.Request) (netip.Addr, bool) {
	a, err := netip.ParseAddr(r.PathValue("addr"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "bad thing address %q: %v", r.PathValue("addr"), err)
		return netip.Addr{}, false
	}
	return a, true
}

func (s *Server) queryDevice(w http.ResponseWriter, r *http.Request, param string, required bool) (micropnp.DeviceID, bool) {
	v := r.URL.Query().Get(param)
	if v == "" {
		if required {
			s.fail(w, http.StatusBadRequest, "missing required query parameter %q", param)
			return 0, false
		}
		return micropnp.AllPeripherals, true
	}
	id, err := ParseDevice(v)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return 0, false
	}
	return id, true
}

// ---------------------------------------------------------------------------
// Handlers

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var f catalog.Filter
	if v := q.Get("device"); v != "" {
		id, err := ParseDevice(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "%v", err)
			return
		}
		f.Device = id
	}
	f.Units = q.Get("units")
	if v := q.Get("thing"); v != "" {
		a, err := netip.ParseAddr(v)
		if err != nil {
			s.fail(w, http.StatusBadRequest, "bad thing filter %q: %v", v, err)
			return
		}
		f.Thing = a
	}
	offset, limit := 0, 0
	if v := q.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad offset %q", v)
			return
		}
		offset = n
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	page, total := s.cat.List(f, offset, limit)
	out := ListJSON{Total: total, Offset: offset, Count: len(page), Things: make([]EntryJSON, len(page))}
	for i, e := range page {
		out.Things[i] = entryJSON(e)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleThing(w http.ResponseWriter, r *http.Request) {
	a, ok := s.pathAddr(w, r)
	if !ok {
		return
	}
	entries := s.cat.Thing(a)
	if len(entries) == 0 {
		s.fail(w, http.StatusNotFound, "no catalogued peripherals on %s", a)
		return
	}
	out := make([]EntryJSON, len(entries))
	for i, e := range entries {
		out[i] = entryJSON(e)
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleRead(w http.ResponseWriter, r *http.Request) {
	a, ok := s.pathAddr(w, r)
	if !ok {
		return
	}
	dev, ok := s.queryDevice(w, r, "peripheral", true)
	if !ok {
		return
	}
	buf := s.scratch.Get().(*[]int32)
	defer s.scratch.Put(buf)
	d := s.clockFor(a)
	start := d.Now()
	reading, err := s.be.ReadInto(r.Context(), a, dev, (*buf)[:0])
	span := d.Now() - start
	if err != nil {
		s.failSDK(w, err)
		return
	}
	*buf = reading.Values // keep the (possibly grown) buffer for the pool
	s.readLat.Record(int64(span))
	s.setSpan(w, a, span)
	// The reading's values alias the pooled scratch: the JSON encoder reads
	// them before this handler returns the buffer, so no copy is needed.
	s.writeJSON(w, http.StatusOK, ReadingJSON{
		Thing:  reading.Thing.String(),
		Device: reading.Device.String(),
		Values: reading.Values,
		Units:  reading.Units,
		AtNs:   int64(reading.At),
	})
}

func (s *Server) handleWrite(w http.ResponseWriter, r *http.Request) {
	a, ok := s.pathAddr(w, r)
	if !ok {
		return
	}
	dev, ok := s.queryDevice(w, r, "peripheral", true)
	if !ok {
		return
	}
	var body struct {
		Values []int32 `json:"values"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		s.fail(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(body.Values) == 0 {
		s.fail(w, http.StatusBadRequest, "body must carry a non-empty values array")
		return
	}
	d := s.clockFor(a)
	start := d.Now()
	err := s.be.Write(r.Context(), a, dev, body.Values)
	span := d.Now() - start
	if err != nil {
		s.failSDK(w, err)
		return
	}
	s.writeLat.Record(int64(span))
	s.setSpan(w, a, span)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleDiscover(w http.ResponseWriter, r *http.Request) {
	dev, ok := s.queryDevice(w, r, "device", false)
	if !ok {
		return
	}
	// Discovery fans out across every member; members keep independent
	// clocks, so the span is the sum of per-member advances (a single
	// deployment reduces to the plain before/after difference).
	starts := make([]time.Duration, len(s.deps))
	for i, d := range s.deps {
		starts[i] = d.Now()
	}
	adverts, err := s.be.Discover(r.Context(), dev)
	var span time.Duration
	for i, d := range s.deps {
		span += d.Now() - starts[i]
	}
	if err != nil {
		s.failSDK(w, err)
		return
	}
	s.discoverLat.Record(int64(span))
	w.Header().Set("X-Upnp-Virtual-Ns", strconv.FormatInt(int64(span), 10))
	out := make([]AdvertJSON, len(adverts))
	for i, ad := range adverts {
		out[i] = AdvertJSON{
			Thing:     ad.Thing.String(),
			Device:    ad.Device.String(),
			Name:      ad.Name,
			Units:     ad.Units,
			Channel:   ad.Channel,
			Solicited: ad.Solicited,
			AtNs:      int64(ad.At),
		}
	}
	s.writeJSON(w, http.StatusOK, struct {
		Count   int          `json:"count"`
		Adverts []AdvertJSON `json:"adverts"`
	}{Count: len(out), Adverts: out})
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	a, ok := s.pathAddr(w, r)
	if !ok {
		return
	}
	dev, ok := s.queryDevice(w, r, "peripheral", true)
	if !ok {
		return
	}
	flusher, canFlush := w.(http.Flusher)
	if !canFlush {
		s.fail(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}

	// Private buffered queue per client: the stream delivery goroutine
	// must never block, so a full queue sheds the reading instead.
	queue := make(chan micropnp.Reading, s.streamBuf)
	sub, err := s.be.Subscribe(r.Context(), a, dev, func(rd micropnp.Reading) {
		// Readings alias stream-delivery buffers; copy values before they
		// cross into the writer goroutine.
		rd.Values = append([]int32(nil), rd.Values...)
		select {
		case queue <- rd:
		default:
			s.streamDrops.Add(1)
		}
	})
	if err != nil {
		s.failSDK(w, err)
		return
	}
	defer sub.Close()

	s.streamClients.Add(1)
	defer s.streamClients.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	// Poll Closed() at a coarse interval so a Thing-side stream teardown
	// ends the response even when no further reading arrives.
	closedTick := time.NewTicker(250 * time.Millisecond)
	defer closedTick.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-closedTick.C:
			if sub.Closed() {
				fmt.Fprintf(w, "event: closed\ndata: {}\n\n")
				flusher.Flush()
				return
			}
		case rd := <-queue:
			data, err := json.Marshal(ReadingJSON{
				Thing:  rd.Thing.String(),
				Device: rd.Device.String(),
				Values: rd.Values,
				Units:  rd.Units,
				AtNs:   int64(rd.At),
			})
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: reading\ndata: %s\n\n", data)
			flusher.Flush()
			s.streamSent.Add(1)
		}
	}
}

// setSpan stamps a data-path response with the SDK call's virtual-time span
// and, when fronting a fleet, the index of the member that served it.
func (s *Server) setSpan(w http.ResponseWriter, thing netip.Addr, span time.Duration) {
	w.Header().Set("X-Upnp-Virtual-Ns", strconv.FormatInt(int64(span), 10))
	if s.fleet != nil {
		if d := s.fleet.DeploymentFor(thing); d != nil {
			for i, member := range s.deps {
				if member == d {
					w.Header().Set("X-Upnp-Deployment", strconv.Itoa(i))
					break
				}
			}
		}
	}
}

// handleFailManager crashes one anycast manager instance — the fault
// injection the failover smoke drives over HTTP: POST
// /admin/fail-manager?deployment=I&manager=J (both default 0). The fleet's
// in-flight installs must then finish via the surviving instances, which the
// caller can observe through the data-path endpoints staying green.
func (s *Server) handleFailManager(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	depIdx, mgrIdx := 0, 0
	if v := q.Get("deployment"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 || n >= len(s.deps) {
			s.fail(w, http.StatusBadRequest, "bad deployment %q (have %d)", v, len(s.deps))
			return
		}
		depIdx = n
	}
	if v := q.Get("manager"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			s.fail(w, http.StatusBadRequest, "bad manager %q", v)
			return
		}
		mgrIdx = n
	}
	d := s.deps[depIdx]
	if err := d.FailManager(mgrIdx); err != nil {
		s.fail(w, http.StatusConflict, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Deployment int `json:"deployment"`
		Manager    int `json:"manager"`
		Managers   int `json:"managers"`
	}{Deployment: depIdx, Manager: mgrIdx, Managers: d.ManagerCount()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mode := "virtual"
	if s.deps[0].Realtime() {
		mode = "realtime"
	}
	out := struct {
		OK          bool    `json:"ok"`
		Mode        string  `json:"mode"`
		NowNs       int64   `json:"now_ns"`
		Deployments int     `json:"deployments,omitempty"`
		DepNowNs    []int64 `json:"deployment_now_ns,omitempty"`
		Catalog     int     `json:"catalog_size"`
	}{OK: true, Mode: mode, NowNs: int64(s.deps[0].Now()), Catalog: s.cat.Size()}
	if s.fleet != nil {
		out.Deployments = len(s.deps)
		out.DepNowNs = make([]int64, len(s.deps))
		for i, d := range s.deps {
			out.DepNowNs[i] = int64(d.Now())
		}
	}
	s.writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.cat.Stats()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	line := func(name string, v any) { fmt.Fprintf(&b, "%s %v\n", name, v) }
	line("upnp_gateway_requests_total", s.requests.Load())
	line("upnp_gateway_errors_total", s.errs.Load())
	line("upnp_gateway_in_flight", s.inFlight.Load())
	line("upnp_gateway_catalog_size", st.Size)
	line("upnp_gateway_catalog_things", st.Things)
	line("upnp_gateway_catalog_observed_total", st.Observed)
	line("upnp_gateway_catalog_expired_total", st.Expired)
	line("upnp_gateway_catalog_sweeps_total", st.Sweeps)
	line("upnp_gateway_catalog_hits_total", st.Hits)
	line("upnp_gateway_catalog_misses_total", st.Misses)
	line("upnp_gateway_stream_clients", s.streamClients.Load())
	line("upnp_gateway_stream_sent_total", s.streamSent.Load())
	line("upnp_gateway_stream_dropped_total", s.streamDrops.Load())
	for _, h := range []struct {
		name string
		hist *loadgen.Histogram
	}{
		{"read", &s.readLat},
		{"write", &s.writeLat},
		{"discover", &s.discoverLat},
	} {
		line("upnp_gateway_"+h.name+"_count", h.hist.Count())
		if h.hist.Count() == 0 {
			continue
		}
		fmt.Fprintf(&b, "upnp_gateway_%s_virtual_ns{q=\"0.5\"} %d\n", h.name, h.hist.Quantile(0.5))
		fmt.Fprintf(&b, "upnp_gateway_%s_virtual_ns{q=\"0.9\"} %d\n", h.name, h.hist.Quantile(0.9))
		fmt.Fprintf(&b, "upnp_gateway_%s_virtual_ns{q=\"0.99\"} %d\n", h.name, h.hist.Quantile(0.99))
		fmt.Fprintf(&b, "upnp_gateway_%s_virtual_ns{q=\"1\"} %d\n", h.name, h.hist.Max())
	}
	_, _ = w.Write([]byte(b.String()))
}
