package gateway

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"micropnp"
	"micropnp/internal/catalog"
)

// fleetRig is a federation of virtual deployments behind one gateway: each
// member gets its own site prefix, two anycast managers, nThings TMP36
// Things, and a per-member catalog feed so leases expire on the owning
// member's clock.
type fleetRig struct {
	fleet  *micropnp.Fleet
	deps   []*micropnp.Deployment
	cat    *catalog.Catalog
	srv    *Server
	ts     *httptest.Server
	things [][]*micropnp.Thing // [member][thing]
}

func newFleetRig(t *testing.T, members, nThings int, ttl time.Duration) *fleetRig {
	t.Helper()
	r := &fleetRig{}
	for i := 0; i < members; i++ {
		d, err := micropnp.NewDeployment(micropnp.WithSite(i), micropnp.WithManagers(2))
		if err != nil {
			t.Fatalf("NewDeployment(site %d): %v", i, err)
		}
		t.Cleanup(d.Close)
		var ths []*micropnp.Thing
		for j := 0; j < nThings; j++ {
			th, err := d.AddThing(fmt.Sprintf("m%d-thing-%d", i, j))
			if err != nil {
				t.Fatalf("AddThing: %v", err)
			}
			if err := th.PlugTMP36(0); err != nil {
				t.Fatalf("PlugTMP36: %v", err)
			}
			ths = append(ths, th)
		}
		r.deps = append(r.deps, d)
		r.things = append(r.things, ths)
	}
	fleet, err := micropnp.NewFleet(r.deps...)
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	r.fleet = fleet

	// One catalog over the whole fleet: feed 0 is member 0's clock (the
	// catalog's own Now), AddFeed registers the rest, and the fleet-wide
	// advert hook attributes each sighting to its owner by address prefix.
	cat, err := catalog.New(catalog.Config{TTL: ttl, Now: r.deps[0].Now})
	if err != nil {
		t.Fatalf("catalog.New: %v", err)
	}
	observers := map[*micropnp.Deployment]func(micropnp.Advert){r.deps[0]: cat.Observe}
	for _, d := range r.deps[1:] {
		feed, err := cat.AddFeed(d.Now)
		if err != nil {
			t.Fatalf("AddFeed: %v", err)
		}
		observers[d] = feed.Observe
	}
	fleet.AddAdvertHook(func(a micropnp.Advert) {
		if d := fleet.DeploymentFor(a.Thing); d != nil {
			observers[d](a)
		}
	})
	r.cat = cat

	for _, d := range r.deps {
		d.Run()
	}
	srv, err := New(Config{Fleet: fleet, Catalog: cat})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	r.srv = srv
	r.ts = httptest.NewServer(srv)
	t.Cleanup(r.ts.Close)
	return r
}

func (r *fleetRig) get(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(r.ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s body: %v", path, err)
	}
	return resp, body
}

func (r *fleetRig) post(t *testing.T, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(r.ts.URL+path, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("POST %s body: %v", path, err)
	}
	return resp, body
}

func TestFleetGatewayConfigExclusive(t *testing.T) {
	d, err := micropnp.NewDeployment()
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := micropnp.NewFleet(d)
	if err != nil {
		t.Fatal(err)
	}
	cat, err := catalog.New(catalog.Config{TTL: time.Minute, Now: d.Now})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Fleet: fleet, Deployment: d, Client: cl, Catalog: cat}); err == nil {
		t.Fatal("New accepted Fleet alongside Deployment/Client")
	}
	if _, err := New(Config{Fleet: fleet, Catalog: cat}); err != nil {
		t.Fatalf("New rejected a fleet-only config: %v", err)
	}
}

// TestFleetGatewayRoutesAcrossMembers reads one Thing from every member
// through the same gateway and checks the response is attributed (via the
// X-Upnp-Deployment header) to the owning member, with the virtual-time
// span measured on that member's clock.
func TestFleetGatewayRoutesAcrossMembers(t *testing.T) {
	r := newFleetRig(t, 3, 2, time.Hour)

	// Populate the catalog across the whole federation first.
	resp, body := r.post(t, "/discover?device=all")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /discover: status %d, body %s", resp.StatusCode, body)
	}
	var disc struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &disc); err != nil {
		t.Fatal(err)
	}
	if disc.Count != 6 {
		t.Fatalf("fleet-wide discovery found %d peripherals, want 6", disc.Count)
	}
	if got := r.cat.Size(); got != 6 {
		t.Fatalf("catalog holds %d entries after fleet discovery, want 6", got)
	}

	for i, ths := range r.things {
		before := r.deps[i].Now()
		resp, body := r.get(t, "/things/"+ths[0].Addr().String()+"/read?peripheral=tmp36")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read member %d: status %d, body %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Upnp-Deployment"); got != strconv.Itoa(i) {
			t.Fatalf("read member %d attributed to deployment %q", i, got)
		}
		span, err := strconv.ParseInt(resp.Header.Get("X-Upnp-Virtual-Ns"), 10, 64)
		if err != nil || span <= 0 {
			t.Fatalf("read member %d: bad virtual span %q (%v)", i, resp.Header.Get("X-Upnp-Virtual-Ns"), err)
		}
		if advanced := int64(r.deps[i].Now() - before); span > advanced {
			t.Fatalf("read member %d: span %d ns exceeds the member clock advance %d ns", i, span, advanced)
		}
	}

	// An address no member's prefix owns is a routing error, not a panic.
	resp, _ = r.get(t, "/things/2001:db8:ffff::99/read?peripheral=tmp36")
	if resp.StatusCode == http.StatusOK {
		t.Fatal("read of an unroutable address succeeded")
	}
}

// TestFleetGatewayPerFeedExpiry pins the per-feed lease clocks: advancing
// only member 0's virtual clock past the TTL must expire member 0's
// catalog entries and no one else's.
func TestFleetGatewayPerFeedExpiry(t *testing.T) {
	const ttl = 10 * time.Second
	r := newFleetRig(t, 3, 1, ttl)

	if resp, body := r.post(t, "/discover?device=all"); resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /discover: status %d, body %s", resp.StatusCode, body)
	}
	if got := r.cat.Size(); got != 3 {
		t.Fatalf("catalog holds %d entries, want 3", got)
	}

	// Drive member 0's clock past its entry's lease with unicast reads
	// (reads refresh no leases); members 1 and 2 stay parked, so their
	// leases — expiring on their own feeds' clocks — must survive the sweep.
	e0, ok := r.cat.Get(r.things[0][0].Addr(), micropnp.TMP36)
	if !ok {
		t.Fatal("member 0's peripheral missing from the catalog")
	}
	deadline := e0.Expires + time.Second
	addr := r.things[0][0].Addr().String()
	for r.deps[0].Now() < deadline {
		if resp, body := r.get(t, "/things/"+addr+"/read?peripheral=tmp36"); resp.StatusCode != http.StatusOK {
			t.Fatalf("pump read: status %d, body %s", resp.StatusCode, body)
		}
	}
	if expired := r.cat.Sweep(); expired != 1 {
		t.Fatalf("sweep expired %d entries, want exactly member 0's 1", expired)
	}
	for i, ths := range r.things {
		_, ok := r.cat.Get(ths[0].Addr(), micropnp.TMP36)
		if want := i != 0; ok != want {
			t.Fatalf("member %d catalogued=%v after sweep, want %v", i, ok, want)
		}
	}
}

// TestFleetGatewayFailManager drives the HTTP fault injection: crash one
// manager of one member and verify the data path stays green via the
// surviving anycast instance.
func TestFleetGatewayFailManager(t *testing.T) {
	r := newFleetRig(t, 2, 1, time.Hour)

	resp, body := r.post(t, "/admin/fail-manager?deployment=1&manager=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fail-manager: status %d, body %s", resp.StatusCode, body)
	}
	var out struct {
		Deployment int `json:"deployment"`
		Manager    int `json:"manager"`
		Managers   int `json:"managers"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Deployment != 1 || out.Manager != 0 || out.Managers != 2 {
		t.Fatalf("fail-manager reported %+v", out)
	}

	// The member still serves reads through its surviving manager.
	resp, body = r.get(t, "/things/"+r.things[1][0].Addr().String()+"/read?peripheral=tmp36")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-crash read: status %d, body %s", resp.StatusCode, body)
	}

	for _, bad := range []string{
		"/admin/fail-manager?deployment=7",
		"/admin/fail-manager?deployment=-1",
		"/admin/fail-manager?manager=x",
	} {
		if resp, _ := r.post(t, bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %s: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestFleetGatewayHealthz pins the federation shape in the liveness report.
func TestFleetGatewayHealthz(t *testing.T) {
	r := newFleetRig(t, 3, 1, time.Hour)
	resp, body := r.get(t, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d", resp.StatusCode)
	}
	var h struct {
		OK          bool    `json:"ok"`
		Deployments int     `json:"deployments"`
		DepNowNs    []int64 `json:"deployment_now_ns"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if !h.OK || h.Deployments != 3 || len(h.DepNowNs) != 3 {
		t.Fatalf("healthz reported %+v", h)
	}
}
