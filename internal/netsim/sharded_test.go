package netsim

import (
	"fmt"
	"runtime"
	"testing"
	"time"
)

// stormRun is one zoned multicast-storm execution: a per-receiver arrival
// transcript (every delivery with its lane-local timestamp, source, hop count
// and payload bytes), the final network stats and the final virtual time.
// Two runs are bit-identical iff all three match.
type stormRun struct {
	transcript []string
	stats      Stats
	now        time.Duration
}

// runShardedStorm executes a fixed cross-zone multicast storm with membership
// churn on a 4-zone network with loss and jitter enabled (so the per-zone RNG
// streams are on the critical path), under the given worker bound.
func runShardedStorm(tb testing.TB, workers int) stormRun {
	tb.Helper()
	const (
		zones   = 4
		perZone = 6
	)
	n := New(Config{Zones: zones, Workers: workers, LossRate: 0.05, ProcJitter: 0.1, Seed: 42})
	defer n.Close()
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	root, err := n.AddNode(UnicastAddr(prefix, 0, 0x100), nil)
	if err != nil {
		tb.Fatal(err)
	}
	group := MulticastAddr(prefix, 0xad1cbe01)

	var leaves []*Node
	for z := 0; z < zones; z++ {
		zr, err := n.AddNode(UnicastAddr(prefix, uint16(z), 0x200), root)
		if err != nil {
			tb.Fatal(err)
		}
		for i := 0; i < perZone; i++ {
			nd, err := n.AddNode(UnicastAddr(prefix, uint16(z), uint32(0x300+i)), zr)
			if err != nil {
				tb.Fatal(err)
			}
			leaves = append(leaves, nd)
		}
	}

	// One log per receiver: a node's handler only ever runs on its own lane,
	// so per-receiver appends need no locking even in parallel rounds.
	logs := make([][]string, len(leaves))
	for i, nd := range leaves {
		i, nd := i, nd
		nd.JoinGroup(group)
		nd.Bind(Port6030, func(m Message) {
			logs[i] = append(logs[i], fmt.Sprintf("t=%v src=%v hops=%d payload=%s",
				nd.Now(), m.Src, m.Hops, m.Payload))
		})
	}

	// Storm: every leaf multicasts three times on a staggered schedule, and
	// every even leaf leaves and re-joins the group mid-run — from inside
	// timer callbacks, so the mutations land mid-round and exercise the
	// barrier-deferred membership path.
	for i, nd := range leaves {
		i, nd := i, nd
		for k := 0; k < 3; k++ {
			k := k
			nd.Schedule(time.Duration(i*7+k*13)*time.Millisecond, func() {
				nd.Send(group, Port6030, []byte(fmt.Sprintf("m-%d-%d", i, k)))
			})
		}
		if i%2 == 0 {
			nd.Schedule(time.Duration(20+i)*time.Millisecond, func() { nd.LeaveGroup(group) })
			nd.Schedule(time.Duration(60+i)*time.Millisecond, func() { nd.JoinGroup(group) })
		}
	}

	if n.RunUntilIdle(1_000_000) == 0 {
		tb.Fatal("storm executed no events")
	}
	if ss, ok := n.ShardStats(); !ok || ss.CausalityViolations != 0 {
		tb.Fatalf("storm recorded causality violations: %+v (sharded=%v)", ss, ok)
	}

	var transcript []string
	for i, log := range logs {
		for _, line := range log {
			transcript = append(transcript, fmt.Sprintf("rx=%v %s", leaves[i].Addr(), line))
		}
	}
	return stormRun{transcript: transcript, stats: n.Stats(), now: n.Now()}
}

func diffRuns(t *testing.T, label string, want, got stormRun) {
	t.Helper()
	if got.stats != want.stats {
		t.Errorf("%s: stats diverged:\n  want %+v\n  got  %+v", label, want.stats, got.stats)
	}
	if got.now != want.now {
		t.Errorf("%s: final time diverged: want %v, got %v", label, want.now, got.now)
	}
	if len(got.transcript) != len(want.transcript) {
		t.Fatalf("%s: transcript length diverged: want %d deliveries, got %d",
			label, len(want.transcript), len(got.transcript))
	}
	for i := range want.transcript {
		if got.transcript[i] != want.transcript[i] {
			t.Fatalf("%s: transcript diverged at delivery %d:\n  want %s\n  got  %s",
				label, i, want.transcript[i], got.transcript[i])
		}
	}
}

// TestShardedParallelMatchesSequential is the tentpole determinism assert:
// the parallel sharded schedule must be bit-identical — same deliveries, same
// per-delivery timestamps and payloads, same stats — to the sequential
// single-loop schedule of the same (topology, seed), for any worker count.
// GOMAXPROCS is forced above 1 so the parallel rounds really dispatch worker
// goroutines even on a single-core machine.
func TestShardedParallelMatchesSequential(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	seq := runShardedStorm(t, 1)
	if len(seq.transcript) == 0 {
		t.Fatal("storm delivered nothing; the scenario is not exercising the network")
	}
	// A repeat of the sequential run must reproduce itself exactly.
	diffRuns(t, "sequential repeat", seq, runShardedStorm(t, 1))
	for _, w := range []int{0, 2, 3, 8} {
		w := w
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			diffRuns(t, fmt.Sprintf("workers=%d vs sequential", w), seq, runShardedStorm(t, w))
		})
	}
}

// TestShardedStormRace is the zone-boundary concurrency leg: the same
// cross-zone storm with membership churn, repeated under maximum parallelism.
// Its value is under `go test -race`, where any unsynchronized cross-lane
// access in the clock or the network trips the detector.
func TestShardedStormRace(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for rep := 0; rep < 3; rep++ {
		runShardedStorm(t, 0)
	}
}

// TestShardedFallback: one (or zero) zones must select the classic
// single-loop VirtualClock, not the sharded machinery.
func TestShardedFallback(t *testing.T) {
	for _, zones := range []int{0, 1} {
		n := New(Config{Zones: zones})
		if _, _, ok := n.Sharded(); ok {
			t.Fatalf("Zones=%d: network reports sharded; want VirtualClock fallback", zones)
		}
		nodes := buildLine(t, n, 2)
		var got int
		nodes[1].Bind(Port6030, func(m Message) { got++ })
		nodes[0].Send(nodes[1].Addr(), Port6030, []byte("x"))
		n.RunUntilIdle(0)
		if got != 1 {
			t.Fatalf("Zones=%d: delivered %d messages, want 1", zones, got)
		}
		n.Close()
	}
}

// TestShardedLaneLocalNow: inside a round, a handler's node-local clock reads
// the lane's event timestamp while the global barrier clock still holds the
// previous window's value.
func TestShardedLaneLocalNow(t *testing.T) {
	n := New(Config{Zones: 2, Workers: 1})
	defer n.Close()
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	root, _ := n.AddNode(UnicastAddr(prefix, 0, 0x100), nil)
	nd, err := n.AddNode(UnicastAddr(prefix, 1, 0x200), root)
	if err != nil {
		t.Fatal(err)
	}
	if nd.Zone() != 1 {
		t.Fatalf("Zone() = %d, want 1", nd.Zone())
	}
	var lane, global time.Duration
	nd.Schedule(5*time.Millisecond, func() {
		lane = nd.Now()
		global = n.Now()
	})
	n.RunUntilIdle(0)
	if lane != 5*time.Millisecond {
		t.Fatalf("lane-local Now inside handler = %v, want 5ms", lane)
	}
	if global > lane {
		t.Fatalf("global Now %v ran ahead of the executing lane %v", global, lane)
	}
	if n.Now() != 5*time.Millisecond {
		t.Fatalf("post-barrier global Now = %v, want 5ms", n.Now())
	}
}

// TestShardedMembershipMidRound: a JoinGroup issued from inside a handler is
// deferred to the barrier and takes effect for later windows.
func TestShardedMembershipMidRound(t *testing.T) {
	n := New(Config{Zones: 2, Workers: 1})
	defer n.Close()
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	root, _ := n.AddNode(UnicastAddr(prefix, 0, 0x100), nil)
	a, _ := n.AddNode(UnicastAddr(prefix, 0, 0x200), root)
	b, err := n.AddNode(UnicastAddr(prefix, 1, 0x300), root)
	if err != nil {
		t.Fatal(err)
	}
	group := MulticastAddr(prefix, 0xad1cbe01)
	var got int
	b.Bind(Port6030, func(m Message) { got++ })
	b.Schedule(time.Millisecond, func() { b.JoinGroup(group) })
	a.Schedule(50*time.Millisecond, func() { a.Send(group, Port6030, []byte("late")) })
	n.RunUntilIdle(0)
	if got != 1 {
		t.Fatalf("deliveries after mid-round join = %d, want 1", got)
	}
	b.Schedule(time.Millisecond, func() { b.LeaveGroup(group) })
	a.Schedule(50*time.Millisecond, func() { a.Send(group, Port6030, []byte("gone")) })
	n.RunUntilIdle(0)
	if got != 1 {
		t.Fatalf("deliveries after mid-round leave = %d, want still 1", got)
	}
}

// TestShardedRunUntilSemantics: RunUntil includes events at the deadline and
// parks the clock exactly there; RunUntilQuiesced reports drain state and
// leaves the clock on the last event when it drains early.
func TestShardedRunUntilSemantics(t *testing.T) {
	n := New(Config{Zones: 2, Workers: 1})
	defer n.Close()
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	root, _ := n.AddNode(UnicastAddr(prefix, 0, 0x100), nil)
	nd, _ := n.AddNode(UnicastAddr(prefix, 1, 0x200), root)
	var fired []time.Duration
	for _, at := range []time.Duration{10 * time.Millisecond, 30 * time.Millisecond} {
		at := at
		nd.Schedule(at, func() { fired = append(fired, at) })
	}
	if steps := n.RunUntil(10 * time.Millisecond); steps != 1 {
		t.Fatalf("RunUntil(10ms) executed %d events, want 1 (deadline inclusive)", steps)
	}
	if n.Now() != 10*time.Millisecond {
		t.Fatalf("after RunUntil(10ms): Now = %v", n.Now())
	}
	if n.RunUntilQuiesced(20 * time.Millisecond) {
		t.Fatal("RunUntilQuiesced(20ms) reported drained with an event still queued at 30ms")
	}
	if n.Now() != 20*time.Millisecond {
		t.Fatalf("after failed quiesce: Now = %v, want 20ms", n.Now())
	}
	if !n.RunUntilQuiesced(time.Second) {
		t.Fatal("RunUntilQuiesced(1s) did not drain")
	}
	if n.Now() != 30*time.Millisecond {
		t.Fatalf("after drain: Now = %v, want 30ms (last event)", n.Now())
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
}

// TestShardedQueueCapBounded: repeated storms must not grow the lane heaps
// without bound (pooled events and append-in-place outboxes).
func TestShardedQueueCapBounded(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const (
		zones   = 4
		perZone = 4
	)
	n := New(Config{Zones: zones, Workers: 0})
	defer n.Close()
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	root, _ := n.AddNode(UnicastAddr(prefix, 0, 0x100), nil)
	group := MulticastAddr(prefix, 0xad1cbe01)
	var leaves []*Node
	for z := 0; z < zones; z++ {
		zr, _ := n.AddNode(UnicastAddr(prefix, uint16(z), 0x200), root)
		for i := 0; i < perZone; i++ {
			nd, _ := n.AddNode(UnicastAddr(prefix, uint16(z), uint32(0x300+i)), zr)
			nd.JoinGroup(group)
			nd.Bind(Port6030, func(Message) {})
			leaves = append(leaves, nd)
		}
	}
	var capAfterWarm int
	for round := 0; round < 8; round++ {
		for _, nd := range leaves {
			nd := nd
			nd.Schedule(time.Millisecond, func() { nd.Send(group, Port6030, []byte("storm")) })
		}
		n.RunUntilIdle(0)
		if round == 3 {
			capAfterWarm = n.queueCap()
		}
	}
	if got := n.queueCap(); capAfterWarm > 0 && got > capAfterWarm*2 {
		t.Fatalf("lane heap capacity kept growing: %d after warmup, %d after 8 rounds", capAfterWarm, got)
	}
}
