package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"micropnp/internal/hw"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func buildLine(t *testing.T, n *Network, count int) []*Node {
	t.Helper()
	nodes := make([]*Node, count)
	var parent *Node
	for i := 0; i < count; i++ {
		nd, err := n.AddNode(addr("2001:db8::"+string(rune('1'+i))), parent)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		parent = nd
	}
	return nodes
}

func TestUnicastOneHop(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 2)
	var got []Message
	nodes[1].Bind(Port6030, func(m Message) { got = append(got, m) })

	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("hello"))
	n.RunUntilIdle(0)

	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	if got[0].Hops != 1 || string(got[0].Payload) != "hello" {
		t.Fatalf("message = %+v", got[0])
	}
	want := PacketDelay(5, false)
	if n.Now() != want {
		t.Fatalf("delivery time = %v, want %v", n.Now(), want)
	}
}

func TestUnicastMultiHop(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 4) // chain of 4: 3 hops end to end
	var hops int
	nodes[3].Bind(Port6030, func(m Message) { hops = m.Hops })
	nodes[0].Send(nodes[3].Addr(), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if hops != 3 {
		t.Fatalf("hops = %d, want 3", hops)
	}
	if st := n.Stats(); st.Transmissions != 3 {
		t.Fatalf("transmissions = %d, want 3", st.Transmissions)
	}
}

func TestUnicastToSibling(t *testing.T) {
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	a, _ := n.AddNode(addr("2001:db8::2"), root)
	b, _ := n.AddNode(addr("2001:db8::3"), root)
	var hops int
	b.Bind(Port6030, func(m Message) { hops = m.Hops })
	a.Send(b.Addr(), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if hops != 2 {
		t.Fatalf("sibling routing via parent: hops = %d, want 2", hops)
	}
}

func TestUnknownDestinationLost(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 1)
	nodes[0].Send(addr("2001:db8::ff"), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if st := n.Stats(); st.Lost != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMulticastSMRF(t *testing.T) {
	// Tree:      root
	//           /    \
	//          a      b
	//         / \      \
	//        c   d      e
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	a, _ := n.AddNode(addr("2001:db8::2"), root)
	b, _ := n.AddNode(addr("2001:db8::3"), root)
	c, _ := n.AddNode(addr("2001:db8::4"), a)
	d, _ := n.AddNode(addr("2001:db8::5"), a)
	e, _ := n.AddNode(addr("2001:db8::6"), b)

	group := MulticastAddr(PrefixFromAddr(root.Addr()), 0xad1cbe01)
	got := map[netip.Addr]int{}
	for _, nd := range []*Node{c, d, e} {
		nd.JoinGroup(group)
		me := nd.Addr()
		nd.Bind(Port6030, func(m Message) { got[me] = m.Hops })
	}
	// b is NOT in the group and must not receive.
	b.Bind(Port6030, func(m Message) { t.Error("non-member b received multicast") })

	c.Send(group, Port6030, []byte("adv"))
	n.RunUntilIdle(0)

	if len(got) != 2 {
		t.Fatalf("deliveries = %v, want d and e", got)
	}
	if got[d.Addr()] != 2 { // c -> a -> d
		t.Errorf("d hops = %d, want 2", got[d.Addr()])
	}
	if got[e.Addr()] != 4 { // c -> a -> root -> b -> e
		t.Errorf("e hops = %d, want 4", got[e.Addr()])
	}
	// SMRF duplicate suppression: union of path edges is
	// {c-a, a-d, a-root, root-b, b-e} = 5 transmissions, not 2+4=6.
	if st := n.Stats(); st.Transmissions != 5 {
		t.Errorf("transmissions = %d, want 5 (shared edges counted once)", st.Transmissions)
	}
}

func TestAnycastNearest(t *testing.T) {
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	near, _ := n.AddNode(addr("2001:db8::2"), root)
	farMid, _ := n.AddNode(addr("2001:db8::3"), root)
	far, _ := n.AddNode(addr("2001:db8::4"), farMid)
	src, _ := n.AddNode(addr("2001:db8::5"), near)

	any := addr("2001:db8::aaaa")
	n.JoinAnycast(any, far)
	n.JoinAnycast(any, near)

	var gotNear, gotFar bool
	near.Bind(Port6030, func(Message) { gotNear = true })
	far.Bind(Port6030, func(Message) { gotFar = true })

	src.Send(any, Port6030, []byte("req"))
	n.RunUntilIdle(0)
	if !gotNear || gotFar {
		t.Fatalf("anycast must reach the nearest member: near=%v far=%v", gotNear, gotFar)
	}
}

func TestLossyLink(t *testing.T) {
	n := New(Config{LossRate: 1.0})
	nodes := buildLine(t, n, 2)
	delivered := false
	nodes[1].Bind(Port6030, func(Message) { delivered = true })
	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if delivered {
		t.Fatal("100% loss must drop everything")
	}
	if st := n.Stats(); st.Lost != 1 {
		t.Fatalf("lost = %d", st.Lost)
	}
}

func TestPacketDelayModel(t *testing.T) {
	small := PacketDelay(10, false)
	big := PacketDelay(300, false) // fragments into 4 frames
	if small >= big {
		t.Fatal("bigger datagrams must take longer")
	}
	if m := PacketDelay(10, true); m <= small {
		t.Fatal("multicast must cost more than unicast")
	}
	// One-hop small packets land in the tens of milliseconds, the regime
	// the Table 4 measurements live in.
	if small < 20*time.Millisecond || small > 40*time.Millisecond {
		t.Errorf("small packet delay = %v", small)
	}
}

func TestMulticastAddrSchema(t *testing.T) {
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	g := MulticastAddr(prefix, 0xed3f0ac1)
	if g.String() != "ff3e:30:2001:db8::ed3f:ac1" {
		t.Fatalf("group = %v", g)
	}
	if !g.IsMulticast() {
		t.Fatal("schema address must be multicast")
	}
	p2, id, err := ParseMulticast(g)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != prefix || id != 0xed3f0ac1 {
		t.Fatalf("parsed %v %v", p2, id)
	}
	if !IsUPnPMulticast(g) || IsUPnPMulticast(addr("ff02::1")) {
		t.Fatal("IsUPnPMulticast misclassifies")
	}
}

func TestMulticastAddrRoundTripProperty(t *testing.T) {
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	f := func(v uint32) bool {
		id := hw.DeviceID(v)
		p, got, err := ParseMulticast(MulticastAddr(prefix, id))
		return err == nil && got == id && p == prefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestReservedGroups(t *testing.T) {
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	clients := AllClientsAddr(prefix)
	if clients.String() != "ff3e:30:2001:db8::ffff:ffff" {
		t.Fatalf("all-clients = %v", clients)
	}
	all := AllPeripheralsAddr(prefix)
	_, id, err := ParseMulticast(all)
	if err != nil || id != hw.DeviceIDAllPeripherals {
		t.Fatalf("all-peripherals = %v (%v)", all, err)
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	n := New(Config{})
	if _, err := n.AddNode(addr("2001:db8::1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode(addr("2001:db8::1"), nil); err == nil {
		t.Fatal("duplicate address must be rejected")
	}
}

func TestHandlersMaySendMore(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 2)
	var pongs int
	nodes[0].Bind(Port6030, func(m Message) { pongs++ })
	nodes[1].Bind(Port6030, func(m Message) {
		nodes[1].Send(m.Src, Port6030, []byte("pong"))
	})
	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("ping"))
	n.RunUntilIdle(0)
	if pongs != 1 {
		t.Fatalf("pongs = %d", pongs)
	}
	// Round trip took two one-hop packet delays.
	want := PacketDelay(4, false) * 2
	if n.Now() != want {
		t.Fatalf("round trip time = %v, want %v", n.Now(), want)
	}
}

func TestScheduleCancelable(t *testing.T) {
	n := New(Config{})
	fired := false
	cancel := n.ScheduleCancelable(time.Second, func() { fired = true })
	n.Schedule(100*time.Millisecond, func() {})
	cancel()
	n.RunUntilIdle(0)
	if fired {
		t.Fatal("cancelled event must not run")
	}
	if n.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v; a cancelled event must not advance virtual time", n.Now())
	}
}
