package netsim

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"micropnp/internal/hw"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func buildLine(t *testing.T, n *Network, count int) []*Node {
	t.Helper()
	nodes := make([]*Node, count)
	var parent *Node
	for i := 0; i < count; i++ {
		nd, err := n.AddNode(addr("2001:db8::"+string(rune('1'+i))), parent)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
		parent = nd
	}
	return nodes
}

func TestUnicastOneHop(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 2)
	type arrival struct {
		payload string // copied in-handler: Payload is only borrowed
		hops    int
	}
	var got []arrival
	nodes[1].Bind(Port6030, func(m Message) { got = append(got, arrival{string(m.Payload), m.Hops}) })

	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("hello"))
	n.RunUntilIdle(0)

	if len(got) != 1 {
		t.Fatalf("delivered %d messages", len(got))
	}
	if got[0].hops != 1 || got[0].payload != "hello" {
		t.Fatalf("message = %+v", got[0])
	}
	want := PacketDelay(5, false)
	if n.Now() != want {
		t.Fatalf("delivery time = %v, want %v", n.Now(), want)
	}
}

func TestUnicastMultiHop(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 4) // chain of 4: 3 hops end to end
	var hops int
	nodes[3].Bind(Port6030, func(m Message) { hops = m.Hops })
	nodes[0].Send(nodes[3].Addr(), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if hops != 3 {
		t.Fatalf("hops = %d, want 3", hops)
	}
	if st := n.Stats(); st.Transmissions != 3 {
		t.Fatalf("transmissions = %d, want 3", st.Transmissions)
	}
}

func TestUnicastToSibling(t *testing.T) {
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	a, _ := n.AddNode(addr("2001:db8::2"), root)
	b, _ := n.AddNode(addr("2001:db8::3"), root)
	var hops int
	b.Bind(Port6030, func(m Message) { hops = m.Hops })
	a.Send(b.Addr(), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if hops != 2 {
		t.Fatalf("sibling routing via parent: hops = %d, want 2", hops)
	}
}

func TestUnknownDestinationLost(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 1)
	nodes[0].Send(addr("2001:db8::ff"), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if st := n.Stats(); st.Lost != 1 || st.Delivered != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMulticastSMRF(t *testing.T) {
	// Tree:      root
	//           /    \
	//          a      b
	//         / \      \
	//        c   d      e
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	a, _ := n.AddNode(addr("2001:db8::2"), root)
	b, _ := n.AddNode(addr("2001:db8::3"), root)
	c, _ := n.AddNode(addr("2001:db8::4"), a)
	d, _ := n.AddNode(addr("2001:db8::5"), a)
	e, _ := n.AddNode(addr("2001:db8::6"), b)

	group := MulticastAddr(PrefixFromAddr(root.Addr()), 0xad1cbe01)
	got := map[netip.Addr]int{}
	for _, nd := range []*Node{c, d, e} {
		nd.JoinGroup(group)
		me := nd.Addr()
		nd.Bind(Port6030, func(m Message) { got[me] = m.Hops })
	}
	// b is NOT in the group and must not receive.
	b.Bind(Port6030, func(m Message) { t.Error("non-member b received multicast") })

	c.Send(group, Port6030, []byte("adv"))
	n.RunUntilIdle(0)

	if len(got) != 2 {
		t.Fatalf("deliveries = %v, want d and e", got)
	}
	if got[d.Addr()] != 2 { // c -> a -> d
		t.Errorf("d hops = %d, want 2", got[d.Addr()])
	}
	if got[e.Addr()] != 4 { // c -> a -> root -> b -> e
		t.Errorf("e hops = %d, want 4", got[e.Addr()])
	}
	// SMRF duplicate suppression: union of path edges is
	// {c-a, a-d, a-root, root-b, b-e} = 5 transmissions, not 2+4=6.
	if st := n.Stats(); st.Transmissions != 5 {
		t.Errorf("transmissions = %d, want 5 (shared edges counted once)", st.Transmissions)
	}
}

func TestAnycastNearest(t *testing.T) {
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	near, _ := n.AddNode(addr("2001:db8::2"), root)
	farMid, _ := n.AddNode(addr("2001:db8::3"), root)
	far, _ := n.AddNode(addr("2001:db8::4"), farMid)
	src, _ := n.AddNode(addr("2001:db8::5"), near)

	any := addr("2001:db8::aaaa")
	n.JoinAnycast(any, far)
	n.JoinAnycast(any, near)

	var gotNear, gotFar bool
	near.Bind(Port6030, func(Message) { gotNear = true })
	far.Bind(Port6030, func(Message) { gotFar = true })

	src.Send(any, Port6030, []byte("req"))
	n.RunUntilIdle(0)
	if !gotNear || gotFar {
		t.Fatalf("anycast must reach the nearest member: near=%v far=%v", gotNear, gotFar)
	}
}

func TestLossyLink(t *testing.T) {
	n := New(Config{LossRate: 1.0})
	nodes := buildLine(t, n, 2)
	delivered := false
	nodes[1].Bind(Port6030, func(Message) { delivered = true })
	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	if delivered {
		t.Fatal("100% loss must drop everything")
	}
	if st := n.Stats(); st.Lost != 1 {
		t.Fatalf("lost = %d", st.Lost)
	}
}

func TestPacketDelayModel(t *testing.T) {
	small := PacketDelay(10, false)
	big := PacketDelay(300, false) // fragments into 4 frames
	if small >= big {
		t.Fatal("bigger datagrams must take longer")
	}
	if m := PacketDelay(10, true); m <= small {
		t.Fatal("multicast must cost more than unicast")
	}
	// One-hop small packets land in the tens of milliseconds, the regime
	// the Table 4 measurements live in.
	if small < 20*time.Millisecond || small > 40*time.Millisecond {
		t.Errorf("small packet delay = %v", small)
	}
}

func TestMulticastAddrSchema(t *testing.T) {
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	g := MulticastAddr(prefix, 0xed3f0ac1)
	if g.String() != "ff3e:30:2001:db8::ed3f:ac1" {
		t.Fatalf("group = %v", g)
	}
	if !g.IsMulticast() {
		t.Fatal("schema address must be multicast")
	}
	p2, id, err := ParseMulticast(g)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != prefix || id != 0xed3f0ac1 {
		t.Fatalf("parsed %v %v", p2, id)
	}
	if !IsUPnPMulticast(g) || IsUPnPMulticast(addr("ff02::1")) {
		t.Fatal("IsUPnPMulticast misclassifies")
	}
}

func TestMulticastAddrRoundTripProperty(t *testing.T) {
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	f := func(v uint32) bool {
		id := hw.DeviceID(v)
		p, got, err := ParseMulticast(MulticastAddr(prefix, id))
		return err == nil && got == id && p == prefix
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestReservedGroups(t *testing.T) {
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	clients := AllClientsAddr(prefix)
	if clients.String() != "ff3e:30:2001:db8::ffff:ffff" {
		t.Fatalf("all-clients = %v", clients)
	}
	all := AllPeripheralsAddr(prefix)
	_, id, err := ParseMulticast(all)
	if err != nil || id != hw.DeviceIDAllPeripherals {
		t.Fatalf("all-peripherals = %v (%v)", all, err)
	}
}

func TestDuplicateAddressRejected(t *testing.T) {
	n := New(Config{})
	if _, err := n.AddNode(addr("2001:db8::1"), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddNode(addr("2001:db8::1"), nil); err == nil {
		t.Fatal("duplicate address must be rejected")
	}
}

func TestHandlersMaySendMore(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 2)
	var pongs int
	nodes[0].Bind(Port6030, func(m Message) { pongs++ })
	nodes[1].Bind(Port6030, func(m Message) {
		nodes[1].Send(m.Src, Port6030, []byte("pong"))
	})
	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("ping"))
	n.RunUntilIdle(0)
	if pongs != 1 {
		t.Fatalf("pongs = %d", pongs)
	}
	// Round trip took two one-hop packet delays.
	want := PacketDelay(4, false) * 2
	if n.Now() != want {
		t.Fatalf("round trip time = %v, want %v", n.Now(), want)
	}
}

func TestScheduleCancelable(t *testing.T) {
	n := New(Config{})
	fired := false
	cancel := n.ScheduleCancelable(time.Second, func() { fired = true })
	n.Schedule(100*time.Millisecond, func() {})
	cancel()
	n.RunUntilIdle(0)
	if fired {
		t.Fatal("cancelled event must not run")
	}
	if n.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v; a cancelled event must not advance virtual time", n.Now())
	}
}

// ---------------------------------------------------------------------------
// Heap event-queue semantics: cancellation at scale, deterministic ordering,
// bounded memory, and drop accounting.

func TestNoHandlerCountsAsDropped(t *testing.T) {
	n := New(Config{})
	nodes := buildLine(t, n, 2)
	// No handler bound on the destination: the stack drops the datagram.
	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("x"))
	n.RunUntilIdle(0)
	st := n.Stats()
	if st.Delivered != 0 || st.NoHandler != 1 {
		t.Fatalf("stats = %+v, want Delivered=0 NoHandler=1", st)
	}
	// Binding afterwards makes the next datagram count as delivered.
	nodes[1].Bind(Port6030, func(Message) {})
	nodes[0].Send(nodes[1].Addr(), Port6030, []byte("y"))
	n.RunUntilIdle(0)
	st = n.Stats()
	if st.Delivered != 1 || st.NoHandler != 1 {
		t.Fatalf("stats = %+v, want Delivered=1 NoHandler=1", st)
	}
}

func TestSameTimestampFIFO(t *testing.T) {
	n := New(Config{})
	var got []int
	for i := 0; i < 500; i++ {
		i := i
		n.Schedule(time.Second, func() { got = append(got, i) })
	}
	n.RunUntilIdle(0)
	if len(got) != 500 {
		t.Fatalf("fired %d events", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie at the same timestamp fired out of order: got[%d] = %d", i, v)
		}
	}
}

func TestSameTimestampFIFOWithCancellations(t *testing.T) {
	n := New(Config{})
	var got []int
	var cancels []func()
	for i := 0; i < 300; i++ {
		i := i
		cancels = append(cancels, n.ScheduleCancelable(time.Second, func() { got = append(got, i) }))
	}
	// Cancel every third event; the survivors must still fire in seq order.
	for i := 0; i < 300; i += 3 {
		cancels[i]()
	}
	n.RunUntilIdle(0)
	want := make([]int, 0, 200)
	for i := 0; i < 300; i++ {
		if i%3 != 0 {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order diverged at %d: got %d want %d", i, got[i], want[i])
		}
	}
}

func TestCancelAfterFireNoop(t *testing.T) {
	n := New(Config{})
	fired := 0
	cancel := n.ScheduleCancelable(time.Millisecond, func() { fired++ })
	n.RunUntilIdle(0)
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	cancel() // after the fact: must be a no-op
	cancel() // and idempotent
	n.Schedule(time.Millisecond, func() { fired++ })
	n.RunUntilIdle(0)
	if fired != 2 {
		t.Fatalf("later events disturbed by post-fire cancel: fired = %d", fired)
	}
}

// TestHeapMatchesReferenceOrdering drives a randomized interleaving of
// Schedule/ScheduleCancelable/cancel/Step and checks every firing against a
// brute-force reference model of the former sorted-slice implementation:
// the live event with the smallest (timestamp, seq) fires next.
func TestHeapMatchesReferenceOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := New(Config{})
	type mirrorEv struct {
		at        time.Duration
		idx       int
		cancel    func()
		fired     bool
		cancelled bool
	}
	var all []*mirrorEv
	var got []int
	idx := 0
	for round := 0; round < 3000; round++ {
		for j := rng.Intn(4); j > 0; j-- {
			delay := time.Duration(rng.Intn(50)) * time.Millisecond
			me := &mirrorEv{at: n.Now() + delay, idx: idx}
			idx++
			id := me.idx
			fire := func() { got = append(got, id); me.fired = true }
			if rng.Intn(2) == 0 {
				me.cancel = n.ScheduleCancelable(delay, fire)
			} else {
				n.Schedule(delay, fire)
			}
			all = append(all, me)
		}
		if rng.Intn(3) == 0 {
			// Cancel a random still-pending cancellable event.
			start := 0
			if len(all) > 0 {
				start = rng.Intn(len(all))
			}
			for k := 0; k < len(all); k++ {
				me := all[(start+k)%len(all)]
				if me.cancel != nil && !me.fired && !me.cancelled {
					me.cancel()
					me.cancelled = true
					break
				}
			}
		}
		if rng.Intn(6) == 0 && len(all) > 0 {
			// Cancel-after-fire must be a no-op even mid-run.
			me := all[rng.Intn(len(all))]
			if me.cancel != nil && me.fired {
				me.cancel()
			}
		}
		var want *mirrorEv
		for _, me := range all {
			if me.fired || me.cancelled {
				continue
			}
			if want == nil || me.at < want.at || (me.at == want.at && me.idx < want.idx) {
				want = me
			}
		}
		stepped := n.Step()
		if want == nil {
			if stepped {
				t.Fatalf("round %d: Step ran with no live event expected", round)
			}
			continue
		}
		if !stepped {
			t.Fatalf("round %d: Step found nothing, expected event %d", round, want.idx)
		}
		if last := got[len(got)-1]; last != want.idx {
			t.Fatalf("round %d: fired %d, reference model expects %d", round, last, want.idx)
		}
	}
}

// TestQueueCapacityBounded guards against the former queue = queue[1:] pop,
// which retained the backing array indefinitely: across 100k
// schedule/cancel/step cycles the heap's backing capacity must stay small.
func TestQueueCapacityBounded(t *testing.T) {
	n := New(Config{})
	for i := 0; i < 100_000; i++ {
		cancel := n.ScheduleCancelable(time.Hour, func() {})
		n.Schedule(time.Microsecond, func() {})
		cancel()
		if !n.Step() {
			t.Fatal("expected a live event")
		}
	}
	if c := n.queueCap(); c > 4096 {
		t.Fatalf("queue capacity = %d after 100k schedule/cancel cycles; backing array must stay bounded", c)
	}
}

// TestSchedulePerOpScaling asserts the asymptotic win of the heap: per-event
// cost at 100x the queue depth must stay far below the linear blowup the
// sorted-slice implementation exhibited (which resorted the whole queue per
// insert). Generous margin keeps it robust on noisy CI runners.
func TestSchedulePerOpScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive scaling check runs on the full (non-short) leg")
	}
	perOp := func(depth int) time.Duration {
		best := time.Duration(1<<62 - 1)
		for attempt := 0; attempt < 3; attempt++ {
			n := New(Config{})
			for i := 0; i < depth; i++ {
				n.Schedule(time.Hour+time.Duration(i)*time.Millisecond, func() {})
			}
			const ops = 100_000
			start := time.Now()
			for i := 0; i < ops; i++ {
				n.Schedule(time.Microsecond, func() {})
				n.Step()
			}
			if d := time.Since(start) / ops; d < best {
				best = d
			}
		}
		return best
	}
	shallow, deep := perOp(1_000), perOp(100_000)
	if shallow <= 0 {
		shallow = 1
	}
	if ratio := float64(deep) / float64(shallow); ratio > 10 {
		t.Fatalf("per-op cost at depth 100k is %.1fx depth 1k (%v vs %v); want O(log n) scaling",
			ratio, deep, shallow)
	}
}

// ---------------------------------------------------------------------------
// Route-cache invalidation

func TestMulticastMembershipInvalidation(t *testing.T) {
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	a, _ := n.AddNode(addr("2001:db8::2"), root)
	b, _ := n.AddNode(addr("2001:db8::3"), root)
	group := MulticastAddr(PrefixFromAddr(root.Addr()), 0xad1cbe01)
	recv := map[netip.Addr]int{}
	for _, nd := range []*Node{a, b} {
		nd.JoinGroup(group)
		me := nd.Addr()
		nd.Bind(Port6030, func(Message) { recv[me]++ })
	}

	root.Send(group, Port6030, []byte("1"))
	n.RunUntilIdle(0)
	tx1 := n.Stats().Transmissions
	if recv[a.Addr()] != 1 || recv[b.Addr()] != 1 || tx1 != 2 {
		t.Fatalf("first send: recv=%v tx=%d", recv, tx1)
	}

	// Second send exercises the cached plan: identical deliveries and the
	// same transmission increment.
	root.Send(group, Port6030, []byte("2"))
	n.RunUntilIdle(0)
	if tx2 := n.Stats().Transmissions - tx1; recv[a.Addr()] != 2 || recv[b.Addr()] != 2 || tx2 != 2 {
		t.Fatalf("cached send: recv=%v tx delta=%d", recv, n.Stats().Transmissions-tx1)
	}

	// Leaving must invalidate the plan: b stops receiving, one edge fewer.
	before := n.Stats().Transmissions
	b.LeaveGroup(group)
	root.Send(group, Port6030, []byte("3"))
	n.RunUntilIdle(0)
	if tx3 := n.Stats().Transmissions - before; recv[a.Addr()] != 3 || recv[b.Addr()] != 2 || tx3 != 1 {
		t.Fatalf("after leave: recv=%v tx delta=%d", recv, n.Stats().Transmissions-before)
	}

	// Re-joining must invalidate again.
	b.JoinGroup(group)
	root.Send(group, Port6030, []byte("4"))
	n.RunUntilIdle(0)
	if recv[b.Addr()] != 3 {
		t.Fatalf("after re-join: recv=%v", recv)
	}
}

func TestMulticastPlanAfterAddNode(t *testing.T) {
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	a, _ := n.AddNode(addr("2001:db8::2"), root)
	group := MulticastAddr(PrefixFromAddr(root.Addr()), 0xad1cbe01)
	a.JoinGroup(group)
	gotA, gotC := 0, 0
	a.Bind(Port6030, func(Message) { gotA++ })

	root.Send(group, Port6030, []byte("1")) // primes the (root, group) plan
	n.RunUntilIdle(0)

	c, _ := n.AddNode(addr("2001:db8::4"), a)
	c.JoinGroup(group)
	var hopsC int
	c.Bind(Port6030, func(m Message) { gotC++; hopsC = m.Hops })
	root.Send(group, Port6030, []byte("2"))
	n.RunUntilIdle(0)
	if gotA != 2 || gotC != 1 || hopsC != 2 {
		t.Fatalf("after AddNode+Join: a=%d c=%d hopsC=%d", gotA, gotC, hopsC)
	}
}

func TestAnycastDistanceCacheAfterAddNode(t *testing.T) {
	n := New(Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	mid, _ := n.AddNode(addr("2001:db8::2"), root)
	far, _ := n.AddNode(addr("2001:db8::3"), mid)
	src, _ := n.AddNode(addr("2001:db8::4"), root)

	any := addr("2001:db8::aaaa")
	n.JoinAnycast(any, far)
	gotFar, gotNear := 0, 0
	far.Bind(Port6030, func(Message) { gotFar++ })
	src.Send(any, Port6030, []byte("1")) // primes src->far distance
	n.RunUntilIdle(0)

	// A nearer member added after the caches were warm must win.
	near, _ := n.AddNode(addr("2001:db8::5"), root)
	n.JoinAnycast(any, near)
	near.Bind(Port6030, func(Message) { gotNear++ })
	src.Send(any, Port6030, []byte("2"))
	n.RunUntilIdle(0)
	if gotFar != 1 || gotNear != 1 {
		t.Fatalf("anycast after AddNode: far=%d near=%d", gotFar, gotNear)
	}
}
