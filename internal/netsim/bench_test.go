package netsim

import (
	"fmt"
	"net/netip"
	"os"
	"testing"
	"time"
)

// schedBatch is the number of schedule+step cycles one benchmark op covers:
// a single cycle is ~200ns, far below timer resolution at -benchtime 1x, so
// the CI regression gate measures stable 10k-event batches instead.
const schedBatch = 10_000

// BenchmarkNetsimSchedule measures scheduler cost (one Schedule + one Step
// per event, schedBatch events per op) against a standing backlog of
// `depth` future events. The heap gives O(log n) per event: 10x the depth
// must cost well under 2x the per-event time (the former sorted-slice queue
// resorted everything per insert, an O(n log n) blowup).
func BenchmarkNetsimSchedule(b *testing.B) {
	for _, depth := range []int{1_000, 10_000, 100_000} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			n := New(Config{})
			for i := 0; i < depth; i++ {
				n.Schedule(24*time.Hour+time.Duration(i)*time.Millisecond, func() {})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < schedBatch; j++ {
					n.Schedule(time.Microsecond, func() {})
					n.Step()
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*schedBatch), "ns/event")
		})
	}
}

// BenchmarkNetsimScheduleCancel measures the ScheduleCancelable + cancel
// round trip under backlog (schedBatch cycles per op): cancellation is O(1)
// with lazy deletion, so the cost must not grow with queue depth.
func BenchmarkNetsimScheduleCancel(b *testing.B) {
	for _, depth := range []int{1_000, 100_000} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			n := New(Config{})
			for i := 0; i < depth; i++ {
				n.Schedule(24*time.Hour+time.Duration(i)*time.Millisecond, func() {})
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < schedBatch; j++ {
					cancel := n.ScheduleCancelable(time.Hour, func() {})
					cancel()
					n.Schedule(time.Microsecond, func() {})
					n.Step()
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*schedBatch), "ns/event")
		})
	}
}

// BenchmarkChurnReplan measures the cost of keeping a warm SMRF plan valid
// across group churn: one op is `churnBatch` leave+join cycles of a single
// member, each followed by a plan access (the freshness cost a sender pays on
// its next multicast). With incremental plan maintenance this is O(depth) per
// cycle — flat as the group grows — where whole-plan invalidation rebuilt
// O(members × depth) state per cycle. Gated in CI on ns/op and allocs/op.
func BenchmarkChurnReplan(b *testing.B) {
	const churnBatch = 64
	for _, count := range []int{1_000, 5_000} {
		b.Run(fmt.Sprintf("members=%d", count), func(b *testing.B) {
			n := New(Config{})
			nodes := benchTree(b, n, count)
			group := MulticastAddr(PrefixFromAddr(nodes[0].Addr()), 0xad1cbe01)
			for _, nd := range nodes[1:] {
				nd.JoinGroup(group)
			}
			churn := nodes[len(nodes)-1] // a leaf: deepest splice path
			// Warm the (root, group) plan once; churn must keep it valid.
			n.topoMu.RLock()
			n.multicastPlan(nodes[0], group)
			n.topoMu.RUnlock()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < churnBatch; j++ {
					churn.LeaveGroup(group)
					churn.JoinGroup(group)
					n.topoMu.RLock()
					plan := n.multicastPlan(nodes[0], group)
					n.topoMu.RUnlock()
					if len(plan.targets) != count-1 {
						b.Fatalf("plan has %d targets, want %d", len(plan.targets), count-1)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*churnBatch), "ns/churn")
		})
	}
}

// benchTree builds an n-node 4-ary tree and returns the nodes (index 0 is
// the root).
func benchTree(b *testing.B, n *Network, count int) []*Node {
	b.Helper()
	nodes := make([]*Node, count)
	for i := 0; i < count; i++ {
		var parent *Node
		if i > 0 {
			parent = nodes[(i-1)/4]
		}
		var bytes [16]byte
		bytes[0], bytes[1] = 0x20, 0x01
		bytes[12] = byte(i >> 24)
		bytes[13] = byte(i >> 16)
		bytes[14] = byte(i >> 8)
		bytes[15] = byte(i)
		nd, err := n.AddNode(netip.AddrFrom16(bytes), parent)
		if err != nil {
			b.Fatal(err)
		}
		nodes[i] = nd
	}
	return nodes
}

// BenchmarkScaleMulticast measures one SMRF dissemination to a group with
// `members` subscribers spread over a 4-ary tree, including delivery of
// every copy. The membership index and cached plans make the per-send cost
// proportional to the member count, not the node count.
func BenchmarkScaleMulticast(b *testing.B) {
	for _, count := range []int{100, 1_000, 5_000} {
		b.Run(fmt.Sprintf("nodes=%d", count), func(b *testing.B) {
			n := New(Config{})
			nodes := benchTree(b, n, count)
			group := MulticastAddr(PrefixFromAddr(nodes[0].Addr()), 0xad1cbe01)
			delivered := 0
			for _, nd := range nodes[1:] {
				nd.JoinGroup(group)
				nd.Bind(Port6030, func(Message) { delivered++ })
			}
			// Prime the plan cache once; steady-state sends are what scale.
			nodes[0].Send(group, Port6030, []byte("warm"))
			n.RunUntilIdle(0)
			delivered = 0
			// Batch sends per op so -benchtime 1x (the CI regression
			// gate) measures milliseconds, not one noisy send.
			const batch = 8
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					nodes[0].Send(group, Port6030, []byte("adv"))
					n.RunUntilIdle(0)
				}
			}
			b.StopTimer()
			if delivered != b.N*batch*(count-1) {
				b.Fatalf("delivered %d, want %d", delivered, b.N*batch*(count-1))
			}
			b.ReportMetric(float64(count-1), "members")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/send")
		})
	}

	// The parallel-speedup pair: the identical zone-partitioned fan-out —
	// every zone root disseminating to its own zone-scoped group — run on the
	// parallel sharded schedule (clock=sharded) and the sequential single-loop
	// schedule (clock=single) of the same topology and seed. Bit-determinism
	// makes the two runs execute the same events, so the single/sharded ns/op
	// ratio is pure parallel speedup; `benchgate -speedup` gates it. The CI
	// scale-100k job sets MICROPNP_SCALE_100K=1 for the gated 50,000-node
	// tier; the default size keeps local runs quick.
	count := 2000
	if os.Getenv("MICROPNP_SCALE_100K") != "" {
		count = 50000
	}
	const zones = 16
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"sharded", 0},
		{"single", 1},
	} {
		b.Run(fmt.Sprintf("zoned=%d/clock=%s", count, mode.name), func(b *testing.B) {
			n := New(Config{Zones: zones, Workers: mode.workers})
			defer n.Close()
			prefix := PrefixFromAddr(addr("2001:db8::1"))
			root, err := n.AddNode(UnicastAddr(prefix, 0, 1), nil)
			if err != nil {
				b.Fatal(err)
			}
			// Location zones are 1-based (zone 0 is the unscoped group form).
			zoneRoots := make([]*Node, zones+1)
			groups := make([]netip.Addr, zones+1)
			delivered := make([]int, zones+1)
			members := 0
			for z := 1; z <= zones; z++ {
				z := z
				zr, err := n.AddNode(UnicastAddr(prefix, uint16(z), 1), root)
				if err != nil {
					b.Fatal(err)
				}
				zoneRoots[z] = zr
				groups[z] = MulticastAddrZone(prefix, uint16(z), 0xad1cbe01)
				for i := 0; i < count/zones; i++ {
					nd, err := n.AddNode(UnicastAddr(prefix, uint16(z), uint32(2+i)), zr)
					if err != nil {
						b.Fatal(err)
					}
					nd.JoinGroup(groups[z])
					// Handlers for one zone only run on that zone's lane, so
					// the per-zone counter needs no lock.
					nd.Bind(Port6030, func(Message) { delivered[z]++ })
					members++
				}
			}
			// Prime every zone's plan cache; steady-state sends are what scale.
			for z := 1; z <= zones; z++ {
				zoneRoots[z].Send(groups[z], Port6030, []byte("warm"))
			}
			n.RunUntilIdle(0)
			for z := range delivered {
				delivered[z] = 0
			}
			const batch = 4
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					for z := 1; z <= zones; z++ {
						zoneRoots[z].Send(groups[z], Port6030, []byte("adv"))
					}
					n.RunUntilIdle(0)
				}
			}
			b.StopTimer()
			total := 0
			for _, d := range delivered {
				total += d
			}
			if total != b.N*batch*members {
				b.Fatalf("delivered %d, want %d", total, b.N*batch*members)
			}
			b.ReportMetric(float64(members), "members")
		})
	}
}
