package netsim

import (
	"sync"
	"testing"
	"time"
)

// expRecorder records ExpireEvent invocations.
type expRecorder struct {
	mu   sync.Mutex
	seqs []uint64
	toks []any
}

func (r *expRecorder) ExpireEvent(seq uint64, tok any) {
	r.mu.Lock()
	r.seqs = append(r.seqs, seq)
	r.toks = append(r.toks, tok)
	r.mu.Unlock()
}

func TestScheduleExpiryFiresTyped(t *testing.T) {
	n := New(Config{})
	rec := &expRecorder{}
	tok := &struct{ x int }{42}
	n.ScheduleExpiry(time.Second, rec, 7, tok)
	n.RunUntilIdle(0)
	if len(rec.seqs) != 1 || rec.seqs[0] != 7 || rec.toks[0] != tok {
		t.Fatalf("expiry fired %v/%v, want seq 7 with the token", rec.seqs, rec.toks)
	}
	if n.Now() != time.Second {
		t.Fatalf("clock = %v, want 1s", n.Now())
	}
}

func TestScheduleExpiryCancel(t *testing.T) {
	n := New(Config{})
	rec := &expRecorder{}
	ref := n.ScheduleExpiry(time.Second, rec, 1, nil)
	n.Schedule(100*time.Millisecond, func() {})
	ref.Cancel()
	ref.Cancel() // idempotent
	n.RunUntilIdle(0)
	if len(rec.seqs) != 0 {
		t.Fatal("cancelled expiry must not fire")
	}
	if n.Now() != 100*time.Millisecond {
		t.Fatalf("clock = %v; a cancelled expiry must not advance virtual time", n.Now())
	}
}

func TestScheduleExpiryCancelAfterFireNoop(t *testing.T) {
	n := New(Config{})
	rec := &expRecorder{}
	ref := n.ScheduleExpiry(time.Millisecond, rec, 1, nil)
	n.RunUntilIdle(0)
	if len(rec.seqs) != 1 {
		t.Fatalf("fired %d", len(rec.seqs))
	}
	ref.Cancel() // post-fire: no-op
	// The freelist recycled the event; a fresh expiry must be unaffected by
	// the stale ref (generation guard).
	n.ScheduleExpiry(time.Millisecond, rec, 2, nil)
	ref.Cancel()
	n.RunUntilIdle(0)
	if len(rec.seqs) != 2 || rec.seqs[1] != 2 {
		t.Fatalf("stale ref disturbed a recycled event: seqs = %v", rec.seqs)
	}
}

func TestExpiryRefZeroValueInert(t *testing.T) {
	var ref ExpiryRef
	ref.Cancel() // must not panic
}

func TestScheduleExpiryRealtime(t *testing.T) {
	n := New(Config{Realtime: true, TimeScale: 1000})
	defer n.Close()
	rec := &expRecorder{}
	done := make(chan struct{})
	n.ScheduleExpiry(50*time.Millisecond, doneExpirer{rec, done}, 9, "tok")
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("realtime expiry never fired")
	}
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.seqs) != 1 || rec.seqs[0] != 9 || rec.toks[0] != "tok" {
		t.Fatalf("fired %v/%v", rec.seqs, rec.toks)
	}
}

type doneExpirer struct {
	rec  *expRecorder
	done chan struct{}
}

func (d doneExpirer) ExpireEvent(seq uint64, tok any) {
	d.rec.ExpireEvent(seq, tok)
	close(d.done)
}

func TestScheduleExpiryRealtimeCancel(t *testing.T) {
	n := New(Config{Realtime: true, TimeScale: 100})
	rec := &expRecorder{}
	ref := n.ScheduleExpiry(10*time.Second, rec, 1, nil)
	ref.Cancel()
	n.RunUntilIdle(0) // WaitIdle: the cancelled event must not keep it busy
	n.Close()
	rec.mu.Lock()
	defer rec.mu.Unlock()
	if len(rec.seqs) != 0 {
		t.Fatal("cancelled realtime expiry fired")
	}
}

func TestScheduleExpiryStoppedRealtimeInert(t *testing.T) {
	n := New(Config{Realtime: true})
	n.Close()
	rec := &expRecorder{}
	ref := n.ScheduleExpiry(time.Millisecond, rec, 1, nil)
	ref.Cancel() // inert zero ref: must not panic
	if len(rec.seqs) != 0 {
		t.Fatal("expiry fired on a stopped clock")
	}
}

// TestScheduleExpiryAllocFree asserts the whole point of the typed path:
// arming and cancelling a deadline allocates nothing once the freelist is
// warm (tok is a reused pointer, as in the client's pooled pending entries).
func TestScheduleExpiryAllocFree(t *testing.T) {
	n := New(Config{})
	rec := &expRecorder{}
	tok := &struct{ x int }{}
	// Warm the freelist.
	n.ScheduleExpiry(time.Millisecond, rec, 0, tok).Cancel()
	allocs := testing.AllocsPerRun(100, func() {
		ref := n.ScheduleExpiry(time.Millisecond, rec, 1, tok)
		ref.Cancel()
	})
	if allocs != 0 {
		t.Fatalf("schedule+cancel of a typed expiry allocates %v per op, want 0", allocs)
	}
}
