package netsim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedClock is the zone-parallel virtual clock: a conservative
// parallel discrete-event simulator (PDES) over the network's address zones.
// Every zone (lane) owns its own event heap, lane-local virtual time and lock
// domain; lanes advance together through barrier-synchronized windows of at
// most one lookahead quantum, inside which each lane's events execute
// independently — in parallel on a worker per active lane, or sequentially in
// lane order when Workers is 1 (or GOMAXPROCS is 1).
//
// The lookahead argument: every cross-zone interaction is a packet delivery,
// and one hop costs at least PacketDelay of the smallest datagram, which even
// after the worst downward jitter excursion exceeds
// Quantum = ProcPerPacket × (1 − jitter). An event executing at t inside the
// window [W0, W1), W1 ≤ W0+Quantum, can therefore only produce cross-lane
// events at t + delay ≥ W0 + Quantum ≥ W1 — strictly after the window — so
// merging cross-lane traffic only at barriers loses nothing. Within a lane,
// arbitrary (even zero-delay) self-scheduling is unrestricted.
//
// Determinism: lane execution order is fixed by each lane's own (timestamp,
// sequence) heap order; cross-lane events buffer in per-source-lane outboxes
// during the round and merge at the barrier in (source lane, emission order),
// so the sequence numbers they receive — and hence all tie-breaks — are
// independent of worker interleaving. Combined with per-zone RNG streams and
// barrier-applied group membership (see Network), a parallel run is
// bit-identical to the sequential (Workers=1) run of the same program: same
// delivery order per lane, same stats, same payload bytes.
type ShardedClock struct {
	lanes   []*shardLane
	quantum time.Duration
	workers int
	// now is the barrier-synchronized global virtual time: the maximum
	// lane-local time after the last completed round. Between rounds every
	// lane has executed all events below it.
	now atomic.Int64
	// inRound is set while lane workers execute a window; Network consults it
	// to defer group-membership mutations to the barrier.
	inRound atomic.Bool
	// postRound, when set, runs at each barrier after cross-lane merge (the
	// Network applies deferred membership mutations here).
	postRound func()
	// laneSteps collects per-lane executed-event counts for a round; workers
	// write disjoint indices.
	laneSteps []int
	// active is the scratch list of lanes with work in the current window.
	active []*shardLane
}

// shardLane is one zone's event domain. All fields are guarded by mu except
// now (atomic: read by the lane's handlers mid-round and by external
// goroutines between rounds).
type shardLane struct {
	mu sync.Mutex
	eh eventHeap
	// now is the lane-local virtual time: the timestamp of the lane's last
	// executed event (monotone), barrier-aligned between rounds.
	now atomic.Int64
	// outbox buffers cross-lane events generated during the current round, in
	// emission order; the barrier merges them into the destination heaps.
	outbox []crossEvent
}

// crossEvent is one buffered cross-lane event (a packet delivery or a plain
// closure; expiries and cancelables are always lane-local).
type crossEvent struct {
	at   time.Duration
	lane int32
	fn   func()
	del  *delivery
}

// ShardQuantum returns the conservative lookahead window for a network with
// the given jitter fraction: the minimum cross-zone one-hop latency floor.
func ShardQuantum(procJitter float64) time.Duration {
	q := time.Duration(float64(ProcPerPacket) * (1 - procJitter))
	if q < time.Millisecond {
		q = time.Millisecond
	}
	return q
}

// NewShardedClock builds a sharded clock with the given number of zone lanes.
// workers bounds round parallelism: 0 means GOMAXPROCS, 1 forces the
// sequential single-loop schedule (bit-identical to any parallel run).
func NewShardedClock(lanes int, workers int, quantum time.Duration) *ShardedClock {
	if lanes < 1 {
		lanes = 1
	}
	if quantum <= 0 {
		quantum = ShardQuantum(0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &ShardedClock{
		lanes:     make([]*shardLane, lanes),
		quantum:   quantum,
		workers:   workers,
		laneSteps: make([]int, lanes),
		active:    make([]*shardLane, 0, lanes),
	}
	for i := range c.lanes {
		c.lanes[i] = &shardLane{}
	}
	return c
}

// Lanes returns the number of zone lanes.
func (c *ShardedClock) Lanes() int { return len(c.lanes) }

// Sequential reports whether rounds execute lanes in order on the driving
// goroutine (the single-loop schedule) rather than on a worker per lane.
func (c *ShardedClock) Sequential() bool { return c.workers == 1 }

// Now returns the barrier-synchronized global virtual time. During a round,
// handlers should consult their node's lane-local Now (Node.Now) instead.
func (c *ShardedClock) Now() time.Duration { return time.Duration(c.now.Load()) }

// laneNow returns a lane's local virtual time.
func (c *ShardedClock) laneNow(lane int32) time.Duration {
	return time.Duration(c.lanes[lane].now.Load())
}

// base is the scheduling origin for a lane: its local time mid-round, never
// behind the global barrier time (an external caller between rounds schedules
// relative to the global clock even on a lane that has been idle).
func (c *ShardedClock) base(sl *shardLane) time.Duration {
	b := sl.now.Load()
	if g := c.now.Load(); g > b {
		b = g
	}
	return time.Duration(b)
}

// Schedule runs fn at Now()+delay. Events scheduled without a node land on
// lane 0, the control lane (the border-router zone, where manager and
// clients live); their callbacks run serially with lane 0's own events.
func (c *ShardedClock) Schedule(delay time.Duration, fn func()) {
	c.scheduleLane(0, delay, fn)
}

// scheduleLane runs fn on a lane at that lane's base time + delay.
func (c *ShardedClock) scheduleLane(lane int32, delay time.Duration, fn func()) {
	sl := c.lanes[lane]
	at := c.base(sl) + delay
	sl.mu.Lock()
	sl.eh.pushAt(at, fn)
	sl.mu.Unlock()
}

// ScheduleCancelable runs fn at Now()+delay on the control lane and returns a
// cancel function (semantics match VirtualClock.ScheduleCancelable).
func (c *ShardedClock) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	return c.scheduleCancelableLane(0, delay, fn)
}

// scheduleCancelableLane is the lane-affine cancelable variant; timers a node
// arms always live on the node's own lane, so cancels stay lane-local.
func (c *ShardedClock) scheduleCancelableLane(lane int32, delay time.Duration, fn func()) (cancel func()) {
	sl := c.lanes[lane]
	at := c.base(sl) + delay
	sl.mu.Lock()
	ev, gen := sl.eh.pushCancelableAt(at, fn)
	sl.mu.Unlock()
	return func() {
		sl.mu.Lock()
		sl.eh.cancel(ev, gen)
		sl.mu.Unlock()
	}
}

// scheduleExpiryLane queues a typed expiry event on a lane; the returned ref
// cancels through the lane, which implements expiryCanceler.
func (c *ShardedClock) scheduleExpiryLane(lane int32, delay time.Duration, e Expirer, seq uint64, tok any) ExpiryRef {
	sl := c.lanes[lane]
	at := c.base(sl) + delay
	sl.mu.Lock()
	ev, gen := sl.eh.pushExpiryAt(at, e, seq, tok)
	sl.mu.Unlock()
	return ExpiryRef{c: sl, ev: ev, gen: gen}
}

// cancelExpiry implements expiryCanceler for ExpiryRefs minted on this lane.
func (sl *shardLane) cancelExpiry(ev *scheduled, gen uint64) {
	sl.mu.Lock()
	sl.eh.cancel(ev, gen)
	sl.mu.Unlock()
}

// scheduleDelivery routes a packet delivery. Same-lane deliveries (and any
// delivery scheduled between rounds) go straight into the destination heap;
// cross-lane deliveries emitted mid-round buffer in the source lane's outbox
// until the barrier, which is what keeps destination-heap sequence numbers —
// and with them all tie-breaks — independent of worker interleaving.
func (c *ShardedClock) scheduleDelivery(srcLane, dstLane int32, delay time.Duration, del *delivery) {
	sl := c.lanes[srcLane]
	at := c.base(sl) + delay
	if srcLane == dstLane || !c.inRound.Load() {
		dl := c.lanes[dstLane]
		dl.mu.Lock()
		dl.eh.pushDeliveryAt(at, del)
		dl.mu.Unlock()
		return
	}
	sl.mu.Lock()
	sl.outbox = append(sl.outbox, crossEvent{at: at, lane: dstLane, del: del})
	sl.mu.Unlock()
}

// Stop implements Clock; the sharded clock holds no resources (round workers
// are per-round and already parked between rounds).
func (c *ShardedClock) Stop() {}

// merge drains every lane's outbox into the destination heaps, in (source
// lane, emission order) — the deterministic part of the barrier.
func (c *ShardedClock) merge() {
	for _, sl := range c.lanes {
		sl.mu.Lock()
		if len(sl.outbox) == 0 {
			sl.mu.Unlock()
			continue
		}
		box := sl.outbox
		sl.outbox = nil
		sl.mu.Unlock()
		for i := range box {
			ev := &box[i]
			dl := c.lanes[ev.lane]
			dl.mu.Lock()
			if ev.del != nil {
				dl.eh.pushDeliveryAt(ev.at, ev.del)
			} else {
				dl.eh.pushAt(ev.at, ev.fn)
			}
			dl.mu.Unlock()
			*ev = crossEvent{}
		}
		sl.mu.Lock()
		if sl.outbox == nil {
			sl.outbox = box[:0]
		}
		sl.mu.Unlock()
	}
}

// nextAt returns the earliest pending event time across all lanes. It first
// merges any stranded outbox entries (an external sender racing a round's end
// can leave one behind) so no event is ever invisible to the schedule.
func (c *ShardedClock) nextAt() (time.Duration, bool) {
	c.merge()
	var (
		best time.Duration
		ok   bool
	)
	for _, sl := range c.lanes {
		sl.mu.Lock()
		ev := sl.eh.peek()
		sl.mu.Unlock()
		if ev != nil && (!ok || ev.at < best) {
			best, ok = ev.at, true
		}
	}
	return best, ok
}

// runWindow executes events with timestamps in [*, w1) on one lane, in heap
// order, advancing the lane-local clock. Returns the number executed.
func (sl *shardLane) runWindow(w1 time.Duration) int {
	steps := 0
	for {
		sl.mu.Lock()
		ev := sl.eh.peek()
		if ev == nil || ev.at >= w1 {
			sl.mu.Unlock()
			return steps
		}
		ev = sl.eh.pop()
		if at := int64(ev.at); at > sl.now.Load() {
			sl.now.Store(at)
		}
		f, pool := extractFiring(&sl.eh, ev)
		sl.mu.Unlock()
		if pool {
			recycleEvent(ev)
		}
		f.run()
		steps++
	}
}

// round executes one window [w0, w1) across all lanes and runs the barrier:
// merge outboxes, apply deferred network mutations, advance the global clock.
// Returns the number of events executed.
func (c *ShardedClock) round(w1 time.Duration) int {
	// Dispatch only lanes that actually have work below w1: sparse phases
	// (everything queued on the control lane) then run inline with no
	// goroutine or barrier overhead.
	active := c.active[:0]
	for _, sl := range c.lanes {
		sl.mu.Lock()
		ev := sl.eh.peek()
		sl.mu.Unlock()
		if ev != nil && ev.at < w1 {
			active = append(active, sl)
		}
	}
	c.active = active
	total := 0
	c.inRound.Store(true)
	if len(active) == 1 || c.workers == 1 {
		for _, sl := range active {
			total += sl.runWindow(w1)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(active))
		for i, sl := range active {
			go func(i int, sl *shardLane) {
				defer wg.Done()
				c.laneSteps[i] = sl.runWindow(w1)
			}(i, sl)
		}
		wg.Wait()
		for i := range active {
			total += c.laneSteps[i]
		}
	}
	c.inRound.Store(false)
	c.merge()
	if c.postRound != nil {
		c.postRound()
	}
	g := c.now.Load()
	for _, sl := range c.lanes {
		if t := sl.now.Load(); t > g {
			g = t
		}
	}
	c.now.Store(g)
	return total
}

// Step executes the next window of scheduled events (one barrier round),
// advancing the clock. It reports whether any event ran. One sharded Step
// covers up to a quantum of virtual time, not a single event — drivers that
// step until a condition holds (the SDK's await loop) are unaffected.
func (c *ShardedClock) Step() bool {
	w0, ok := c.nextAt()
	if !ok {
		return false
	}
	return c.round(w0+c.quantum) > 0
}

// RunUntilIdle runs rounds until no events remain (bounded by maxSteps
// executed events; 0 means the 1e6 default). Returns the number of events.
func (c *ShardedClock) RunUntilIdle(maxSteps int) int {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	total := 0
	for total < maxSteps {
		w0, ok := c.nextAt()
		if !ok {
			break
		}
		total += c.round(w0 + c.quantum)
	}
	return total
}

// advanceTo lifts every lane (and the global clock) to the deadline.
func (c *ShardedClock) advanceTo(deadline time.Duration) {
	d := int64(deadline)
	for _, sl := range c.lanes {
		if sl.now.Load() < d {
			sl.now.Store(d)
		}
	}
	if c.now.Load() < d {
		c.now.Store(d)
	}
}

// RunUntil processes events up to (and including) the virtual deadline, then
// advances the clock to the deadline.
func (c *ShardedClock) RunUntil(deadline time.Duration) int {
	steps := 0
	for {
		w0, ok := c.nextAt()
		if !ok || w0 > deadline {
			c.advanceTo(deadline)
			return steps
		}
		w1 := w0 + c.quantum
		if w1 > deadline+1 {
			w1 = deadline + 1 // the window bound is exclusive; include events at the deadline
		}
		steps += c.round(w1)
	}
}

// RunUntilQuiesced processes events up to (and including) the deadline,
// reporting whether every lane drained before reaching it. On a drain the
// clock stays at the last event's time (like RunUntilIdle); otherwise it
// advances exactly to the deadline with the remaining events still queued.
func (c *ShardedClock) RunUntilQuiesced(deadline time.Duration) bool {
	for {
		w0, ok := c.nextAt()
		if !ok {
			return true
		}
		if w0 > deadline {
			c.advanceTo(deadline)
			return false
		}
		w1 := w0 + c.quantum
		if w1 > deadline+1 {
			w1 = deadline + 1
		}
		c.round(w1)
	}
}

// queueCap exposes the summed backing capacity of the lane heaps; leak tests
// assert it stays bounded.
func (c *ShardedClock) queueCap() int {
	total := 0
	for _, sl := range c.lanes {
		sl.mu.Lock()
		total += cap(sl.eh.queue)
		sl.mu.Unlock()
	}
	return total
}
