package netsim

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ShardedClock is the zone-parallel virtual clock: a conservative
// parallel discrete-event simulator (PDES) over the network's address zones.
// Every zone (lane) owns its own event heap, lane-local virtual time and lock
// domain; lanes advance together through barrier-synchronized windows, inside
// which each lane's events execute independently — in parallel on a
// persistent worker pool, or sequentially in lane order when Workers is 1.
//
// The lookahead argument: every cross-zone interaction is a packet delivery,
// and one hop costs at least PacketDelay of the smallest datagram, which even
// after the worst downward jitter excursion exceeds
// Quantum = ProcPerPacket × (1 − jitter). A delivery crossing from lane j to
// lane i travels at least the minimum tree distance between the two zones'
// nodes, so it lands at least L(j→i) = minHops(j, i) × Quantum after the
// emitting event — the per-lane-pair lookahead matrix (see Lookahead). At
// each barrier the clock derives per-lane window bounds from the matrix and
// the post-merge heap minima:
//
//	m'_j = min(m_j, min over k of (m'_k + L(k→j)))   (min-plus closure)
//	w_i  = min over j≠i of (m'_j + L(j→i))
//
// The closure step matters: the raw heap minimum m_j is not the earliest
// time lane j can act — an event on a third lane k can seed lane j earlier
// work first, and the pairwise minima are not a metric (no triangle
// inequality over "nearest node" distances), so m'_j is computed as a
// shortest path over lanes. Any event lane j executes happens at or after
// m'_j, hence anything it emits into lane i arrives at or after w_i: events
// below w_i in lane i's post-merge heap are complete, and the window is safe.
// Zones far apart in the routing tree thus run many quanta ahead of each
// other instead of advancing in lock-step one-hop windows; with the matrix
// absent (Config.GlobalLookahead, or no topology information) every window
// falls back to the global bound m + Quantum.
//
// Determinism: lane execution order is fixed by each lane's own (timestamp,
// sequence) heap order; cross-lane events buffer in per-source-lane outboxes
// during the round and merge at the barrier in (source lane, emission order),
// so the sequence numbers they receive — and hence all tie-breaks — are
// independent of worker interleaving. Window bounds are computed only from
// barrier-time heap minima and the topology matrix, never from worker
// timing. Combined with per-zone RNG streams and barrier-applied group
// membership (see Network), a parallel run is bit-identical to the
// sequential (Workers=1) run of the same program: same delivery order per
// lane, same stats, same payload bytes.
type ShardedClock struct {
	lanes   []*shardLane
	quantum time.Duration
	workers int
	// now is the barrier-synchronized global virtual time: the maximum
	// lane-local time after the last completed round. Between rounds every
	// lane has executed all events below its own window bound.
	now atomic.Int64
	// inRound is set while lane workers execute a window; Network consults it
	// to defer group-membership mutations to the barrier.
	inRound atomic.Bool
	// postRound, when set, runs at each barrier after cross-lane merge (the
	// Network applies deferred membership mutations here).
	postRound func()

	// lookahead is the per-lane-pair hop matrix (nil = global-quantum mode);
	// laNs is its barrier snapshot in effective nanoseconds, refreshed when
	// laVersion trails the matrix version.
	lookahead *Lookahead
	laNs      []int64
	laVersion uint64

	// Barrier scratch, touched only by the driving goroutine.
	minAt     []int64 // post-merge per-lane heap minima (laneFar = empty)
	relaxed   []int64 // min-plus closure of minAt over the matrix
	visited   []bool  // closure scratch
	winNs     []int64 // per-lane window bounds for the current round
	activeIdx []int32 // lanes with work below their window, in lane order
	// Outbox merge scratch (group-by-destination batching).
	mergeCount []int32
	mergeStart []int32
	mergeOrder []int32

	// Persistent worker pool: workers-1 helper goroutines park on workCh
	// tokens; each token is one round participation (claim lanes off cursor
	// until drained, then partWG.Done). The driving goroutine participates
	// too and waits for every woken helper before reusing round state, so
	// rounds allocate nothing and no helper ever reads stale scratch.
	poolOnce    sync.Once
	workCh      chan struct{}
	stopCh      chan struct{}
	stopOnce    sync.Once
	cursor      atomic.Int64
	partWG      sync.WaitGroup
	roundEvents atomic.Int64

	// Telemetry (see ShardStats).
	rounds      atomic.Int64
	events      atomic.Int64
	laneRounds  atomic.Int64
	crossMerged atomic.Int64
	causalViol  atomic.Int64
}

// laneFar marks an empty lane's heap minimum; far enough to act as infinity,
// small enough that adding lookahead spans cannot overflow.
const laneFar = int64(math.MaxInt64) / 4

// shardLane is one zone's event domain. All fields are guarded by mu except
// now (atomic: read by the lane's handlers mid-round and by external
// goroutines between rounds) and mayHaveWork.
type shardLane struct {
	mu sync.Mutex
	eh eventHeap
	// now is the lane-local virtual time: the timestamp of the lane's last
	// executed event (monotone), barrier-aligned between rounds.
	now atomic.Int64
	// mayHaveWork is the lane's dirty flag: set (under mu) on every push,
	// cleared (under mu) when the barrier scan finds the heap empty. A false
	// flag lets the scan skip the lane without taking its lock, so idle lanes
	// on sparse topologies cost one atomic load per round.
	mayHaveWork atomic.Bool
	// outbox buffers cross-lane events generated during the current round, in
	// emission order; the barrier merges them into the destination heaps.
	outbox []crossEvent
}

// crossEvent is one buffered cross-lane event (a packet delivery or a plain
// closure; expiries and cancelables are always lane-local).
type crossEvent struct {
	at   time.Duration
	lane int32
	fn   func()
	del  *delivery
}

// ShardQuantum returns the conservative lookahead quantum for a network with
// the given jitter fraction: the minimum cross-zone one-hop latency floor.
func ShardQuantum(procJitter float64) time.Duration {
	q := time.Duration(float64(ProcPerPacket) * (1 - procJitter))
	if q < time.Millisecond {
		q = time.Millisecond
	}
	return q
}

// NewShardedClock builds a sharded clock with the given number of zone lanes.
// workers bounds round parallelism: 0 means GOMAXPROCS, 1 forces the
// sequential single-loop schedule (bit-identical to any parallel run).
// Windows use the global quantum until setLookahead installs a topology
// matrix.
func NewShardedClock(lanes int, workers int, quantum time.Duration) *ShardedClock {
	if lanes < 1 {
		lanes = 1
	}
	if quantum <= 0 {
		quantum = ShardQuantum(0)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	c := &ShardedClock{
		lanes:      make([]*shardLane, lanes),
		quantum:    quantum,
		workers:    workers,
		stopCh:     make(chan struct{}),
		minAt:      make([]int64, lanes),
		relaxed:    make([]int64, lanes),
		visited:    make([]bool, lanes),
		winNs:      make([]int64, lanes),
		activeIdx:  make([]int32, 0, lanes),
		mergeCount: make([]int32, lanes),
		mergeStart: make([]int32, lanes),
	}
	for i := range c.lanes {
		c.lanes[i] = &shardLane{}
	}
	return c
}

// setLookahead installs the per-lane-pair hop matrix; windows switch from the
// global quantum to matrix-derived bounds at the next barrier. Only
// meaningful before the clock starts running rounds (Network.New wires it).
func (c *ShardedClock) setLookahead(la *Lookahead) {
	if la == nil || len(c.lanes) < 2 {
		return
	}
	c.lookahead = la
	c.laNs = make([]int64, len(c.lanes)*len(c.lanes))
	c.laVersion = la.snapshotNs(c.quantum, c.laNs)
}

// Lanes returns the number of zone lanes.
func (c *ShardedClock) Lanes() int { return len(c.lanes) }

// Sequential reports whether rounds execute lanes in order on the driving
// goroutine (the single-loop schedule) rather than on the worker pool.
func (c *ShardedClock) Sequential() bool { return c.workers == 1 }

// PairLookahead reports whether windows derive from the per-lane-pair matrix
// rather than the global quantum.
func (c *ShardedClock) PairLookahead() bool { return c.lookahead != nil }

// ShardStats is the clock's barrier telemetry. All counts are deterministic
// for a given schedule: windows derive from heap state and topology only, so
// parallel and sequential runs report identical numbers.
type ShardStats struct {
	// Rounds is the number of barrier rounds executed.
	Rounds int64
	// Events is the total number of events executed inside rounds.
	Events int64
	// LaneRounds sums each round's active-lane count; LaneRounds /
	// (Rounds × Lanes) is the mean lane occupancy.
	LaneRounds int64
	// CrossMerged counts cross-lane events merged at barriers (the summed
	// outbox merge sizes).
	CrossMerged int64
	// CausalityViolations counts merged cross-lane events timestamped before
	// their destination lane's local clock — always zero if the window bounds
	// are sound; exported so tests and telemetry can assert it.
	CausalityViolations int64
}

// Stats returns a snapshot of the barrier telemetry.
func (c *ShardedClock) Stats() ShardStats {
	return ShardStats{
		Rounds:              c.rounds.Load(),
		Events:              c.events.Load(),
		LaneRounds:          c.laneRounds.Load(),
		CrossMerged:         c.crossMerged.Load(),
		CausalityViolations: c.causalViol.Load(),
	}
}

// Now returns the barrier-synchronized global virtual time. During a round,
// handlers should consult their node's lane-local Now (Node.Now) instead.
func (c *ShardedClock) Now() time.Duration { return time.Duration(c.now.Load()) }

// laneNow returns a lane's local virtual time.
func (c *ShardedClock) laneNow(lane int32) time.Duration {
	return time.Duration(c.lanes[lane].now.Load())
}

// base is the scheduling origin for a lane: its local time mid-round, never
// behind the global barrier time (an external caller between rounds schedules
// relative to the global clock even on a lane that has been idle).
func (c *ShardedClock) base(sl *shardLane) time.Duration {
	b := sl.now.Load()
	if g := c.now.Load(); g > b {
		b = g
	}
	return time.Duration(b)
}

// Schedule runs fn at Now()+delay. Events scheduled without a node land on
// lane 0, the control lane (the border-router zone, where manager and
// clients live); their callbacks run serially with lane 0's own events.
func (c *ShardedClock) Schedule(delay time.Duration, fn func()) {
	c.scheduleLane(0, delay, fn)
}

// scheduleLane runs fn on a lane at that lane's base time + delay.
func (c *ShardedClock) scheduleLane(lane int32, delay time.Duration, fn func()) {
	sl := c.lanes[lane]
	at := c.base(sl) + delay
	sl.mu.Lock()
	sl.eh.pushAt(at, fn)
	sl.mayHaveWork.Store(true)
	sl.mu.Unlock()
}

// ScheduleCancelable runs fn at Now()+delay on the control lane and returns a
// cancel function (semantics match VirtualClock.ScheduleCancelable).
func (c *ShardedClock) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	return c.scheduleCancelableLane(0, delay, fn)
}

// scheduleCancelableLane is the lane-affine cancelable variant; timers a node
// arms always live on the node's own lane, so cancels stay lane-local.
func (c *ShardedClock) scheduleCancelableLane(lane int32, delay time.Duration, fn func()) (cancel func()) {
	sl := c.lanes[lane]
	at := c.base(sl) + delay
	sl.mu.Lock()
	ev, gen := sl.eh.pushCancelableAt(at, fn)
	sl.mayHaveWork.Store(true)
	sl.mu.Unlock()
	return func() {
		sl.mu.Lock()
		sl.eh.cancel(ev, gen)
		sl.mu.Unlock()
	}
}

// scheduleExpiryLane queues a typed expiry event on a lane; the returned ref
// cancels through the lane, which implements expiryCanceler.
func (c *ShardedClock) scheduleExpiryLane(lane int32, delay time.Duration, e Expirer, seq uint64, tok any) ExpiryRef {
	sl := c.lanes[lane]
	at := c.base(sl) + delay
	sl.mu.Lock()
	ev, gen := sl.eh.pushExpiryAt(at, e, seq, tok)
	sl.mayHaveWork.Store(true)
	sl.mu.Unlock()
	return ExpiryRef{c: sl, ev: ev, gen: gen}
}

// cancelExpiry implements expiryCanceler for ExpiryRefs minted on this lane.
func (sl *shardLane) cancelExpiry(ev *scheduled, gen uint64) {
	sl.mu.Lock()
	sl.eh.cancel(ev, gen)
	sl.mu.Unlock()
}

// scheduleDelivery routes a packet delivery. Same-lane deliveries (and any
// delivery scheduled between rounds) go straight into the destination heap;
// cross-lane deliveries emitted mid-round buffer in the source lane's outbox
// until the barrier, which is what keeps destination-heap sequence numbers —
// and with them all tie-breaks — independent of worker interleaving.
func (c *ShardedClock) scheduleDelivery(srcLane, dstLane int32, delay time.Duration, del *delivery) {
	sl := c.lanes[srcLane]
	at := c.base(sl) + delay
	if srcLane == dstLane || !c.inRound.Load() {
		dl := c.lanes[dstLane]
		dl.mu.Lock()
		dl.eh.pushDeliveryAt(at, del)
		dl.mayHaveWork.Store(true)
		dl.mu.Unlock()
		return
	}
	sl.mu.Lock()
	sl.outbox = append(sl.outbox, crossEvent{at: at, lane: dstLane, del: del})
	sl.mu.Unlock()
}

// Stop retires the worker pool (helpers park between rounds, so this never
// interrupts a window); subsequent rounds execute inline. Idempotent.
func (c *ShardedClock) Stop() {
	c.stopOnce.Do(func() { close(c.stopCh) })
}

// stopped reports whether Stop retired the pool.
func (c *ShardedClock) stopped() bool {
	select {
	case <-c.stopCh:
		return true
	default:
		return false
	}
}

// merge drains every lane's outbox into the destination heaps, in (source
// lane, emission order) — the deterministic part of the barrier. Each
// source's batch is grouped by destination first so every destination heap is
// locked once per source instead of once per event; within one destination
// the emission order (and so the sequence numbering) is preserved, and
// groups of different destinations never share a heap, so the grouping
// cannot affect any tie-break. Cross events timestamped before their
// destination's local clock would be causality violations; they are counted,
// never silently reordered.
func (c *ShardedClock) merge() {
	for _, sl := range c.lanes {
		sl.mu.Lock()
		box := sl.outbox
		sl.outbox = nil
		sl.mu.Unlock()
		if len(box) == 0 {
			continue
		}
		c.mergeBox(box)
		for i := range box {
			box[i] = crossEvent{}
		}
		sl.mu.Lock()
		if sl.outbox == nil {
			sl.outbox = box[:0]
		}
		sl.mu.Unlock()
	}
}

// mergeBox pushes one source lane's outbox, grouped by destination.
func (c *ShardedClock) mergeBox(box []crossEvent) {
	c.crossMerged.Add(int64(len(box)))
	cnt := c.mergeCount
	for i := range cnt {
		cnt[i] = 0
	}
	for i := range box {
		cnt[box[i].lane]++
	}
	if cap(c.mergeOrder) < len(box) {
		c.mergeOrder = make([]int32, len(box))
	}
	ord := c.mergeOrder[:len(box)]
	start := c.mergeStart
	s := int32(0)
	for j := range start {
		start[j] = s
		s += cnt[j]
	}
	for i := range box {
		l := box[i].lane
		ord[start[l]] = int32(i)
		start[l]++
	}
	for j := range c.lanes {
		if cnt[j] == 0 {
			continue
		}
		group := ord[start[j]-cnt[j] : start[j]]
		dl := c.lanes[j]
		dl.mu.Lock()
		lnow := time.Duration(dl.now.Load())
		for _, i := range group {
			ev := &box[i]
			if ev.at < lnow {
				c.causalViol.Add(1)
			}
			if ev.del != nil {
				dl.eh.pushDeliveryAt(ev.at, ev.del)
			} else {
				dl.eh.pushAt(ev.at, ev.fn)
			}
		}
		dl.mayHaveWork.Store(true)
		dl.mu.Unlock()
	}
}

// scanMinima runs the serial head of a barrier: merge stranded outbox entries
// (an external sender racing a round's end can leave one behind), then record
// every lane's heap minimum, skipping lanes whose dirty flag shows them
// empty. Returns the global minimum and whether any event is pending.
func (c *ShardedClock) scanMinima() (int64, bool) {
	c.merge()
	g := laneFar
	for i, sl := range c.lanes {
		if !sl.mayHaveWork.Load() {
			c.minAt[i] = laneFar
			continue
		}
		sl.mu.Lock()
		ev := sl.eh.peek()
		if ev == nil {
			// The flag only resets here, under the same lock pushes take, so
			// a concurrent push cannot be lost: it either lands before the
			// peek or sets the flag after this store.
			sl.mayHaveWork.Store(false)
			sl.mu.Unlock()
			c.minAt[i] = laneFar
			continue
		}
		sl.mu.Unlock()
		c.minAt[i] = int64(ev.at)
		if int64(ev.at) < g {
			g = int64(ev.at)
		}
	}
	return g, g < laneFar
}

// computeWindows fills winNs for a round starting at global minimum g,
// bounded by limit (exclusive). In matrix mode each lane's bound is
// w_i = min over j≠i of (m'_j + L(j→i)) with m' the min-plus closure of the
// heap minima over the matrix; otherwise every lane gets g + quantum.
func (c *ShardedClock) computeWindows(g, limit int64) {
	n := len(c.lanes)
	if c.lookahead == nil || n < 2 {
		w := g + int64(c.quantum)
		if w > limit {
			w = limit
		}
		for i := range c.winNs {
			c.winNs[i] = w
		}
		return
	}
	if v := c.lookahead.version.Load(); v != c.laVersion {
		c.laVersion = c.lookahead.snapshotNs(c.quantum, c.laNs)
	}
	// Min-plus closure of the minima over the matrix (dense Dijkstra; edge
	// weights are positive, lanes are few).
	copy(c.relaxed, c.minAt)
	for i := range c.visited {
		c.visited[i] = false
	}
	for {
		u, best := -1, laneFar
		for i, vis := range c.visited {
			if !vis && c.relaxed[i] < best {
				u, best = i, c.relaxed[i]
			}
		}
		if u < 0 {
			break
		}
		c.visited[u] = true
		row := c.laNs[u*n : (u+1)*n]
		for j := 0; j < n; j++ {
			if j == u || c.visited[j] {
				continue
			}
			if cand := best + row[j]; cand < c.relaxed[j] {
				c.relaxed[j] = cand
			}
		}
	}
	for i := 0; i < n; i++ {
		w := limit
		for j := 0; j < n; j++ {
			if j == i || c.relaxed[j] >= laneFar {
				continue
			}
			if cand := c.relaxed[j] + c.laNs[j*n+i]; cand < w {
				w = cand
			}
		}
		c.winNs[i] = w
	}
}

// runWindow executes events with timestamps in [*, w1) on one lane, in heap
// order, advancing the lane-local clock. Returns the number executed.
func (sl *shardLane) runWindow(w1 time.Duration) int {
	steps := 0
	for {
		sl.mu.Lock()
		ev := sl.eh.peek()
		if ev == nil || ev.at >= w1 {
			sl.mu.Unlock()
			return steps
		}
		ev = sl.eh.pop()
		if at := int64(ev.at); at > sl.now.Load() {
			sl.now.Store(at)
		}
		f, pool := extractFiring(&sl.eh, ev)
		sl.mu.Unlock()
		if pool {
			recycleEvent(ev)
		}
		f.run()
		steps++
	}
}

// ensurePool lazily spawns the workers-1 helper goroutines. They live until
// Stop; between rounds they park on the token channel, so an idle clock
// costs nothing per round beyond the token sends.
func (c *ShardedClock) ensurePool() {
	c.poolOnce.Do(func() {
		n := c.workers - 1
		c.workCh = make(chan struct{}, n)
		for i := 0; i < n; i++ {
			go c.helper()
		}
	})
}

func (c *ShardedClock) helper() {
	for {
		select {
		case <-c.stopCh:
			return
		case <-c.workCh:
			c.claimLanes()
			c.partWG.Done()
		}
	}
}

// claimLanes pulls active lanes off the shared cursor and runs their windows
// until none remain. Lane windows and step counts index by lane, so
// participants never write shared state beyond the atomics.
func (c *ShardedClock) claimLanes() {
	idx := c.activeIdx
	for {
		k := int(c.cursor.Add(1)) - 1
		if k >= len(idx) {
			return
		}
		li := idx[k]
		if n := c.lanes[li].runWindow(time.Duration(c.winNs[li])); n > 0 {
			c.roundEvents.Add(int64(n))
		}
	}
}

// roundFrom executes one barrier round: windows from the minima recorded by
// scanMinima (global minimum g), bounded by limit (exclusive); then the
// barrier — merge outboxes, apply deferred network mutations, advance the
// global clock. Returns the number of events executed.
func (c *ShardedClock) roundFrom(g, limit int64) int {
	c.computeWindows(g, limit)
	active := c.activeIdx[:0]
	for i := range c.lanes {
		if c.minAt[i] < c.winNs[i] {
			active = append(active, int32(i))
		}
	}
	c.activeIdx = active
	total := 0
	c.inRound.Store(true)
	if c.workers == 1 || len(active) == 1 || c.stopped() {
		for _, li := range active {
			total += c.lanes[li].runWindow(time.Duration(c.winNs[li]))
		}
	} else {
		c.ensurePool()
		c.cursor.Store(0)
		c.roundEvents.Store(0)
		helpers := c.workers - 1
		if h := len(active) - 1; h < helpers {
			helpers = h
		}
		c.partWG.Add(helpers)
		for i := 0; i < helpers; i++ {
			c.workCh <- struct{}{}
		}
		c.claimLanes()
		// Wait for every woken helper, not just for the work to drain: a
		// helper that found the cursor exhausted may still be reading round
		// state, which the next round overwrites.
		c.partWG.Wait()
		total = int(c.roundEvents.Load())
	}
	c.inRound.Store(false)
	c.merge()
	if c.postRound != nil {
		c.postRound()
	}
	gmax := c.now.Load()
	for _, sl := range c.lanes {
		if t := sl.now.Load(); t > gmax {
			gmax = t
		}
	}
	c.now.Store(gmax)
	c.rounds.Add(1)
	c.events.Add(int64(total))
	c.laneRounds.Add(int64(len(active)))
	return total
}

// Step executes the next window of scheduled events (one barrier round),
// advancing the clock. It reports whether any event ran. One sharded Step
// covers up to a window of virtual time, not a single event — drivers that
// step until a condition holds (the SDK's await loop) are unaffected.
func (c *ShardedClock) Step() bool {
	g, ok := c.scanMinima()
	if !ok {
		return false
	}
	return c.roundFrom(g, laneFar) > 0
}

// StepUntil executes at most one barrier round whose windows are additionally
// clamped to the deadline (inclusive), reporting whether any event ran. When
// no pending event is due by the deadline the clock advances straight to it.
// This is the cooperative-driver primitive: one call is one bounded slice of
// parallel work, after which the caller can re-examine its wake conditions.
func (c *ShardedClock) StepUntil(deadline time.Duration) bool {
	g, ok := c.scanMinima()
	if !ok || g > int64(deadline) {
		c.advanceTo(deadline)
		return false
	}
	return c.roundFrom(g, int64(deadline)+1) > 0
}

// RunUntilIdle runs rounds until no events remain (bounded by maxSteps
// executed events; 0 means the 1e6 default). Returns the number of events.
func (c *ShardedClock) RunUntilIdle(maxSteps int) int {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	total := 0
	for total < maxSteps {
		g, ok := c.scanMinima()
		if !ok {
			break
		}
		total += c.roundFrom(g, laneFar)
	}
	return total
}

// advanceTo lifts every lane (and the global clock) to the deadline.
func (c *ShardedClock) advanceTo(deadline time.Duration) {
	d := int64(deadline)
	for _, sl := range c.lanes {
		if sl.now.Load() < d {
			sl.now.Store(d)
		}
	}
	if c.now.Load() < d {
		c.now.Store(d)
	}
}

// RunUntil processes events up to (and including) the virtual deadline, then
// advances the clock to the deadline.
func (c *ShardedClock) RunUntil(deadline time.Duration) int {
	steps := 0
	for {
		g, ok := c.scanMinima()
		if !ok || g > int64(deadline) {
			c.advanceTo(deadline)
			return steps
		}
		// The window bound is exclusive; deadline+1 includes events at the
		// deadline while keeping every lane's clock at or below it.
		steps += c.roundFrom(g, int64(deadline)+1)
	}
}

// RunUntilQuiesced processes events up to (and including) the deadline,
// reporting whether every lane drained before reaching it. On a drain the
// clock stays at the last event's time (like RunUntilIdle); otherwise it
// advances exactly to the deadline with the remaining events still queued.
func (c *ShardedClock) RunUntilQuiesced(deadline time.Duration) bool {
	for {
		g, ok := c.scanMinima()
		if !ok {
			return true
		}
		if g > int64(deadline) {
			c.advanceTo(deadline)
			return false
		}
		c.roundFrom(g, int64(deadline)+1)
	}
}

// queueCap exposes the summed backing capacity of the lane heaps; leak tests
// assert it stays bounded.
func (c *ShardedClock) queueCap() int {
	total := 0
	for _, sl := range c.lanes {
		sl.mu.Lock()
		total += cap(sl.eh.queue)
		sl.mu.Unlock()
	}
	return total
}
