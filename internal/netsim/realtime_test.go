package netsim

import (
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// rtNet builds a heavily accelerated realtime network so virtual seconds
// pass in wall milliseconds.
func rtNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	cfg.Realtime = true
	if cfg.TimeScale == 0 {
		cfg.TimeScale = 2000
	}
	n := New(cfg)
	t.Cleanup(n.Close)
	return n
}

func TestRealtimeSchedulesInTimestampOrder(t *testing.T) {
	// One worker serializes dispatch, so the recorded order is exactly the
	// loop's timestamp-ordered pop order.
	n := rtNet(t, Config{Workers: 1})
	var mu sync.Mutex
	var got []int
	// Schedule out of order; the loop must fire them by virtual timestamp.
	delays := []time.Duration{400 * time.Millisecond, 100 * time.Millisecond, 300 * time.Millisecond, 200 * time.Millisecond}
	order := []int{3, 0, 2, 1} // index sorted by delay
	for i, d := range delays {
		i := i
		n.Schedule(d, func() {
			mu.Lock()
			got = append(got, i)
			mu.Unlock()
		})
	}
	n.RunUntilIdle(0)
	mu.Lock()
	defer mu.Unlock()
	if len(got) != len(delays) {
		t.Fatalf("fired %d events, want %d", len(got), len(delays))
	}
	for k, want := range []int{1, 3, 2, 0} {
		if got[k] != want {
			t.Fatalf("fire order %v, want %v (delay-sorted %v)", got, []int{1, 3, 2, 0}, order)
		}
	}
}

func TestRealtimeCancelPreventsFiring(t *testing.T) {
	n := rtNet(t, Config{})
	var fired atomic.Int32
	cancel := n.ScheduleCancelable(500*time.Millisecond, func() { fired.Add(1) })
	cancel()
	cancel()                           // idempotent
	n.Schedule(time.Second, func() {}) // a later marker event
	n.RunUntilIdle(0)
	if fired.Load() != 0 {
		t.Fatal("cancelled event fired")
	}
}

func TestRealtimeWaitIdleDrainsCascades(t *testing.T) {
	n := rtNet(t, Config{})
	var fired atomic.Int32
	// A chain: each event schedules the next, five deep.
	var step func(k int)
	step = func(k int) {
		fired.Add(1)
		if k < 5 {
			n.Schedule(50*time.Millisecond, func() { step(k + 1) })
		}
	}
	n.Schedule(50*time.Millisecond, func() { step(1) })
	n.RunUntilIdle(0)
	if got := fired.Load(); got != 5 {
		t.Fatalf("cascade fired %d events before idle, want 5", got)
	}
}

func TestRealtimeNowAdvancesWithScale(t *testing.T) {
	n := rtNet(t, Config{TimeScale: 1000})
	start := n.Now()
	time.Sleep(5 * time.Millisecond)
	if adv := n.Now() - start; adv < 4*time.Second {
		t.Fatalf("virtual clock advanced only %v over 5ms wall at scale 1000", adv)
	}
}

func TestRealtimeDelivery(t *testing.T) {
	n := rtNet(t, Config{})
	root, err := n.AddNode(netip.MustParseAddr("2001:db8::1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := n.AddNode(netip.MustParseAddr("2001:db8::2"), root)
	if err != nil {
		t.Fatal(err)
	}
	type arrival struct {
		payload string // copied in-handler: Payload is borrowed
		hops    int
	}
	got := make(chan arrival, 1)
	leaf.Bind(Port6030, func(m Message) { got <- arrival{string(m.Payload), m.Hops} })
	root.Send(leaf.Addr(), Port6030, []byte("hi"))
	select {
	case m := <-got:
		if m.payload != "hi" || m.hops != 1 {
			t.Fatalf("delivered %q over %d hops", m.payload, m.hops)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("delivery never arrived on the wall clock")
	}
	n.RunUntilIdle(0)
	if s := n.Stats(); s.Delivered != 1 || s.UnicastSent != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestRealtimeConcurrentSendersAndHandlers(t *testing.T) {
	n := rtNet(t, Config{})
	root, err := n.AddNode(netip.MustParseAddr("2001:db8::1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	var handled atomic.Int32
	root.Bind(Port6030, func(m Message) { handled.Add(1) })
	const senders, per = 16, 25
	nodes := make([]*Node, senders)
	for i := range nodes {
		nd, err := n.AddNode(netip.MustParseAddr(fmt.Sprintf("2001:db8::1%02x", i)), root)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	var wg sync.WaitGroup
	for _, nd := range nodes {
		nd := nd
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < per; k++ {
				nd.Send(root.Addr(), Port6030, []byte{byte(k)})
			}
		}()
	}
	wg.Wait()
	n.RunUntilIdle(0)
	if got := handled.Load(); got != senders*per {
		t.Fatalf("handled %d datagrams, want %d", got, senders*per)
	}
	if s := n.Stats(); s.UnicastSent != senders*per || s.Delivered != senders*per {
		t.Fatalf("stats %+v", s)
	}
}

func TestRealtimeStepIsNoop(t *testing.T) {
	n := rtNet(t, Config{})
	if n.Step() {
		t.Fatal("Step must report false on the realtime clock")
	}
}

func TestRealtimeRunUntilSleepsToDeadline(t *testing.T) {
	n := rtNet(t, Config{TimeScale: 5000})
	deadline := n.Now() + 10*time.Second
	n.RunUntil(deadline)
	if now := n.Now(); now < deadline {
		t.Fatalf("RunUntil returned at %v, before deadline %v", now, deadline)
	}
}

func TestRealtimeCloseStopsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	n := New(Config{Realtime: true, TimeScale: 1000, Workers: 4})
	n.Schedule(time.Hour, func() {}) // far-future event is discarded by Close
	n.Close()
	n.Close() // idempotent
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Fatalf("%d goroutines still alive after Close (started with %d)", got, before)
	}
}

func TestRealtimeScheduleAfterCloseIsNoop(t *testing.T) {
	n := New(Config{Realtime: true, TimeScale: 1000})
	n.Close()
	var fired atomic.Int32
	n.Schedule(0, func() { fired.Add(1) })
	cancel := n.ScheduleCancelable(0, func() { fired.Add(1) })
	cancel()
	time.Sleep(20 * time.Millisecond)
	if fired.Load() != 0 {
		t.Fatal("event fired on a stopped clock")
	}
}
