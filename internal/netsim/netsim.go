// Package netsim is a discrete-event simulator of the network substrate the
// µPnP prototype runs on (Section 6): IPv6 over 6LoWPAN/802.15.4, an
// RPL-style tree (DODAG) for routing, SMRF-style multicast forwarding down
// the tree, and anycast to the nearest group member. Nodes exchange UDP
// datagrams; per-packet latency models the 250 kbit/s 802.15.4 wire rate,
// 6LoWPAN fragmentation and the embedded stack's per-packet processing cost.
//
// Time-advancement is pluggable (see Clock). Under the default VirtualClock
// the simulator is deterministic: Send schedules deliveries, Run/RunUntilIdle
// advance time, handlers execute inline at delivery time and may send
// further messages. Under the RealtimeClock (Config.Realtime) the event loop
// runs on its own goroutine against the wall clock and handlers dispatch
// from a bounded worker pool, so many client goroutines can block on
// in-flight requests concurrently.
//
// The implementation is built to stay fast at thousands of nodes and many
// concurrent handlers, and to keep the steady-state message path free of
// heap allocations: payloads travel in pooled refcounted buffers with
// explicit ownership hand-off (see Buf and SendBuf; handlers borrow
// Message.Payload for the duration of the call), deliveries are pooled typed
// events rather than per-datagram closures, the event queue is a binary heap
// with lazy deletion (Schedule and Step are O(log n), cancelled events are
// skipped on pop, compacted away when they dominate the queue, and recycled
// through a per-clock freelist guarded by generation counters), multicast
// sends consult a per-group membership index instead of scanning every node,
// and tree routes are cached — per-pair hop distances, and per-(group,src)
// SMRF plans that group churn maintains incrementally (JoinGroup/LeaveGroup
// splice the member's path in O(depth) against a refcounted edge union)
// rather than invalidating. Locks are sharded by role — topology (RWMutex,
// read-mostly after setup), the per-group plan stripes, the distance cache,
// loss/jitter sampling, atomic stats counters, and the clock's own lock — so
// concurrent handlers do not serialize on one lock.
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Port6030 is the UDP port all µPnP protocol messages use (Section 5.2).
const Port6030 = 6030

// Link and stack timing model, calibrated against the Contiki 2.7 /
// ATMega128RFA1 measurements of Table 4.
const (
	// WireBitsPerSecond is the 802.15.4 PHY rate.
	WireBitsPerSecond = 250_000
	// FrameCapacity is the usable 6LoWPAN payload per 802.15.4 frame;
	// larger datagrams fragment.
	FrameCapacity = 80
	// FrameOverheadBytes covers PHY/MAC/6LoWPAN headers per frame.
	FrameOverheadBytes = 23
	// ProcPerPacket is the embedded stack's per-datagram processing cost
	// (CSMA, 6LoWPAN compression, RPL, UDP) on a 16 MHz AVR.
	ProcPerPacket = 26 * time.Millisecond
	// MulticastExtra is the additional SMRF processing and duplicate-MAC
	// cost for multicast datagrams.
	MulticastExtra = 19 * time.Millisecond
)

// PacketDelay returns the one-hop latency of a datagram of the given payload
// size.
func PacketDelay(payloadBytes int, multicast bool) time.Duration {
	frames := (payloadBytes + FrameCapacity - 1) / FrameCapacity
	if frames == 0 {
		frames = 1
	}
	wireBytes := payloadBytes + frames*FrameOverheadBytes
	wire := time.Duration(float64(wireBytes*8) / WireBitsPerSecond * float64(time.Second))
	d := ProcPerPacket + wire
	if multicast {
		d += MulticastExtra
	}
	return d
}

// Message is a UDP datagram in flight or delivered.
type Message struct {
	Src  netip.Addr
	Dst  netip.Addr
	Port uint16
	// Payload is BORROWED by handlers: the bytes live in a pooled buffer the
	// network recycles as soon as the handler returns (multicast receivers
	// share one buffer). Handlers that retain payload bytes must copy them.
	Payload []byte
	// Hops the datagram traversed (filled at delivery).
	Hops int
}

// Handler consumes a delivered datagram. Under the realtime clock handlers
// for independent deliveries run concurrently on pool workers; handlers must
// therefore be safe for concurrent use when the network runs in realtime
// mode. Message.Payload is only valid for the duration of the call.
type Handler func(Message)

// Config tunes the simulated network.
type Config struct {
	// LossRate is the per-hop probability of losing a frame (0..1).
	LossRate float64
	// ProcJitter adds relative per-delivery latency noise (e.g. 0.05 for
	// ±5%), modelling CSMA backoff and stack scheduling variance. Zero
	// keeps deliveries deterministic.
	ProcJitter float64
	// Rng drives loss and jitter sampling; nil uses a fixed seed.
	Rng *rand.Rand
	// Realtime runs the network on the wall clock (see RealtimeClock):
	// the event loop gets its own goroutine and handlers dispatch from a
	// bounded worker pool. The default is the deterministic virtual clock.
	Realtime bool
	// TimeScale compresses virtual time relative to wall time in realtime
	// mode (1 or 0 = real time; 100 = 100x accelerated). Ignored by the
	// virtual clock.
	TimeScale float64
	// Workers bounds the realtime handler pool (0 = min(GOMAXPROCS, 8)) and,
	// with Zones > 1, the sharded clock's per-round parallelism: 1 forces the
	// sequential single-loop schedule (bit-identical to any parallel run),
	// 0 means GOMAXPROCS. Ignored by the single-zone virtual clock.
	Workers int
	// Zones partitions the network into that many address zones, each with
	// its own event heap, RNG stream and lock domain, run by the sharded
	// conservative-PDES clock (see ShardedClock). Node zone = the address's
	// zone field (bytes 10..11) modulo Zones. 0 or 1 keeps the single-loop
	// VirtualClock; ignored in realtime mode.
	Zones int
	// Seed derives the per-zone RNG streams when Zones > 1 (0 = the fixed
	// default). The single-zone clock uses Rng as before.
	Seed int64
	// GlobalLookahead pins the sharded clock to the single global one-hop
	// lookahead quantum instead of the per-lane-pair matrix derived from the
	// cross-zone topology (see Lookahead). The global quantum is the
	// conservative pre-matrix behaviour; this is the comparison/escape knob.
	GlobalLookahead bool
}

// Stats counts network activity.
type Stats struct {
	UnicastSent   int
	MulticastSent int
	Transmissions int // per-hop frame transmissions, the energy-relevant count
	Delivered     int
	Lost          int
	// NoHandler counts datagrams that reached a node with no handler bound
	// to the destination port: the embedded stack drops them (ICMPv6 port
	// unreachable is not generated on these motes).
	NoHandler int
}

// counters is the internal, lock-free form of Stats: handlers on different
// pool workers bump counts without touching any shared lock.
type counters struct {
	unicastSent   atomic.Int64
	multicastSent atomic.Int64
	transmissions atomic.Int64
	delivered     atomic.Int64
	lost          atomic.Int64
	noHandler     atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		UnicastSent:   int(c.unicastSent.Load()),
		MulticastSent: int(c.multicastSent.Load()),
		Transmissions: int(c.transmissions.Load()),
		Delivered:     int(c.delivered.Load()),
		Lost:          int(c.lost.Load()),
		NoHandler:     int(c.noHandler.Load()),
	}
}

// Network is the simulated internetwork.
type Network struct {
	cfg   Config
	clock Clock
	// Exactly one of vclock/sclock/rclock is set, aliasing clock.
	vclock *VirtualClock
	sclock *ShardedClock
	rclock *RealtimeClock

	// rngMu guards the loss/jitter stream; draws stay ordered and
	// reproducible in virtual mode (single driving goroutine).
	rngMu sync.Mutex
	rng   *rand.Rand
	// zoneRngs are the per-zone loss/jitter streams of a sharded network
	// (draws key on the SENDER's zone, so each stream is consumed in the
	// sender lane's deterministic execution order). nil when Zones <= 1.
	zoneRngs []zoneRng
	// zoneMuts queues group-membership mutations issued mid-round; the
	// sharded clock's barrier applies them in (lane, emission) order so
	// membership is identical under parallel and sequential execution.
	zoneMuts []zoneMutQueue

	// topoMu guards the topology: the node table, anycast and multicast
	// membership, per-node handler bindings and group sets. Read-mostly
	// after setup, so deliveries and sends share it as readers.
	topoMu  sync.RWMutex
	nodes   map[netip.Addr]*Node
	anycast map[netip.Addr][]*Node
	// members indexes multicast group membership so sends visit only
	// members, never the full node table.
	members map[netip.Addr]map[*Node]struct{}
	// lookahead is the per-lane-pair lookahead matrix feeding the sharded
	// clock's barrier windows; nil on single-zone/realtime networks and when
	// Config.GlobalLookahead pins the global quantum. Maintained under topoMu
	// (AddNode only; topology never shrinks).
	lookahead *Lookahead

	// Route caches. Parent links are immutable after AddNode; both caches
	// are flushed on AddNode (new backbone roots change the disjoint-tree
	// synthetic paths). distMu guards the per-pair hop-count cache
	// (double-checked fill, a leaf lock). plansMu guards only the
	// group→groupPlans table; each group carries its own lock, so realtime
	// plan warmup for different groups never serializes on one mutex.
	// Group churn (JoinGroup/LeaveGroup) no longer invalidates plans: the
	// member's path is spliced into or out of every cached plan of the
	// group incrementally (O(depth) per cached source, not
	// O(members × depth) rebuilds). Lock order: topoMu → plansMu →
	// groupPlans.mu → distMu.
	distMu  sync.RWMutex
	dists   map[nodePair]int
	plansMu sync.RWMutex
	plans   map[netip.Addr]*groupPlans

	stats counters
}

// groupPlans is one group's stripe of the plan cache: the per-source SMRF
// dissemination plans plus the lock that guards them.
type groupPlans struct {
	mu    sync.RWMutex
	bySrc map[*Node]*mcastPlan
}

// zoneRng is one zone's loss/jitter stream. The mutex matters only for
// concurrent external senders; during sharded rounds each stream is drawn
// solely by its own lane's worker.
type zoneRng struct {
	mu sync.Mutex
	r  *rand.Rand
}

// zoneMutQueue buffers one zone's deferred membership mutations.
type zoneMutQueue struct {
	mu   sync.Mutex
	muts []memberMut
}

// memberMut is one deferred JoinGroup/LeaveGroup.
type memberMut struct {
	nd   *Node
	g    netip.Addr
	join bool
}

// New creates an empty network running on the clock Config selects: the
// deterministic virtual clock by default, the wall-clock runtime when
// cfg.Realtime is set.
func New(cfg Config) *Network {
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0x6030))
	}
	n := &Network{
		cfg:     cfg,
		rng:     rng,
		nodes:   map[netip.Addr]*Node{},
		anycast: map[netip.Addr][]*Node{},
		members: map[netip.Addr]map[*Node]struct{}{},
		dists:   map[nodePair]int{},
		plans:   map[netip.Addr]*groupPlans{},
	}
	switch {
	case cfg.Realtime:
		n.rclock = NewRealtimeClock(RealtimeConfig{TimeScale: cfg.TimeScale, Workers: cfg.Workers})
		n.clock = n.rclock
	case cfg.Zones > 1:
		n.sclock = NewShardedClock(cfg.Zones, cfg.Workers, ShardQuantum(cfg.ProcJitter))
		n.sclock.postRound = n.flushDeferredMembership
		if !cfg.GlobalLookahead {
			n.lookahead = newLookahead(n.sclock.Lanes())
			n.sclock.setLookahead(n.lookahead)
		}
		n.clock = n.sclock
		seed := cfg.Seed
		if seed == 0 {
			seed = 0x6030
		}
		n.zoneRngs = make([]zoneRng, cfg.Zones)
		for z := range n.zoneRngs {
			// Distinct deterministic streams per zone, derived from the seed
			// with a golden-ratio mix so adjacent zones do not correlate.
			n.zoneRngs[z].r = rand.New(rand.NewSource(seed ^ int64(uint64(z+1)*0x9e3779b97f4a7c15)))
		}
		n.zoneMuts = make([]zoneMutQueue, cfg.Zones)
	default:
		n.vclock = NewVirtualClock()
		n.clock = n.vclock
	}
	return n
}

// Sharded reports whether the network runs on the zone-sharded clock, and if
// so with how many zone lanes and whether rounds execute sequentially (the
// single-loop schedule).
func (n *Network) Sharded() (zones int, sequential bool, ok bool) {
	if n.sclock == nil {
		return 0, false, false
	}
	return n.sclock.Lanes(), n.sclock.Sequential(), true
}

// Clock returns the network's time-advancement engine.
func (n *Network) Clock() Clock { return n.clock }

// Realtime reports whether the network runs on the wall clock.
func (n *Network) Realtime() bool { return n.rclock != nil }

// TimeScale returns the virtual-per-wall factor (1 on the virtual clock,
// whose virtual time is unrelated to wall time).
func (n *Network) TimeScale() float64 {
	if n.rclock != nil {
		return n.rclock.TimeScale()
	}
	return 1
}

// Close stops the clock: in realtime mode it terminates the event loop and
// the worker pool (handlers already running finish first) and discards
// queued events; on the virtual clock it is a no-op. Close is idempotent.
// Do not call Close from inside a handler.
func (n *Network) Close() { n.clock.Stop() }

// Now returns the virtual time.
func (n *Network) Now() time.Duration { return n.clock.Now() }

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats.snapshot() }

// Node is one IPv6 host: a µPnP Thing, client or manager.
type Node struct {
	net *Network
	// addr, parent, depth and lane are immutable after AddNode.
	addr   netip.Addr
	parent *Node
	depth  int
	// lane is the node's zone lane on the sharded clock (0 otherwise):
	// the address's zone field modulo the zone count. Deliveries to the node
	// and timers the node arms execute on this lane.
	lane     int32
	handlers map[uint16]Handler
	groups   map[netip.Addr]bool
	// minDown[j] is the minimum depth offset of any lane-j node in this
	// node's subtree (-1 = none), the per-node ingredient of the incremental
	// lookahead matrix (see Lookahead). nil unless the matrix is maintained;
	// guarded by the Lookahead mutex.
	minDown []int32
}

// AddNode registers a host. parent nil makes it a DODAG root (or a node on
// the backbone); otherwise the node hangs off parent in the tree.
func (n *Network) AddNode(addr netip.Addr, parent *Node) (*Node, error) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("netsim: address %v already in use", addr)
	}
	node := &Node{net: n, addr: addr, parent: parent, handlers: map[uint16]Handler{}, groups: map[netip.Addr]bool{}}
	if parent != nil {
		node.depth = parent.depth + 1
	}
	if n.sclock != nil {
		node.lane = int32(int(ZoneFromAddr(addr)) % n.sclock.Lanes())
	}
	n.nodes[addr] = node
	if n.lookahead != nil {
		n.lookahead.addNode(node)
	}
	n.invalidateRoutes()
	return node, nil
}

// invalidateRoutes drops every cached route (topoMu held, so no plan builder
// can interleave). Topology only grows, but conservatively flushing on
// AddNode keeps the caches trivially correct and costs nothing in steady
// state (nodes are added once, messages flow forever after). Group churn
// does NOT come through here — it splices plans incrementally.
func (n *Network) invalidateRoutes() {
	n.distMu.Lock()
	clear(n.dists)
	n.distMu.Unlock()
	n.plansMu.Lock()
	clear(n.plans)
	n.plansMu.Unlock()
}

// Addr returns the node's unicast address.
func (nd *Node) Addr() netip.Addr { return nd.addr }

// Depth returns the node's depth in the DODAG (root = 0).
func (nd *Node) Depth() int { return nd.depth }

// Zone returns the node's address zone (the 16-bit field at bytes 10..11).
func (nd *Node) Zone() uint16 { return ZoneFromAddr(nd.addr) }

// Now returns the node's view of virtual time: on the sharded clock this is
// the node's lane-local time (deterministic inside a round — the global clock
// only advances at barriers), elsewhere the network clock. Node-side code
// (Things, clients, the manager) should timestamp and schedule through these
// node-affine methods so sharded runs stay bit-identical.
func (nd *Node) Now() time.Duration {
	if sc := nd.net.sclock; sc != nil {
		return sc.laneNow(nd.lane)
	}
	return nd.net.clock.Now()
}

// Schedule runs fn at the node's Now()+delay, on the node's zone lane.
func (nd *Node) Schedule(delay time.Duration, fn func()) {
	if sc := nd.net.sclock; sc != nil {
		sc.scheduleLane(nd.lane, delay, fn)
		return
	}
	nd.net.clock.Schedule(delay, fn)
}

// ScheduleCancelable runs fn at the node's Now()+delay on the node's zone
// lane and returns a cancel function (see Clock.ScheduleCancelable).
func (nd *Node) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	if sc := nd.net.sclock; sc != nil {
		return sc.scheduleCancelableLane(nd.lane, delay, fn)
	}
	return nd.net.clock.ScheduleCancelable(delay, fn)
}

// ScheduleExpiry queues a typed expiry event on the node's zone lane (see
// Network.ScheduleExpiry for semantics).
func (nd *Node) ScheduleExpiry(delay time.Duration, e Expirer, seq uint64, tok any) ExpiryRef {
	n := nd.net
	if n.sclock != nil {
		return n.sclock.scheduleExpiryLane(nd.lane, delay, e, seq, tok)
	}
	if n.vclock != nil {
		return n.vclock.scheduleExpiry(delay, e, seq, tok)
	}
	return n.rclock.scheduleExpiry(delay, e, seq, tok)
}

// Bind registers the datagram handler for a UDP port.
func (nd *Node) Bind(port uint16, h Handler) {
	nd.net.topoMu.Lock()
	defer nd.net.topoMu.Unlock()
	nd.handlers[port] = h
}

// Unbind removes the datagram handler for a UDP port; subsequent arrivals at
// the port drop as NoHandler. With LeaveAnycast this models a process crash:
// the node stays in the routing tree (its radio keeps relaying), but nothing
// listens any more.
func (nd *Node) Unbind(port uint16) {
	nd.net.topoMu.Lock()
	defer nd.net.topoMu.Unlock()
	delete(nd.handlers, port)
}

// JoinGroup subscribes the node to a multicast group. Cached SMRF plans for
// the group are maintained incrementally: the new member's tree path is
// spliced into every cached per-source plan (O(depth) each) instead of
// invalidating and rebuilding them from all members.
// Membership changes issued from inside a sharded round (a handler joining
// during a driver install, say) are deferred to the round's barrier and
// applied there in (zone lane, emission) order: mid-window the change would
// race concurrently executing lanes' plan lookups, making the delivered set
// depend on worker interleaving. The deferral makes the semantics uniform —
// on the sharded clock, membership changes take effect at the next window
// boundary (at most one lookahead quantum later) in every execution mode.
func (nd *Node) JoinGroup(g netip.Addr) {
	n := nd.net
	if n.deferMembership(nd, g, true) {
		return
	}
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.joinLocked(nd, g)
}

func (n *Network) joinLocked(nd *Node, g netip.Addr) {
	if nd.groups[g] {
		return
	}
	nd.groups[g] = true
	set := n.members[g]
	if set == nil {
		set = map[*Node]struct{}{}
		n.members[g] = set
	}
	set[nd] = struct{}{}
	n.spliceMember(g, nd, true)
}

// LeaveGroup unsubscribes the node, splicing its path out of every cached
// plan of the group.
func (nd *Node) LeaveGroup(g netip.Addr) {
	n := nd.net
	if n.deferMembership(nd, g, false) {
		return
	}
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.leaveLocked(nd, g)
}

func (n *Network) leaveLocked(nd *Node, g netip.Addr) {
	if !nd.groups[g] {
		return
	}
	delete(nd.groups, g)
	if set := n.members[g]; set != nil {
		delete(set, nd)
		if len(set) == 0 {
			delete(n.members, g)
		}
	}
	n.spliceMember(g, nd, false)
}

// deferMembership queues a membership change when issued mid-round on the
// sharded clock, reporting whether it was deferred. Outside rounds (setup
// code, the driving goroutine between windows) changes apply immediately.
func (n *Network) deferMembership(nd *Node, g netip.Addr, join bool) bool {
	sc := n.sclock
	if sc == nil || !sc.inRound.Load() {
		return false
	}
	q := &n.zoneMuts[nd.lane]
	q.mu.Lock()
	q.muts = append(q.muts, memberMut{nd: nd, g: g, join: join})
	q.mu.Unlock()
	return true
}

// flushDeferredMembership applies the queued membership mutations at a
// sharded barrier, in (zone lane, emission) order, under the topology lock.
// Lane workers are parked, so this is the serial phase of the round.
func (n *Network) flushDeferredMembership() {
	locked := false
	for z := range n.zoneMuts {
		q := &n.zoneMuts[z]
		q.mu.Lock()
		muts := q.muts
		q.muts = nil
		q.mu.Unlock()
		if len(muts) == 0 {
			continue
		}
		if !locked {
			n.topoMu.Lock()
			defer n.topoMu.Unlock()
			locked = true
		}
		for _, m := range muts {
			if m.join {
				n.joinLocked(m.nd, m.g)
			} else {
				n.leaveLocked(m.nd, m.g)
			}
		}
	}
}

// spliceMember applies one membership change to every cached plan of the
// group. Caller holds topoMu (write), which excludes all senders and plan
// builders; the group's own lock is still taken to order the write against
// the striped readers' memory model.
func (n *Network) spliceMember(g netip.Addr, nd *Node, add bool) {
	n.plansMu.RLock()
	gp := n.plans[g]
	n.plansMu.RUnlock()
	if gp == nil {
		return
	}
	gp.mu.Lock()
	defer gp.mu.Unlock()
	for src, plan := range gp.bySrc {
		if src == nd {
			continue // a plan never targets its own source
		}
		if add {
			plan.addMember(n, src, nd)
		} else {
			plan.removeMember(n, src, nd)
		}
	}
}

// InGroup reports group membership.
func (nd *Node) InGroup(g netip.Addr) bool {
	nd.net.topoMu.RLock()
	defer nd.net.topoMu.RUnlock()
	return nd.groups[g]
}

// JoinAnycast registers the node as a member of an anycast address
// (Section 5: the µPnP manager uses anycast for redundancy).
func (n *Network) JoinAnycast(a netip.Addr, nd *Node) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.anycast[a] = append(n.anycast[a], nd)
}

// LeaveAnycast withdraws the node from an anycast address: subsequent
// datagrams to the address route to the nearest remaining member (the
// Section 5 failover — a crashed manager stops being a candidate while the
// survivors keep serving). Member order among the survivors is preserved, so
// nearest-member tie-breaks stay deterministic. Leaving an address the node
// never joined is a no-op.
func (n *Network) LeaveAnycast(a netip.Addr, nd *Node) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	members := n.anycast[a]
	for i, m := range members {
		if m == nd {
			n.anycast[a] = append(members[:i:i], members[i+1:]...)
			if len(n.anycast[a]) == 0 {
				delete(n.anycast, a)
			}
			return
		}
	}
}

// nodePair keys the per-pair route caches.
type nodePair [2]*Node

// treeDistance returns the hop count between two nodes through the DODAG.
// parent/depth are immutable after AddNode, so the walk needs no lock.
func treeDistance(a, b *Node) int {
	seen := map[*Node]int{}
	for d, x := 0, a; x != nil; d, x = d+1, x.parent {
		seen[x] = d
	}
	for d, x := 0, b; x != nil; d, x = d+1, x.parent {
		if up, ok := seen[x]; ok {
			return up + d
		}
	}
	// Disjoint trees: treat as one hop over the backbone plus both depths.
	return a.depth + b.depth + 1
}

// distance is treeDistance through the per-pair cache (anycast
// nearest-member selection runs it for every member on every request).
// Callers hold topoMu (read or write); the cache fill double-checks under
// distMu so concurrent senders race benignly on identical values.
func (n *Network) distance(a, b *Node) int {
	if a == b {
		return 0
	}
	key := nodePair{a, b}
	n.distMu.RLock()
	d, ok := n.dists[key]
	n.distMu.RUnlock()
	if ok {
		return d
	}
	d = treeDistance(a, b)
	n.warmDist(a, b, d)
	return d
}

// warmDist stores a known pair distance in both directions.
func (n *Network) warmDist(a, b *Node, d int) {
	n.distMu.Lock()
	n.dists[nodePair{a, b}] = d
	n.dists[nodePair{b, a}] = d
	n.distMu.Unlock()
}

// pathEntry is one computed tree route: hop count plus the ordered edge
// list. Entries are scratch state for plan construction — the edge lists
// live only until the plan's edge union is taken, while the durable caches
// hold hop counts (dists) and finished plans.
type pathEntry struct {
	hops  int
	edges [][2]*Node
}

// buildPath walks the tree path src->dst, recording its edges and hop
// count. Disjoint trees route over a synthetic backbone edge between roots.
// Pure tree-walk over immutable parent links; no locks required.
func buildPath(src, dst *Node) *pathEntry {
	anc := map[*Node]bool{}
	for x := src; x != nil; x = x.parent {
		anc[x] = true
	}
	var meet *Node
	for x := dst; x != nil; x = x.parent {
		if anc[x] {
			meet = x
			break
		}
	}
	e := &pathEntry{}
	if meet == nil {
		rootA, rootB := src, dst
		for rootA.parent != nil {
			rootA = rootA.parent
		}
		for rootB.parent != nil {
			rootB = rootB.parent
		}
		up := buildPath(src, rootA)
		down := buildPath(rootB, dst)
		e.hops = up.hops + 1 + down.hops
		e.edges = make([][2]*Node, 0, len(up.edges)+1+len(down.edges))
		e.edges = append(e.edges, up.edges...)
		e.edges = append(e.edges, [2]*Node{rootA, rootB})
		e.edges = append(e.edges, down.edges...)
		return e
	}
	for x := src; x != meet; x = x.parent {
		e.edges = append(e.edges, [2]*Node{x, x.parent})
		e.hops++
	}
	for x := dst; x != meet; x = x.parent {
		e.edges = append(e.edges, [2]*Node{x.parent, x})
		e.hops++
	}
	return e
}

// mcastPlan is a cached SMRF dissemination for one (group, source) pair: the
// member targets with their hop counts, an index for O(1) membership splices,
// and the reference-counted union of path edges (its size is the per-send
// transmission count under duplicate suppression; the counts let a member's
// path be removed without recomputing the union).
type mcastPlan struct {
	targets  []mcastTarget
	index    map[*Node]int    // member -> position in targets
	edgeRefs map[[2]*Node]int // path edge -> member paths crossing it
}

type mcastTarget struct {
	node *Node
	hops int
}

// addMember splices one member's path into the plan: O(path depth). The
// caller holds topoMu (write) and the group's plan lock.
func (p *mcastPlan) addMember(n *Network, src, member *Node) {
	if _, dup := p.index[member]; dup {
		return
	}
	pe := buildPath(src, member)
	for _, e := range pe.edges {
		p.edgeRefs[e]++
	}
	p.index[member] = len(p.targets)
	p.targets = append(p.targets, mcastTarget{node: member, hops: pe.hops})
	n.warmDist(src, member, pe.hops)
}

// removeMember splices one member's path out of the plan: O(path depth),
// with a swap-remove of the target entry. Parent links are immutable, so
// the path walked here is the same one addMember (or the initial build)
// counted in.
func (p *mcastPlan) removeMember(n *Network, src, member *Node) {
	i, ok := p.index[member]
	if !ok {
		return
	}
	pe := buildPath(src, member)
	for _, e := range pe.edges {
		if c := p.edgeRefs[e] - 1; c == 0 {
			delete(p.edgeRefs, e)
		} else {
			p.edgeRefs[e] = c
		}
	}
	last := len(p.targets) - 1
	p.targets[i] = p.targets[last]
	p.targets[last] = mcastTarget{}
	p.targets = p.targets[:last]
	if i < last {
		p.index[p.targets[i].node] = i
	}
	delete(p.index, member)
}

// multicastPlan returns the cached (group, src) dissemination plan, building
// it from the membership index on first use. The caller holds topoMu.RLock
// (so membership cannot change underneath); lookups and builds take only the
// group's own stripe lock, so concurrent warmup of different groups does not
// serialize. Target order is deterministic — (hops, address) at build time,
// append/swap-remove order across splices — which keeps virtual-clock runs
// reproducible.
func (n *Network) multicastPlan(src *Node, group netip.Addr) *mcastPlan {
	n.plansMu.RLock()
	gp := n.plans[group]
	n.plansMu.RUnlock()
	if gp == nil {
		n.plansMu.Lock()
		gp = n.plans[group]
		if gp == nil {
			gp = &groupPlans{bySrc: map[*Node]*mcastPlan{}}
			n.plans[group] = gp
		}
		n.plansMu.Unlock()
	}
	gp.mu.RLock()
	plan := gp.bySrc[src]
	gp.mu.RUnlock()
	if plan != nil {
		return plan
	}
	gp.mu.Lock()
	defer gp.mu.Unlock()
	if plan := gp.bySrc[src]; plan != nil {
		return plan
	}
	plan = n.buildPlan(src, group)
	gp.bySrc[src] = plan
	return plan
}

// buildPlan computes a full (group, src) plan from the membership index.
// Caller holds topoMu (read or write) and the group's plan write lock.
func (n *Network) buildPlan(src *Node, group netip.Addr) *mcastPlan {
	plan := &mcastPlan{
		index:    map[*Node]int{},
		edgeRefs: map[[2]*Node]int{},
	}
	for member := range n.members[group] {
		if member == src {
			continue
		}
		p := buildPath(src, member)
		for _, edge := range p.edges {
			plan.edgeRefs[edge]++
		}
		plan.targets = append(plan.targets, mcastTarget{node: member, hops: p.hops})
		// The walk already knows the distance; warm the unicast cache too.
		n.warmDist(src, member, p.hops)
	}
	sort.Slice(plan.targets, func(i, j int) bool {
		a, b := plan.targets[i], plan.targets[j]
		if a.hops != b.hops {
			return a.hops < b.hops
		}
		return a.node.addr.Less(b.node.addr)
	})
	for i, t := range plan.targets {
		plan.index[t.node] = i
	}
	return plan
}

// Send transmits a UDP datagram. Unicast goes through the tree; multicast
// (ff00::/8) is SMRF-disseminated to all group members; anycast addresses
// reach the nearest registered member. Send is safe for concurrent use;
// concurrent senders share the topology as readers.
//
// The payload is copied into a pooled buffer (the caller keeps ownership of
// its slice); hot paths that can hand ownership over should encode straight
// into an AcquireBuf buffer and use SendBuf instead.
func (nd *Node) Send(dst netip.Addr, port uint16, payload []byte) {
	pb := AcquireBuf()
	pb.B = append(pb.B, payload...)
	nd.SendBuf(dst, port, pb)
}

// SendBuf transmits a pooled payload buffer, taking ownership: the network
// releases the buffer after the final delivery handler returned (or on
// loss), so the caller must not touch pb afterwards. See Buf for the full
// ownership discipline.
func (nd *Node) SendBuf(dst netip.Addr, port uint16, pb *Buf) {
	n := nd.net
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	msg := Message{Src: nd.addr, Dst: dst, Port: port, Payload: pb.B}
	switch {
	case dst.IsMulticast():
		n.stats.multicastSent.Add(1)
		n.sendMulticast(nd, msg, pb)
	default:
		n.stats.unicastSent.Add(1)
		if members := n.anycast[dst]; len(members) > 0 {
			best := members[0]
			bestD := n.distance(nd, best)
			for _, m := range members[1:] {
				if d := n.distance(nd, m); d < bestD {
					best, bestD = m, d
				}
			}
			n.deliver(nd, best, msg, pb, bestD, false)
			return
		}
		target, ok := n.nodes[dst]
		if !ok {
			n.stats.lost.Add(1)
			pb.Release()
			return
		}
		n.deliver(nd, target, msg, pb, n.distance(nd, target), false)
	}
}

// sendMulticast implements SMRF-style dissemination: the datagram travels
// the tree from the source; every edge on the union of paths to the members
// is one transmission (duplicate suppression, the key SMRF property versus
// naive flooding). The fan-out shares one payload buffer, holding one
// reference per receiver. Caller holds topoMu.RLock.
func (n *Network) sendMulticast(src *Node, msg Message, pb *Buf) {
	plan := n.multicastPlan(src, msg.Dst)
	if len(plan.targets) == 0 {
		pb.Release()
		return
	}
	pb.retain(int32(len(plan.targets)) - 1)
	for _, t := range plan.targets {
		n.deliver(src, t.node, msg, pb, t.hops, true)
	}
	n.stats.transmissions.Add(int64(len(plan.edgeRefs)))
}

// delivery is one scheduled datagram arrival, pooled so steady-state
// deliveries allocate neither a closure nor an event.
type delivery struct {
	net *Network
	dst *Node
	msg Message
	buf *Buf
}

var deliveryPool = sync.Pool{New: func() any { return new(delivery) }}

// run executes the arrival on the clock's firing goroutine: dispatch to the
// bound handler, then release the payload reference (handlers only borrow
// Message.Payload).
func (d *delivery) run() {
	n, dst, msg, pb := d.net, d.dst, d.msg, d.buf
	*d = delivery{}
	deliveryPool.Put(d)
	n.topoMu.RLock()
	h := dst.handlers[msg.Port]
	n.topoMu.RUnlock()
	if h == nil {
		n.stats.noHandler.Add(1)
	} else {
		h(msg)
		n.stats.delivered.Add(1)
	}
	pb.Release()
}

// deliver schedules a delivery after the per-hop latency, applying per-hop
// loss. Caller holds topoMu.RLock and has accounted one payload reference
// for this delivery; deliver consumes it (on loss, or after the handler).
func (n *Network) deliver(src, dst *Node, msg Message, pb *Buf, hops int, multicast bool) {
	if hops == 0 {
		hops = 1 // loopback or same-node corner: still one stack traversal
	}
	if !multicast {
		n.stats.transmissions.Add(int64(hops))
	}
	// Loss/jitter draws key on the SENDER: on the sharded clock each zone has
	// its own stream, consumed in the sender lane's deterministic execution
	// order, so parallel and sequential rounds draw identically.
	var mu *sync.Mutex
	var rng *rand.Rand
	if n.zoneRngs != nil {
		zr := &n.zoneRngs[src.lane]
		mu, rng = &zr.mu, zr.r
	} else {
		mu, rng = &n.rngMu, n.rng
	}
	mu.Lock()
	lost := false
	for h := 0; h < hops; h++ {
		if n.cfg.LossRate > 0 && rng.Float64() < n.cfg.LossRate {
			lost = true
			break
		}
	}
	msg.Hops = hops
	delay := time.Duration(hops) * PacketDelay(len(msg.Payload), multicast)
	if !lost && n.cfg.ProcJitter > 0 {
		dev := (rng.Float64()*2 - 1) * n.cfg.ProcJitter
		delay = time.Duration(float64(delay) * (1 + dev))
	}
	mu.Unlock()
	if lost {
		n.stats.lost.Add(1)
		pb.Release()
		return
	}
	d := deliveryPool.Get().(*delivery)
	d.net, d.dst, d.msg, d.buf = n, dst, msg, pb
	n.scheduleDelivery(src, delay, d)
}

// scheduleDelivery routes a pooled delivery to the concrete clock (the Clock
// interface stays closure-only; deliveries are a package-internal fast path).
// On the sharded clock the event lands on the DESTINATION's lane, timed from
// the SOURCE's lane-local clock.
func (n *Network) scheduleDelivery(src *Node, delay time.Duration, d *delivery) {
	switch {
	case n.vclock != nil:
		n.vclock.scheduleDelivery(delay, d)
	case n.sclock != nil:
		n.sclock.scheduleDelivery(src.lane, d.dst.lane, delay, d)
	default:
		n.rclock.scheduleDelivery(delay, d)
	}
}

// Schedule runs fn at Now()+delay (virtual).
func (n *Network) Schedule(delay time.Duration, fn func()) {
	n.clock.Schedule(delay, fn)
}

// ScheduleCancelable runs fn at Now()+delay and returns a cancel function.
// A cancelled event is dropped entirely: it neither runs nor advances the
// clock to its timestamp — request deadlines use this so completed
// requests leave no dead time behind. Cancelling after the event fired (or
// cancelling twice) is a no-op.
func (n *Network) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	return n.clock.ScheduleCancelable(delay, fn)
}

// ScheduleExpiry queues a typed expiry event at Now()+delay: the clock calls
// e.ExpireEvent(seq, tok) instead of a closure, so request deadlines on the
// hot path cost no allocation to arm and none to cancel. Routed to the
// concrete clock like scheduleDelivery (the Clock interface stays
// closure-only). On a stopped realtime clock the returned ref is inert and
// the event never fires.
func (n *Network) ScheduleExpiry(delay time.Duration, e Expirer, seq uint64, tok any) ExpiryRef {
	if n.vclock != nil {
		return n.vclock.scheduleExpiry(delay, e, seq, tok)
	}
	if n.sclock != nil {
		return n.sclock.scheduleExpiryLane(0, delay, e, seq, tok)
	}
	return n.rclock.scheduleExpiry(delay, e, seq, tok)
}

// queueCap exposes the event queue's backing capacity; leak tests assert it
// stays bounded across long schedule/cancel/step runs.
func (n *Network) queueCap() int {
	if n.vclock != nil {
		return n.vclock.queueCap()
	}
	if n.sclock != nil {
		return n.sclock.queueCap()
	}
	return n.rclock.queueCap()
}

// Step executes the next scheduled event, advancing the virtual clock; on
// the sharded clock one Step is one barrier round (up to a lookahead quantum
// of virtual time). It reports whether an event ran. On the realtime clock
// there is nothing for the caller to drive — the loop goroutine fires
// events — so Step always reports false.
func (n *Network) Step() bool {
	if n.vclock != nil {
		return n.vclock.Step()
	}
	if n.sclock != nil {
		return n.sclock.Step()
	}
	return false
}

// StepUntil advances the network by one bounded slice of work: on the sharded
// clock it executes at most one barrier round whose windows are clamped to
// the deadline (inclusive), on the virtual clock it runs events up to the
// deadline, and on the realtime clock it is a no-op (the loop goroutine
// advances on its own). It reports whether any event ran; when no pending
// event is due by the deadline the clock simply advances to it. Cooperative
// drivers (the SDK's conducted strands) use the round granularity to re-check
// wake conditions between rounds without overshooting their next deadline.
func (n *Network) StepUntil(deadline time.Duration) bool {
	switch {
	case n.sclock != nil:
		return n.sclock.StepUntil(deadline)
	case n.vclock != nil:
		return n.vclock.RunUntil(deadline) > 0
	default:
		return false
	}
}

// ShardStats returns the sharded clock's barrier telemetry, reporting ok
// false on non-sharded networks.
func (n *Network) ShardStats() (ShardStats, bool) {
	if n.sclock == nil {
		return ShardStats{}, false
	}
	return n.sclock.Stats(), true
}

// RunUntilIdle drives the network until no events remain. On the virtual
// clock it steps inline (bounded by maxSteps; 0 means the 1e6 default) and
// returns the number of steps. On the realtime clock it blocks until the
// runtime is idle — queue drained, no handler queued or running — and
// returns 0; self-rescheduling activities (active streams) never go idle,
// so bound those waits with RunUntil instead.
func (n *Network) RunUntilIdle(maxSteps int) int {
	if n.vclock != nil {
		return n.vclock.RunUntilIdle(maxSteps)
	}
	if n.sclock != nil {
		return n.sclock.RunUntilIdle(maxSteps)
	}
	n.rclock.WaitIdle()
	return 0
}

// RunUntilQuiesced drives the network until it is idle or until the virtual
// deadline passes, whichever comes first, and reports whether it went idle —
// the bounded drain RunUntilIdle cannot provide while self-rescheduling
// activities (active streams) keep the queue populated. On the virtual clock
// the caller's goroutine executes the due events inline; on the realtime
// clock the call blocks until the runtime drains or the deadline passes on
// the (scaled) wall clock.
func (n *Network) RunUntilQuiesced(deadline time.Duration) bool {
	if n.vclock != nil {
		return n.vclock.RunUntilQuiesced(deadline)
	}
	if n.sclock != nil {
		return n.sclock.RunUntilQuiesced(deadline)
	}
	return n.rclock.WaitIdleUntil(deadline)
}

// RunUntil processes events up to (and including) the given virtual
// deadline, then advances the clock to the deadline. On the virtual clock
// the caller's goroutine executes the events inline; on the realtime clock
// the call simply blocks (sleeping on the wall clock, compressed by the
// time scale) until the deadline passes on the loop goroutine.
func (n *Network) RunUntil(deadline time.Duration) int {
	if n.vclock != nil {
		return n.vclock.RunUntil(deadline)
	}
	if n.sclock != nil {
		return n.sclock.RunUntil(deadline)
	}
	for {
		now := n.rclock.Now()
		if now >= deadline {
			return 0
		}
		wall := time.Duration(float64(deadline-now) / n.rclock.TimeScale())
		if wall < time.Millisecond {
			wall = time.Millisecond
		}
		time.Sleep(wall)
	}
}
