// Package netsim is a discrete-event simulator of the network substrate the
// µPnP prototype runs on (Section 6): IPv6 over 6LoWPAN/802.15.4, an
// RPL-style tree (DODAG) for routing, SMRF-style multicast forwarding down
// the tree, and anycast to the nearest group member. Nodes exchange UDP
// datagrams; per-packet latency models the 250 kbit/s 802.15.4 wire rate,
// 6LoWPAN fragmentation and the embedded stack's per-packet processing cost.
//
// Time-advancement is pluggable (see Clock). Under the default VirtualClock
// the simulator is deterministic: Send schedules deliveries, Run/RunUntilIdle
// advance time, handlers execute inline at delivery time and may send
// further messages. Under the RealtimeClock (Config.Realtime) the event loop
// runs on its own goroutine against the wall clock and handlers dispatch
// from a bounded worker pool, so many client goroutines can block on
// in-flight requests concurrently.
//
// The implementation is built to stay fast at thousands of nodes and many
// concurrent handlers: the event queue is a binary heap with lazy deletion
// (Schedule and Step are O(log n), cancelled events are skipped on pop and
// compacted away when they dominate the queue), multicast sends consult a
// per-group membership index instead of scanning every node, and tree routes
// (per-pair paths, edge sets and anycast distances) are cached with
// invalidation on AddNode/JoinGroup/LeaveGroup. The former single Network
// mutex is sharded by role — topology (RWMutex, read-mostly after setup),
// route caches (RWMutex, double-checked fills), loss/jitter sampling, atomic
// stats counters, and the clock's own lock — so concurrent handlers do not
// serialize on one lock.
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Port6030 is the UDP port all µPnP protocol messages use (Section 5.2).
const Port6030 = 6030

// Link and stack timing model, calibrated against the Contiki 2.7 /
// ATMega128RFA1 measurements of Table 4.
const (
	// WireBitsPerSecond is the 802.15.4 PHY rate.
	WireBitsPerSecond = 250_000
	// FrameCapacity is the usable 6LoWPAN payload per 802.15.4 frame;
	// larger datagrams fragment.
	FrameCapacity = 80
	// FrameOverheadBytes covers PHY/MAC/6LoWPAN headers per frame.
	FrameOverheadBytes = 23
	// ProcPerPacket is the embedded stack's per-datagram processing cost
	// (CSMA, 6LoWPAN compression, RPL, UDP) on a 16 MHz AVR.
	ProcPerPacket = 26 * time.Millisecond
	// MulticastExtra is the additional SMRF processing and duplicate-MAC
	// cost for multicast datagrams.
	MulticastExtra = 19 * time.Millisecond
)

// PacketDelay returns the one-hop latency of a datagram of the given payload
// size.
func PacketDelay(payloadBytes int, multicast bool) time.Duration {
	frames := (payloadBytes + FrameCapacity - 1) / FrameCapacity
	if frames == 0 {
		frames = 1
	}
	wireBytes := payloadBytes + frames*FrameOverheadBytes
	wire := time.Duration(float64(wireBytes*8) / WireBitsPerSecond * float64(time.Second))
	d := ProcPerPacket + wire
	if multicast {
		d += MulticastExtra
	}
	return d
}

// Message is a UDP datagram in flight or delivered.
type Message struct {
	Src     netip.Addr
	Dst     netip.Addr
	Port    uint16
	Payload []byte
	// Hops the datagram traversed (filled at delivery).
	Hops int
}

// Handler consumes a delivered datagram. Under the realtime clock handlers
// for independent deliveries run concurrently on pool workers; handlers must
// therefore be safe for concurrent use when the network runs in realtime
// mode.
type Handler func(Message)

// Config tunes the simulated network.
type Config struct {
	// LossRate is the per-hop probability of losing a frame (0..1).
	LossRate float64
	// ProcJitter adds relative per-delivery latency noise (e.g. 0.05 for
	// ±5%), modelling CSMA backoff and stack scheduling variance. Zero
	// keeps deliveries deterministic.
	ProcJitter float64
	// Rng drives loss and jitter sampling; nil uses a fixed seed.
	Rng *rand.Rand
	// Realtime runs the network on the wall clock (see RealtimeClock):
	// the event loop gets its own goroutine and handlers dispatch from a
	// bounded worker pool. The default is the deterministic virtual clock.
	Realtime bool
	// TimeScale compresses virtual time relative to wall time in realtime
	// mode (1 or 0 = real time; 100 = 100x accelerated). Ignored by the
	// virtual clock.
	TimeScale float64
	// Workers bounds the realtime handler pool (0 = min(GOMAXPROCS, 8)).
	// Ignored by the virtual clock.
	Workers int
}

// Stats counts network activity.
type Stats struct {
	UnicastSent   int
	MulticastSent int
	Transmissions int // per-hop frame transmissions, the energy-relevant count
	Delivered     int
	Lost          int
	// NoHandler counts datagrams that reached a node with no handler bound
	// to the destination port: the embedded stack drops them (ICMPv6 port
	// unreachable is not generated on these motes).
	NoHandler int
}

// counters is the internal, lock-free form of Stats: handlers on different
// pool workers bump counts without touching any shared lock.
type counters struct {
	unicastSent   atomic.Int64
	multicastSent atomic.Int64
	transmissions atomic.Int64
	delivered     atomic.Int64
	lost          atomic.Int64
	noHandler     atomic.Int64
}

func (c *counters) snapshot() Stats {
	return Stats{
		UnicastSent:   int(c.unicastSent.Load()),
		MulticastSent: int(c.multicastSent.Load()),
		Transmissions: int(c.transmissions.Load()),
		Delivered:     int(c.delivered.Load()),
		Lost:          int(c.lost.Load()),
		NoHandler:     int(c.noHandler.Load()),
	}
}

// Network is the simulated internetwork.
type Network struct {
	cfg   Config
	clock Clock
	// Exactly one of vclock/rclock is set, aliasing clock.
	vclock *VirtualClock
	rclock *RealtimeClock

	// rngMu guards the loss/jitter stream; draws stay ordered and
	// reproducible in virtual mode (single driving goroutine).
	rngMu sync.Mutex
	rng   *rand.Rand

	// topoMu guards the topology: the node table, anycast and multicast
	// membership, per-node handler bindings and group sets. Read-mostly
	// after setup, so deliveries and sends share it as readers.
	topoMu  sync.RWMutex
	nodes   map[netip.Addr]*Node
	anycast map[netip.Addr][]*Node
	// members indexes multicast group membership so sends visit only
	// members, never the full node table.
	members map[netip.Addr]map[*Node]struct{}

	// routeMu guards the route caches (double-checked fill: readers take
	// the read lock, cache misses upgrade). Parent links are immutable
	// after AddNode, but both caches are invalidated on AddNode (new
	// backbone roots change the disjoint-tree synthetic paths); plans are
	// additionally invalidated per group on JoinGroup/LeaveGroup. Per-pair
	// edge lists are NOT cached: they are only consumed while building a
	// plan, and retaining them would pin O(members x depth) memory on deep
	// topologies. Lock order is always topoMu before routeMu.
	routeMu sync.RWMutex
	dists   map[nodePair]int
	plans   map[netip.Addr]map[*Node]*mcastPlan

	stats counters
}

// New creates an empty network running on the clock Config selects: the
// deterministic virtual clock by default, the wall-clock runtime when
// cfg.Realtime is set.
func New(cfg Config) *Network {
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0x6030))
	}
	n := &Network{
		cfg:     cfg,
		rng:     rng,
		nodes:   map[netip.Addr]*Node{},
		anycast: map[netip.Addr][]*Node{},
		members: map[netip.Addr]map[*Node]struct{}{},
		dists:   map[nodePair]int{},
		plans:   map[netip.Addr]map[*Node]*mcastPlan{},
	}
	if cfg.Realtime {
		n.rclock = NewRealtimeClock(RealtimeConfig{TimeScale: cfg.TimeScale, Workers: cfg.Workers})
		n.clock = n.rclock
	} else {
		n.vclock = NewVirtualClock()
		n.clock = n.vclock
	}
	return n
}

// Clock returns the network's time-advancement engine.
func (n *Network) Clock() Clock { return n.clock }

// Realtime reports whether the network runs on the wall clock.
func (n *Network) Realtime() bool { return n.rclock != nil }

// TimeScale returns the virtual-per-wall factor (1 on the virtual clock,
// whose virtual time is unrelated to wall time).
func (n *Network) TimeScale() float64 {
	if n.rclock != nil {
		return n.rclock.TimeScale()
	}
	return 1
}

// Close stops the clock: in realtime mode it terminates the event loop and
// the worker pool (handlers already running finish first) and discards
// queued events; on the virtual clock it is a no-op. Close is idempotent.
// Do not call Close from inside a handler.
func (n *Network) Close() { n.clock.Stop() }

// Now returns the virtual time.
func (n *Network) Now() time.Duration { return n.clock.Now() }

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats { return n.stats.snapshot() }

// Node is one IPv6 host: a µPnP Thing, client or manager.
type Node struct {
	net *Network
	// addr, parent and depth are immutable after AddNode.
	addr     netip.Addr
	parent   *Node
	depth    int
	handlers map[uint16]Handler
	groups   map[netip.Addr]bool
}

// AddNode registers a host. parent nil makes it a DODAG root (or a node on
// the backbone); otherwise the node hangs off parent in the tree.
func (n *Network) AddNode(addr netip.Addr, parent *Node) (*Node, error) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("netsim: address %v already in use", addr)
	}
	node := &Node{net: n, addr: addr, parent: parent, handlers: map[uint16]Handler{}, groups: map[netip.Addr]bool{}}
	if parent != nil {
		node.depth = parent.depth + 1
	}
	n.nodes[addr] = node
	n.invalidateRoutes()
	return node, nil
}

// invalidateRoutes drops every cached route (topoMu held, so no plan builder
// can interleave). Topology only grows, but conservatively flushing on
// AddNode keeps the caches trivially correct and costs nothing in steady
// state (nodes are added once, messages flow forever after).
func (n *Network) invalidateRoutes() {
	n.routeMu.Lock()
	clear(n.dists)
	clear(n.plans)
	n.routeMu.Unlock()
}

// Addr returns the node's unicast address.
func (nd *Node) Addr() netip.Addr { return nd.addr }

// Depth returns the node's depth in the DODAG (root = 0).
func (nd *Node) Depth() int { return nd.depth }

// Bind registers the datagram handler for a UDP port.
func (nd *Node) Bind(port uint16, h Handler) {
	nd.net.topoMu.Lock()
	defer nd.net.topoMu.Unlock()
	nd.handlers[port] = h
}

// JoinGroup subscribes the node to a multicast group.
func (nd *Node) JoinGroup(g netip.Addr) {
	n := nd.net
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if nd.groups[g] {
		return
	}
	nd.groups[g] = true
	set := n.members[g]
	if set == nil {
		set = map[*Node]struct{}{}
		n.members[g] = set
	}
	set[nd] = struct{}{}
	n.routeMu.Lock()
	delete(n.plans, g)
	n.routeMu.Unlock()
}

// LeaveGroup unsubscribes the node.
func (nd *Node) LeaveGroup(g netip.Addr) {
	n := nd.net
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if !nd.groups[g] {
		return
	}
	delete(nd.groups, g)
	if set := n.members[g]; set != nil {
		delete(set, nd)
		if len(set) == 0 {
			delete(n.members, g)
		}
	}
	n.routeMu.Lock()
	delete(n.plans, g)
	n.routeMu.Unlock()
}

// InGroup reports group membership.
func (nd *Node) InGroup(g netip.Addr) bool {
	nd.net.topoMu.RLock()
	defer nd.net.topoMu.RUnlock()
	return nd.groups[g]
}

// JoinAnycast registers the node as a member of an anycast address
// (Section 5: the µPnP manager uses anycast for redundancy).
func (n *Network) JoinAnycast(a netip.Addr, nd *Node) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	n.anycast[a] = append(n.anycast[a], nd)
}

// nodePair keys the per-pair route caches.
type nodePair [2]*Node

// treeDistance returns the hop count between two nodes through the DODAG.
// parent/depth are immutable after AddNode, so the walk needs no lock.
func treeDistance(a, b *Node) int {
	seen := map[*Node]int{}
	for d, x := 0, a; x != nil; d, x = d+1, x.parent {
		seen[x] = d
	}
	for d, x := 0, b; x != nil; d, x = d+1, x.parent {
		if up, ok := seen[x]; ok {
			return up + d
		}
	}
	// Disjoint trees: treat as one hop over the backbone plus both depths.
	return a.depth + b.depth + 1
}

// distance is treeDistance through the per-pair cache (anycast
// nearest-member selection runs it for every member on every request).
// Callers hold topoMu (read or write); the cache fill double-checks under
// routeMu so concurrent senders race benignly on identical values.
func (n *Network) distance(a, b *Node) int {
	if a == b {
		return 0
	}
	key := nodePair{a, b}
	n.routeMu.RLock()
	d, ok := n.dists[key]
	n.routeMu.RUnlock()
	if ok {
		return d
	}
	d = treeDistance(a, b)
	n.routeMu.Lock()
	n.dists[key] = d
	n.dists[nodePair{b, a}] = d
	n.routeMu.Unlock()
	return d
}

// pathEntry is one computed tree route: hop count plus the ordered edge
// list. Entries are scratch state for plan construction — the edge lists
// live only until the plan's edge union is taken, while the durable caches
// hold hop counts (dists) and finished plans.
type pathEntry struct {
	hops  int
	edges [][2]*Node
}

// buildPath walks the tree path src->dst, recording its edges and hop
// count. Disjoint trees route over a synthetic backbone edge between roots.
// Pure tree-walk over immutable parent links; no locks required.
func buildPath(src, dst *Node) *pathEntry {
	anc := map[*Node]bool{}
	for x := src; x != nil; x = x.parent {
		anc[x] = true
	}
	var meet *Node
	for x := dst; x != nil; x = x.parent {
		if anc[x] {
			meet = x
			break
		}
	}
	e := &pathEntry{}
	if meet == nil {
		rootA, rootB := src, dst
		for rootA.parent != nil {
			rootA = rootA.parent
		}
		for rootB.parent != nil {
			rootB = rootB.parent
		}
		up := buildPath(src, rootA)
		down := buildPath(rootB, dst)
		e.hops = up.hops + 1 + down.hops
		e.edges = make([][2]*Node, 0, len(up.edges)+1+len(down.edges))
		e.edges = append(e.edges, up.edges...)
		e.edges = append(e.edges, [2]*Node{rootA, rootB})
		e.edges = append(e.edges, down.edges...)
		return e
	}
	for x := src; x != meet; x = x.parent {
		e.edges = append(e.edges, [2]*Node{x, x.parent})
		e.hops++
	}
	for x := dst; x != meet; x = x.parent {
		e.edges = append(e.edges, [2]*Node{x.parent, x})
		e.hops++
	}
	return e
}

// mcastPlan is a cached SMRF dissemination: the member targets with their
// hop counts, and the size of the union of path edges (the per-send
// transmission count under duplicate suppression).
type mcastPlan struct {
	targets []mcastTarget
	edges   int
}

type mcastTarget struct {
	node *Node
	hops int
}

// multicastPlan returns the cached (group, src) dissemination plan, building
// it from the membership index on first use. Targets are ordered by
// (hops, address) so same-timestamp deliveries are deterministic. The caller
// holds topoMu.RLock (so membership cannot change underneath); the build
// runs under the routeMu write lock with a double-check.
func (n *Network) multicastPlan(src *Node, group netip.Addr) *mcastPlan {
	n.routeMu.RLock()
	plan := n.plans[group][src]
	n.routeMu.RUnlock()
	if plan != nil {
		return plan
	}
	n.routeMu.Lock()
	defer n.routeMu.Unlock()
	if plan := n.plans[group][src]; plan != nil {
		return plan
	}
	plan = &mcastPlan{}
	edgeSet := map[[2]*Node]struct{}{}
	for member := range n.members[group] {
		if member == src {
			continue
		}
		p := buildPath(src, member)
		for _, edge := range p.edges {
			edgeSet[edge] = struct{}{}
		}
		plan.targets = append(plan.targets, mcastTarget{node: member, hops: p.hops})
		// The walk already knows the distance; warm the unicast cache too.
		key := nodePair{src, member}
		if _, ok := n.dists[key]; !ok {
			n.dists[key] = p.hops
			n.dists[nodePair{member, src}] = p.hops
		}
	}
	plan.edges = len(edgeSet)
	sort.Slice(plan.targets, func(i, j int) bool {
		a, b := plan.targets[i], plan.targets[j]
		if a.hops != b.hops {
			return a.hops < b.hops
		}
		return a.node.addr.Less(b.node.addr)
	})
	bySrc := n.plans[group]
	if bySrc == nil {
		bySrc = map[*Node]*mcastPlan{}
		n.plans[group] = bySrc
	}
	bySrc[src] = plan
	return plan
}

// Send transmits a UDP datagram. Unicast goes through the tree; multicast
// (ff00::/8) is SMRF-disseminated to all group members; anycast addresses
// reach the nearest registered member. Send is safe for concurrent use;
// concurrent senders share the topology as readers.
func (nd *Node) Send(dst netip.Addr, port uint16, payload []byte) {
	n := nd.net
	n.topoMu.RLock()
	defer n.topoMu.RUnlock()
	msg := Message{Src: nd.addr, Dst: dst, Port: port, Payload: append([]byte(nil), payload...)}
	switch {
	case dst.IsMulticast():
		n.stats.multicastSent.Add(1)
		n.sendMulticast(nd, msg)
	default:
		n.stats.unicastSent.Add(1)
		if members := n.anycast[dst]; len(members) > 0 {
			best := members[0]
			bestD := n.distance(nd, best)
			for _, m := range members[1:] {
				if d := n.distance(nd, m); d < bestD {
					best, bestD = m, d
				}
			}
			n.deliver(nd, best, msg, bestD, false)
			return
		}
		target, ok := n.nodes[dst]
		if !ok {
			n.stats.lost.Add(1)
			return
		}
		n.deliver(nd, target, msg, n.distance(nd, target), false)
	}
}

// sendMulticast implements SMRF-style dissemination: the datagram travels
// the tree from the source; every edge on the union of paths to the members
// is one transmission (duplicate suppression, the key SMRF property versus
// naive flooding). Caller holds topoMu.RLock.
func (n *Network) sendMulticast(src *Node, msg Message) {
	plan := n.multicastPlan(src, msg.Dst)
	for _, t := range plan.targets {
		n.deliver(src, t.node, msg, t.hops, true)
	}
	n.stats.transmissions.Add(int64(plan.edges))
}

// deliver schedules a delivery after the per-hop latency, applying per-hop
// loss. Caller holds topoMu.RLock; the delivery closure reacquires it when
// the event fires.
func (n *Network) deliver(src, dst *Node, msg Message, hops int, multicast bool) {
	if hops == 0 {
		hops = 1 // loopback or same-node corner: still one stack traversal
	}
	if !multicast {
		n.stats.transmissions.Add(int64(hops))
	}
	n.rngMu.Lock()
	lost := false
	for h := 0; h < hops; h++ {
		if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
			lost = true
			break
		}
	}
	msg.Hops = hops
	delay := time.Duration(hops) * PacketDelay(len(msg.Payload), multicast)
	if !lost && n.cfg.ProcJitter > 0 {
		dev := (n.rng.Float64()*2 - 1) * n.cfg.ProcJitter
		delay = time.Duration(float64(delay) * (1 + dev))
	}
	n.rngMu.Unlock()
	if lost {
		n.stats.lost.Add(1)
		return
	}
	n.clock.Schedule(delay, func() {
		n.topoMu.RLock()
		h := dst.handlers[msg.Port]
		n.topoMu.RUnlock()
		if h == nil {
			n.stats.noHandler.Add(1)
			return
		}
		h(msg)
		n.stats.delivered.Add(1)
	})
}

// Schedule runs fn at Now()+delay (virtual).
func (n *Network) Schedule(delay time.Duration, fn func()) {
	n.clock.Schedule(delay, fn)
}

// ScheduleCancelable runs fn at Now()+delay and returns a cancel function.
// A cancelled event is dropped entirely: it neither runs nor advances the
// clock to its timestamp — request deadlines use this so completed
// requests leave no dead time behind. Cancelling after the event fired (or
// cancelling twice) is a no-op.
func (n *Network) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	return n.clock.ScheduleCancelable(delay, fn)
}

// queueCap exposes the event queue's backing capacity; leak tests assert it
// stays bounded across long schedule/cancel/step runs.
func (n *Network) queueCap() int {
	if n.vclock != nil {
		return n.vclock.queueCap()
	}
	return n.rclock.queueCap()
}

// Step executes the next scheduled event, advancing the virtual clock. It
// reports whether an event ran. On the realtime clock there is nothing for
// the caller to drive — the loop goroutine fires events — so Step always
// reports false.
func (n *Network) Step() bool {
	if n.vclock != nil {
		return n.vclock.Step()
	}
	return false
}

// RunUntilIdle drives the network until no events remain. On the virtual
// clock it steps inline (bounded by maxSteps; 0 means the 1e6 default) and
// returns the number of steps. On the realtime clock it blocks until the
// runtime is idle — queue drained, no handler queued or running — and
// returns 0; self-rescheduling activities (active streams) never go idle,
// so bound those waits with RunUntil instead.
func (n *Network) RunUntilIdle(maxSteps int) int {
	if n.vclock != nil {
		return n.vclock.RunUntilIdle(maxSteps)
	}
	n.rclock.WaitIdle()
	return 0
}

// RunUntil processes events up to (and including) the given virtual
// deadline, then advances the clock to the deadline. On the virtual clock
// the caller's goroutine executes the events inline; on the realtime clock
// the call simply blocks (sleeping on the wall clock, compressed by the
// time scale) until the deadline passes on the loop goroutine.
func (n *Network) RunUntil(deadline time.Duration) int {
	if n.vclock != nil {
		return n.vclock.RunUntil(deadline)
	}
	for {
		now := n.rclock.Now()
		if now >= deadline {
			return 0
		}
		wall := time.Duration(float64(deadline-now) / n.rclock.TimeScale())
		if wall < time.Millisecond {
			wall = time.Millisecond
		}
		time.Sleep(wall)
	}
}
