// Package netsim is a discrete-event simulator of the network substrate the
// µPnP prototype runs on (Section 6): IPv6 over 6LoWPAN/802.15.4, an
// RPL-style tree (DODAG) for routing, SMRF-style multicast forwarding down
// the tree, and anycast to the nearest group member. Nodes exchange UDP
// datagrams; per-packet latency models the 250 kbit/s 802.15.4 wire rate,
// 6LoWPAN fragmentation and the embedded stack's per-packet processing cost.
//
// The simulator runs under a virtual clock: Send schedules deliveries,
// Run/RunUntilIdle advance time. Handlers execute inline at delivery time
// and may send further messages. All timing results (Table 4) are virtual.
package netsim

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Port6030 is the UDP port all µPnP protocol messages use (Section 5.2).
const Port6030 = 6030

// Link and stack timing model, calibrated against the Contiki 2.7 /
// ATMega128RFA1 measurements of Table 4.
const (
	// WireBitsPerSecond is the 802.15.4 PHY rate.
	WireBitsPerSecond = 250_000
	// FrameCapacity is the usable 6LoWPAN payload per 802.15.4 frame;
	// larger datagrams fragment.
	FrameCapacity = 80
	// FrameOverheadBytes covers PHY/MAC/6LoWPAN headers per frame.
	FrameOverheadBytes = 23
	// ProcPerPacket is the embedded stack's per-datagram processing cost
	// (CSMA, 6LoWPAN compression, RPL, UDP) on a 16 MHz AVR.
	ProcPerPacket = 26 * time.Millisecond
	// MulticastExtra is the additional SMRF processing and duplicate-MAC
	// cost for multicast datagrams.
	MulticastExtra = 19 * time.Millisecond
)

// PacketDelay returns the one-hop latency of a datagram of the given payload
// size.
func PacketDelay(payloadBytes int, multicast bool) time.Duration {
	frames := (payloadBytes + FrameCapacity - 1) / FrameCapacity
	if frames == 0 {
		frames = 1
	}
	wireBytes := payloadBytes + frames*FrameOverheadBytes
	wire := time.Duration(float64(wireBytes*8) / WireBitsPerSecond * float64(time.Second))
	d := ProcPerPacket + wire
	if multicast {
		d += MulticastExtra
	}
	return d
}

// Message is a UDP datagram in flight or delivered.
type Message struct {
	Src     netip.Addr
	Dst     netip.Addr
	Port    uint16
	Payload []byte
	// Hops the datagram traversed (filled at delivery).
	Hops int
}

// Handler consumes a delivered datagram.
type Handler func(Message)

// Config tunes the simulated network.
type Config struct {
	// LossRate is the per-hop probability of losing a frame (0..1).
	LossRate float64
	// ProcJitter adds relative per-delivery latency noise (e.g. 0.05 for
	// ±5%), modelling CSMA backoff and stack scheduling variance. Zero
	// keeps deliveries deterministic.
	ProcJitter float64
	// Rng drives loss and jitter sampling; nil uses a fixed seed.
	Rng *rand.Rand
}

// Stats counts network activity.
type Stats struct {
	UnicastSent   int
	MulticastSent int
	Transmissions int // per-hop frame transmissions, the energy-relevant count
	Delivered     int
	Lost          int
}

// Network is the simulated internetwork.
type Network struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	now     time.Duration
	queue   []scheduled
	seq     int // tiebreaker for stable ordering
	nodes   map[netip.Addr]*Node
	anycast map[netip.Addr][]*Node
	stats   Stats
}

type scheduled struct {
	at  time.Duration
	seq int
	fn  func()
	// cancelled, when non-nil and true, marks a dead event: Step/RunUntil
	// drop it without running fn or advancing the clock to its timestamp.
	cancelled *bool
}

// New creates an empty network.
func New(cfg Config) *Network {
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0x6030))
	}
	return &Network{
		cfg:     cfg,
		rng:     rng,
		nodes:   map[netip.Addr]*Node{},
		anycast: map[netip.Addr][]*Node{},
	}
}

// Now returns the virtual time.
func (n *Network) Now() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Node is one IPv6 host: a µPnP Thing, client or manager.
type Node struct {
	net      *Network
	addr     netip.Addr
	parent   *Node
	depth    int
	handlers map[uint16]Handler
	groups   map[netip.Addr]bool
}

// AddNode registers a host. parent nil makes it a DODAG root (or a node on
// the backbone); otherwise the node hangs off parent in the tree.
func (n *Network) AddNode(addr netip.Addr, parent *Node) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("netsim: address %v already in use", addr)
	}
	node := &Node{net: n, addr: addr, parent: parent, handlers: map[uint16]Handler{}, groups: map[netip.Addr]bool{}}
	if parent != nil {
		node.depth = parent.depth + 1
	}
	n.nodes[addr] = node
	return node, nil
}

// Addr returns the node's unicast address.
func (nd *Node) Addr() netip.Addr { return nd.addr }

// Depth returns the node's depth in the DODAG (root = 0).
func (nd *Node) Depth() int { return nd.depth }

// Bind registers the datagram handler for a UDP port.
func (nd *Node) Bind(port uint16, h Handler) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	nd.handlers[port] = h
}

// JoinGroup subscribes the node to a multicast group.
func (nd *Node) JoinGroup(g netip.Addr) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	nd.groups[g] = true
}

// LeaveGroup unsubscribes the node.
func (nd *Node) LeaveGroup(g netip.Addr) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	delete(nd.groups, g)
}

// InGroup reports group membership.
func (nd *Node) InGroup(g netip.Addr) bool {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.groups[g]
}

// JoinAnycast registers the node as a member of an anycast address
// (Section 5: the µPnP manager uses anycast for redundancy).
func (n *Network) JoinAnycast(a netip.Addr, nd *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.anycast[a] = append(n.anycast[a], nd)
}

// treeDistance returns the hop count between two nodes through the DODAG.
func treeDistance(a, b *Node) int {
	seen := map[*Node]int{}
	for d, x := 0, a; x != nil; d, x = d+1, x.parent {
		seen[x] = d
	}
	for d, x := 0, b; x != nil; d, x = d+1, x.parent {
		if up, ok := seen[x]; ok {
			return up + d
		}
	}
	// Disjoint trees: treat as one hop over the backbone plus both depths.
	return a.depth + b.depth + 1
}

// Send transmits a UDP datagram. Unicast goes through the tree; multicast
// (ff00::/8) is SMRF-disseminated to all group members; anycast addresses
// reach the nearest registered member.
func (nd *Node) Send(dst netip.Addr, port uint16, payload []byte) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	msg := Message{Src: nd.addr, Dst: dst, Port: port, Payload: append([]byte(nil), payload...)}
	switch {
	case dst.IsMulticast():
		n.stats.MulticastSent++
		n.sendMulticastLocked(nd, msg)
	default:
		n.stats.UnicastSent++
		if members := n.anycast[dst]; len(members) > 0 {
			best := members[0]
			bestD := treeDistance(nd, best)
			for _, m := range members[1:] {
				if d := treeDistance(nd, m); d < bestD {
					best, bestD = m, d
				}
			}
			n.deliverLocked(nd, best, msg, bestD, false)
			return
		}
		target, ok := n.nodes[dst]
		if !ok {
			n.stats.Lost++
			return
		}
		n.deliverLocked(nd, target, msg, treeDistance(nd, target), false)
	}
}

// sendMulticastLocked implements SMRF-style dissemination: the datagram
// travels the tree from the source; every edge on the union of paths to the
// members is one transmission.
func (n *Network) sendMulticastLocked(src *Node, msg Message) {
	edges := map[[2]*Node]bool{}
	for _, member := range n.nodes {
		if !member.groups[msg.Dst] || member == src {
			continue
		}
		hops := n.pathEdgesLocked(src, member, edges)
		n.deliverLocked(src, member, msg, hops, true)
	}
	// Count unique tree edges as transmissions (duplicate suppression, the
	// key SMRF property versus naive flooding).
	n.stats.Transmissions += len(edges)
}

// pathEdgesLocked walks the tree path src->dst, adding its edges to the set,
// and returns the hop count.
func (n *Network) pathEdgesLocked(src, dst *Node, edges map[[2]*Node]bool) int {
	// Ascend from both ends to the common ancestor.
	anc := map[*Node]bool{}
	for x := src; x != nil; x = x.parent {
		anc[x] = true
	}
	var meet *Node
	for x := dst; x != nil; x = x.parent {
		if anc[x] {
			meet = x
			break
		}
	}
	hops := 0
	if meet == nil {
		// Disjoint trees: synthetic backbone edge between the roots.
		rootA, rootB := src, dst
		for rootA.parent != nil {
			rootA = rootA.parent
		}
		for rootB.parent != nil {
			rootB = rootB.parent
		}
		hops = n.pathEdgesLocked(src, rootA, edges) + 1 + n.pathEdgesLocked(rootB, dst, edges)
		edges[[2]*Node{rootA, rootB}] = true
		return hops
	}
	for x := src; x != meet; x = x.parent {
		edges[[2]*Node{x, x.parent}] = true
		hops++
	}
	for x := dst; x != meet; x = x.parent {
		edges[[2]*Node{x.parent, x}] = true
		hops++
	}
	return hops
}

// deliverLocked schedules a delivery after the per-hop latency, applying
// per-hop loss.
func (n *Network) deliverLocked(src, dst *Node, msg Message, hops int, multicast bool) {
	if hops == 0 {
		hops = 1 // loopback or same-node corner: still one stack traversal
	}
	if !multicast {
		n.stats.Transmissions += hops
	}
	for h := 0; h < hops; h++ {
		if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
			n.stats.Lost++
			return
		}
	}
	msg.Hops = hops
	delay := time.Duration(hops) * PacketDelay(len(msg.Payload), multicast)
	if n.cfg.ProcJitter > 0 {
		dev := (n.rng.Float64()*2 - 1) * n.cfg.ProcJitter
		delay = time.Duration(float64(delay) * (1 + dev))
	}
	n.scheduleLocked(delay, func() {
		n.mu.Lock()
		h := dst.handlers[msg.Port]
		n.mu.Unlock()
		if h != nil {
			h(msg)
		}
		n.mu.Lock()
		n.stats.Delivered++
		n.mu.Unlock()
	})
}

// Schedule runs fn at Now()+delay (virtual).
func (n *Network) Schedule(delay time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.scheduleLocked(delay, fn)
}

// ScheduleCancelable runs fn at Now()+delay and returns a cancel function.
// A cancelled event is dropped entirely: it neither runs nor advances the
// clock to its timestamp — request deadlines use this so completed
// requests leave no dead time behind.
func (n *Network) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := new(bool)
	n.scheduleEntryLocked(delay, fn, c)
	return func() {
		n.mu.Lock()
		*c = true
		n.mu.Unlock()
	}
}

func (n *Network) scheduleLocked(delay time.Duration, fn func()) {
	n.scheduleEntryLocked(delay, fn, nil)
}

func (n *Network) scheduleEntryLocked(delay time.Duration, fn func(), cancelled *bool) {
	n.seq++
	n.queue = append(n.queue, scheduled{at: n.now + delay, seq: n.seq, fn: fn, cancelled: cancelled})
	sort.SliceStable(n.queue, func(i, j int) bool {
		if n.queue[i].at != n.queue[j].at {
			return n.queue[i].at < n.queue[j].at
		}
		return n.queue[i].seq < n.queue[j].seq
	})
}

// dropCancelledLocked removes dead events from the queue head.
func (n *Network) dropCancelledLocked() {
	for len(n.queue) > 0 && n.queue[0].cancelled != nil && *n.queue[0].cancelled {
		n.queue = n.queue[1:]
	}
}

// Step executes the next scheduled event, advancing the clock. It reports
// whether an event ran.
func (n *Network) Step() bool {
	n.mu.Lock()
	n.dropCancelledLocked()
	if len(n.queue) == 0 {
		n.mu.Unlock()
		return false
	}
	ev := n.queue[0]
	n.queue = n.queue[1:]
	if ev.at > n.now {
		n.now = ev.at
	}
	n.mu.Unlock()
	ev.fn()
	return true
}

// RunUntilIdle steps until no events remain (bounded by maxSteps; 0 means
// the 1e6 default). It returns the number of steps.
func (n *Network) RunUntilIdle(maxSteps int) int {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	steps := 0
	for steps < maxSteps && n.Step() {
		steps++
	}
	return steps
}

// RunUntil processes events up to (and including) the given virtual
// deadline, then advances the clock to the deadline. Use this to drive
// self-rescheduling activities such as streams, which never go idle.
func (n *Network) RunUntil(deadline time.Duration) int {
	steps := 0
	for {
		n.mu.Lock()
		n.dropCancelledLocked()
		if len(n.queue) == 0 || n.queue[0].at > deadline {
			if n.now < deadline {
				n.now = deadline
			}
			n.mu.Unlock()
			return steps
		}
		ev := n.queue[0]
		n.queue = n.queue[1:]
		if ev.at > n.now {
			n.now = ev.at
		}
		n.mu.Unlock()
		ev.fn()
		steps++
	}
}
