// Package netsim is a discrete-event simulator of the network substrate the
// µPnP prototype runs on (Section 6): IPv6 over 6LoWPAN/802.15.4, an
// RPL-style tree (DODAG) for routing, SMRF-style multicast forwarding down
// the tree, and anycast to the nearest group member. Nodes exchange UDP
// datagrams; per-packet latency models the 250 kbit/s 802.15.4 wire rate,
// 6LoWPAN fragmentation and the embedded stack's per-packet processing cost.
//
// The simulator runs under a virtual clock: Send schedules deliveries,
// Run/RunUntilIdle advance time. Handlers execute inline at delivery time
// and may send further messages. All timing results (Table 4) are virtual.
//
// The implementation is built to stay fast at thousands of nodes: the event
// queue is a binary heap with lazy deletion (Schedule and Step are
// O(log n), cancelled events are skipped on pop and compacted away when
// they dominate the queue), multicast sends consult a per-group membership
// index instead of scanning every node, and tree routes (per-pair paths,
// edge sets and anycast distances) are cached with invalidation on
// AddNode/JoinGroup/LeaveGroup.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"time"
)

// Port6030 is the UDP port all µPnP protocol messages use (Section 5.2).
const Port6030 = 6030

// Link and stack timing model, calibrated against the Contiki 2.7 /
// ATMega128RFA1 measurements of Table 4.
const (
	// WireBitsPerSecond is the 802.15.4 PHY rate.
	WireBitsPerSecond = 250_000
	// FrameCapacity is the usable 6LoWPAN payload per 802.15.4 frame;
	// larger datagrams fragment.
	FrameCapacity = 80
	// FrameOverheadBytes covers PHY/MAC/6LoWPAN headers per frame.
	FrameOverheadBytes = 23
	// ProcPerPacket is the embedded stack's per-datagram processing cost
	// (CSMA, 6LoWPAN compression, RPL, UDP) on a 16 MHz AVR.
	ProcPerPacket = 26 * time.Millisecond
	// MulticastExtra is the additional SMRF processing and duplicate-MAC
	// cost for multicast datagrams.
	MulticastExtra = 19 * time.Millisecond
)

// PacketDelay returns the one-hop latency of a datagram of the given payload
// size.
func PacketDelay(payloadBytes int, multicast bool) time.Duration {
	frames := (payloadBytes + FrameCapacity - 1) / FrameCapacity
	if frames == 0 {
		frames = 1
	}
	wireBytes := payloadBytes + frames*FrameOverheadBytes
	wire := time.Duration(float64(wireBytes*8) / WireBitsPerSecond * float64(time.Second))
	d := ProcPerPacket + wire
	if multicast {
		d += MulticastExtra
	}
	return d
}

// Message is a UDP datagram in flight or delivered.
type Message struct {
	Src     netip.Addr
	Dst     netip.Addr
	Port    uint16
	Payload []byte
	// Hops the datagram traversed (filled at delivery).
	Hops int
}

// Handler consumes a delivered datagram.
type Handler func(Message)

// Config tunes the simulated network.
type Config struct {
	// LossRate is the per-hop probability of losing a frame (0..1).
	LossRate float64
	// ProcJitter adds relative per-delivery latency noise (e.g. 0.05 for
	// ±5%), modelling CSMA backoff and stack scheduling variance. Zero
	// keeps deliveries deterministic.
	ProcJitter float64
	// Rng drives loss and jitter sampling; nil uses a fixed seed.
	Rng *rand.Rand
}

// Stats counts network activity.
type Stats struct {
	UnicastSent   int
	MulticastSent int
	Transmissions int // per-hop frame transmissions, the energy-relevant count
	Delivered     int
	Lost          int
	// NoHandler counts datagrams that reached a node with no handler bound
	// to the destination port: the embedded stack drops them (ICMPv6 port
	// unreachable is not generated on these motes).
	NoHandler int
}

// Network is the simulated internetwork.
type Network struct {
	mu      sync.Mutex
	cfg     Config
	rng     *rand.Rand
	now     time.Duration
	queue   eventQueue
	dead    int // cancelled events still in the heap (lazy deletion)
	seq     int // tiebreaker for stable ordering
	nodes   map[netip.Addr]*Node
	anycast map[netip.Addr][]*Node
	// members indexes multicast group membership so sends visit only
	// members, never the full node table.
	members map[netip.Addr]map[*Node]struct{}
	// Route caches. Parent links are immutable after AddNode, but both are
	// invalidated on AddNode (new backbone roots change the disjoint-tree
	// synthetic paths); plans are additionally invalidated per group on
	// JoinGroup/LeaveGroup. Per-pair edge lists are NOT cached: they are
	// only consumed while building a plan, and retaining them would pin
	// O(members x depth) memory on deep topologies.
	dists map[nodePair]int
	plans map[netip.Addr]map[*Node]*mcastPlan
	stats Stats
}

type eventState uint8

const (
	evPending eventState = iota
	evCancelled
	evFired
)

type scheduled struct {
	at    time.Duration
	seq   int
	fn    func()
	state eventState
}

// eventQueue is a binary min-heap of events ordered by (at, seq); the seq
// tiebreaker makes delivery order deterministic and identical to the former
// stable-sorted-slice implementation (the ordering key is total, so heap
// pop order equals sorted order).
type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*scheduled)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil // release the slot so popped events do not pin the array
	*q = old[:n-1]
	return ev
}

// New creates an empty network.
func New(cfg Config) *Network {
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(0x6030))
	}
	return &Network{
		cfg:     cfg,
		rng:     rng,
		nodes:   map[netip.Addr]*Node{},
		anycast: map[netip.Addr][]*Node{},
		members: map[netip.Addr]map[*Node]struct{}{},
		dists:   map[nodePair]int{},
		plans:   map[netip.Addr]map[*Node]*mcastPlan{},
	}
}

// Now returns the virtual time.
func (n *Network) Now() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.now
}

// Stats returns a snapshot of the counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Node is one IPv6 host: a µPnP Thing, client or manager.
type Node struct {
	net      *Network
	addr     netip.Addr
	parent   *Node
	depth    int
	handlers map[uint16]Handler
	groups   map[netip.Addr]bool
}

// AddNode registers a host. parent nil makes it a DODAG root (or a node on
// the backbone); otherwise the node hangs off parent in the tree.
func (n *Network) AddNode(addr netip.Addr, parent *Node) (*Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.nodes[addr]; dup {
		return nil, fmt.Errorf("netsim: address %v already in use", addr)
	}
	node := &Node{net: n, addr: addr, parent: parent, handlers: map[uint16]Handler{}, groups: map[netip.Addr]bool{}}
	if parent != nil {
		node.depth = parent.depth + 1
	}
	n.nodes[addr] = node
	n.invalidateRoutesLocked()
	return node, nil
}

// invalidateRoutesLocked drops every cached route. Topology only grows, but
// conservatively flushing on AddNode keeps the caches trivially correct and
// costs nothing in steady state (nodes are added once, messages flow
// forever after).
func (n *Network) invalidateRoutesLocked() {
	clear(n.dists)
	clear(n.plans)
}

// Addr returns the node's unicast address.
func (nd *Node) Addr() netip.Addr { return nd.addr }

// Depth returns the node's depth in the DODAG (root = 0).
func (nd *Node) Depth() int { return nd.depth }

// Bind registers the datagram handler for a UDP port.
func (nd *Node) Bind(port uint16, h Handler) {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	nd.handlers[port] = h
}

// JoinGroup subscribes the node to a multicast group.
func (nd *Node) JoinGroup(g netip.Addr) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if nd.groups[g] {
		return
	}
	nd.groups[g] = true
	set := n.members[g]
	if set == nil {
		set = map[*Node]struct{}{}
		n.members[g] = set
	}
	set[nd] = struct{}{}
	delete(n.plans, g)
}

// LeaveGroup unsubscribes the node.
func (nd *Node) LeaveGroup(g netip.Addr) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	if !nd.groups[g] {
		return
	}
	delete(nd.groups, g)
	if set := n.members[g]; set != nil {
		delete(set, nd)
		if len(set) == 0 {
			delete(n.members, g)
		}
	}
	delete(n.plans, g)
}

// InGroup reports group membership.
func (nd *Node) InGroup(g netip.Addr) bool {
	nd.net.mu.Lock()
	defer nd.net.mu.Unlock()
	return nd.groups[g]
}

// JoinAnycast registers the node as a member of an anycast address
// (Section 5: the µPnP manager uses anycast for redundancy).
func (n *Network) JoinAnycast(a netip.Addr, nd *Node) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.anycast[a] = append(n.anycast[a], nd)
}

// nodePair keys the per-pair route caches.
type nodePair [2]*Node

// treeDistance returns the hop count between two nodes through the DODAG.
func treeDistance(a, b *Node) int {
	seen := map[*Node]int{}
	for d, x := 0, a; x != nil; d, x = d+1, x.parent {
		seen[x] = d
	}
	for d, x := 0, b; x != nil; d, x = d+1, x.parent {
		if up, ok := seen[x]; ok {
			return up + d
		}
	}
	// Disjoint trees: treat as one hop over the backbone plus both depths.
	return a.depth + b.depth + 1
}

// distanceLocked is treeDistance through the per-pair cache (anycast
// nearest-member selection runs it for every member on every request).
func (n *Network) distanceLocked(a, b *Node) int {
	if a == b {
		return 0
	}
	key := nodePair{a, b}
	if d, ok := n.dists[key]; ok {
		return d
	}
	d := treeDistance(a, b)
	n.dists[key] = d
	n.dists[nodePair{b, a}] = d
	return d
}

// pathEntry is one computed tree route: hop count plus the ordered edge
// list. Entries are scratch state for plan construction — the edge lists
// live only until the plan's edge union is taken, while the durable caches
// hold hop counts (dists) and finished plans.
type pathEntry struct {
	hops  int
	edges [][2]*Node
}

// buildPathLocked walks the tree path src->dst, recording its edges and hop
// count. Disjoint trees route over a synthetic backbone edge between roots.
func (n *Network) buildPathLocked(src, dst *Node) *pathEntry {
	anc := map[*Node]bool{}
	for x := src; x != nil; x = x.parent {
		anc[x] = true
	}
	var meet *Node
	for x := dst; x != nil; x = x.parent {
		if anc[x] {
			meet = x
			break
		}
	}
	e := &pathEntry{}
	if meet == nil {
		rootA, rootB := src, dst
		for rootA.parent != nil {
			rootA = rootA.parent
		}
		for rootB.parent != nil {
			rootB = rootB.parent
		}
		up := n.buildPathLocked(src, rootA)
		down := n.buildPathLocked(rootB, dst)
		e.hops = up.hops + 1 + down.hops
		e.edges = make([][2]*Node, 0, len(up.edges)+1+len(down.edges))
		e.edges = append(e.edges, up.edges...)
		e.edges = append(e.edges, [2]*Node{rootA, rootB})
		e.edges = append(e.edges, down.edges...)
		return e
	}
	for x := src; x != meet; x = x.parent {
		e.edges = append(e.edges, [2]*Node{x, x.parent})
		e.hops++
	}
	for x := dst; x != meet; x = x.parent {
		e.edges = append(e.edges, [2]*Node{x.parent, x})
		e.hops++
	}
	return e
}

// mcastPlan is a cached SMRF dissemination: the member targets with their
// hop counts, and the size of the union of path edges (the per-send
// transmission count under duplicate suppression).
type mcastPlan struct {
	targets []mcastTarget
	edges   int
}

type mcastTarget struct {
	node *Node
	hops int
}

// multicastPlanLocked returns the cached (group, src) dissemination plan,
// building it from the membership index on first use. Targets are ordered
// by (hops, address) so same-timestamp deliveries are deterministic.
func (n *Network) multicastPlanLocked(src *Node, group netip.Addr) *mcastPlan {
	bySrc := n.plans[group]
	if plan := bySrc[src]; plan != nil {
		return plan
	}
	plan := &mcastPlan{}
	edgeSet := map[[2]*Node]struct{}{}
	for member := range n.members[group] {
		if member == src {
			continue
		}
		p := n.buildPathLocked(src, member)
		for _, edge := range p.edges {
			edgeSet[edge] = struct{}{}
		}
		plan.targets = append(plan.targets, mcastTarget{node: member, hops: p.hops})
		// The walk already knows the distance; warm the unicast cache too.
		key := nodePair{src, member}
		if _, ok := n.dists[key]; !ok {
			n.dists[key] = p.hops
			n.dists[nodePair{member, src}] = p.hops
		}
	}
	plan.edges = len(edgeSet)
	sort.Slice(plan.targets, func(i, j int) bool {
		a, b := plan.targets[i], plan.targets[j]
		if a.hops != b.hops {
			return a.hops < b.hops
		}
		return a.node.addr.Less(b.node.addr)
	})
	if bySrc == nil {
		bySrc = map[*Node]*mcastPlan{}
		n.plans[group] = bySrc
	}
	bySrc[src] = plan
	return plan
}

// Send transmits a UDP datagram. Unicast goes through the tree; multicast
// (ff00::/8) is SMRF-disseminated to all group members; anycast addresses
// reach the nearest registered member.
func (nd *Node) Send(dst netip.Addr, port uint16, payload []byte) {
	n := nd.net
	n.mu.Lock()
	defer n.mu.Unlock()
	msg := Message{Src: nd.addr, Dst: dst, Port: port, Payload: append([]byte(nil), payload...)}
	switch {
	case dst.IsMulticast():
		n.stats.MulticastSent++
		n.sendMulticastLocked(nd, msg)
	default:
		n.stats.UnicastSent++
		if members := n.anycast[dst]; len(members) > 0 {
			best := members[0]
			bestD := n.distanceLocked(nd, best)
			for _, m := range members[1:] {
				if d := n.distanceLocked(nd, m); d < bestD {
					best, bestD = m, d
				}
			}
			n.deliverLocked(nd, best, msg, bestD, false)
			return
		}
		target, ok := n.nodes[dst]
		if !ok {
			n.stats.Lost++
			return
		}
		n.deliverLocked(nd, target, msg, n.distanceLocked(nd, target), false)
	}
}

// sendMulticastLocked implements SMRF-style dissemination: the datagram
// travels the tree from the source; every edge on the union of paths to the
// members is one transmission (duplicate suppression, the key SMRF property
// versus naive flooding).
func (n *Network) sendMulticastLocked(src *Node, msg Message) {
	plan := n.multicastPlanLocked(src, msg.Dst)
	for _, t := range plan.targets {
		n.deliverLocked(src, t.node, msg, t.hops, true)
	}
	n.stats.Transmissions += plan.edges
}

// deliverLocked schedules a delivery after the per-hop latency, applying
// per-hop loss.
func (n *Network) deliverLocked(src, dst *Node, msg Message, hops int, multicast bool) {
	if hops == 0 {
		hops = 1 // loopback or same-node corner: still one stack traversal
	}
	if !multicast {
		n.stats.Transmissions += hops
	}
	for h := 0; h < hops; h++ {
		if n.cfg.LossRate > 0 && n.rng.Float64() < n.cfg.LossRate {
			n.stats.Lost++
			return
		}
	}
	msg.Hops = hops
	delay := time.Duration(hops) * PacketDelay(len(msg.Payload), multicast)
	if n.cfg.ProcJitter > 0 {
		dev := (n.rng.Float64()*2 - 1) * n.cfg.ProcJitter
		delay = time.Duration(float64(delay) * (1 + dev))
	}
	n.scheduleEventLocked(delay, func() {
		n.mu.Lock()
		h := dst.handlers[msg.Port]
		if h == nil {
			n.stats.NoHandler++
			n.mu.Unlock()
			return
		}
		n.mu.Unlock()
		h(msg)
		n.mu.Lock()
		n.stats.Delivered++
		n.mu.Unlock()
	})
}

// Schedule runs fn at Now()+delay (virtual).
func (n *Network) Schedule(delay time.Duration, fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.scheduleEventLocked(delay, fn)
}

// ScheduleCancelable runs fn at Now()+delay and returns a cancel function.
// A cancelled event is dropped entirely: it neither runs nor advances the
// clock to its timestamp — request deadlines use this so completed
// requests leave no dead time behind. Cancelling after the event fired (or
// cancelling twice) is a no-op. Cancellation is O(1): the event is marked
// dead and skipped when it surfaces, and the queue compacts when dead
// events dominate, so cancelled entries do not pin the backing array.
func (n *Network) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ev := n.scheduleEventLocked(delay, fn)
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		if ev.state != evPending {
			return
		}
		ev.state = evCancelled
		ev.fn = nil // release the closure right away
		n.dead++
		n.compactLocked()
	}
}

func (n *Network) scheduleEventLocked(delay time.Duration, fn func()) *scheduled {
	n.seq++
	ev := &scheduled{at: n.now + delay, seq: n.seq, fn: fn}
	heap.Push(&n.queue, ev)
	return ev
}

// compactLocked rebuilds the heap without cancelled events once they
// outnumber live ones (amortised O(1) per cancellation).
func (n *Network) compactLocked() {
	if n.dead <= 64 || n.dead*2 <= len(n.queue) {
		return
	}
	live := n.queue[:0]
	for _, ev := range n.queue {
		if ev.state == evPending {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(n.queue); i++ {
		n.queue[i] = nil
	}
	n.queue = live
	heap.Init(&n.queue)
	n.dead = 0
}

// popLocked removes and returns the next live event, discarding cancelled
// ones, or nil when the queue is drained.
func (n *Network) popLocked() *scheduled {
	for len(n.queue) > 0 {
		ev := heap.Pop(&n.queue).(*scheduled)
		if ev.state == evCancelled {
			n.dead--
			continue
		}
		ev.state = evFired
		return ev
	}
	return nil
}

// peekLocked returns the next live event without removing it, discarding
// cancelled events from the top, or nil when the queue is drained.
func (n *Network) peekLocked() *scheduled {
	for len(n.queue) > 0 {
		ev := n.queue[0]
		if ev.state != evCancelled {
			return ev
		}
		heap.Pop(&n.queue)
		n.dead--
	}
	return nil
}

// queueCap exposes the event queue's backing capacity; leak tests assert it
// stays bounded across long schedule/cancel/step runs.
func (n *Network) queueCap() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return cap(n.queue)
}

// Step executes the next scheduled event, advancing the clock. It reports
// whether an event ran.
func (n *Network) Step() bool {
	n.mu.Lock()
	ev := n.popLocked()
	if ev == nil {
		n.mu.Unlock()
		return false
	}
	if ev.at > n.now {
		n.now = ev.at
	}
	fn := ev.fn
	ev.fn = nil
	n.mu.Unlock()
	fn()
	return true
}

// RunUntilIdle steps until no events remain (bounded by maxSteps; 0 means
// the 1e6 default). It returns the number of steps.
func (n *Network) RunUntilIdle(maxSteps int) int {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	steps := 0
	for steps < maxSteps && n.Step() {
		steps++
	}
	return steps
}

// RunUntil processes events up to (and including) the given virtual
// deadline, then advances the clock to the deadline. Use this to drive
// self-rescheduling activities such as streams, which never go idle.
func (n *Network) RunUntil(deadline time.Duration) int {
	steps := 0
	for {
		n.mu.Lock()
		next := n.peekLocked()
		if next == nil || next.at > deadline {
			if n.now < deadline {
				n.now = deadline
			}
			n.mu.Unlock()
			return steps
		}
		ev := n.popLocked()
		if ev.at > n.now {
			n.now = ev.at
		}
		fn := ev.fn
		ev.fn = nil
		n.mu.Unlock()
		fn()
		steps++
	}
}
