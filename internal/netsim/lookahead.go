package netsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Lookahead maintains the per-lane-pair lookahead matrix of a zone-sharded
// network: minHops[i][j] is the minimum tree distance (hops) between any node
// in lane i and any node in lane j. Every cross-lane interaction is a packet
// delivery whose delay is at least hops × ShardQuantum (see ShardedClock), so
// L(j→i) = minHops[j][i] × quantum lower-bounds how far into lane i's future
// an event executing on lane j can reach. The sharded clock turns the matrix
// into per-lane window bounds at each barrier; lanes whose zones are far
// apart in the routing tree then run many quanta ahead of each other instead
// of advancing in lock-step one-hop windows.
//
// The matrix is maintained incrementally under AddNode (topology only grows;
// parent links are immutable), so every entry is the exact all-pairs minimum:
//
//   - Same-tree pairs: each node keeps minDown[j], the minimum depth offset
//     of any lane-j node in its subtree. Adding v walks its ancestor chain;
//     at ancestor a with offset off = depth(v)−depth(a), off+a.minDown[j]
//     is the v→(nearest lane-j node under a) path length through a. At the
//     true LCA of the closest pair this is exact, at higher ancestors it
//     only overestimates, so relaxing with every candidate lands on the
//     exact minimum. The walk then folds v into each ancestor's minDown.
//   - Cross-tree pairs (disjoint DODAGs route over the synthetic backbone
//     edge, distance depth(a)+depth(b)+1): per lane the two smallest node
//     depths under distinct roots are tracked; the pairwise minimum over
//     distinct-root combinations is exact by the usual two-best argument.
//
// An entry with no node pair yet is unknown (-1) and snapshots to the
// conservative one-hop global quantum, so a lane the matrix cannot bound
// falls back to exactly the pre-matrix behaviour.
type Lookahead struct {
	mu    sync.Mutex
	lanes int
	// minHops is the lanes×lanes symmetric matrix of minimum cross-lane tree
	// distances, -1 where no pair exists yet. The diagonal is unused (windows
	// only consult j≠i).
	minHops []int32
	// depths tracks, per lane, the two smallest node depths under distinct
	// roots (for the cross-tree backbone bound).
	depths []laneDepth
	// version increments on every matrix change; the sharded clock
	// re-snapshots its effective window matrix at the next barrier when it
	// moved, so mid-run AddNode churn is picked up without per-round locking.
	version atomic.Uint64
}

// laneDepth is one lane's two smallest node depths under distinct roots:
// best is the global minimum, alt the minimum among nodes under a root other
// than bestRoot (-1 roots = absent).
type laneDepth struct {
	best     int32
	bestRoot *Node
	alt      int32
	altRoot  *Node
}

func newLookahead(lanes int) *Lookahead {
	la := &Lookahead{
		lanes:   lanes,
		minHops: make([]int32, lanes*lanes),
		depths:  make([]laneDepth, lanes),
	}
	for i := range la.minHops {
		la.minHops[i] = -1
	}
	return la
}

// addNode folds a newly added node into the matrix. The caller (Network.
// AddNode) holds topoMu, so parent/depth/lane are final and the ancestor
// chain is stable; la.mu orders the update against barrier snapshots.
func (la *Lookahead) addNode(v *Node) {
	la.mu.Lock()
	defer la.mu.Unlock()
	lv := int(v.lane)
	v.minDown = make([]int32, la.lanes)
	for i := range v.minDown {
		v.minDown[i] = -1
	}
	v.minDown[lv] = 0
	changed := false
	root := v
	for a, off := v.parent, int32(1); a != nil; a, off = a.parent, off+1 {
		root = a
		for j, down := range a.minDown {
			if down < 0 || j == lv {
				continue
			}
			if la.relax(lv, j, off+down) {
				changed = true
			}
		}
		if cur := a.minDown[lv]; cur < 0 || off < cur {
			a.minDown[lv] = off
		}
	}
	if la.depths[lv].update(int32(v.depth), root) {
		// New pairs across the backbone can only involve v's lane: a fresh
		// node changes no other lane's depth record.
		for j := 0; j < la.lanes; j++ {
			if j == lv {
				continue
			}
			if bound, ok := crossBound(&la.depths[lv], &la.depths[j]); ok && la.relax(lv, j, bound) {
				changed = true
			}
		}
	}
	if changed {
		la.version.Add(1)
	}
}

// relax lowers the symmetric (i, j) entry to d if smaller, reporting change.
func (la *Lookahead) relax(i, j int, d int32) bool {
	idx := i*la.lanes + j
	if cur := la.minHops[idx]; cur >= 0 && cur <= d {
		return false
	}
	la.minHops[idx] = d
	la.minHops[j*la.lanes+i] = d
	return true
}

// update folds one node's (depth, root) into the lane record, reporting
// whether either tracked minimum moved.
func (ld *laneDepth) update(depth int32, root *Node) bool {
	switch {
	case ld.bestRoot == nil:
		ld.best, ld.bestRoot = depth, root
		return true
	case root == ld.bestRoot:
		if depth < ld.best {
			ld.best = depth
			return true
		}
		return false
	case depth < ld.best:
		// The old best stays the minimum over roots other than the new one:
		// any previous alt was >= it (best is the global minimum).
		ld.alt, ld.altRoot = ld.best, ld.bestRoot
		ld.best, ld.bestRoot = depth, root
		return true
	case ld.altRoot == nil || root == ld.altRoot:
		if ld.altRoot == nil || depth < ld.alt {
			ld.alt, ld.altRoot = depth, root
			return true
		}
		return false
	case depth < ld.alt:
		ld.alt, ld.altRoot = depth, root
		return true
	}
	return false
}

// crossBound is the exact minimum backbone distance between two lanes'
// distinct-root node pairs: min over combinations of the two-best depth
// records with differing roots of depth_i + depth_j + 1.
func crossBound(di, dj *laneDepth) (int32, bool) {
	best := int32(-1)
	consider := func(a, b int32, ra, rb *Node) {
		if ra == nil || rb == nil || ra == rb {
			return
		}
		if c := a + b + 1; best < 0 || c < best {
			best = c
		}
	}
	consider(di.best, dj.best, di.bestRoot, dj.bestRoot)
	consider(di.best, dj.alt, di.bestRoot, dj.altRoot)
	consider(di.alt, dj.best, di.altRoot, dj.bestRoot)
	return best, best >= 0
}

// snapshotNs fills dst (lanes×lanes) with the effective lookahead in
// nanoseconds — minHops × quantum, the conservative one-hop quantum where no
// pair is known — and returns the matrix version the snapshot reflects.
func (la *Lookahead) snapshotNs(quantum time.Duration, dst []int64) uint64 {
	la.mu.Lock()
	defer la.mu.Unlock()
	q := int64(quantum)
	for k, h := range la.minHops {
		if h < 1 {
			dst[k] = q
		} else {
			dst[k] = int64(h) * q
		}
	}
	return la.version.Load()
}

// pairHops returns the tracked minimum hop distance between two lanes
// (-1 = no pair known). Test hook.
func (la *Lookahead) pairHops(i, j int) int {
	la.mu.Lock()
	defer la.mu.Unlock()
	return int(la.minHops[i*la.lanes+j])
}
