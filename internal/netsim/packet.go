package netsim

import (
	"sync"
	"sync/atomic"
)

// Buf is a pooled, reference-counted packet payload buffer — the currency of
// the zero-allocation send path. The ownership rule is strict hand-off:
//
//   - A sender obtains a Buf with AcquireBuf, fills Buf.B (typically via
//     proto.AppendEncode into B[:0]) and passes it to Node.SendBuf, which
//     takes ownership. After SendBuf the sender must not touch the Buf.
//   - The network releases the buffer once the datagram's final delivery
//     handler returned (multicast fan-out holds one reference per receiver;
//     the last release recycles) or when the datagram is lost.
//   - A sender that aborts before SendBuf (e.g. on an encode error) releases
//     the Buf itself with Release.
//
// Handlers consequently see Message.Payload only on loan: the bytes are valid
// for the duration of the handler call and are recycled afterwards. Retain
// them with an explicit copy (or proto's PeripheralInfo.Clone).
type Buf struct {
	// B is the payload. Senders append into B[:0] to reuse the pooled
	// capacity.
	B []byte

	refs atomic.Int32
}

// maxPooledBuf bounds the capacity returned to the pool: occasional large
// datagrams (driver uploads) must not pin big arrays in the pool forever.
const maxPooledBuf = 4096

var bufPool = sync.Pool{New: func() any { return new(Buf) }}

// AcquireBuf returns an empty pooled buffer holding one reference.
func AcquireBuf() *Buf {
	pb := bufPool.Get().(*Buf)
	pb.refs.Store(1)
	pb.B = pb.B[:0]
	return pb
}

// retain adds n references (multicast fan-out takes one per receiver).
func (pb *Buf) retain(n int32) { pb.refs.Add(n) }

// Release drops one reference; the last release recycles the buffer. Callers
// must not touch the Buf after releasing it.
func (pb *Buf) Release() {
	if pb.refs.Add(-1) != 0 {
		return
	}
	if cap(pb.B) > maxPooledBuf {
		pb.B = nil
	}
	bufPool.Put(pb)
}

// Note for maintainers: client, manager and thing each carry a small
// identical send helper (AcquireBuf → AppendEncode into B[:0] → SendBuf,
// Release on encode error) instead of sharing one here behind an interface.
// That duplication is deliberate: an interface-typed encode call defeats
// escape analysis and forces every request message onto the heap, undoing
// about one allocation per send on the gated hot path. Keep the four sites
// in sync with the ownership rule above.
