package netsim

import (
	"math/rand"
	"testing"
	"time"
)

// bruteLookahead computes the all-pairs minimum cross-lane tree distance by
// exhaustive enumeration — the specification the incremental matrix must
// match exactly.
func bruteLookahead(nodes []*Node, lanes int) []int32 {
	min := make([]int32, lanes*lanes)
	for i := range min {
		min[i] = -1
	}
	for x, a := range nodes {
		for _, b := range nodes[x+1:] {
			i, j := int(a.lane), int(b.lane)
			if i == j {
				continue
			}
			d := int32(treeDistance(a, b))
			if cur := min[i*lanes+j]; cur < 0 || d < cur {
				min[i*lanes+j] = d
				min[j*lanes+i] = d
			}
		}
	}
	return min
}

// TestLookaheadMatrixMatchesBruteForce grows randomized multi-root
// topologies — random parents, random zones folding onto a smaller lane
// count — and after every single AddNode checks the incrementally maintained
// matrix against brute force, so both the LCA walk (same-tree pairs) and the
// two-best distinct-root tracking (cross-tree backbone pairs) are validated
// under every insertion order the generator produces.
func TestLookaheadMatrixMatchesBruteForce(t *testing.T) {
	const (
		trials   = 12
		nodesPer = 40
		lanes    = 5
	)
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := New(Config{Zones: lanes, Workers: 1, Seed: int64(trial)})
		var nodes []*Node
		for i := 0; i < nodesPer; i++ {
			var parent *Node
			if len(nodes) > 0 && rng.Float64() > 0.2 {
				parent = nodes[rng.Intn(len(nodes))]
			}
			zone := uint16(rng.Intn(2 * lanes)) // exercise zone→lane folding
			nd, err := n.AddNode(UnicastAddr(prefix, zone, uint32(0x100+i)), parent)
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, nd)
			want := bruteLookahead(nodes, lanes)
			for li := 0; li < lanes; li++ {
				for lj := 0; lj < lanes; lj++ {
					if li == lj {
						continue
					}
					if got := int32(n.lookahead.pairHops(li, lj)); got != want[li*lanes+lj] {
						t.Fatalf("trial %d after node %d: minHops(%d,%d) = %d, brute force %d",
							trial, i, li, lj, got, want[li*lanes+lj])
					}
				}
			}
		}
		n.Close()
	}
}

// TestLookaheadCausalityRandomTraffic runs random cross-lane unicast traffic
// over randomized topologies with loss and jitter under full parallelism and
// asserts the barrier-time causality checker never fires: no lane ever
// executed past an inbound cross-lane event's timestamp.
func TestLookaheadCausalityRandomTraffic(t *testing.T) {
	const (
		trials   = 6
		nodesPer = 24
		lanes    = 4
		sends    = 120
	)
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	for trial := 0; trial < trials; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		n := New(Config{Zones: lanes, Workers: 0, LossRate: 0.05, ProcJitter: 0.15, Seed: int64(trial)})
		var nodes []*Node
		for i := 0; i < nodesPer; i++ {
			var parent *Node
			if len(nodes) > 0 && rng.Float64() > 0.15 {
				parent = nodes[rng.Intn(len(nodes))]
			}
			nd, err := n.AddNode(UnicastAddr(prefix, uint16(rng.Intn(2*lanes)), uint32(0x100+i)), parent)
			if err != nil {
				t.Fatal(err)
			}
			// Every node echoes once per distinct payload family, so cross-lane
			// deliveries spawn further cross-lane work mid-round.
			nd.Bind(Port6030, func(m Message) {
				if len(m.Payload) > 0 && m.Payload[0] == 'p' {
					peer := nodes[int(m.Payload[1])%len(nodes)]
					nd.Send(peer.Addr(), Port6030, []byte{'q', m.Payload[1]})
				}
			})
			nodes = append(nodes, nd)
		}
		for k := 0; k < sends; k++ {
			src := nodes[rng.Intn(len(nodes))]
			dst := nodes[rng.Intn(len(nodes))]
			at := time.Duration(rng.Intn(500)) * time.Millisecond
			payload := []byte{'p', byte(rng.Intn(256))}
			src.Schedule(at, func() { src.Send(dst.Addr(), Port6030, payload) })
		}
		if n.RunUntilIdle(10_000_000) == 0 {
			t.Fatal("no events executed")
		}
		ss, ok := n.ShardStats()
		if !ok {
			t.Fatal("network not sharded")
		}
		if ss.CausalityViolations != 0 {
			t.Fatalf("trial %d: %d causality violations (stats %+v)", trial, ss.CausalityViolations, ss)
		}
		n.Close()
	}
}

// deepChainRounds runs four deep per-zone cascades (one ping-pong message
// walking a 30-node chain, per lane) under the given window policy and
// returns the shard telemetry.
func deepChainRounds(tb testing.TB, global bool) ShardStats {
	tb.Helper()
	const (
		lanes   = 5 // lane 0 holds only the idle root
		depth   = 30
		bounces = 8
	)
	n := New(Config{Zones: lanes, Workers: 1, Seed: 7, GlobalLookahead: global})
	defer n.Close()
	prefix := PrefixFromAddr(addr("2001:db8::1"))
	root, err := n.AddNode(UnicastAddr(prefix, 0, 0x100), nil)
	if err != nil {
		tb.Fatal(err)
	}
	for z := 1; z < lanes; z++ {
		chain := make([]*Node, depth)
		parent := root
		for i := range chain {
			nd, err := n.AddNode(UnicastAddr(prefix, uint16(z), uint32(0x200+i)), parent)
			if err != nil {
				tb.Fatal(err)
			}
			chain[i] = nd
			parent = nd
		}
		left := bounces
		for i, nd := range chain {
			i, nd := i, nd
			nd.Bind(Port6030, func(m Message) {
				switch {
				case string(m.Payload) == "down" && i < depth-1:
					nd.Send(chain[i+1].Addr(), Port6030, m.Payload)
				case string(m.Payload) == "down":
					nd.Send(chain[i-1].Addr(), Port6030, []byte("up"))
				case i > 0:
					nd.Send(chain[i-1].Addr(), Port6030, m.Payload)
				default:
					if left--; left > 0 {
						nd.Send(chain[i+1].Addr(), Port6030, []byte("down"))
					}
				}
			})
		}
		head := chain[0]
		head.Schedule(time.Duration(z)*time.Millisecond, func() {
			head.Send(chain[1].Addr(), Port6030, []byte("down"))
		})
	}
	if n.RunUntilIdle(10_000_000) == 0 {
		tb.Fatal("cascade executed no events")
	}
	ss, ok := n.ShardStats()
	if !ok {
		tb.Fatal("network not sharded")
	}
	return ss
}

// TestLookaheadRoundCountDeepChains: on sparse deep-chain topologies the
// per-pair matrix must at least halve the barrier round count against the
// global-quantum policy. The min-plus closure bounds any lane's window at
// two lane-graph hops (an idle adjacent lane can always relay causality at
// one quantum each way), so 2x is both the achievable steady state and the
// ceiling: net of the single shared timer-prologue round, the cascade must
// hit it exactly or better.
func TestLookaheadRoundCountDeepChains(t *testing.T) {
	g := deepChainRounds(t, true)
	p := deepChainRounds(t, false)
	t.Logf("global: %+v", g)
	t.Logf("pair:   %+v", p)
	if g.Events != p.Events {
		t.Fatalf("window policy changed the executed event count: global %d, pair %d", g.Events, p.Events)
	}
	if p.CausalityViolations != 0 {
		t.Fatalf("pair-lookahead cascade recorded %d causality violations", p.CausalityViolations)
	}
	if g.Rounds-1 < 2*(p.Rounds-1) {
		t.Fatalf("per-pair lookahead did not halve the round count: global %d rounds, pair %d (want ≥2x net of the prologue round)",
			g.Rounds, p.Rounds)
	}
	if p.LaneRounds >= g.LaneRounds {
		t.Fatalf("lane occupancy did not improve: global %d lane-rounds, pair %d", g.LaneRounds, p.LaneRounds)
	}
}

// TestLookaheadSnapshotFallback: pairs the matrix has no node pair for yet
// snapshot to the conservative one-hop global quantum.
func TestLookaheadSnapshotFallback(t *testing.T) {
	la := newLookahead(3)
	q := 10 * time.Millisecond
	dst := make([]int64, 9)
	la.snapshotNs(q, dst)
	for i, v := range dst {
		if i/3 != i%3 && v != int64(q) {
			t.Fatalf("unknown pair %d,%d snapshot %d, want the global quantum %d", i/3, i%3, v, q)
		}
	}
}
