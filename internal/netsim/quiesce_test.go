package netsim

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestVirtualRunUntilQuiesced: the bounded drain runs everything due inside
// the horizon, reports idle only when the queue actually drained, and
// leaves later events queued.
func TestVirtualRunUntilQuiesced(t *testing.T) {
	c := NewVirtualClock()
	var ran []int
	c.Schedule(1*time.Second, func() { ran = append(ran, 1) })
	c.Schedule(2*time.Second, func() { ran = append(ran, 2) })
	c.Schedule(5*time.Second, func() { ran = append(ran, 5) })

	if c.RunUntilQuiesced(3 * time.Second) {
		t.Fatal("reported idle with an event still queued past the horizon")
	}
	if len(ran) != 2 || ran[0] != 1 || ran[1] != 2 {
		t.Fatalf("ran = %v, want the two due events in order", ran)
	}
	if now := c.Now(); now != 3*time.Second {
		t.Fatalf("clock at %v after a non-drained quiesce, want the 3s horizon", now)
	}
	if !c.RunUntilQuiesced(10 * time.Second) {
		t.Fatal("queue drained but quiesce reported not idle")
	}
	if len(ran) != 3 {
		t.Fatalf("ran = %v", ran)
	}
	if now := c.Now(); now != 5*time.Second {
		t.Fatalf("clock at %v after draining, want the last event's 5s (not the horizon)", now)
	}
	// Draining an empty queue is immediately idle and does not advance.
	if !c.RunUntilQuiesced(20*time.Second) || c.Now() != 5*time.Second {
		t.Fatalf("idle quiesce misbehaved: now = %v", c.Now())
	}
}

// TestVirtualQuiesceSelfRescheduling: an event that reschedules itself (the
// stream-tick shape) can never drain; the quiesce must stop at the horizon.
func TestVirtualQuiesceSelfRescheduling(t *testing.T) {
	c := NewVirtualClock()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		c.Schedule(time.Second, tick)
	}
	c.Schedule(time.Second, tick)
	if c.RunUntilQuiesced(10 * time.Second) {
		t.Fatal("self-rescheduling load reported idle")
	}
	if c.Now() != 10*time.Second {
		t.Fatalf("now = %v, want the horizon", c.Now())
	}
	if ticks != 10 {
		t.Fatalf("ticks = %d, want 10", ticks)
	}
}

// TestRealtimeWaitIdleUntil: the realtime variant drains within the horizon
// when the cascade is finite and gives up at the horizon when it is not.
func TestRealtimeWaitIdleUntil(t *testing.T) {
	c := NewRealtimeClock(RealtimeConfig{TimeScale: 1000})
	defer c.Stop()

	var fired atomic.Int32
	c.Schedule(100*time.Millisecond, func() { fired.Add(1) })
	c.Schedule(300*time.Millisecond, func() { fired.Add(1) })
	if !c.WaitIdleUntil(c.Now() + 30*time.Second) {
		t.Fatal("finite cascade did not drain inside a generous horizon")
	}
	if fired.Load() != 2 {
		t.Fatalf("fired = %d", fired.Load())
	}

	// A self-rescheduling tick never drains: the bounded wait must return
	// false once the horizon passes.
	var stop atomic.Bool
	var tick func()
	tick = func() {
		if !stop.Load() {
			c.Schedule(50*time.Millisecond, tick)
		}
	}
	c.Schedule(50*time.Millisecond, tick)
	if c.WaitIdleUntil(c.Now() + 2*time.Second) {
		t.Fatal("self-rescheduling load reported idle")
	}
	stop.Store(true)
	if !c.WaitIdleUntil(c.Now() + 30*time.Second) {
		t.Fatal("did not drain after the tick stopped rescheduling")
	}
}
