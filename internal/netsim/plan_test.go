package netsim

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"

	"micropnp/internal/hw"
)

// testTree builds an n-node k-ary tree (index 0 is the root).
func testTree(t *testing.T, n *Network, count, arity int) []*Node {
	t.Helper()
	nodes := make([]*Node, count)
	for i := 0; i < count; i++ {
		var parent *Node
		if i > 0 {
			parent = nodes[(i-1)/arity]
		}
		var bytes [16]byte
		bytes[0], bytes[1] = 0x20, 0x01
		bytes[12] = byte(i >> 24)
		bytes[13] = byte(i >> 16)
		bytes[14] = byte(i >> 8)
		bytes[15] = byte(i)
		nd, err := n.AddNode(netip.AddrFrom16(bytes), parent)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	return nodes
}

// planSnapshot reduces a plan to comparable state: member→hops plus the edge
// union size (delivery order is deterministic but splice-history-dependent,
// so equivalence is on sets).
func planSnapshot(p *mcastPlan) (targets map[*Node]int, edges int) {
	targets = map[*Node]int{}
	for _, t := range p.targets {
		targets[t.node] = t.hops
	}
	return targets, len(p.edgeRefs)
}

// TestIncrementalPlanMatchesRebuild drives randomized join/leave churn
// against several source nodes' cached plans and checks, after every
// operation, that the incrementally maintained plan is equivalent to a
// rebuild-from-scratch reference: same targets, same hop counts, same edge
// union (transmission count).
func TestIncrementalPlanMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5324))
	n := New(Config{})
	nodes := testTree(t, n, 120, 3)
	group := MulticastAddr(PrefixFromAddr(nodes[0].Addr()), 0xad1cbe01)
	srcs := []*Node{nodes[0], nodes[17], nodes[119]}

	// Start from a random membership and warm every source's plan.
	inGroup := map[*Node]bool{}
	for _, nd := range nodes {
		if rng.Intn(2) == 0 {
			nd.JoinGroup(group)
			inGroup[nd] = true
		}
	}
	warm := func() {
		n.topoMu.RLock()
		defer n.topoMu.RUnlock()
		for _, src := range srcs {
			n.multicastPlan(src, group)
		}
	}
	warm()

	check := func(step int) {
		n.topoMu.RLock()
		defer n.topoMu.RUnlock()
		for _, src := range srcs {
			got := n.multicastPlan(src, group)
			want := n.buildPlan(src, group)
			gt, ge := planSnapshot(got)
			wt, we := planSnapshot(want)
			if len(gt) != len(wt) {
				t.Fatalf("step %d src %v: %d targets, rebuild has %d", step, src.Addr(), len(gt), len(wt))
			}
			for nd, hops := range wt {
				if gt[nd] != hops {
					t.Fatalf("step %d src %v: member %v hops %d, rebuild says %d", step, src.Addr(), nd.Addr(), gt[nd], hops)
				}
			}
			if ge != we {
				t.Fatalf("step %d src %v: edge union %d, rebuild says %d", step, src.Addr(), ge, we)
			}
		}
	}

	for step := 0; step < 2000; step++ {
		nd := nodes[rng.Intn(len(nodes))]
		if inGroup[nd] {
			nd.LeaveGroup(group)
			delete(inGroup, nd)
		} else {
			nd.JoinGroup(group)
			inGroup[nd] = true
		}
		// Membership emptying drops the member set; plans for the group must
		// still agree with a rebuild (empty).
		if step%97 == 0 {
			warm() // re-warm in case a plan was never built for a new src
		}
		check(step)
	}

	// The maintained plan must also still route correctly end to end.
	var delivered int
	var mu sync.Mutex
	for nd := range inGroup {
		nd.Bind(Port6030, func(Message) { mu.Lock(); delivered++; mu.Unlock() })
	}
	want := len(inGroup)
	if inGroup[srcs[0]] {
		want-- // the source does not deliver to itself
	}
	srcs[0].Send(group, Port6030, []byte("post-churn"))
	n.RunUntilIdle(0)
	if delivered != want {
		t.Fatalf("post-churn send delivered %d, want %d", delivered, want)
	}
}

// TestPlanChurnTransmissionsMatch checks the refcounted edge union against
// observed transmission accounting after churn: leave+join cycles must leave
// the per-send transmission increment exactly where a cold rebuild puts it.
func TestPlanChurnTransmissionsMatch(t *testing.T) {
	n := New(Config{})
	nodes := testTree(t, n, 60, 2)
	group := MulticastAddr(PrefixFromAddr(nodes[0].Addr()), 0xed3f0ac1)
	for _, nd := range nodes[1:] {
		nd.JoinGroup(group)
		nd.Bind(Port6030, func(Message) {})
	}
	send := func() int {
		before := n.Stats().Transmissions
		nodes[0].Send(group, Port6030, []byte("x"))
		n.RunUntilIdle(0)
		return n.Stats().Transmissions - before
	}
	warmTx := send() // builds the plan

	// Churn half the members, then compare against a cold network built at
	// the final membership.
	for i := 1; i < len(nodes); i += 2 {
		nodes[i].LeaveGroup(group)
	}
	gotTx := send()

	cold := New(Config{})
	coldNodes := testTree(t, cold, 60, 2)
	for i, nd := range coldNodes[1:] {
		if (i+1)%2 == 0 { // the members that stayed
			nd.JoinGroup(group)
			nd.Bind(Port6030, func(Message) {})
		}
	}
	before := cold.Stats().Transmissions
	coldNodes[0].Send(group, Port6030, []byte("x"))
	cold.RunUntilIdle(0)
	wantTx := cold.Stats().Transmissions - before
	if gotTx != wantTx {
		t.Fatalf("transmissions after churn = %d, cold rebuild = %d (warm full group was %d)", gotTx, wantTx, warmTx)
	}
	if gotTx >= warmTx {
		t.Fatalf("halving the group must shrink the edge union: %d -> %d", warmTx, gotTx)
	}
}

// TestStripedRouteLocksRace exercises the per-group plan stripes under -race:
// concurrent senders warming plans for many groups, concurrent join/leave
// churn splicing them, and anycast lookups hitting the distance cache, across
// both clock modes.
func TestStripedRouteLocksRace(t *testing.T) {
	for _, realtime := range []bool{false, true} {
		name := "virtual"
		if realtime {
			name = "realtime"
		}
		t.Run(name, func(t *testing.T) {
			n := New(Config{Realtime: realtime, TimeScale: 10_000})
			defer n.Close()
			nodes := testTree(t, n, 200, 4)
			prefix := PrefixFromAddr(nodes[0].Addr())
			const groups = 8
			addrs := make([]netip.Addr, groups)
			for g := range addrs {
				addrs[g] = MulticastAddr(prefix, hw.DeviceID(0xad1c0000+uint32(g)))
			}
			for i, nd := range nodes {
				nd.Bind(Port6030, func(Message) {})
				nd.JoinGroup(addrs[i%groups])
			}
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				w := w
				wg.Add(1)
				go func() {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(w)))
					for i := 0; i < 400; i++ {
						nd := nodes[rng.Intn(len(nodes))]
						g := addrs[rng.Intn(groups)]
						switch rng.Intn(4) {
						case 0:
							nd.JoinGroup(g)
						case 1:
							nd.LeaveGroup(g)
						default:
							nd.Send(g, Port6030, []byte("race"))
						}
					}
				}()
			}
			wg.Wait()
			if !realtime {
				n.RunUntilIdle(0)
			}
		})
	}
}
