package netsim

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time-advancement engine behind a Network. Two implementations
// exist:
//
//   - VirtualClock: the deterministic discrete-event clock. Time advances
//     only while a caller drives Step/RunUntilIdle/RunUntil; handlers execute
//     inline on the driving goroutine. This is the default and keeps
//     simulations byte-for-byte reproducible.
//   - RealtimeClock: a wall-clock runtime. The event loop runs on its own
//     goroutine, fires timers via time.Timer (optionally compressed by a
//     time-scale factor), and dispatches handlers from a bounded worker
//     pool, so many callers can block on in-flight requests concurrently.
//
// All scheduling is expressed in virtual time; the clock decides how virtual
// time maps onto the caller's world.
type Clock interface {
	// Now returns the current virtual time.
	Now() time.Duration
	// Schedule runs fn at Now()+delay.
	Schedule(delay time.Duration, fn func())
	// ScheduleCancelable runs fn at Now()+delay and returns a cancel
	// function. A cancelled event neither runs nor (on the virtual clock)
	// advances time to its timestamp. Cancelling after the event fired, or
	// cancelling twice, is a no-op.
	ScheduleCancelable(delay time.Duration, fn func()) (cancel func())
	// Stop releases the clock's resources (loop goroutine and worker pool
	// for the realtime clock; a no-op for the virtual clock). Events still
	// queued are discarded. Stop is idempotent.
	Stop()
}

// Expirer receives typed expiry events: a deadline scheduled through
// ScheduleExpiry fires as ExpireEvent(seq, tok) instead of a closure call.
// Like pooled deliveries, this keeps the request hot path from allocating a
// closure (and its captures) per scheduled timeout. seq is an opaque caller
// cookie (callers pack sequence numbers and generation counters into it);
// tok is the caller's per-request state.
type Expirer interface {
	ExpireEvent(seq uint64, tok any)
}

// expiryCanceler is the clock-side half of ExpiryRef; both clock
// implementations satisfy it.
type expiryCanceler interface {
	cancelExpiry(ev *scheduled, gen uint64)
}

// ExpiryRef is the cancel handle for a typed expiry event. It is a plain
// value (no allocation); the zero value is inert. Cancelling after the event
// fired, or cancelling twice, is a no-op — exactly like the closures returned
// by ScheduleCancelable.
type ExpiryRef struct {
	c   expiryCanceler
	ev  *scheduled
	gen uint64
}

// Cancel revokes the expiry if it has not fired. Safe on the zero value.
func (r ExpiryRef) Cancel() {
	if r.c != nil {
		r.c.cancelExpiry(r.ev, r.gen)
	}
}

type eventState uint8

const (
	evPending eventState = iota
	evCancelled
	evFired
)

// scheduled is one queued event: either a plain closure (fn) or a pooled
// packet delivery (del) — the typed variant lets the hot path schedule a
// delivery without allocating a closure per datagram copy.
//
// Events are recycled along two paths. Plain events (Schedule, deliveries)
// go through the global scheduledPool: nothing references them after they
// fire. Cancelable events instead return to their heap's freelist: their
// cancel closure retains the pointer indefinitely, so they must never
// migrate to another clock (a stale cancel would race the new owner's lock),
// and reuse is guarded by the generation counter — a recycled event's gen no
// longer matches the one the stale cancel captured, making it a no-op.
type scheduled struct {
	at  time.Duration
	seq int
	fn  func()
	del *delivery
	// exp/expSeq/expTok carry a typed expiry event (ScheduleExpiry); like
	// del, the typed form exists so the request hot path schedules a
	// deadline without a closure allocation. Exactly one of fn/del/exp is
	// set on a pending event.
	exp    Expirer
	expSeq uint64
	expTok any
	state  eventState
	// poolable marks plain events (global pool); cancelable events carry
	// gen/next for the per-heap freelist instead.
	poolable bool
	gen      uint64
	next     *scheduled
}

var scheduledPool = sync.Pool{New: func() any { return new(scheduled) }}

// recycleEvent returns a fired poolable event to the global pool. The caller
// must hold the only remaining reference.
func recycleEvent(ev *scheduled) {
	if !ev.poolable {
		return
	}
	*ev = scheduled{}
	scheduledPool.Put(ev)
}

// eventQueue is a binary min-heap of events ordered by (at, seq); the seq
// tiebreaker makes delivery order deterministic and identical to the former
// stable-sorted-slice implementation (the ordering key is total, so heap
// pop order equals sorted order).
type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*scheduled)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil // release the slot so popped events do not pin the array
	*q = old[:n-1]
	return ev
}

// eventHeap is the lazy-deletion event heap both clock implementations build
// on. It is not self-locking: the owning clock guards it with its own mutex.
type eventHeap struct {
	queue eventQueue
	dead  int // cancelled events still in the heap (lazy deletion)
	seq   int // tiebreaker for stable ordering
	// free is the intrusive freelist of retired cancelable events. Bounded
	// by the high-water mark of concurrently pending cancelables.
	free *scheduled
}

// pushAt inserts a plain (non-cancelable) event at an absolute virtual
// timestamp; it is recycled through the global pool once fired.
func (h *eventHeap) pushAt(at time.Duration, fn func()) *scheduled {
	ev := scheduledPool.Get().(*scheduled)
	h.seq++
	ev.at, ev.seq, ev.fn, ev.del = at, h.seq, fn, nil
	ev.state, ev.poolable = evPending, true
	heap.Push(&h.queue, ev)
	return ev
}

// pushDeliveryAt inserts a pooled packet delivery (plain, globally pooled).
func (h *eventHeap) pushDeliveryAt(at time.Duration, del *delivery) {
	ev := scheduledPool.Get().(*scheduled)
	h.seq++
	ev.at, ev.seq, ev.fn, ev.del = at, h.seq, nil, del
	ev.state, ev.poolable = evPending, true
	heap.Push(&h.queue, ev)
}

// pushCancelableAt inserts a cancelable event, reusing the heap's freelist.
// The returned generation must be captured by the cancel closure and passed
// back to cancel: it is what makes a stale cancel of a recycled event a
// no-op.
func (h *eventHeap) pushCancelableAt(at time.Duration, fn func()) (*scheduled, uint64) {
	ev := h.free
	if ev != nil {
		h.free = ev.next
		ev.next = nil
	} else {
		ev = &scheduled{}
	}
	h.seq++
	ev.at, ev.seq, ev.fn, ev.del = at, h.seq, fn, nil
	ev.state, ev.poolable = evPending, false
	heap.Push(&h.queue, ev)
	return ev, ev.gen
}

// pushExpiryAt inserts a typed expiry event (cancelable, per-heap freelist —
// same lifecycle as pushCancelableAt, without the per-call closure).
func (h *eventHeap) pushExpiryAt(at time.Duration, e Expirer, seq uint64, tok any) (*scheduled, uint64) {
	ev := h.free
	if ev != nil {
		h.free = ev.next
		ev.next = nil
	} else {
		ev = &scheduled{}
	}
	h.seq++
	ev.at, ev.seq, ev.fn, ev.del = at, h.seq, nil, nil
	ev.exp, ev.expSeq, ev.expTok = e, seq, tok
	ev.state, ev.poolable = evPending, false
	heap.Push(&h.queue, ev)
	return ev, ev.gen
}

// retire recycles an event that left the queue (fired or discarded while
// cancelled). Cancelable events return to the freelist with their generation
// bumped; plain events are left for the caller to hand to the global pool
// once outside the clock lock.
func (h *eventHeap) retire(ev *scheduled) {
	if ev.poolable {
		return
	}
	ev.gen++
	ev.fn = nil
	ev.exp, ev.expTok = nil, nil
	ev.next = h.free
	h.free = ev
}

// cancel marks a pending event dead and compacts when dead events dominate.
// It reports whether the event was still pending; a generation mismatch
// (the event was recycled since this cancel handle was made) is a no-op.
func (h *eventHeap) cancel(ev *scheduled, gen uint64) bool {
	if ev.gen != gen || ev.state != evPending {
		return false
	}
	ev.state = evCancelled
	ev.fn = nil // release the closure right away
	ev.exp, ev.expTok = nil, nil
	h.dead++
	h.compact()
	return true
}

// compact rebuilds the heap without cancelled events once they outnumber
// live ones (amortised O(1) per cancellation).
func (h *eventHeap) compact() {
	if h.dead <= 64 || h.dead*2 <= len(h.queue) {
		return
	}
	live := h.queue[:0]
	for _, ev := range h.queue {
		if ev.state == evPending {
			live = append(live, ev)
		} else {
			h.retire(ev)
		}
	}
	for i := len(live); i < len(h.queue); i++ {
		h.queue[i] = nil
	}
	h.queue = live
	heap.Init(&h.queue)
	h.dead = 0
}

// pop removes and returns the next live event, discarding (and retiring)
// cancelled ones, or nil when the queue is drained. The caller extracts
// fn/del and retires the fired event under the clock lock before running it.
func (h *eventHeap) pop() *scheduled {
	for len(h.queue) > 0 {
		ev := heap.Pop(&h.queue).(*scheduled)
		if ev.state == evCancelled {
			h.dead--
			h.retire(ev)
			continue
		}
		ev.state = evFired
		return ev
	}
	return nil
}

// peek returns the next live event without removing it, discarding cancelled
// events from the top, or nil when the queue is drained.
func (h *eventHeap) peek() *scheduled {
	for len(h.queue) > 0 {
		ev := h.queue[0]
		if ev.state != evCancelled {
			return ev
		}
		heap.Pop(&h.queue)
		h.dead--
		h.retire(ev)
	}
	return nil
}

// live returns the number of pending (not cancelled) events.
func (h *eventHeap) live() int { return len(h.queue) - h.dead }

// firing is an event payload lifted out of the heap, runnable outside the
// clock lock. Exactly one of fn/del/exp is set.
type firing struct {
	fn     func()
	del    *delivery
	exp    Expirer
	expSeq uint64
	expTok any
}

func (f firing) run() {
	switch {
	case f.del != nil:
		f.del.run()
	case f.exp != nil:
		f.exp.ExpireEvent(f.expSeq, f.expTok)
	default:
		f.fn()
	}
}

// extractFiring empties a popped event's payload into a firing and retires
// the event on its heap (clock lock held). It reports whether the caller must
// hand the event to the global pool once outside the lock.
func extractFiring(h *eventHeap, ev *scheduled) (firing, bool) {
	f := firing{fn: ev.fn, del: ev.del, exp: ev.exp, expSeq: ev.expSeq, expTok: ev.expTok}
	ev.fn, ev.del = nil, nil
	pool := ev.poolable
	h.retire(ev)
	return f, pool
}

// VirtualClock is the deterministic discrete-event clock: time advances only
// while a caller drives it, handlers run inline on the driving goroutine,
// and event order is total (timestamp, then schedule order), so runs are
// byte-for-byte reproducible.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Duration
	eh  eventHeap
}

// NewVirtualClock builds a virtual clock starting at time zero.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now returns the virtual time.
func (c *VirtualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Schedule runs fn at Now()+delay (virtual).
func (c *VirtualClock) Schedule(delay time.Duration, fn func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eh.pushAt(c.now+delay, fn)
}

// scheduleDelivery queues a pooled packet delivery at Now()+delay.
func (c *VirtualClock) scheduleDelivery(delay time.Duration, del *delivery) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eh.pushDeliveryAt(c.now+delay, del)
}

// ScheduleCancelable runs fn at Now()+delay and returns a cancel function.
// A cancelled event is dropped entirely: it neither runs nor advances the
// clock to its timestamp — request deadlines use this so completed
// requests leave no dead time behind. Cancelling after the event fired (or
// cancelling twice) is a no-op. Cancellation is O(1): the event is marked
// dead and skipped when it surfaces, and the queue compacts when dead
// events dominate, so cancelled entries do not pin the backing array.
func (c *VirtualClock) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	c.mu.Lock()
	ev, gen := c.eh.pushCancelableAt(c.now+delay, fn)
	c.mu.Unlock()
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.eh.cancel(ev, gen)
	}
}

// scheduleExpiry queues a typed expiry event at Now()+delay: cancellation
// semantics match ScheduleCancelable, but neither the schedule nor the cancel
// handle allocates.
func (c *VirtualClock) scheduleExpiry(delay time.Duration, e Expirer, seq uint64, tok any) ExpiryRef {
	c.mu.Lock()
	ev, gen := c.eh.pushExpiryAt(c.now+delay, e, seq, tok)
	c.mu.Unlock()
	return ExpiryRef{c: c, ev: ev, gen: gen}
}

// cancelExpiry implements expiryCanceler.
func (c *VirtualClock) cancelExpiry(ev *scheduled, gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.eh.cancel(ev, gen)
}

// Stop implements Clock; the virtual clock owns no resources.
func (c *VirtualClock) Stop() {}

// Step executes the next scheduled event, advancing the clock. It reports
// whether an event ran.
func (c *VirtualClock) Step() bool {
	c.mu.Lock()
	ev := c.eh.pop()
	if ev == nil {
		c.mu.Unlock()
		return false
	}
	if ev.at > c.now {
		c.now = ev.at
	}
	f, pool := extractFiring(&c.eh, ev)
	c.mu.Unlock()
	if pool {
		recycleEvent(ev)
	}
	f.run()
	return true
}

// RunUntilIdle steps until no events remain (bounded by maxSteps; 0 means
// the 1e6 default). It returns the number of steps.
func (c *VirtualClock) RunUntilIdle(maxSteps int) int {
	if maxSteps <= 0 {
		maxSteps = 1_000_000
	}
	steps := 0
	for steps < maxSteps && c.Step() {
		steps++
	}
	return steps
}

// RunUntil processes events up to (and including) the given virtual
// deadline, then advances the clock to the deadline. Use this to drive
// self-rescheduling activities such as streams, which never go idle.
func (c *VirtualClock) RunUntil(deadline time.Duration) int {
	steps := 0
	for {
		c.mu.Lock()
		next := c.eh.peek()
		if next == nil || next.at > deadline {
			if c.now < deadline {
				c.now = deadline
			}
			c.mu.Unlock()
			return steps
		}
		ev := c.eh.pop()
		if ev.at > c.now {
			c.now = ev.at
		}
		f, pool := extractFiring(&c.eh, ev)
		c.mu.Unlock()
		if pool {
			recycleEvent(ev)
		}
		f.run()
		steps++
	}
}

// RunUntilQuiesced processes events up to (and including) the given virtual
// deadline, reporting whether the queue drained before reaching it — the
// bounded companion of RunUntilIdle for networks that can never go idle
// (active streams reschedule themselves forever). On a drain the clock stays
// at the last event's time, like RunUntilIdle; otherwise it advances exactly
// to the deadline, like RunUntil, and the remaining events stay queued.
func (c *VirtualClock) RunUntilQuiesced(deadline time.Duration) bool {
	for {
		c.mu.Lock()
		next := c.eh.peek()
		if next == nil {
			c.mu.Unlock()
			return true
		}
		if next.at > deadline {
			if c.now < deadline {
				c.now = deadline
			}
			c.mu.Unlock()
			return false
		}
		ev := c.eh.pop()
		if ev.at > c.now {
			c.now = ev.at
		}
		f, pool := extractFiring(&c.eh, ev)
		c.mu.Unlock()
		if pool {
			recycleEvent(ev)
		}
		f.run()
	}
}

// queueCap exposes the event queue's backing capacity; leak tests assert it
// stays bounded across long schedule/cancel/step runs.
func (c *VirtualClock) queueCap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cap(c.eh.queue)
}
