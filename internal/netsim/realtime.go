package netsim

import (
	"runtime"
	"sync"
	"time"
)

// Due events awaiting a pool worker are firing values (closure, pooled
// packet delivery, or typed expiry), extracted from the heap by the loop.

// RealtimeConfig tunes the wall-clock runtime.
type RealtimeConfig struct {
	// TimeScale maps virtual time onto wall time: a wall second covers
	// TimeScale seconds of virtual time. 1 (or 0) runs in real time;
	// 100 runs a hundred-fold accelerated, so the paper's multi-second
	// plug-in sequences play out in tens of milliseconds. The scale must
	// not be negative.
	TimeScale float64
	// Workers bounds the handler worker pool (0 = min(GOMAXPROCS, 8)).
	// Handlers dispatch from this pool, so at most Workers handlers run
	// concurrently; ready events queue (in timestamp order) when all
	// workers are busy.
	Workers int
}

// RealtimeClock runs the event loop on its own goroutine under the wall
// clock: timers fire via time.Timer (compressed by TimeScale), and due
// handlers are dispatched from a bounded worker pool, so handlers for
// independent events run concurrently and callers block on real channels
// instead of driving the loop themselves.
//
// Virtual timestamps remain the scheduling currency: Now() is the wall time
// elapsed since the clock started, multiplied by the time scale. Runs are
// NOT deterministic — wall-clock jitter reorders same-window events and
// handlers race in the pool. Use the VirtualClock for reproducibility.
type RealtimeClock struct {
	scale   float64
	workers int

	mu   sync.Mutex
	cond *sync.Cond // broadcast on any state change: runq, running, queue
	eh   eventHeap
	// runq holds due events awaiting a worker, in pop order. head indexes
	// the next entry; popping advances head instead of reslicing so the
	// backing array is reused once drained (a q=q[1:] pop would force a
	// fresh allocation per queue refill on the hot path).
	runq []firing
	head int
	// running counts handlers currently executing in the pool.
	running int
	stopped bool

	start time.Time // wall anchor; virtual now = elapsed(start) * scale

	wake     chan struct{} // kicks the loop out of a timer wait
	done     chan struct{} // closed by Stop
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// NewRealtimeClock builds and starts a wall-clock runtime.
func NewRealtimeClock(cfg RealtimeConfig) *RealtimeClock {
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = 1
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 8 {
			workers = 8
		}
	}
	c := &RealtimeClock{
		scale:   scale,
		workers: workers,
		start:   time.Now(),
		wake:    make(chan struct{}, 1),
		done:    make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	c.wg.Add(1 + workers)
	go c.loop()
	for i := 0; i < workers; i++ {
		go c.worker()
	}
	return c
}

// nowLocked computes the virtual time (c.mu held or single-writer start).
func (c *RealtimeClock) nowLocked() time.Duration {
	return time.Duration(float64(time.Since(c.start)) * c.scale)
}

// Now returns the current virtual time.
func (c *RealtimeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.nowLocked()
}

// TimeScale returns the virtual-per-wall time factor.
func (c *RealtimeClock) TimeScale() float64 { return c.scale }

// Workers returns the worker-pool bound.
func (c *RealtimeClock) Workers() int { return c.workers }

// Schedule runs fn at Now()+delay (virtual) on a pool worker. Scheduling
// against a stopped clock is a silent no-op, mirroring cancelled events.
func (c *RealtimeClock) Schedule(delay time.Duration, fn func()) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.eh.pushAt(c.nowLocked()+delay, fn)
	c.mu.Unlock()
	c.kick()
}

// scheduleDelivery queues a pooled packet delivery at Now()+delay. On a
// stopped clock the delivery is dropped (its buffer is left to the GC).
func (c *RealtimeClock) scheduleDelivery(delay time.Duration, del *delivery) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.eh.pushDeliveryAt(c.nowLocked()+delay, del)
	c.mu.Unlock()
	c.kick()
}

// ScheduleCancelable runs fn at Now()+delay and returns a cancel function;
// semantics match the virtual clock's (identity-checked, idempotent, O(1)).
func (c *RealtimeClock) ScheduleCancelable(delay time.Duration, fn func()) (cancel func()) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return func() {}
	}
	ev, gen := c.eh.pushCancelableAt(c.nowLocked()+delay, fn)
	c.mu.Unlock()
	c.kick()
	return func() {
		c.mu.Lock()
		if c.eh.cancel(ev, gen) {
			// A cancellation can empty the queue: wake idle waiters.
			c.cond.Broadcast()
		}
		c.mu.Unlock()
	}
}

// scheduleExpiry queues a typed expiry event at Now()+delay; on a stopped
// clock it returns the inert zero ExpiryRef and the event never fires
// (callers unblock through the deployment's close channel, as with
// ScheduleCancelable's no-op cancel).
func (c *RealtimeClock) scheduleExpiry(delay time.Duration, e Expirer, seq uint64, tok any) ExpiryRef {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return ExpiryRef{}
	}
	ev, gen := c.eh.pushExpiryAt(c.nowLocked()+delay, e, seq, tok)
	c.mu.Unlock()
	c.kick()
	return ExpiryRef{c: c, ev: ev, gen: gen}
}

// cancelExpiry implements expiryCanceler.
func (c *RealtimeClock) cancelExpiry(ev *scheduled, gen uint64) {
	c.mu.Lock()
	if c.eh.cancel(ev, gen) {
		c.cond.Broadcast()
	}
	c.mu.Unlock()
}

// runqLen returns the number of due events awaiting a worker (c.mu held).
func (c *RealtimeClock) runqLen() int { return len(c.runq) - c.head }

// kick nudges the loop to re-examine the queue head (non-blocking).
func (c *RealtimeClock) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// loop is the scheduler goroutine: it sleeps until the earliest pending
// event is due on the wall clock, then moves every due event (in timestamp
// order) onto the worker run queue.
func (c *RealtimeClock) loop() {
	defer c.wg.Done()
	// One reusable timer for all waits (Go 1.23 timer semantics make Reset
	// after Stop race-free); allocating a fresh timer per wait dominated the
	// loop's allocation profile under load.
	timer := time.NewTimer(time.Hour)
	timer.Stop()
	for {
		c.mu.Lock()
		if c.stopped {
			c.mu.Unlock()
			return
		}
		ev := c.eh.peek()
		if ev == nil {
			c.mu.Unlock()
			select {
			case <-c.wake:
				continue
			case <-c.done:
				return
			}
		}
		nowV := c.nowLocked()
		if ev.at <= nowV {
			ev = c.eh.pop()
			f, pool := extractFiring(&c.eh, ev)
			c.runq = append(c.runq, f)
			c.cond.Broadcast()
			c.mu.Unlock()
			if pool {
				recycleEvent(ev)
			}
			continue
		}
		wait := time.Duration(float64(ev.at-nowV) / c.scale)
		c.mu.Unlock()
		timer.Reset(wait)
		select {
		case <-timer.C:
		case <-c.wake:
			timer.Stop()
		case <-c.done:
			timer.Stop()
			return
		}
	}
}

// worker executes due handlers from the run queue.
func (c *RealtimeClock) worker() {
	defer c.wg.Done()
	for {
		c.mu.Lock()
		for c.runqLen() == 0 && !c.stopped {
			c.cond.Wait()
		}
		if c.stopped {
			c.mu.Unlock()
			return
		}
		r := c.runq[c.head]
		c.runq[c.head] = firing{}
		c.head++
		if c.head == len(c.runq) {
			// Drained: rewind onto the same backing array. Cap the reused
			// array so one burst does not pin a large buffer forever.
			c.head = 0
			if cap(c.runq) > 1024 {
				c.runq = nil
			} else {
				c.runq = c.runq[:0]
			}
		}
		c.running++
		c.mu.Unlock()
		r.run()
		c.mu.Lock()
		c.running--
		// Completion may have made the runtime idle: wake WaitIdle.
		c.cond.Broadcast()
		c.mu.Unlock()
	}
}

// WaitIdle blocks until no events are pending, none are queued for a worker
// and none are running — i.e. the cascade triggered so far has fully played
// out — or the clock is stopped. Self-rescheduling activities (active
// streams) never go idle; bound those waits with RunUntil instead.
func (c *RealtimeClock) WaitIdle() {
	c.mu.Lock()
	for !c.stopped && !(c.eh.live() == 0 && c.runqLen() == 0 && c.running == 0) {
		if c.eh.live() > 0 && c.runqLen() == 0 && c.running == 0 {
			// Only future events remain; the loop is asleep on its timer and
			// nothing will broadcast until it fires. Poll on a wall tick
			// scaled to the next event so WaitIdle neither spins nor sleeps
			// past the cascade's tail.
			next := c.eh.peek()
			nowV := c.nowLocked()
			wait := time.Duration(0)
			if next != nil && next.at > nowV {
				wait = time.Duration(float64(next.at-nowV) / c.scale)
			}
			c.mu.Unlock()
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			select {
			case <-time.After(wait):
			case <-c.done:
				return
			}
			c.mu.Lock()
			continue
		}
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// WaitIdleUntil is WaitIdle with a horizon: it blocks until the runtime went
// idle (reporting true) or until the virtual deadline passed on the (scaled)
// wall clock (reporting false, with whatever is still scheduled left to run)
// — the bounded drain for runtimes that can never go idle because active
// streams reschedule themselves forever. A stopped clock reports false.
func (c *RealtimeClock) WaitIdleUntil(deadline time.Duration) bool {
	// Arm a wall-clock wakeup at the deadline: cond.Wait has no timeout, so
	// the waiters below need an external broadcast when time runs out.
	nowV := c.Now()
	if wall := time.Duration(float64(deadline-nowV) / c.scale); wall > 0 {
		t := time.AfterFunc(wall, func() {
			c.mu.Lock()
			c.cond.Broadcast()
			c.mu.Unlock()
		})
		defer t.Stop()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for {
		if c.stopped {
			return false
		}
		if c.eh.live() == 0 && c.runqLen() == 0 && c.running == 0 {
			return true
		}
		nowV = c.nowLocked()
		if nowV >= deadline {
			return false
		}
		if c.eh.live() > 0 && c.runqLen() == 0 && c.running == 0 {
			// Only future events remain; the loop is asleep on its timer and
			// nothing will broadcast until it fires. Poll on a wall tick
			// bounded by both the next event and the deadline (see WaitIdle).
			next := c.eh.peek()
			bound := deadline
			if next != nil && next.at < bound {
				bound = next.at
			}
			wait := time.Duration(0)
			if bound > nowV {
				wait = time.Duration(float64(bound-nowV) / c.scale)
			}
			c.mu.Unlock()
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			select {
			case <-time.After(wait):
			case <-c.done:
			}
			c.mu.Lock()
			continue
		}
		c.cond.Wait()
	}
}

// queueCap exposes the event queue's backing capacity (leak tests).
func (c *RealtimeClock) queueCap() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cap(c.eh.queue)
}

// Stop terminates the loop and the worker pool and discards queued events.
// It blocks until every goroutine exited (a handler already running is
// allowed to finish). Stop is idempotent and safe to call concurrently —
// every caller, not just the first, returns only after the goroutines are
// gone. Do not call Stop from inside a handler (it would wait on itself).
func (c *RealtimeClock) Stop() {
	c.stopOnce.Do(func() {
		c.mu.Lock()
		c.stopped = true
		c.runq, c.head = nil, 0
		c.cond.Broadcast()
		c.mu.Unlock()
		close(c.done)
	})
	c.wg.Wait()
	// Wake any WaitIdle callers that raced the shutdown.
	c.cond.Broadcast()
}
