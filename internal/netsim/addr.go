package netsim

import (
	"fmt"
	"net/netip"

	"micropnp/internal/hw"
)

// Multicast addressing schema (Section 5.1, Figure 9):
//
//	| 32 bits    | 48 bits          | 16 bits | 32 bits      |
//	| ff3e:0030  | network prefix   | zero    | peripheral   |
//
// The first 32 bits are the fixed unicast-prefix-based multicast prefix
// 0xff3e0030 (flags 3 = prefix-based + rendezvous semantics per RFC 3306,
// scope e = global, and the µPnP protocol discriminator 0x0030 — port 6030's
// namesake). The last 32 bits carry the peripheral type identifier from the
// µPnP hardware, or one of the two reserved values.

// SchemaPrefix is the fixed leading 32 bits of every µPnP multicast address.
var SchemaPrefix = [4]byte{0xff, 0x3e, 0x00, 0x30}

// NetworkPrefix is the 48-bit routing prefix of a µPnP network (e.g.
// 2001:db8:0000::/48).
type NetworkPrefix [6]byte

// PrefixFromAddr extracts the 48-bit network prefix of a unicast address.
func PrefixFromAddr(a netip.Addr) NetworkPrefix {
	var p NetworkPrefix
	b := a.As16()
	copy(p[:], b[:6])
	return p
}

// MulticastAddr builds the group address for a peripheral type inside a
// network prefix (Figure 9).
func MulticastAddr(prefix NetworkPrefix, id hw.DeviceID) netip.Addr {
	return MulticastAddrZone(prefix, 0, id)
}

// MulticastAddrZone builds a location-scoped group address: the Section 9
// "location-aware multicast groups" extension reuses the schema's 16-bit
// padding field as a zone identifier, so clients can reason over both a
// class of device and its physical location. Zone 0 is the unscoped
// (Figure 9) form.
func MulticastAddrZone(prefix NetworkPrefix, zone uint16, id hw.DeviceID) netip.Addr {
	var b [16]byte
	copy(b[0:4], SchemaPrefix[:])
	copy(b[4:10], prefix[:])
	b[10] = byte(zone >> 8)
	b[11] = byte(zone)
	b[12] = byte(id >> 24)
	b[13] = byte(id >> 16)
	b[14] = byte(id >> 8)
	b[15] = byte(id)
	return netip.AddrFrom16(b)
}

// AllClientsAddr is the group of all µPnP clients in the prefix (reserved
// peripheral value 0xffffffff).
func AllClientsAddr(prefix NetworkPrefix) netip.Addr {
	return MulticastAddr(prefix, hw.DeviceIDAllClients)
}

// AllPeripheralsAddr is the group of all µPnP Things regardless of
// peripheral (reserved value 0x00000000).
func AllPeripheralsAddr(prefix NetworkPrefix) netip.Addr {
	return MulticastAddr(prefix, hw.DeviceIDAllPeripherals)
}

// ParseMulticast validates a zone-0 µPnP multicast address and extracts the
// network prefix and peripheral identifier.
func ParseMulticast(a netip.Addr) (NetworkPrefix, hw.DeviceID, error) {
	p, zone, id, err := ParseMulticastZone(a)
	if err != nil {
		return NetworkPrefix{}, 0, err
	}
	if zone != 0 {
		return NetworkPrefix{}, 0, fmt.Errorf("netsim: %v is zone-scoped (zone %d)", a, zone)
	}
	return p, id, nil
}

// ParseMulticastZone validates a µPnP multicast address (zone-scoped or
// not) and extracts the network prefix, zone and peripheral identifier.
func ParseMulticastZone(a netip.Addr) (NetworkPrefix, uint16, hw.DeviceID, error) {
	b := a.As16()
	if [4]byte{b[0], b[1], b[2], b[3]} != SchemaPrefix {
		return NetworkPrefix{}, 0, 0, fmt.Errorf("netsim: %v is not a µPnP multicast address", a)
	}
	var p NetworkPrefix
	copy(p[:], b[4:10])
	zone := uint16(b[10])<<8 | uint16(b[11])
	id := hw.DeviceID(b[12])<<24 | hw.DeviceID(b[13])<<16 | hw.DeviceID(b[14])<<8 | hw.DeviceID(b[15])
	return p, zone, id, nil
}

// UnicastAddr builds a unicast host address inside a network prefix, with
// the same 16-bit field the multicast schema uses (bytes 10..11) carrying the
// host's address zone. Zone 0 with a small host number reproduces the classic
// 2001:db8::1xx layout; non-zero zones place the host in a zone partition the
// sharded simulator can run on its own event heap and worker.
func UnicastAddr(prefix NetworkPrefix, zone uint16, host uint32) netip.Addr {
	var b [16]byte
	copy(b[0:6], prefix[:])
	b[10] = byte(zone >> 8)
	b[11] = byte(zone)
	b[12] = byte(host >> 24)
	b[13] = byte(host >> 16)
	b[14] = byte(host >> 8)
	b[15] = byte(host)
	return netip.AddrFrom16(b)
}

// ZoneFromAddr extracts the 16-bit address zone of a unicast host address
// (bytes 10..11, mirroring the multicast schema's zone field). Classic
// 2001:db8::1xx addresses carry zone 0.
func ZoneFromAddr(a netip.Addr) uint16 {
	b := a.As16()
	return uint16(b[10])<<8 | uint16(b[11])
}

// ClassGroup returns the class-wildcard group address (the Section 9
// hierarchical-typing extension): Things serving a peripheral whose
// structured identifier carries this class join it alongside the exact
// type group.
func ClassGroup(prefix NetworkPrefix, class uint8) netip.Addr {
	return MulticastAddr(prefix, hw.ClassWildcard(class))
}

// IsUPnPMulticast reports whether a follows the Figure 9 schema.
func IsUPnPMulticast(a netip.Addr) bool {
	_, _, err := ParseMulticast(a)
	return err == nil
}
