package netsim

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"micropnp/internal/hw"
)

func TestZoneAddrRoundTrip(t *testing.T) {
	prefix := PrefixFromAddr(netip.MustParseAddr("2001:db8::1"))
	f := func(zone uint16, raw uint32) bool {
		id := hw.DeviceID(raw)
		a := MulticastAddrZone(prefix, zone, id)
		p, z, got, err := ParseMulticastZone(a)
		return err == nil && p == prefix && z == zone && got == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZoneZeroEquivalence(t *testing.T) {
	prefix := PrefixFromAddr(netip.MustParseAddr("2001:db8::1"))
	if MulticastAddrZone(prefix, 0, 0x42) != MulticastAddr(prefix, 0x42) {
		t.Fatal("zone 0 must equal the Figure 9 form")
	}
}

func TestParseMulticastRejectsZoned(t *testing.T) {
	prefix := PrefixFromAddr(netip.MustParseAddr("2001:db8::1"))
	zoned := MulticastAddrZone(prefix, 7, 0x42)
	if _, _, err := ParseMulticast(zoned); err == nil {
		t.Fatal("the strict parser must reject zone-scoped addresses")
	}
	if _, z, id, err := ParseMulticastZone(zoned); err != nil || z != 7 || id != 0x42 {
		t.Fatalf("zone parser: z=%d id=%v err=%v", z, id, err)
	}
}

func TestClassGroupAddress(t *testing.T) {
	prefix := PrefixFromAddr(netip.MustParseAddr("2001:db8::1"))
	g := ClassGroup(prefix, hw.ClassTemperature)
	_, id, err := ParseMulticast(g)
	if err != nil {
		t.Fatal(err)
	}
	if !id.Structured().IsClassWildcard() || id.Structured().Class != hw.ClassTemperature {
		t.Fatalf("class group id = %v", id)
	}
}

func TestZoneGroupsAreDistinct(t *testing.T) {
	// Zone scoping must partition delivery: members of zone 1 do not see
	// zone 2 traffic for the same peripheral type.
	n := New(Config{})
	root, _ := n.AddNode(netip.MustParseAddr("2001:db8::1"), nil)
	a, _ := n.AddNode(netip.MustParseAddr("2001:db8::2"), root)
	b, _ := n.AddNode(netip.MustParseAddr("2001:db8::3"), root)
	prefix := PrefixFromAddr(root.Addr())

	g1 := MulticastAddrZone(prefix, 1, 0x42)
	g2 := MulticastAddrZone(prefix, 2, 0x42)
	a.JoinGroup(g1)
	b.JoinGroup(g2)

	var gotA, gotB int
	a.Bind(Port6030, func(Message) { gotA++ })
	b.Bind(Port6030, func(Message) { gotB++ })

	root.Send(g1, Port6030, []byte("zone1"))
	n.RunUntilIdle(0)
	if gotA != 1 || gotB != 0 {
		t.Fatalf("zone 1 traffic: a=%d b=%d", gotA, gotB)
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	n := New(Config{})
	fired := []time.Duration{}
	for _, at := range []time.Duration{time.Second, 2 * time.Second, 3 * time.Second} {
		at := at
		n.Schedule(at, func() { fired = append(fired, at) })
	}
	steps := n.RunUntil(2 * time.Second)
	if steps != 2 || len(fired) != 2 {
		t.Fatalf("steps=%d fired=%v", steps, fired)
	}
	if n.Now() != 2*time.Second {
		t.Fatalf("clock = %v, must advance exactly to the deadline", n.Now())
	}
	// The remaining event still runs later.
	n.RunUntilIdle(0)
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
}

func TestRunUntilWithRecurringEvents(t *testing.T) {
	n := New(Config{})
	count := 0
	var tick func()
	tick = func() {
		count++
		n.Schedule(time.Second, tick)
	}
	n.Schedule(time.Second, tick)
	n.RunUntil(5 * time.Second)
	if count != 5 {
		t.Fatalf("ticks = %d, want 5 (self-rescheduling bounded by deadline)", count)
	}
}
