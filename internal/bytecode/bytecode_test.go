package bytecode

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func sampleProgram(t testing.TB) *Program {
	t.Helper()
	a := NewAssembler()
	a.Push(0)
	a.Emit(OpStoreStatic, 0)
	a.Emit(OpReturnVoid)
	initCode, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	a = NewAssembler()
	a.Emit(OpLoadStatic, 0)
	a.Push(12)
	a.Emit(OpEq)
	a.Jump(OpJz, "done")
	a.Signal(0, 1, 0)
	a.Label("done")
	a.Emit(OpReturnVoid)
	readCode, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}

	return &Program{
		DeviceID: 0xad1cbe01,
		Statics:  []StaticDef{{Size: 1}, {Size: 12}},
		Imports:  []string{"uart"},
		Consts:   []string{"this", "readDone", "uart"},
		Handlers: []Handler{
			{Kind: KindEvent, Name: "init", Code: initCode},
			{Kind: KindEvent, Name: "destroy", Code: []byte{byte(OpReturnVoid)}},
			{Kind: KindEvent, Name: "read", Code: readCode},
			{Kind: KindError, Name: "timeOut", Code: []byte{byte(OpReturnVoid)}},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := sampleProgram(t)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", p, got)
	}
	if p.Size() != len(data) {
		t.Fatalf("Size() = %d, want %d", p.Size(), len(data))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		[]byte("not a driver at all"),
		{0xB5, 'u', 'P', 'C'},                 // truncated after magic
		{0xB5, 'u', 'P', 'C', 99, 0, 0, 0, 0}, // bad version
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d: garbage must not decode", i)
		}
	}
}

func TestDecodeRejectsTrailingBytes(t *testing.T) {
	p := sampleProgram(t)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(append(data, 0x00)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestDecodeRejectsTruncations(t *testing.T) {
	p := sampleProgram(t)
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Every proper prefix must fail to decode (no panics, no false accepts).
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("prefix of %d bytes must not decode", n)
		}
	}
}

func TestDecodeFuzzNoPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p := sampleProgram(t)
	data, _ := p.Encode()
	for i := 0; i < 2000; i++ {
		mut := append([]byte(nil), data...)
		for j := 0; j < 1+rng.Intn(8); j++ {
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		}
		if dec, err := Decode(mut); err == nil {
			// Decoded mutants must at least re-encode.
			if _, err := dec.Encode(); err != nil {
				t.Fatalf("mutant decoded but re-encode failed: %v", err)
			}
		}
	}
}

func TestVerifyAcceptsSample(t *testing.T) {
	if err := sampleProgram(t).Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyRejectsMissingLifecycleHandlers(t *testing.T) {
	p := sampleProgram(t)
	p.Handlers = p.Handlers[2:] // drop init and destroy
	if err := p.Verify(); err == nil {
		t.Fatal("program without init/destroy must fail verification")
	}
}

func TestVerifyRejectsDuplicateHandlers(t *testing.T) {
	p := sampleProgram(t)
	p.Handlers = append(p.Handlers, Handler{Kind: KindEvent, Name: "init", Code: []byte{byte(OpReturnVoid)}})
	if err := p.Verify(); err == nil {
		t.Fatal("duplicate handler must fail verification")
	}
}

func TestVerifyRejectsBadOperands(t *testing.T) {
	cases := map[string][]byte{
		"bad opcode":        {0xff},
		"truncated":         {byte(OpPushI16), 0x01},
		"static oob":        {byte(OpLoadStatic), 200, byte(OpReturnVoid)},
		"local oob":         {byte(OpLoadLocal), 99, byte(OpReturnVoid)},
		"const oob":         {byte(OpSignal), 99, 0, 0, byte(OpReturnVoid)},
		"jump outside":      {byte(OpJmp), 0x7f, 0xff, byte(OpReturnVoid)},
		"jump mid-instr":    {byte(OpJmp), 0x00, 0x01, byte(OpPushI16), 0, 0, byte(OpReturnVoid)},
		"negative jump oob": {byte(OpJz), 0xff, 0x00, byte(OpReturnVoid)},
	}
	for name, code := range cases {
		p := sampleProgram(t)
		p.Handlers[0].Code = code
		if err := p.Verify(); err == nil {
			t.Errorf("%s: must fail verification", name)
		}
	}
}

func TestAssemblerBranches(t *testing.T) {
	a := NewAssembler()
	a.Push(1)
	a.Jump(OpJnz, "end")
	a.Push(42)
	a.Emit(OpDrop)
	a.Label("end")
	a.Emit(OpReturnVoid)
	code, err := a.Assemble()
	if err != nil {
		t.Fatal(err)
	}
	// jnz offset must skip push.i8 42 + drop = 3 bytes.
	off := int16(uint16(code[3])<<8 | uint16(code[4]))
	if off != 3 {
		t.Fatalf("branch offset = %d, want 3\n%s", off, Disassemble(code, nil))
	}
}

func TestAssemblerUndefinedLabel(t *testing.T) {
	a := NewAssembler()
	a.Jump(OpJmp, "nowhere")
	if _, err := a.Assemble(); err == nil {
		t.Fatal("undefined label must fail")
	}
}

func TestPushWidths(t *testing.T) {
	a := NewAssembler()
	a.Push(1)       // i8
	a.Push(300)     // i16
	a.Push(-40_000) // i32
	code, _ := a.Assemble()
	want := 2 + 3 + 5
	if len(code) != want {
		t.Fatalf("code length = %d, want %d", len(code), want)
	}
	if Op(code[0]) != OpPushI8 || Op(code[2]) != OpPushI16 || Op(code[5]) != OpPushI32 {
		t.Fatalf("wrong opcodes: %s", Disassemble(code, nil))
	}
}

func TestDisassembleProgram(t *testing.T) {
	p := sampleProgram(t)
	text := DisassembleProgram(p)
	for _, want := range []string{"device 0xad1cbe01", "import uart", "event init/0", "error timeOut/0", "this.readDone/0"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestOperandWidthTotal(t *testing.T) {
	// Every defined opcode must have a non-negative width and a name.
	for op := Op(0); op < opCount; op++ {
		if op.OperandWidth() < 0 {
			t.Errorf("opcode %d has no operand width", op)
		}
		if strings.HasPrefix(op.String(), "op(") {
			t.Errorf("opcode %d has no name", op)
		}
	}
	if Op(250).OperandWidth() != -1 {
		t.Error("undefined opcode must report width -1")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	f := func(seed int64) bool {
		p := sampleProgram(t)
		a, err1 := p.Encode()
		b, err2 := p.Encode()
		return err1 == nil && err2 == nil && bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
