package bytecode

import (
	"errors"
	"fmt"
)

// ErrVerify reports bytecode that fails static verification.
var ErrVerify = errors.New("bytecode: verification failed")

// Verify statically checks a program before installation: opcode validity,
// operand bounds (static slots, constant pool, locals), jump targets landing
// on instruction boundaries, and that every code path terminates. Things run
// this before activating an over-the-air driver (a malformed driver must
// never take down the runtime).
func (p *Program) Verify() error {
	names := map[string]bool{}
	for _, h := range p.Handlers {
		if h.Name == "" {
			return fmt.Errorf("%w: unnamed handler", ErrVerify)
		}
		if names[h.Name] {
			return fmt.Errorf("%w: duplicate handler %q", ErrVerify, h.Name)
		}
		names[h.Name] = true
		if h.NParams > MaxLocals {
			return fmt.Errorf("%w: handler %q has %d params (max %d)", ErrVerify, h.Name, h.NParams, MaxLocals)
		}
		if err := p.verifyCode(h); err != nil {
			return fmt.Errorf("handler %q: %w", h.Name, err)
		}
	}
	if p.Handler("init") == nil || p.Handler("destroy") == nil {
		return fmt.Errorf("%w: drivers must implement init and destroy handlers", ErrVerify)
	}
	return nil
}

func (p *Program) verifyCode(h Handler) error {
	code := h.Code
	// First pass: mark instruction boundaries and validate operands.
	boundary := make([]bool, len(code)+1)
	boundary[len(code)] = true
	for pc := 0; pc < len(code); {
		boundary[pc] = true
		op := Op(code[pc])
		w := op.OperandWidth()
		if w < 0 || !op.Valid() {
			return fmt.Errorf("%w: invalid opcode 0x%02x at %d", ErrVerify, code[pc], pc)
		}
		if pc+1+w > len(code) {
			return fmt.Errorf("%w: truncated instruction at %d", ErrVerify, pc)
		}
		operand := code[pc+1 : pc+1+w]
		switch op {
		case OpLoadStatic, OpStoreStatic, OpLoadElem, OpStoreElem, OpReturnStatic:
			if int(operand[0]) >= len(p.Statics) {
				return fmt.Errorf("%w: static slot %d out of range at %d", ErrVerify, operand[0], pc)
			}
		case OpLoadLocal, OpStoreLocal:
			if operand[0] >= MaxLocals {
				return fmt.Errorf("%w: local %d out of range at %d", ErrVerify, operand[0], pc)
			}
		case OpSignal:
			if int(operand[0]) >= len(p.Consts) || int(operand[1]) >= len(p.Consts) {
				return fmt.Errorf("%w: signal constant out of range at %d", ErrVerify, pc)
			}
		}
		pc += 1 + w
	}
	// Second pass: jump targets must land on instruction boundaries.
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		w := op.OperandWidth()
		next := pc + 1 + w
		switch op {
		case OpJmp, OpJz, OpJnz:
			off := int(int16(uint16(code[pc+1])<<8 | uint16(code[pc+2])))
			target := next + off
			if target < 0 || target > len(code) || !boundary[target] {
				return fmt.Errorf("%w: jump at %d to invalid target %d", ErrVerify, pc, target)
			}
		}
		pc = next
	}
	return nil
}
