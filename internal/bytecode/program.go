package bytecode

import (
	"errors"
	"fmt"
)

// HandlerKind distinguishes regular event handlers from error handlers.
// Error handlers are dispatched through the router's priority queue
// (Section 4.2).
type HandlerKind uint8

// Handler kinds.
const (
	KindEvent HandlerKind = 0
	KindError HandlerKind = 1
)

func (k HandlerKind) String() string {
	if k == KindError {
		return "error"
	}
	return "event"
}

// Handler is one compiled event or error handler.
type Handler struct {
	Kind    HandlerKind
	Name    string
	NParams uint8
	Code    []byte
}

// StaticDef declares one static slot: scalars have Size 1, arrays their
// declared length.
type StaticDef struct {
	Size uint16
}

// Program is a compiled µPnP driver.
type Program struct {
	// DeviceID is the peripheral type this driver serves.
	DeviceID uint32
	// Statics declares the driver's state slots.
	Statics []StaticDef
	// Imports names the native interconnect libraries the driver uses.
	Imports []string
	// Consts is the constant pool (strings: signal destinations and event
	// names).
	Consts []string
	// Handlers in declaration order.
	Handlers []Handler
}

// Magic identifies serialized µPnP driver bytecode.
var Magic = [4]byte{0xB5, 'u', 'P', 'C'}

// Version of the wire format.
const Version = 1

// Limits of the compact format.
const (
	MaxStatics  = 255
	MaxImports  = 255
	MaxConsts   = 255
	MaxHandlers = 255
	MaxCodeLen  = 65535
	MaxLocals   = 16
)

// Handler returns the named handler, or nil.
func (p *Program) Handler(name string) *Handler {
	for i := range p.Handlers {
		if p.Handlers[i].Name == name {
			return &p.Handlers[i]
		}
	}
	return nil
}

// ConstIndex returns the pool index of s, or -1.
func (p *Program) ConstIndex(s string) int {
	for i, c := range p.Consts {
		if c == s {
			return i
		}
	}
	return -1
}

// Encode serializes the program to the compact wire format distributed
// over the air.
func (p *Program) Encode() ([]byte, error) {
	if len(p.Statics) > MaxStatics || len(p.Imports) > MaxImports ||
		len(p.Consts) > MaxConsts || len(p.Handlers) > MaxHandlers {
		return nil, errors.New("bytecode: program exceeds format limits")
	}
	buf := make([]byte, 0, 128)
	buf = append(buf, Magic[:]...)
	buf = append(buf, Version)
	buf = be32(buf, p.DeviceID)
	buf = append(buf, byte(len(p.Statics)))
	for _, s := range p.Statics {
		buf = be16(buf, s.Size)
	}
	buf = append(buf, byte(len(p.Imports)))
	for _, im := range p.Imports {
		if len(im) > 255 {
			return nil, fmt.Errorf("bytecode: import name %q too long", im)
		}
		buf = append(buf, byte(len(im)))
		buf = append(buf, im...)
	}
	buf = append(buf, byte(len(p.Consts)))
	for _, c := range p.Consts {
		if len(c) > 255 {
			return nil, fmt.Errorf("bytecode: constant %q too long", c)
		}
		buf = append(buf, byte(len(c)))
		buf = append(buf, c...)
	}
	buf = append(buf, byte(len(p.Handlers)))
	for _, h := range p.Handlers {
		if len(h.Name) > 255 {
			return nil, fmt.Errorf("bytecode: handler name %q too long", h.Name)
		}
		if len(h.Code) > MaxCodeLen {
			return nil, fmt.Errorf("bytecode: handler %q code too long", h.Name)
		}
		buf = append(buf, byte(h.Kind), h.NParams, byte(len(h.Name)))
		buf = append(buf, h.Name...)
		buf = be16(buf, uint16(len(h.Code)))
		buf = append(buf, h.Code...)
	}
	return buf, nil
}

// ErrBadFormat reports malformed driver bytecode.
var ErrBadFormat = errors.New("bytecode: malformed driver")

// Decode parses the wire format. The returned program shares no memory with
// data.
func Decode(data []byte) (*Program, error) {
	r := reader{data: data}
	var magic [4]byte
	copy(magic[:], r.bytes(4))
	if r.err != nil || magic != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadFormat)
	}
	if v := r.u8(); r.err != nil || v != Version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadFormat, v)
	}
	p := &Program{DeviceID: r.u32()}

	nStatics := int(r.u8())
	for i := 0; i < nStatics; i++ {
		p.Statics = append(p.Statics, StaticDef{Size: r.u16()})
	}
	nImports := int(r.u8())
	for i := 0; i < nImports; i++ {
		p.Imports = append(p.Imports, r.str())
	}
	nConsts := int(r.u8())
	for i := 0; i < nConsts; i++ {
		p.Consts = append(p.Consts, r.str())
	}
	nHandlers := int(r.u8())
	for i := 0; i < nHandlers; i++ {
		var h Handler
		h.Kind = HandlerKind(r.u8())
		h.NParams = r.u8()
		h.Name = r.str()
		codeLen := int(r.u16())
		h.Code = append([]byte(nil), r.bytes(codeLen)...)
		if r.err != nil {
			break
		}
		if h.Kind > KindError {
			return nil, fmt.Errorf("%w: bad handler kind %d", ErrBadFormat, h.Kind)
		}
		p.Handlers = append(p.Handlers, h)
	}
	if r.err != nil {
		return nil, fmt.Errorf("%w: truncated", ErrBadFormat)
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFormat, len(r.data)-r.pos)
	}
	return p, nil
}

// Size returns the encoded size in bytes (the Table 3 metric).
func (p *Program) Size() int {
	b, err := p.Encode()
	if err != nil {
		return 0
	}
	return len(b)
}

func be16(buf []byte, v uint16) []byte { return append(buf, byte(v>>8), byte(v)) }
func be32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.data) {
		r.err = ErrBadFormat
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() byte {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if r.err != nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) str() string {
	n := int(r.u8())
	b := r.bytes(n)
	if r.err != nil {
		return ""
	}
	return string(b)
}
