// Package bytecode defines the µPnP driver bytecode: a compact, 8-bit,
// stack-based instruction set inspired by the JVM but tailored to IoT driver
// development (Section 4.1 "Compilation"). Drivers compiled to this format
// are platform independent and small enough for energy-efficient over-the-air
// distribution; they are executed by the interpreter in internal/vm.
//
// Every instruction is one opcode byte followed by zero or more operand
// bytes. The operand stack holds 32-bit signed integers; static driver state
// lives in indexed slots (scalars are arrays of length one).
package bytecode

import "fmt"

// Op is a bytecode opcode.
type Op byte

// The instruction set. Operand encodings are listed per opcode; multi-byte
// operands are big-endian.
const (
	// OpNop does nothing.
	OpNop Op = iota
	// OpPushI8 <i8>: push a sign-extended 8-bit immediate.
	OpPushI8
	// OpPushI16 <i16>: push a sign-extended 16-bit immediate.
	OpPushI16
	// OpPushI32 <i32>: push a 32-bit immediate.
	OpPushI32
	// OpDup duplicates the top of stack.
	OpDup
	// OpDrop pops and discards the top of stack.
	OpDrop
	// OpLoadStatic <u8>: push static slot (element 0 for arrays).
	OpLoadStatic
	// OpStoreStatic <u8>: pop into static slot.
	OpStoreStatic
	// OpLoadLocal <u8>: push a handler local (parameters are locals 0..n-1).
	OpLoadLocal
	// OpStoreLocal <u8>: pop into a handler local.
	OpStoreLocal
	// OpLoadElem <u8>: pop index, push static[slot][index].
	OpLoadElem
	// OpStoreElem <u8>: pop value then index, store static[slot][index].
	OpStoreElem

	// Arithmetic: binary ops pop right then left, push the result.
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpMod
	OpNeg

	// Bitwise.
	OpBitAnd
	OpBitOr
	OpBitXor
	OpShl
	OpShr

	// Logic: OpNot pops one value and pushes !v; comparisons push 0 or 1.
	OpNot
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe

	// OpJmp <i16>: relative jump (offset from the end of the instruction).
	OpJmp
	// OpJz <i16>: pop; jump if zero.
	OpJz
	// OpJnz <i16>: pop; jump if non-zero.
	OpJnz

	// OpSignal <dest u8> <event u8> <argc u8>: emit an event. dest and event
	// index the constant pool ("this" targets the driver itself, any other
	// name targets a native library or the runtime). argc arguments are
	// popped (first argument pushed first).
	OpSignal

	// OpReturnVoid ends the handler with no value.
	OpReturnVoid
	// OpReturnTop pops the top of stack and returns it to the pending
	// remote operation (the DSL `return expr;`).
	OpReturnTop
	// OpReturnStatic <u8>: return a whole static slot (the DSL
	// `return rfid;` for arrays).
	OpReturnStatic
	// OpHalt ends the handler (implicit at code end).
	OpHalt

	opCount // sentinel
)

// OperandWidth returns the number of operand bytes following the opcode,
// or -1 for an invalid opcode.
func (o Op) OperandWidth() int {
	switch o {
	case OpNop, OpDup, OpDrop,
		OpAdd, OpSub, OpMul, OpDiv, OpMod, OpNeg,
		OpBitAnd, OpBitOr, OpBitXor, OpShl, OpShr,
		OpNot, OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
		OpReturnVoid, OpReturnTop, OpHalt:
		return 0
	case OpPushI8, OpLoadStatic, OpStoreStatic, OpLoadLocal, OpStoreLocal,
		OpLoadElem, OpStoreElem, OpReturnStatic:
		return 1
	case OpPushI16, OpJmp, OpJz, OpJnz:
		return 2
	case OpSignal:
		return 3
	case OpPushI32:
		return 4
	default:
		return -1
	}
}

// Terminates reports whether the instruction ends handler execution.
func (o Op) Terminates() bool {
	switch o {
	case OpReturnVoid, OpReturnTop, OpReturnStatic, OpHalt:
		return true
	}
	return false
}

var opNames = map[Op]string{
	OpNop: "nop", OpPushI8: "push.i8", OpPushI16: "push.i16", OpPushI32: "push.i32",
	OpDup: "dup", OpDrop: "drop",
	OpLoadStatic: "load.s", OpStoreStatic: "store.s",
	OpLoadLocal: "load.l", OpStoreLocal: "store.l",
	OpLoadElem: "load.e", OpStoreElem: "store.e",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpMod: "mod", OpNeg: "neg",
	OpBitAnd: "and.b", OpBitOr: "or.b", OpBitXor: "xor.b", OpShl: "shl", OpShr: "shr",
	OpNot: "not", OpEq: "eq", OpNe: "ne", OpLt: "lt", OpLe: "le", OpGt: "gt", OpGe: "ge",
	OpJmp: "jmp", OpJz: "jz", OpJnz: "jnz",
	OpSignal: "signal", OpReturnVoid: "ret", OpReturnTop: "ret.v", OpReturnStatic: "ret.s",
	OpHalt: "halt",
}

func (o Op) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }
