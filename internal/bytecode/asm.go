package bytecode

import (
	"fmt"
	"strings"
)

// Assembler incrementally builds one handler's code. It is used by the DSL
// compiler's code generator and by tests that need hand-built programs.
type Assembler struct {
	code   []byte
	labels map[string]int // label -> code offset
	fixups map[int]string // operand offset -> label
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{labels: map[string]int{}, fixups: map[int]string{}}
}

// Len returns the current code length.
func (a *Assembler) Len() int { return len(a.code) }

// Emit appends an instruction with raw operand bytes.
func (a *Assembler) Emit(op Op, operands ...byte) {
	if w := op.OperandWidth(); w != len(operands) {
		panic(fmt.Sprintf("bytecode: %v takes %d operand bytes, got %d", op, w, len(operands)))
	}
	a.code = append(a.code, byte(op))
	a.code = append(a.code, operands...)
}

// Push emits the smallest push instruction for v.
func (a *Assembler) Push(v int32) {
	switch {
	case v >= -128 && v <= 127:
		a.Emit(OpPushI8, byte(int8(v)))
	case v >= -32768 && v <= 32767:
		a.Emit(OpPushI16, byte(uint16(v)>>8), byte(uint16(v)))
	default:
		u := uint32(v)
		a.Emit(OpPushI32, byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
}

// Label binds name to the current offset.
func (a *Assembler) Label(name string) {
	a.labels[name] = len(a.code)
}

// Jump emits a branch to a (possibly not yet bound) label.
func (a *Assembler) Jump(op Op, label string) {
	switch op {
	case OpJmp, OpJz, OpJnz:
	default:
		panic(fmt.Sprintf("bytecode: %v is not a branch", op))
	}
	a.code = append(a.code, byte(op))
	a.fixups[len(a.code)] = label
	a.code = append(a.code, 0, 0)
}

// Signal emits an OpSignal with constant-pool indices.
func (a *Assembler) Signal(dest, event, argc byte) {
	a.Emit(OpSignal, dest, event, argc)
}

// Assemble resolves labels and returns the final code.
func (a *Assembler) Assemble() ([]byte, error) {
	for pos, label := range a.fixups {
		target, ok := a.labels[label]
		if !ok {
			return nil, fmt.Errorf("bytecode: undefined label %q", label)
		}
		off := target - (pos + 2) // relative to end of the branch instruction
		if off < -32768 || off > 32767 {
			return nil, fmt.Errorf("bytecode: branch to %q out of range (%d)", label, off)
		}
		a.code[pos] = byte(uint16(int16(off)) >> 8)
		a.code[pos+1] = byte(uint16(int16(off)))
	}
	return a.code, nil
}

// Disassemble renders handler code as text, one instruction per line.
func Disassemble(code []byte, consts []string) string {
	var sb strings.Builder
	for pc := 0; pc < len(code); {
		op := Op(code[pc])
		w := op.OperandWidth()
		if w < 0 || pc+1+w > len(code) {
			fmt.Fprintf(&sb, "%4d: !bad 0x%02x\n", pc, code[pc])
			break
		}
		operand := code[pc+1 : pc+1+w]
		fmt.Fprintf(&sb, "%4d: %-8s", pc, op)
		switch op {
		case OpPushI8:
			fmt.Fprintf(&sb, " %d", int8(operand[0]))
		case OpPushI16:
			fmt.Fprintf(&sb, " %d", int16(uint16(operand[0])<<8|uint16(operand[1])))
		case OpPushI32:
			v := uint32(operand[0])<<24 | uint32(operand[1])<<16 | uint32(operand[2])<<8 | uint32(operand[3])
			fmt.Fprintf(&sb, " %d", int32(v))
		case OpLoadStatic, OpStoreStatic, OpLoadElem, OpStoreElem, OpReturnStatic:
			fmt.Fprintf(&sb, " s%d", operand[0])
		case OpLoadLocal, OpStoreLocal:
			fmt.Fprintf(&sb, " l%d", operand[0])
		case OpJmp, OpJz, OpJnz:
			off := int(int16(uint16(operand[0])<<8 | uint16(operand[1])))
			fmt.Fprintf(&sb, " -> %d", pc+3+off)
		case OpSignal:
			d, e := int(operand[0]), int(operand[1])
			dn, en := fmt.Sprintf("#%d", d), fmt.Sprintf("#%d", e)
			if d < len(consts) {
				dn = consts[d]
			}
			if e < len(consts) {
				en = consts[e]
			}
			fmt.Fprintf(&sb, " %s.%s/%d", dn, en, operand[2])
		}
		sb.WriteByte('\n')
		pc += 1 + w
	}
	return sb.String()
}

// DisassembleProgram renders a whole program.
func DisassembleProgram(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "device %#08x\n", p.DeviceID)
	for i, s := range p.Statics {
		fmt.Fprintf(&sb, "static s%d [%d]\n", i, s.Size)
	}
	for _, im := range p.Imports {
		fmt.Fprintf(&sb, "import %s\n", im)
	}
	for _, h := range p.Handlers {
		fmt.Fprintf(&sb, "%s %s/%d:\n%s", h.Kind, h.Name, h.NParams, Disassemble(h.Code, p.Consts))
	}
	return sb.String()
}
