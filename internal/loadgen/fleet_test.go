package loadgen

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// miniFleetCfg is the "fleet" preset shrunk to milliseconds of wall time:
// three federated deployments (two anycast managers each), zoned members on
// the sharded clock, loss on the wire, and a manager crash mid-window.
func miniFleetCfg() Config {
	return Config{
		Scenario: "fleet-mini", Deployments: 3, Managers: 2,
		ManagerFailAt: 10 * time.Second,
		Things:        18, Shape: ShapeZones, Zones: 2, Rate: 4,
		Warmup: 2 * time.Second, Duration: 40 * time.Second, Cooldown: 10 * time.Second,
		Seed: 42, StreamPeriod: 2 * time.Second, RequestTimeout: 500 * time.Millisecond,
		LossRate: 0.02,
		Mix:      mixOf(50, 10, 5, 15, 15, 5),
	}
}

// TestFleetCrossWorkerByteIdentity is the federation acceptance check: a
// fleet of three virtual deployments — each internally zone-sharded — driven
// through one Fleet with a manager crash mid-run must serialize to
// byte-identical result JSON under the parallel and the sequential
// single-loop shard schedule. The conductor steps member clocks round-robin;
// worker counts shape only each member's internal round execution.
func TestFleetCrossWorkerByteIdentity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	cfg := miniFleetCfg()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.ShardWorkers = 0 // parallel rounds (GOMAXPROCS workers)
	seq := cfg
	seq.ShardWorkers = 1 // the sequential single-loop schedule

	parRun, parRes, err := run(par)
	if err != nil {
		t.Fatal(err)
	}
	_, seqRes, err := run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Issued == 0 || parRes.Completed == 0 {
		t.Fatalf("fleet run issued %d / completed %d ops", parRes.Issued, parRes.Completed)
	}
	if parRes.Deployments != 3 || parRes.Managers != 2 {
		t.Fatalf("result records %d deployments × %d managers, want 3 × 2", parRes.Deployments, parRes.Managers)
	}
	if parRes.ManagerFailNs != int64(cfg.ManagerFailAt) {
		t.Fatalf("result records crash offset %d ns, want %d", parRes.ManagerFailNs, int64(cfg.ManagerFailAt))
	}
	// Every member must have carried real traffic, and the injected crash
	// must have landed (member 0's first manager down, with a survivor).
	if len(parRun.deps) != 3 {
		t.Fatalf("runner built %d deployments, want 3", len(parRun.deps))
	}
	for i, d := range parRun.deps {
		if d.NetworkStats().Delivered == 0 {
			t.Fatalf("fleet member %d saw no traffic", i)
		}
	}
	if !parRun.failedMgr {
		t.Fatal("ManagerFailAt never fired inside the workload")
	}

	jp, err := json.MarshalIndent(parRes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.MarshalIndent(seqRes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jp, js) {
		t.Fatalf("fleet result JSON diverged across shard worker counts:\nparallel:\n%s\nsingle-loop:\n%s", jp, js)
	}
}

// TestFleetPreset pins the shipped "fleet" preset: a ≥3-member federation
// with manager redundancy and a mid-run crash, normalizing clean.
func TestFleetPreset(t *testing.T) {
	cfg, err := Preset("fleet")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Deployments < 3 || cfg.Managers < 2 || cfg.ManagerFailAt <= 0 {
		t.Fatalf("fleet preset: deployments=%d managers=%d failAt=%s",
			cfg.Deployments, cfg.Managers, cfg.ManagerFailAt)
	}
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
}

// TestFleetConfigValidation pins the fleet mode's constraints: virtual-mode
// open-loop only, and a crash needs an anycast survivor.
func TestFleetConfigValidation(t *testing.T) {
	base := miniFleetCfg()

	rt := base
	rt.Realtime = true
	if err := rt.normalize(); err == nil {
		t.Fatal("realtime fleet config must not normalize")
	}

	closed := base
	closed.Arrival = ArrivalClosed
	if err := closed.normalize(); err == nil {
		t.Fatal("closed-loop fleet config must not normalize")
	}

	lone := base
	lone.Managers = 1
	if err := lone.normalize(); err == nil {
		t.Fatal("ManagerFailAt without a survivor must not normalize")
	}

	conducted := base
	conducted.Deployments = 1
	if err := conducted.normalize(); err == nil {
		t.Fatal("ManagerFailAt on the conducted zoned engine must not normalize")
	}
}
