package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"micropnp"
)

// opStats aggregates one operation kind's measure-window counters; all
// fields are concurrently updatable so realtime workers never contend on a
// lock.
type opStats struct {
	issued    atomic.Uint64
	completed atomic.Uint64
	errors    atomic.Uint64
	timeouts  atomic.Uint64
	hist      Histogram
}

// plan is one operation fully drawn from the schedule rng before execution,
// so realtime op goroutines never touch a shared random stream and the op
// schedule stays seed-deterministic in every mode.
type plan struct {
	op   Op
	tgt  *target
	wr   *target
	cl   *micropnp.Client
	val  int32
	disc micropnp.DeviceID
	// sink, when set, receives the held subscription a successful OpSubscribe
	// opens instead of the runner's shared list — the conducted zoned engine
	// points it at the issuing strand's own hold list so each strand services
	// its closes on its own timeline.
	sink *[]heldSub
}

// swapPending is one hot-swap awaiting the new peripheral's advertisement.
type swapPending struct {
	target *target
	newDev micropnp.DeviceID
	from   time.Duration
	rec    bool
	st     *opStats
}

// heldSub is an open subscription the virtual loop closes at closeAt; dep is
// the fleet member whose clock the close rides on (0 outside fleet runs).
type heldSub struct {
	sub     *micropnp.Subscription
	closeAt time.Duration
	dep     int
}

type pairKey struct {
	addr netip.Addr
	dev  micropnp.DeviceID
}

type runner struct {
	cfg Config
	// Single-deployment runs drive d directly; fleet runs (cfg.Deployments
	// > 1) drive deps through fleet instead and leave d nil — depClock
	// resolves the right clock either way.
	d         *micropnp.Deployment
	deps      []*micropnp.Deployment
	fleet     *micropnp.Fleet
	clients   []*micropnp.Client
	targets   []*target
	writables []*target

	failedMgr bool // ManagerFailAt already injected

	start        time.Duration // virtual time the workload begins
	measureStart time.Duration
	measureEnd   time.Duration

	stats   [opKinds]opStats
	shed    atomic.Uint64
	streams atomic.Uint64 // stream data deliveries

	inflight    atomic.Int64
	maxInflight atomic.Int64

	laneHash []uint64
	laneOps  []atomic.Uint64

	swapMu sync.Mutex
	swaps  map[netip.Addr]*swapPending

	// openSubs is the virtual loop's hold list (single goroutine, no lock);
	// realtime holds run on goroutines coordinated by subWG/stopCh.
	openSubs []heldSub
	subWG    sync.WaitGroup
	stopCh   chan struct{}

	pairMu sync.Mutex
	pairs  map[pairKey]*micropnp.Thing

	bufs sync.Pool // *[]int32 read scratch buffers

	drained bool
}

// Run executes one load run and returns its result. Virtual-mode runs are a
// pure function of cfg (bit-identical histograms for the same seed);
// realtime runs keep the op schedule deterministic but measure real
// latencies.
func Run(cfg Config) (*Result, error) {
	if cfg.Target != "" {
		return runHTTP(cfg)
	}
	_, res, err := run(cfg)
	return res, err
}

// run is Run exposing the runner, so tests can compare raw histogram
// buckets across repeated executions.
func run(cfg Config) (*runner, *Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, nil, err
	}
	if cfg.Arrival == ArrivalOpen && cfg.Rate <= 0 {
		return nil, nil, fmt.Errorf("loadgen: open-loop runs need a positive rate")
	}
	r := &runner{
		cfg:    cfg,
		swaps:  map[netip.Addr]*swapPending{},
		pairs:  map[pairKey]*micropnp.Thing{},
		stopCh: make(chan struct{}),
	}
	r.bufs.New = func() any { b := make([]int32, 0, 8); return &b }
	lanes := 1
	if cfg.Arrival == ArrivalClosed {
		lanes = cfg.Workers
	}
	r.laneHash = make([]uint64, lanes)
	for i := range r.laneHash {
		r.laneHash[i] = fnvOffset
	}
	r.laneOps = make([]atomic.Uint64, lanes)

	var err error
	if cfg.Deployments > 1 {
		// Fleet mode: one deployment per site, federated behind a Fleet; the
		// fleet's own per-member clients carry the workload, so the runner
		// adds none of its own.
		r.deps = make([]*micropnp.Deployment, cfg.Deployments)
		for i := range r.deps {
			if r.deps[i], err = micropnp.NewDeployment(deployOpts(cfg, cfg.Seed+int64(i)*104729, i)...); err != nil {
				return nil, nil, err
			}
		}
		if r.fleet, err = micropnp.NewFleet(r.deps...); err != nil {
			return nil, nil, err
		}
		if r.targets, r.writables, err = buildFleetTopology(r.deps, cfg); err != nil {
			return nil, nil, err
		}
		for _, d := range r.deps {
			d.Run() // drain every member's plug-in sequences
		}
		r.fleet.AddAdvertHook(r.onAdvert)
		// The workload origin is the slowest member's settle instant; the
		// conductor pulls the others level on the first arrival.
		for _, d := range r.deps {
			if now := d.Now(); now > r.start {
				r.start = now
			}
		}
	} else {
		d, derr := micropnp.NewDeployment(deployOpts(cfg, cfg.Seed, 0)...)
		if derr != nil {
			return nil, nil, derr
		}
		if cfg.Realtime {
			defer d.Close()
		}
		r.d = d
		if r.targets, r.writables, err = buildTopology(d, cfg); err != nil {
			return nil, nil, err
		}
		r.clients = make([]*micropnp.Client, cfg.Clients)
		for i := range r.clients {
			if r.clients[i], err = d.AddClient(); err != nil {
				return nil, nil, err
			}
		}
		// Let every plug-in sequence (identify, OTA driver install, advertise)
		// drain before the workload starts; no streams are active yet, so Run
		// terminates in both modes.
		d.Run()
		r.clients[0].OnAdvert(r.onAdvert)
		r.start = d.Now()
	}
	r.measureStart = r.start + cfg.Warmup
	r.measureEnd = r.measureStart + cfg.Duration
	if cfg.Realtime {
		r.runRealtime()
	} else {
		r.runVirtual()
	}
	r.teardown()
	return r, r.result(), nil
}

// deployOpts assembles one deployment's option list. Fleet members get their
// own site (hence a distinct /48 prefix for the fleet's routing) and a
// site-salted seed, so each member's loss/jitter streams differ while the
// whole fleet stays a deterministic function of cfg.Seed.
func deployOpts(cfg Config, seed int64, site int) []micropnp.Option {
	opts := []micropnp.Option{
		micropnp.WithSeed(seed),
		micropnp.WithStreamPeriod(cfg.StreamPeriod),
		micropnp.WithRequestTimeout(cfg.RequestTimeout),
	}
	if site > 0 {
		opts = append(opts, micropnp.WithSite(site))
	}
	if cfg.Managers > 1 {
		opts = append(opts, micropnp.WithManagers(cfg.Managers))
	}
	if cfg.LossRate > 0 {
		opts = append(opts, micropnp.WithLossRate(cfg.LossRate))
	}
	if cfg.InterpDrivers {
		opts = append(opts, micropnp.WithCompiledDrivers(false))
	}
	if cfg.Zones > 1 && !cfg.Realtime {
		opts = append(opts, micropnp.WithZones(cfg.Zones))
		if cfg.ShardWorkers > 0 {
			opts = append(opts, micropnp.WithShardWorkers(cfg.ShardWorkers))
		}
		if cfg.GlobalLookahead {
			opts = append(opts, micropnp.WithGlobalLookahead())
		}
	}
	if cfg.Realtime {
		opts = append(opts, micropnp.WithRealTime(), micropnp.WithTimeScale(cfg.TimeScale))
		if cfg.PoolWorkers > 0 {
			opts = append(opts, micropnp.WithWorkers(cfg.PoolWorkers))
		}
	}
	return opts
}

// depClock resolves the deployment whose virtual clock an event on fleet
// member dep rides on; single-deployment runs always answer r.d.
func (r *runner) depClock(dep int) *micropnp.Deployment {
	if r.fleet == nil {
		return r.d
	}
	return r.deps[dep]
}

// planDep names the fleet member a drawn plan executes against: the target's
// (or write target's) owner, or member 0 for client-side fan-outs (discover).
func (r *runner) planDep(p plan) int {
	switch {
	case p.tgt != nil:
		return p.tgt.dep
	case p.wr != nil:
		return p.wr.dep
	}
	return 0
}

// ---------------------------------------------------------------------------
// Schedule drawing

const fnvOffset = 14695981039346656037

func fnvMix(h uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// pickOp draws an operation kind by mix weight, in fixed kind order.
func (r *runner) pickOp(rng *rand.Rand) Op {
	w := rng.Intn(r.cfg.Mix.total())
	for op, weight := range r.cfg.Mix {
		if weight == 0 {
			continue
		}
		if w < weight {
			return Op(op)
		}
		w -= weight
	}
	return OpRead // unreachable
}

// drawPlan draws one operation and folds it into the lane's schedule hash
// (open lanes include the intended arrival instant; closed lanes hash the
// sequence only, since their instants depend on completion times).
func (r *runner) drawPlan(rng *rand.Rand, lane int, intended time.Duration, openLane bool) plan {
	p := plan{op: r.pickOp(rng)}
	tgtIdx, wrIdx, clIdx := -1, -1, 0
	switch p.op {
	case OpWrite:
		wrIdx = rng.Intn(len(r.writables))
		p.wr = r.writables[wrIdx]
		p.val = int32(rng.Intn(256))
		clIdx = p.wr.idx % r.cfg.Clients
	case OpDiscover:
		p.disc = sensorCycle[rng.Intn(len(sensorCycle))]
		clIdx = rng.Intn(r.cfg.Clients)
	default:
		tgtIdx = rng.Intn(len(r.targets))
		p.tgt = r.targets[tgtIdx]
		clIdx = tgtIdx % r.cfg.Clients
	}
	// Fleet runs carry every op through the fleet's own per-member clients;
	// the drawn client index still folds into the schedule hash so single-
	// and fleet-mode schedules stay comparable draw for draw.
	if r.fleet == nil {
		p.cl = r.clients[clIdx]
	}
	h := fnvMix(r.laneHash[lane], uint64(p.op), uint64(tgtIdx+1), uint64(wrIdx+1), uint64(clIdx))
	if openLane {
		// Hash the offset from the workload start: the absolute instant the
		// settle phase ends at differs between clock modes, the drawn gaps
		// do not — so one schedule hashes identically in both.
		h = fnvMix(h, uint64(intended-r.start))
	}
	r.laneHash[lane] = h
	return p
}

// interarrival draws the next open-loop gap.
func (r *runner) interarrival(rng *rand.Rand) time.Duration {
	if r.cfg.Process == ProcessFixed {
		return time.Duration(float64(time.Second) / r.cfg.Rate)
	}
	return time.Duration(rng.ExpFloat64() / r.cfg.Rate * float64(time.Second))
}

// laneRng seeds one lane's private random stream.
func (r *runner) laneRng(lane int) *rand.Rand {
	return rand.New(rand.NewSource(r.cfg.Seed + int64(lane)*7919))
}

// recordable reports whether an operation charged to virtual instant t
// belongs to the measure window.
func (r *runner) recordable(t time.Duration) bool {
	return t >= r.measureStart && t < r.measureEnd
}

// ---------------------------------------------------------------------------
// Operation execution (both modes)

// exec performs one drawn operation. Open-loop latency is charged from the
// intended arrival instant (counting backlog delay — the coordinated
// omission correction); closed-loop latency from the actual issue time. The
// op's clock is its target's deployment — in fleet runs each member keeps its
// own virtual timeline and ops route through the fleet surface.
func (r *runner) exec(lane int, p plan, intended time.Duration, openLoop bool) {
	d := r.depClock(r.planDep(p))
	from := d.Now()
	if openLoop {
		from = intended
	}
	rec := r.recordable(from)
	st := &r.stats[p.op]
	if rec {
		st.issued.Add(1)
		r.laneOps[lane].Add(1)
	}
	ctx := context.Background()
	switch p.op {
	case OpRead:
		buf := r.bufs.Get().(*[]int32)
		var rd micropnp.Reading
		var err error
		if r.fleet != nil {
			rd, err = r.fleet.ReadInto(ctx, p.tgt.addr, p.tgt.device(), *buf)
		} else {
			rd, err = p.cl.ReadInto(ctx, p.tgt.addr, p.tgt.device(), *buf)
		}
		if err == nil && rd.Values != nil {
			*buf = rd.Values[:0] // recycle the (possibly grown) scratch
		}
		r.bufs.Put(buf)
		r.finish(d, st, rec, from, err)
	case OpWrite:
		var err error
		if r.fleet != nil {
			err = r.fleet.Write(ctx, p.wr.addr, micropnp.Relay, []int32{p.val})
		} else {
			err = p.cl.Write(ctx, p.wr.addr, micropnp.Relay, []int32{p.val})
		}
		r.finish(d, st, rec, from, err)
	case OpDiscover:
		var err error
		if r.fleet != nil {
			_, err = r.fleet.Discover(ctx, p.disc)
		} else {
			_, err = p.cl.Discover(ctx, p.disc)
		}
		r.finish(d, st, rec, from, err)
	case OpSubscribe:
		var sub *micropnp.Subscription
		var err error
		if r.fleet != nil {
			sub, err = r.fleet.Subscribe(ctx, p.tgt.addr, p.tgt.device(), r.onReading)
		} else {
			sub, err = p.cl.Subscribe(ctx, p.tgt.addr, p.tgt.device(), r.onReading)
		}
		r.finish(d, st, rec, from, err)
		if err == nil {
			r.pairMu.Lock()
			r.pairs[pairKey{p.tgt.addr, sub.Device()}] = p.tgt.thing
			r.pairMu.Unlock()
			if p.sink != nil {
				*p.sink = append(*p.sink, heldSub{sub: sub, closeAt: d.Now() + r.cfg.SubHold})
			} else {
				r.holdSub(sub, p.tgt.dep)
			}
		}
	case OpDrivers:
		_, err := d.DiscoverDrivers(ctx, p.tgt.thing)
		r.finish(d, st, rec, from, err)
	case OpHotSwap:
		r.execHotSwap(st, p, rec, from)
	}
}

// finish records one synchronous operation outcome; d is the deployment clock
// the op completed on.
func (r *runner) finish(d *micropnp.Deployment, st *opStats, rec bool, from time.Duration, err error) {
	if !rec {
		return
	}
	switch {
	case err == nil:
		st.completed.Add(1)
		st.hist.Record(int64(d.Now() - from))
	case errors.Is(err, micropnp.ErrTimeout):
		st.timeouts.Add(1)
	default:
		st.errors.Add(1)
	}
}

func (r *runner) onReading(micropnp.Reading) { r.streams.Add(1) }

// claimSwapTarget probes forward from the drawn target for one with no swap
// in flight and claims it.
func (r *runner) claimSwapTarget(start *target) *target {
	n := len(r.targets)
	for k := 0; k < n; k++ {
		t := r.targets[(start.idx+k)%n]
		t.mu.Lock()
		if !t.swapping {
			t.swapping = true
			t.mu.Unlock()
			return t
		}
		t.mu.Unlock()
	}
	return nil
}

// execHotSwap unplugs the target's sensor and plugs the next kind in the
// cycle; completion (and the latency sample) is recorded by onAdvert when
// the new peripheral's advertisement arrives.
func (r *runner) execHotSwap(st *opStats, p plan, rec bool, from time.Duration) {
	t := r.claimSwapTarget(p.tgt)
	if t == nil {
		if rec {
			st.errors.Add(1)
		}
		return
	}
	t.mu.Lock()
	old := t.dev
	t.mu.Unlock()
	var newDev micropnp.DeviceID
	for i, dev := range sensorCycle {
		if dev == old {
			newDev = sensorCycle[(i+1)%len(sensorCycle)]
		}
	}
	r.swapMu.Lock()
	r.swaps[t.addr] = &swapPending{target: t, newDev: newDev, from: from, rec: rec, st: st}
	r.swapMu.Unlock()
	err := t.thing.Unplug(0)
	if err == nil {
		err = plugDevice(t.thing, newDev)
	}
	if err != nil {
		r.swapMu.Lock()
		delete(r.swaps, t.addr)
		r.swapMu.Unlock()
		t.mu.Lock()
		t.swapping = false
		t.mu.Unlock()
		if rec {
			st.errors.Add(1)
		}
	}
}

func plugDevice(th *micropnp.Thing, dev micropnp.DeviceID) error {
	switch dev {
	case micropnp.TMP36:
		return th.PlugTMP36(0)
	case micropnp.HIH4030:
		return th.PlugHIH4030(0)
	case micropnp.BMP180:
		return th.PlugBMP180(0)
	}
	return fmt.Errorf("loadgen: no plug helper for device %v", dev)
}

// onAdvert resolves in-flight hot-swaps: the unsolicited advertisement of
// the newly plugged peripheral completes the swap and samples its latency.
func (r *runner) onAdvert(ad micropnp.Advert) {
	if ad.Solicited {
		return
	}
	r.swapMu.Lock()
	sp, ok := r.swaps[ad.Thing]
	if !ok || sp.newDev != ad.Device {
		r.swapMu.Unlock()
		return
	}
	delete(r.swaps, ad.Thing)
	r.swapMu.Unlock()
	sp.target.mu.Lock()
	sp.target.dev = sp.newDev
	sp.target.swapping = false
	sp.target.mu.Unlock()
	if sp.rec {
		sp.st.completed.Add(1)
		sp.st.hist.Record(int64(r.depClock(sp.target.dep).Now() - sp.from))
	}
}

// holdSub keeps a freshly established subscription open for SubHold of
// virtual time: the virtual loop services the close inline on its timeline
// (dep names the owning fleet member's clock), realtime mode parks a
// goroutine (cancelled at teardown via stopCh).
func (r *runner) holdSub(sub *micropnp.Subscription, dep int) {
	if !r.cfg.Realtime {
		r.openSubs = append(r.openSubs, heldSub{sub: sub, closeAt: r.depClock(dep).Now() + r.cfg.SubHold, dep: dep})
		return
	}
	r.subWG.Add(1)
	go func() {
		defer r.subWG.Done()
		select {
		case <-time.After(r.wallOf(r.cfg.SubHold)):
		case <-r.stopCh:
		}
		sub.Close()
	}()
}

// enterOp/leaveOp maintain the in-flight gauge and its high-water mark.
func (r *runner) enterOp() {
	n := r.inflight.Add(1)
	for {
		m := r.maxInflight.Load()
		if n <= m || r.maxInflight.CompareAndSwap(m, n) {
			return
		}
	}
}

func (r *runner) leaveOp() { r.inflight.Add(-1) }

// ---------------------------------------------------------------------------
// Virtual mode: the whole run plays out on the simulated timeline, so
// latencies are exact virtual-time spans and the run is bit-for-bit
// reproducible; worker counts shape only the schedule. Non-zoned runs
// execute operations one at a time from a single loop; zoned open-loop runs
// divert to the conducted engine below, which overlaps ops across lane
// groups while staying deterministic.

// advanceTo drives the simulation to virtual instant t, servicing
// subscription closes that fall due on the way. Each close rides its own
// deployment's clock; fleet runs then pull every member level via the
// conductor.
func (r *runner) advanceTo(t time.Duration) {
	for {
		due := -1
		for i, hs := range r.openSubs {
			if hs.closeAt <= t && (due < 0 || hs.closeAt < r.openSubs[due].closeAt) {
				due = i
			}
		}
		if due < 0 {
			break
		}
		hs := r.openSubs[due]
		last := len(r.openSubs) - 1
		r.openSubs[due] = r.openSubs[last]
		r.openSubs = r.openSubs[:last]
		dd := r.depClock(hs.dep)
		if now := dd.Now(); now < hs.closeAt {
			dd.RunFor(hs.closeAt - now)
		}
		hs.sub.Close()
	}
	if r.fleet != nil {
		r.conductTo(t)
		return
	}
	if now := r.d.Now(); now < t {
		r.d.RunFor(t - now)
	}
}

// conductorQuantum bounds one conductor step: no member clock runs more than
// this far ahead of the laggard while the fleet advances to a common instant.
const conductorQuantum = 250 * time.Millisecond

// conductTo is the fleet conductor: it steps every member deployment's
// virtual clock to instant t round-robin in bounded quanta (member 0 a
// quantum, member 1 a quantum, ... until all reach t). The deployments share
// no simulated links, so the interleave cannot change any member's event
// order — it only keeps the clocks from drifting apart between workload
// arrivals, and the fixed member order keeps the walk deterministic.
func (r *runner) conductTo(t time.Duration) {
	for {
		behind := false
		for _, d := range r.deps {
			now := d.Now()
			if now >= t {
				continue
			}
			step := t - now
			if step > conductorQuantum {
				step = conductorQuantum
				behind = true
			}
			d.RunFor(step)
		}
		if !behind {
			return
		}
	}
}

func (r *runner) runVirtual() {
	if r.cfg.Arrival == ArrivalOpen {
		// Fleet runs always use the sequential arrival loop below — each
		// member may still shard internally (Zones > 1), but the conductor
		// stays one goroutine; only the single-deployment zoned run diverts
		// to the conducted strand engine.
		if r.cfg.Zones > 1 && r.fleet == nil {
			r.runConducted()
			return
		}
		rng := r.laneRng(0)
		next := r.start + r.interarrival(rng)
		for next < r.measureEnd {
			r.maybeFailManager(next)
			r.advanceTo(next)
			p := r.drawPlan(rng, 0, next, true)
			r.enterOp()
			r.exec(0, p, next, true)
			r.leaveOp()
			next += r.interarrival(rng)
		}
		return
	}
	lanes := r.cfg.Workers
	rngs := make([]*rand.Rand, lanes)
	nextFree := make([]time.Duration, lanes)
	for w := range rngs {
		rngs[w] = r.laneRng(w)
		nextFree[w] = r.start
	}
	for {
		w := 0
		for i := 1; i < lanes; i++ {
			if nextFree[i] < nextFree[w] {
				w = i
			}
		}
		if nextFree[w] >= r.measureEnd {
			return
		}
		r.advanceTo(nextFree[w])
		p := r.drawPlan(rngs[w], w, 0, false)
		r.enterOp()
		r.exec(w, p, 0, false)
		r.leaveOp()
		nextFree[w] = r.d.Now() + r.cfg.Think
	}
}

// maybeFailManager injects the configured manager crash: once the next
// arrival passes the ManagerFailAt offset, the clocks are conducted to
// exactly that instant and manager 0 of deployment 0 is crashed. Pinning the
// crash to a virtual instant (not an arrival index) makes the failover's
// latency effects land identically in every run of the config.
func (r *runner) maybeFailManager(next time.Duration) {
	if r.cfg.ManagerFailAt <= 0 || r.failedMgr {
		return
	}
	failAt := r.start + r.cfg.ManagerFailAt
	if next < failAt {
		return
	}
	r.failedMgr = true
	r.advanceTo(failAt)
	// normalize guarantees Managers >= 2, so instance 0 exists and a
	// survivor remains; FailManager cannot fail here.
	_ = r.depClock(0).FailManager(0)
}

// ---------------------------------------------------------------------------
// Conducted zoned mode: open-loop arrivals on a sharded (zoned) simulator are
// issued from one cooperative strand per lane group instead of a single
// thread feeding all lanes, so ops bound for different zones overlap in
// flight between barrier rounds. Determinism is preserved on two legs:
//
//   - The whole schedule is pre-drawn from the single open-loop rng in
//     exactly the sequential engine's draw order (interarrival, plan,
//     interarrival, ...), so the schedule hash and rng consumption are
//     byte-identical to the non-zoned engine by construction.
//   - Deployment.Conduct interleaves strands purely by strand index, virtual
//     time, and completion state, so the run is bit-reproducible across
//     worker counts and driver engines.

// arrival is one pre-drawn open-loop operation and its intended instant.
type arrival struct {
	p  plan
	at time.Duration
}

// strandGroup maps a drawn plan to its issuing strand: target-bearing ops
// group by the target zone's clock lane (zone % Zones — mirroring the
// simulator's zone-to-lane fold), client-side ops (discover) to group 0.
func (r *runner) strandGroup(p plan) int {
	switch {
	case p.wr != nil:
		return int(p.wr.zone) % r.cfg.Zones
	case p.tgt != nil:
		return int(p.tgt.zone) % r.cfg.Zones
	}
	return 0
}

func (r *runner) runConducted() {
	// Pre-draw the full schedule; rng draw order matches the sequential
	// open-loop engine exactly.
	rng := r.laneRng(0)
	groups := make([][]arrival, r.cfg.Zones)
	next := r.start + r.interarrival(rng)
	for next < r.measureEnd {
		p := r.drawPlan(rng, 0, next, true)
		g := r.strandGroup(p)
		groups[g] = append(groups[g], arrival{p: p, at: next})
		next += r.interarrival(rng)
	}
	fns := make([]func(*micropnp.Strand), 0, len(groups))
	for _, arr := range groups {
		if len(arr) == 0 {
			continue
		}
		arr := arr
		fns = append(fns, func(s *micropnp.Strand) { r.strandLoop(s, arr) })
	}
	r.d.Conduct(fns...)
}

// strandLoop plays one lane group's arrivals in time order, interleaving the
// closes of the subscriptions this strand opened. Ops are charged to lane 0
// like the sequential engine (the schedule is one open-loop lane; strands are
// an execution detail), so LaneOps and the schedule hash are unchanged.
func (r *runner) strandLoop(s *micropnp.Strand, arr []arrival) {
	var subs []heldSub
	for i := range arr {
		a := &arr[i]
		r.serviceStrandSubs(s, &subs, a.at)
		s.Until(a.at)
		a.p.sink = &subs
		r.enterOp()
		r.exec(0, a.p, a.at, true)
		r.leaveOp()
	}
	// Hand leftover holds to the shared list for teardown; strands run one at
	// a time under the Conduct baton, so the append is ordered.
	r.openSubs = append(r.openSubs, subs...)
}

// serviceStrandSubs closes this strand's held subscriptions falling due at or
// before limit, earliest first, parking until each close instant.
func (r *runner) serviceStrandSubs(s *micropnp.Strand, subs *[]heldSub, limit time.Duration) {
	for {
		due := -1
		for i, hs := range *subs {
			if hs.closeAt <= limit && (due < 0 || hs.closeAt < (*subs)[due].closeAt) {
				due = i
			}
		}
		if due < 0 {
			return
		}
		hs := (*subs)[due]
		last := len(*subs) - 1
		(*subs)[due] = (*subs)[last]
		*subs = (*subs)[:last]
		s.Until(hs.closeAt)
		hs.sub.Close()
	}
}

// ---------------------------------------------------------------------------
// Realtime mode: genuinely concurrent execution against the wall-clock
// runtime.

// wallOf converts a virtual span to wall time.
func (r *runner) wallOf(span time.Duration) time.Duration {
	return time.Duration(float64(span) / r.cfg.TimeScale)
}

// waitVirtual sleeps until the deployment clock reaches virtual instant t.
func (r *runner) waitVirtual(t time.Duration) {
	for {
		now := r.d.Now()
		if now >= t {
			return
		}
		wall := r.wallOf(t - now)
		if wall < 50*time.Microsecond {
			wall = 50 * time.Microsecond
		}
		time.Sleep(wall)
	}
}

func (r *runner) runRealtime() {
	var wg sync.WaitGroup
	if r.cfg.Arrival == ArrivalOpen {
		rng := r.laneRng(0)
		next := r.start + r.interarrival(rng)
		for next < r.measureEnd {
			r.waitVirtual(next)
			// The plan is drawn for every arrival — shed or not — so the
			// schedule hash covers the whole arrival process.
			p := r.drawPlan(rng, 0, next, true)
			if r.inflight.Load() >= int64(r.cfg.MaxInFlight) {
				if r.recordable(next) {
					r.shed.Add(1)
				}
			} else {
				wg.Add(1)
				intended := next
				go func() {
					defer wg.Done()
					r.enterOp()
					defer r.leaveOp()
					r.exec(0, p, intended, true)
				}()
			}
			next += r.interarrival(rng)
		}
	} else {
		for w := 0; w < r.cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := r.laneRng(w)
				think := r.wallOf(r.cfg.Think)
				for {
					if r.d.Now() >= r.measureEnd {
						return
					}
					p := r.drawPlan(rng, w, 0, false)
					r.enterOp()
					r.exec(w, p, 0, false)
					r.leaveOp()
					select {
					case <-time.After(think):
					case <-r.stopCh:
						return
					}
				}
			}(w)
		}
	}
	// Give in-flight operations the cooldown to finish; every request is
	// deadline-bounded, so this converges.
	waitTimeout(&wg, r.wallOf(r.cfg.Cooldown))
}

func waitTimeout(wg *sync.WaitGroup, d time.Duration) bool {
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(d):
		return false
	}
}

// ---------------------------------------------------------------------------
// Teardown and result assembly

// teardown closes every subscription, stops the streams the workload
// started (Things keep producing until told to stop, so the network could
// otherwise never quiesce), lets outstanding work drain inside the cooldown
// horizon, and resolves still-pending hot-swaps as timeouts.
func (r *runner) teardown() {
	close(r.stopCh)
	if !r.cfg.Realtime {
		r.advanceTo(r.measureEnd)
		for _, hs := range r.openSubs {
			hs.sub.Close()
		}
		r.openSubs = nil
	} else {
		waitTimeout(&r.subWG, r.wallOf(r.cfg.SubHold)+time.Second)
	}
	// Stop the streams in deterministic order (map iteration is not).
	r.pairMu.Lock()
	keys := make([]pairKey, 0, len(r.pairs))
	for k := range r.pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].addr != keys[j].addr {
			return keys[i].addr.Less(keys[j].addr)
		}
		return keys[i].dev < keys[j].dev
	})
	things := make([]*micropnp.Thing, len(keys))
	for i, k := range keys {
		things[i] = r.pairs[k]
	}
	r.pairMu.Unlock()
	for i, k := range keys {
		things[i].StopStream(k.dev)
	}
	if r.fleet != nil {
		r.drained = r.fleet.Quiesce(r.cfg.Cooldown)
	} else {
		r.drained = r.d.Quiesce(r.cfg.Cooldown)
	}
}

func (r *runner) result() *Result {
	res := &Result{
		Scenario:   r.cfg.Scenario,
		Mode:       "virtual",
		Seed:       r.cfg.Seed,
		Things:     r.cfg.Things,
		Shape:      string(r.cfg.Shape),
		Clients:    r.cfg.Clients,
		Arrival:    r.cfg.Arrival.String(),
		Mix:        r.cfg.Mix.String(),
		WarmupNs:   int64(r.cfg.Warmup),
		MeasureNs:  int64(r.cfg.Duration),
		CooldownNs: int64(r.cfg.Cooldown),
		Shed:       r.shed.Load(),
		Drained:    r.drained,
		Ops:        map[string]*OpResult{},
	}
	if r.cfg.Realtime {
		res.Mode = "realtime"
		res.TimeScale = r.cfg.TimeScale
	} else {
		res.Zones = r.cfg.Zones
	}
	if r.cfg.Deployments > 1 {
		res.Deployments = r.cfg.Deployments
	}
	if r.cfg.Managers > 1 {
		res.Managers = r.cfg.Managers
	}
	res.ManagerFailNs = int64(r.cfg.ManagerFailAt)
	if r.cfg.Arrival == ArrivalOpen {
		res.Process = r.cfg.Process.String()
		res.RatePerSec = r.cfg.Rate
	} else {
		res.Workers = r.cfg.Workers
		res.ThinkNs = int64(r.cfg.Think)
	}
	// Unresolved hot-swaps never saw their advertisement: charge them as
	// timeouts.
	r.swapMu.Lock()
	for _, sp := range r.swaps {
		res.Unresolved++
		if sp.rec {
			sp.st.timeouts.Add(1)
		}
	}
	r.swaps = map[netip.Addr]*swapPending{}
	r.swapMu.Unlock()

	hash := uint64(0)
	for _, h := range r.laneHash {
		hash ^= h
	}
	res.ScheduleHash = fmt.Sprintf("%016x", hash)
	res.LaneOps = make([]uint64, len(r.laneOps))
	for i := range r.laneOps {
		res.LaneOps[i] = r.laneOps[i].Load()
	}
	res.StreamReadings = r.streams.Load()
	res.MaxInFlight = r.maxInflight.Load()
	var ns micropnp.NetworkStats
	if r.fleet != nil {
		ns = r.fleet.Stats()
	} else {
		ns = r.d.NetworkStats()
	}
	if ns.ShardLanes > 0 {
		res.Shard = &ShardTelemetry{
			Lanes:               ns.ShardLanes,
			Rounds:              ns.ShardRounds,
			Events:              ns.ShardEvents,
			LaneRounds:          ns.ShardLaneRounds,
			CrossMerged:         ns.ShardCrossMerged,
			CausalityViolations: ns.ShardCausalityViolations,
		}
	}

	secs := r.cfg.Duration.Seconds()
	for op := range r.stats {
		if r.cfg.Mix[op] == 0 {
			continue
		}
		st := &r.stats[op]
		o := &OpResult{
			Issued:   st.issued.Load(),
			Count:    st.completed.Load(),
			Errors:   st.errors.Load(),
			Timeouts: st.timeouts.Load(),
			MeanNs:   st.hist.Mean(),
			P50Ns:    st.hist.Quantile(0.50),
			P90Ns:    st.hist.Quantile(0.90),
			P99Ns:    st.hist.Quantile(0.99),
			P999Ns:   st.hist.Quantile(0.999),
			MaxNs:    st.hist.Max(),
		}
		if secs > 0 {
			o.ThroughputPerSec = float64(o.Count) / secs
		}
		res.Ops[Op(op).String()] = o
		res.Issued += o.Issued
		res.Completed += o.Count
		res.Errors += o.Errors
		res.Timeouts += o.Timeouts
	}
	return res
}
