package loadgen

import (
	"math/rand"
	"sync"
	"testing"
)

// TestBucketBoundaries: every value must land in a bucket whose [lo, hi)
// range contains it, small values exactly, and the index must be monotone in
// the value.
func TestBucketBoundaries(t *testing.T) {
	// Exact region: one bucket per value.
	for v := int64(0); v < histSubCount; v++ {
		idx := bucketIdx(v)
		if idx != int(v) {
			t.Fatalf("bucketIdx(%d) = %d, want exact", v, idx)
		}
		lo, hi := bucketBounds(idx)
		if lo != v || hi != v+1 {
			t.Fatalf("bounds(%d) = [%d,%d), want [%d,%d)", idx, lo, hi, v, v+1)
		}
	}
	// Sweep boundaries and random points across the log-linear region.
	vals := []int64{histSubCount - 1, histSubCount, histSubCount + 1}
	for shift := uint(histSubBits + 1); shift < 40; shift++ {
		v := int64(1) << shift
		vals = append(vals, v-1, v, v+1)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10_000; i++ {
		vals = append(vals, rng.Int63n(int64(1)<<40))
	}
	prevIdx := -1
	for _, v := range vals {
		idx := bucketIdx(v)
		lo, hi := bucketBounds(idx)
		if v < lo || v >= hi {
			t.Fatalf("value %d mapped to bucket %d = [%d,%d)", v, idx, lo, hi)
		}
		// Relative bucket width bounds the quantization error.
		if lo >= histSubCount && float64(hi-lo)/float64(lo) > 2.0/histSubCount+1e-9 {
			t.Fatalf("bucket [%d,%d) wider than the precision bound", lo, hi)
		}
		_ = prevIdx
	}
	// Monotonicity over a dense range.
	prev := 0
	for v := int64(0); v < 1<<20; v += 13 {
		idx := bucketIdx(v)
		if idx < prev {
			t.Fatalf("bucketIdx not monotone at %d: %d < %d", v, idx, prev)
		}
		prev = idx
	}
	// Clamps.
	if bucketIdx(-5) != 0 {
		t.Fatal("negative values must clamp to bucket 0")
	}
	if idx := bucketIdx(1 << 62); idx >= histBuckets {
		t.Fatalf("huge value index %d out of range", idx)
	}
}

// TestQuantileInterpolation: known sample sets must produce quantiles within
// one bucket width of the exact order statistic.
func TestQuantileInterpolation(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Count() != 0 {
		t.Fatal("empty histogram must report zero")
	}
	// Exact region: values 0..63 once each.
	for v := int64(0); v < 64; v++ {
		h.Record(v)
	}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.25, 15}, {0.5, 31}, {0.75, 47}, {1, 63}} {
		if got := h.Quantile(tc.q); got < tc.want-1 || got > tc.want+1 {
			t.Fatalf("Quantile(%v) = %d, want ~%d", tc.q, got, tc.want)
		}
	}
	if h.Max() != 63 {
		t.Fatalf("Max = %d", h.Max())
	}
	if m := h.Mean(); m != 31.5 {
		t.Fatalf("Mean = %v, want 31.5", m)
	}

	// Log-linear region: 1..100000, quantiles within the ~3% bucket width.
	var big Histogram
	for v := int64(1); v <= 100_000; v++ {
		big.Record(v)
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		want := q * 100_000
		got := float64(big.Quantile(q))
		if got < want*0.96 || got > want*1.04 {
			t.Fatalf("Quantile(%v) = %v, want within 4%% of %v", q, got, want)
		}
	}
}

// TestHistogramConcurrentRecording: samples recorded from many goroutines
// must all be counted, in the right buckets.
func TestHistogramConcurrentRecording(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 10_000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			v := int64(g * 1000)
			for i := 0; i < per; i++ {
				h.Record(v)
			}
		}(g)
	}
	wg.Wait()
	if h.Count() != goroutines*per {
		t.Fatalf("Count = %d, want %d", h.Count(), goroutines*per)
	}
	for g := 0; g < goroutines; g++ {
		if c := h.counts[bucketIdx(int64(g*1000))].Load(); c != per {
			t.Fatalf("bucket for %d holds %d, want %d", g*1000, c, per)
		}
	}
	if h.Max() != 7000 {
		t.Fatalf("Max = %d", h.Max())
	}
}
