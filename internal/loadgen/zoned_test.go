package loadgen

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"
	"time"
)

// miniZonedCfg is the "zoned" preset shrunk to milliseconds of wall time:
// every op kind, loss on the wire (per-zone RNG on the critical path), and
// a 4-zone topology on the sharded clock.
func miniZonedCfg() Config {
	return Config{
		Scenario: "zoned-mini", Things: 24, Shape: ShapeZones, Zones: 4, Rate: 4,
		Warmup: 2 * time.Second, Duration: 40 * time.Second, Cooldown: 10 * time.Second,
		Seed: 42, StreamPeriod: 2 * time.Second, RequestTimeout: 500 * time.Millisecond,
		LossRate: 0.02,
		Mix:      mixOf(50, 10, 5, 15, 15, 5),
	}
}

// TestZonedCrossClockByteIdentity is the determinism cross-check the CI job
// automates with upnp-load: the identical zoned scenario run on the parallel
// sharded schedule and on the sequential single-loop schedule (ShardWorkers=1)
// must serialize to byte-identical result JSON — run hash, per-op stats, and
// latency histograms included.
func TestZonedCrossClockByteIdentity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))

	cfg := miniZonedCfg()
	if err := cfg.normalize(); err != nil {
		t.Fatal(err)
	}
	par := cfg
	par.ShardWorkers = 0 // parallel rounds (GOMAXPROCS workers)
	seq := cfg
	seq.ShardWorkers = 1 // the sequential single-loop schedule

	_, parRes, err := run(par)
	if err != nil {
		t.Fatal(err)
	}
	_, seqRes, err := run(seq)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.Issued == 0 || parRes.Completed == 0 {
		t.Fatalf("zoned run issued %d / completed %d ops", parRes.Issued, parRes.Completed)
	}
	if parRes.Zones != par.Zones {
		t.Fatalf("result records %d zones, want %d", parRes.Zones, par.Zones)
	}
	jp, err := json.MarshalIndent(parRes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	js, err := json.MarshalIndent(seqRes, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jp, js) {
		t.Fatalf("result JSON diverged across clock modes:\nparallel:\n%s\nsingle-loop:\n%s", jp, js)
	}
}

// TestZonedPreset ensures the shipped "zoned" preset normalizes onto the
// sharded clock and that the zones shape defaults a lane count.
func TestZonedPreset(t *testing.T) {
	cfg, err := Preset("zoned")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Shape != ShapeZones || cfg.Zones <= 1 {
		t.Fatalf("zoned preset: shape=%q zones=%d", cfg.Shape, cfg.Zones)
	}
	bare := Config{Scenario: "z", Things: 8, Shape: ShapeZones, Rate: 1,
		Duration: time.Second, Mix: mixOf(100, 0, 0, 0, 0, 0)}
	if err := bare.normalize(); err != nil {
		t.Fatal(err)
	}
	if bare.Zones <= 1 {
		t.Fatalf("zones shape did not default a lane count: %d", bare.Zones)
	}
}
