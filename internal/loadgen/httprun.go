package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"micropnp"
)

// HTTP client mode: when Config.Target names a running gateway
// (cmd/upnp-gateway), Run issues the weighted op mix as REST calls against
// it instead of in-process SDK calls — read (GET .../read), write
// (PUT .../write) and discover (POST /discover); the other op kinds have no
// HTTP surface and their weights are ignored. Targets are enumerated from
// the gateway's own paged catalog listing, so the workload exercises
// exactly what the gateway advertises.
//
// Latency is the SDK call's virtual-time span as reported by the gateway's
// X-Upnp-Virtual-Ns response header, in both clock modes — wall time spent
// in HTTP plumbing is not the paper's metric. Against a virtual-mode
// gateway that no other client is driving, a single-lane run is
// deterministic: the op schedule is a pure function of the seed and every
// virtual span is a constant of the (op, target) pair, so the percentile
// report reproduces bit for bit — what the CI gateway-smoke job gates with
// benchgate -latency. Multi-lane runs and realtime gateways keep the
// schedule deterministic but measure real interleavings.
//
// HTTP mode is count-based (HTTPOps operations split across Workers lanes)
// rather than time-based: the gateway owns the virtual clock, so the runner
// cannot schedule against it.

// httpEntry is the slice of the gateway's listing JSON the runner needs.
type httpEntry struct {
	Thing  string `json:"thing"`
	Device string `json:"device"`
}

// httpRunner drives one HTTP-mode run.
type httpRunner struct {
	cfg    Config
	base   string
	client *http.Client

	targets   []httpEntry // readable peripherals
	writables []httpEntry // relay banks
	things    int         // distinct Things listed

	stats    [opKinds]opStats
	laneHash []uint64
	laneOps  []atomic.Uint64
}

// runHTTP executes Run's HTTP client mode.
func runHTTP(cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	r := &httpRunner{
		cfg:  cfg,
		base: strings.TrimRight(cfg.Target, "/"),
		// Generous wall timeout: virtual-mode requests block while the
		// gateway pumps the simulator, which is fast but not instant.
		client: &http.Client{Timeout: 2 * time.Minute},
	}
	if cfg.Mix[OpRead]+cfg.Mix[OpWrite]+cfg.Mix[OpDiscover] == 0 {
		return nil, fmt.Errorf("loadgen: http mode needs read, write or discover weight in the mix (got %s)", cfg.Mix)
	}

	mode, startNs, err := r.healthz()
	if err != nil {
		return nil, err
	}
	if err := r.enumerate(); err != nil {
		return nil, err
	}
	if cfg.Mix[OpRead] > 0 && len(r.targets) == 0 {
		return nil, fmt.Errorf("loadgen: gateway %s lists no readable peripherals", r.base)
	}
	if cfg.Mix[OpWrite] > 0 && len(r.writables) == 0 {
		return nil, fmt.Errorf("loadgen: gateway %s lists no relay banks but the mix writes", r.base)
	}

	lanes := cfg.Workers
	r.laneHash = make([]uint64, lanes)
	for i := range r.laneHash {
		r.laneHash[i] = fnvOffset
	}
	r.laneOps = make([]atomic.Uint64, lanes)

	wallStart := time.Now()
	var wg sync.WaitGroup
	perLane := cfg.HTTPOps / lanes
	extra := cfg.HTTPOps % lanes
	var firstErr atomic.Value
	for lane := 0; lane < lanes; lane++ {
		n := perLane
		if lane < extra {
			n++
		}
		wg.Add(1)
		go func(lane, n int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(lane)*7919))
			for i := 0; i < n; i++ {
				if err := r.execOne(rng, lane); err != nil {
					firstErr.CompareAndSwap(nil, err)
					return
				}
			}
		}(lane, n)
	}
	wg.Wait()
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	wallElapsed := time.Since(wallStart)

	_, endNs, err := r.healthz()
	if err != nil {
		return nil, err
	}
	return r.result(mode, time.Duration(endNs-startNs), wallElapsed), nil
}

// healthz probes the gateway, returning its clock mode and virtual now.
func (r *httpRunner) healthz() (mode string, nowNs int64, err error) {
	resp, err := r.client.Get(r.base + "/healthz")
	if err != nil {
		return "", 0, fmt.Errorf("loadgen: gateway unreachable: %w", err)
	}
	defer resp.Body.Close()
	var hz struct {
		OK    bool   `json:"ok"`
		Mode  string `json:"mode"`
		NowNs int64  `json:"now_ns"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil || !hz.OK {
		return "", 0, fmt.Errorf("loadgen: bad healthz from %s (err %v, ok %v)", r.base, err, hz.OK)
	}
	return hz.Mode, hz.NowNs, nil
}

// enumerate pages through GET /things, splitting entries into read targets
// (everything) and write targets (relay banks).
func (r *httpRunner) enumerate() error {
	seen := map[string]bool{}
	for offset := 0; ; {
		resp, err := r.client.Get(fmt.Sprintf("%s/things?offset=%d&limit=200", r.base, offset))
		if err != nil {
			return fmt.Errorf("loadgen: list things: %w", err)
		}
		var page struct {
			Total  int         `json:"total"`
			Count  int         `json:"count"`
			Things []httpEntry `json:"things"`
		}
		err = json.NewDecoder(resp.Body).Decode(&page)
		resp.Body.Close()
		if err != nil {
			return fmt.Errorf("loadgen: list things: %w", err)
		}
		for _, e := range page.Things {
			r.targets = append(r.targets, e)
			seen[e.Thing] = true
			if id, perr := strconv.ParseUint(e.Device, 0, 32); perr == nil && micropnp.DeviceID(id) == micropnp.Relay {
				r.writables = append(r.writables, e)
			}
		}
		offset += page.Count
		if page.Count == 0 || offset >= page.Total {
			break
		}
	}
	r.things = len(seen)
	return nil
}

// pickHTTPOp draws an op from the mix restricted to the HTTP-capable kinds.
func (r *httpRunner) pickHTTPOp(rng *rand.Rand) Op {
	total := r.cfg.Mix[OpRead] + r.cfg.Mix[OpWrite] + r.cfg.Mix[OpDiscover]
	w := rng.Intn(total)
	for _, op := range [...]Op{OpRead, OpWrite, OpDiscover} {
		if weight := r.cfg.Mix[op]; weight > 0 {
			if w < weight {
				return op
			}
			w -= weight
		}
	}
	return OpRead // unreachable
}

// execOne draws and issues one operation. Transport-level failures abort the
// run (the gateway died); HTTP-level failures are counted per op.
func (r *httpRunner) execOne(rng *rand.Rand, lane int) error {
	op := r.pickHTTPOp(rng)
	st := &r.stats[op]
	tgtIdx, wrIdx := -1, -1
	var req *http.Request
	var err error
	switch op {
	case OpWrite:
		wrIdx = rng.Intn(len(r.writables))
		tgt := r.writables[wrIdx]
		body, _ := json.Marshal(struct {
			Values []int32 `json:"values"`
		}{Values: []int32{int32(rng.Intn(256))}})
		req, err = http.NewRequest(http.MethodPut,
			fmt.Sprintf("%s/things/%s/write?peripheral=%s", r.base, tgt.Thing, tgt.Device),
			bytes.NewReader(body))
	case OpDiscover:
		disc := sensorCycle[rng.Intn(len(sensorCycle))]
		req, err = http.NewRequest(http.MethodPost,
			fmt.Sprintf("%s/discover?device=%s", r.base, disc), nil)
	default:
		tgtIdx = rng.Intn(len(r.targets))
		tgt := r.targets[tgtIdx]
		req, err = http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/things/%s/read?peripheral=%s", r.base, tgt.Thing, tgt.Device), nil)
	}
	if err != nil {
		return err
	}
	r.laneHash[lane] = fnvMix(r.laneHash[lane], uint64(op), uint64(tgtIdx+1), uint64(wrIdx+1))
	r.laneOps[lane].Add(1)
	st.issued.Add(1)

	resp, err := r.client.Do(req)
	if err != nil {
		return fmt.Errorf("loadgen: %s %s: %w", req.Method, req.URL, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch {
	case resp.StatusCode < 300:
		st.completed.Add(1)
		if span, perr := strconv.ParseInt(resp.Header.Get("X-Upnp-Virtual-Ns"), 10, 64); perr == nil {
			st.hist.Record(span)
		}
	case resp.StatusCode == http.StatusGatewayTimeout:
		st.timeouts.Add(1)
	default:
		st.errors.Add(1)
	}
	return nil
}

// result assembles the Result in the shape benchgate -latency gates.
func (r *httpRunner) result(gwMode string, virtualSpan time.Duration, wall time.Duration) *Result {
	res := &Result{
		Scenario:  r.cfg.Scenario,
		Mode:      "http-" + gwMode,
		Seed:      r.cfg.Seed,
		Things:    r.things,
		Shape:     "gateway",
		Clients:   1,
		Arrival:   "closed",
		Workers:   r.cfg.Workers,
		Mix:       r.cfg.Mix.String(),
		MeasureNs: int64(virtualSpan),
		Drained:   true,
		Ops:       map[string]*OpResult{},
	}
	h := uint64(fnvOffset)
	for _, lh := range r.laneHash {
		h = fnvMix(h, lh)
	}
	res.ScheduleHash = fmt.Sprintf("%016x", h)
	res.LaneOps = make([]uint64, len(r.laneOps))
	for i := range r.laneOps {
		res.LaneOps[i] = r.laneOps[i].Load()
	}
	// Throughput over the gateway's virtual span; fall back to wall time
	// when the virtual clock did not move (e.g. an idle realtime gateway
	// at scale 1 measured over a very short run).
	secs := virtualSpan.Seconds()
	if secs <= 0 {
		secs = wall.Seconds()
	}
	for op := Op(0); op < opKinds; op++ {
		st := &r.stats[op]
		if st.issued.Load() == 0 {
			continue
		}
		o := &OpResult{
			Issued:   st.issued.Load(),
			Count:    st.completed.Load(),
			Errors:   st.errors.Load(),
			Timeouts: st.timeouts.Load(),
			MeanNs:   st.hist.Mean(),
			P50Ns:    st.hist.Quantile(0.5),
			P90Ns:    st.hist.Quantile(0.9),
			P99Ns:    st.hist.Quantile(0.99),
			P999Ns:   st.hist.Quantile(0.999),
			MaxNs:    st.hist.Max(),
		}
		if secs > 0 {
			o.ThroughputPerSec = float64(o.Count) / secs
		}
		res.Issued += o.Issued
		res.Completed += o.Count
		res.Errors += o.Errors
		res.Timeouts += o.Timeouts
		res.Ops[op.String()] = o
	}
	return res
}
