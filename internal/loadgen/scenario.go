package loadgen

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Op is one workload operation kind, all issued through the public SDK.
type Op int

const (
	// OpRead is a unicast peripheral read (Client.ReadInto with a recycled
	// scratch buffer, so the generator adds no per-read value allocation).
	OpRead Op = iota
	// OpWrite writes a value to a relay bank (Client.Write).
	OpWrite
	// OpDiscover multicasts a typed discovery; it completes when the
	// discovery window (the deployment request timeout) closes, so its
	// latency is the window by construction — it is in the mix for the
	// fan-out load it imposes, not for its own percentiles.
	OpDiscover
	// OpSubscribe establishes a peripheral stream (latency = establishment
	// round trip), holds it for SubHold of virtual time while stream data
	// flows, then closes it.
	OpSubscribe
	// OpHotSwap unplugs a Thing's sensor and plugs the next kind in the
	// cycle; latency = unplug to the new peripheral's advertisement.
	OpHotSwap
	// OpDrivers asks a Thing for its installed drivers through the manager
	// (Deployment.DiscoverDrivers).
	OpDrivers
	opKinds
)

var opNames = [opKinds]string{"read", "write", "discover", "subscribe", "hotswap", "discover_drivers"}

// String returns the op's JSON/CLI name.
func (o Op) String() string {
	if o < 0 || o >= opKinds {
		return "?"
	}
	return opNames[o]
}

// Mix assigns relative weights to operation kinds; zero-weight kinds are
// never issued.
type Mix [opKinds]int

func (m Mix) total() int {
	t := 0
	for _, w := range m {
		t += w
	}
	return t
}

// String renders the mix in the CLI's read=60,write=10,... form.
func (m Mix) String() string {
	var parts []string
	for op, w := range m {
		if w > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", Op(op), w))
		}
	}
	return strings.Join(parts, ",")
}

// ParseMix parses a read=60,write=10,... weight list.
func ParseMix(s string) (Mix, error) {
	var m Mix
	byName := map[string]Op{}
	for op, name := range opNames {
		byName[name] = Op(op)
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: bad mix entry %q (want op=weight)", part)
		}
		op, known := byName[strings.TrimSpace(name)]
		if !known {
			names := append([]string(nil), opNames[:]...)
			sort.Strings(names)
			return Mix{}, fmt.Errorf("loadgen: unknown op %q (known: %s)", name, strings.Join(names, ", "))
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: bad weight in %q", part)
		}
		m[op] = w
	}
	if m.total() == 0 {
		return Mix{}, fmt.Errorf("loadgen: mix %q has no positive weights", s)
	}
	return m, nil
}

// Arrival selects the arrival process family.
type Arrival int

const (
	// ArrivalOpen issues operations at schedule-driven instants regardless
	// of completions (Poisson or fixed-rate), the model for externally
	// imposed traffic.
	ArrivalOpen Arrival = iota
	// ArrivalClosed runs a fixed worker population, each issuing its next
	// operation a think time after the previous one completed.
	ArrivalClosed
)

// String names the arrival process.
func (a Arrival) String() string {
	if a == ArrivalClosed {
		return "closed"
	}
	return "open"
}

// Process selects the open-loop inter-arrival distribution.
type Process int

const (
	// ProcessPoisson draws exponential inter-arrival gaps (memoryless
	// arrivals at the configured mean rate).
	ProcessPoisson Process = iota
	// ProcessFixed spaces arrivals exactly 1/rate apart.
	ProcessFixed
)

// String names the process.
func (p Process) String() string {
	if p == ProcessFixed {
		return "fixed"
	}
	return "poisson"
}

// Shape selects the deployment topology, mirroring the shapes the scale
// test-suite exercises.
type Shape string

const (
	// ShapeWide attaches every Thing one hop from the manager (worst-case
	// multicast fan-out).
	ShapeWide Shape = "wide"
	// ShapeDeep deepens a chain every 10 Things (worst-case path length).
	ShapeDeep Shape = "deep"
	// ShapeBranches grows three subtrees, one sensor kind per branch,
	// deepening every 20 (several concurrent multicast groups).
	ShapeBranches Shape = "branches"
	// ShapeZones builds one flat subtree per address zone (zone roots one
	// hop from the manager), Things round-robin across zones — the
	// topology for zone-sharded (Config.Zones) runs: intra-zone traffic
	// stays on one event lane. Location zones are 1-based; zone 0 is the
	// manager/client (control) zone.
	ShapeZones Shape = "zones"
)

// Config parameterizes one load run. Zero values take the documented
// defaults in normalize.
type Config struct {
	// Scenario labels the run in the result JSON.
	Scenario string
	// Things is the deployment size; Shape picks the topology.
	Things int
	Shape  Shape
	// Clients is the number of SDK clients requests are spread across.
	Clients int

	// Arrival, Process, Rate (ops per virtual second), Workers and Think
	// configure the arrival process (open: Process+Rate; closed:
	// Workers+Think).
	Arrival Arrival
	Process Process
	Rate    float64
	Workers int
	Think   time.Duration

	// Warmup, Duration, Cooldown are the run phases in virtual time:
	// operations arriving during the warmup are executed but not recorded,
	// the measure window spans Duration, and the cooldown bounds the final
	// drain of in-flight work.
	Warmup   time.Duration
	Duration time.Duration
	Cooldown time.Duration

	// Seed drives every random choice (arrival gaps, op and target picks,
	// the deployment's loss/jitter stream). Same seed + same config ⇒ same
	// op schedule, and in virtual mode bit-identical results.
	Seed int64
	Mix  Mix

	// Realtime runs the deployment on the wall clock (TimeScale compresses
	// virtual time; PoolWorkers bounds the network handler pool).
	Realtime    bool
	TimeScale   float64
	PoolWorkers int

	// Deployment knobs: StreamPeriod for subscription streams,
	// RequestTimeout for request deadlines (and hence the discovery
	// window), LossRate for lossy-network runs, SubHold for how long a
	// subscription stays open.
	StreamPeriod   time.Duration
	RequestTimeout time.Duration
	LossRate       float64
	SubHold        time.Duration

	// MaxInFlight bounds concurrently executing open-loop operations in
	// realtime mode; arrivals past the bound are counted as shed instead of
	// spawning unboundedly under overload.
	MaxInFlight int

	// Zones > 1 runs the deployment on the zone-sharded parallel clock
	// with that many address zones (virtual mode only; ignored with
	// Realtime). Use with ShapeZones so Things actually spread across the
	// zone lanes. ShardWorkers bounds the sharded clock's round
	// parallelism: 0 = GOMAXPROCS, 1 = the sequential single-loop schedule
	// — the determinism cross-check mode, bit-identical to any parallel
	// run of the same config.
	Zones        int
	ShardWorkers int

	// GlobalLookahead pins the sharded clock's barrier windows to the
	// conservative global quantum instead of the per-lane-pair topology
	// matrix (the default). A window-policy knob only: it reshapes rounds,
	// not the op schedule, so it is deliberately not recorded in the result
	// JSON.
	GlobalLookahead bool

	// Deployments > 1 federates that many virtual deployments (sites
	// 0..N-1, distinct /48 prefixes) behind one micropnp.Fleet and routes
	// every workload operation through the fleet surface. Things spread
	// round-robin across the members, and a fleet conductor steps the
	// per-deployment virtual clocks round-robin in bounded quanta, so the
	// run stays a pure function of the config (virtual, open-loop only).
	// Managers sets the per-deployment manager redundancy (anycast
	// instances; default 1). ManagerFailAt, when positive, crashes manager
	// 0 of deployment 0 at exactly that offset into the workload — the
	// deterministic failover-under-load scenario (requires Managers >= 2
	// so the anycast has a survivor).
	Deployments   int
	Managers      int
	ManagerFailAt time.Duration

	// InterpDrivers pins driver execution to the reference bytecode
	// interpreter instead of the compiled engine. The engines are
	// transcript-identical, so with the same seed and config a virtual-mode
	// run produces byte-identical results either way — the engine is
	// deliberately not recorded in the result JSON so the cross-engine
	// byte comparison can assert exactly that.
	InterpDrivers bool

	// Target switches Run to the HTTP client mode: operations are issued as
	// REST calls against a running gateway (cmd/upnp-gateway) at this base
	// URL instead of in-process SDK calls. Only the read, write and discover
	// weights of the mix apply; HTTPOps is the total operation count, split
	// across Workers lanes (HTTP mode is count-based — the gateway owns the
	// clock). Latency is the gateway's X-Upnp-Virtual-Ns span.
	Target  string
	HTTPOps int
}

// Scenarios returns the preset names, sorted.
func Scenarios() []string {
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

var presets = map[string]Config{
	// smoke: the small deterministic scenario CI gates on — every op kind,
	// modest rate, a couple of minutes of virtual time.
	"smoke": {
		Things: 12, Shape: ShapeWide, Rate: 3, Warmup: 10 * time.Second,
		Duration: 150 * time.Second, Cooldown: 30 * time.Second,
		StreamPeriod: 5 * time.Second, RequestTimeout: time.Second,
		Mix: mixOf(60, 10, 5, 10, 10, 5),
	},
	// steady: a larger read-heavy steady state, the push-to-main realtime
	// scenario.
	"steady": {
		Things: 100, Shape: ShapeBranches, Rate: 3, Warmup: 20 * time.Second,
		Duration: 300 * time.Second, Cooldown: 60 * time.Second,
		StreamPeriod: 10 * time.Second, RequestTimeout: 2 * time.Second,
		Mix: mixOf(70, 10, 5, 10, 0, 5),
	},
	// churn: hot-swap-heavy — group membership, SMRF plan splicing and
	// advertisement traffic under sustained peripheral churn.
	"churn": {
		Things: 60, Shape: ShapeWide, Rate: 3, Warmup: 10 * time.Second,
		Duration: 200 * time.Second, Cooldown: 60 * time.Second,
		StreamPeriod: 5 * time.Second, RequestTimeout: time.Second,
		Mix: mixOf(45, 5, 10, 5, 30, 5),
	},
	// http-smoke: the HTTP client mode's CI scenario — a single lane of
	// reads, writes and discoveries against a running gateway (set Target
	// or pass -target). Single-lane so a quiet virtual-mode gateway yields
	// a bit-deterministic percentile report.
	"http-smoke": {
		HTTPOps: 200, Workers: 1,
		Mix: mixOf(70, 20, 10, 0, 0, 0),
	},
	// zoned: the zone-sharded scenario — per-zone subtrees driven on the
	// parallel sharded clock, with loss riding the per-zone RNG streams and
	// hot-swaps churning group membership across zone boundaries. The CI
	// determinism job runs it under the parallel and the single-loop
	// schedule and byte-diffs the result JSON.
	"zoned": {
		Things: 240, Shape: ShapeZones, Zones: 8, Rate: 6,
		Warmup: 10 * time.Second, Duration: 180 * time.Second, Cooldown: 45 * time.Second,
		StreamPeriod: 5 * time.Second, RequestTimeout: time.Second,
		LossRate: 0.02,
		Mix:      mixOf(55, 10, 5, 10, 15, 5),
	},
	// fleet: the federation scenario — three virtual deployments (sites
	// 0..2, two anycast manager instances each) behind one Fleet, zoned
	// topologies inside every member, and a manager crash a third of the
	// way into the measure window. The CI fleet job gates its latency
	// percentiles (LOAD_fleet_baseline.json) and byte-diffs the result
	// JSON across sharded-clock worker counts.
	"fleet": {
		Deployments: 3, Managers: 2, ManagerFailAt: 60 * time.Second,
		Things: 90, Shape: ShapeZones, Zones: 4, Rate: 3,
		Warmup: 10 * time.Second, Duration: 150 * time.Second, Cooldown: 45 * time.Second,
		StreamPeriod: 5 * time.Second, RequestTimeout: time.Second,
		LossRate: 0.02,
		Mix:      mixOf(55, 10, 5, 10, 15, 5),
	},
	// fanout: discovery- and subscription-heavy on a wide topology — the
	// multicast fan-out stress.
	"fanout": {
		Things: 150, Shape: ShapeWide, Rate: 1.5, Warmup: 10 * time.Second,
		Duration: 400 * time.Second, Cooldown: 60 * time.Second,
		StreamPeriod: 5 * time.Second, RequestTimeout: time.Second,
		Mix: mixOf(20, 0, 50, 30, 0, 0),
	},
}

func mixOf(read, write, discover, subscribe, hotswap, drivers int) Mix {
	var m Mix
	m[OpRead], m[OpWrite], m[OpDiscover] = read, write, discover
	m[OpSubscribe], m[OpHotSwap], m[OpDrivers] = subscribe, hotswap, drivers
	return m
}

// Preset returns a named scenario configuration.
func Preset(name string) (Config, error) {
	cfg, ok := presets[name]
	if !ok {
		return Config{}, fmt.Errorf("loadgen: unknown scenario %q (known: %s)", name, strings.Join(Scenarios(), ", "))
	}
	cfg.Scenario = name
	return cfg, nil
}

// normalize fills defaults and validates.
func (cfg *Config) normalize() error {
	if cfg.Scenario == "" {
		cfg.Scenario = "custom"
	}
	if cfg.Things <= 0 {
		cfg.Things = 12
	}
	switch cfg.Shape {
	case "":
		cfg.Shape = ShapeWide
	case ShapeWide, ShapeDeep, ShapeBranches:
	case ShapeZones:
		if cfg.Zones <= 1 {
			cfg.Zones = 4
		}
	default:
		return fmt.Errorf("loadgen: unknown shape %q", cfg.Shape)
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.Arrival == ArrivalOpen && cfg.Rate <= 0 {
		cfg.Rate = 4
	}
	if cfg.Arrival == ArrivalClosed {
		if cfg.Workers <= 0 {
			cfg.Workers = 4
		}
		if cfg.Think <= 0 {
			cfg.Think = 200 * time.Millisecond
		}
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 60 * time.Second
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 30 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Mix.total() == 0 {
		cfg.Mix = mixOf(60, 10, 5, 10, 10, 5)
	}
	if cfg.StreamPeriod <= 0 {
		cfg.StreamPeriod = 5 * time.Second
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = time.Second
	}
	if cfg.SubHold <= 0 {
		cfg.SubHold = 2*cfg.StreamPeriod + cfg.StreamPeriod/2
	}
	if cfg.Realtime && cfg.TimeScale <= 0 {
		cfg.TimeScale = 50
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4096
	}
	if cfg.Deployments <= 0 {
		cfg.Deployments = 1
	}
	if cfg.Managers <= 0 {
		cfg.Managers = 1
	}
	if cfg.Deployments > 1 {
		if cfg.Realtime {
			return fmt.Errorf("loadgen: fleet runs (Deployments > 1) are virtual-mode only")
		}
		if cfg.Arrival != ArrivalOpen {
			return fmt.Errorf("loadgen: fleet runs (Deployments > 1) need open-loop arrivals")
		}
		if cfg.Target != "" {
			return fmt.Errorf("loadgen: fleet runs cannot use the HTTP client mode")
		}
	}
	if cfg.ManagerFailAt > 0 {
		if cfg.Managers < 2 {
			return fmt.Errorf("loadgen: ManagerFailAt needs Managers >= 2, so the anycast keeps a survivor")
		}
		if cfg.Realtime {
			return fmt.Errorf("loadgen: ManagerFailAt is virtual-mode only")
		}
		if cfg.Arrival != ArrivalOpen {
			return fmt.Errorf("loadgen: ManagerFailAt needs open-loop arrivals")
		}
		if cfg.Deployments == 1 && cfg.Zones > 1 {
			return fmt.Errorf("loadgen: ManagerFailAt is not supported on the single-deployment conducted zoned engine")
		}
	}
	if cfg.Target != "" {
		if cfg.HTTPOps <= 0 {
			cfg.HTTPOps = 200
		}
		if cfg.Workers <= 0 {
			cfg.Workers = 1
		}
	}
	return nil
}
