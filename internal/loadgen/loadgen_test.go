package loadgen

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// miniCfg is a fast scenario covering every op kind: ~100 ops over 40s of
// virtual time, milliseconds of wall time.
func miniCfg() Config {
	return Config{
		Scenario: "mini", Things: 6, Shape: ShapeWide, Rate: 3,
		Warmup: 2 * time.Second, Duration: 40 * time.Second, Cooldown: 10 * time.Second,
		Seed: 42, StreamPeriod: 2 * time.Second, RequestTimeout: 500 * time.Millisecond,
		Mix: mixOf(50, 10, 5, 15, 15, 5),
	}
}

// TestVirtualDeterminism: the same seed and scenario must reproduce the op
// schedule and every latency histogram bit for bit — the property the CI
// latency gate rests on.
func TestVirtualDeterminism(t *testing.T) {
	r1, res1, err := run(miniCfg())
	if err != nil {
		t.Fatal(err)
	}
	r2, res2, err := run(miniCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res1.Issued == 0 || res1.Completed == 0 {
		t.Fatalf("mini run issued %d / completed %d ops", res1.Issued, res1.Completed)
	}
	if res1.ScheduleHash != res2.ScheduleHash {
		t.Fatalf("schedule hash differs across identical runs: %s vs %s", res1.ScheduleHash, res2.ScheduleHash)
	}
	for op := range r1.stats {
		if !r1.stats[op].hist.equal(&r2.stats[op].hist) {
			t.Fatalf("%v histogram differs across identical runs", Op(op))
		}
	}
	j1, err := json.Marshal(res1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(res2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(j1, j2) {
		t.Fatalf("results differ across identical runs:\n%s\n%s", j1, j2)
	}
	// A different seed must produce a different schedule.
	other := miniCfg()
	other.Seed = 43
	_, res3, err := run(other)
	if err != nil {
		t.Fatal(err)
	}
	if res3.ScheduleHash == res1.ScheduleHash {
		t.Fatal("different seeds hashed to the same schedule")
	}
}

// TestVirtualRunShape sanity-checks the mini run: every op kind issued,
// streams delivered data, hot-swaps resolved, and the teardown quiesce
// drained the network.
func TestVirtualRunShape(t *testing.T) {
	_, res, err := run(miniCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"read", "write", "discover", "subscribe", "hotswap", "discover_drivers"} {
		o := res.Ops[name]
		if o == nil || o.Issued == 0 {
			t.Fatalf("op %s never issued: %+v", name, o)
		}
		if o.Count > 0 && (o.P50Ns <= 0 || o.P99Ns < o.P50Ns || o.MaxNs <= 0) {
			t.Fatalf("op %s has implausible percentiles: %+v", name, o)
		}
	}
	if res.StreamReadings == 0 {
		t.Fatal("no stream data observed despite subscribe ops")
	}
	if res.MaxInFlight != 1 {
		t.Fatalf("virtual mode executes ops sequentially; max in-flight = %d", res.MaxInFlight)
	}
	if !res.Drained {
		t.Fatal("teardown quiesce did not drain (streams left running?)")
	}
	if res.Unresolved != 0 {
		t.Fatalf("%d hot-swaps never resolved in a loss-free run", res.Unresolved)
	}
}

// TestClosedLoopVirtualInvariants: a closed-loop run distributes work over
// exactly Workers lanes, never overlaps ops on the virtual timeline, and
// remains deterministic.
func TestClosedLoopVirtualInvariants(t *testing.T) {
	cfg := miniCfg()
	cfg.Arrival = ArrivalClosed
	cfg.Workers = 3
	cfg.Think = 300 * time.Millisecond
	_, res1, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, res2, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res1.ScheduleHash != res2.ScheduleHash || res1.Issued != res2.Issued {
		t.Fatal("closed-loop virtual run not deterministic")
	}
	if len(res1.LaneOps) != cfg.Workers {
		t.Fatalf("lanes = %d, want %d", len(res1.LaneOps), cfg.Workers)
	}
	var sum uint64
	for w, n := range res1.LaneOps {
		if n == 0 {
			t.Fatalf("worker %d issued nothing", w)
		}
		sum += n
	}
	if sum != res1.Issued {
		t.Fatalf("lane ops sum %d != issued %d", sum, res1.Issued)
	}
	if res1.MaxInFlight != 1 {
		t.Fatalf("virtual closed loop must serialize; max in-flight = %d", res1.MaxInFlight)
	}
	// More workers with the same think time must issue more ops (the
	// population bounds throughput).
	cfg6 := cfg
	cfg6.Workers = 6
	_, res6, err := run(cfg6)
	if err != nil {
		t.Fatal(err)
	}
	if res6.Issued <= res1.Issued {
		t.Fatalf("6 workers issued %d ops, 3 workers %d — population should raise closed-loop throughput", res6.Issued, res1.Issued)
	}
}

// TestClosedLoopRealtimeInvariants: under the wall-clock runtime the worker
// population bounds concurrency: never more than Workers ops in flight, and
// every lane participates.
func TestClosedLoopRealtimeInvariants(t *testing.T) {
	cfg := Config{
		Scenario: "mini-rt", Things: 4, Shape: ShapeWide,
		Arrival: ArrivalClosed, Workers: 4, Think: 50 * time.Millisecond,
		Warmup: time.Second, Duration: 20 * time.Second, Cooldown: 5 * time.Second,
		Seed: 7, StreamPeriod: 2 * time.Second, RequestTimeout: 500 * time.Millisecond,
		Realtime: true, TimeScale: 100,
		Mix: mixOf(70, 10, 0, 10, 10, 0),
	}
	_, res, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed == 0 {
		t.Fatal("realtime closed loop completed nothing")
	}
	if res.MaxInFlight > int64(cfg.Workers) {
		t.Fatalf("max in-flight %d exceeds the %d-worker population", res.MaxInFlight, cfg.Workers)
	}
	if len(res.LaneOps) != cfg.Workers {
		t.Fatalf("lanes = %d, want %d", len(res.LaneOps), cfg.Workers)
	}
	var sum uint64
	for w, n := range res.LaneOps {
		if n == 0 {
			t.Fatalf("worker %d issued nothing", w)
		}
		sum += n
	}
	if sum != res.Issued {
		t.Fatalf("lane ops sum %d != issued %d", sum, res.Issued)
	}
}

// TestOpenLoopScheduleSharedAcrossModes: the open-loop arrival schedule is
// drawn identically in virtual and realtime mode — same seed, same hash —
// so a realtime run measures real latencies of the exact schedule the
// deterministic gate run used.
func TestOpenLoopScheduleSharedAcrossModes(t *testing.T) {
	cfg := miniCfg()
	cfg.Duration = 15 * time.Second
	cfg.Cooldown = 5 * time.Second
	_, virt, err := run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt := cfg
	rt.Realtime = true
	rt.TimeScale = 100
	_, real, err := run(rt)
	if err != nil {
		t.Fatal(err)
	}
	if real.ScheduleHash != virt.ScheduleHash {
		t.Fatalf("open-loop schedule hash differs across modes: %s (virtual) vs %s (realtime)", virt.ScheduleHash, real.ScheduleHash)
	}
	if real.MaxInFlight < 1 || real.Completed == 0 {
		t.Fatalf("realtime open loop: %+v", real)
	}
}

// TestPresetsNormalize: every shipped scenario must validate.
func TestPresetsNormalize(t *testing.T) {
	for _, name := range Scenarios() {
		cfg, err := Preset(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := cfg.normalize(); err != nil {
			t.Fatalf("preset %s: %v", name, err)
		}
		if cfg.Mix.total() == 0 || cfg.Things == 0 || cfg.Duration == 0 {
			t.Fatalf("preset %s underspecified: %+v", name, cfg)
		}
	}
}

// TestParseMix round-trips the CLI mix syntax.
func TestParseMix(t *testing.T) {
	m, err := ParseMix("read=60, write=10,hotswap=5")
	if err != nil {
		t.Fatal(err)
	}
	if m[OpRead] != 60 || m[OpWrite] != 10 || m[OpHotSwap] != 5 || m[OpDiscover] != 0 {
		t.Fatalf("mix = %+v", m)
	}
	if _, err := ParseMix("read=60,warp=1"); err == nil {
		t.Fatal("unknown op must fail")
	}
	if _, err := ParseMix("read=-1"); err == nil {
		t.Fatal("negative weight must fail")
	}
	if _, err := ParseMix(""); err == nil {
		t.Fatal("empty mix must fail")
	}
}
