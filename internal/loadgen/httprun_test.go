package loadgen_test

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"micropnp"
	"micropnp/internal/catalog"
	"micropnp/internal/gateway"
	"micropnp/internal/loadgen"
)

// newGateway boots a quiet virtual-mode gateway (no refresher, no sweeper —
// nothing drives the clock but the load itself) over nThings Things, the
// first carrying a relay bank.
func newGateway(t *testing.T, nThings int) *httptest.Server {
	t.Helper()
	d, err := micropnp.NewDeployment(micropnp.WithSeed(1))
	if err != nil {
		t.Fatalf("NewDeployment: %v", err)
	}
	t.Cleanup(d.Close)
	cl, err := d.AddClient()
	if err != nil {
		t.Fatalf("AddClient: %v", err)
	}
	cat, err := catalog.New(catalog.Config{TTL: time.Hour, Now: d.Now})
	if err != nil {
		t.Fatalf("catalog.New: %v", err)
	}
	cl.AddAdvertHook(cat.Observe)
	for i := 0; i < nThings; i++ {
		th, err := d.AddThing(fmt.Sprintf("t%d", i))
		if err != nil {
			t.Fatalf("AddThing: %v", err)
		}
		if err := th.PlugTMP36(0); err != nil {
			t.Fatalf("PlugTMP36: %v", err)
		}
		if i == 0 {
			if _, err := th.PlugRelay(1); err != nil {
				t.Fatalf("PlugRelay: %v", err)
			}
		}
	}
	d.Run()
	srv, err := gateway.New(gateway.Config{Deployment: d, Client: cl, Catalog: cat})
	if err != nil {
		t.Fatalf("gateway.New: %v", err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts
}

func TestHTTPModeSmoke(t *testing.T) {
	ts := newGateway(t, 6)
	cfg, err := loadgen.Preset("http-smoke")
	if err != nil {
		t.Fatalf("Preset: %v", err)
	}
	cfg.Target = ts.URL
	cfg.HTTPOps = 60
	cfg.Seed = 7

	res, err := loadgen.Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Mode != "http-virtual" {
		t.Fatalf("mode = %q, want http-virtual", res.Mode)
	}
	if res.Issued != 60 || res.Completed != 60 || res.Errors != 0 || res.Timeouts != 0 {
		t.Fatalf("counts = issued %d completed %d errors %d timeouts %d, want 60/60/0/0",
			res.Issued, res.Completed, res.Errors, res.Timeouts)
	}
	if res.Things != 6 {
		t.Fatalf("things = %d, want 6", res.Things)
	}
	for _, op := range []string{"read", "write", "discover"} {
		o := res.Ops[op]
		if o == nil || o.Count == 0 {
			t.Fatalf("op %s missing or empty: %+v", op, res.Ops)
		}
		if o.P99Ns <= 0 {
			t.Fatalf("op %s p99 = %d, want positive virtual span", op, o.P99Ns)
		}
	}
	if res.MeasureNs <= 0 {
		t.Fatalf("measure span = %d, want positive (the load pumps the clock)", res.MeasureNs)
	}
	if res.ScheduleHash == "" {
		t.Fatal("empty schedule hash")
	}
}

// TestHTTPModeDeterministic asserts the CI contract: two runs with the same
// seed against identically-built quiet gateways produce the same schedule
// hash and identical per-op p99s.
func TestHTTPModeDeterministic(t *testing.T) {
	run := func() *loadgen.Result {
		ts := newGateway(t, 6)
		cfg, err := loadgen.Preset("http-smoke")
		if err != nil {
			t.Fatalf("Preset: %v", err)
		}
		cfg.Target = ts.URL
		cfg.HTTPOps = 40
		cfg.Seed = 3
		res, err := loadgen.Run(cfg)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.ScheduleHash != b.ScheduleHash {
		t.Fatalf("schedule hash differs: %s vs %s", a.ScheduleHash, b.ScheduleHash)
	}
	for name, oa := range a.Ops {
		ob := b.Ops[name]
		if ob == nil {
			t.Fatalf("op %s missing from second run", name)
		}
		if oa.Count != ob.Count || oa.P50Ns != ob.P50Ns || oa.P99Ns != ob.P99Ns || oa.MaxNs != ob.MaxNs {
			t.Fatalf("op %s not deterministic: %+v vs %+v", name, oa, ob)
		}
	}
	if a.MeasureNs != b.MeasureNs {
		t.Fatalf("virtual span differs: %d vs %d", a.MeasureNs, b.MeasureNs)
	}
}

func TestHTTPModeRejectsStreamOnlyMix(t *testing.T) {
	cfg := loadgen.Config{Target: "http://127.0.0.1:1", Scenario: "x"}
	cfg.Mix, _ = loadgen.ParseMix("subscribe=10")
	if _, err := loadgen.Run(cfg); err == nil {
		t.Fatal("Run accepted an HTTP-incapable mix")
	}
}

// TestWriteJSONCreatesParentDir covers the -out fix: a result lands in a
// directory that does not exist yet, atomically (no temp file left behind).
func TestWriteJSONCreatesParentDir(t *testing.T) {
	res := &loadgen.Result{Scenario: "x", Mode: "virtual", Ops: map[string]*loadgen.OpResult{}}
	path := filepath.Join(t.TempDir(), "deep", "nested", "result.json")
	if err := res.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	var back loadgen.Result
	if err := json.Unmarshal(data, &back); err != nil || back.Scenario != "x" {
		t.Fatalf("round trip: %v, %+v", err, back)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(entries) != 1 {
		t.Fatalf("leftover files next to result: %v", entries)
	}
}
