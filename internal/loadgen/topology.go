package loadgen

import (
	"fmt"
	"net/netip"
	"sync"

	"micropnp"
)

// target is one load-targetable Thing: its current sensor kind (which
// hot-swaps rotate) and whether a swap is in flight.
type target struct {
	idx   int
	thing *micropnp.Thing
	addr  netip.Addr
	zone  uint16 // location zone (0 outside ShapeZones); keys strand grouping
	dep   int    // owning fleet member index (0 outside fleet runs)

	mu       sync.Mutex
	dev      micropnp.DeviceID
	swapping bool
}

// device returns the target's current sensor kind.
func (t *target) device() micropnp.DeviceID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dev
}

// sensorCycle is the hot-swap rotation; all three kinds also seed the
// round-robin plug order, mirroring the scale test-suite's topologies.
var sensorCycle = [3]micropnp.DeviceID{micropnp.TMP36, micropnp.HIH4030, micropnp.BMP180}

// plugSensor plugs the kind-th round-robin sensor on channel 0.
func plugSensor(th *micropnp.Thing, kind int) (micropnp.DeviceID, error) {
	dev := sensorCycle[kind%len(sensorCycle)]
	return dev, plugDevice(th, dev)
}

// buildTopology attaches cfg.Things Things in the configured shape with
// round-robin sensors on channel 0, plus a relay bank on channel 1 of every
// fifth Thing (the write targets — at least one whenever the mix writes).
// The shapes mirror the scale test-suite: wide (all one hop from the
// manager), deep (chains deepening every 10), branches (three subtrees, one
// sensor kind each, deepening every 20).
func buildTopology(d *micropnp.Deployment, cfg Config) (targets []*target, writables []*target, err error) {
	n := cfg.Things
	targets = make([]*target, 0, n)
	var prev, parent *micropnp.Thing
	branchParents := make([]*micropnp.Thing, 3)
	// zoneRoots[z] is zone z's subtree root (location zones are 1-based).
	var zoneRoots []*micropnp.Thing
	if cfg.Shape == ShapeZones {
		zoneRoots = make([]*micropnp.Thing, cfg.Zones+1)
	}
	for i := 0; i < n; i++ {
		var th *micropnp.Thing
		switch cfg.Shape {
		case ShapeZones:
			zone := 1 + i%cfg.Zones
			if zoneRoots[zone] == nil {
				th, err = d.AddThing(fmt.Sprintf("z%dn%d", zone, i), micropnp.InZone(uint16(zone)))
				if err == nil {
					zoneRoots[zone] = th
				}
			} else {
				th, err = d.AddThing(fmt.Sprintf("z%dn%d", zone, i),
					micropnp.InZone(uint16(zone)), micropnp.Under(zoneRoots[zone]))
			}
		case ShapeDeep:
			if i > 0 && i%10 == 0 {
				parent = prev
			}
			th, err = addUnder(d, fmt.Sprintf("n%d", i), parent)
		case ShapeBranches:
			branch := i % 3
			th, err = addUnder(d, fmt.Sprintf("b%dn%d", branch, i), branchParents[branch])
			if err == nil && (i/3)%20 == 19 {
				branchParents[branch] = th
			}
		default: // ShapeWide
			th, err = d.AddThing(fmt.Sprintf("n%d", i))
		}
		if err != nil {
			return nil, nil, err
		}
		// Round-robin kinds; under ShapeBranches this doubles as one kind
		// per branch, since the branch index is also i % 3.
		dev, err := plugSensor(th, i%3)
		if err != nil {
			return nil, nil, err
		}
		t := &target{idx: i, thing: th, addr: th.Addr(), dev: dev}
		if cfg.Shape == ShapeZones {
			t.zone = uint16(1 + i%cfg.Zones)
		}
		targets = append(targets, t)
		if i%5 == 4 {
			if _, err := th.PlugRelay(1); err != nil {
				return nil, nil, err
			}
			writables = append(writables, t)
		}
		prev = th
	}
	if cfg.Mix[OpWrite] > 0 && len(writables) == 0 {
		if _, err := targets[0].thing.PlugRelay(1); err != nil {
			return nil, nil, err
		}
		writables = append(writables, targets[0])
	}
	return targets, writables, nil
}

// buildFleetTopology splits cfg.Things across the fleet members — Thing i
// lands in deployment i % len(deps), so every member grows the configured
// shape at 1/N scale — and interleaves the per-member target lists round-robin
// into one global list. Global indices are reassigned after the interleave, so
// target draws spread across deployments exactly as they spread across Things
// in a single-deployment run.
func buildFleetTopology(deps []*micropnp.Deployment, cfg Config) (targets []*target, writables []*target, err error) {
	n := len(deps)
	perTargets := make([][]*target, n)
	perWritables := make([][]*target, n)
	for di, d := range deps {
		c := cfg
		c.Things = cfg.Things / n
		if di < cfg.Things%n {
			c.Things++
		}
		tg, wr, err := buildTopology(d, c)
		if err != nil {
			return nil, nil, err
		}
		for _, t := range tg {
			t.dep = di
		}
		perTargets[di], perWritables[di] = tg, wr
	}
	targets = interleave(perTargets)
	for i, t := range targets {
		t.idx = i
	}
	writables = interleave(perWritables)
	return targets, writables, nil
}

// interleave merges per-deployment target lists round-robin (member 0's k-th,
// member 1's k-th, ...), preserving a deterministic global order.
func interleave(per [][]*target) []*target {
	var out []*target
	for k := 0; ; k++ {
		added := false
		for _, lst := range per {
			if k < len(lst) {
				out = append(out, lst[k])
				added = true
			}
		}
		if !added {
			return out
		}
	}
}

// addUnder adds a Thing under parent, or one hop from the manager when
// parent is nil.
func addUnder(d *micropnp.Deployment, name string, parent *micropnp.Thing) (*micropnp.Thing, error) {
	if parent == nil {
		return d.AddThing(name)
	}
	return d.AddThing(name, micropnp.Under(parent))
}
