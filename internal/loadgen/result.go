package loadgen

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// OpResult summarizes one operation kind over the measure window.
type OpResult struct {
	// Issued counts operations whose (intended) start fell inside the
	// measure window; Count of them completed successfully, Errors failed
	// with a non-timeout error, Timeouts expired unanswered.
	Issued   uint64 `json:"issued"`
	Count    uint64 `json:"count"`
	Errors   uint64 `json:"errors"`
	Timeouts uint64 `json:"timeouts"`
	// ThroughputPerSec is successful completions per virtual second of the
	// measure window.
	ThroughputPerSec float64 `json:"throughput_per_sec"`
	// Latency percentiles over successful completions, in nanoseconds of
	// virtual time (mode-independent: realtime runs divide wall time by the
	// time scale through the deployment clock).
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P90Ns  int64   `json:"p90_ns"`
	P99Ns  int64   `json:"p99_ns"`
	P999Ns int64   `json:"p999_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Result is one load run's machine-readable outcome (LOAD_result.json).
type Result struct {
	Scenario string `json:"scenario"`
	Mode     string `json:"mode"` // "virtual" or "realtime"
	Seed     int64  `json:"seed"`
	Things   int    `json:"things"`
	Shape    string `json:"shape"`
	Clients  int    `json:"clients"`
	Arrival  string `json:"arrival"`
	Process  string `json:"process,omitempty"`
	// RatePerSec is the configured open-loop arrival rate; Workers/ThinkNs
	// the closed-loop population.
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	ThinkNs    int64   `json:"think_ns,omitempty"`
	TimeScale  float64 `json:"time_scale,omitempty"`
	// Zones is the zone-sharded lane count of a virtual run (0 = the
	// single-loop clock). Only the zone count is recorded, never the
	// worker bound: the parallel and sequential schedules of one config
	// are bit-identical, so their result JSON must be too.
	Zones int    `json:"zones,omitempty"`
	Mix   string `json:"mix"`
	// Deployments is the fleet size of a federated run (0/absent = one
	// deployment); Managers the per-deployment anycast redundancy when > 1.
	// ManagerFailNs records the injected manager-crash offset into the
	// workload (0 = no crash): the crash is part of the scenario, so two
	// runs only compare when it matches.
	Deployments   int   `json:"deployments,omitempty"`
	Managers      int   `json:"managers,omitempty"`
	ManagerFailNs int64 `json:"manager_fail_ns,omitempty"`

	// WarmupNs/MeasureNs/CooldownNs are the phase spans in virtual time.
	WarmupNs   int64 `json:"warmup_ns"`
	MeasureNs  int64 `json:"measure_ns"`
	CooldownNs int64 `json:"cooldown_ns"`

	// ScheduleHash fingerprints the issued op schedule (kind, target,
	// client and — for open-loop lanes — intended arrival time, FNV-1a
	// combined per lane): two runs with the same seed and config hash
	// identically even in realtime mode, where latencies differ.
	ScheduleHash string `json:"schedule_hash"`

	// Totals over the measure window, all operation kinds combined. Shed
	// counts open-loop arrivals dropped at the realtime in-flight bound;
	// Unresolved counts hot-swaps whose advertisement never arrived before
	// the run ended (they are also in the hotswap op's Timeouts).
	Issued     uint64 `json:"issued"`
	Completed  uint64 `json:"completed"`
	Errors     uint64 `json:"errors"`
	Timeouts   uint64 `json:"timeouts"`
	Shed       uint64 `json:"shed"`
	Unresolved uint64 `json:"unresolved"`
	// StreamReadings counts stream data deliveries observed on
	// subscriptions opened by the workload (any phase).
	StreamReadings uint64 `json:"stream_readings"`
	// MaxInFlight is the high-water mark of concurrently executing
	// operations (1 in single-loop virtual mode, up to one per zone lane
	// group in conducted zoned runs, ≤ Workers in closed-loop realtime).
	MaxInFlight int64 `json:"max_in_flight"`
	// LaneOps is the per-lane issued count (one lane per closed-loop
	// worker; one lane total in open loop).
	LaneOps []uint64 `json:"lane_ops"`
	// Drained reports whether the cooldown quiesce drained all in-flight
	// work before its horizon.
	Drained bool `json:"drained"`

	Ops map[string]*OpResult `json:"ops"`

	// Shard carries the sharded clock's execution counters for a zoned
	// virtual run (nil otherwise). It is a side channel excluded from the
	// JSON — round telemetry is an execution detail, like wall time — and is
	// printed by Summarize and the CLIs instead.
	Shard *ShardTelemetry `json:"-"`
}

// ShardTelemetry mirrors micropnp.NetworkStats' sharded-clock counters over
// one whole run (setup through teardown).
type ShardTelemetry struct {
	// Lanes is the zone-lane count; Rounds the barrier rounds executed.
	Lanes  int
	Rounds int64
	// Events counts events executed inside rounds; Events/Rounds is the mean
	// round batch size the lookahead policy achieved.
	Events int64
	// LaneRounds sums each round's active-lane count — LaneRounds/(Rounds ×
	// Lanes) is mean lane occupancy.
	LaneRounds int64
	// CrossMerged counts cross-lane events merged at barriers;
	// CausalityViolations counts merged events timestamped before their
	// destination lane's clock (always 0 unless the lookahead is unsound).
	CrossMerged         int64
	CausalityViolations int64
}

// WriteJSON writes the result, indented, to path ("-" for stdout). The
// parent directory is created if missing, and the file lands via a
// same-directory temp file renamed into place, so a reader (the CI gate) can
// never observe a torn half-written result and a crashed run leaves any
// previous result intact.
func (r *Result) WriteJSON(path string) error {
	out, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(out)
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, ".load-result-*.json")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(out); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Summarize prints a human-readable table of the result.
func (r *Result) Summarize(w io.Writer) {
	fmt.Fprintf(w, "scenario %s (%s, %s arrival, seed %d): %d things, mix %s\n",
		r.Scenario, r.Mode, r.Arrival, r.Seed, r.Things, r.Mix)
	if r.Deployments > 1 {
		fmt.Fprintf(w, "fleet: %d deployments, %d managers each", r.Deployments, r.Managers)
		if r.ManagerFailNs > 0 {
			fmt.Fprintf(w, ", manager 0/0 crashed %s into the workload", time.Duration(r.ManagerFailNs))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "measure window %s (+%s warmup): %d issued, %d ok, %d errors, %d timeouts, %d shed; max in-flight %d; %d stream readings\n",
		time.Duration(r.MeasureNs), time.Duration(r.WarmupNs),
		r.Issued, r.Completed, r.Errors, r.Timeouts, r.Shed, r.MaxInFlight, r.StreamReadings)
	if s := r.Shard; s != nil && s.Rounds > 0 {
		fmt.Fprintf(w, "sharded clock: %d lanes, %d rounds, %d events (%.1f events/round, %.0f%% lane occupancy), %d cross-lane merges, %d causality violations\n",
			s.Lanes, s.Rounds, s.Events,
			float64(s.Events)/float64(s.Rounds),
			100*float64(s.LaneRounds)/(float64(s.Rounds)*float64(s.Lanes)),
			s.CrossMerged, s.CausalityViolations)
	}
	names := make([]string, 0, len(r.Ops))
	for name := range r.Ops {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "%-17s %8s %8s %6s %6s %10s %10s %10s %10s %10s\n",
		"op", "count", "ops/s", "err", "tmo", "p50", "p90", "p99", "p99.9", "max")
	for _, name := range names {
		o := r.Ops[name]
		fmt.Fprintf(w, "%-17s %8d %8.2f %6d %6d %10s %10s %10s %10s %10s\n",
			name, o.Count, o.ThroughputPerSec, o.Errors, o.Timeouts,
			time.Duration(o.P50Ns), time.Duration(o.P90Ns), time.Duration(o.P99Ns),
			time.Duration(o.P999Ns), time.Duration(o.MaxNs))
	}
}
