// Package loadgen is the load-generation subsystem: it drives a
// micropnp.Deployment with configurable open- or closed-loop workloads over
// the public SDK surface (reads, writes, discoveries, subscription streams,
// hot-swap churn, manager driver discovery) and reports per-operation
// latency percentiles, throughput and error counters as machine-readable
// JSON — the harness behind cmd/upnp-load and the CI latency gate.
//
// Two execution models match the deployment's two clock modes:
//
//   - Virtual (deterministic): operations execute one at a time on the
//     simulated timeline, latencies are exact virtual-time spans, and the
//     whole run — op schedule, histograms, percentiles — is a pure function
//     of (scenario, seed). This is what CI gates on.
//   - Realtime (concurrent): a dispatcher (open loop) or a worker pool
//     (closed loop) issues genuinely overlapping requests against the
//     wall-clock runtime; the op schedule stays seed-deterministic but
//     latencies carry real scheduling noise.
//
// Open-loop latencies are measured from each operation's intended arrival
// time, so backlog (queueing delay) is charged to the operations that caused
// it rather than silently dropped — the standard correction for coordinated
// omission. Closed-loop latencies are measured from actual issue time.
package loadgen

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Histogram bucket geometry: values 0..subCount-1 ns are recorded exactly;
// above that each power-of-two segment splits into subCount/2 linear
// sub-buckets, bounding the relative quantization error by 2/subCount
// (~3.1%) while keeping the whole histogram a fixed flat array — recording
// is one atomic add, no allocation, no locks, so samplers on the
// zero-allocation message hot path are not perturbed.
const (
	histSubBits  = 6
	histSubCount = 1 << histSubBits // values below this index exactly
	histHalf     = histSubCount / 2
	// 63-bit values above histSubCount land in one of (63-histSubBits)
	// segments of histHalf linear sub-buckets each.
	histBuckets = histSubCount + (63-histSubBits)*histHalf
)

// Histogram is a fixed-bucket log-linear latency histogram safe for
// concurrent recording: Record is a single atomic increment (plus count,
// sum and max maintenance), making it cheap enough to call from the timed
// path itself. Values are non-negative nanoseconds; negative samples clamp
// to zero, astronomically large ones to the top bucket.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
}

// bucketIdx maps a value to its bucket.
func bucketIdx(v int64) int {
	if v < histSubCount {
		if v < 0 {
			return 0
		}
		return int(v)
	}
	k := bits.Len64(uint64(v)) // ≥ histSubBits+1
	seg := k - histSubBits     // ≥ 1
	idx := histSubCount + (seg-1)*histHalf + int(uint64(v)>>uint(seg)) - histHalf
	if idx >= histBuckets {
		return histBuckets - 1
	}
	return idx
}

// bucketBounds returns a bucket's value range [lo, hi).
func bucketBounds(idx int) (lo, hi int64) {
	if idx < histSubCount {
		return int64(idx), int64(idx) + 1
	}
	r := idx - histSubCount
	seg := r/histHalf + 1
	sub := int64(r%histHalf) + histHalf
	return sub << uint(seg), (sub + 1) << uint(seg)
}

// Record adds one sample (nanoseconds).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIdx(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Max returns the largest recorded sample.
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the arithmetic mean of the recorded samples (exact, from the
// running sum rather than the buckets).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the q-quantile (q in [0, 1]) with linear interpolation
// inside the bucket holding the target rank: the r-th of c samples in a
// bucket spanning [lo, hi) is estimated at lo + (hi-lo)·(r-½)/c. Exact for
// sub-histSubCount values (their buckets are single-valued); within the
// bucket's ~3% width above that. Returns 0 on an empty histogram.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for idx := 0; idx < histBuckets; idx++ {
		c := h.counts[idx].Load()
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := bucketBounds(idx)
			pos := float64(rank-cum) - 0.5
			return lo + int64(float64(hi-lo)*pos/float64(c))
		}
		cum += c
	}
	return h.max.Load()
}

// equal reports whether two histograms hold identical bucket counts — the
// determinism tests' comparison.
func (h *Histogram) equal(o *Histogram) bool {
	if h.count.Load() != o.count.Load() || h.sum.Load() != o.sum.Load() || h.max.Load() != o.max.Load() {
		return false
	}
	for i := range h.counts {
		if h.counts[i].Load() != o.counts[i].Load() {
			return false
		}
	}
	return true
}
