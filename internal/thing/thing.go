// Package thing implements the µPnP Thing: the software running on an
// embedded IoT device with locally connected µPnP hardware (Figure 8). It
// glues together the peripheral controller (hw.ControlBoard), the driver
// manager, the per-driver virtual machines and the network stack, and speaks
// the Section 5 protocol: advertisement, discovery, driver management and
// read/stream/write.
package thing

import (
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"micropnp/internal/bus"
	"micropnp/internal/bytecode"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
	"micropnp/internal/vm"
)

// CPU cost constants for the embedded protocol operations, calibrated
// against the Table 4 measurements on the ATMega128RFA1.
const (
	// CostGenerateAddr is the cost of deriving the peripheral's multicast
	// address from the network prefix and hardware identifier.
	CostGenerateAddr = 2590 * time.Microsecond
	// CostJoinGroup covers the local group registration and the RPL/SMRF
	// bookkeeping.
	CostJoinGroup = 5440 * time.Microsecond
	// CostInstallDriver covers bytecode verification and driver activation.
	CostInstallDriver = 26 * time.Millisecond

	// DriverRequestTimeout is how long a Thing waits for a driver upload
	// before retransmitting its install request. Request/upload datagrams
	// can be lost on the 802.15.4 mesh; the paper defers unreliable-network
	// analysis to future work, so retransmission is this reproduction's
	// extension.
	DriverRequestTimeout = 500 * time.Millisecond
	// MaxDriverRequests bounds the retransmissions per plug-in event.
	MaxDriverRequests = 4

	// PendingReadTimeout is the default for Config.PendingReadTimeout,
	// matching the client's default request deadline.
	PendingReadTimeout = 5 * time.Second
)

// Interconnects is the set of simulated buses behind one peripheral channel:
// the control board multiplexes the connector's communication pins onto the
// bus selected by the detected device type (Table 1).
type Interconnects struct {
	UART *bus.UART
	ADC  *bus.ADC
	I2C  *bus.I2C
	SPI  *bus.SPI
}

// NewInterconnects builds a full bus set for one channel.
func NewInterconnects() *Interconnects {
	return &Interconnects{
		UART: bus.NewUART(),
		ADC:  bus.NewADC(),
		I2C:  bus.NewI2C(),
		SPI:  bus.NewSPI(),
	}
}

// Device is the sensor-model side of a simulated peripheral: it wires a
// behavioural device model (bus.TMP36, bus.BMP180, ...) onto a channel's
// interconnects when the peripheral is plugged.
type Device interface {
	Attach(ic *Interconnects) error
	Detach(ic *Interconnects)
}

// PluginTrace records the phases of one peripheral plug-in event — the rows
// of Table 4 plus the hardware identification time of Section 6.1.
type PluginTrace struct {
	DeviceID hw.DeviceID
	Channel  int
	// Identification is the hardware scan time (220–300 ms window).
	Identification time.Duration
	// Energy consumed by the identification scan.
	Energy hw.Joule
	// GenerateAddr, JoinGroup: local CPU phases.
	GenerateAddr time.Duration
	JoinGroup    time.Duration
	// RequestDriver: install request transit + manager lookup (zero when
	// the driver was already installed locally).
	RequestDriver time.Duration
	// InstallDriver: driver upload transit + verification + activation
	// (verification only, when the driver was local).
	InstallDriver time.Duration
	// Advertise: unsolicited advertisement transit to the all-clients group.
	Advertise time.Duration
	// NetworkTotal = GenerateAddr+JoinGroup+RequestDriver+InstallDriver+Advertise.
	NetworkTotal time.Duration
	// Total = Identification + NetworkTotal (the §8 "488.53 ms" figure).
	Total time.Duration
	// Done is set when the plug-in sequence completed.
	Done bool

	requestSentAt time.Duration
}

func (tr *PluginTrace) finish() {
	tr.NetworkTotal = tr.GenerateAddr + tr.JoinGroup + tr.RequestDriver + tr.InstallDriver + tr.Advertise
	tr.Total = tr.Identification + tr.NetworkTotal
	tr.Done = true
}

// Config configures a Thing.
type Config struct {
	Network *netsim.Network
	// Addr is the Thing's unicast IPv6 address.
	Addr netip.Addr
	// Parent attaches the Thing to the RPL tree (nil = root/border router).
	Parent *netsim.Node
	// Manager is the anycast address of the µPnP manager.
	Manager netip.Addr
	// Board is the µPnP control board (nil creates a default 3-channel one).
	Board *hw.ControlBoard
	// Name labels the Thing in advertisements.
	Name string
	// StreamPeriod is the data production period for streams (default 10 s,
	// the communication rate of Section 6.1).
	StreamPeriod time.Duration
	// Zone places the Thing in a location zone (Section 9 extension): the
	// Thing additionally joins zone-scoped multicast groups, so clients can
	// discover peripherals by physical location. Zone 0 disables scoping.
	Zone uint16
	// StructuredNamespace enables the Section 9 hierarchical-typing
	// extension: peripherals whose identifiers decompose into a structured
	// (vendor, class, product) form also join their class-wildcard group,
	// making class-based discovery ("any temperature sensor") work.
	StructuredNamespace bool
	// Units maps peripheral types to the unit string of the values their
	// drivers return; known units are advertised via the units TLV so
	// clients can label readings without out-of-band knowledge.
	Units map[hw.DeviceID]string
	// PendingReadTimeout is how long the Thing holds an unanswered read
	// before dropping it (0 = the PendingReadTimeout default). Deployments
	// that raise the client request timeout should raise this to match: by
	// the time it fires the requesting client has expired its side, so a
	// late driver return must go to the next read rather than be sent with
	// a stale sequence number the client will discard.
	PendingReadTimeout time.Duration
	// InterpDrivers pins installed drivers to the reference bytecode
	// interpreter instead of the compiled engine built at install time.
	// The two are transcript-identical; this is the escape hatch and
	// differential-testing knob.
	InterpDrivers bool
}

// netScheduler adapts the network's clock to vm.Scheduler. Scheduled driver
// callbacks fire on the clock (a pool worker under the realtime runtime), so
// they are wrapped in the Thing's vmMu: driver runtimes are single-threaded
// state machines — like the MCU they model — and every execution on this
// Thing serializes through that one lock.
type netScheduler struct{ t *Thing }

func (s netScheduler) Now() time.Duration { return s.t.node.Now() }
func (s netScheduler) Schedule(d time.Duration, fn func()) {
	s.t.node.Schedule(d, func() {
		s.t.vmMu.Lock()
		defer s.t.vmMu.Unlock()
		fn()
	})
}

type slotState struct {
	ic     *Interconnects
	dev    Device
	periph *hw.Peripheral
	id     hw.DeviceID
	rt     *vm.Runtime
}

// pendingRead is one read awaiting a driver return value. Entries are
// pooled; gen is bumped on every release (under Thing.opsMu) so a stale
// expiry event whose entry was answered and recycled into a newer read fails
// its generation check (pointer identity alone cannot catch that ABA).
type pendingRead struct {
	seq    uint16
	client netip.Addr
	// expiry retracts the typed deadline once the read was answered.
	expiry netsim.ExpiryRef
	// gen guards pooled reuse. Written only under Thing.opsMu.
	gen uint64
}

var pendingReadPool = sync.Pool{New: func() any { return new(pendingRead) }}

// releasePendingRead recycles an entry after it left the pending table; the
// caller must hold the only live reference.
func (t *Thing) releasePendingRead(pr *pendingRead) {
	t.opsMu.Lock()
	pr.gen++
	t.opsMu.Unlock()
	pr.seq = 0
	pr.client = netip.Addr{}
	pr.expiry = netsim.ExpiryRef{}
	pendingReadPool.Put(pr)
}

type streamState struct {
	group  netip.Addr
	seq    uint16
	active bool
}

// Thing is one simulated µPnP Thing.
//
// Locking: mu guards slots/installed/awaiting/traces; opsMu guards the
// pending-read and stream tables; vmMu serializes every driver-runtime
// execution (vm.Runtime is not itself safe for concurrent use — one MCU,
// one thread of control), which matters when the network's realtime clock
// dispatches handlers from a worker pool. Driver runtimes may call back
// into driverReturned while vmMu is held, so driverReturned takes only
// opsMu. mu and opsMu are never held while acquiring vmMu's predecessors:
// the order is mu → opsMu, and both are released before vmMu is taken.
type Thing struct {
	cfg    Config
	node   *netsim.Node
	board  *hw.ControlBoard
	prefix netsim.NetworkPrefix
	seq    atomic.Uint32

	mu        sync.Mutex
	slots     []*slotState
	installed map[hw.DeviceID][]byte
	awaiting  map[hw.DeviceID]*PluginTrace
	traces    []*PluginTrace

	opsMu   sync.Mutex
	pending map[hw.DeviceID][]*pendingRead
	streams map[hw.DeviceID]*streamState

	vmMu sync.Mutex
	// dataScratch is the reusable payload buffer driverReturned packs return
	// values into. Guarded by vmMu: driver runtimes only execute (and hence
	// only call back into driverReturned) while vmMu is held, and the packed
	// bytes are copied into the outgoing pooled datagram before driverReturned
	// returns, so one buffer per Thing suffices.
	dataScratch []byte
}

// New builds and registers a Thing on the network.
func New(cfg Config) (*Thing, error) {
	if cfg.Network == nil {
		return nil, fmt.Errorf("thing: network required")
	}
	node, err := cfg.Network.AddNode(cfg.Addr, cfg.Parent)
	if err != nil {
		return nil, err
	}
	if cfg.Board == nil {
		cfg.Board = hw.NewControlBoard(hw.BoardConfig{})
	}
	if cfg.StreamPeriod == 0 {
		cfg.StreamPeriod = 10 * time.Second
	}
	if cfg.PendingReadTimeout == 0 {
		cfg.PendingReadTimeout = PendingReadTimeout
	}
	t := &Thing{
		cfg:       cfg,
		node:      node,
		board:     cfg.Board,
		prefix:    netsim.PrefixFromAddr(cfg.Addr),
		installed: map[hw.DeviceID][]byte{},
		awaiting:  map[hw.DeviceID]*PluginTrace{},
		pending:   map[hw.DeviceID][]*pendingRead{},
		streams:   map[hw.DeviceID]*streamState{},
	}
	t.slots = make([]*slotState, cfg.Board.Channels())
	for i := range t.slots {
		t.slots[i] = &slotState{ic: NewInterconnects()}
	}
	// Things subscribe to the all-peripherals group by default (Figure 11),
	// and to its zone-scoped variant when placed in a zone.
	node.JoinGroup(netsim.AllPeripheralsAddr(t.prefix))
	if cfg.Zone != 0 {
		node.JoinGroup(netsim.MulticastAddrZone(t.prefix, cfg.Zone, hw.DeviceIDAllPeripherals))
	}
	node.Bind(netsim.Port6030, t.handle)
	cfg.Board.OnInterrupt(t.interrupt)
	return t, nil
}

// Addr returns the Thing's unicast address.
func (t *Thing) Addr() netip.Addr { return t.node.Addr() }

// Node exposes the network node (for building trees).
func (t *Thing) Node() *netsim.Node { return t.node }

// Board exposes the control board.
func (t *Thing) Board() *hw.ControlBoard { return t.board }

// Traces returns the plug-in traces recorded so far.
func (t *Thing) Traces() []*PluginTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*PluginTrace(nil), t.traces...)
}

// InstalledDrivers lists the locally installed driver identifiers.
func (t *Thing) InstalledDrivers() []hw.DeviceID {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]hw.DeviceID, 0, len(t.installed))
	for id := range t.installed {
		out = append(out, id)
	}
	return out
}

// InstalledDriverBytes returns a copy of the installed driver artefact for
// a device type, or nil when none is installed — the byte-level ground
// truth failover tests compare against a no-failure run.
func (t *Thing) InstalledDriverBytes(id hw.DeviceID) []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	code, ok := t.installed[id]
	if !ok {
		return nil
	}
	return append([]byte(nil), code...)
}

// InstallDriver pre-installs a driver artefact locally (factory image).
func (t *Thing) InstallDriver(id hw.DeviceID, code []byte) error {
	prog, err := bytecode.Decode(code)
	if err != nil {
		return err
	}
	if err := prog.Verify(); err != nil {
		return err
	}
	if hw.DeviceID(prog.DeviceID) != id {
		return fmt.Errorf("thing: driver claims %v, expected %v", hw.DeviceID(prog.DeviceID), id)
	}
	t.mu.Lock()
	t.installed[id] = append([]byte(nil), code...)
	t.mu.Unlock()
	return nil
}

// Runtime exposes the driver runtime serving a device type, or nil. Tests
// and simulations use it to inspect driver state.
func (t *Thing) Runtime(id hw.DeviceID) *vm.Runtime {
	t.mu.Lock()
	defer t.mu.Unlock()
	if slot := t.slotForLocked(id); slot != nil {
		return slot.rt
	}
	return nil
}

// Plug connects a simulated peripheral (hardware identity + device model)
// to a channel. The control-board interrupt fires, identification runs, and
// the plug-in protocol sequence of Figures 10/11 plays out on the network's
// virtual clock (drive it with Network.RunUntilIdle).
func (t *Thing) Plug(channel int, p *hw.Peripheral, dev Device) error {
	t.mu.Lock()
	if channel < 0 || channel >= len(t.slots) {
		t.mu.Unlock()
		return fmt.Errorf("thing: channel %d out of range", channel)
	}
	slot := t.slots[channel]
	if dev != nil {
		if err := dev.Attach(slot.ic); err != nil {
			t.mu.Unlock()
			return err
		}
	}
	slot.dev = dev
	slot.periph = p
	t.mu.Unlock()
	return t.board.Plug(channel, p)
}

// Unplug disconnects the peripheral on a channel.
func (t *Thing) Unplug(channel int) error {
	_, err := t.board.Unplug(channel)
	return err
}

// interrupt is the control-board ISR: it powers the board, runs the
// identification routine and kicks off (or tears down) the peripheral.
func (t *Thing) interrupt(irq hw.Interrupt) {
	res := t.board.Identify()
	if !irq.Attached {
		t.teardown(irq.Channel)
		return
	}
	rd := res.Readings[irq.Channel]
	if rd.Err != nil || !rd.Connected {
		return
	}
	trace := &PluginTrace{
		DeviceID:       rd.ID,
		Channel:        irq.Channel,
		Identification: res.Duration,
		Energy:         res.Energy,
	}
	t.mu.Lock()
	slot := t.slots[irq.Channel]
	slot.id = rd.ID
	t.traces = append(t.traces, trace)
	t.mu.Unlock()
	t.setup(irq.Channel, trace)
}

// setup runs the network side of the plug-in sequence under the simulated
// clock: generate address, join group, fetch driver if needed, activate,
// advertise.
func (t *Thing) setup(channel int, trace *PluginTrace) {
	trace.GenerateAddr = CostGenerateAddr
	trace.JoinGroup = CostJoinGroup
	t.node.Schedule(CostGenerateAddr+CostJoinGroup, func() {
		t.mu.Lock()
		slot := t.slots[channel]
		id := slot.id
		if id == 0 {
			t.mu.Unlock()
			return
		}
		t.joinPeripheralGroupsLocked(id)
		code, have := t.installed[id]
		if !have {
			trace.requestSentAt = t.node.Now()
			t.awaiting[id] = trace
			t.mu.Unlock()
			t.requestDriver(id, 1)
			return
		}
		t.mu.Unlock()
		t.activate(channel, code, trace)
	})
}

// joinPeripheralGroupsLocked joins every group a connected peripheral makes
// the Thing a member of: the exact type group, its zone-scoped variant, and
// (with the structured namespace) the class-wildcard group.
func (t *Thing) joinPeripheralGroupsLocked(id hw.DeviceID) {
	t.node.JoinGroup(netsim.MulticastAddr(t.prefix, id))
	if t.cfg.Zone != 0 {
		t.node.JoinGroup(netsim.MulticastAddrZone(t.prefix, t.cfg.Zone, id))
	}
	if t.cfg.StructuredNamespace {
		if s := id.Structured(); s.Class != 0 && s.Vendor != 0 {
			t.node.JoinGroup(netsim.ClassGroup(t.prefix, s.Class))
			if t.cfg.Zone != 0 {
				t.node.JoinGroup(netsim.MulticastAddrZone(t.prefix, t.cfg.Zone, hw.ClassWildcard(s.Class)))
			}
		}
	}
}

// leavePeripheralGroups undoes joinPeripheralGroupsLocked.
func (t *Thing) leavePeripheralGroups(id hw.DeviceID) {
	t.node.LeaveGroup(netsim.MulticastAddr(t.prefix, id))
	if t.cfg.Zone != 0 {
		t.node.LeaveGroup(netsim.MulticastAddrZone(t.prefix, t.cfg.Zone, id))
	}
	if t.cfg.StructuredNamespace {
		if s := id.Structured(); s.Class != 0 && s.Vendor != 0 {
			t.node.LeaveGroup(netsim.ClassGroup(t.prefix, s.Class))
			if t.cfg.Zone != 0 {
				t.node.LeaveGroup(netsim.MulticastAddrZone(t.prefix, t.cfg.Zone, hw.ClassWildcard(s.Class)))
			}
		}
	}
}

// requestDriver sends a driver install request to the manager and arms a
// retransmission timer: either the request or the upload may be lost on a
// lossy mesh, so the Thing retries up to MaxDriverRequests times.
func (t *Thing) requestDriver(id hw.DeviceID, attempt int) {
	req := &proto.Message{Type: proto.MsgDriverInstallReq, Seq: t.nextSeq(), DeviceID: id}
	t.send(t.cfg.Manager, req)
	if attempt >= MaxDriverRequests {
		return
	}
	t.node.Schedule(DriverRequestTimeout, func() {
		t.mu.Lock()
		_, stillWaiting := t.awaiting[id]
		t.mu.Unlock()
		if stillWaiting {
			t.requestDriver(id, attempt+1)
		}
	})
}

// activate verifies, installs and starts the driver after the install CPU
// cost, then advertises.
func (t *Thing) activate(channel int, code []byte, trace *PluginTrace) {
	prog, err := bytecode.Decode(code)
	if err != nil || prog.Verify() != nil {
		return
	}
	installStart := t.node.Now()
	t.node.Schedule(CostInstallDriver, func() {
		t.mu.Lock()
		slot := t.slots[channel]
		if slot.id == 0 || slot.rt != nil {
			t.mu.Unlock()
			return
		}
		libs := vm.LibrariesFor(slot.ic.UART, slot.ic.ADC, slot.ic.I2C, slot.ic.SPI)
		rt, err := vm.NewRuntime(prog, libs...)
		if err != nil {
			t.mu.Unlock()
			return
		}
		if t.cfg.InterpDrivers {
			rt.Machine().SetInterp(true)
		}
		// Drivers run on the network's clock so that timeouts, sensor
		// conversions and protocol traffic advance coherently.
		rt.SetScheduler(netScheduler{t: t})
		id := slot.id
		rt.OnReturn(func(vals []int32) { t.driverReturned(id, vals) })
		slot.rt = rt
		t.mu.Unlock()

		t.vmMu.Lock()
		rt.Start()
		t.vmMu.Unlock()

		if trace != nil {
			trace.InstallDriver += t.node.Now() - installStart
		}
		adv, pb := t.advertisement(proto.MsgUnsolicitedAdvert, t.nextSeq())
		if adv != nil {
			// Transit time is computed before SendBuf takes ownership.
			transit := netsim.PacketDelay(len(pb.B), true)
			t.node.SendBuf(netsim.AllClientsAddr(t.prefix), netsim.Port6030, pb)
			if trace != nil {
				trace.Advertise = transit
				trace.finish()
			}
		}
	})
}

// advertisement builds an advertisement listing active peripherals, encoded
// into a pooled buffer the caller owns: hand it to SendBuf or Release it.
// It returns (nil, nil) on encoding failure.
func (t *Thing) advertisement(typ proto.MsgType, seq uint16) (*proto.Message, *netsim.Buf) {
	t.mu.Lock()
	m := &proto.Message{Type: typ, Seq: seq}
	for ch, slot := range t.slots {
		if slot.rt == nil {
			continue
		}
		info := proto.PeripheralInfo{ID: slot.id}
		if t.cfg.Name != "" {
			info.TLVs = append(info.TLVs, proto.TLV{Type: proto.TLVName, Value: []byte(t.cfg.Name)})
		}
		if slot.periph != nil {
			info.TLVs = append(info.TLVs, proto.TLV{Type: proto.TLVBusKind, Value: []byte{byte(slot.periph.Bus)}})
		}
		info.TLVs = append(info.TLVs, proto.TLV{Type: proto.TLVChannel, Value: []byte{byte(ch)}})
		if u := t.cfg.Units[slot.id]; u != "" {
			info.TLVs = append(info.TLVs, proto.TLV{Type: proto.TLVUnits, Value: []byte(u)})
		}
		m.Peripherals = append(m.Peripherals, info)
	}
	t.mu.Unlock()
	pb := netsim.AcquireBuf()
	b, err := m.AppendEncode(pb.B[:0])
	if err != nil {
		pb.Release()
		return nil, nil
	}
	pb.B = b
	return m, pb
}

// teardown handles peripheral removal: stop the driver, leave the group,
// advertise the change.
func (t *Thing) teardown(channel int) {
	t.mu.Lock()
	slot := t.slots[channel]
	rt := slot.rt
	dev := slot.dev
	ic := slot.ic
	id := slot.id
	slot.rt = nil
	slot.dev = nil
	slot.periph = nil
	slot.id = 0
	t.mu.Unlock()

	if rt != nil {
		t.vmMu.Lock()
		rt.Stop()
		t.vmMu.Unlock()
	}
	if dev != nil {
		dev.Detach(ic)
	}
	if id != 0 {
		t.opsMu.Lock()
		st, ok := t.streams[id]
		if ok && st.active {
			st.active = false
			t.opsMu.Unlock()
			t.send(st.group, &proto.Message{Type: proto.MsgClosed, Seq: st.seq, DeviceID: id})
		} else {
			t.opsMu.Unlock()
		}
		t.leavePeripheralGroups(id)
	}
	if _, pb := t.advertisement(proto.MsgUnsolicitedAdvert, t.nextSeq()); pb != nil {
		t.node.SendBuf(netsim.AllClientsAddr(t.prefix), netsim.Port6030, pb)
	}
}

func (t *Thing) nextSeq() uint16 {
	return uint16(t.seq.Add(1))
}

// send encodes into a pooled buffer and hands it to the network (zero-copy,
// zero-allocation in steady state). Deliberately duplicated across client,
// manager and thing rather than shared behind an interface — see the note in
// netsim/packet.go.
func (t *Thing) send(dst netip.Addr, m *proto.Message) {
	pb := netsim.AcquireBuf()
	b, err := m.AppendEncode(pb.B[:0])
	if err != nil {
		pb.Release()
		return
	}
	pb.B = b
	t.node.SendBuf(dst, netsim.Port6030, pb)
}

// slotForLocked returns the slot serving a device type (t.mu held).
func (t *Thing) slotForLocked(id hw.DeviceID) *slotState {
	for _, s := range t.slots {
		if s.id == id && s.rt != nil {
			return s
		}
	}
	return nil
}

// driverReturned routes a driver return value: to the oldest pending read
// if one exists, otherwise to the active stream group. It must take only
// opsMu — it can run while t.mu is held by a caller pumping the runtime.
func (t *Thing) driverReturned(id hw.DeviceID, vals []int32) {
	// Pack into the vmMu-guarded scratch: send copies the bytes into a pooled
	// network buffer synchronously, so nothing retains data past this call.
	// This shaves one per-read (and per-stream-tick) heap allocation.
	t.dataScratch = proto.AppendValues32(t.dataScratch[:0], vals)
	data := t.dataScratch
	t.opsMu.Lock()
	if q := t.pending[id]; len(q) > 0 {
		pr := q[0]
		// Shift down instead of re-slicing: q[1:] would strand the backing
		// array's front, so every enqueue after a drain re-allocated it.
		// Queues are short (normally one entry), so the copy is cheap and
		// the steady-state read path reuses one array forever.
		copy(q, q[1:])
		t.pending[id] = q[:len(q)-1]
		// Capture everything while opsMu is held: handleRead assigns the
		// expiry ref under opsMu after arming it, possibly after this pop
		// (it then reaps the orphaned event itself), and the release below
		// recycles the entry.
		ref := pr.expiry
		seq, dst := pr.seq, pr.client
		t.opsMu.Unlock()
		ref.Cancel()
		t.send(dst, &proto.Message{Type: proto.MsgData, Seq: seq, DeviceID: id, Data: data})
		t.releasePendingRead(pr)
		return
	}
	st, ok := t.streams[id]
	active := ok && st.active
	var group netip.Addr
	var seq uint16
	if active {
		group, seq = st.group, st.seq
	}
	t.opsMu.Unlock()
	if active {
		t.send(group, &proto.Message{Type: proto.MsgData, Seq: seq, DeviceID: id, Data: data})
	}
}

// Pump drains all driver runtimes (delivers pending virtual-time events
// such as UART bytes or conversion timers). Simulations call this after
// stimulating device models directly.
func (t *Thing) Pump() {
	t.mu.Lock()
	rts := make([]*vm.Runtime, 0, len(t.slots))
	for _, s := range t.slots {
		if s.rt != nil {
			rts = append(rts, s.rt)
		}
	}
	t.mu.Unlock()
	t.vmMu.Lock()
	defer t.vmMu.Unlock()
	for _, rt := range rts {
		rt.RunUntilIdle(0)
	}
}

// StopStream terminates an active stream, notifying subscribers with the
// closed message (15).
func (t *Thing) StopStream(id hw.DeviceID) {
	t.opsMu.Lock()
	st, ok := t.streams[id]
	if !ok || !st.active {
		t.opsMu.Unlock()
		return
	}
	st.active = false
	group, seq := st.group, st.seq
	t.opsMu.Unlock()
	t.send(group, &proto.Message{Type: proto.MsgClosed, Seq: seq, DeviceID: id})
}

// handle processes incoming protocol messages. Decoding borrows a pooled
// Decoder: the decoded message is valid only within this call, so deferred
// work (scheduled closures) copies the scalars it needs and the driver
// upload's bytecode is copied before retention.
func (t *Thing) handle(msg netsim.Message) {
	dec := proto.AcquireDecoder()
	defer proto.ReleaseDecoder(dec)
	m, err := dec.Decode(msg.Payload)
	if err != nil {
		return
	}
	switch m.Type {
	case proto.MsgDiscovery:
		t.handleDiscovery(msg, m)
	case proto.MsgDriverUpload:
		t.handleDriverUpload(msg, m)
	case proto.MsgDriverDiscovery:
		t.mu.Lock()
		reply := &proto.Message{Type: proto.MsgDriverAdvert, Seq: m.Seq}
		for id := range t.installed {
			reply.Drivers = append(reply.Drivers, id)
		}
		t.mu.Unlock()
		t.send(msg.Src, reply)
	case proto.MsgDriverRemovalReq:
		t.handleDriverRemoval(msg, m)
	case proto.MsgRead:
		t.handleRead(msg, m)
	case proto.MsgStream:
		t.handleStream(msg, m)
	case proto.MsgWrite:
		t.handleWrite(msg, m)
	}
}

func (t *Thing) handleDiscovery(msg netsim.Message, m *proto.Message) {
	// Reply only when a served peripheral matches the group the discovery
	// was multicast to (the schema's efficient filtering, Section 5.1).
	// Zone-scoped groups are handled by membership: a Thing only receives
	// discoveries for zones it joined. Class wildcards match any slot whose
	// structured identifier carries the class.
	if _, _, id, err := netsim.ParseMulticastZone(msg.Dst); err == nil && id != hw.DeviceIDAllPeripherals {
		t.mu.Lock()
		match := t.slotForLocked(id) != nil
		if !match && t.cfg.StructuredNamespace {
			if s := id.Structured(); s.IsClassWildcard() {
				for _, slot := range t.slots {
					if slot.rt != nil && slot.id.Structured().Class == s.Class {
						match = true
						break
					}
				}
			}
		}
		t.mu.Unlock()
		if !match {
			return
		}
	}
	adv, pb := t.advertisement(proto.MsgSolicitedAdvert, m.Seq)
	if adv == nil {
		return
	}
	if len(adv.Peripherals) == 0 {
		pb.Release()
		return
	}
	t.node.SendBuf(msg.Src, netsim.Port6030, pb)
}

func (t *Thing) handleDriverUpload(msg netsim.Message, m *proto.Message) {
	t.mu.Lock()
	trace := t.awaiting[m.DeviceID]
	delete(t.awaiting, m.DeviceID)
	uploadTransit := netsim.PacketDelay(len(msg.Payload), false)
	if trace != nil {
		// Request phase = send-to-upload-arrival minus the upload's own
		// transit (i.e. request transit + manager lookup).
		trace.RequestDriver = t.node.Now() - trace.requestSentAt - uploadTransit
		// The upload transit belongs to the install phase.
		trace.InstallDriver = uploadTransit
	}
	t.installed[m.DeviceID] = append([]byte(nil), m.Driver...)
	var channel = -1
	for ch, slot := range t.slots {
		if slot.id == m.DeviceID && slot.rt == nil {
			channel = ch
			break
		}
	}
	code := t.installed[m.DeviceID]
	t.mu.Unlock()
	if channel >= 0 {
		t.activate(channel, code, trace)
	}
}

func (t *Thing) handleDriverRemoval(msg netsim.Message, m *proto.Message) {
	t.mu.Lock()
	status := uint8(1)
	var stopped []*vm.Runtime
	if _, ok := t.installed[m.DeviceID]; ok {
		delete(t.installed, m.DeviceID)
		for _, slot := range t.slots {
			if slot.id == m.DeviceID && slot.rt != nil {
				stopped = append(stopped, slot.rt)
				slot.rt = nil
			}
		}
		status = 0
	}
	t.mu.Unlock()
	if len(stopped) > 0 {
		t.vmMu.Lock()
		for _, rt := range stopped {
			rt.Stop()
		}
		t.vmMu.Unlock()
	}
	t.send(msg.Src, &proto.Message{Type: proto.MsgDriverRemovalAck, Seq: m.Seq, DeviceID: m.DeviceID, Status: status})
}

func (t *Thing) handleRead(msg netsim.Message, m *proto.Message) {
	t.mu.Lock()
	slot := t.slotForLocked(m.DeviceID)
	var rt *vm.Runtime
	if slot != nil {
		rt = slot.rt
	}
	t.mu.Unlock()
	if rt == nil {
		// No such peripheral: empty data reply signals the absence.
		t.send(msg.Src, &proto.Message{Type: proto.MsgData, Seq: m.Seq, DeviceID: m.DeviceID})
		return
	}
	// id is copied out: the expiry event outlives the borrowed decode.
	id := m.DeviceID
	pr := pendingReadPool.Get().(*pendingRead)
	pr.seq, pr.client = m.Seq, msg.Src
	t.opsMu.Lock()
	gen := pr.gen
	t.pending[id] = append(t.pending[id], pr)
	t.opsMu.Unlock()
	ref := t.node.ScheduleExpiry(t.cfg.PendingReadTimeout, t, uint64(uint32(id))|gen<<32, pr)
	t.opsMu.Lock()
	if pr.gen == gen && queuedLocked(t.pending[id], pr) {
		pr.expiry = ref
		t.opsMu.Unlock()
	} else {
		t.opsMu.Unlock()
		// The driver already answered (realtime clock: the pop raced the
		// arming): the entry is gone or recycled, so reap the orphan event.
		ref.Cancel()
	}
	t.vmMu.Lock()
	rt.Post("read")
	rt.RunUntilIdle(0)
	t.vmMu.Unlock()
}

// queuedLocked reports whether pr is still in the queue (opsMu held).
func queuedLocked(q []*pendingRead, pr *pendingRead) bool {
	for _, e := range q {
		if e == pr {
			return true
		}
	}
	return false
}

// ExpireEvent implements netsim.Expirer: it drops a pending read the driver
// never answered (e.g. an RFID read with no card presented within the
// window). seqgen packs the peripheral type (low 32 bits) and the pooled
// entry's generation (upper bits).
func (t *Thing) ExpireEvent(seqgen uint64, tok any) {
	pr := tok.(*pendingRead)
	id := hw.DeviceID(uint32(seqgen))
	gen := seqgen >> 32
	t.opsMu.Lock()
	if pr.gen != gen {
		t.opsMu.Unlock()
		return
	}
	q := t.pending[id]
	found := false
	for i, e := range q {
		if e == pr {
			t.pending[id] = append(q[:i:i], q[i+1:]...)
			found = true
			break
		}
	}
	t.opsMu.Unlock()
	if found {
		t.releasePendingRead(pr)
	}
}

func (t *Thing) handleStream(msg netsim.Message, m *proto.Message) {
	t.mu.Lock()
	ok := t.slotForLocked(m.DeviceID) != nil
	t.mu.Unlock()
	if !ok {
		return
	}
	group := netsim.MulticastAddr(t.prefix, m.DeviceID)
	t.opsMu.Lock()
	st, exists := t.streams[m.DeviceID]
	if !exists {
		st = &streamState{group: group}
		t.streams[m.DeviceID] = st
	}
	st.seq = m.Seq
	wasActive := st.active
	st.active = true
	t.opsMu.Unlock()

	reply := &proto.Message{Type: proto.MsgEstablished, Seq: m.Seq, DeviceID: m.DeviceID}
	copy(reply.Group[:], group.AsSlice())
	t.send(msg.Src, reply)
	if !wasActive {
		t.scheduleStreamTick(m.DeviceID)
	}
}

// scheduleStreamTick produces stream data periodically while active.
func (t *Thing) scheduleStreamTick(id hw.DeviceID) {
	t.node.Schedule(t.cfg.StreamPeriod, func() {
		t.opsMu.Lock()
		st, ok := t.streams[id]
		active := ok && st.active
		t.opsMu.Unlock()
		if !active {
			return
		}
		t.mu.Lock()
		slot := t.slotForLocked(id)
		var rt *vm.Runtime
		if slot != nil {
			rt = slot.rt
		}
		t.mu.Unlock()
		if rt == nil {
			return
		}
		t.vmMu.Lock()
		rt.Post("read")
		rt.RunUntilIdle(0)
		t.vmMu.Unlock()
		t.scheduleStreamTick(id)
	})
}

func (t *Thing) handleWrite(msg netsim.Message, m *proto.Message) {
	t.mu.Lock()
	slot := t.slotForLocked(m.DeviceID)
	var rt *vm.Runtime
	if slot != nil {
		rt = slot.rt
	}
	t.mu.Unlock()
	status := uint8(1)
	if rt != nil {
		if vals, err := proto.ParseValues32(m.Data); err == nil {
			t.vmMu.Lock()
			rt.Post("write", vals...)
			rt.RunUntilIdle(0)
			t.vmMu.Unlock()
			status = 0
		}
	}
	t.send(msg.Src, &proto.Message{Type: proto.MsgWriteAck, Seq: m.Seq, DeviceID: m.DeviceID, Status: status})
}
