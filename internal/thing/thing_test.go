package thing

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"micropnp/internal/bus"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

// testBed wires a Thing to a bare network with a scripted "manager" node so
// the package can be tested without the manager package.
type testBed struct {
	net   *netsim.Network
	thing *Thing
	mgr   *netsim.Node
	// mgrInbox collects decoded messages the manager node received.
	mgrInbox []*proto.Message
}

func newTestBed(t *testing.T) *testBed {
	t.Helper()
	n := netsim.New(netsim.Config{})
	root, err := n.AddNode(addr("2001:db8::1"), nil)
	if err != nil {
		t.Fatal(err)
	}
	tb := &testBed{net: n, mgr: root}
	root.Bind(netsim.Port6030, func(m netsim.Message) {
		pm, err := proto.Decode(m.Payload)
		if err != nil {
			t.Errorf("manager received undecodable message: %v", err)
			return
		}
		tb.mgrInbox = append(tb.mgrInbox, pm)
	})
	th, err := New(Config{
		Network: n,
		Addr:    addr("2001:db8::2"),
		Parent:  root,
		Manager: root.Addr(),
		Name:    "bed",
	})
	if err != nil {
		t.Fatal(err)
	}
	tb.thing = th
	return tb
}

func tmp36Source(t *testing.T) []byte {
	t.Helper()
	repo, err := driver.StandardRepository()
	if err != nil {
		t.Fatal(err)
	}
	e, ok := repo.Lookup(driver.IDTMP36)
	if !ok {
		t.Fatal("TMP36 driver missing")
	}
	return e.Bytecode
}

type adcDevice struct{ env *bus.Environment }

func (d *adcDevice) Attach(ic *Interconnects) error {
	ic.ADC.Connect(&bus.TMP36{Env: d.env})
	return nil
}
func (d *adcDevice) Detach(ic *Interconnects) { ic.ADC.Connect(nil) }

func plugTMP36(t *testing.T, tb *testBed, ch int) {
	t.Helper()
	p, err := hw.NewPeripheral(hw.PeripheralSpec{ID: driver.IDTMP36, Bus: hw.BusADC})
	if err != nil {
		t.Fatal(err)
	}
	env := bus.NewEnvironment()
	if err := tb.thing.Plug(ch, p, &adcDevice{env: env}); err != nil {
		t.Fatal(err)
	}
}

func TestThingRequestsDriverFromManager(t *testing.T) {
	tb := newTestBed(t)
	plugTMP36(t, tb, 0)
	tb.net.RunUntilIdle(0)

	// The scripted manager never replies, so the Thing retransmits its
	// install request up to the retry bound.
	if len(tb.mgrInbox) != MaxDriverRequests {
		t.Fatalf("manager received %d messages, want %d install requests", len(tb.mgrInbox), MaxDriverRequests)
	}
	for _, req := range tb.mgrInbox {
		if req.Type != proto.MsgDriverInstallReq || req.DeviceID != driver.IDTMP36 {
			t.Fatalf("request = %+v", req)
		}
	}
	// No driver was served: the trace must remain unfinished.
	if tr := tb.thing.Traces()[0]; tr.Done {
		t.Fatal("trace must not complete without a driver upload")
	}
}

func TestThingPreinstalledDriverSkipsManager(t *testing.T) {
	tb := newTestBed(t)
	if err := tb.thing.InstallDriver(driver.IDTMP36, tmp36Source(t)); err != nil {
		t.Fatal(err)
	}
	plugTMP36(t, tb, 0)
	tb.net.RunUntilIdle(0)

	for _, m := range tb.mgrInbox {
		if m.Type == proto.MsgDriverInstallReq {
			t.Fatal("thing must not request a locally installed driver")
		}
	}
	tr := tb.thing.Traces()[0]
	if !tr.Done {
		t.Fatal("plug-in must complete")
	}
	if tr.RequestDriver != 0 {
		t.Errorf("request phase = %v, want 0 for local driver", tr.RequestDriver)
	}
	if tb.thing.Runtime(driver.IDTMP36) == nil {
		t.Fatal("driver must be active")
	}
	// Thing must have joined the peripheral's group.
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(tb.thing.Addr()), driver.IDTMP36)
	if !tb.thing.Node().InGroup(group) {
		t.Fatal("thing must join the peripheral's multicast group")
	}
}

func TestThingInstallDriverValidation(t *testing.T) {
	tb := newTestBed(t)
	if err := tb.thing.InstallDriver(driver.IDTMP36, []byte("junk")); err == nil {
		t.Fatal("junk driver must be rejected")
	}
	if err := tb.thing.InstallDriver(0x9999, tmp36Source(t)); err == nil {
		t.Fatal("ID mismatch must be rejected")
	}
	if got := tb.thing.InstalledDrivers(); len(got) != 0 {
		t.Fatalf("installed = %v", got)
	}
}

func TestThingMalformedUploadIgnored(t *testing.T) {
	tb := newTestBed(t)
	plugTMP36(t, tb, 0)
	tb.net.RunUntilIdle(0)

	// Upload garbage bytecode: the thing must not activate it.
	up := &proto.Message{Type: proto.MsgDriverUpload, Seq: 1, DeviceID: driver.IDTMP36, Driver: []byte{0xde, 0xad}}
	payload, err := up.Encode()
	if err != nil {
		t.Fatal(err)
	}
	tb.mgr.Send(tb.thing.Addr(), netsim.Port6030, payload)
	tb.net.RunUntilIdle(0)

	if tb.thing.Runtime(driver.IDTMP36) != nil {
		t.Fatal("garbage driver must not activate")
	}
}

func TestThingMalformedDatagramsIgnored(t *testing.T) {
	tb := newTestBed(t)
	plugTMP36(t, tb, 0)
	tb.net.RunUntilIdle(0)
	before := len(tb.mgrInbox)

	tb.mgr.Send(tb.thing.Addr(), netsim.Port6030, []byte{0xff, 0x00})
	tb.mgr.Send(tb.thing.Addr(), netsim.Port6030, nil)
	tb.net.RunUntilIdle(0)
	if len(tb.mgrInbox) != before {
		t.Fatal("malformed datagrams must not trigger replies")
	}
}

func TestThingChannelErrors(t *testing.T) {
	tb := newTestBed(t)
	p, _ := hw.NewPeripheral(hw.PeripheralSpec{ID: driver.IDTMP36, Bus: hw.BusADC})
	if err := tb.thing.Plug(99, p, nil); err == nil {
		t.Fatal("out-of-range channel must fail")
	}
	if err := tb.thing.Unplug(0); err == nil {
		t.Fatal("unplugging an empty channel must fail")
	}
}

func TestThingDriverDiscoveryAndRemoval(t *testing.T) {
	tb := newTestBed(t)
	if err := tb.thing.InstallDriver(driver.IDTMP36, tmp36Source(t)); err != nil {
		t.Fatal(err)
	}
	plugTMP36(t, tb, 0)
	tb.net.RunUntilIdle(0)

	// Discovery.
	disc := &proto.Message{Type: proto.MsgDriverDiscovery, Seq: 7}
	payload, _ := disc.Encode()
	tb.mgr.Send(tb.thing.Addr(), netsim.Port6030, payload)
	tb.net.RunUntilIdle(0)
	var advert *proto.Message
	for _, m := range tb.mgrInbox {
		if m.Type == proto.MsgDriverAdvert {
			advert = m
		}
	}
	if advert == nil || advert.Seq != 7 || len(advert.Drivers) != 1 || advert.Drivers[0] != driver.IDTMP36 {
		t.Fatalf("driver advert = %+v", advert)
	}

	// Removal while in use: the runtime stops.
	rm := &proto.Message{Type: proto.MsgDriverRemovalReq, Seq: 8, DeviceID: driver.IDTMP36}
	payload, _ = rm.Encode()
	tb.mgr.Send(tb.thing.Addr(), netsim.Port6030, payload)
	tb.net.RunUntilIdle(0)
	var ack *proto.Message
	for _, m := range tb.mgrInbox {
		if m.Type == proto.MsgDriverRemovalAck && m.Seq == 8 {
			ack = m
		}
	}
	if ack == nil || ack.Status != 0 {
		t.Fatalf("removal ack = %+v", ack)
	}
	if tb.thing.Runtime(driver.IDTMP36) != nil {
		t.Fatal("runtime must stop on removal")
	}
}

func TestPluginTraceFinish(t *testing.T) {
	tr := &PluginTrace{
		Identification: 250 * time.Millisecond,
		GenerateAddr:   CostGenerateAddr,
		JoinGroup:      CostJoinGroup,
		RequestDriver:  50 * time.Millisecond,
		InstallDriver:  60 * time.Millisecond,
		Advertise:      45 * time.Millisecond,
	}
	tr.finish()
	if !tr.Done {
		t.Fatal("finish must mark done")
	}
	wantNet := CostGenerateAddr + CostJoinGroup + 155*time.Millisecond
	if tr.NetworkTotal != wantNet {
		t.Fatalf("network total = %v, want %v", tr.NetworkTotal, wantNet)
	}
	if tr.Total != tr.NetworkTotal+250*time.Millisecond {
		t.Fatalf("total = %v", tr.Total)
	}
}

func TestInterconnectsComplete(t *testing.T) {
	ic := NewInterconnects()
	if ic.UART == nil || ic.ADC == nil || ic.I2C == nil || ic.SPI == nil {
		t.Fatal("all four interconnects must exist per channel")
	}
}

func TestThingIdentificationFailureNoSetup(t *testing.T) {
	// A peripheral with hopelessly sloppy resistors whose identification
	// fails: the thing must not start the network sequence for it.
	n := netsim.New(netsim.Config{})
	root, _ := n.AddNode(addr("2001:db8::1"), nil)
	var mgrGot int
	root.Bind(netsim.Port6030, func(netsim.Message) { mgrGot++ })
	th, err := New(Config{Network: n, Addr: addr("2001:db8::2"), Parent: root, Manager: root.Addr()})
	if err != nil {
		t.Fatal(err)
	}

	// Manufacture a peripheral whose resistors decode wrongly on this
	// thing's board (±20% parts virtually guarantee it; search seeds for a
	// deterministic failing one).
	for seed := int64(1); seed < 200; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, errP := hw.NewPeripheral(hw.PeripheralSpec{
			ID: driver.IDTMP36, Bus: hw.BusADC, Tolerance: 0.20, Rng: rng,
		})
		if errP != nil {
			t.Fatal(errP)
		}
		probe := hw.NewControlBoard(hw.BoardConfig{Channels: 1})
		_ = probe.Plug(0, p)
		rd := probe.Identify().Readings[0]
		if rd.Err == nil {
			continue // this one happens to decode; try another
		}
		if err := th.Plug(0, p, nil); err != nil {
			t.Fatal(err)
		}
		n.RunUntilIdle(0)
		if len(th.Traces()) != 0 {
			t.Fatal("failed identification must not produce a trace")
		}
		if mgrGot != 0 {
			t.Fatal("failed identification must not contact the manager")
		}
		return
	}
	t.Fatal("could not manufacture a failing peripheral in 200 tries")
}
