// Package energy models the energy-consumption comparison of Section 6.1:
// a one-year IoT deployment in which peripherals are connected and
// disconnected at a configurable rate, comparing an always-on embedded USB
// host controller against the interrupt-gated µPnP control board combined
// with ADC, I²C, SPI or UART interconnects (Figure 12).
//
// The µPnP side is driven by the hw package's calibrated identification-scan
// model; the USB baseline uses the idle draw of a MAX3421E-class USB host
// controller, which must remain powered continuously because it has no
// external interrupt circuit to wake it on attach events.
package energy

import (
	"fmt"
	"math/rand"
	"time"

	"micropnp/internal/hw"
)

// Year is the simulated deployment length used throughout the paper.
const Year = 365 * 24 * time.Hour

// InterconnectProfile captures the per-communication energy of one hardware
// interconnect at 3.3 V. The values are first-principles estimates for the
// evaluation peripherals: a 10-bit ADC conversion (13 ADC clocks at 125 kHz,
// ~0.3 mA), an I²C register read (~450 µs of 100 kHz bus activity with
// pull-up losses), a 16-byte UART frame at 9600 baud (~16.7 ms of active
// transceiver), and a short 1 MHz SPI burst.
type InterconnectProfile struct {
	Name  string
	Bus   hw.BusKind
	PerOp hw.Joule
}

// Interconnect profiles used in Figure 12 (plus SPI, which the figure omits
// but the µPnP bus supports).
var (
	ProfileADC  = InterconnectProfile{Name: "µPnP+ADC", Bus: hw.BusADC, PerOp: 0.34e-6}
	ProfileI2C  = InterconnectProfile{Name: "µPnP+I2C", Bus: hw.BusI2C, PerOp: 1.5e-6}
	ProfileUART = InterconnectProfile{Name: "µPnP+UART", Bus: hw.BusUART, PerOp: 16.5e-6}
	ProfileSPI  = InterconnectProfile{Name: "µPnP+SPI", Bus: hw.BusSPI, PerOp: 0.053e-6}
)

// Figure12Profiles are the three interconnects plotted in the paper.
var Figure12Profiles = []InterconnectProfile{ProfileADC, ProfileI2C, ProfileUART}

// USBHost models the baseline: an embedded USB host controller shield
// (MAX3421E-class). Because USB device detection requires the host to stay
// powered, its energy is dominated by idle draw. The paper uses the
// controller's minimum idle consumption, i.e. the comparison most favourable
// to USB.
type USBHost struct {
	IdlePower hw.Watt
}

// DefaultUSBHost draws 30 mW (≈9 mA at 3.3 V) idle.
var DefaultUSBHost = USBHost{IdlePower: 30e-3}

// Energy returns the USB host's energy over a deployment of length d.
func (u USBHost) Energy(d time.Duration) hw.Joule {
	return u.IdlePower.Energy(d)
}

// DeploymentConfig describes one simulated deployment point.
type DeploymentConfig struct {
	// Duration of the deployment (default Year).
	Duration time.Duration
	// CommPeriod is how often the peripheral communicates (default 10 s,
	// as in Section 6.1).
	CommPeriod time.Duration
	// ChangePeriod is how often a peripheral is connected or disconnected —
	// the horizontal axis of Figure 12.
	ChangePeriod time.Duration
	// Profile selects the interconnect.
	Profile InterconnectProfile
	// Samples is the number of random device identifiers used to estimate
	// the identification-energy distribution (default 64).
	Samples int
	// Rng drives identifier sampling; nil uses a fixed seed.
	Rng *rand.Rand
}

// DeploymentResult reports the one-year energy at a single change rate.
type DeploymentResult struct {
	Config DeploymentConfig
	// Changes is the number of connect/disconnect events over the deployment.
	Changes int
	// Comms is the number of peripheral communications.
	Comms int
	// IdentMean/Min/Max describe the per-identification energy distribution
	// (depends on the resistor values of the sampled identifiers — the
	// source of the error bars in Figure 12).
	IdentMean, IdentMin, IdentMax hw.Joule
	// UPnPMean/Min/Max is total µPnP energy (identification + interconnect).
	UPnPMean, UPnPMin, UPnPMax hw.Joule
	// USB is the baseline energy over the same deployment.
	USB hw.Joule
}

// Simulate evaluates one deployment point.
func Simulate(cfg DeploymentConfig) DeploymentResult {
	if cfg.Duration == 0 {
		cfg.Duration = Year
	}
	if cfg.CommPeriod == 0 {
		cfg.CommPeriod = 10 * time.Second
	}
	if cfg.Samples == 0 {
		cfg.Samples = 64
	}
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(6030))
	}

	res := DeploymentResult{Config: cfg}
	if cfg.ChangePeriod > 0 {
		res.Changes = int(cfg.Duration / cfg.ChangePeriod)
	}
	res.Comms = int(cfg.Duration / cfg.CommPeriod)

	res.IdentMean, res.IdentMin, res.IdentMax = identDistribution(cfg.Samples, rng)

	comm := hw.Joule(float64(res.Comms)) * cfg.Profile.PerOp
	n := hw.Joule(float64(res.Changes))
	res.UPnPMean = n*res.IdentMean + comm
	res.UPnPMin = n*res.IdentMin + comm
	res.UPnPMax = n*res.IdentMax + comm
	res.USB = DefaultUSBHost.Energy(cfg.Duration)
	return res
}

// identDistribution estimates the energy of a single identification scan by
// sampling random device identifiers through the control-board model: one
// peripheral on a default 3-channel board, exactly the Section 6.1 setup.
func identDistribution(samples int, rng *rand.Rand) (mean, min, max hw.Joule) {
	min = hw.Joule(1e18)
	var sum hw.Joule
	for i := 0; i < samples; i++ {
		id := hw.DeviceID(rng.Uint32())
		if id.Reserved() {
			id = 0x12345678
		}
		b := hw.NewControlBoard(hw.BoardConfig{Rng: rng})
		p, err := hw.NewPeripheral(hw.PeripheralSpec{ID: id, Bus: hw.BusADC, Rng: rng})
		if err != nil {
			continue
		}
		if err := b.Plug(0, p); err != nil {
			continue
		}
		e := b.Identify().Energy
		sum += e
		if e < min {
			min = e
		}
		if e > max {
			max = e
		}
	}
	return sum / hw.Joule(float64(samples)), min, max
}

// SweepPoint is one (change rate × interconnect) cell of Figure 12.
type SweepPoint struct {
	ChangePeriod time.Duration
	Profile      string
	UPnPMean     hw.Joule
	UPnPMin      hw.Joule
	UPnPMax      hw.Joule
	USB          hw.Joule
}

// Figure12Rates reproduces the horizontal axis of Figure 12: rates of change
// from one minute to one million minutes (≈1.9 years), log-spaced decades.
func Figure12Rates() []time.Duration {
	var out []time.Duration
	for m := 1; m <= 1_000_000; m *= 10 {
		out = append(out, time.Duration(m)*time.Minute)
	}
	return out
}

// Sweep evaluates the full Figure 12 grid.
func Sweep(rates []time.Duration, profiles []InterconnectProfile) []SweepPoint {
	var out []SweepPoint
	for _, p := range profiles {
		for _, r := range rates {
			res := Simulate(DeploymentConfig{ChangePeriod: r, Profile: p})
			out = append(out, SweepPoint{
				ChangePeriod: r,
				Profile:      p.Name,
				UPnPMean:     res.UPnPMean,
				UPnPMin:      res.UPnPMin,
				UPnPMax:      res.UPnPMax,
				USB:          res.USB,
			})
		}
	}
	return out
}

// OrdersOfMagnitude returns log10(USB / µPnP) for a deployment point — the
// headline claim of the paper is that this exceeds 4 at an hourly change
// rate.
func (p SweepPoint) OrdersOfMagnitude() float64 {
	if p.UPnPMean <= 0 {
		return 0
	}
	ratio := float64(p.USB) / float64(p.UPnPMean)
	oom := 0.0
	for ratio >= 10 {
		ratio /= 10
		oom++
	}
	return oom + ratio/10 // fractional tail for reporting
}

func (p SweepPoint) String() string {
	return fmt.Sprintf("%-10s change=%-10s µPnP=%.4g J (%.4g..%.4g) USB=%.4g J",
		p.Profile, p.ChangePeriod, float64(p.UPnPMean), float64(p.UPnPMin), float64(p.UPnPMax), float64(p.USB))
}
