package energy

import (
	"math"
	"testing"
	"time"

	"micropnp/internal/hw"
)

func TestIdentEnergyWindow(t *testing.T) {
	res := Simulate(DeploymentConfig{ChangePeriod: time.Hour, Profile: ProfileADC})
	// Per-identification energy must land in the paper's measured window
	// (2.48e-3 J .. 6.756e-3 J).
	if res.IdentMin < 2.3e-3 || res.IdentMin > 7e-3 {
		t.Errorf("ident min %.4g J outside window", float64(res.IdentMin))
	}
	if res.IdentMax < res.IdentMin || res.IdentMax > 7e-3 {
		t.Errorf("ident max %.4g J outside window", float64(res.IdentMax))
	}
	if res.IdentMean < res.IdentMin || res.IdentMean > res.IdentMax {
		t.Errorf("mean %.4g J outside [min,max]", float64(res.IdentMean))
	}
}

func TestHourlyChangeFourOrdersOfMagnitude(t *testing.T) {
	// Headline claim: at an hourly change rate µPnP consumes over four
	// orders of magnitude less energy than the USB host shield.
	for _, p := range Figure12Profiles {
		res := Simulate(DeploymentConfig{ChangePeriod: time.Hour, Profile: p})
		ratio := float64(res.USB) / float64(res.UPnPMean)
		if ratio < 1e4 {
			t.Errorf("%s: USB/µPnP ratio = %.3g, want > 1e4", p.Name, ratio)
		}
	}
}

func TestUSBWinsNever(t *testing.T) {
	// µPnP must beat USB at every plotted change rate.
	for _, pt := range Sweep(Figure12Rates(), Figure12Profiles) {
		if pt.UPnPMax >= pt.USB {
			t.Errorf("%v: µPnP worst case %.4g J must stay below USB %.4g J",
				pt.Profile, float64(pt.UPnPMax), float64(pt.USB))
		}
	}
}

func TestEnergyScalesLinearlyWithChangeRate(t *testing.T) {
	// Doubling the change frequency should (asymptotically) double µPnP
	// identification energy. Use a fast change rate where identification
	// dominates the interconnect cost.
	a := Simulate(DeploymentConfig{ChangePeriod: time.Minute, Profile: ProfileADC})
	b := Simulate(DeploymentConfig{ChangePeriod: 2 * time.Minute, Profile: ProfileADC})
	identA := float64(a.UPnPMean) - float64(a.Comms)*float64(ProfileADC.PerOp)
	identB := float64(b.UPnPMean) - float64(b.Comms)*float64(ProfileADC.PerOp)
	ratio := identA / identB
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("identification energy ratio = %.3f, want ~2 (linear scaling)", ratio)
	}
}

func TestInterconnectDivergenceAtLowRates(t *testing.T) {
	// Figure 12: the interconnect lines diverge at LOW change rates (where
	// interconnect energy dominates) and converge at HIGH change rates
	// (where identification dominates).
	slow := time.Duration(1_000_000) * time.Minute
	fast := time.Minute

	uartSlow := Simulate(DeploymentConfig{ChangePeriod: slow, Profile: ProfileUART})
	adcSlow := Simulate(DeploymentConfig{ChangePeriod: slow, Profile: ProfileADC})
	uartFast := Simulate(DeploymentConfig{ChangePeriod: fast, Profile: ProfileUART})
	adcFast := Simulate(DeploymentConfig{ChangePeriod: fast, Profile: ProfileADC})

	slowRatio := float64(uartSlow.UPnPMean) / float64(adcSlow.UPnPMean)
	fastRatio := float64(uartFast.UPnPMean) / float64(adcFast.UPnPMean)
	if slowRatio < 2 {
		t.Errorf("at slow change rates UART should cost well over 2x ADC, got %.2fx", slowRatio)
	}
	if fastRatio > 1.1 {
		t.Errorf("at fast change rates the interconnects should converge, got %.2fx", fastRatio)
	}
}

func TestUSBFlatAcrossRates(t *testing.T) {
	pts := Sweep(Figure12Rates(), []InterconnectProfile{ProfileADC})
	for i := 1; i < len(pts); i++ {
		if pts[i].USB != pts[0].USB {
			t.Fatal("USB baseline must not depend on change rate")
		}
	}
}

func TestFigure12RatesSpanSixDecades(t *testing.T) {
	rates := Figure12Rates()
	if len(rates) != 7 {
		t.Fatalf("want 7 decade points, got %d", len(rates))
	}
	if rates[0] != time.Minute || rates[6] != 1_000_000*time.Minute {
		t.Fatalf("rates = %v", rates)
	}
}

func TestErrorBarsNonDegenerate(t *testing.T) {
	// The error bars in Figure 12 come from resistor-value-dependent
	// identification energy; at fast change rates they must be visible.
	res := Simulate(DeploymentConfig{ChangePeriod: time.Minute, Profile: ProfileADC})
	if res.UPnPMin >= res.UPnPMax {
		t.Fatalf("error bar degenerate: min %.4g max %.4g", float64(res.UPnPMin), float64(res.UPnPMax))
	}
}

func TestDefaults(t *testing.T) {
	res := Simulate(DeploymentConfig{ChangePeriod: time.Hour, Profile: ProfileI2C})
	if res.Config.Duration != Year {
		t.Error("default duration must be one year")
	}
	if res.Config.CommPeriod != 10*time.Second {
		t.Error("default communication period must be 10 s")
	}
	if res.Comms != int(Year/(10*time.Second)) {
		t.Errorf("comms = %d", res.Comms)
	}
	if res.Changes != int(Year/time.Hour) {
		t.Errorf("changes = %d", res.Changes)
	}
}

func TestOrdersOfMagnitudeAndString(t *testing.T) {
	pt := SweepPoint{Profile: "µPnP+ADC", ChangePeriod: time.Hour, UPnPMean: 40, USB: 9.5e5}
	if oom := pt.OrdersOfMagnitude(); oom < 4 || oom > 5 {
		t.Errorf("OrdersOfMagnitude = %.2f, want in (4,5)", oom)
	}
	if pt.String() == "" {
		t.Error("String must render")
	}
	zero := SweepPoint{}
	if zero.OrdersOfMagnitude() != 0 {
		t.Error("degenerate point must report 0")
	}
}

func TestUSBHostEnergy(t *testing.T) {
	e := DefaultUSBHost.Energy(Year)
	// 30 mW for a year ≈ 9.46e5 J — the flat line near 1e6 J in Figure 12.
	want := 30e-3 * Year.Seconds()
	if math.Abs(float64(e)-want) > 1 {
		t.Errorf("USB year energy = %.4g, want %.4g", float64(e), want)
	}
}

func TestProfilesMatchBusKinds(t *testing.T) {
	if ProfileADC.Bus != hw.BusADC || ProfileI2C.Bus != hw.BusI2C ||
		ProfileUART.Bus != hw.BusUART || ProfileSPI.Bus != hw.BusSPI {
		t.Fatal("profile bus kinds mismatch")
	}
}
