// Multi-manager deployment tests: instance bookkeeping and the anycast
// re-route the SDK-level failover tests build on.
package core

import (
	"testing"

	"micropnp/internal/driver"
)

// TestAnycastReroutesAfterNearestDies pins which instance serves: the
// nearest manager takes the install uploads until it crashes, then the
// anycast routes new installs to the survivor — observable here through the
// per-instance upload counters the public SDK only exposes summed.
func TestAnycastReroutesAfterNearestDies(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{Managers: 2})
	if err != nil {
		t.Fatal(err)
	}
	managers := d.Managers()
	if len(managers) != 2 {
		t.Fatalf("Managers() = %d instances, want 2", len(managers))
	}

	// Things attach under the border manager: instance 0 is one hop away,
	// instance 1 (a sibling subtree) two — the anycast must pick 0.
	th1, err := d.AddThing("near")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlugTMP36(th1, 0); err != nil {
		t.Fatal(err)
	}
	d.Network.RunUntilIdle(0)
	if u0, u1 := managers[0].Uploads(), managers[1].Uploads(); u0 != 1 || u1 != 0 {
		t.Fatalf("pre-failure uploads = (%d, %d), want (1, 0): nearest instance must serve", u0, u1)
	}

	if err := d.FailManager(0); err != nil {
		t.Fatal(err)
	}
	if !managers[0].Failed() || managers[1].Failed() {
		t.Fatal("Failed() flags wrong after FailManager(0)")
	}
	if d.Mgmt() != managers[1] {
		t.Fatal("Mgmt() must return the survivor")
	}

	th2, err := d.AddThing("post")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlugTMP36(th2, 0); err != nil {
		t.Fatal(err)
	}
	d.Network.RunUntilIdle(0)
	if u0, u1 := managers[0].Uploads(), managers[1].Uploads(); u0 != 1 || u1 != 1 {
		t.Fatalf("post-failure uploads = (%d, %d), want (1, 1): anycast must re-route to the survivor", u0, u1)
	}
	if got := d.Uploads(); got != 2 {
		t.Fatalf("Uploads() = %d, want 2", got)
	}
}

// TestSitePrefixes pins the address plan federation routes by: site 0 keeps
// the legacy addresses bit-for-bit, site k gets its own /48.
func TestSitePrefixes(t *testing.T) {
	d0, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if d0.Manager.Node().Addr().String() != "2001:db8::1" {
		t.Fatalf("site-0 manager at %v, want 2001:db8::1", d0.Manager.Node().Addr())
	}
	d1, err := NewDeployment(DeploymentConfig{Site: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Manager.Node().Addr().String() != "2001:db8:1::1" {
		t.Fatalf("site-1 manager at %v, want 2001:db8:1::1", d1.Manager.Node().Addr())
	}
	if d0.Prefix() == d1.Prefix() {
		t.Fatal("sites 0 and 1 share a network prefix")
	}
	th, err := d1.AddThing("t")
	if err != nil {
		t.Fatal(err)
	}
	if err := d1.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d1.Network.RunUntilIdle(0)
	if len(th.InstalledDrivers()) != 1 {
		t.Fatal("plug-in sequence broken on a non-zero site")
	}
	if th.InstalledDrivers()[0] != driver.IDTMP36 {
		t.Fatalf("installed %v, want TMP36", th.InstalledDrivers()[0])
	}
}
