// Package core is the public façade of the µPnP reproduction: it assembles
// the full system — simulated IPv6 network, µPnP manager with the standard
// driver repository, Things with control boards, clients, and the four
// evaluation peripherals — into a Deployment that can be scripted from
// examples, experiments and tests.
//
// A typical session:
//
//	d, _ := core.NewDeployment(core.DeploymentConfig{})
//	th, _ := d.AddThing("kitchen")
//	cl, _ := d.AddClient()
//	d.PlugTMP36(th, 0)
//	d.Run()                      // plug-in sequence: identify, fetch driver, advertise
//	cl.Read(th.Addr(), driver.IDTMP36, 0, func(v []int32, err error) { ... })
//	d.Run()
//
// External consumers should use the public SDK (package micropnp at the
// repository root), which wraps this façade in synchronous, context-aware
// calls.
package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"micropnp/internal/bus"
	"micropnp/internal/client"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/manager"
	"micropnp/internal/netsim"
	"micropnp/internal/reqerr"
	"micropnp/internal/thing"
)

// DeploymentConfig tunes a simulated deployment.
type DeploymentConfig struct {
	// LossRate is the per-hop frame loss probability.
	LossRate float64
	// ProcJitter adds relative per-delivery latency noise (0 = none).
	ProcJitter float64
	// Seed selects the random stream for loss/jitter (0 = fixed default).
	Seed int64
	// StreamPeriod overrides the Things' stream production period.
	StreamPeriod time.Duration
	// Repository overrides the manager's driver repository (default: the
	// standard four-driver repository).
	Repository *driver.Repository
	// RequestTimeout bounds client requests made without an explicit
	// timeout (zero = the client default).
	RequestTimeout time.Duration
	// Realtime runs the network on the wall clock: the event loop gets its
	// own goroutine and handlers dispatch from a bounded worker pool (see
	// netsim.RealtimeClock). Default is the deterministic virtual clock.
	Realtime bool
	// TimeScale compresses virtual time relative to wall time in realtime
	// mode (1 or 0 = real time; 100 = 100x accelerated).
	TimeScale float64
	// Workers bounds the realtime handler pool (0 = min(GOMAXPROCS, 8)) and,
	// with Zones > 1, the sharded clock's per-round parallelism (1 forces
	// the sequential single-loop schedule; 0 = GOMAXPROCS).
	Workers int
	// Zones partitions the network into that many address zones run by the
	// zone-sharded conservative-PDES clock (see netsim.ShardedClock); 0 or 1
	// keeps the single-loop virtual clock. Place Things in zones with
	// AddThingInZone. Ignored in realtime mode.
	Zones int
	// GlobalLookahead pins the sharded clock to the single global one-hop
	// lookahead quantum instead of the per-lane-pair matrix derived from the
	// cross-zone topology (see netsim.Lookahead). Comparison/escape knob;
	// ignored off the sharded clock.
	GlobalLookahead bool
	// Retry enables automatic retransmission of unanswered unicast client
	// reads and writes (zero value disables).
	Retry client.RetryPolicy
	// InterpDrivers pins every Thing's installed drivers to the reference
	// bytecode interpreter instead of the compiled engine (see
	// thing.Config.InterpDrivers). Transcript-identical; the SDK exposes
	// this as WithCompiledDrivers(false).
	InterpDrivers bool
	// Managers is the number of manager instances stood up behind the
	// deployment's anycast address (Section 5 redundancy); 0 or 1 keeps the
	// single border-router manager.
	Managers int
	// Site selects the deployment's 48-bit network prefix: site 0 is the
	// classic 2001:db8::/48, site k occupies 2001:db8:k::/48. Deployments
	// federated behind one Fleet need distinct sites so Thing addresses
	// route unambiguously by prefix.
	Site int
}

// Deployment is a complete simulated µPnP network.
type Deployment struct {
	Network *netsim.Network
	// Manager is the first (border-router) manager instance; additional
	// instances behind the same anycast live in the managers slice. The
	// field stays valid after a FailManager — the crashed process's router
	// node keeps relaying, so topology attachment through it still works.
	Manager *manager.Manager
	// Env is the shared physical environment observed by all sensors.
	Env *bus.Environment

	cfg      DeploymentConfig
	prefix   netsim.NetworkPrefix
	addrMu   sync.Mutex
	hostSeq  int
	managerA netip.Addr

	mgrMu    sync.Mutex
	managers []*manager.Manager
	repo     *driver.Repository
}

// ManagerAnycast is the well-known manager anycast address of site-0
// simulated deployments; site k deployments use the same ::aaaa host under
// their own 48-bit prefix (see AnycastForSite).
var ManagerAnycast = netip.MustParseAddr("2001:db8::aaaa")

// SitePrefix returns the 48-bit network prefix of a site: site 0 is the
// classic 2001:db8::/48, site k occupies 2001:db8:k::/48.
func SitePrefix(site int) netsim.NetworkPrefix {
	return netsim.NetworkPrefix{0x20, 0x01, 0x0d, 0xb8, byte(site >> 8), byte(site)}
}

// AnycastForSite returns a site's manager anycast address (<prefix>::aaaa).
func AnycastForSite(site int) netip.Addr {
	return netsim.UnicastAddr(SitePrefix(site), 0, 0xaaaa)
}

// NewDeployment builds a network with one manager (serving the standard
// drivers) at the border-router position, plus cfg.Managers-1 redundant
// instances behind the same anycast address.
func NewDeployment(cfg DeploymentConfig) (*Deployment, error) {
	repo := cfg.Repository
	if repo == nil {
		var err error
		repo, err = driver.FullRepository()
		if err != nil {
			return nil, err
		}
	}
	var rng *rand.Rand
	if cfg.Seed != 0 {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	net := netsim.New(netsim.Config{
		LossRate:        cfg.LossRate,
		ProcJitter:      cfg.ProcJitter,
		Rng:             rng,
		Realtime:        cfg.Realtime,
		TimeScale:       cfg.TimeScale,
		Workers:         cfg.Workers,
		Zones:           cfg.Zones,
		Seed:            cfg.Seed,
		GlobalLookahead: cfg.GlobalLookahead,
	})
	prefix := SitePrefix(cfg.Site)
	mgrAddr := netsim.UnicastAddr(prefix, 0, 1) // site 0: the classic 2001:db8::1
	anycast := AnycastForSite(cfg.Site)
	mgr, err := manager.New(manager.Config{
		Network:    net,
		Addr:       mgrAddr,
		Anycast:    anycast,
		Repository: repo,
	})
	if err != nil {
		return nil, err
	}
	d := &Deployment{
		Network:  net,
		Manager:  mgr,
		Env:      bus.NewEnvironment(),
		cfg:      cfg,
		prefix:   prefix,
		managerA: anycast,
		managers: []*manager.Manager{mgr},
		repo:     repo,
	}
	for i := 1; i < cfg.Managers; i++ {
		if _, err := d.AddManager(); err != nil {
			return nil, err
		}
	}
	return d, nil
}

// AddManager stands up an additional manager instance behind the
// deployment's anycast address, attached below the border router and
// serving the same driver repository. Requests to the anycast land on the
// nearest live instance, so adding managers is transparent to Things and
// clients; failing one (FailManager) re-routes traffic to the survivors.
func (d *Deployment) AddManager() (*manager.Manager, error) {
	mgr, err := manager.New(manager.Config{
		Network:    d.Network,
		Addr:       d.nextAddr(),
		Anycast:    d.managerA,
		Parent:     d.Manager.Node(),
		Repository: d.repo,
	})
	if err != nil {
		return nil, err
	}
	d.mgrMu.Lock()
	d.managers = append(d.managers, mgr)
	d.mgrMu.Unlock()
	return mgr, nil
}

// Managers returns the manager instances in creation order, failed ones
// included (index i is stable — FailManager(i) names the same instance for
// the deployment's lifetime).
func (d *Deployment) Managers() []*manager.Manager {
	d.mgrMu.Lock()
	defer d.mgrMu.Unlock()
	return append([]*manager.Manager(nil), d.managers...)
}

// Mgmt returns the instance management requests should be issued through:
// the first live manager, falling back to the first instance when every one
// has failed (its requests then expire like any unreachable peer's).
func (d *Deployment) Mgmt() *manager.Manager {
	d.mgrMu.Lock()
	defer d.mgrMu.Unlock()
	for _, m := range d.managers {
		if !m.Failed() {
			return m
		}
	}
	return d.managers[0]
}

// FailManager crashes manager instance i (creation order) for fault
// injection: the instance leaves the anycast, stops serving, and its pending
// management requests migrate to the nearest surviving instance — re-issued
// with fresh sequence numbers and full timeouts, so callers see at most a
// delayed reply, not a lost one. With no survivor the drained requests fail
// over to their callers as timeouts. In-flight driver installs need no
// migration at all: the requesting Thing's ARQ retransmissions to the
// anycast reach a survivor by themselves.
func (d *Deployment) FailManager(i int) error {
	d.mgrMu.Lock()
	if i < 0 || i >= len(d.managers) {
		n := len(d.managers)
		d.mgrMu.Unlock()
		return fmt.Errorf("core: no manager %d (deployment has %d)", i, n)
	}
	mgr := d.managers[i]
	d.mgrMu.Unlock()
	drained := mgr.Fail()
	if len(drained) == 0 {
		return nil
	}
	survivor := d.Mgmt()
	if survivor.Failed() {
		survivor = nil
	}
	for _, req := range drained {
		switch {
		case survivor == nil:
			if req.OnDiscover != nil {
				req.OnDiscover(nil, reqerr.ErrTimeout)
			}
			if req.OnRemoval != nil {
				req.OnRemoval(reqerr.ErrTimeout)
			}
		case req.OnDiscover != nil:
			survivor.DiscoverDrivers(req.Thing, 0, req.OnDiscover)
		case req.OnRemoval != nil:
			survivor.RemoveDriver(req.Thing, req.Device, 0, req.OnRemoval)
		}
	}
	return nil
}

// Uploads sums the driver uploads served across all manager instances.
func (d *Deployment) Uploads() int {
	d.mgrMu.Lock()
	managers := d.managers
	d.mgrMu.Unlock()
	total := 0
	for _, m := range managers {
		total += m.Uploads()
	}
	return total
}

func (d *Deployment) nextAddr() netip.Addr {
	return d.nextAddrInZone(0)
}

// nextAddrInZone allocates the next host address carrying the given address
// zone (netsim.UnicastAddr); zone 0 reproduces the classic 2001:db8::1xx
// layout, and the byte form lifts the 16-bit host ceiling string formatting
// imposed, so 100k-Thing deployments address cleanly.
func (d *Deployment) nextAddrInZone(zone uint16) netip.Addr {
	d.addrMu.Lock()
	d.hostSeq++
	seq := d.hostSeq
	d.addrMu.Unlock()
	return netsim.UnicastAddr(d.prefix, zone, uint32(0x100+seq))
}

// Close stops the network's clock: in realtime mode it terminates the event
// loop and the worker pool; on the virtual clock it is a no-op. Close is
// idempotent.
func (d *Deployment) Close() { d.Network.Close() }

// AddThing creates a Thing one hop from the manager.
func (d *Deployment) AddThing(name string) (*thing.Thing, error) {
	return d.AddThingAt(name, d.Manager.Node())
}

// AddThingAt creates a Thing attached under the given tree parent, enabling
// multi-hop topologies.
func (d *Deployment) AddThingAt(name string, parent *netsim.Node) (*thing.Thing, error) {
	return thing.New(thing.Config{
		Network:            d.Network,
		Addr:               d.nextAddr(),
		Parent:             parent,
		Manager:            d.managerA,
		Name:               name,
		StreamPeriod:       d.cfg.StreamPeriod,
		Units:              driver.UnitsTable(),
		PendingReadTimeout: d.cfg.RequestTimeout,
		InterpDrivers:      d.cfg.InterpDrivers,
	})
}

// AddThingInZone creates a Thing whose unicast address carries the given
// address zone, attached under parent (nil = the manager/border router).
// On a zone-sharded deployment (DeploymentConfig.Zones > 1) the Thing's
// deliveries and timers then run on that zone's event lane; keeping a zone's
// Things in a common subtree keeps intra-zone traffic intra-lane.
func (d *Deployment) AddThingInZone(name string, zone uint16, parent *netsim.Node) (*thing.Thing, error) {
	if parent == nil {
		parent = d.Manager.Node()
	}
	return thing.New(thing.Config{
		Network:            d.Network,
		Addr:               d.nextAddrInZone(zone),
		Parent:             parent,
		Manager:            d.managerA,
		Name:               name,
		StreamPeriod:       d.cfg.StreamPeriod,
		Units:              driver.UnitsTable(),
		PendingReadTimeout: d.cfg.RequestTimeout,
		InterpDrivers:      d.cfg.InterpDrivers,
	})
}

// AddZonedThing creates a Thing placed in a location zone with the
// structured namespace enabled (the Section 9 extensions): it joins
// zone-scoped and class-wildcard multicast groups for its peripherals, and
// its unicast address carries the zone, so zone-sharded deployments place it
// on the zone's event lane.
func (d *Deployment) AddZonedThing(name string, zone uint16) (*thing.Thing, error) {
	return thing.New(thing.Config{
		Network:             d.Network,
		Addr:                d.nextAddrInZone(zone),
		Parent:              d.Manager.Node(),
		Manager:             d.managerA,
		Name:                name,
		StreamPeriod:        d.cfg.StreamPeriod,
		Zone:                zone,
		StructuredNamespace: true,
		Units:               driver.UnitsTable(),
		PendingReadTimeout:  d.cfg.RequestTimeout,
		InterpDrivers:       d.cfg.InterpDrivers,
	})
}

// PlugCustom plugs a peripheral with an arbitrary identifier and device
// model (the deployment's repository must hold a driver for it).
func (d *Deployment) PlugCustom(t *thing.Thing, ch int, id hw.DeviceID, b hw.BusKind, dev thing.Device) error {
	return d.plug(t, ch, id, b, dev)
}

// AddClient creates a client one hop from the manager.
func (d *Deployment) AddClient() (*client.Client, error) {
	return d.AddClientAt(d.Manager.Node())
}

// AddClientAt creates a client under the given tree parent.
func (d *Deployment) AddClientAt(parent *netsim.Node) (*client.Client, error) {
	return client.New(client.Config{
		Network:        d.Network,
		Addr:           d.nextAddr(),
		Parent:         parent,
		DefaultTimeout: d.cfg.RequestTimeout,
		Retry:          d.cfg.Retry,
	})
}

// AddClientInZone creates a client whose unicast address carries the given
// address zone, attached under parent (nil = the manager/border router). On a
// zone-sharded deployment the client's protocol machinery — reply handling,
// request timers, retransmissions — runs on that zone's event lane, so a
// client serving a zone keeps its traffic intra-lane.
func (d *Deployment) AddClientInZone(zone uint16, parent *netsim.Node) (*client.Client, error) {
	if parent == nil {
		parent = d.Manager.Node()
	}
	return client.New(client.Config{
		Network:        d.Network,
		Addr:           d.nextAddrInZone(zone),
		Parent:         parent,
		DefaultTimeout: d.cfg.RequestTimeout,
		Retry:          d.cfg.Retry,
	})
}

// Run drives the network until idle.
func (d *Deployment) Run() { d.Network.RunUntilIdle(0) }

// RunFor drives the network for a span of virtual time (use for streams,
// which reschedule themselves and never go idle).
func (d *Deployment) RunFor(span time.Duration) {
	d.Network.RunUntil(d.Network.Now() + span)
}

// Quiesce drives the network until idle or until horizon of virtual time has
// elapsed, whichever comes first, reporting whether it went idle — the
// bounded drain to use when streams may be active (they reschedule forever,
// so Run would never return the network idle).
func (d *Deployment) Quiesce(horizon time.Duration) bool {
	return d.Network.RunUntilQuiesced(d.Network.Now() + horizon)
}

// Prefix returns the deployment's 48-bit network prefix.
func (d *Deployment) Prefix() netsim.NetworkPrefix { return d.prefix }

// Group returns the multicast group address for a peripheral type.
func (d *Deployment) Group(id hw.DeviceID) netip.Addr {
	return netsim.MulticastAddr(d.prefix, id)
}

// ---------------------------------------------------------------------------
// Standard peripheral device wrappers

// TMP36Device wires the simulated TMP36 to a channel's ADC.
type TMP36Device struct{ Env *bus.Environment }

// Attach implements thing.Device.
func (d *TMP36Device) Attach(ic *thing.Interconnects) error {
	ic.ADC.Connect(&bus.TMP36{Env: d.Env})
	return nil
}

// Detach implements thing.Device.
func (d *TMP36Device) Detach(ic *thing.Interconnects) { ic.ADC.Connect(nil) }

// HIH4030Device wires the simulated HIH-4030 to a channel's ADC.
type HIH4030Device struct{ Env *bus.Environment }

// Attach implements thing.Device.
func (d *HIH4030Device) Attach(ic *thing.Interconnects) error {
	ic.ADC.Connect(&bus.HIH4030{Env: d.Env})
	return nil
}

// Detach implements thing.Device.
func (d *HIH4030Device) Detach(ic *thing.Interconnects) { ic.ADC.Connect(nil) }

// BMP180Device wires the simulated BMP180 to a channel's I²C bus.
type BMP180Device struct {
	Env *bus.Environment
	dev *bus.BMP180
}

// Attach implements thing.Device.
func (d *BMP180Device) Attach(ic *thing.Interconnects) error {
	d.dev = bus.NewBMP180(d.Env)
	return ic.I2C.Attach(d.dev)
}

// Detach implements thing.Device.
func (d *BMP180Device) Detach(ic *thing.Interconnects) {
	if d.dev != nil {
		ic.I2C.Detach(d.dev.I2CAddr())
		d.dev = nil
	}
}

// RFIDDevice wires the simulated ID-20LA reader to a channel's UART. Present
// cards with PresentCard; remember to Pump the Thing afterwards so the
// driver consumes the bytes.
type RFIDDevice struct {
	reader *bus.ID20LA
}

// Attach implements thing.Device.
func (d *RFIDDevice) Attach(ic *thing.Interconnects) error {
	d.reader = bus.NewID20LA(ic.UART)
	return nil
}

// Detach implements thing.Device.
func (d *RFIDDevice) Detach(ic *thing.Interconnects) { d.reader = nil }

// PresentCard simulates a card entering the reader's field.
func (d *RFIDDevice) PresentCard(cardID string) error {
	if d.reader == nil {
		return fmt.Errorf("core: RFID reader not attached")
	}
	return d.reader.PresentCard(cardID)
}

// ---------------------------------------------------------------------------
// Plug helpers for the four evaluation peripherals

func (d *Deployment) plug(t *thing.Thing, ch int, id hw.DeviceID, b hw.BusKind, dev thing.Device) error {
	p, err := hw.NewPeripheral(hw.PeripheralSpec{ID: id, Bus: b})
	if err != nil {
		return err
	}
	return t.Plug(ch, p, dev)
}

// PlugTMP36 plugs a TMP36 temperature sensor into a channel.
func (d *Deployment) PlugTMP36(t *thing.Thing, ch int) error {
	return d.plug(t, ch, driver.IDTMP36, hw.BusADC, &TMP36Device{Env: d.Env})
}

// PlugHIH4030 plugs an HIH-4030 humidity sensor into a channel.
func (d *Deployment) PlugHIH4030(t *thing.Thing, ch int) error {
	return d.plug(t, ch, driver.IDHIH4030, hw.BusADC, &HIH4030Device{Env: d.Env})
}

// PlugBMP180 plugs a BMP180 pressure sensor into a channel.
func (d *Deployment) PlugBMP180(t *thing.Thing, ch int) error {
	return d.plug(t, ch, driver.IDBMP180, hw.BusI2C, &BMP180Device{Env: d.Env})
}

// PlugRFID plugs an ID-20LA RFID reader into a channel and returns the
// device handle for presenting cards.
func (d *Deployment) PlugRFID(t *thing.Thing, ch int) (*RFIDDevice, error) {
	dev := &RFIDDevice{}
	if err := d.plug(t, ch, driver.IDID20LA, hw.BusUART, dev); err != nil {
		return nil, err
	}
	return dev, nil
}

// ADXLDevice wires the simulated ADXL345 to a channel's SPI bus.
type ADXLDevice struct{ Env *bus.Environment }

// Attach implements thing.Device.
func (d *ADXLDevice) Attach(ic *thing.Interconnects) error {
	ic.SPI.Connect(bus.NewADXL345(d.Env))
	return nil
}

// Detach implements thing.Device.
func (d *ADXLDevice) Detach(ic *thing.Interconnects) { ic.SPI.Connect(nil) }

// PlugADXL345 plugs the extension accelerometer into a channel.
func (d *Deployment) PlugADXL345(t *thing.Thing, ch int) error {
	return d.plug(t, ch, driver.IDADXL345, hw.BusSPI, &ADXLDevice{Env: d.Env})
}

// RelayDevice wires the simulated PCF8574 relay bank to a channel's I²C bus.
type RelayDevice struct {
	relay *bus.PCF8574Relay
}

// Attach implements thing.Device.
func (d *RelayDevice) Attach(ic *thing.Interconnects) error {
	d.relay = &bus.PCF8574Relay{}
	return ic.I2C.Attach(d.relay)
}

// Detach implements thing.Device.
func (d *RelayDevice) Detach(ic *thing.Interconnects) {
	if d.relay != nil {
		ic.I2C.Detach(d.relay.I2CAddr())
		d.relay = nil
	}
}

// State exposes the relay outputs (bit i = relay i energised).
func (d *RelayDevice) State() byte {
	if d.relay == nil {
		return 0
	}
	return d.relay.State()
}

// PlugRelay plugs the extension relay bank into a channel and returns the
// device handle for observing the outputs.
func (d *Deployment) PlugRelay(t *thing.Thing, ch int) (*RelayDevice, error) {
	dev := &RelayDevice{}
	if err := d.plug(t, ch, driver.IDRelay, hw.BusI2C, dev); err != nil {
		return nil, err
	}
	return dev, nil
}
