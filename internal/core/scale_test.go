package core

import (
	"fmt"
	"testing"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/thing"
)

// TestTwentyThingDeployment exercises the system at deployment scale: 20
// Things across a 3-level tree, all plugging peripherals, one client
// discovering and reading everything.
func TestTwentyThingDeployment(t *testing.T) {
	d := newDeployment(t)
	cl, _ := d.AddClient()

	things := make([]*thingRef, 0, 20)
	parent := d.Manager.Node()
	for i := 0; i < 20; i++ {
		th, err := d.AddThingAt(fmt.Sprintf("n%d", i), parent)
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			parent = th.Node() // deepen the tree every 7 things
		}
		var plugErr error
		switch i % 3 {
		case 0:
			plugErr = d.PlugTMP36(th, 0)
		case 1:
			plugErr = d.PlugHIH4030(th, 0)
		case 2:
			plugErr = d.PlugBMP180(th, 0)
		}
		if plugErr != nil {
			t.Fatal(plugErr)
		}
		things = append(things, &thingRef{th: th, kind: i % 3})
	}
	d.Run()

	// Every plug-in completed.
	for i, ref := range things {
		trs := ref.th.Traces()
		if len(trs) != 1 || !trs[0].Done {
			t.Fatalf("thing %d: trace = %+v", i, trs)
		}
	}
	// The manager uploaded each driver exactly once per thing that needed it.
	if ups := d.Manager.Uploads(); ups != 20 {
		t.Fatalf("uploads = %d, want 20", ups)
	}
	// Discovery by type finds the right subset.
	cl.Discover(driver.IDTMP36, 0, nil)
	d.Run()
	if got := len(cl.Things(driver.IDTMP36)); got != 7 {
		t.Fatalf("TMP36 things = %d, want 7", got)
	}

	// Read every BMP180 in the deployment.
	reads := 0
	for _, ref := range things {
		if ref.kind != 2 {
			continue
		}
		cl.Read(ref.th.Addr(), driver.IDBMP180, 0, func(v []int32, err error) {
			if err == nil && len(v) == 2 {
				reads++
			}
		})
	}
	d.Run()
	if reads != 6 {
		t.Fatalf("BMP180 reads = %d, want 6", reads)
	}
}

type thingRef struct {
	th   *thing.Thing
	kind int
}

// TestStreamMultipleSubscribers: two clients subscribe to the same
// peripheral stream; both receive the data via the shared multicast group,
// and the closed notification reaches both.
func TestStreamMultipleSubscribers(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{StreamPeriod: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := d.AddThing("src")
	c1, _ := d.AddClient()
	c2, _ := d.AddClient()
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	var got1, got2, closed1, closed2 int
	c1.Subscribe(th.Addr(), driver.IDTMP36, client.SubscribeOptions{
		OnData: func([]int32) { got1++ }, OnClosed: func() { closed1++ },
	})
	c2.Subscribe(th.Addr(), driver.IDTMP36, client.SubscribeOptions{
		OnData: func([]int32) { got2++ }, OnClosed: func() { closed2++ },
	})
	d.RunFor(16 * time.Second)

	if got1 < 2 || got2 < 2 {
		t.Fatalf("stream data: c1=%d c2=%d, want >= 2 each", got1, got2)
	}
	th.StopStream(driver.IDTMP36)
	d.Run()
	if closed1 != 1 || closed2 != 1 {
		t.Fatalf("closed: c1=%d c2=%d", closed1, closed2)
	}
}

// TestThreePeripheralsOneBoard fills all three channels of one board and
// reads each concurrently-registered driver.
func TestThreePeripheralsOneBoard(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("full")
	cl, _ := d.AddClient()
	d.Env.Set(19.5, 61, 99_000)
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugHIH4030(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugBMP180(th, 2); err != nil {
		t.Fatal(err)
	}
	d.Run()

	if got := len(th.InstalledDrivers()); got != 3 {
		t.Fatalf("installed = %d drivers", got)
	}
	results := map[hw.DeviceID][]int32{}
	for _, id := range []hw.DeviceID{driver.IDTMP36, driver.IDHIH4030, driver.IDBMP180} {
		id := id
		cl.Read(th.Addr(), id, 0, func(v []int32, err error) {
			if err == nil {
				results[id] = v
			}
		})
	}
	d.Run()
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	if temp := results[driver.IDTMP36]; len(temp) != 1 || temp[0] < 185 || temp[0] > 205 {
		t.Errorf("TMP36 = %v", temp)
	}
	if rh := results[driver.IDHIH4030]; len(rh) != 1 || rh[0] < 570 || rh[0] > 650 {
		t.Errorf("HIH4030 = %v", rh)
	}
	if p := results[driver.IDBMP180]; len(p) != 2 || p[1] < 98_950 || p[1] > 99_050 {
		t.Errorf("BMP180 = %v", p)
	}
}

// ---------------------------------------------------------------------------
// Parameterized large-scale topologies. -short keeps the quick 100-Thing
// run for every leg; the full suite (plain `go test`, and CI's push-to-main
// leg) climbs to 1,000 and 5,000 Things.

// scaleSizes returns the Thing counts the parameterized scale tests cover.
func scaleSizes() []int {
	if testing.Short() {
		return []int{100}
	}
	return []int{100, 1000, 5000}
}

// plugKind plugs one of the three round-robin sensor kinds used by the
// scale topologies (kind = i % 3, matching thingRef.kind).
func (d *Deployment) plugKind(th *thing.Thing, kind int) error {
	switch kind % 3 {
	case 0:
		return d.PlugTMP36(th, 0)
	case 1:
		return d.PlugHIH4030(th, 0)
	default:
		return d.PlugBMP180(th, 0)
	}
}

// buildScaleThings attaches n Things with round-robin peripherals. The
// nextParent callback picks each Thing's tree parent, shaping the topology.
func buildScaleThings(t testing.TB, d *Deployment, n int, nextParent func(i int, prev *thing.Thing) *netsim.Node) []*thingRef {
	t.Helper()
	things := make([]*thingRef, 0, n)
	var prev *thing.Thing
	for i := 0; i < n; i++ {
		th, err := d.AddThingAt(fmt.Sprintf("n%d", i), nextParent(i, prev))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.plugKind(th, i%3); err != nil {
			t.Fatal(err)
		}
		things = append(things, &thingRef{th: th, kind: i % 3})
		prev = th
	}
	return things
}

// assertScaleDeployment checks the invariants every topology must satisfy
// after the plug-in sequences drained: all traces complete, drivers served,
// discovery counts per kind, and working reads. timeout bounds discovery
// and reads (0 = the client default) — trees deeper than ~40 hops need a
// generous virtual deadline, since replies take seconds of virtual time to
// climb back. exactUploads is false for such trees: round trips beyond
// DriverRequestTimeout legitimately trigger retransmissions, so the manager
// serves more uploads than Things.
func assertScaleDeployment(t *testing.T, d *Deployment, cl *client.Client, things []*thingRef, timeout time.Duration, exactUploads bool) {
	t.Helper()
	n := len(things)
	for i, ref := range things {
		trs := ref.th.Traces()
		if len(trs) != 1 || !trs[0].Done {
			t.Fatalf("thing %d: plug-in did not complete: %+v", i, trs)
		}
	}
	if ups := d.Manager.Uploads(); ups != n && (exactUploads || ups < n) {
		t.Fatalf("uploads = %d, want %s%d", ups, map[bool]string{true: "", false: ">= "}[exactUploads], n)
	}
	counts := map[int]int{}
	for _, ref := range things {
		counts[ref.kind]++
	}
	for kind, id := range map[int]hw.DeviceID{0: driver.IDTMP36, 1: driver.IDHIH4030, 2: driver.IDBMP180} {
		got := -1
		cl.Discover(id, timeout, func(ads []client.Advert) { got = len(ads) })
		d.Run()
		if got != counts[kind] {
			t.Fatalf("discovery of kind %d found %d things, want %d", kind, got, counts[kind])
		}
	}
	// Read a spread of BMP180s across the topology (front, middle, back).
	reads := 0
	sample := []int{}
	for _, i := range []int{2, n / 2, n - 3} {
		for ; i < n && things[i].kind != 2; i++ {
		}
		if i < n {
			sample = append(sample, i)
		}
	}
	for _, i := range sample {
		cl.Read(things[i].th.Addr(), driver.IDBMP180, timeout, func(v []int32, err error) {
			if err == nil && len(v) == 2 {
				reads++
			}
		})
	}
	d.Run()
	if reads != len(sample) {
		t.Fatalf("reads = %d, want %d", reads, len(sample))
	}
	if st := d.Network.Stats(); st.NoHandler != 0 {
		t.Fatalf("NoHandler = %d; scale traffic must only hit bound ports", st.NoHandler)
	}
}

// TestScaleDeepTree: chains that deepen every 10 Things, giving tree depths
// up to 500 at 5,000 Things — the worst case for per-pair path length.
func TestScaleDeepTree(t *testing.T) {
	for _, n := range scaleSizes() {
		t.Run(fmt.Sprintf("things=%d", n), func(t *testing.T) {
			d := newDeployment(t)
			cl, err := d.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			parent := d.Manager.Node()
			things := buildScaleThings(t, d, n, func(i int, prev *thing.Thing) *netsim.Node {
				if i > 0 && i%10 == 0 {
					parent = prev.Node() // deepen the chain every 10 Things
				}
				return parent
			})
			d.Run()
			// Depth reaches n/10 hops: replies take minutes of virtual
			// time, and driver round trips exceed the retransmission
			// timeout (duplicate uploads are expected protocol behavior).
			assertScaleDeployment(t, d, cl, things, time.Hour, false)
		})
	}
}

// TestScaleWideFanout: every Thing one hop from the manager — the worst
// case for group fan-out (a discovery reaches every member in one hop).
func TestScaleWideFanout(t *testing.T) {
	for _, n := range scaleSizes() {
		t.Run(fmt.Sprintf("things=%d", n), func(t *testing.T) {
			d := newDeployment(t)
			cl, err := d.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			things := buildScaleThings(t, d, n, func(int, *thing.Thing) *netsim.Node {
				return d.Manager.Node()
			})
			d.Run()
			assertScaleDeployment(t, d, cl, things, 0, true)
		})
	}
}

// TestScaleMultiGroupMix: three branch subtrees, one sensor kind per
// branch, clients attached at different tree positions — exercises several
// multicast groups concurrently plus discovery from non-root vantage
// points.
func TestScaleMultiGroupMix(t *testing.T) {
	for _, n := range scaleSizes() {
		t.Run(fmt.Sprintf("things=%d", n), func(t *testing.T) {
			d := newDeployment(t)
			branchRoots := make([]*netsim.Node, 3)
			branchParents := make([]*netsim.Node, 3)
			things := make([]*thingRef, 0, n)
			for i := 0; i < n; i++ {
				branch := i % 3
				parent := branchParents[branch]
				if parent == nil {
					parent = d.Manager.Node()
				}
				th, err := d.AddThingAt(fmt.Sprintf("b%dn%d", branch, i), parent)
				if err != nil {
					t.Fatal(err)
				}
				if branchRoots[branch] == nil {
					branchRoots[branch] = th.Node()
				}
				if (i/3)%20 == 19 {
					branchParents[branch] = th.Node() // deepen each branch every 20
				} else if branchParents[branch] == nil {
					branchParents[branch] = branchRoots[branch]
				}
				// One kind per branch: branch b holds only kind b.
				if err := d.plugKind(th, branch); err != nil {
					t.Fatal(err)
				}
				things = append(things, &thingRef{th: th, kind: branch})
			}
			// One client at the root, one deep inside branch 0.
			clRoot, err := d.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			clDeep, err := d.AddClientAt(branchRoots[0])
			if err != nil {
				t.Fatal(err)
			}
			d.Run()

			counts := map[int]int{}
			for _, ref := range things {
				counts[ref.kind]++
			}
			ids := map[int]hw.DeviceID{0: driver.IDTMP36, 1: driver.IDHIH4030, 2: driver.IDBMP180}
			// Branches reach ~n/60 hops deep; give replies the virtual
			// time to climb back before the discovery deadline.
			for _, cl := range []*client.Client{clRoot, clDeep} {
				for kind, id := range ids {
					got := -1
					cl.Discover(id, time.Hour, func(ads []client.Advert) { got = len(ads) })
					d.Run()
					if got != counts[kind] {
						t.Fatalf("kind %d: discovered %d, want %d", kind, got, counts[kind])
					}
				}
			}
		})
	}
}

// TestScaleChurnHotSwap: a populated deployment where every 10th Thing
// hot-swaps its peripheral (TMP36 out, BMP180 in). Group membership, plans
// and discovery results must all track the churn.
func TestScaleChurnHotSwap(t *testing.T) {
	for _, n := range scaleSizes() {
		t.Run(fmt.Sprintf("things=%d", n), func(t *testing.T) {
			d := newDeployment(t)
			cl, err := d.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			parent := d.Manager.Node()
			things := make([]*thing.Thing, 0, n)
			for i := 0; i < n; i++ {
				th, err := d.AddThingAt(fmt.Sprintf("n%d", i), parent)
				if err != nil {
					t.Fatal(err)
				}
				if i > 0 && i%25 == 0 {
					parent = th.Node()
				}
				if err := d.PlugTMP36(th, 0); err != nil {
					t.Fatal(err)
				}
				things = append(things, th)
			}
			d.Run()

			swapped := 0
			for i := 0; i < n; i += 10 {
				if err := things[i].Unplug(0); err != nil {
					t.Fatal(err)
				}
				swapped++
			}
			d.Run()
			for i := 0; i < n; i += 10 {
				if err := d.PlugBMP180(things[i], 0); err != nil {
					t.Fatal(err)
				}
			}
			d.Run()

			tmpGroup := d.Group(driver.IDTMP36)
			bmpGroup := d.Group(driver.IDBMP180)
			for i := 0; i < n; i += 10 {
				if trs := things[i].Traces(); len(trs) != 2 || !trs[1].Done {
					t.Fatalf("thing %d: swap trace incomplete: %+v", i, trs)
				}
				if nd := things[i].Node(); nd.InGroup(tmpGroup) || !nd.InGroup(bmpGroup) {
					t.Fatalf("thing %d: group membership did not follow the hot-swap", i)
				}
			}
			gotTMP, gotBMP := -1, -1
			cl.Discover(driver.IDTMP36, time.Hour, func(ads []client.Advert) { gotTMP = len(ads) })
			d.Run()
			cl.Discover(driver.IDBMP180, time.Hour, func(ads []client.Advert) { gotBMP = len(ads) })
			d.Run()
			if gotTMP != n-swapped || gotBMP != swapped {
				t.Fatalf("post-churn discovery: TMP36=%d (want %d) BMP180=%d (want %d)",
					gotTMP, n-swapped, gotBMP, swapped)
			}
		})
	}
}
