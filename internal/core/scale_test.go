package core

import (
	"fmt"
	"testing"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/thing"
)

// TestTwentyThingDeployment exercises the system at deployment scale: 20
// Things across a 3-level tree, all plugging peripherals, one client
// discovering and reading everything.
func TestTwentyThingDeployment(t *testing.T) {
	d := newDeployment(t)
	cl, _ := d.AddClient()

	things := make([]*thingRef, 0, 20)
	parent := d.Manager.Node()
	for i := 0; i < 20; i++ {
		th, err := d.AddThingAt(fmt.Sprintf("n%d", i), parent)
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 6 {
			parent = th.Node() // deepen the tree every 7 things
		}
		var plugErr error
		switch i % 3 {
		case 0:
			plugErr = d.PlugTMP36(th, 0)
		case 1:
			plugErr = d.PlugHIH4030(th, 0)
		case 2:
			plugErr = d.PlugBMP180(th, 0)
		}
		if plugErr != nil {
			t.Fatal(plugErr)
		}
		things = append(things, &thingRef{th: th, kind: i % 3})
	}
	d.Run()

	// Every plug-in completed.
	for i, ref := range things {
		trs := ref.th.Traces()
		if len(trs) != 1 || !trs[0].Done {
			t.Fatalf("thing %d: trace = %+v", i, trs)
		}
	}
	// The manager uploaded each driver exactly once per thing that needed it.
	if ups := d.Manager.Uploads(); ups != 20 {
		t.Fatalf("uploads = %d, want 20", ups)
	}
	// Discovery by type finds the right subset.
	cl.Discover(driver.IDTMP36, 0, nil)
	d.Run()
	if got := len(cl.Things(driver.IDTMP36)); got != 7 {
		t.Fatalf("TMP36 things = %d, want 7", got)
	}

	// Read every BMP180 in the deployment.
	reads := 0
	for _, ref := range things {
		if ref.kind != 2 {
			continue
		}
		cl.Read(ref.th.Addr(), driver.IDBMP180, 0, func(v []int32, err error) {
			if err == nil && len(v) == 2 {
				reads++
			}
		})
	}
	d.Run()
	if reads != 6 {
		t.Fatalf("BMP180 reads = %d, want 6", reads)
	}
}

type thingRef struct {
	th   *thing.Thing
	kind int
}

// TestStreamMultipleSubscribers: two clients subscribe to the same
// peripheral stream; both receive the data via the shared multicast group,
// and the closed notification reaches both.
func TestStreamMultipleSubscribers(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{StreamPeriod: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := d.AddThing("src")
	c1, _ := d.AddClient()
	c2, _ := d.AddClient()
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	var got1, got2, closed1, closed2 int
	c1.Subscribe(th.Addr(), driver.IDTMP36, client.SubscribeOptions{
		OnData: func([]int32) { got1++ }, OnClosed: func() { closed1++ },
	})
	c2.Subscribe(th.Addr(), driver.IDTMP36, client.SubscribeOptions{
		OnData: func([]int32) { got2++ }, OnClosed: func() { closed2++ },
	})
	d.RunFor(16 * time.Second)

	if got1 < 2 || got2 < 2 {
		t.Fatalf("stream data: c1=%d c2=%d, want >= 2 each", got1, got2)
	}
	th.StopStream(driver.IDTMP36)
	d.Run()
	if closed1 != 1 || closed2 != 1 {
		t.Fatalf("closed: c1=%d c2=%d", closed1, closed2)
	}
}

// TestThreePeripheralsOneBoard fills all three channels of one board and
// reads each concurrently-registered driver.
func TestThreePeripheralsOneBoard(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("full")
	cl, _ := d.AddClient()
	d.Env.Set(19.5, 61, 99_000)
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugHIH4030(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugBMP180(th, 2); err != nil {
		t.Fatal(err)
	}
	d.Run()

	if got := len(th.InstalledDrivers()); got != 3 {
		t.Fatalf("installed = %d drivers", got)
	}
	results := map[hw.DeviceID][]int32{}
	for _, id := range []hw.DeviceID{driver.IDTMP36, driver.IDHIH4030, driver.IDBMP180} {
		id := id
		cl.Read(th.Addr(), id, 0, func(v []int32, err error) {
			if err == nil {
				results[id] = v
			}
		})
	}
	d.Run()
	if len(results) != 3 {
		t.Fatalf("results = %v", results)
	}
	if temp := results[driver.IDTMP36]; len(temp) != 1 || temp[0] < 185 || temp[0] > 205 {
		t.Errorf("TMP36 = %v", temp)
	}
	if rh := results[driver.IDHIH4030]; len(rh) != 1 || rh[0] < 570 || rh[0] > 650 {
		t.Errorf("HIH4030 = %v", rh)
	}
	if p := results[driver.IDBMP180]; len(p) != 2 || p[1] < 98_950 || p[1] > 99_050 {
		t.Errorf("BMP180 = %v", p)
	}
}
