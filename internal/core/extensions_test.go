package core

import (
	"testing"

	"micropnp/internal/bus"
	"micropnp/internal/driver"
	"micropnp/internal/dsl"
	"micropnp/internal/hw"
	"micropnp/internal/thing"
)

// structuredRepo builds a repository holding the standard drivers plus two
// structured-namespace temperature sensors from different vendors (the
// TMP36 driver source reused under new identifiers).
func structuredRepo(t *testing.T) (*driver.Repository, hw.DeviceID, hw.DeviceID) {
	t.Helper()
	repo, err := driver.StandardRepository()
	if err != nil {
		t.Fatal(err)
	}
	src, err := driver.Source(driver.StandardDrivers[0]) // TMP36
	if err != nil {
		t.Fatal(err)
	}
	idA, err := hw.MakeStructuredID(0x0042, hw.ClassTemperature, 0x01)
	if err != nil {
		t.Fatal(err)
	}
	idB, err := hw.MakeStructuredID(0x0099, hw.ClassTemperature, 0x07)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []hw.DeviceID{idA, idB} {
		prog, err := dsl.Compile(src, uint32(id))
		if err != nil {
			t.Fatal(err)
		}
		code, _ := prog.Encode()
		if err := repo.Reserve(id, "structured-temp", hw.BusADC); err != nil {
			t.Fatal(err)
		}
		if err := repo.Upload(id, code, src); err != nil {
			t.Fatal(err)
		}
	}
	return repo, idA, idB
}

// TestClassDiscovery exercises the §9 hierarchical-typing extension: a
// client finds temperature sensors from two different vendors with one
// class-wildcard discovery.
func TestClassDiscovery(t *testing.T) {
	repo, idA, idB := structuredRepo(t)
	d, err := NewDeployment(DeploymentConfig{Repository: repo})
	if err != nil {
		t.Fatal(err)
	}
	t1, err := d.AddZonedThing("hall", 1)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := d.AddZonedThing("lab", 2)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := d.AddClient()

	if err := d.PlugCustom(t1, 0, idA, hw.BusADC, &TMP36Device{Env: d.Env}); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugCustom(t2, 0, idB, hw.BusADC, &TMP36Device{Env: d.Env}); err != nil {
		t.Fatal(err)
	}
	d.Run()

	before := len(cl.Adverts())
	cl.DiscoverClass(hw.ClassTemperature, 0, nil)
	d.Run()

	var fromA, fromB bool
	for _, a := range cl.Adverts()[before:] {
		if !a.Solicited {
			continue
		}
		switch a.Thing {
		case t1.Addr():
			fromA = true
		case t2.Addr():
			fromB = true
		}
	}
	if !fromA || !fromB {
		t.Fatalf("class discovery must reach both vendors: A=%v B=%v", fromA, fromB)
	}

	// A vendor-exact discovery still only reaches that vendor's sensor.
	before = len(cl.Adverts())
	cl.Discover(idA, 0, nil)
	d.Run()
	for _, a := range cl.Adverts()[before:] {
		if a.Solicited && a.Thing == t2.Addr() {
			t.Fatal("exact discovery must not reach the other vendor")
		}
	}
}

// TestZoneDiscovery exercises the §9 location-aware multicast extension.
func TestZoneDiscovery(t *testing.T) {
	repo, idA, idB := structuredRepo(t)
	d, err := NewDeployment(DeploymentConfig{Repository: repo})
	if err != nil {
		t.Fatal(err)
	}
	hall, _ := d.AddZonedThing("hall", 1)
	lab, _ := d.AddZonedThing("lab", 2)
	cl, _ := d.AddClient()

	if err := d.PlugCustom(hall, 0, idA, hw.BusADC, &TMP36Device{Env: d.Env}); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugCustom(lab, 0, idB, hw.BusADC, &TMP36Device{Env: d.Env}); err != nil {
		t.Fatal(err)
	}
	d.Run()

	// Zone-scoped all-peripherals discovery: only zone 1's thing answers.
	before := len(cl.Adverts())
	cl.DiscoverInZone(1, hw.DeviceIDAllPeripherals, 0, nil)
	d.Run()
	solicited := 0
	for _, a := range cl.Adverts()[before:] {
		if a.Solicited {
			solicited++
			if a.Thing != hall.Addr() {
				t.Fatalf("zone 1 discovery answered by %v", a.Thing)
			}
		}
	}
	if solicited != 1 {
		t.Fatalf("zone discovery got %d solicited adverts, want 1", solicited)
	}

	// Zone + class discovery composes.
	before = len(cl.Adverts())
	cl.DiscoverInZone(2, hw.ClassWildcard(hw.ClassTemperature), 0, nil)
	d.Run()
	solicited = 0
	for _, a := range cl.Adverts()[before:] {
		if a.Solicited {
			solicited++
			if a.Thing != lab.Addr() {
				t.Fatalf("zone 2 class discovery answered by %v", a.Thing)
			}
		}
	}
	if solicited != 1 {
		t.Fatalf("zone+class discovery got %d adverts, want 1", solicited)
	}
}

// TestLossyDriverInstallRetries exercises the retransmission extension: with
// heavy frame loss the install request or upload can vanish; the Thing must
// retry and eventually complete the plug-in.
func TestLossyDriverInstallRetries(t *testing.T) {
	completed := false
	for seed := int64(1); seed <= 5 && !completed; seed++ {
		d, err := NewDeployment(DeploymentConfig{LossRate: 0.35, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		th, err := d.AddThing("lossy")
		if err != nil {
			t.Fatal(err)
		}
		if err := d.PlugTMP36(th, 0); err != nil {
			t.Fatal(err)
		}
		d.Run()
		if len(th.Traces()) == 1 && th.Traces()[0].Done {
			completed = true
			// With retries, the request phase may exceed the lossless one.
			if th.Runtime(driver.IDTMP36) == nil {
				t.Fatal("driver must be active after a completed trace")
			}
		}
	}
	if !completed {
		t.Fatal("no plug-in completed under 35% loss across 5 seeds; retransmission is broken")
	}
}

// TestTotalLossNeverCompletes documents the bound: with 100% loss the Thing
// retries MaxDriverRequests times and gives up cleanly (no hang, no crash).
func TestTotalLossNeverCompletes(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{LossRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	th, err := d.AddThing("void")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	steps := d.Network.RunUntilIdle(0)
	if steps >= 1_000_000 {
		t.Fatal("network must go idle after bounded retries")
	}
	if th.Traces()[0].Done {
		t.Fatal("plug-in cannot complete with 100% loss")
	}
	if th.Runtime(driver.IDTMP36) != nil {
		t.Fatal("no driver can be active")
	}
	_ = thing.MaxDriverRequests
	_ = bus.NewEnvironment
}
