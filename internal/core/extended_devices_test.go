package core

import (
	"math"
	"testing"

	"micropnp/internal/driver"
	"micropnp/internal/hw"
)

// TestADXL345RemoteRead runs the SPI extension driver end to end: plug,
// OTA install, remote read of the three axes in milli-g.
func TestADXL345RemoteRead(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("mover")
	cl, _ := d.AddClient()
	d.Env.SetAcceleration(0.25, -0.5, 1.0)
	if err := d.PlugADXL345(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	var got []int32
	cl.Read(th.Addr(), driver.IDADXL345, 0, func(v []int32, err error) {
		if err == nil {
			got = v
		}
	})
	d.Run()
	if len(got) != 3 {
		t.Fatalf("axes = %v", got)
	}
	want := []float64{250, -500, 1000} // mg
	for i, w := range want {
		// 3.9 mg/LSB quantisation plus integer scaling: allow ±8 mg.
		if math.Abs(float64(got[i])-w) > 8 {
			t.Errorf("axis %d = %d mg, want ~%.0f", i, got[i], w)
		}
	}
}

// TestRelayWriteActuatesHardware runs the write path onto a real (simulated)
// actuator: the client's write energises the relay outputs.
func TestRelayWriteActuatesHardware(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("panel")
	cl, _ := d.AddClient()
	relay, err := d.PlugRelay(th, 1)
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	acked := false
	cl.Write(th.Addr(), driver.IDRelay, []int32{0b1010_0101}, 0, func(err error) { acked = err == nil })
	d.Run()
	if !acked {
		t.Fatal("write must be acknowledged")
	}
	if relay.State() != 0b1010_0101 {
		t.Fatalf("relay outputs = %08b, want 10100101", relay.State())
	}

	// Remote read reflects the hardware state.
	var got []int32
	cl.Read(th.Addr(), driver.IDRelay, 0, func(v []int32, err error) {
		if err == nil {
			got = v
		}
	})
	d.Run()
	if len(got) != 1 || got[0] != 0b1010_0101 {
		t.Fatalf("read-back = %v", got)
	}
}

// TestExtendedDriversAreStructured documents the namespace allocation of the
// extension peripherals.
func TestExtendedDriversAreStructured(t *testing.T) {
	s := driver.IDADXL345.Structured()
	if s.Class != hw.ClassAccelerometer || s.Vendor == 0 {
		t.Fatalf("ADXL345 structured ID = %+v", s)
	}
	s = driver.IDRelay.Structured()
	if s.Class != hw.ClassActuatorRelay || s.Vendor == 0 {
		t.Fatalf("relay structured ID = %+v", s)
	}
}

// TestClassDiscoveryFindsExtensionDevices composes the extensions: a zoned
// Thing serving the accelerometer answers a class-wildcard discovery.
func TestClassDiscoveryFindsExtensionDevices(t *testing.T) {
	d := newDeployment(t)
	th, err := d.AddZonedThing("wing-a", 3)
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := d.AddClient()
	if err := d.PlugADXL345(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	before := len(cl.Adverts())
	cl.DiscoverClass(hw.ClassAccelerometer, 0, nil)
	d.Run()
	found := false
	for _, a := range cl.Adverts()[before:] {
		if a.Solicited && a.Peripheral.ID == driver.IDADXL345 {
			found = true
		}
	}
	if !found {
		t.Fatal("class discovery must find the accelerometer")
	}
}
