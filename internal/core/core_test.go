package core

import (
	"errors"
	"testing"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/thing"
)

func newDeployment(t *testing.T) *Deployment {
	t.Helper()
	d, err := NewDeployment(DeploymentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestPlugAndPlayEndToEnd is the paper's headline scenario: plug a
// peripheral into a Thing, let identification + OTA driver install +
// advertisement run, then read the sensor remotely.
func TestPlugAndPlayEndToEnd(t *testing.T) {
	d := newDeployment(t)
	th, err := d.AddThing("lab-node")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}

	d.Env.Set(24.0, 40, 101_325)
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	// The manager must have served exactly one driver upload.
	if d.Manager.Uploads() != 1 {
		t.Fatalf("uploads = %d, want 1", d.Manager.Uploads())
	}
	// The client must have seen the unsolicited advertisement.
	things := cl.Things(driver.IDTMP36)
	if len(things) != 1 || things[0] != th.Addr() {
		t.Fatalf("client sees things %v", things)
	}
	// And the advertisement must carry the TLV metadata.
	adv := cl.Adverts()[0]
	if name, ok := adv.Peripheral.TLVString(1); !ok || name != "lab-node" {
		t.Errorf("advert name TLV = %q, %v", name, ok)
	}

	// The advertisement also carries the units TLV for typed readings.
	if units, ok := adv.Peripheral.TLVString(4); !ok || units != "0.1°C" {
		t.Errorf("advert units TLV = %q, %v", units, ok)
	}

	// Remote read.
	var got []int32
	cl.Read(th.Addr(), driver.IDTMP36, 0, func(v []int32, err error) {
		if err == nil {
			got = v
		}
	})
	d.Run()
	if len(got) != 1 {
		t.Fatalf("read returned %v", got)
	}
	if got[0] < 230 || got[0] > 250 {
		t.Fatalf("temperature = %d tenths °C, want ~240", got[0])
	}
}

// TestPluginTraceMatchesTable4 checks the per-phase timings of the plug-in
// sequence against the Table 4 ballpark (one-hop, uncongested).
func TestPluginTraceMatchesTable4(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("node")
	// Table 4's install row is for a small (80-byte) driver; the TMP36
	// driver is the closest of the shipped set.
	if err := d.PlugTMP36(th, 1); err != nil {
		t.Fatal(err)
	}
	d.Run()

	traces := th.Traces()
	if len(traces) != 1 || !traces[0].Done {
		t.Fatalf("traces = %+v", traces)
	}
	tr := traces[0]
	check := func(name string, got, lo, hi time.Duration) {
		if got < lo || got > hi {
			t.Errorf("%s = %v, want in [%v, %v]", name, got, lo, hi)
		}
	}
	check("identification", tr.Identification, 220*time.Millisecond, 300*time.Millisecond)
	check("generate addr", tr.GenerateAddr, 2*time.Millisecond, 4*time.Millisecond)
	check("join group", tr.JoinGroup, 4*time.Millisecond, 7*time.Millisecond)
	check("request driver", tr.RequestDriver, 40*time.Millisecond, 70*time.Millisecond)
	check("install driver", tr.InstallDriver, 40*time.Millisecond, 80*time.Millisecond)
	check("advertise", tr.Advertise, 35*time.Millisecond, 60*time.Millisecond)
	// Section 8: complete process ≈ 488.53 ms in a one-hop network.
	check("total", tr.Total, 380*time.Millisecond, 600*time.Millisecond)
	if tr.Energy < 2.3e-3 || tr.Energy > 7e-3 {
		t.Errorf("identification energy = %v J", float64(tr.Energy))
	}
}

func TestDiscoveryFiltersByType(t *testing.T) {
	d := newDeployment(t)
	t1, _ := d.AddThing("t1")
	t2, _ := d.AddThing("t2")
	cl, _ := d.AddClient()
	if err := d.PlugBMP180(t1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugTMP36(t2, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	before := len(cl.Adverts()) // unsolicited adverts from both plugs
	cl.Discover(driver.IDBMP180, 0, nil)
	d.Run()

	got := 0
	for _, a := range cl.Adverts()[before:] {
		if a.Solicited {
			got++
			if a.Thing != t1.Addr() {
				t.Errorf("solicited advert from wrong thing %v", a.Thing)
			}
			if a.Peripheral.ID != driver.IDBMP180 {
				t.Errorf("solicited advert for wrong peripheral %v", a.Peripheral.ID)
			}
		}
	}
	if got != 1 {
		t.Fatalf("solicited adverts = %d, want 1", got)
	}
}

func TestDiscoverAllPeripherals(t *testing.T) {
	d := newDeployment(t)
	t1, _ := d.AddThing("t1")
	t2, _ := d.AddThing("t2")
	cl, _ := d.AddClient()
	if err := d.PlugTMP36(t1, 0); err != nil {
		t.Fatal(err)
	}
	if err := d.PlugHIH4030(t2, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	cl.Discover(hw.DeviceIDAllPeripherals, 0, nil)
	d.Run()
	if n := len(cl.Things(hw.DeviceIDAllPeripherals)); n != 2 {
		t.Fatalf("discovered %d things, want 2", n)
	}
}

func TestRFIDReadAcrossNetwork(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("door")
	cl, _ := d.AddClient()
	rfid, err := d.PlugRFID(th, 2)
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	var got []int32
	cl.Read(th.Addr(), driver.IDID20LA, 0, func(v []int32, err error) {
		if err == nil {
			got = v
		}
	})
	// Let the read reach the driver (it arms the UART); no card yet, so no
	// reply — and the driver's 500 ms timeout has not elapsed either.
	d.RunFor(100 * time.Millisecond)

	if got != nil {
		t.Fatal("read must stay pending until a card appears")
	}
	// A card enters the field; its bytes arrive over the (virtual) wire
	// and the driver returns the card ID across the network.
	if err := rfid.PresentCard("0415AB96C3"); err != nil {
		t.Fatal(err)
	}
	d.RunFor(300 * time.Millisecond)

	if len(got) != 12 {
		t.Fatalf("card payload = %v", got)
	}
	cardID := make([]byte, 10)
	for i := range cardID {
		cardID[i] = byte(got[i])
	}
	if string(cardID) != "0415AB96C3" {
		t.Fatalf("card = %q", cardID)
	}
}

// TestRFIDReadTimeoutThenRetry: a read the driver never answers (no card)
// expires on both sides — the client surfaces ErrTimeout AND the Thing
// drops its stale pending entry, so a retry read gets the fresh card
// instead of having its reply sent under the stale sequence number.
func TestRFIDReadTimeoutThenRetry(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("door")
	cl, _ := d.AddClient()
	rfid, err := d.PlugRFID(th, 0)
	if err != nil {
		t.Fatal(err)
	}
	d.Run()

	// First read: no card, the client's deadline passes.
	var firstErr error
	cl.Read(th.Addr(), driver.IDID20LA, 2*time.Second, func(_ []int32, err error) { firstErr = err })
	d.RunFor(thing.PendingReadTimeout + time.Second) // expire both sides
	if !errors.Is(firstErr, client.ErrTimeout) {
		t.Fatalf("no-card read = %v, want ErrTimeout", firstErr)
	}

	// Retry with a card present: must return this read's values.
	var got []int32
	var retryErr error
	cl.Read(th.Addr(), driver.IDID20LA, 0, func(v []int32, err error) { got, retryErr = v, err })
	d.RunFor(100 * time.Millisecond) // request arrives, UART armed
	if err := rfid.PresentCard("0415AB96C3"); err != nil {
		t.Fatal(err)
	}
	d.RunFor(300 * time.Millisecond)
	if retryErr != nil {
		t.Fatalf("retry read failed: %v", retryErr)
	}
	if len(got) != 12 {
		t.Fatalf("retry read = %v, want the 12-character card frame", got)
	}
}

func TestStreamLifecycle(t *testing.T) {
	d, err := NewDeployment(DeploymentConfig{StreamPeriod: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	th, _ := d.AddThing("node")
	cl, _ := d.AddClient()
	d.Env.Set(20, 40, 101_325)
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	var samples [][]int32
	closed := false
	cl.Subscribe(th.Addr(), driver.IDTMP36, client.SubscribeOptions{
		OnData:   func(v []int32) { samples = append(samples, v) },
		OnClosed: func() { closed = true },
	})
	d.RunFor(35 * time.Second) // 3 stream ticks

	if len(samples) != 3 {
		t.Fatalf("stream samples = %d, want 3", len(samples))
	}
	th.StopStream(driver.IDTMP36)
	d.Run()
	if !closed {
		t.Fatal("client must observe the closed message")
	}
	// After closing, no more data.
	n := len(samples)
	d.RunFor(30 * time.Second)
	if len(samples) != n {
		t.Fatal("stream must stop producing after close")
	}
}

func TestWriteToActuator(t *testing.T) {
	// Use the TMP36 driver as a stand-in: it has no write handler, so the
	// event is dropped but the ack must still come back.
	d := newDeployment(t)
	th, _ := d.AddThing("node")
	cl, _ := d.AddClient()
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	acked := false
	cl.Write(th.Addr(), driver.IDTMP36, []int32{1}, 0, func(err error) { acked = err == nil })
	d.Run()
	if !acked {
		t.Fatal("write must be acknowledged")
	}
	// Write to an absent peripheral: rejected.
	var nackErr error
	cl.Write(th.Addr(), 0x999, []int32{1}, 0, func(err error) { nackErr = err })
	d.Run()
	if !errors.Is(nackErr, client.ErrWriteRejected) {
		t.Fatalf("write to absent peripheral = %v, want ErrWriteRejected", nackErr)
	}
}

func TestUnplugTearsDown(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("node")
	cl, _ := d.AddClient()
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if th.Runtime(driver.IDTMP36) == nil {
		t.Fatal("driver must be active")
	}

	before := len(cl.Adverts())
	if err := th.Unplug(0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if th.Runtime(driver.IDTMP36) != nil {
		t.Fatal("driver must be stopped after unplug")
	}
	// Disconnection triggers an advertisement update (now empty).
	if len(cl.Adverts()) != before {
		// the empty advert carries no peripherals, so no new Advert entries
		t.Fatalf("unexpected advert entries: %d -> %d", before, len(cl.Adverts()))
	}
	// Reads now surface the absent-peripheral error.
	var readErr error
	cl.Read(th.Addr(), driver.IDTMP36, 0, func(_ []int32, err error) { readErr = err })
	d.Run()
	if !errors.Is(readErr, client.ErrNoPeripheral) {
		t.Fatalf("read after unplug = %v, want ErrNoPeripheral", readErr)
	}
}

func TestDriverCachedOnSecondPlug(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("node")
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if err := th.Unplug(0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if err := d.PlugTMP36(th, 1); err != nil {
		t.Fatal(err)
	}
	d.Run()

	if d.Manager.Uploads() != 1 {
		t.Fatalf("uploads = %d; the second plug must reuse the cached driver", d.Manager.Uploads())
	}
	traces := th.Traces()
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	if traces[1].RequestDriver != 0 {
		t.Errorf("second plug must not hit the manager (request phase %v)", traces[1].RequestDriver)
	}
	if traces[1].Total >= traces[0].Total {
		t.Errorf("cached plug-in (%v) must be faster than OTA plug-in (%v)",
			traces[1].Total, traces[0].Total)
	}
}

func TestManagerDriverManagement(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("node")
	if err := d.PlugTMP36(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	// Driver discovery (messages 6/7).
	var discovered []hw.DeviceID
	d.Manager.DiscoverDrivers(th.Addr(), 0, func(ids []hw.DeviceID, err error) {
		if err == nil {
			discovered = ids
		}
	})
	d.Run()
	if len(discovered) != 1 || discovered[0] != driver.IDTMP36 {
		t.Fatalf("discovered = %v", discovered)
	}

	// Driver removal (messages 8/9).
	var removed bool
	d.Manager.RemoveDriver(th.Addr(), driver.IDTMP36, 0, func(err error) { removed = err == nil })
	d.Run()
	if !removed {
		t.Fatal("removal must be acknowledged")
	}
	if th.Runtime(driver.IDTMP36) != nil {
		t.Fatal("runtime must stop when its driver is removed")
	}

	// Removing again is rejected.
	var againErr error
	d.Manager.RemoveDriver(th.Addr(), driver.IDTMP36, 0, func(err error) { againErr = err })
	d.Run()
	if !errors.Is(againErr, client.ErrRemovalRejected) {
		t.Fatalf("second removal = %v, want ErrRemovalRejected", againErr)
	}
}

func TestMultiHopPluginSlower(t *testing.T) {
	d := newDeployment(t)
	near, _ := d.AddThing("near")
	mid, _ := d.AddThingAt("mid", near.Node())
	far, _ := d.AddThingAt("far", mid.Node())

	if err := d.PlugTMP36(near, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()
	if err := d.PlugHIH4030(far, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	nearTr := near.Traces()[0]
	farTr := far.Traces()[0]
	if !nearTr.Done || !farTr.Done {
		t.Fatal("both plugs must complete")
	}
	if farTr.RequestDriver <= nearTr.RequestDriver {
		t.Errorf("3-hop request (%v) must be slower than 1-hop (%v)",
			farTr.RequestDriver, nearTr.RequestDriver)
	}
}

func TestBMP180RemoteRead(t *testing.T) {
	d := newDeployment(t)
	th, _ := d.AddThing("weather")
	cl, _ := d.AddClient()
	d.Env.Set(18.0, 40, 100_200)
	if err := d.PlugBMP180(th, 0); err != nil {
		t.Fatal(err)
	}
	d.Run()

	var got []int32
	cl.Read(th.Addr(), driver.IDBMP180, 0, func(v []int32, err error) {
		if err == nil {
			got = v
		}
	})
	d.Run()
	if len(got) != 2 {
		t.Fatalf("BMP180 read = %v", got)
	}
	if got[0] < 175 || got[0] > 185 {
		t.Errorf("temperature = %d tenths °C, want ~180", got[0])
	}
	if got[1] < 100_150 || got[1] > 100_250 {
		t.Errorf("pressure = %d Pa, want ~100200", got[1])
	}
}
