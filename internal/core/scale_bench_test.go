package core

import (
	"fmt"
	"testing"

	"micropnp/internal/client"
	"micropnp/internal/driver"
)

// BenchmarkScaleDiscovery measures one full type-discovery round trip — a
// multicast query fanning out to every Thing hosting the type, all replies
// delivered, and the deadline closing the request — on a populated wide
// deployment. Per-discovery cost must scale with the member count, not with
// simulator bookkeeping: the membership index and cached SMRF plans keep
// the fan-out O(members).
func BenchmarkScaleDiscovery(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("things=%d", n), func(b *testing.B) {
			d, err := NewDeployment(DeploymentConfig{})
			if err != nil {
				b.Fatal(err)
			}
			cl, err := d.AddClient()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				th, err := d.AddThing(fmt.Sprintf("n%d", i))
				if err != nil {
					b.Fatal(err)
				}
				if err := d.PlugTMP36(th, 0); err != nil {
					b.Fatal(err)
				}
			}
			d.Run()
			// Batch rounds per op so -benchtime 1x (the CI regression
			// gate) measures a stable multi-millisecond quantity.
			const batch = 4
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					got := -1
					cl.Discover(driver.IDTMP36, 0, func(ads []client.Advert) { got = len(ads) })
					d.Run()
					if got != n {
						b.Fatalf("discovered %d, want %d", got, n)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/discovery")
		})
	}
}
