package core

import (
	"fmt"
	"os"
	"testing"

	"micropnp/internal/client"
	"micropnp/internal/driver"
)

// BenchmarkScaleDiscovery measures one full type-discovery round trip — a
// multicast query fanning out to every Thing hosting the type, all replies
// delivered, and the deadline closing the request — on a populated wide
// deployment. Per-discovery cost must scale with the member count, not with
// simulator bookkeeping: the membership index and cached SMRF plans keep
// the fan-out O(members).
func BenchmarkScaleDiscovery(b *testing.B) {
	for _, n := range []int{100, 1000} {
		b.Run(fmt.Sprintf("things=%d", n), func(b *testing.B) {
			d, err := NewDeployment(DeploymentConfig{})
			if err != nil {
				b.Fatal(err)
			}
			cl, err := d.AddClient()
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < n; i++ {
				th, err := d.AddThing(fmt.Sprintf("n%d", i))
				if err != nil {
					b.Fatal(err)
				}
				if err := d.PlugTMP36(th, 0); err != nil {
					b.Fatal(err)
				}
			}
			d.Run()
			// Batch rounds per op so -benchtime 1x (the CI regression
			// gate) measures a stable multi-millisecond quantity.
			const batch = 4
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					got := -1
					cl.Discover(driver.IDTMP36, 0, func(ads []client.Advert) { got = len(ads) })
					d.Run()
					if got != n {
						b.Fatalf("discovered %d, want %d", got, n)
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/discovery")
		})
	}
}

// BenchmarkScaleZonedDiscovery is the full-protocol parallel-speedup pair: the identical
// zone-partitioned multicast workload — every zone's client discovering its
// own zone-scoped group, fan-out and replies staying intra-zone — run once on
// the parallel sharded schedule (clock=sharded) and once on the sequential
// single-loop schedule (clock=single) of the same zoned topology. The two
// schedules execute the same events in the same order (bit-determinism), so
// the ns/op ratio single/sharded is a pure measure of parallel speedup;
// `benchgate -speedup` gates that ratio. The default size keeps local runs
// quick; the CI scale-100k job sets MICROPNP_SCALE_100K=1 for the gated
// 50,000-Thing tier.
func BenchmarkScaleZonedDiscovery(b *testing.B) {
	n := 2000
	if os.Getenv("MICROPNP_SCALE_100K") != "" {
		n = 50000
	}
	const zones = 16
	for _, mode := range []struct {
		name    string
		workers int
	}{
		{"sharded", 0},
		{"single", 1},
	} {
		b.Run(fmt.Sprintf("things=%d/clock=%s", n, mode.name), func(b *testing.B) {
			d, err := NewDeployment(DeploymentConfig{Zones: zones, Workers: mode.workers})
			if err != nil {
				b.Fatal(err)
			}
			defer d.Close()
			// Location zones are 1-based: zone 0 in the multicast schema is
			// the unscoped (global) group form.
			perZone := make([]int, zones+1)
			for i := 0; i < n; i++ {
				zone := 1 + i%zones
				th, err := d.AddZonedThing(fmt.Sprintf("z%dn%d", zone, i), uint16(zone))
				if err != nil {
					b.Fatal(err)
				}
				if err := d.PlugTMP36(th, 0); err != nil {
					b.Fatal(err)
				}
				perZone[zone]++
			}
			clients := make([]*client.Client, zones+1)
			for z := 1; z <= zones; z++ {
				cl, err := d.AddClientInZone(uint16(z), nil)
				if err != nil {
					b.Fatal(err)
				}
				clients[z] = cl
			}
			d.Run()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				got := make([]int, zones+1)
				for z := 1; z <= zones; z++ {
					z := z
					clients[z].DiscoverInZone(uint16(z), driver.IDTMP36, 0, func(ads []client.Advert) { got[z] = len(ads) })
				}
				d.Run()
				for z := 1; z <= zones; z++ {
					if got[z] != perZone[z] {
						b.Fatalf("zone %d: discovered %d, want %d", z, got[z], perZone[z])
					}
				}
			}
		})
	}
}
