package core

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"micropnp/internal/client"
	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/thing"
)

// Zone-sharded scale tiers. -short keeps a quick sanity size for every PR
// leg; the default suite climbs to 10,000 Things; the CI scale-100k job
// (push to main) sets MICROPNP_SCALE_100K=1 to unlock the 50,000- and
// 100,000-Thing tiers that the single-loop clock never reached.
func zonedScaleSizes() []int {
	if testing.Short() {
		return []int{200}
	}
	sizes := []int{2000, 10000}
	if os.Getenv("MICROPNP_SCALE_100K") != "" {
		sizes = append(sizes, 50000, 100000)
	}
	return sizes
}

// zonesFor picks a lane count that keeps thousands of Things per zone at the
// big tiers (barrier overhead amortizes over lane work).
func zonesFor(n int) int {
	switch {
	case n >= 50000:
		return 16
	case n >= 2000:
		return 8
	default:
		return 4
	}
}

// buildZonedScale assembles a zoned deployment: one zone-root Thing per zone
// directly under the manager, all other Things under their zone root, round-
// robin across zones and sensor kinds.
func buildZonedScale(t testing.TB, d *Deployment, n, zones int) []*thingRef {
	t.Helper()
	zoneRoots := make([]*netsim.Node, zones)
	things := make([]*thingRef, 0, n)
	for i := 0; i < n; i++ {
		zone := i % zones
		parent := zoneRoots[zone]
		th, err := d.AddThingInZone(fmt.Sprintf("z%dn%d", zone, i), uint16(zone), parent)
		if err != nil {
			t.Fatal(err)
		}
		if zoneRoots[zone] == nil {
			zoneRoots[zone] = th.Node()
		}
		if err := d.plugKind(th, i%3); err != nil {
			t.Fatal(err)
		}
		things = append(things, &thingRef{th: th, kind: i % 3})
	}
	return things
}

// TestScaleZoned is the zone-sharded scale tier: the full plug-in protocol,
// discovery and reads across every zone, run on the parallel sharded clock.
func TestScaleZoned(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	for _, n := range zonedScaleSizes() {
		n := n
		t.Run(fmt.Sprintf("things=%d", n), func(t *testing.T) {
			zones := zonesFor(n)
			d, err := NewDeployment(DeploymentConfig{Zones: zones})
			if err != nil {
				t.Fatal(err)
			}
			defer d.Close()
			if z, _, ok := d.Network.Sharded(); !ok || z != zones {
				t.Fatalf("Sharded() = (%d, _, %v), want (%d, _, true)", z, ok, zones)
			}
			cl, err := d.AddClient()
			if err != nil {
				t.Fatal(err)
			}
			things := buildZonedScale(t, d, n, zones)
			d.Run()
			assertScaleDeployment(t, d, cl, things, time.Hour, true)
		})
	}
}

// zonedChurnRun executes the cross-zone hot-swap churn scenario — plug
// everywhere, unplug and re-plug a spread of Things across all zones, then
// discover — under a given worker bound, with loss and jitter enabled so the
// per-zone RNG streams are load-bearing. It returns the deployment's final
// observable state for cross-mode comparison.
func zonedChurnRun(t *testing.T, n, zones, workers int) (stats netsim.Stats, uploads, gotTMP, gotBMP int) {
	t.Helper()
	d, err := NewDeployment(DeploymentConfig{
		Zones:      zones,
		Workers:    workers,
		LossRate:   0.02,
		ProcJitter: 0.05,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	cl, err := d.AddClient()
	if err != nil {
		t.Fatal(err)
	}
	zoneRoots := make([]*netsim.Node, zones)
	things := make([]*thing.Thing, 0, n)
	for i := 0; i < n; i++ {
		zone := i % zones
		th, err := d.AddThingInZone(fmt.Sprintf("z%dn%d", zone, i), uint16(zone), zoneRoots[zone])
		if err != nil {
			t.Fatal(err)
		}
		if zoneRoots[zone] == nil {
			zoneRoots[zone] = th.Node()
		}
		if err := d.PlugTMP36(th, 0); err != nil {
			t.Fatal(err)
		}
		things = append(things, th)
	}
	d.Run()

	// Hot-swap churn across every zone: unplug the TMP36, plug a BMP180.
	for i := 0; i < n; i += 5 {
		if err := things[i].Unplug(0); err != nil {
			t.Fatal(err)
		}
	}
	d.Run()
	for i := 0; i < n; i += 5 {
		if err := d.PlugBMP180(things[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	d.Run()

	return d.Network.Stats(), d.Manager.Uploads(), discoverCount(t, d, cl, driver.IDTMP36), discoverCount(t, d, cl, driver.IDBMP180)
}

// discoverCount runs a discovery to completion and returns the advert count.
func discoverCount(t *testing.T, d *Deployment, cl *client.Client, id hw.DeviceID) int {
	t.Helper()
	got := -1
	cl.Discover(id, time.Hour, func(ads []client.Advert) { got = len(ads) })
	d.Run()
	return got
}

// TestScaleZonedChurnBothModes runs the same churn scenario under the
// parallel sharded schedule and the sequential single-loop schedule and
// asserts the end states are identical — the application-level face of the
// bit-determinism guarantee, with hot-swap membership churn crossing zone
// boundaries while loss/jitter RNG draws ride the zone streams.
func TestScaleZonedChurnBothModes(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	n := 1200
	if testing.Short() {
		n = 120
	}
	const zones = 4
	seqStats, seqUploads, seqTMP, seqBMP := zonedChurnRun(t, n, zones, 1)
	parStats, parUploads, parTMP, parBMP := zonedChurnRun(t, n, zones, 0)
	if parStats != seqStats {
		t.Errorf("stats diverged across clock modes:\n  single-loop %+v\n  parallel    %+v", seqStats, parStats)
	}
	if parUploads != seqUploads {
		t.Errorf("uploads diverged: single-loop %d, parallel %d", seqUploads, parUploads)
	}
	if parTMP != seqTMP || parBMP != seqBMP {
		t.Errorf("discovery diverged: single-loop TMP=%d BMP=%d, parallel TMP=%d BMP=%d",
			seqTMP, seqBMP, parTMP, parBMP)
	}
	if seqBMP == 0 {
		t.Fatal("churn scenario discovered no BMP180s; the swap did not happen")
	}
}
