// Package manager implements the µPnP Manager: the server-class entity that
// hosts the driver repository and manages over-the-air deployment and remote
// configuration of drivers on µPnP Things (Section 5). Managers are reached
// through an anycast address, allowing network-level redundancy — requests
// land on the nearest manager instance.
package manager

import (
	"net/netip"
	"sync"
	"time"

	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
)

// CostLookup is the repository lookup cost charged per driver install
// request (server-side processing before the upload starts).
const CostLookup = 26 * time.Millisecond

// Manager is one µPnP manager instance.
type Manager struct {
	net  *netsim.Network
	node *netsim.Node
	repo *driver.Repository

	mu      sync.Mutex
	seq     uint16
	uploads int
	// advertisements from driver discovery, keyed by Thing address.
	discovered map[netip.Addr][]hw.DeviceID
	removalAck map[uint16]func(ok bool)
	discoverCb map[uint16]func([]hw.DeviceID)
}

// Config configures a manager instance.
type Config struct {
	Network *netsim.Network
	// Addr is this instance's unicast address.
	Addr netip.Addr
	// Anycast is the shared µPnP-manager anycast address.
	Anycast netip.Addr
	// Parent attaches the instance to the topology (usually the border
	// router / DODAG root side).
	Parent *netsim.Node
	// Repository of drivers (nil starts empty).
	Repository *driver.Repository
}

// New builds and registers a manager.
func New(cfg Config) (*Manager, error) {
	node, err := cfg.Network.AddNode(cfg.Addr, cfg.Parent)
	if err != nil {
		return nil, err
	}
	repo := cfg.Repository
	if repo == nil {
		repo = driver.NewRepository()
	}
	m := &Manager{
		net:        cfg.Network,
		node:       node,
		repo:       repo,
		discovered: map[netip.Addr][]hw.DeviceID{},
		removalAck: map[uint16]func(bool){},
		discoverCb: map[uint16]func([]hw.DeviceID){},
	}
	node.Bind(netsim.Port6030, m.handle)
	if cfg.Anycast.IsValid() {
		cfg.Network.JoinAnycast(cfg.Anycast, node)
	}
	return m, nil
}

// Node exposes the manager's network node.
func (m *Manager) Node() *netsim.Node { return m.node }

// Repository exposes the driver store.
func (m *Manager) Repository() *driver.Repository { return m.repo }

// Uploads returns the number of driver uploads served.
func (m *Manager) Uploads() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.uploads
}

// Discovered returns the last driver advertisement received from a Thing.
func (m *Manager) Discovered(thing netip.Addr) []hw.DeviceID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]hw.DeviceID(nil), m.discovered[thing]...)
}

func (m *Manager) nextSeq() uint16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.seq++
	return m.seq
}

func (m *Manager) send(dst netip.Addr, msg *proto.Message) {
	payload, err := msg.Encode()
	if err != nil {
		return
	}
	m.node.Send(dst, netsim.Port6030, payload)
}

// DiscoverDrivers queries a Thing for its installed drivers (messages 6/7).
// The callback fires when the advertisement arrives.
func (m *Manager) DiscoverDrivers(thing netip.Addr, cb func([]hw.DeviceID)) {
	seq := m.nextSeq()
	if cb != nil {
		m.mu.Lock()
		m.discoverCb[seq] = cb
		m.mu.Unlock()
	}
	m.send(thing, &proto.Message{Type: proto.MsgDriverDiscovery, Seq: seq})
}

// RemoveDriver removes a driver from a Thing (messages 8/9). The callback
// fires with the acknowledgement status.
func (m *Manager) RemoveDriver(thing netip.Addr, id hw.DeviceID, cb func(ok bool)) {
	seq := m.nextSeq()
	if cb != nil {
		m.mu.Lock()
		m.removalAck[seq] = cb
		m.mu.Unlock()
	}
	m.send(thing, &proto.Message{Type: proto.MsgDriverRemovalReq, Seq: seq, DeviceID: id})
}

// handle processes protocol messages addressed to the manager.
func (m *Manager) handle(msg netsim.Message) {
	pm, err := proto.Decode(msg.Payload)
	if err != nil {
		return
	}
	switch pm.Type {
	case proto.MsgDriverInstallReq:
		// Charge the repository lookup, then upload if we hold the driver.
		m.net.Schedule(CostLookup, func() {
			entry, ok := m.repo.Lookup(pm.DeviceID)
			if !ok {
				return
			}
			m.mu.Lock()
			m.uploads++
			m.mu.Unlock()
			m.send(msg.Src, &proto.Message{
				Type:     proto.MsgDriverUpload,
				Seq:      pm.Seq,
				DeviceID: pm.DeviceID,
				Driver:   entry.Bytecode,
			})
		})

	case proto.MsgDriverAdvert:
		m.mu.Lock()
		m.discovered[msg.Src] = append([]hw.DeviceID(nil), pm.Drivers...)
		cb := m.discoverCb[pm.Seq]
		delete(m.discoverCb, pm.Seq)
		m.mu.Unlock()
		if cb != nil {
			cb(pm.Drivers)
		}

	case proto.MsgDriverRemovalAck:
		m.mu.Lock()
		cb := m.removalAck[pm.Seq]
		delete(m.removalAck, pm.Seq)
		m.mu.Unlock()
		if cb != nil {
			cb(pm.Status == 0)
		}
	}
}
