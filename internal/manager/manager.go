// Package manager implements the µPnP Manager: the server-class entity that
// hosts the driver repository and manages over-the-air deployment and remote
// configuration of drivers on µPnP Things (Section 5). Managers are reached
// through an anycast address, allowing network-level redundancy — requests
// land on the nearest manager instance.
package manager

import (
	"net/netip"
	"sort"
	"sync"
	"time"

	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
	"micropnp/internal/reqerr"
)

// CostLookup is the repository lookup cost charged per driver install
// request (server-side processing before the upload starts).
const CostLookup = 26 * time.Millisecond

// DefaultTimeout bounds management requests made without an explicit
// timeout, mirroring the client-side default (see reqerr.DefaultTimeout).
const DefaultTimeout = reqerr.DefaultTimeout

// Manager is one µPnP manager instance.
type Manager struct {
	net     *netsim.Network
	node    *netsim.Node
	repo    *driver.Repository
	anycast netip.Addr

	mu      sync.Mutex
	seq     uint16
	failed  bool
	uploads int
	// advertisements from driver discovery, keyed by Thing address.
	discovered map[netip.Addr][]hw.DeviceID
	pending    map[uint16]*mgmtReq
}

// mgmtReq is one pending management request. Exactly one callback field is
// set; like the client's table, entries expire at their deadline instead of
// leaking.
type mgmtReq struct {
	// thing is the peer the request was addressed to; replies from any
	// other address must not complete it (a recycled sequence number could
	// otherwise let Thing A's stale advert answer a request aimed at B).
	thing netip.Addr
	// dev is the device a removal request targets, kept so a failed
	// manager's pending removals can be re-issued through a survivor.
	dev        hw.DeviceID
	onDiscover func([]hw.DeviceID, error)
	onRemoval  func(error)
	// cancel retracts the expiry event once a reply completed the request.
	cancel func()
}

// PendingRequest is one management request drained from a failed manager's
// pending table, carrying everything a surviving instance needs to adopt it.
type PendingRequest struct {
	// Thing is the peer the request was addressed to.
	Thing netip.Addr
	// Device is the removal target (zero for discovery requests).
	Device hw.DeviceID
	// Exactly one callback is non-nil, matching the original request kind.
	OnDiscover func([]hw.DeviceID, error)
	OnRemoval  func(error)
}

// Config configures a manager instance.
type Config struct {
	Network *netsim.Network
	// Addr is this instance's unicast address.
	Addr netip.Addr
	// Anycast is the shared µPnP-manager anycast address.
	Anycast netip.Addr
	// Parent attaches the instance to the topology (usually the border
	// router / DODAG root side).
	Parent *netsim.Node
	// Repository of drivers (nil starts empty).
	Repository *driver.Repository
}

// New builds and registers a manager.
func New(cfg Config) (*Manager, error) {
	node, err := cfg.Network.AddNode(cfg.Addr, cfg.Parent)
	if err != nil {
		return nil, err
	}
	repo := cfg.Repository
	if repo == nil {
		repo = driver.NewRepository()
	}
	m := &Manager{
		net:        cfg.Network,
		node:       node,
		repo:       repo,
		anycast:    cfg.Anycast,
		discovered: map[netip.Addr][]hw.DeviceID{},
		pending:    map[uint16]*mgmtReq{},
	}
	node.Bind(netsim.Port6030, m.handle)
	if cfg.Anycast.IsValid() {
		cfg.Network.JoinAnycast(cfg.Anycast, node)
	}
	return m, nil
}

// Node exposes the manager's network node.
func (m *Manager) Node() *netsim.Node { return m.node }

// Repository exposes the driver store.
func (m *Manager) Repository() *driver.Repository { return m.repo }

// Uploads returns the number of driver uploads served.
func (m *Manager) Uploads() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.uploads
}

// Discovered returns the last driver advertisement received from a Thing.
func (m *Manager) Discovered(thing netip.Addr) []hw.DeviceID {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]hw.DeviceID(nil), m.discovered[thing]...)
}

// nextSeqLocked allocates the next sequence number, skipping values still
// bound to an in-flight management request so a 2^16 wrap cannot alias two
// requests (mirroring the client's allocator). m.mu held.
func (m *Manager) nextSeqLocked() uint16 {
	for {
		m.seq++
		if m.seq == 0 {
			continue
		}
		if _, busy := m.pending[m.seq]; busy {
			continue
		}
		return m.seq
	}
}

func (m *Manager) nextSeq() uint16 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.nextSeqLocked()
}

// register inserts a pending management request and arms its expiry timer;
// the expiry compares entries by identity so a recycled sequence number can
// never cancel a newer request.
func (m *Manager) register(req *mgmtReq, timeout time.Duration) uint16 {
	m.mu.Lock()
	seq := m.nextSeqLocked()
	m.pending[seq] = req
	m.mu.Unlock()
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	cancel := m.node.ScheduleCancelable(timeout, func() { m.expire(seq, req) })
	m.mu.Lock()
	req.cancel = cancel
	m.mu.Unlock()
	return seq
}

func (m *Manager) expire(seq uint16, req *mgmtReq) {
	m.mu.Lock()
	cur, ok := m.pending[seq]
	if !ok || cur != req {
		m.mu.Unlock()
		return
	}
	delete(m.pending, seq)
	m.mu.Unlock()
	if req.onDiscover != nil {
		req.onDiscover(nil, reqerr.ErrTimeout)
	}
	if req.onRemoval != nil {
		req.onRemoval(reqerr.ErrTimeout)
	}
}

// send is deliberately duplicated across client, manager and thing rather
// than shared behind an interface — see the note in netsim/packet.go. A
// failed instance transmits nothing: scheduled work (a repository lookup in
// flight when the crash hit) dies silently, like the process it models.
func (m *Manager) send(dst netip.Addr, msg *proto.Message) {
	if m.Failed() {
		return
	}
	pb := netsim.AcquireBuf()
	b, err := msg.AppendEncode(pb.B[:0])
	if err != nil {
		pb.Release()
		return
	}
	pb.B = b
	m.node.SendBuf(dst, netsim.Port6030, pb)
}

// Failed reports whether Fail was called on this instance.
func (m *Manager) Failed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.failed
}

// Fail crashes the manager process while its router node keeps relaying:
// the instance leaves the manager anycast (new requests route to the nearest
// survivor), unbinds its management port (datagrams already in flight to it
// drop as NoHandler), stops transmitting, and drains its pending management
// table. The drained requests are returned in ascending sequence order —
// deterministic, so virtual-mode failover migration replays identically —
// for the caller to re-issue through a surviving instance or fail over to
// the requester. Fail is idempotent; repeat calls return nil.
func (m *Manager) Fail() []PendingRequest {
	m.mu.Lock()
	if m.failed {
		m.mu.Unlock()
		return nil
	}
	m.failed = true
	seqs := make([]uint16, 0, len(m.pending))
	for seq := range m.pending {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	drained := make([]PendingRequest, 0, len(seqs))
	cancels := make([]func(), 0, len(seqs))
	for _, seq := range seqs {
		req := m.pending[seq]
		delete(m.pending, seq)
		drained = append(drained, PendingRequest{
			Thing:      req.thing,
			Device:     req.dev,
			OnDiscover: req.onDiscover,
			OnRemoval:  req.onRemoval,
		})
		if req.cancel != nil {
			cancels = append(cancels, req.cancel)
		}
	}
	m.mu.Unlock()
	if m.anycast.IsValid() {
		m.net.LeaveAnycast(m.anycast, m.node)
	}
	m.node.Unbind(netsim.Port6030)
	for _, cancel := range cancels {
		cancel()
	}
	return drained
}

// Pending returns the number of in-flight management requests.
func (m *Manager) Pending() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.pending)
}

// retract withdraws an in-flight management request without firing its
// callback (the SDK uses it when the caller's context is done). Retracting a
// completed request is a no-op.
func (m *Manager) retract(seq uint16, req *mgmtReq) {
	m.mu.Lock()
	cur, ok := m.pending[seq]
	if !ok || cur != req {
		m.mu.Unlock()
		return
	}
	delete(m.pending, seq)
	cancel := req.cancel
	m.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// noRetract is returned for fire-and-forget requests.
func noRetract() {}

// DiscoverDrivers queries a Thing for its installed drivers (messages 6/7).
// The callback fires exactly once: with the advertised driver list, or with
// reqerr.ErrTimeout when no advertisement arrives within the timeout
// (0 = DefaultTimeout). A nil callback sends fire-and-forget.
func (m *Manager) DiscoverDrivers(thing netip.Addr, timeout time.Duration, cb func([]hw.DeviceID, error)) (retract func()) {
	var seq uint16
	retract = noRetract
	if cb != nil {
		req := &mgmtReq{thing: thing, onDiscover: cb}
		seq = m.register(req, timeout)
		retract = func() { m.retract(seq, req) }
	} else {
		seq = m.nextSeq()
	}
	m.send(thing, &proto.Message{Type: proto.MsgDriverDiscovery, Seq: seq})
	return retract
}

// RemoveDriver removes a driver from a Thing (messages 8/9). The callback
// fires exactly once: nil on acknowledgement, reqerr.ErrRemovalRejected on
// a negative acknowledgement, reqerr.ErrTimeout on expiry. A nil callback
// sends fire-and-forget.
func (m *Manager) RemoveDriver(thing netip.Addr, id hw.DeviceID, timeout time.Duration, cb func(error)) (retract func()) {
	var seq uint16
	retract = noRetract
	if cb != nil {
		req := &mgmtReq{thing: thing, dev: id, onRemoval: cb}
		seq = m.register(req, timeout)
		retract = func() { m.retract(seq, req) }
	} else {
		seq = m.nextSeq()
	}
	m.send(thing, &proto.Message{Type: proto.MsgDriverRemovalReq, Seq: seq, DeviceID: id})
	return retract
}

// handle processes protocol messages addressed to the manager. Decoding
// borrows a pooled Decoder; anything retained past this call (the driver
// lists) is copied.
func (m *Manager) handle(msg netsim.Message) {
	dec := proto.AcquireDecoder()
	defer proto.ReleaseDecoder(dec)
	pm, err := dec.Decode(msg.Payload)
	if err != nil {
		return
	}
	switch pm.Type {
	case proto.MsgDriverInstallReq:
		// Charge the repository lookup, then upload if we hold the driver.
		// The decoded message is borrowed scratch — copy the scalars the
		// deferred closure needs.
		id, seq, src := pm.DeviceID, pm.Seq, msg.Src
		m.node.Schedule(CostLookup, func() {
			entry, ok := m.repo.Lookup(id)
			if !ok {
				return
			}
			m.mu.Lock()
			if m.failed {
				// Crashed between accepting the request and finishing the
				// lookup: the upload never leaves the box. The Thing's ARQ
				// retransmission will reach a surviving instance.
				m.mu.Unlock()
				return
			}
			m.uploads++
			m.mu.Unlock()
			m.send(src, &proto.Message{
				Type:     proto.MsgDriverUpload,
				Seq:      seq,
				DeviceID: id,
				Driver:   entry.Bytecode,
			})
		})

	case proto.MsgDriverAdvert:
		// Only a discovery entry may be completed: a stale advert whose
		// sequence number was recycled for a removal must not swallow the
		// removal's pending entry.
		drivers := append([]hw.DeviceID(nil), pm.Drivers...)
		m.mu.Lock()
		m.discovered[msg.Src] = drivers
		req := m.pending[pm.Seq]
		match := req != nil && req.onDiscover != nil && req.thing == msg.Src
		var cancel func()
		if match {
			delete(m.pending, pm.Seq)
			cancel = req.cancel
		}
		m.mu.Unlock()
		if match {
			if cancel != nil {
				cancel()
			}
			req.onDiscover(drivers, nil)
		}

	case proto.MsgDriverRemovalAck:
		m.mu.Lock()
		req := m.pending[pm.Seq]
		match := req != nil && req.onRemoval != nil && req.thing == msg.Src
		var cancel func()
		if match {
			delete(m.pending, pm.Seq)
			cancel = req.cancel
		}
		m.mu.Unlock()
		if match {
			if cancel != nil {
				cancel()
			}
			if pm.Status == 0 {
				req.onRemoval(nil)
			} else {
				req.onRemoval(reqerr.ErrRemovalRejected)
			}
		}
	}
}
