package manager

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"micropnp/internal/driver"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/proto"
	"micropnp/internal/reqerr"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func setup(t *testing.T) (*netsim.Network, *Manager, *netsim.Node, *[]*proto.Message) {
	t.Helper()
	n := netsim.New(netsim.Config{})
	repo, err := driver.StandardRepository()
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := New(Config{
		Network:    n,
		Addr:       addr("2001:db8::1"),
		Anycast:    addr("2001:db8::aaaa"),
		Repository: repo,
	})
	if err != nil {
		t.Fatal(err)
	}
	peer, err := n.AddNode(addr("2001:db8::2"), mgr.Node())
	if err != nil {
		t.Fatal(err)
	}
	inbox := &[]*proto.Message{}
	peer.Bind(netsim.Port6030, func(m netsim.Message) {
		if pm, err := proto.Decode(m.Payload); err == nil {
			*inbox = append(*inbox, pm)
		}
	})
	return n, mgr, peer, inbox
}

func sendTo(t *testing.T, n *netsim.Network, from *netsim.Node, dst netip.Addr, m *proto.Message) {
	t.Helper()
	payload, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	from.Send(dst, netsim.Port6030, payload)
}

func TestManagerServesDriverViaAnycast(t *testing.T) {
	n, mgr, peer, inbox := setup(t)
	sendTo(t, n, peer, addr("2001:db8::aaaa"),
		&proto.Message{Type: proto.MsgDriverInstallReq, Seq: 5, DeviceID: driver.IDTMP36})
	n.RunUntilIdle(0)

	if len(*inbox) != 1 {
		t.Fatalf("inbox = %d messages", len(*inbox))
	}
	up := (*inbox)[0]
	if up.Type != proto.MsgDriverUpload || up.Seq != 5 || up.DeviceID != driver.IDTMP36 {
		t.Fatalf("upload = %+v", up)
	}
	if len(up.Driver) == 0 {
		t.Fatal("upload must carry the driver bytes")
	}
	if mgr.Uploads() != 1 {
		t.Fatalf("uploads = %d", mgr.Uploads())
	}
	// Lookup cost must have been charged before the upload was sent.
	if n.Now() < CostLookup {
		t.Fatalf("virtual time %v < lookup cost", n.Now())
	}
}

func TestManagerUnknownDriverSilent(t *testing.T) {
	n, mgr, peer, inbox := setup(t)
	sendTo(t, n, peer, mgr.Node().Addr(),
		&proto.Message{Type: proto.MsgDriverInstallReq, Seq: 6, DeviceID: 0xdeadbeef})
	n.RunUntilIdle(0)
	if len(*inbox) != 0 {
		t.Fatal("unknown driver must not produce an upload")
	}
	if mgr.Uploads() != 0 {
		t.Fatal("no upload must be counted")
	}
}

func TestManagerDriverDiscoveryFlow(t *testing.T) {
	n, mgr, peer, _ := setup(t)
	// The peer plays a Thing: reply to driver discovery with an advert.
	peer.Bind(netsim.Port6030, func(m netsim.Message) {
		pm, err := proto.Decode(m.Payload)
		if err != nil || pm.Type != proto.MsgDriverDiscovery {
			return
		}
		reply := &proto.Message{Type: proto.MsgDriverAdvert, Seq: pm.Seq,
			Drivers: []hw.DeviceID{driver.IDBMP180}}
		payload, _ := reply.Encode()
		peer.Send(m.Src, netsim.Port6030, payload)
	})

	var got []hw.DeviceID
	mgr.DiscoverDrivers(peer.Addr(), 0, func(ids []hw.DeviceID, err error) {
		if err == nil {
			got = ids
		}
	})
	n.RunUntilIdle(0)

	if len(got) != 1 || got[0] != driver.IDBMP180 {
		t.Fatalf("discovered = %v", got)
	}
	if cached := mgr.Discovered(peer.Addr()); len(cached) != 1 || cached[0] != driver.IDBMP180 {
		t.Fatalf("cached = %v", cached)
	}
}

func TestManagerRemovalFlow(t *testing.T) {
	n, mgr, peer, _ := setup(t)
	peer.Bind(netsim.Port6030, func(m netsim.Message) {
		pm, err := proto.Decode(m.Payload)
		if err != nil || pm.Type != proto.MsgDriverRemovalReq {
			return
		}
		reply := &proto.Message{Type: proto.MsgDriverRemovalAck, Seq: pm.Seq,
			DeviceID: pm.DeviceID, Status: 0}
		payload, _ := reply.Encode()
		peer.Send(m.Src, netsim.Port6030, payload)
	})

	var ok bool
	mgr.RemoveDriver(peer.Addr(), driver.IDTMP36, 0, func(err error) { ok = err == nil })
	n.RunUntilIdle(0)
	if !ok {
		t.Fatal("removal must be acknowledged")
	}
}

// TestManagerRequestsExpire covers the new deadline behaviour: management
// requests against an unresponsive Thing complete with a timeout error
// instead of leaking in the pending tables forever.
func TestManagerRequestsExpire(t *testing.T) {
	n, mgr, peer, _ := setup(t)
	// The peer never replies (no handler bound beyond setup's inbox).

	var discoverErr, removeErr error
	mgr.DiscoverDrivers(peer.Addr(), 100*time.Millisecond, func(_ []hw.DeviceID, err error) {
		discoverErr = err
	})
	mgr.RemoveDriver(peer.Addr(), driver.IDTMP36, 100*time.Millisecond, func(err error) {
		removeErr = err
	})
	n.RunUntilIdle(0)

	if !errors.Is(discoverErr, reqerr.ErrTimeout) {
		t.Fatalf("discover error = %v, want timeout", discoverErr)
	}
	if !errors.Is(removeErr, reqerr.ErrTimeout) {
		t.Fatalf("removal error = %v, want timeout", removeErr)
	}
}

// TestManagerStaleAdvertCannotSwallowRemoval: a late driver advert whose
// sequence number was recycled for a removal must not consume the
// removal's pending entry — the removal's callback must still fire.
func TestManagerStaleAdvertCannotSwallowRemoval(t *testing.T) {
	n, mgr, peer, _ := setup(t)

	// A discovery that expires unanswered.
	var discoverErr error
	mgr.DiscoverDrivers(peer.Addr(), 50*time.Millisecond, func(_ []hw.DeviceID, err error) {
		discoverErr = err
	})
	n.RunUntilIdle(0)
	if !errors.Is(discoverErr, reqerr.ErrTimeout) {
		t.Fatalf("setup: discover = %v, want timeout", discoverErr)
	}

	// Force the next request onto the expired discovery's seq (recycling).
	mgr.mu.Lock()
	staleSeq := mgr.seq
	mgr.seq = staleSeq - 1
	mgr.mu.Unlock()

	var removeErr = errors.New("never fired")
	mgr.RemoveDriver(peer.Addr(), driver.IDTMP36, 200*time.Millisecond, func(err error) {
		removeErr = err
	})

	// The stale advert for the old discovery arrives with the recycled seq.
	sendTo(t, n, peer, mgr.Node().Addr(),
		&proto.Message{Type: proto.MsgDriverAdvert, Seq: staleSeq, Drivers: []hw.DeviceID{driver.IDBMP180}})
	n.RunUntilIdle(0)

	// The removal must still complete (here: with its own timeout, since
	// the peer never acks) instead of being silently swallowed.
	if !errors.Is(removeErr, reqerr.ErrTimeout) {
		t.Fatalf("removal callback = %v, want its own timeout", removeErr)
	}
}

func TestManagerIgnoresGarbage(t *testing.T) {
	n, mgr, peer, inbox := setup(t)
	peer.Send(mgr.Node().Addr(), netsim.Port6030, []byte{0xba, 0xad})
	n.RunUntilIdle(0)
	if len(*inbox) != 0 {
		t.Fatal("garbage must not trigger replies")
	}
}

// TestTwoManagersAnycastNearest verifies the Section 5 redundancy property:
// with two manager instances behind one anycast address, a Thing's request
// lands on the nearest one.
func TestTwoManagersAnycastNearest(t *testing.T) {
	n := netsim.New(netsim.Config{})
	repo, _ := driver.StandardRepository()
	any := addr("2001:db8::aaaa")

	far, err := New(Config{Network: n, Addr: addr("2001:db8::1"), Anycast: any, Repository: repo})
	if err != nil {
		t.Fatal(err)
	}
	mid, err := n.AddNode(addr("2001:db8::2"), far.Node())
	if err != nil {
		t.Fatal(err)
	}
	near, err := New(Config{Network: n, Addr: addr("2001:db8::3"), Anycast: any, Parent: mid, Repository: repo})
	if err != nil {
		t.Fatal(err)
	}
	// Topology: far <- mid <- near <- requester.
	requester, err := n.AddNode(addr("2001:db8::4"), near.Node())
	if err != nil {
		t.Fatal(err)
	}

	got := 0
	requester.Bind(netsim.Port6030, func(m netsim.Message) { got++ })
	msg := &proto.Message{Type: proto.MsgDriverInstallReq, Seq: 1, DeviceID: driver.IDTMP36}
	payload, _ := msg.Encode()
	requester.Send(any, netsim.Port6030, payload)
	n.RunUntilIdle(0)

	if got != 1 {
		t.Fatalf("requester received %d replies", got)
	}
	if near.Uploads() != 1 || far.Uploads() != 0 {
		t.Fatalf("uploads near=%d far=%d; anycast must pick the nearest manager",
			near.Uploads(), far.Uploads())
	}
}
