package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestWaveformsRender(t *testing.T) {
	out := Waveforms()
	for _, want := range []string{"Figure 2", "Figure 3", "Figure 5", "channelA EN", "channelC EN", "output"} {
		if !strings.Contains(out, want) {
			t.Errorf("waveforms missing %q", want)
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	rows := Figure12()
	if len(rows) != 3*7 {
		t.Fatalf("rows = %d, want 21 (3 profiles x 7 decades)", len(rows))
	}
	for _, r := range rows {
		if r.UPnPMean >= r.USB {
			t.Errorf("%s at %v: µPnP %.3g J must beat USB %.3g J",
				r.Profile, r.ChangePeriod, float64(r.UPnPMean), float64(r.USB))
		}
	}
	if !strings.Contains(Figure12Table(), "orders of magnitude") {
		t.Error("table must state the headline comparison")
	}
}

func TestTable2Rows(t *testing.T) {
	rows := Table2()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[6].Component != "Total" || rows[6].PaperFlash != 14231 || rows[6].PaperRAM != 1518 {
		t.Fatalf("total row = %+v", rows[6])
	}
	if rows[6].Measured <= 0 {
		t.Error("measured total must be positive")
	}
	if Table2Text() == "" {
		t.Error("must render")
	}
}

func TestTable3ReproducesShape(t *testing.T) {
	rows, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	var dslSLoC, natSLoC, dslBytes, natBytes int
	for _, r := range rows {
		// Per-driver claims: the DSL variant must need fewer lines than
		// the native variant and stay OTA-friendly.
		if r.DSLSLoC >= r.NativeSLoC {
			t.Errorf("%s: DSL %d SLoC must beat native %d", r.Driver, r.DSLSLoC, r.NativeSLoC)
		}
		if r.DSLBytes > 1024 {
			t.Errorf("%s: DSL driver is %d B; must stay OTA-friendly", r.Driver, r.DSLBytes)
		}
		dslSLoC += r.DSLSLoC
		natSLoC += r.NativeSLoC
		dslBytes += r.DSLBytes
		natBytes += r.NativePaperBytes
	}
	// Aggregate shape: paper reports 52% SLoC and 94% footprint reduction.
	slocRed := 1 - float64(dslSLoC)/float64(natSLoC)
	byteRed := 1 - float64(dslBytes)/float64(natBytes)
	if slocRed < 0.30 || slocRed > 0.75 {
		t.Errorf("SLoC reduction = %.0f%%, want in the paper's ballpark (52%%)", slocRed*100)
	}
	if byteRed < 0.70 {
		t.Errorf("footprint reduction = %.0f%%, want large (paper: 94%%)", byteRed*100)
	}
	if !strings.Contains(Table3Text(), "Average") {
		t.Error("table must include the average row")
	}
}

func TestTable4Statistics(t *testing.T) {
	res, err := Table4(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	var sum time.Duration
	for _, r := range res.Rows {
		if r.Mean <= 0 {
			t.Errorf("%s mean = %v", r.Operation, r.Mean)
		}
		sum += r.Mean
	}
	// Phase means must sum to the network total.
	if diff := res.Total.Mean - sum; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("total %v != phase sum %v", res.Total.Mean, sum)
	}
	// One-hop total lands in the paper's regime (188.53 ms there).
	if res.Total.Mean < 120*time.Millisecond || res.Total.Mean > 260*time.Millisecond {
		t.Errorf("network total = %v, want roughly 190 ms", res.Total.Mean)
	}
	// End-to-end includes hardware identification (paper: 488.53 ms).
	if res.EndToEnd.Mean < 350*time.Millisecond || res.EndToEnd.Mean > 600*time.Millisecond {
		t.Errorf("end-to-end = %v, want roughly 490 ms", res.EndToEnd.Mean)
	}
	if Table4Text(3) == "" {
		t.Error("must render")
	}
}

func TestAblationPulse(t *testing.T) {
	out := AblationPulse()
	if !strings.Contains(out, "4 x 8-bit pulses") || !strings.Contains(out, "292 years") {
		t.Fatalf("ablation output:\n%s", out)
	}
}

func TestAblationMulticastBeatsUnicast(t *testing.T) {
	for _, n := range []int{7, 31} {
		r, err := AblationMulticast(n)
		if err != nil {
			t.Fatal(err)
		}
		if r.MulticastTransmissions >= r.UnicastTransmissions {
			t.Errorf("n=%d: multicast %d must beat unicast %d",
				n, r.MulticastTransmissions, r.UnicastTransmissions)
		}
		// SMRF covers a tree of n nodes with at most n edge transmissions.
		if r.MulticastTransmissions > n {
			t.Errorf("n=%d: multicast %d transmissions exceeds node count", n, r.MulticastTransmissions)
		}
	}
	if AblationMulticastText() == "" {
		t.Error("must render")
	}
}

func TestCSLoCCounter(t *testing.T) {
	src := "/* block\n comment */\nint x;\n// line comment\n\nint y;\n/* one-liner */ int z;\n"
	if n := cSLoC(src); n != 3 {
		t.Fatalf("cSLoC = %d, want 3", n)
	}
}
