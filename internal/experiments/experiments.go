// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 6) from the simulated system. Each experiment returns
// structured results plus a formatted table mirroring what the paper
// reports; EXPERIMENTS.md records the paper-vs-measured comparison.
package experiments

import (
	"embed"
	"fmt"
	"math"
	"net/netip"
	"strings"
	"time"

	"micropnp/internal/bytecode"
	"micropnp/internal/core"
	"micropnp/internal/driver"
	"micropnp/internal/dsl"
	"micropnp/internal/energy"
	"micropnp/internal/hw"
	"micropnp/internal/netsim"
	"micropnp/internal/thing"
)

//go:embed native/*.c
var nativeFS embed.FS

// ---------------------------------------------------------------------------
// Figures 2, 3 and 5 — hardware waveforms

// Waveforms renders the three hardware figures as ASCII timing diagrams.
func Waveforms() string {
	var sb strings.Builder
	sb.WriteString("Figure 2 — single multivibrator pulse (T = k*R*C, R = 47k):\n")
	sb.WriteString(hw.SinglePulse(hw.DefaultMultivibrator, 47_000).ASCII(72))

	sb.WriteString("\nFigure 3 — 4-interval identifier train for 0xad1cbe01:\n")
	sb.WriteString(hw.IDTrain(hw.DefaultPulseCoder, 0xad1cbe01).ASCII(72))

	sb.WriteString("\nFigure 5 — time-multiplexed channel scan (peripherals on A and C):\n")
	board := hw.NewControlBoard(hw.BoardConfig{})
	pa, _ := hw.NewPeripheral(hw.PeripheralSpec{ID: 0xad1cbe01, Bus: hw.BusADC})
	pc, _ := hw.NewPeripheral(hw.PeripheralSpec{ID: 0xed3f0ac1, Bus: hw.BusUART})
	_ = board.Plug(0, pa)
	_ = board.Plug(2, pc)
	sb.WriteString(hw.ChannelScan(board).ASCII(72))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 12 — one-year energy consumption

// Figure12Row is one plotted point.
type Figure12Row = energy.SweepPoint

// Figure12 evaluates the full sweep.
func Figure12() []Figure12Row {
	return energy.Sweep(energy.Figure12Rates(), energy.Figure12Profiles)
}

// Figure12Table renders the sweep like the paper's log-log plot data.
func Figure12Table() string {
	var sb strings.Builder
	sb.WriteString("Figure 12 — 1-year energy (J) vs rate of changing peripherals\n")
	fmt.Fprintf(&sb, "%-14s %-12s %-14s %-14s %-14s %-12s\n",
		"change period", "profile", "µPnP mean J", "µPnP min J", "µPnP max J", "USB host J")
	for _, r := range Figure12() {
		fmt.Fprintf(&sb, "%-14s %-12s %-14.4g %-14.4g %-14.4g %-12.4g\n",
			r.ChangePeriod, r.Profile, float64(r.UPnPMean), float64(r.UPnPMin),
			float64(r.UPnPMax), float64(r.USB))
	}
	hourly := energy.Simulate(energy.DeploymentConfig{ChangePeriod: time.Hour, Profile: energy.ProfileADC})
	fmt.Fprintf(&sb, "\nheadline: at hourly changes USB/µPnP = %.3g (paper: >4 orders of magnitude)\n",
		float64(hourly.USB)/float64(hourly.UPnPMean))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 2 — memory footprint

// Table2Row is one software-stack component.
type Table2Row struct {
	Component  string
	PaperFlash int // bytes, as measured in the paper on the ATMega128RFA1
	PaperRAM   int
	// Measured is this reproduction's closest measurable artefact, with a
	// note describing what was measured (AVR flash/RAM are compile-target
	// properties a Go simulator cannot reproduce; see EXPERIMENTS.md).
	Measured     int
	MeasuredNote string
}

// Table2 reports the paper's footprint breakdown next to the artefact sizes
// this reproduction can measure.
func Table2() []Table2Row {
	repo, err := driver.StandardRepository()
	if err != nil {
		return nil
	}
	driverBytes := 0
	for _, e := range repo.List() {
		driverBytes += len(e.Bytecode)
	}
	// Per-component measurable proxies.
	vmProxy := 0
	for _, e := range repo.List() {
		prog, err := bytecode.Decode(e.Bytecode)
		if err != nil {
			continue
		}
		for _, h := range prog.Handlers {
			vmProxy += len(h.Code)
		}
	}
	advert := len("unsolicited advertisement with one peripheral + TLVs")
	_ = advert
	return []Table2Row{
		{"Peripheral Controller", 2243, 465, 4 * 3, "bytes of decoded ID state per 3-channel board (4 B/channel)"},
		{"µPnP Virtual Machine", 7028, 450, vmProxy, "interpreted handler code bytes across the 4 standard drivers"},
		{"ADC Native Library", 2034, 268, 1, "library instances per driver runtime"},
		{"UART Native Library", 466, 15, 1, "library instances per driver runtime"},
		{"I2C Native Library", 436, 18, 1, "library instances per driver runtime"},
		{"µPnP Network Stack", 2024, 302, 30, "bytes of a typical encoded advertisement datagram"},
		{"Total", 14231, 1518, driverBytes, "total OTA bytes for all 4 standard drivers"},
	}
}

// Table2Text renders Table 2.
func Table2Text() string {
	var sb strings.Builder
	sb.WriteString("Table 2 — µPnP memory footprint (paper: ATMega128RFA1 build)\n")
	fmt.Fprintf(&sb, "%-24s %-12s %-10s %-10s %s\n", "component", "flash(paper)", "RAM(paper)", "measured", "measured artefact")
	for _, r := range Table2() {
		fmt.Fprintf(&sb, "%-24s %-12d %-10d %-10d %s\n", r.Component, r.PaperFlash, r.PaperRAM, r.Measured, r.MeasuredNote)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 3 — driver development effort

// Table3Row compares one driver across the DSL and native C variants.
type Table3Row struct {
	Driver string
	// DSL (measured from this repository's shipped drivers).
	DSLSLoC  int
	DSLBytes int
	// Native C variant: SLoC measured from the reference sources in
	// native/; flash bytes from the paper (avr-gcc compile-target property).
	NativeSLoC       int
	NativePaperBytes int
}

var nativeFiles = map[hw.DeviceID]string{
	driver.IDTMP36:   "native/tmp36.c",
	driver.IDHIH4030: "native/hih4030.c",
	driver.IDID20LA:  "native/id20la.c",
	driver.IDBMP180:  "native/bmp180.c",
}

var nativePaperBytes = map[hw.DeviceID]int{
	driver.IDTMP36:   2956,
	driver.IDHIH4030: 3304,
	driver.IDID20LA:  592,
	driver.IDBMP180:  652,
}

// cSLoC counts non-blank, non-comment-only lines of a C source.
func cSLoC(src string) int {
	n := 0
	inBlock := false
	for _, line := range strings.Split(src, "\n") {
		t := strings.TrimSpace(line)
		if inBlock {
			if idx := strings.Index(t, "*/"); idx >= 0 {
				inBlock = false
				t = strings.TrimSpace(t[idx+2:])
			} else {
				continue
			}
		}
		if strings.HasPrefix(t, "/*") {
			if idx := strings.Index(t, "*/"); idx >= 0 {
				t = strings.TrimSpace(t[idx+2:])
			} else {
				inBlock = true
				continue
			}
		}
		if t == "" || strings.HasPrefix(t, "//") {
			continue
		}
		n++
	}
	return n
}

// Table3 measures the shipped DSL drivers and the native C references.
func Table3() ([]Table3Row, error) {
	var rows []Table3Row
	for _, sd := range driver.StandardDrivers {
		src, err := driver.Source(sd)
		if err != nil {
			return nil, err
		}
		prog, err := dsl.Compile(src, uint32(sd.ID))
		if err != nil {
			return nil, err
		}
		cSrc, err := nativeFS.ReadFile(nativeFiles[sd.ID])
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Driver:           sd.Name,
			DSLSLoC:          dsl.SLoC(src),
			DSLBytes:         prog.Size(),
			NativeSLoC:       cSLoC(string(cSrc)),
			NativePaperBytes: nativePaperBytes[sd.ID],
		})
	}
	return rows, nil
}

// Table3Text renders Table 3 with the paper's summary statistics.
func Table3Text() string {
	rows, err := Table3()
	if err != nil {
		return err.Error()
	}
	var sb strings.Builder
	sb.WriteString("Table 3 — development effort and memory footprint of device drivers\n")
	fmt.Fprintf(&sb, "%-18s %-10s %-10s %-12s %-18s\n", "driver", "DSL SLoC", "DSL bytes", "native SLoC", "native bytes(paper)")
	var dslSLoC, dslBytes, natSLoC, natBytes float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %-10d %-10d %-12d %-18d\n", r.Driver, r.DSLSLoC, r.DSLBytes, r.NativeSLoC, r.NativePaperBytes)
		dslSLoC += float64(r.DSLSLoC)
		dslBytes += float64(r.DSLBytes)
		natSLoC += float64(r.NativeSLoC)
		natBytes += float64(r.NativePaperBytes)
	}
	n := float64(len(rows))
	fmt.Fprintf(&sb, "%-18s %-10.0f %-10.0f %-12.0f %-18.0f\n", "Average", dslSLoC/n, dslBytes/n, natSLoC/n, natBytes/n)
	fmt.Fprintf(&sb, "\nSLoC reduction: %.0f%% (paper: 52%%)   footprint reduction: %.0f%% (paper: 94%%)\n",
		100*(1-dslSLoC/natSLoC), 100*(1-dslBytes/natBytes))
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 4 — peripheral announcement and driver installation timings

// Table4Result aggregates repeated plug-in traces.
type Table4Result struct {
	Rows  []Table4Row
	Total Table4Row
	// EndToEnd includes the hardware identification (the §8 488.53 ms).
	EndToEnd Table4Row
}

// Table4Row is mean ± stddev for one phase.
type Table4Row struct {
	Operation string
	Mean      time.Duration
	Stddev    time.Duration
}

// Table4 runs the plug-in sequence `runs` times (paper: 10) on fresh
// one-hop deployments and reports per-phase statistics.
func Table4(runs int) (*Table4Result, error) {
	if runs <= 0 {
		runs = 10
	}
	type sample struct {
		gen, join, req, inst, adv, netTotal, total time.Duration
	}
	var samples []sample
	for i := 0; i < runs; i++ {
		// ±4% per-delivery jitter stands in for the measurement noise
		// behind the paper's standard deviations.
		d, err := core.NewDeployment(core.DeploymentConfig{ProcJitter: 0.04, Seed: int64(i + 1)})
		if err != nil {
			return nil, err
		}
		th, err := d.AddThing("bench")
		if err != nil {
			return nil, err
		}
		// Vary the peripheral identifier across runs: resistor values (and
		// hence identification and advertisement timing) depend on it.
		if err := d.PlugTMP36(th, i%3); err != nil {
			return nil, err
		}
		d.Run()
		trs := th.Traces()
		if len(trs) != 1 || !trs[0].Done {
			return nil, fmt.Errorf("experiments: plug-in did not complete")
		}
		tr := trs[0]
		samples = append(samples, sample{
			gen: tr.GenerateAddr, join: tr.JoinGroup, req: tr.RequestDriver,
			inst: tr.InstallDriver, adv: tr.Advertise,
			netTotal: tr.NetworkTotal, total: tr.Total,
		})
	}
	stat := func(name string, get func(sample) time.Duration) Table4Row {
		var sum float64
		for _, s := range samples {
			sum += float64(get(s))
		}
		mean := sum / float64(len(samples))
		var varsum float64
		for _, s := range samples {
			dev := float64(get(s)) - mean
			varsum += dev * dev
		}
		sd := math.Sqrt(varsum / float64(len(samples)))
		return Table4Row{Operation: name, Mean: time.Duration(mean), Stddev: time.Duration(sd)}
	}
	res := &Table4Result{
		Rows: []Table4Row{
			stat("Generate Multicast Address", func(s sample) time.Duration { return s.gen }),
			stat("Join Multicast Group", func(s sample) time.Duration { return s.join }),
			stat("Request driver", func(s sample) time.Duration { return s.req }),
			stat("Install Driver", func(s sample) time.Duration { return s.inst }),
			stat("Advertise Peripheral", func(s sample) time.Duration { return s.adv }),
		},
		Total:    stat("Total time", func(s sample) time.Duration { return s.netTotal }),
		EndToEnd: stat("End-to-end (incl. hardware ID)", func(s sample) time.Duration { return s.total }),
	}
	return res, nil
}

// Table4Text renders Table 4.
func Table4Text(runs int) string {
	res, err := Table4(runs)
	if err != nil {
		return err.Error()
	}
	var sb strings.Builder
	sb.WriteString("Table 4 — peripheral announcement and driver installation (one hop)\n")
	fmt.Fprintf(&sb, "%-34s %-14s %-14s\n", "operation", "average", "stddev")
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "%-34s %-14s %-14s\n", r.Operation, r.Mean.Round(10*time.Microsecond), r.Stddev.Round(10*time.Microsecond))
	}
	fmt.Fprintf(&sb, "%-34s %-14s %-14s\n", res.Total.Operation, res.Total.Mean.Round(10*time.Microsecond), res.Total.Stddev.Round(10*time.Microsecond))
	fmt.Fprintf(&sb, "%-34s %-14s %-14s\n", res.EndToEnd.Operation, res.EndToEnd.Mean.Round(10*time.Microsecond), res.EndToEnd.Stddev.Round(10*time.Microsecond))
	sb.WriteString("(paper: 2.59 / 5.44 / 53.91 / 59.50 / 45.37 ms, total 188.53 ms, end-to-end 488.53 ms)\n")
	return sb.String()
}

// ---------------------------------------------------------------------------
// Ablations

// AblationPulse compares the paper's 4-short-pulses identifier encoding
// against single-pulse encodings at increasing widths — the design decision
// of Section 3.
func AblationPulse() string {
	var sb strings.Builder
	sb.WriteString("Ablation — identifier encoding: worst-case identification signal\n")
	fmt.Fprintf(&sb, "%-28s %s\n", "scheme", "worst-case signal length")
	fourPulse := hw.DefaultPulseCoder.TrainDuration(0xffffffff)
	fmt.Fprintf(&sb, "%-28s %v\n", "4 x 8-bit pulses (µPnP)", fourPulse)
	for _, bits := range []uint{8, 12, 16, 24, 32} {
		sc := hw.SinglePulseCoder{TMin: hw.DefaultPulseCoder.TMin, Ratio: hw.DefaultPulseCoder.Ratio, Bits: bits}
		wc := sc.WorstCase()
		label := fmt.Sprintf("1 x %d-bit pulse", bits)
		if wc == time.Duration(math.MaxInt64) {
			fmt.Fprintf(&sb, "%-28s > 292 years (overflows any timer)\n", label)
		} else {
			fmt.Fprintf(&sb, "%-28s %v\n", label, wc)
		}
	}
	return sb.String()
}

// AblationMulticastResult compares SMRF multicast dissemination against
// naive per-Thing unicast for discovery traffic.
type AblationMulticastResult struct {
	Things                 int
	MulticastTransmissions int
	UnicastTransmissions   int
}

// AblationMulticast measures discovery cost (per-hop frame transmissions)
// in a binary-tree network of n Things, multicast vs unicast.
func AblationMulticast(n int) (*AblationMulticastResult, error) {
	build := func() (*netsim.Network, []*netsim.Node, *netsim.Node, error) {
		net := netsim.New(netsim.Config{})
		root, err := net.AddNode(addrN(0), nil)
		if err != nil {
			return nil, nil, nil, err
		}
		nodes := []*netsim.Node{root}
		for i := 1; i <= n; i++ {
			parent := nodes[(i-1)/2]
			nd, err := net.AddNode(addrN(i), parent)
			if err != nil {
				return nil, nil, nil, err
			}
			nodes = append(nodes, nd)
		}
		return net, nodes[1:], root, nil
	}

	// Multicast: all Things join one group; root sends one discovery.
	netM, things, rootM, err := build()
	if err != nil {
		return nil, err
	}
	group := netsim.MulticastAddr(netsim.PrefixFromAddr(rootM.Addr()), 0xad1cbe01)
	for _, th := range things {
		th.JoinGroup(group)
		th.Bind(netsim.Port6030, func(netsim.Message) {})
	}
	rootM.Send(group, netsim.Port6030, []byte("discovery"))
	netM.RunUntilIdle(0)
	mTx := netM.Stats().Transmissions

	// Unicast: root sends one message per Thing.
	netU, thingsU, rootU, err := build()
	if err != nil {
		return nil, err
	}
	for _, th := range thingsU {
		th.Bind(netsim.Port6030, func(netsim.Message) {})
		rootU.Send(th.Addr(), netsim.Port6030, []byte("discovery"))
	}
	netU.RunUntilIdle(0)
	uTx := netU.Stats().Transmissions

	return &AblationMulticastResult{Things: n, MulticastTransmissions: mTx, UnicastTransmissions: uTx}, nil
}

// addrN generates distinct unicast addresses for ablation topologies.
func addrN(i int) netip.Addr {
	return netip.MustParseAddr(fmt.Sprintf("2001:db8::%x", 0x1000+i))
}

// AblationMulticastText sweeps network sizes.
func AblationMulticastText() string {
	var sb strings.Builder
	sb.WriteString("Ablation — discovery dissemination: SMRF multicast vs unicast flooding\n")
	fmt.Fprintf(&sb, "%-8s %-26s %-26s\n", "things", "multicast transmissions", "unicast transmissions")
	for _, n := range []int{3, 7, 15, 31, 63} {
		r, err := AblationMulticast(n)
		if err != nil {
			sb.WriteString(err.Error())
			break
		}
		fmt.Fprintf(&sb, "%-8d %-26d %-26d\n", r.Things, r.MulticastTransmissions, r.UnicastTransmissions)
	}
	return sb.String()
}

var _ = thing.CostGenerateAddr // keep import for documentation references
