/* BMP180 pressure sensor driver — native C reference (Contiki 2.7 /
 * ATMega128RFA1). Hand-written TWI master transactions, calibration
 * readout, split-phase conversions with etimer waits and the full
 * datasheet compensation algorithm — the code a peripheral vendor has to
 * write and flash per platform without µPnP. */
#include "contiki.h"
#include "dev/i2c.h"
#include "sys/etimer.h"
#include "upnp/driver.h"

#define BMP180_ADDR       0x77
#define BMP180_REG_CALIB  0xAA
#define BMP180_REG_CTRL   0xF4
#define BMP180_REG_OUT    0xF6
#define BMP180_CMD_TEMP   0x2E
#define BMP180_CMD_PRESS  0x34
#define BMP180_OSS        1

static struct upnp_driver_ctx *ctx;
static int16_t ac1, ac2, ac3;
static uint16_t ac4, ac5, ac6;
static int16_t b1, b2, mb, mc, md;
static uint8_t inited;

static uint16_t
read16(uint8_t reg)
{
  uint8_t buf[2];
  i2c_read_bytes(BMP180_ADDR, reg, buf, 2);
  return ((uint16_t)buf[0] << 8) | buf[1];
}

static void
read_calibration(void)
{
  ac1 = (int16_t)read16(BMP180_REG_CALIB + 0);
  ac2 = (int16_t)read16(BMP180_REG_CALIB + 2);
  ac3 = (int16_t)read16(BMP180_REG_CALIB + 4);
  ac4 = read16(BMP180_REG_CALIB + 6);
  ac5 = read16(BMP180_REG_CALIB + 8);
  ac6 = read16(BMP180_REG_CALIB + 10);
  b1 = (int16_t)read16(BMP180_REG_CALIB + 12);
  b2 = (int16_t)read16(BMP180_REG_CALIB + 14);
  mb = (int16_t)read16(BMP180_REG_CALIB + 16);
  mc = (int16_t)read16(BMP180_REG_CALIB + 18);
  md = (int16_t)read16(BMP180_REG_CALIB + 20);
  inited = 1;
}

PROCESS(bmp180_process, "BMP180 driver");

PROCESS_THREAD(bmp180_process, ev, data)
{
  static struct etimer et;
  static uint16_t ut;
  static uint32_t up;
  static int32_t out[2];
  uint8_t buf[3];

  PROCESS_BEGIN();
  for(;;) {
    PROCESS_WAIT_EVENT_UNTIL(ev == upnp_event_read);
    if(!inited) {
      read_calibration();
    }
    i2c_write_byte(BMP180_ADDR, BMP180_REG_CTRL, BMP180_CMD_TEMP);
    etimer_set(&et, CLOCK_SECOND / 200);
    PROCESS_WAIT_EVENT_UNTIL(etimer_expired(&et));
    ut = read16(BMP180_REG_OUT);

    i2c_write_byte(BMP180_ADDR, BMP180_REG_CTRL,
                   BMP180_CMD_PRESS | (BMP180_OSS << 6));
    etimer_set(&et, CLOCK_SECOND / 125);
    PROCESS_WAIT_EVENT_UNTIL(etimer_expired(&et));
    i2c_read_bytes(BMP180_ADDR, BMP180_REG_OUT, buf, 3);
    up = (((uint32_t)buf[0] << 16) | ((uint32_t)buf[1] << 8) | buf[2])
         >> (8 - BMP180_OSS);

    {
      int32_t x1 = (((int32_t)ut - ac6) * ac5) >> 15;
      int32_t x2 = ((int32_t)mc << 11) / (x1 + md);
      int32_t b5 = x1 + x2;
      int32_t b6, x3, b3, p;
      uint32_t b4, b7;
      out[0] = (b5 + 8) >> 4;
      b6 = b5 - 4000;
      x1 = (b2 * ((b6 * b6) >> 12)) >> 11;
      x2 = (ac2 * b6) >> 11;
      x3 = x1 + x2;
      b3 = ((((int32_t)ac1 * 4 + x3) << BMP180_OSS) + 2) / 4;
      x1 = (ac3 * b6) >> 13;
      x2 = (b1 * ((b6 * b6) >> 12)) >> 16;
      x3 = ((x1 + x2) + 2) >> 2;
      b4 = ((uint32_t)ac4 * (uint32_t)(x3 + 32768)) >> 15;
      b7 = ((uint32_t)up - b3) * (50000 >> BMP180_OSS);
      if(b7 < 0x80000000UL) {
        p = (int32_t)((b7 * 2) / b4);
      } else {
        p = (int32_t)(b7 / b4) * 2;
      }
      x1 = (p >> 8) * (p >> 8);
      x1 = (x1 * 3038) >> 16;
      x2 = (-7357 * p) >> 16;
      out[1] = p + ((x1 + x2 + 3791) >> 4);
    }
    upnp_driver_return(ctx, out, 2);
  }
  PROCESS_END();
}

void
bmp180_driver_init(struct upnp_driver_ctx *c)
{
  ctx = c;
  inited = 0;
  i2c_enable();
  process_start(&bmp180_process, NULL);
  upnp_driver_register(ctx, &bmp180_process, upnp_event_read);
}
