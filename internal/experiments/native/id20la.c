/* ID-20LA RFID reader driver — native C reference (Contiki 2.7 /
 * ATMega128RFA1). The hand-written USART variant of Listing 1: explicit
 * register configuration, ISR byte handling, ring buffering and frame
 * reassembly, none of which the DSL driver has to spell out. */
#include "contiki.h"
#include "dev/rs232.h"
#include "upnp/driver.h"
#include <avr/interrupt.h>

#define RFID_FRAME_LEN  12
#define RFID_STX        0x02
#define RFID_ETX        0x03
#define RFID_CR         0x0d
#define RFID_LF         0x0a
#define RFID_RING_LEN   32

static struct upnp_driver_ctx *ctx;
static volatile uint8_t busy;
static volatile uint8_t idx;
static uint8_t rfid[RFID_FRAME_LEN];
static volatile uint8_t ring[RFID_RING_LEN];
static volatile uint8_t ring_head, ring_tail;

ISR(USART1_RX_vect)
{
  uint8_t c = UDR1;
  uint8_t next = (ring_head + 1) % RFID_RING_LEN;
  if(next != ring_tail) {
    ring[ring_head] = c;
    ring_head = next;
  }
  process_poll(&id20la_process);
}

static void
uart_configure_9600_8n1(void)
{
  UBRR1H = 0;
  UBRR1L = 103; /* 16 MHz / (16 * 9600) - 1 */
  UCSR1B = _BV(RXEN1) | _BV(RXCIE1);
  UCSR1C = _BV(UCSZ11) | _BV(UCSZ10);
}

PROCESS(id20la_process, "ID-20LA driver");

PROCESS_THREAD(id20la_process, ev, data)
{
  PROCESS_BEGIN();
  for(;;) {
    PROCESS_WAIT_EVENT();
    if(ev == upnp_event_read) {
      busy = 1;
      idx = 0;
    } else if(ev == PROCESS_EVENT_POLL && busy) {
      while(ring_tail != ring_head) {
        uint8_t c = ring[ring_tail];
        ring_tail = (ring_tail + 1) % RFID_RING_LEN;
        if(c == RFID_STX || c == RFID_ETX || c == RFID_CR || c == RFID_LF) {
          continue;
        }
        if(idx < RFID_FRAME_LEN) {
          rfid[idx++] = c;
        }
        if(idx == RFID_FRAME_LEN) {
          int32_t out[RFID_FRAME_LEN];
          uint8_t i;
          for(i = 0; i < RFID_FRAME_LEN; i++) {
            out[i] = rfid[i];
          }
          busy = 0;
          idx = 0;
          upnp_driver_return(ctx, out, RFID_FRAME_LEN);
        }
      }
    } else if(ev == upnp_event_destroy) {
      UCSR1B = 0;
      busy = 0;
    }
  }
  PROCESS_END();
}

void
id20la_driver_init(struct upnp_driver_ctx *c)
{
  ctx = c;
  busy = 0;
  idx = 0;
  ring_head = ring_tail = 0;
  uart_configure_9600_8n1();
  process_start(&id20la_process, NULL);
  upnp_driver_register(ctx, &id20la_process, upnp_event_read);
}
