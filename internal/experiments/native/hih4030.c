/* HIH-4030 humidity sensor driver — native C reference (Contiki 2.7 /
 * ATMega128RFA1). Implements the datasheet transfer function
 * Vout/Vsupply = 0.0062*RH + 0.16 in integer arithmetic, with the raw ADC
 * configuration and event plumbing the DSL hides. */
#include "contiki.h"
#include "dev/adc.h"
#include "net/netstack.h"
#include "upnp/driver.h"

#define HIH_RATIO_SCALE   100000L
#define HIH_ADC_MAX       1023
#define HIH_ZERO_OFFSET   16000L
#define HIH_SLOPE_62      62L

static struct upnp_driver_ctx *ctx;
static volatile uint8_t busy;
static volatile uint16_t sample;

static void
adc_isr(uint16_t value)
{
  sample = value;
  process_poll(&hih4030_process);
}

PROCESS(hih4030_process, "HIH-4030 driver");

PROCESS_THREAD(hih4030_process, ev, data)
{
  PROCESS_BEGIN();
  for(;;) {
    PROCESS_WAIT_EVENT();
    if(ev == upnp_event_read) {
      if(busy) {
        continue;
      }
      busy = 1;
      adc_init(ADC_CHAN_1, ADC_REF_AVCC, ADC_PRESCALE_64);
      adc_start(adc_isr);
    } else if(ev == PROCESS_EVENT_POLL) {
      int32_t ratio = (int32_t)sample * HIH_RATIO_SCALE / HIH_ADC_MAX;
      int32_t tenths;
      if(ratio < HIH_ZERO_OFFSET) {
        ratio = HIH_ZERO_OFFSET;
      }
      tenths = (ratio - HIH_ZERO_OFFSET) / HIH_SLOPE_62;
      busy = 0;
      adc_stop();
      upnp_driver_return(ctx, &tenths, 1);
    } else if(ev == upnp_event_destroy) {
      adc_stop();
      busy = 0;
    }
  }
  PROCESS_END();
}

void
hih4030_driver_init(struct upnp_driver_ctx *c)
{
  ctx = c;
  busy = 0;
  process_start(&hih4030_process, NULL);
  upnp_driver_register(ctx, &hih4030_process, upnp_event_read);
}
