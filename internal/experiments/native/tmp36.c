/* TMP36 temperature sensor driver — native C reference (Contiki 2.7 /
 * ATMega128RFA1). The platform-specific variant of the shipped DSL driver:
 * raw ADC access, interrupt handling and event plumbing are all explicit. */
#include "contiki.h"
#include "dev/adc.h"
#include "net/netstack.h"
#include "upnp/driver.h"

#define TMP36_MV_REF     3300
#define TMP36_ADC_MAX    1023
#define TMP36_OFFSET_MV  500

static struct upnp_driver_ctx *ctx;
static volatile uint8_t busy;
static volatile uint16_t sample;

static void
adc_isr(uint16_t value)
{
  sample = value;
  process_poll(&tmp36_process);
}

PROCESS(tmp36_process, "TMP36 driver");

PROCESS_THREAD(tmp36_process, ev, data)
{
  PROCESS_BEGIN();
  for(;;) {
    PROCESS_WAIT_EVENT();
    if(ev == upnp_event_read) {
      if(busy) {
        continue;
      }
      busy = 1;
      adc_init(ADC_CHAN_0, ADC_REF_AVCC, ADC_PRESCALE_64);
      adc_start(adc_isr);
    } else if(ev == PROCESS_EVENT_POLL) {
      int32_t mv = (int32_t)sample * TMP36_MV_REF / TMP36_ADC_MAX;
      int32_t tenths = mv - TMP36_OFFSET_MV;
      busy = 0;
      adc_stop();
      upnp_driver_return(ctx, &tenths, 1);
    } else if(ev == upnp_event_destroy) {
      adc_stop();
      busy = 0;
    }
  }
  PROCESS_END();
}

void
tmp36_driver_init(struct upnp_driver_ctx *c)
{
  ctx = c;
  busy = 0;
  process_start(&tmp36_process, NULL);
  upnp_driver_register(ctx, &tmp36_process, upnp_event_read);
}
