// Package proto implements the µPnP interaction protocol of Section 5.2:
// compact binary messages carried in UDP datagrams on port 6030, covering
// peripheral advertisement and discovery (messages 1–3), driver management
// (4–9) and peripheral data operations read/stream/write (10–17).
//
// Every message starts with a one-byte type and a 16-bit sequence number
// used to associate requests with replies. Peripheral metadata travels as
// type-length-value tuples.
package proto

import (
	"errors"
	"fmt"
	"sync"

	"micropnp/internal/hw"
)

// MsgType identifies a protocol message. The numbering follows the
// paper's Figures 10 and 11.
type MsgType uint8

// Protocol message types.
const (
	MsgUnsolicitedAdvert MsgType = 1  // Thing -> all-clients group
	MsgDiscovery         MsgType = 2  // client -> peripheral group
	MsgSolicitedAdvert   MsgType = 3  // Thing -> requesting client (unicast)
	MsgDriverInstallReq  MsgType = 4  // Thing -> manager (anycast)
	MsgDriverUpload      MsgType = 5  // manager -> Thing
	MsgDriverDiscovery   MsgType = 6  // manager -> Thing
	MsgDriverAdvert      MsgType = 7  // Thing -> manager
	MsgDriverRemovalReq  MsgType = 8  // manager -> Thing
	MsgDriverRemovalAck  MsgType = 9  // Thing -> manager
	MsgRead              MsgType = 10 // client -> Thing
	MsgData              MsgType = 11 // Thing -> client (also stream data, 14)
	MsgStream            MsgType = 12 // client -> Thing
	MsgEstablished       MsgType = 13 // Thing -> client
	MsgClosed            MsgType = 15 // Thing -> stream group
	MsgWrite             MsgType = 16 // client -> Thing
	MsgWriteAck          MsgType = 17 // Thing -> client
)

// msgTypeNames is indexed by MsgType; entry 14 is unused (stream data reuses
// MsgData). A package-level table, so String never allocates for known types.
var msgTypeNames = [...]string{
	MsgUnsolicitedAdvert: "unsolicited-advertisement",
	MsgDiscovery:         "discovery",
	MsgSolicitedAdvert:   "solicited-advertisement",
	MsgDriverInstallReq:  "driver-install-request",
	MsgDriverUpload:      "driver-upload",
	MsgDriverDiscovery:   "driver-discovery",
	MsgDriverAdvert:      "driver-advertisement",
	MsgDriverRemovalReq:  "driver-removal-request",
	MsgDriverRemovalAck:  "driver-removal-ack",
	MsgRead:              "read",
	MsgData:              "data",
	MsgStream:            "stream",
	MsgEstablished:       "established",
	MsgClosed:            "closed",
	MsgWrite:             "write",
	MsgWriteAck:          "write-ack",
}

func (t MsgType) String() string {
	if int(t) < len(msgTypeNames) && msgTypeNames[t] != "" {
		return msgTypeNames[t]
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// TLV tuple types used in advertisements and discovery filters.
const (
	TLVName    uint8 = 1 // human-readable peripheral name
	TLVBusKind uint8 = 2 // one byte, hw.BusKind
	TLVChannel uint8 = 3 // one byte, control-board channel
	TLVUnits   uint8 = 4 // unit string for produced values
)

// TLV is one type-length-value tuple.
type TLV struct {
	Type  uint8
	Value []byte
}

// PeripheralInfo describes one locally connected peripheral inside an
// advertisement: the 4-byte type identifier plus TLV metadata.
type PeripheralInfo struct {
	ID   hw.DeviceID
	TLVs []TLV
}

// TLVString extracts a string-valued tuple, if present.
func (p PeripheralInfo) TLVString(typ uint8) (string, bool) {
	for _, t := range p.TLVs {
		if t.Type == typ {
			return string(t.Value), true
		}
	}
	return "", false
}

// TLVByte extracts a one-byte tuple, if present.
func (p PeripheralInfo) TLVByte(typ uint8) (byte, bool) {
	for _, t := range p.TLVs {
		if t.Type == typ && len(t.Value) == 1 {
			return t.Value[0], true
		}
	}
	return 0, false
}

// Clone returns a deep copy owning all its memory. Use it to retain a
// PeripheralInfo obtained from a Decoder beyond the decode's lifetime: a
// decoded PeripheralInfo's TLV values alias the datagram buffer, which the
// network recycles once the handler returns.
func (p PeripheralInfo) Clone() PeripheralInfo {
	out := PeripheralInfo{ID: p.ID}
	if len(p.TLVs) > 0 {
		out.TLVs = make([]TLV, len(p.TLVs))
		for i, t := range p.TLVs {
			out.TLVs[i] = TLV{Type: t.Type, Value: append([]byte(nil), t.Value...)}
		}
	}
	return out
}

// Message is a decoded µPnP protocol message. Field usage depends on Type.
type Message struct {
	Type MsgType
	Seq  uint16

	// Peripherals: advertisements (1, 3).
	Peripherals []PeripheralInfo
	// Filter: discovery (2).
	Filter []TLV
	// DeviceID: driver management and data operations (4, 5, 8, 9, 10-17).
	DeviceID hw.DeviceID
	// Driver: bytecode payload (5); driver ID list (7) uses Drivers.
	Driver  []byte
	Drivers []hw.DeviceID
	// Status: acks (9, 17): 0 = ok.
	Status uint8
	// Data: values (11, 16).
	Data []byte
	// Group: the stream group address (13), 16 bytes.
	Group [16]byte
}

// ErrTruncated reports a short or malformed message.
var ErrTruncated = errors.New("proto: truncated message")

// Encode serialises the message into a fresh buffer. Hot paths should prefer
// AppendEncode with a reused (pooled) destination; Encode allocates per call.
func (m *Message) Encode() ([]byte, error) {
	return m.AppendEncode(nil)
}

// AppendEncode serialises the message, appending to dst (which may be nil or
// a truncated pooled buffer) and returning the extended slice. The encoding
// is identical to Encode's; on error dst is returned unmodified.
func (m *Message) AppendEncode(dst []byte) ([]byte, error) {
	buf := append(dst, byte(m.Type), byte(m.Seq>>8), byte(m.Seq))
	switch m.Type {
	case MsgUnsolicitedAdvert, MsgSolicitedAdvert:
		if len(m.Peripherals) > 255 {
			return dst, errors.New("proto: too many peripherals")
		}
		buf = append(buf, byte(len(m.Peripherals)))
		for _, p := range m.Peripherals {
			buf = appendU32(buf, uint32(p.ID))
			var err error
			buf, err = appendTLVs(buf, p.TLVs)
			if err != nil {
				return dst, err
			}
		}
	case MsgDiscovery:
		var err error
		buf, err = appendTLVs(buf, m.Filter)
		if err != nil {
			return dst, err
		}
	case MsgDriverInstallReq, MsgDriverRemovalReq, MsgRead, MsgStream, MsgClosed:
		buf = appendU32(buf, uint32(m.DeviceID))
	case MsgDriverUpload:
		buf = appendU32(buf, uint32(m.DeviceID))
		if len(m.Driver) > 0xffff {
			return dst, errors.New("proto: driver too large")
		}
		buf = append(buf, byte(len(m.Driver)>>8), byte(len(m.Driver)))
		buf = append(buf, m.Driver...)
	case MsgDriverDiscovery:
		// type + seq only
	case MsgDriverAdvert:
		if len(m.Drivers) > 255 {
			return dst, errors.New("proto: too many drivers")
		}
		buf = append(buf, byte(len(m.Drivers)))
		for _, id := range m.Drivers {
			buf = appendU32(buf, uint32(id))
		}
	case MsgDriverRemovalAck, MsgWriteAck:
		buf = appendU32(buf, uint32(m.DeviceID))
		buf = append(buf, m.Status)
	case MsgData, MsgWrite:
		buf = appendU32(buf, uint32(m.DeviceID))
		if len(m.Data) > 255 {
			return dst, errors.New("proto: data too large")
		}
		buf = append(buf, byte(len(m.Data)))
		buf = append(buf, m.Data...)
	case MsgEstablished:
		buf = appendU32(buf, uint32(m.DeviceID))
		buf = append(buf, m.Group[:]...)
	default:
		return dst, fmt.Errorf("proto: cannot encode type %v", m.Type)
	}
	return buf, nil
}

// Decode parses a datagram payload.
func Decode(data []byte) (*Message, error) {
	r := &reader{data: data}
	m := &Message{}
	m.Type = MsgType(r.u8())
	m.Seq = r.u16()
	switch m.Type {
	case MsgUnsolicitedAdvert, MsgSolicitedAdvert:
		n := int(r.u8())
		for i := 0; i < n && r.err == nil; i++ {
			var p PeripheralInfo
			p.ID = hw.DeviceID(r.u32())
			p.TLVs = r.tlvs()
			m.Peripherals = append(m.Peripherals, p)
		}
	case MsgDiscovery:
		m.Filter = r.tlvs()
	case MsgDriverInstallReq, MsgDriverRemovalReq, MsgRead, MsgStream, MsgClosed:
		m.DeviceID = hw.DeviceID(r.u32())
	case MsgDriverUpload:
		m.DeviceID = hw.DeviceID(r.u32())
		n := int(r.u16())
		m.Driver = append([]byte(nil), r.bytes(n)...)
	case MsgDriverDiscovery:
	case MsgDriverAdvert:
		n := int(r.u8())
		for i := 0; i < n && r.err == nil; i++ {
			m.Drivers = append(m.Drivers, hw.DeviceID(r.u32()))
		}
	case MsgDriverRemovalAck, MsgWriteAck:
		m.DeviceID = hw.DeviceID(r.u32())
		m.Status = r.u8()
	case MsgData, MsgWrite:
		m.DeviceID = hw.DeviceID(r.u32())
		n := int(r.u8())
		m.Data = append([]byte(nil), r.bytes(n)...)
	case MsgEstablished:
		m.DeviceID = hw.DeviceID(r.u32())
		copy(m.Group[:], r.bytes(16))
	default:
		return nil, fmt.Errorf("proto: unknown message type %d", m.Type)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("proto: %d trailing bytes in %v", len(r.data)-r.pos, m.Type)
	}
	return m, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendTLVs(buf []byte, tlvs []TLV) ([]byte, error) {
	if len(tlvs) > 255 {
		return nil, errors.New("proto: too many TLVs")
	}
	buf = append(buf, byte(len(tlvs)))
	for _, t := range tlvs {
		if len(t.Value) > 255 {
			return nil, errors.New("proto: TLV value too long")
		}
		buf = append(buf, t.Type, byte(len(t.Value)))
		buf = append(buf, t.Value...)
	}
	return buf, nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.data) {
		r.err = ErrTruncated
		return nil
	}
	// Three-index slice: borrowed views must not be able to append into the
	// bytes that follow them in the datagram.
	b := r.data[r.pos : r.pos+n : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if r.err != nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) tlvs() []TLV {
	n := int(r.u8())
	var out []TLV
	for i := 0; i < n && r.err == nil; i++ {
		typ := r.u8()
		ln := int(r.u8())
		val := append([]byte(nil), r.bytes(ln)...)
		if r.err == nil {
			out = append(out, TLV{Type: typ, Value: val})
		}
	}
	return out
}

// appendTLVs is the borrowing variant of tlvs: parsed values alias r.data and
// tuples are appended to dst (Decoder scratch) instead of a fresh slice.
func (r *reader) appendTLVs(dst []TLV) []TLV {
	n := int(r.u8())
	for i := 0; i < n && r.err == nil; i++ {
		typ := r.u8()
		ln := int(r.u8())
		val := r.bytes(ln)
		if r.err == nil {
			dst = append(dst, TLV{Type: typ, Value: val})
		}
	}
	return dst
}

// Decoder is the allocation-free counterpart of Decode: it parses datagrams
// into a reusable Message whose slices (Peripherals, TLVs, Filter, Drivers)
// are scratch owned by the Decoder and whose byte fields (TLV values, Driver,
// Data) alias the input buffer. The returned message is therefore BORROWED:
// it is valid only until the next Decode call on the same Decoder and only
// while the input buffer lives — retain parts with PeripheralInfo.Clone or an
// explicit copy. A Decoder is not safe for concurrent use; pool instances
// with AcquireDecoder/ReleaseDecoder when handlers run on pool workers.
type Decoder struct {
	msg     Message
	periphs []PeripheralInfo
	tlvs    []TLV
	spans   [][2]int // per-peripheral [start, end) into tlvs
	drivers []hw.DeviceID
}

var decoderPool = sync.Pool{New: func() any { return new(Decoder) }}

// AcquireDecoder returns a pooled Decoder. Release it with ReleaseDecoder
// once the decoded message is no longer referenced.
func AcquireDecoder() *Decoder { return decoderPool.Get().(*Decoder) }

// ReleaseDecoder returns a Decoder to the pool. The caller must not touch the
// Decoder or any message it produced afterwards.
func ReleaseDecoder(d *Decoder) { decoderPool.Put(d) }

// Decode parses a datagram payload into the Decoder's scratch message. The
// wire format accepted and the resulting field values are identical to the
// package-level Decode; only the memory discipline differs (see the type
// comment). Steady state it performs no heap allocation.
func (d *Decoder) Decode(data []byte) (*Message, error) {
	r := reader{data: data}
	m := &d.msg
	*m = Message{}
	d.periphs = d.periphs[:0]
	d.tlvs = d.tlvs[:0]
	d.spans = d.spans[:0]
	d.drivers = d.drivers[:0]
	m.Type = MsgType(r.u8())
	m.Seq = r.u16()
	switch m.Type {
	case MsgUnsolicitedAdvert, MsgSolicitedAdvert:
		n := int(r.u8())
		for i := 0; i < n && r.err == nil; i++ {
			id := hw.DeviceID(r.u32())
			start := len(d.tlvs)
			d.tlvs = r.appendTLVs(d.tlvs)
			if r.err != nil {
				break
			}
			d.periphs = append(d.periphs, PeripheralInfo{ID: id})
			d.spans = append(d.spans, [2]int{start, len(d.tlvs)})
		}
		// Fix up the TLV sub-slices only after all appends: growth may have
		// moved d.tlvs' backing array.
		for i := range d.periphs {
			s := d.spans[i]
			d.periphs[i].TLVs = d.tlvs[s[0]:s[1]:s[1]]
		}
		m.Peripherals = d.periphs
	case MsgDiscovery:
		d.tlvs = r.appendTLVs(d.tlvs)
		m.Filter = d.tlvs
	case MsgDriverInstallReq, MsgDriverRemovalReq, MsgRead, MsgStream, MsgClosed:
		m.DeviceID = hw.DeviceID(r.u32())
	case MsgDriverUpload:
		m.DeviceID = hw.DeviceID(r.u32())
		n := int(r.u16())
		m.Driver = r.bytes(n)
	case MsgDriverDiscovery:
	case MsgDriverAdvert:
		n := int(r.u8())
		for i := 0; i < n && r.err == nil; i++ {
			d.drivers = append(d.drivers, hw.DeviceID(r.u32()))
		}
		m.Drivers = d.drivers
	case MsgDriverRemovalAck, MsgWriteAck:
		m.DeviceID = hw.DeviceID(r.u32())
		m.Status = r.u8()
	case MsgData, MsgWrite:
		m.DeviceID = hw.DeviceID(r.u32())
		n := int(r.u8())
		m.Data = r.bytes(n)
	case MsgEstablished:
		m.DeviceID = hw.DeviceID(r.u32())
		copy(m.Group[:], r.bytes(16))
	default:
		return nil, fmt.Errorf("proto: unknown message type %d", m.Type)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("proto: %d trailing bytes in %v", len(r.data)-r.pos, m.Type)
	}
	return m, nil
}

// Values32 packs int32 values into a Data payload (big-endian), the format
// drivers' return values travel in.
func Values32(vals []int32) []byte {
	return AppendValues32(make([]byte, 0, len(vals)*4), vals)
}

// AppendValues32 packs int32 values into a Data payload appended to dst and
// returns the extended slice — the allocation-free variant of Values32 for
// hot paths that own a reusable scratch buffer (pass dst[:0] to reuse it).
func AppendValues32(dst []byte, vals []int32) []byte {
	for _, v := range vals {
		dst = appendU32(dst, uint32(v))
	}
	return dst
}

// ParseValues32 unpacks a Data payload into int32 values.
func ParseValues32(data []byte) ([]int32, error) {
	return AppendParseValues32(nil, data)
}

// AppendParseValues32 unpacks a Data payload, appending the values to dst,
// and returns the extended slice — the caller-scratch variant of
// ParseValues32 for hot paths that reuse a value buffer across requests
// (pass scratch[:0] to reuse it; with a nil dst it behaves exactly like
// ParseValues32). dst is returned unchanged on error.
func AppendParseValues32(dst []int32, data []byte) ([]int32, error) {
	if len(data)%4 != 0 {
		return dst, fmt.Errorf("proto: data length %d is not a multiple of 4", len(data))
	}
	n := len(data) / 4
	if cap(dst)-len(dst) < n {
		grown := make([]int32, len(dst), len(dst)+n)
		copy(grown, dst)
		dst = grown
	}
	for i := 0; i < n; i++ {
		dst = append(dst, int32(uint32(data[4*i])<<24|uint32(data[4*i+1])<<16|uint32(data[4*i+2])<<8|uint32(data[4*i+3])))
	}
	return dst, nil
}

// ValuesBytes packs int32 values as single bytes (for byte-oriented
// peripherals like the RFID reader's ASCII payload).
func ValuesBytes(vals []int32) []byte {
	out := make([]byte, len(vals))
	for i, v := range vals {
		out[i] = byte(v)
	}
	return out
}
