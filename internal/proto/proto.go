// Package proto implements the µPnP interaction protocol of Section 5.2:
// compact binary messages carried in UDP datagrams on port 6030, covering
// peripheral advertisement and discovery (messages 1–3), driver management
// (4–9) and peripheral data operations read/stream/write (10–17).
//
// Every message starts with a one-byte type and a 16-bit sequence number
// used to associate requests with replies. Peripheral metadata travels as
// type-length-value tuples.
package proto

import (
	"errors"
	"fmt"

	"micropnp/internal/hw"
)

// MsgType identifies a protocol message. The numbering follows the
// paper's Figures 10 and 11.
type MsgType uint8

// Protocol message types.
const (
	MsgUnsolicitedAdvert MsgType = 1  // Thing -> all-clients group
	MsgDiscovery         MsgType = 2  // client -> peripheral group
	MsgSolicitedAdvert   MsgType = 3  // Thing -> requesting client (unicast)
	MsgDriverInstallReq  MsgType = 4  // Thing -> manager (anycast)
	MsgDriverUpload      MsgType = 5  // manager -> Thing
	MsgDriverDiscovery   MsgType = 6  // manager -> Thing
	MsgDriverAdvert      MsgType = 7  // Thing -> manager
	MsgDriverRemovalReq  MsgType = 8  // manager -> Thing
	MsgDriverRemovalAck  MsgType = 9  // Thing -> manager
	MsgRead              MsgType = 10 // client -> Thing
	MsgData              MsgType = 11 // Thing -> client (also stream data, 14)
	MsgStream            MsgType = 12 // client -> Thing
	MsgEstablished       MsgType = 13 // Thing -> client
	MsgClosed            MsgType = 15 // Thing -> stream group
	MsgWrite             MsgType = 16 // client -> Thing
	MsgWriteAck          MsgType = 17 // Thing -> client
)

func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgUnsolicitedAdvert: "unsolicited-advertisement",
		MsgDiscovery:         "discovery",
		MsgSolicitedAdvert:   "solicited-advertisement",
		MsgDriverInstallReq:  "driver-install-request",
		MsgDriverUpload:      "driver-upload",
		MsgDriverDiscovery:   "driver-discovery",
		MsgDriverAdvert:      "driver-advertisement",
		MsgDriverRemovalReq:  "driver-removal-request",
		MsgDriverRemovalAck:  "driver-removal-ack",
		MsgRead:              "read",
		MsgData:              "data",
		MsgStream:            "stream",
		MsgEstablished:       "established",
		MsgClosed:            "closed",
		MsgWrite:             "write",
		MsgWriteAck:          "write-ack",
	}
	if n, ok := names[t]; ok {
		return n
	}
	return fmt.Sprintf("msg(%d)", uint8(t))
}

// TLV tuple types used in advertisements and discovery filters.
const (
	TLVName    uint8 = 1 // human-readable peripheral name
	TLVBusKind uint8 = 2 // one byte, hw.BusKind
	TLVChannel uint8 = 3 // one byte, control-board channel
	TLVUnits   uint8 = 4 // unit string for produced values
)

// TLV is one type-length-value tuple.
type TLV struct {
	Type  uint8
	Value []byte
}

// PeripheralInfo describes one locally connected peripheral inside an
// advertisement: the 4-byte type identifier plus TLV metadata.
type PeripheralInfo struct {
	ID   hw.DeviceID
	TLVs []TLV
}

// TLVString extracts a string-valued tuple, if present.
func (p PeripheralInfo) TLVString(typ uint8) (string, bool) {
	for _, t := range p.TLVs {
		if t.Type == typ {
			return string(t.Value), true
		}
	}
	return "", false
}

// TLVByte extracts a one-byte tuple, if present.
func (p PeripheralInfo) TLVByte(typ uint8) (byte, bool) {
	for _, t := range p.TLVs {
		if t.Type == typ && len(t.Value) == 1 {
			return t.Value[0], true
		}
	}
	return 0, false
}

// Message is a decoded µPnP protocol message. Field usage depends on Type.
type Message struct {
	Type MsgType
	Seq  uint16

	// Peripherals: advertisements (1, 3).
	Peripherals []PeripheralInfo
	// Filter: discovery (2).
	Filter []TLV
	// DeviceID: driver management and data operations (4, 5, 8, 9, 10-17).
	DeviceID hw.DeviceID
	// Driver: bytecode payload (5); driver ID list (7) uses Drivers.
	Driver  []byte
	Drivers []hw.DeviceID
	// Status: acks (9, 17): 0 = ok.
	Status uint8
	// Data: values (11, 16).
	Data []byte
	// Group: the stream group address (13), 16 bytes.
	Group [16]byte
}

// ErrTruncated reports a short or malformed message.
var ErrTruncated = errors.New("proto: truncated message")

// Encode serialises the message.
func (m *Message) Encode() ([]byte, error) {
	buf := []byte{byte(m.Type), byte(m.Seq >> 8), byte(m.Seq)}
	switch m.Type {
	case MsgUnsolicitedAdvert, MsgSolicitedAdvert:
		if len(m.Peripherals) > 255 {
			return nil, errors.New("proto: too many peripherals")
		}
		buf = append(buf, byte(len(m.Peripherals)))
		for _, p := range m.Peripherals {
			buf = appendU32(buf, uint32(p.ID))
			var err error
			buf, err = appendTLVs(buf, p.TLVs)
			if err != nil {
				return nil, err
			}
		}
	case MsgDiscovery:
		var err error
		buf, err = appendTLVs(buf, m.Filter)
		if err != nil {
			return nil, err
		}
	case MsgDriverInstallReq, MsgDriverRemovalReq, MsgRead, MsgStream, MsgClosed:
		buf = appendU32(buf, uint32(m.DeviceID))
	case MsgDriverUpload:
		buf = appendU32(buf, uint32(m.DeviceID))
		if len(m.Driver) > 0xffff {
			return nil, errors.New("proto: driver too large")
		}
		buf = append(buf, byte(len(m.Driver)>>8), byte(len(m.Driver)))
		buf = append(buf, m.Driver...)
	case MsgDriverDiscovery:
		// type + seq only
	case MsgDriverAdvert:
		if len(m.Drivers) > 255 {
			return nil, errors.New("proto: too many drivers")
		}
		buf = append(buf, byte(len(m.Drivers)))
		for _, id := range m.Drivers {
			buf = appendU32(buf, uint32(id))
		}
	case MsgDriverRemovalAck, MsgWriteAck:
		buf = appendU32(buf, uint32(m.DeviceID))
		buf = append(buf, m.Status)
	case MsgData, MsgWrite:
		buf = appendU32(buf, uint32(m.DeviceID))
		if len(m.Data) > 255 {
			return nil, errors.New("proto: data too large")
		}
		buf = append(buf, byte(len(m.Data)))
		buf = append(buf, m.Data...)
	case MsgEstablished:
		buf = appendU32(buf, uint32(m.DeviceID))
		buf = append(buf, m.Group[:]...)
	default:
		return nil, fmt.Errorf("proto: cannot encode type %v", m.Type)
	}
	return buf, nil
}

// Decode parses a datagram payload.
func Decode(data []byte) (*Message, error) {
	r := &reader{data: data}
	m := &Message{}
	m.Type = MsgType(r.u8())
	m.Seq = r.u16()
	switch m.Type {
	case MsgUnsolicitedAdvert, MsgSolicitedAdvert:
		n := int(r.u8())
		for i := 0; i < n && r.err == nil; i++ {
			var p PeripheralInfo
			p.ID = hw.DeviceID(r.u32())
			p.TLVs = r.tlvs()
			m.Peripherals = append(m.Peripherals, p)
		}
	case MsgDiscovery:
		m.Filter = r.tlvs()
	case MsgDriverInstallReq, MsgDriverRemovalReq, MsgRead, MsgStream, MsgClosed:
		m.DeviceID = hw.DeviceID(r.u32())
	case MsgDriverUpload:
		m.DeviceID = hw.DeviceID(r.u32())
		n := int(r.u16())
		m.Driver = append([]byte(nil), r.bytes(n)...)
	case MsgDriverDiscovery:
	case MsgDriverAdvert:
		n := int(r.u8())
		for i := 0; i < n && r.err == nil; i++ {
			m.Drivers = append(m.Drivers, hw.DeviceID(r.u32()))
		}
	case MsgDriverRemovalAck, MsgWriteAck:
		m.DeviceID = hw.DeviceID(r.u32())
		m.Status = r.u8()
	case MsgData, MsgWrite:
		m.DeviceID = hw.DeviceID(r.u32())
		n := int(r.u8())
		m.Data = append([]byte(nil), r.bytes(n)...)
	case MsgEstablished:
		m.DeviceID = hw.DeviceID(r.u32())
		copy(m.Group[:], r.bytes(16))
	default:
		return nil, fmt.Errorf("proto: unknown message type %d", m.Type)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("proto: %d trailing bytes in %v", len(r.data)-r.pos, m.Type)
	}
	return m, nil
}

func appendU32(buf []byte, v uint32) []byte {
	return append(buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
}

func appendTLVs(buf []byte, tlvs []TLV) ([]byte, error) {
	if len(tlvs) > 255 {
		return nil, errors.New("proto: too many TLVs")
	}
	buf = append(buf, byte(len(tlvs)))
	for _, t := range tlvs {
		if len(t.Value) > 255 {
			return nil, errors.New("proto: TLV value too long")
		}
		buf = append(buf, t.Type, byte(len(t.Value)))
		buf = append(buf, t.Value...)
	}
	return buf, nil
}

type reader struct {
	data []byte
	pos  int
	err  error
}

func (r *reader) bytes(n int) []byte {
	if r.err != nil || n < 0 || r.pos+n > len(r.data) {
		r.err = ErrTruncated
		return nil
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b
}

func (r *reader) u8() uint8 {
	b := r.bytes(1)
	if r.err != nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.bytes(2)
	if r.err != nil {
		return 0
	}
	return uint16(b[0])<<8 | uint16(b[1])
}

func (r *reader) u32() uint32 {
	b := r.bytes(4)
	if r.err != nil {
		return 0
	}
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

func (r *reader) tlvs() []TLV {
	n := int(r.u8())
	var out []TLV
	for i := 0; i < n && r.err == nil; i++ {
		typ := r.u8()
		ln := int(r.u8())
		val := append([]byte(nil), r.bytes(ln)...)
		if r.err == nil {
			out = append(out, TLV{Type: typ, Value: val})
		}
	}
	return out
}

// Values32 packs int32 values into a Data payload (big-endian), the format
// drivers' return values travel in.
func Values32(vals []int32) []byte {
	out := make([]byte, 0, len(vals)*4)
	for _, v := range vals {
		out = appendU32(out, uint32(v))
	}
	return out
}

// ParseValues32 unpacks a Data payload into int32 values.
func ParseValues32(data []byte) ([]int32, error) {
	if len(data)%4 != 0 {
		return nil, fmt.Errorf("proto: data length %d is not a multiple of 4", len(data))
	}
	out := make([]int32, len(data)/4)
	for i := range out {
		out[i] = int32(uint32(data[4*i])<<24 | uint32(data[4*i+1])<<16 | uint32(data[4*i+2])<<8 | uint32(data[4*i+3]))
	}
	return out, nil
}

// ValuesBytes packs int32 values as single bytes (for byte-oriented
// peripherals like the RFID reader's ASCII payload).
func ValuesBytes(vals []int32) []byte {
	out := make([]byte, len(vals))
	for i, v := range vals {
		out[i] = byte(v)
	}
	return out
}
