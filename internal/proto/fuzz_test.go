package proto

import (
	"bytes"
	"testing"

	"micropnp/internal/hw"
)

// FuzzProtoRoundTrip cross-checks the two decode implementations and the two
// encode entry points on arbitrary datagrams:
//
//   - Decode (copying) and Decoder.Decode (borrowing) must accept exactly the
//     same inputs.
//   - When a datagram decodes, re-encoding either decode's result must
//     reproduce the input byte-for-byte (the wire format is canonical: every
//     accepted byte is stored and re-emitted, and trailing bytes are
//     rejected).
//   - AppendEncode must agree with Encode byte-for-byte and must leave a
//     non-empty destination prefix intact.
//
// CI runs this as a short smoke leg (-fuzztime 10s); longer local runs just
// work: go test -fuzz FuzzProtoRoundTrip ./internal/proto
func FuzzProtoRoundTrip(f *testing.F) {
	seedMsgs := []*Message{
		{Type: MsgUnsolicitedAdvert, Seq: 7, Peripherals: []PeripheralInfo{
			{ID: 0xad1cbe01, TLVs: []TLV{
				{Type: TLVName, Value: []byte("kitchen")},
				{Type: TLVChannel, Value: []byte{2}},
				{Type: TLVUnits, Value: []byte("0.1°C")},
			}},
			{ID: 0xed3f0ac1},
		}},
		{Type: MsgDiscovery, Seq: 1, Filter: []TLV{{Type: TLVBusKind, Value: []byte{1}}}},
		{Type: MsgRead, Seq: 0xffff, DeviceID: 0xad1cbe01},
		{Type: MsgData, Seq: 3, DeviceID: 0xad1cbe01, Data: []byte{0, 0, 0, 238}},
		{Type: MsgDriverUpload, Seq: 9, DeviceID: 5, Driver: []byte{1, 2, 3, 4, 5}},
		{Type: MsgDriverAdvert, Seq: 2, Drivers: []hw.DeviceID{1, 0xad1cbe01}},
		{Type: MsgEstablished, Seq: 4, DeviceID: 6},
		{Type: MsgWriteAck, Seq: 5, DeviceID: 6, Status: 1},
		{Type: MsgDriverDiscovery, Seq: 8},
	}
	for _, m := range seedMsgs {
		if b, err := m.Encode(); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0})
	f.Add([]byte{byte(MsgClosed), 0, 1, 0, 0, 0})

	var dec Decoder
	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err1 := Decode(data)
		m2, err2 := dec.Decode(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Decode err=%v, Decoder err=%v for %x", err1, err2, data)
		}
		if err1 != nil {
			return
		}
		b1, err := m1.Encode()
		if err != nil {
			t.Fatalf("re-encoding Decode result: %v", err)
		}
		if !bytes.Equal(b1, data) {
			t.Fatalf("Encode(Decode(%x)) = %x", data, b1)
		}
		prefix := []byte("prefix")
		b2, err := m2.AppendEncode(append([]byte(nil), prefix...))
		if err != nil {
			t.Fatalf("re-encoding Decoder result: %v", err)
		}
		if !bytes.Equal(b2[:len(prefix)], prefix) {
			t.Fatalf("AppendEncode clobbered the destination prefix: %x", b2)
		}
		if !bytes.Equal(b2[len(prefix):], data) {
			t.Fatalf("AppendEncode(Decoder.Decode(%x)) = %x", data, b2[len(prefix):])
		}
	})
}
