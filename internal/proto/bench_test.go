package proto

import (
	"testing"

	"micropnp/internal/hw"
)

// protoBatch is the number of encode/decode round trips one benchmark op
// covers: a single round trip is far below timer resolution at -benchtime 1x
// (the CI regression gate), so a stable batch is measured instead.
const protoBatch = 1_000

// BenchmarkProtoRoundTrip measures the steady-state message hot path at the
// codec layer: encoding a read request and a data reply into a reused buffer
// and decoding both through a reused Decoder — the per-message work every
// client→thing→client interaction pays twice per hop. Gated in CI on both
// ns/op and allocs/op; the append/borrow API keeps steady state at zero
// allocations where the copying API allocated per message.
func BenchmarkProtoRoundTrip(b *testing.B) {
	read := &Message{Type: MsgRead, Seq: 42, DeviceID: 0xad1cbe01}
	data := &Message{Type: MsgData, Seq: 42, DeviceID: 0xad1cbe01, Data: Values32([]int32{238})}
	adv := &Message{Type: MsgUnsolicitedAdvert, Seq: 7, Peripherals: []PeripheralInfo{
		{ID: 0xad1cbe01, TLVs: []TLV{
			{Type: TLVName, Value: []byte("bench")},
			{Type: TLVChannel, Value: []byte{0}},
			{Type: TLVUnits, Value: []byte("0.1°C")},
		}},
	}}
	var (
		buf  []byte
		dec  Decoder
		sink hw.DeviceID
	)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < protoBatch; j++ {
			for _, m := range [...]*Message{read, data, adv} {
				var err error
				buf, err = m.AppendEncode(buf[:0])
				if err != nil {
					b.Fatal(err)
				}
				got, err := dec.Decode(buf)
				if err != nil {
					b.Fatal(err)
				}
				sink = got.DeviceID
			}
		}
	}
	b.StopTimer()
	_ = sink
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*protoBatch*3), "ns/msg")
}
