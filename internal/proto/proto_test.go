package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"micropnp/internal/hw"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("encode %v: %v", m.Type, err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %v: %v", m.Type, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	var group [16]byte
	copy(group[:], []byte{0xff, 0x3e, 0, 0x30, 0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0xed, 0x3f, 0x0a, 0xc1})
	msgs := []*Message{
		{Type: MsgUnsolicitedAdvert, Seq: 1, Peripherals: []PeripheralInfo{
			{ID: 0xad1cbe01, TLVs: []TLV{{Type: TLVName, Value: []byte("TMP36")}, {Type: TLVBusKind, Value: []byte{0}}}},
			{ID: 0xed3f0ac1},
		}},
		{Type: MsgDiscovery, Seq: 2, Filter: []TLV{{Type: TLVBusKind, Value: []byte{1}}}},
		{Type: MsgDiscovery, Seq: 3},
		{Type: MsgSolicitedAdvert, Seq: 4, Peripherals: []PeripheralInfo{{ID: 1}}},
		{Type: MsgDriverInstallReq, Seq: 5, DeviceID: 0xad1cbe01},
		{Type: MsgDriverUpload, Seq: 6, DeviceID: 0xad1cbe01, Driver: bytes.Repeat([]byte{0xB5}, 80)},
		{Type: MsgDriverDiscovery, Seq: 7},
		{Type: MsgDriverAdvert, Seq: 8, Drivers: []hw.DeviceID{1, 2, 0xffff0000}},
		{Type: MsgDriverRemovalReq, Seq: 9, DeviceID: 3},
		{Type: MsgDriverRemovalAck, Seq: 10, DeviceID: 3, Status: 0},
		{Type: MsgRead, Seq: 11, DeviceID: 4},
		{Type: MsgData, Seq: 11, DeviceID: 4, Data: []byte{1, 2, 3, 4}},
		{Type: MsgStream, Seq: 12, DeviceID: 4},
		{Type: MsgEstablished, Seq: 12, DeviceID: 4, Group: group},
		{Type: MsgClosed, Seq: 13, DeviceID: 4},
		{Type: MsgWrite, Seq: 14, DeviceID: 5, Data: []byte{0x01}},
		{Type: MsgWriteAck, Seq: 14, DeviceID: 5, Status: 1},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip mismatch:\n in: %+v\nout: %+v", m.Type, m, got)
		}
		if m.Type.String() == "" || len(m.Type.String()) < 3 {
			t.Errorf("%d needs a name", m.Type)
		}
	}
}

func TestSeqPreserved(t *testing.T) {
	f := func(seq uint16) bool {
		m := &Message{Type: MsgRead, Seq: seq, DeviceID: 9}
		return roundTrip(t, m).Seq == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99, 0, 0},                           // unknown type
		{byte(MsgRead), 0},                   // truncated seq
		{byte(MsgRead), 0, 1},                // missing device id
		{byte(MsgData), 0, 1, 0, 0, 0, 1, 5}, // data length 5 but no bytes
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	m := &Message{Type: MsgRead, Seq: 1, DeviceID: 2}
	data, _ := m.Encode()
	if _, err := Decode(append(data, 0)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestDecodeTruncationsNeverPanic(t *testing.T) {
	m := &Message{Type: MsgUnsolicitedAdvert, Seq: 1, Peripherals: []PeripheralInfo{
		{ID: 0xad1cbe01, TLVs: []TLV{{Type: TLVName, Value: []byte("BMP180")}}},
	}}
	data, _ := m.Encode()
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("prefix %d must fail", n)
		}
	}
}

func TestDecodeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seed := [][]byte{}
	for _, m := range []*Message{
		{Type: MsgUnsolicitedAdvert, Peripherals: []PeripheralInfo{{ID: 7, TLVs: []TLV{{Type: 1, Value: []byte("x")}}}}},
		{Type: MsgDriverUpload, DeviceID: 7, Driver: bytes.Repeat([]byte{1}, 40)},
		{Type: MsgEstablished, DeviceID: 7},
	} {
		d, _ := m.Encode()
		seed = append(seed, d)
	}
	for i := 0; i < 3000; i++ {
		d := append([]byte(nil), seed[i%len(seed)]...)
		for j := 0; j < 1+rng.Intn(6); j++ {
			d[rng.Intn(len(d))] ^= byte(1 << rng.Intn(8))
		}
		if dec, err := Decode(d); err == nil {
			if _, err := dec.Encode(); err != nil {
				t.Fatalf("mutant decoded but re-encode failed: %v", err)
			}
		}
	}
}

func TestTLVAccessors(t *testing.T) {
	p := PeripheralInfo{ID: 1, TLVs: []TLV{
		{Type: TLVName, Value: []byte("HIH-4030")},
		{Type: TLVBusKind, Value: []byte{byte(hw.BusADC)}},
	}}
	if name, ok := p.TLVString(TLVName); !ok || name != "HIH-4030" {
		t.Fatalf("name = %q, %v", name, ok)
	}
	if kind, ok := p.TLVByte(TLVBusKind); !ok || hw.BusKind(kind) != hw.BusADC {
		t.Fatalf("kind = %d, %v", kind, ok)
	}
	if _, ok := p.TLVString(TLVUnits); ok {
		t.Fatal("missing TLV must report !ok")
	}
}

func TestValues32RoundTrip(t *testing.T) {
	f := func(a, b, c int32) bool {
		vals := []int32{a, b, c}
		got, err := ParseValues32(Values32(vals))
		return err == nil && reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseValues32([]byte{1, 2, 3}); err == nil {
		t.Fatal("non-multiple-of-4 must fail")
	}
	if got := ValuesBytes([]int32{65, 66}); string(got) != "AB" {
		t.Fatalf("ValuesBytes = %q", got)
	}
}

func TestEncodeLimits(t *testing.T) {
	big := &Message{Type: MsgDriverUpload, Driver: make([]byte, 70000)}
	if _, err := big.Encode(); err == nil {
		t.Fatal("oversized driver must fail")
	}
	longData := &Message{Type: MsgData, Data: make([]byte, 300)}
	if _, err := longData.Encode(); err == nil {
		t.Fatal("oversized data must fail")
	}
	if _, err := (&Message{Type: MsgType(99)}).Encode(); err == nil {
		t.Fatal("unknown type must fail")
	}
}
