package proto

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"micropnp/internal/hw"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("encode %v: %v", m.Type, err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %v: %v", m.Type, err)
	}
	return got
}

func TestRoundTripAllTypes(t *testing.T) {
	var group [16]byte
	copy(group[:], []byte{0xff, 0x3e, 0, 0x30, 0x20, 0x01, 0x0d, 0xb8, 0, 0, 0, 0, 0xed, 0x3f, 0x0a, 0xc1})
	msgs := []*Message{
		{Type: MsgUnsolicitedAdvert, Seq: 1, Peripherals: []PeripheralInfo{
			{ID: 0xad1cbe01, TLVs: []TLV{{Type: TLVName, Value: []byte("TMP36")}, {Type: TLVBusKind, Value: []byte{0}}}},
			{ID: 0xed3f0ac1},
		}},
		{Type: MsgDiscovery, Seq: 2, Filter: []TLV{{Type: TLVBusKind, Value: []byte{1}}}},
		{Type: MsgDiscovery, Seq: 3},
		{Type: MsgSolicitedAdvert, Seq: 4, Peripherals: []PeripheralInfo{{ID: 1}}},
		{Type: MsgDriverInstallReq, Seq: 5, DeviceID: 0xad1cbe01},
		{Type: MsgDriverUpload, Seq: 6, DeviceID: 0xad1cbe01, Driver: bytes.Repeat([]byte{0xB5}, 80)},
		{Type: MsgDriverDiscovery, Seq: 7},
		{Type: MsgDriverAdvert, Seq: 8, Drivers: []hw.DeviceID{1, 2, 0xffff0000}},
		{Type: MsgDriverRemovalReq, Seq: 9, DeviceID: 3},
		{Type: MsgDriverRemovalAck, Seq: 10, DeviceID: 3, Status: 0},
		{Type: MsgRead, Seq: 11, DeviceID: 4},
		{Type: MsgData, Seq: 11, DeviceID: 4, Data: []byte{1, 2, 3, 4}},
		{Type: MsgStream, Seq: 12, DeviceID: 4},
		{Type: MsgEstablished, Seq: 12, DeviceID: 4, Group: group},
		{Type: MsgClosed, Seq: 13, DeviceID: 4},
		{Type: MsgWrite, Seq: 14, DeviceID: 5, Data: []byte{0x01}},
		{Type: MsgWriteAck, Seq: 14, DeviceID: 5, Status: 1},
	}
	for _, m := range msgs {
		got := roundTrip(t, m)
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%v round trip mismatch:\n in: %+v\nout: %+v", m.Type, m, got)
		}
		if m.Type.String() == "" || len(m.Type.String()) < 3 {
			t.Errorf("%d needs a name", m.Type)
		}
	}
}

func TestSeqPreserved(t *testing.T) {
	f := func(seq uint16) bool {
		m := &Message{Type: MsgRead, Seq: seq, DeviceID: 9}
		return roundTrip(t, m).Seq == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{99, 0, 0},                           // unknown type
		{byte(MsgRead), 0},                   // truncated seq
		{byte(MsgRead), 0, 1},                // missing device id
		{byte(MsgData), 0, 1, 0, 0, 0, 1, 5}, // data length 5 but no bytes
	}
	for i, data := range cases {
		if _, err := Decode(data); err == nil {
			t.Errorf("case %d must fail", i)
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	m := &Message{Type: MsgRead, Seq: 1, DeviceID: 2}
	data, _ := m.Encode()
	if _, err := Decode(append(data, 0)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
}

func TestDecodeTruncationsNeverPanic(t *testing.T) {
	m := &Message{Type: MsgUnsolicitedAdvert, Seq: 1, Peripherals: []PeripheralInfo{
		{ID: 0xad1cbe01, TLVs: []TLV{{Type: TLVName, Value: []byte("BMP180")}}},
	}}
	data, _ := m.Encode()
	for n := 0; n < len(data); n++ {
		if _, err := Decode(data[:n]); err == nil {
			t.Fatalf("prefix %d must fail", n)
		}
	}
}

func TestDecodeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seed := [][]byte{}
	for _, m := range []*Message{
		{Type: MsgUnsolicitedAdvert, Peripherals: []PeripheralInfo{{ID: 7, TLVs: []TLV{{Type: 1, Value: []byte("x")}}}}},
		{Type: MsgDriverUpload, DeviceID: 7, Driver: bytes.Repeat([]byte{1}, 40)},
		{Type: MsgEstablished, DeviceID: 7},
	} {
		d, _ := m.Encode()
		seed = append(seed, d)
	}
	for i := 0; i < 3000; i++ {
		d := append([]byte(nil), seed[i%len(seed)]...)
		for j := 0; j < 1+rng.Intn(6); j++ {
			d[rng.Intn(len(d))] ^= byte(1 << rng.Intn(8))
		}
		if dec, err := Decode(d); err == nil {
			if _, err := dec.Encode(); err != nil {
				t.Fatalf("mutant decoded but re-encode failed: %v", err)
			}
		}
	}
}

func TestTLVAccessors(t *testing.T) {
	p := PeripheralInfo{ID: 1, TLVs: []TLV{
		{Type: TLVName, Value: []byte("HIH-4030")},
		{Type: TLVBusKind, Value: []byte{byte(hw.BusADC)}},
	}}
	if name, ok := p.TLVString(TLVName); !ok || name != "HIH-4030" {
		t.Fatalf("name = %q, %v", name, ok)
	}
	if kind, ok := p.TLVByte(TLVBusKind); !ok || hw.BusKind(kind) != hw.BusADC {
		t.Fatalf("kind = %d, %v", kind, ok)
	}
	if _, ok := p.TLVString(TLVUnits); ok {
		t.Fatal("missing TLV must report !ok")
	}
}

func TestValues32RoundTrip(t *testing.T) {
	f := func(a, b, c int32) bool {
		vals := []int32{a, b, c}
		got, err := ParseValues32(Values32(vals))
		return err == nil && reflect.DeepEqual(got, vals)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ParseValues32([]byte{1, 2, 3}); err == nil {
		t.Fatal("non-multiple-of-4 must fail")
	}
	if got := ValuesBytes([]int32{65, 66}); string(got) != "AB" {
		t.Fatalf("ValuesBytes = %q", got)
	}
}

func TestAppendValues32Scratch(t *testing.T) {
	vals := []int32{-5, 0, 1 << 30}
	want := Values32(vals)

	// Appending into a reused scratch produces identical bytes without
	// reallocating once capacity suffices.
	scratch := make([]byte, 0, 16)
	packed := AppendValues32(scratch[:0], vals)
	if !reflect.DeepEqual(packed, want) {
		t.Fatalf("AppendValues32 = %x, want %x", packed, want)
	}
	if &packed[0] != &scratch[:1][0] {
		t.Fatal("AppendValues32 must reuse the scratch's backing array")
	}
	// Appending preserves an existing prefix.
	prefixed := AppendValues32([]byte{0xff}, []int32{1})
	if !reflect.DeepEqual(prefixed, []byte{0xff, 0, 0, 0, 1}) {
		t.Fatalf("prefixed = %x", prefixed)
	}
}

func TestAppendParseValues32Scratch(t *testing.T) {
	vals := []int32{7, -1, 42}
	data := Values32(vals)

	// nil dst behaves exactly like ParseValues32.
	got, err := AppendParseValues32(nil, data)
	if err != nil || !reflect.DeepEqual(got, vals) {
		t.Fatalf("AppendParseValues32(nil) = %v, %v", got, err)
	}
	// A roomy scratch is reused, not reallocated.
	scratch := make([]int32, 0, 8)
	got, err = AppendParseValues32(scratch[:0], data)
	if err != nil || !reflect.DeepEqual(got, vals) {
		t.Fatalf("scratch parse = %v, %v", got, err)
	}
	if &got[0] != &scratch[:1][0] {
		t.Fatal("AppendParseValues32 must reuse the scratch's backing array")
	}
	// Recycling the returned slice across parses stays allocation-free.
	if allocs := testing.AllocsPerRun(100, func() {
		var perr error
		got, perr = AppendParseValues32(got[:0], data)
		if perr != nil {
			t.Fatal(perr)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state scratch parse allocates %v per run", allocs)
	}
	// An existing prefix is preserved; errors leave dst unchanged.
	prefixed, err := AppendParseValues32([]int32{9}, Values32([]int32{1}))
	if err != nil || !reflect.DeepEqual(prefixed, []int32{9, 1}) {
		t.Fatalf("prefixed = %v, %v", prefixed, err)
	}
	if out, err := AppendParseValues32([]int32{9}, []byte{1, 2, 3}); err == nil || !reflect.DeepEqual(out, []int32{9}) {
		t.Fatalf("error case = %v, %v", out, err)
	}
}

// encodeOf reduces a message to its canonical wire form for comparisons that
// must ignore nil-versus-empty slice representation differences between the
// copying and borrowing decoders.
func encodeOf(t *testing.T, m *Message) []byte {
	t.Helper()
	b, err := m.Encode()
	if err != nil {
		t.Fatalf("encode %v: %v", m.Type, err)
	}
	return b
}

func TestDecoderMatchesDecode(t *testing.T) {
	var group [16]byte
	group[0], group[1] = 0xff, 0x3e
	msgs := []*Message{
		{Type: MsgUnsolicitedAdvert, Seq: 1, Peripherals: []PeripheralInfo{
			{ID: 0xad1cbe01, TLVs: []TLV{{Type: TLVName, Value: []byte("TMP36")}, {Type: TLVUnits, Value: []byte("0.1°C")}}},
			{ID: 0xed3f0ac1, TLVs: []TLV{{Type: TLVChannel, Value: []byte{2}}}},
		}},
		{Type: MsgDiscovery, Seq: 2, Filter: []TLV{{Type: TLVBusKind, Value: []byte{1}}}},
		{Type: MsgDriverUpload, Seq: 6, DeviceID: 0xad1cbe01, Driver: bytes.Repeat([]byte{0xB5}, 80)},
		{Type: MsgDriverAdvert, Seq: 8, Drivers: []hw.DeviceID{1, 2, 0xffff0000}},
		{Type: MsgData, Seq: 11, DeviceID: 4, Data: []byte{1, 2, 3, 4}},
		{Type: MsgEstablished, Seq: 12, DeviceID: 4, Group: group},
		{Type: MsgWriteAck, Seq: 14, DeviceID: 5, Status: 1},
	}
	var dec Decoder
	// Two passes: the second exercises scratch reuse after every shape.
	for pass := 0; pass < 2; pass++ {
		for _, m := range msgs {
			wire := encodeOf(t, m)
			got, err := dec.Decode(wire)
			if err != nil {
				t.Fatalf("pass %d: Decoder.Decode(%v): %v", pass, m.Type, err)
			}
			if !bytes.Equal(encodeOf(t, got), wire) {
				t.Errorf("pass %d: Decoder result for %v diverges from Decode:\n got %+v\nwant %+v", pass, m.Type, got, m)
			}
		}
	}
	// Rejection parity on malformed inputs.
	for i, bad := range [][]byte{nil, {}, {99, 0, 0}, {byte(MsgRead), 0, 1}} {
		if _, err := dec.Decode(bad); err == nil {
			t.Errorf("malformed case %d must fail", i)
		}
	}
}

func TestDecoderBorrowsInput(t *testing.T) {
	m := &Message{Type: MsgUnsolicitedAdvert, Seq: 1, Peripherals: []PeripheralInfo{
		{ID: 7, TLVs: []TLV{{Type: TLVName, Value: []byte("orig")}}},
	}}
	wire := encodeOf(t, m)
	var dec Decoder
	got, err := dec.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	name, _ := got.Peripherals[0].TLVString(TLVName)
	if name != "orig" {
		t.Fatalf("name = %q", name)
	}
	// The decoded TLV value aliases the wire buffer: mutating the buffer must
	// show through (that is the zero-copy contract callers must respect), and
	// Clone must sever the alias.
	clone := got.Peripherals[0].Clone()
	copy(wire[len(wire)-4:], "XXXX")
	if name, _ := got.Peripherals[0].TLVString(TLVName); name != "XXXX" {
		t.Fatalf("borrowed view = %q, want XXXX (must alias input)", name)
	}
	if name, _ := clone.TLVString(TLVName); name != "orig" {
		t.Fatalf("clone = %q, want orig (must own its memory)", name)
	}
}

func TestDecoderReuseInvalidatesPrior(t *testing.T) {
	a := encodeOf(t, &Message{Type: MsgDriverAdvert, Seq: 1, Drivers: []hw.DeviceID{1, 2, 3}})
	b := encodeOf(t, &Message{Type: MsgDriverAdvert, Seq: 2, Drivers: []hw.DeviceID{9}})
	var dec Decoder
	first, err := dec.Decode(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(b); err != nil {
		t.Fatal(err)
	}
	// first and the second result are the same scratch message.
	if first.Seq != 2 || len(first.Drivers) != 1 {
		t.Fatalf("scratch not reused: %+v", first)
	}
}

func TestAppendEncodePreservesPrefix(t *testing.T) {
	m := &Message{Type: MsgRead, Seq: 3, DeviceID: 4}
	prefix := []byte("hdr")
	out, err := m.AppendEncode(append([]byte(nil), prefix...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:3], prefix) {
		t.Fatalf("prefix clobbered: %q", out)
	}
	if !bytes.Equal(out[3:], encodeOf(t, m)) {
		t.Fatalf("appended encoding diverges from Encode: %x", out[3:])
	}
	// Errors must hand the destination back unmodified.
	bad := &Message{Type: MsgType(99)}
	out2, err := bad.AppendEncode(prefix)
	if err == nil || !bytes.Equal(out2, prefix) {
		t.Fatalf("error path: out=%q err=%v", out2, err)
	}
}

func TestHotPathAllocationFree(t *testing.T) {
	read := &Message{Type: MsgRead, Seq: 42, DeviceID: 0xad1cbe01}
	buf, err := read.AppendEncode(nil)
	if err != nil {
		t.Fatal(err)
	}
	var dec Decoder
	if _, err := dec.Decode(buf); err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf, _ = read.AppendEncode(buf[:0])
		if _, err := dec.Decode(buf); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("steady-state encode+decode allocates %.1f times per round trip", n)
	}
	if n := testing.AllocsPerRun(100, func() { _ = MsgRead.String() }); n != 0 {
		t.Fatalf("MsgType.String allocates %.1f times per call", n)
	}
}

func TestEncodeLimits(t *testing.T) {
	big := &Message{Type: MsgDriverUpload, Driver: make([]byte, 70000)}
	if _, err := big.Encode(); err == nil {
		t.Fatal("oversized driver must fail")
	}
	longData := &Message{Type: MsgData, Data: make([]byte, 300)}
	if _, err := longData.Encode(); err == nil {
		t.Fatal("oversized data must fail")
	}
	if _, err := (&Message{Type: MsgType(99)}).Encode(); err == nil {
		t.Fatal("unknown type must fail")
	}
}
