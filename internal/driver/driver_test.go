package driver

import (
	"strings"
	"testing"
	"time"

	"micropnp/internal/bus"
	"micropnp/internal/bytecode"
	"micropnp/internal/dsl"
	"micropnp/internal/hw"
	"micropnp/internal/vm"
)

func TestStandardRepository(t *testing.T) {
	repo, err := StandardRepository()
	if err != nil {
		t.Fatal(err)
	}
	entries := repo.List()
	if len(entries) != 4 {
		t.Fatalf("entries = %d, want 4", len(entries))
	}
	for _, e := range entries {
		if e.Status != StatusPermanent {
			t.Errorf("%s must be permanent after upload", e.Name)
		}
		if len(e.Bytecode) == 0 || len(e.Bytecode) > 1024 {
			t.Errorf("%s bytecode size = %d, want compact", e.Name, len(e.Bytecode))
		}
	}
	got, ok := repo.Lookup(IDID20LA)
	if !ok || got.Bus != hw.BusUART {
		t.Fatalf("ID20LA lookup = %+v, %v", got, ok)
	}
}

func TestRepositoryLifecycle(t *testing.T) {
	repo := NewRepository()
	if err := repo.Reserve(0x1234, "Widget", hw.BusSPI); err != nil {
		t.Fatal(err)
	}
	if err := repo.Reserve(0x1234, "Widget2", hw.BusSPI); err == nil {
		t.Fatal("duplicate reservation must fail")
	}
	if err := repo.Reserve(hw.DeviceIDAllClients, "Bad", hw.BusSPI); err == nil {
		t.Fatal("reserved identifier must fail")
	}
	if _, ok := repo.Lookup(0x1234); ok {
		t.Fatal("provisional entry without driver must not be served")
	}
	// Provisional entries can be garbage collected; permanent ones cannot.
	if err := repo.Remove(0x1234); err != nil {
		t.Fatal(err)
	}
	if err := repo.Remove(0x1234); err == nil {
		t.Fatal("double removal must fail")
	}
}

func TestUploadValidation(t *testing.T) {
	repo := NewRepository()
	if err := repo.Reserve(0x1234, "Widget", hw.BusADC); err != nil {
		t.Fatal(err)
	}

	if err := repo.Upload(0x1234, []byte("garbage"), ""); err == nil {
		t.Fatal("garbage upload must be rejected")
	}

	// A valid driver but with the wrong claimed identifier.
	src := "event init():\n    pass;\nevent destroy():\n    pass;\n"
	wrong, err := dsl.Compile(src, 0x9999)
	if err != nil {
		t.Fatal(err)
	}
	wrongCode, _ := wrong.Encode()
	if err := repo.Upload(0x1234, wrongCode, src); err == nil {
		t.Fatal("identifier mismatch must be rejected")
	}

	// Unreserved identifier.
	right, _ := dsl.Compile(src, 0x5555)
	rightCode, _ := right.Encode()
	if err := repo.Upload(0x5555, rightCode, src); err == nil {
		t.Fatal("upload for unreserved identifier must fail")
	}

	// Successful upload promotes to permanent.
	ok, _ := dsl.Compile(src, 0x1234)
	okCode, _ := ok.Encode()
	if err := repo.Upload(0x1234, okCode, src); err != nil {
		t.Fatal(err)
	}
	e, found := repo.Lookup(0x1234)
	if !found || e.Status != StatusPermanent {
		t.Fatalf("entry = %+v", e)
	}
	if err := repo.Remove(0x1234); err == nil {
		t.Fatal("permanent entries are immutable")
	}
	// Drivers may still be updated after promotion.
	if err := repo.Upload(0x1234, okCode, src); err != nil {
		t.Fatal(err)
	}
}

func TestUploadRejectsUnverifiableBytecode(t *testing.T) {
	repo := NewRepository()
	if err := repo.Reserve(0x7777, "Evil", hw.BusADC); err != nil {
		t.Fatal(err)
	}
	// Hand-build a program with an out-of-range static access.
	p := &bytecode.Program{
		DeviceID: 0x7777,
		Handlers: []bytecode.Handler{
			{Name: "init", Code: []byte{byte(bytecode.OpLoadStatic), 5, byte(bytecode.OpReturnVoid)}},
			{Name: "destroy", Code: []byte{byte(bytecode.OpReturnVoid)}},
		},
	}
	code, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Upload(0x7777, code, ""); err == nil {
		t.Fatal("unverifiable bytecode must be rejected")
	}
}

// TestTMP36DriverEndToEnd runs the shipped TMP36 driver against the
// simulated sensor and checks the temperature it reports.
func TestTMP36DriverEndToEnd(t *testing.T) {
	repo, err := StandardRepository()
	if err != nil {
		t.Fatal(err)
	}
	entry, _ := repo.Lookup(IDTMP36)
	prog, err := bytecode.Decode(entry.Bytecode)
	if err != nil {
		t.Fatal(err)
	}

	env := bus.NewEnvironment()
	env.Set(31.0, 40, 101_325)
	adc := bus.NewADC()
	adc.Connect(&bus.TMP36{Env: env})

	rt, err := vm.NewRuntime(prog, &vm.ADCLib{ADC: adc}, &vm.TimerLib{})
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	rt.OnReturn(func(v []int32) { got = v })
	rt.Start()
	rt.Post("read")
	rt.RunUntilIdle(0)

	if len(got) != 1 {
		t.Fatalf("returned %v", got)
	}
	// Tenths of °C; one ADC LSB ≈ 3.2 tenths.
	if got[0] < 305 || got[0] > 315 {
		t.Fatalf("temperature = %d tenths °C, want ~310", got[0])
	}
}

func TestHIH4030DriverEndToEnd(t *testing.T) {
	repo, _ := StandardRepository()
	entry, _ := repo.Lookup(IDHIH4030)
	prog, err := bytecode.Decode(entry.Bytecode)
	if err != nil {
		t.Fatal(err)
	}

	env := bus.NewEnvironment()
	env.Set(25, 55, 101_325)
	adc := bus.NewADC()
	adc.Connect(&bus.HIH4030{Env: env})

	rt, err := vm.NewRuntime(prog, &vm.ADCLib{ADC: adc}, &vm.TimerLib{})
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	rt.OnReturn(func(v []int32) { got = v })
	rt.Start()
	rt.Post("read")
	rt.RunUntilIdle(0)

	if len(got) != 1 {
		t.Fatalf("returned %v", got)
	}
	if got[0] < 520 || got[0] > 580 {
		t.Fatalf("humidity = %d tenths %%RH, want ~550", got[0])
	}
}

// TestBMP180DriverEndToEnd exercises the longest shipped driver: calibration
// readout, split-phase conversions through the timer library, and the full
// datasheet compensation — all in interpreted DSL bytecode.
func TestBMP180DriverEndToEnd(t *testing.T) {
	repo, _ := StandardRepository()
	entry, _ := repo.Lookup(IDBMP180)
	prog, err := bytecode.Decode(entry.Bytecode)
	if err != nil {
		t.Fatal(err)
	}

	env := bus.NewEnvironment()
	env.Set(22.5, 40, 99_800)
	i2c := bus.NewI2C()
	if err := i2c.Attach(bus.NewBMP180(env)); err != nil {
		t.Fatal(err)
	}

	rt, err := vm.NewRuntime(prog, &vm.I2CLib{Bus: i2c}, &vm.TimerLib{})
	if err != nil {
		t.Fatal(err)
	}
	var got []int32
	rt.OnReturn(func(v []int32) { got = v })
	rt.Start() // reads all 11 calibration words
	rt.Post("read")
	rt.RunUntilIdle(0)

	if len(got) != 2 {
		t.Fatalf("returned %v, want [temp, pressure]", got)
	}
	if got[0] < 220 || got[0] > 230 {
		t.Errorf("temperature = %d tenths °C, want ~225", got[0])
	}
	if got[1] < 99_780 || got[1] > 99_820 {
		t.Errorf("pressure = %d Pa, want ~99800", got[1])
	}
	// Conversion waits must have advanced the virtual clock (5 ms + 8 ms).
	if rt.Now() < 13*time.Millisecond {
		t.Errorf("virtual time = %v, conversions must take 13 ms+", rt.Now())
	}
}

func TestStandardDriverSLoC(t *testing.T) {
	// Table 3 shape: the BMP180 driver is the largest, TMP36 the smallest.
	sloc := map[string]int{}
	for _, sd := range StandardDrivers {
		src, err := Source(sd)
		if err != nil {
			t.Fatal(err)
		}
		sloc[sd.Name] = dsl.SLoC(src)
	}
	if !(sloc["TMP36"] < sloc["ID-20LA RFID"] && sloc["ID-20LA RFID"] < sloc["BMP180 Pressure"]) {
		t.Errorf("SLoC ordering broken: %v", sloc)
	}
	if sloc["TMP36"] > 40 {
		t.Errorf("TMP36 driver = %d SLoC, want small", sloc["TMP36"])
	}
}

func TestDriverSourcesCompileToClaimedIDs(t *testing.T) {
	for _, sd := range StandardDrivers {
		src, err := Source(sd)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := dsl.Compile(src, uint32(sd.ID))
		if err != nil {
			t.Fatalf("%s: %v", sd.Name, err)
		}
		if hw.DeviceID(prog.DeviceID) != sd.ID {
			t.Errorf("%s: device ID %v", sd.Name, hw.DeviceID(prog.DeviceID))
		}
		if !strings.Contains(src, "event init") || !strings.Contains(src, "event destroy") {
			t.Errorf("%s: missing lifecycle handlers", sd.Name)
		}
	}
}

func TestFullRepositoryIncludesExtensions(t *testing.T) {
	repo, err := FullRepository()
	if err != nil {
		t.Fatal(err)
	}
	if got := len(repo.List()); got != 6 {
		t.Fatalf("entries = %d, want 6 (4 standard + 2 extension)", got)
	}
	for _, sd := range ExtendedDrivers {
		e, ok := repo.Lookup(sd.ID)
		if !ok {
			t.Fatalf("missing extension driver %s", sd.Name)
		}
		if e.Status != StatusPermanent {
			t.Errorf("%s must be permanent", sd.Name)
		}
		if len(e.Bytecode) == 0 || len(e.Bytecode) > 1024 {
			t.Errorf("%s bytecode = %d bytes", sd.Name, len(e.Bytecode))
		}
	}
}

func TestExtendedDriverSourcesCompile(t *testing.T) {
	for _, sd := range ExtendedDrivers {
		src, err := Source(sd)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := dsl.Compile(src, uint32(sd.ID))
		if err != nil {
			t.Fatalf("%s: %v", sd.Name, err)
		}
		if err := prog.Verify(); err != nil {
			t.Fatalf("%s: %v", sd.Name, err)
		}
	}
}
