// Package driver implements the µPnP driver artefact life cycle: the driver
// repository hosted by µPnP managers, the validation step that promotes a
// provisional address-space entry to a permanent one (Section 3.3), and the
// standard driver set for the four evaluation peripherals of Section 6.
package driver

import (
	"embed"
	"fmt"
	"sort"
	"sync"

	"micropnp/internal/bytecode"
	"micropnp/internal/dsl"
	"micropnp/internal/hw"
)

//go:embed drivers/*.updsl
var driverFS embed.FS

// Status of an address-space entry (Section 3.3): an address stays
// provisional until a validated driver is uploaded, then becomes permanent
// (immutable allocation; drivers may still be updated).
type Status uint8

// Entry statuses.
const (
	StatusProvisional Status = iota
	StatusPermanent
)

func (s Status) String() string {
	if s == StatusPermanent {
		return "permanent"
	}
	return "provisional"
}

// Entry is one peripheral type in the repository: address-space metadata
// plus the current driver artefact.
type Entry struct {
	ID     hw.DeviceID
	Name   string
	Bus    hw.BusKind
	Status Status
	// Source is the DSL source, when known.
	Source string
	// Bytecode is the compiled, verified driver.
	Bytecode []byte
}

// Repository is the driver store a µPnP manager serves uploads from.
type Repository struct {
	mu      sync.Mutex
	entries map[hw.DeviceID]*Entry
}

// NewRepository returns an empty repository.
func NewRepository() *Repository {
	return &Repository{entries: map[hw.DeviceID]*Entry{}}
}

// Reserve allocates a provisional address (no driver yet).
func (r *Repository) Reserve(id hw.DeviceID, name string, bus hw.BusKind) error {
	if id.Reserved() {
		return fmt.Errorf("driver: %v is a reserved identifier", id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.entries[id]; dup {
		return fmt.Errorf("driver: identifier %v already allocated", id)
	}
	r.entries[id] = &Entry{ID: id, Name: name, Bus: bus, Status: StatusProvisional}
	return nil
}

// Upload validates a driver artefact against its claimed identifier and
// stores it; a successful upload promotes the entry to permanent. The
// artefact must decode, verify, and carry the entry's identifier.
func (r *Repository) Upload(id hw.DeviceID, code []byte, source string) error {
	prog, err := bytecode.Decode(code)
	if err != nil {
		return fmt.Errorf("driver: upload for %v rejected: %w", id, err)
	}
	if err := prog.Verify(); err != nil {
		return fmt.Errorf("driver: upload for %v rejected: %w", id, err)
	}
	if hw.DeviceID(prog.DeviceID) != id {
		return fmt.Errorf("driver: artefact claims %v but was uploaded for %v",
			hw.DeviceID(prog.DeviceID), id)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return fmt.Errorf("driver: identifier %v was never reserved", id)
	}
	e.Bytecode = append([]byte(nil), code...)
	e.Source = source
	e.Status = StatusPermanent
	return nil
}

// Lookup returns the driver artefact for a peripheral type.
func (r *Repository) Lookup(id hw.DeviceID) (*Entry, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok || e.Bytecode == nil {
		return nil, false
	}
	cp := *e
	cp.Bytecode = append([]byte(nil), e.Bytecode...)
	return &cp, true
}

// List returns all entries ordered by identifier.
func (r *Repository) List() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Entry, 0, len(r.entries))
	for _, e := range r.entries {
		out = append(out, *e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Remove garbage-collects an address (future work in the paper; here a
// plain delete that only succeeds for provisional entries, since permanent
// allocations are immutable).
func (r *Repository) Remove(id hw.DeviceID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.entries[id]
	if !ok {
		return fmt.Errorf("driver: identifier %v not allocated", id)
	}
	if e.Status == StatusPermanent {
		return fmt.Errorf("driver: %v is permanent and cannot be removed", id)
	}
	delete(r.entries, id)
	return nil
}

// Standard peripheral identifiers for the four evaluation devices. The
// values 0xad1cbe01, 0x0a0bbf03 and 0xed3f0ac1 follow the worked examples
// in Figures 8 and 10 of the paper.
const (
	IDTMP36   hw.DeviceID = 0xad1cbe01
	IDHIH4030 hw.DeviceID = 0xad1cbe02
	IDBMP180  hw.DeviceID = 0x0a0bbf03
	IDID20LA  hw.DeviceID = 0xed3f0ac1
)

// StandardDriver describes one shipped driver.
type StandardDriver struct {
	ID   hw.DeviceID
	Name string
	Bus  hw.BusKind
	File string
	// Units describes the values the driver returns (advertised to clients
	// via the units TLV and surfaced in the SDK's typed Readings).
	Units string
}

// StandardDrivers is the shipped driver set (Table 3's four peripherals).
var StandardDrivers = []StandardDriver{
	{ID: IDTMP36, Name: "TMP36", Bus: hw.BusADC, File: "drivers/tmp36.updsl", Units: "0.1°C"},
	{ID: IDHIH4030, Name: "HIH-4030", Bus: hw.BusADC, File: "drivers/hih4030.updsl", Units: "0.1%RH"},
	{ID: IDID20LA, Name: "ID-20LA RFID", Bus: hw.BusUART, File: "drivers/id20la.updsl", Units: "ascii"},
	{ID: IDBMP180, Name: "BMP180 Pressure", Bus: hw.BusI2C, File: "drivers/bmp180.updsl", Units: "0.1°C,Pa"},
}

// Extension peripheral identifiers, allocated under the structured
// namespace of Section 9 (vendor | class | product).
var (
	// IDADXL345: vendor 0x00AD, accelerometer class, product 1.
	IDADXL345 = hw.DeviceID(0x00AD<<16) | hw.DeviceID(hw.ClassAccelerometer)<<8 | 0x01
	// IDRelay: vendor 0x00A1, relay class, product 1.
	IDRelay = hw.DeviceID(0x00A1<<16) | hw.DeviceID(hw.ClassActuatorRelay)<<8 | 0x01
)

// ExtendedDrivers are the extension peripherals beyond the paper's four:
// an SPI accelerometer and an I²C relay actuator.
var ExtendedDrivers = []StandardDriver{
	{ID: IDADXL345, Name: "ADXL345 Accelerometer", Bus: hw.BusSPI, File: "drivers/adxl345.updsl", Units: "mg"},
	{ID: IDRelay, Name: "PCF8574 Relay Bank", Bus: hw.BusI2C, File: "drivers/relay.updsl", Units: "bitmask"},
}

// unitsByID indexes the shipped drivers' unit strings once.
var unitsByID = func() map[hw.DeviceID]string {
	m := make(map[hw.DeviceID]string, len(StandardDrivers)+len(ExtendedDrivers))
	for _, sd := range StandardDrivers {
		m[sd.ID] = sd.Units
	}
	for _, sd := range ExtendedDrivers {
		m[sd.ID] = sd.Units
	}
	return m
}()

// UnitsFor returns the unit string of a shipped driver, or "".
func UnitsFor(id hw.DeviceID) string { return unitsByID[id] }

// UnitsTable returns the units of every shipped driver, keyed by device
// type. Callers must treat the map as read-only.
func UnitsTable() map[hw.DeviceID]string { return unitsByID }

// Source returns the embedded DSL source of a standard driver.
func Source(sd StandardDriver) (string, error) {
	b, err := driverFS.ReadFile(sd.File)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// StandardRepository compiles the shipped drivers and returns a repository
// with all four registered and permanent.
func StandardRepository() (*Repository, error) {
	repo := NewRepository()
	if err := addDrivers(repo, StandardDrivers); err != nil {
		return nil, err
	}
	return repo, nil
}

// FullRepository returns the standard four drivers plus the extension
// peripherals (ADXL345 accelerometer, PCF8574 relay bank).
func FullRepository() (*Repository, error) {
	repo, err := StandardRepository()
	if err != nil {
		return nil, err
	}
	if err := addDrivers(repo, ExtendedDrivers); err != nil {
		return nil, err
	}
	return repo, nil
}

func addDrivers(repo *Repository, drivers []StandardDriver) error {
	for _, sd := range drivers {
		src, err := Source(sd)
		if err != nil {
			return err
		}
		prog, err := dsl.Compile(src, uint32(sd.ID))
		if err != nil {
			return fmt.Errorf("driver: compiling %s: %w", sd.Name, err)
		}
		code, err := prog.Encode()
		if err != nil {
			return err
		}
		if err := repo.Reserve(sd.ID, sd.Name, sd.Bus); err != nil {
			return err
		}
		if err := repo.Upload(sd.ID, code, src); err != nil {
			return err
		}
	}
	return nil
}
