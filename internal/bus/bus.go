// Package bus simulates the hardware interconnects the µPnP bus encapsulates
// (ADC, I²C, SPI, UART) together with behavioural models of the four
// evaluation peripherals from Section 6: the TMP36 analog temperature sensor,
// the HIH-4030 analog humidity sensor, the ID-20LA UART RFID card reader and
// the BMP180 I²C barometric pressure sensor.
//
// The device models are written against the manufacturers' datasheets — the
// same documents the paper's drivers were written against — so that µPnP
// drivers exercise the genuine register- and byte-level interfaces.
package bus

import (
	"errors"
	"fmt"
	"sync"
)

// Environment is the simulated physical world the sensors observe. A single
// Environment can be shared by many sensors.
type Environment struct {
	mu sync.Mutex
	// TemperatureC is ambient temperature in degrees Celsius.
	TemperatureC float64
	// HumidityRH is relative humidity in percent (0–100).
	HumidityRH float64
	// PressurePa is barometric pressure in pascal.
	PressurePa float64
	// AccelX/Y/Z is the acceleration vector in g.
	AccelX, AccelY, AccelZ float64
}

// NewEnvironment returns a temperate default: 25 °C, 40 %RH, 101325 Pa,
// 1 g of gravity on the Z axis.
func NewEnvironment() *Environment {
	return &Environment{TemperatureC: 25, HumidityRH: 40, PressurePa: 101_325, AccelZ: 1}
}

// SetAcceleration updates the acceleration vector (in g).
func (e *Environment) SetAcceleration(x, y, z float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.AccelX, e.AccelY, e.AccelZ = x, y, z
}

// Acceleration returns the current acceleration vector (in g).
func (e *Environment) Acceleration() (x, y, z float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.AccelX, e.AccelY, e.AccelZ
}

// Set atomically updates the environment.
func (e *Environment) Set(tempC, humidityRH, pressurePa float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.TemperatureC, e.HumidityRH, e.PressurePa = tempC, humidityRH, pressurePa
}

// Snapshot returns the current conditions.
func (e *Environment) Snapshot() (tempC, humidityRH, pressurePa float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.TemperatureC, e.HumidityRH, e.PressurePa
}

// ---------------------------------------------------------------------------
// ADC

// AnalogSource is the sensor side of an analog channel: anything that
// produces an output voltage.
type AnalogSource interface {
	// Voltage returns the instantaneous output voltage in volts.
	Voltage() float64
}

// ADC models a successive-approximation converter like the one on the
// ATMega128RFA1: a reference voltage and a resolution in bits.
type ADC struct {
	// Ref is the reference voltage (full-scale), default 3.3 V.
	Ref float64
	// Bits is the resolution, default 10 (AVR).
	Bits uint

	mu     sync.Mutex
	source AnalogSource
}

// NewADC builds an ADC with the AVR defaults (3.3 V reference, 10 bits).
func NewADC() *ADC { return &ADC{Ref: 3.3, Bits: 10} }

// Connect attaches an analog source to the channel (nil disconnects).
func (a *ADC) Connect(src AnalogSource) {
	a.mu.Lock()
	a.source = src
	a.mu.Unlock()
}

// ErrNoSource reports a sample attempt on a floating input.
var ErrNoSource = errors.New("bus: ADC input not connected")

// Sample performs one conversion, clamping at the rails.
func (a *ADC) Sample() (uint16, error) {
	a.mu.Lock()
	src := a.source
	a.mu.Unlock()
	if src == nil {
		return 0, ErrNoSource
	}
	v := src.Voltage()
	if v < 0 {
		v = 0
	}
	if v > a.Ref {
		v = a.Ref
	}
	max := float64(uint32(1)<<a.Bits - 1)
	return uint16(v / a.Ref * max), nil
}

// ---------------------------------------------------------------------------
// I²C

// I2CDevice is a slave on the two-wire bus, addressed by a 7-bit address and
// exposing a register file, the structure virtually all I²C sensors share.
type I2CDevice interface {
	I2CAddr() byte
	WriteReg(reg byte, data []byte) error
	ReadReg(reg byte, n int) ([]byte, error)
}

// I2C models the shared two-wire bus: multiple slaves, one master.
type I2C struct {
	mu      sync.Mutex
	devices map[byte]I2CDevice
}

// NewI2C returns an empty bus.
func NewI2C() *I2C { return &I2C{devices: make(map[byte]I2CDevice)} }

// Attach adds a slave; it fails on address conflicts.
func (b *I2C) Attach(dev I2CDevice) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	addr := dev.I2CAddr()
	if _, dup := b.devices[addr]; dup {
		return fmt.Errorf("bus: I2C address 0x%02x already in use", addr)
	}
	b.devices[addr] = dev
	return nil
}

// Detach removes the slave at addr.
func (b *I2C) Detach(addr byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.devices, addr)
}

// ErrNack reports an unacknowledged address (no such slave).
var ErrNack = errors.New("bus: I2C address not acknowledged")

func (b *I2C) device(addr byte) (I2CDevice, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	dev, ok := b.devices[addr]
	if !ok {
		return nil, fmt.Errorf("%w: 0x%02x", ErrNack, addr)
	}
	return dev, nil
}

// Write performs a master write transaction: START, addr+W, reg, data, STOP.
func (b *I2C) Write(addr, reg byte, data []byte) error {
	dev, err := b.device(addr)
	if err != nil {
		return err
	}
	return dev.WriteReg(reg, data)
}

// Read performs a combined transaction: START, addr+W, reg, RESTART, addr+R,
// n bytes, STOP.
func (b *I2C) Read(addr, reg byte, n int) ([]byte, error) {
	dev, err := b.device(addr)
	if err != nil {
		return nil, err
	}
	return dev.ReadReg(reg, n)
}

// ---------------------------------------------------------------------------
// SPI

// SPIDevice is a full-duplex slave: every transfer clocks bytes both ways.
type SPIDevice interface {
	// Transfer exchanges len(out) bytes, returning the simultaneous input.
	Transfer(out []byte) []byte
}

// SPI models a single-slave SPI bus (chip select is implicit).
type SPI struct {
	mu  sync.Mutex
	dev SPIDevice
}

// NewSPI returns an empty SPI bus.
func NewSPI() *SPI { return &SPI{} }

// Connect attaches the slave (nil disconnects).
func (s *SPI) Connect(dev SPIDevice) {
	s.mu.Lock()
	s.dev = dev
	s.mu.Unlock()
}

// ErrNoSlave reports a transfer with nothing connected.
var ErrNoSlave = errors.New("bus: SPI slave not connected")

// Transfer clocks out bytes and returns the slave's reply.
func (s *SPI) Transfer(out []byte) ([]byte, error) {
	s.mu.Lock()
	dev := s.dev
	s.mu.Unlock()
	if dev == nil {
		return nil, ErrNoSlave
	}
	return dev.Transfer(out), nil
}

// ---------------------------------------------------------------------------
// UART

// UARTConfig is the standard line configuration.
type UARTConfig struct {
	Baud     int
	Parity   Parity
	StopBits int
	DataBits int
}

// Parity of a UART frame.
type Parity uint8

// Parity settings.
const (
	ParityNone Parity = iota
	ParityEven
	ParityOdd
)

// DefaultUARTConfig is 9600 8N1, the ID-20LA's configuration.
var DefaultUARTConfig = UARTConfig{Baud: 9600, Parity: ParityNone, StopBits: 1, DataBits: 8}

// Validate rejects line configurations the hardware cannot produce.
func (c UARTConfig) Validate() error {
	switch {
	case c.Baud < 300 || c.Baud > 2_000_000:
		return fmt.Errorf("bus: unsupported baud rate %d", c.Baud)
	case c.StopBits != 1 && c.StopBits != 2:
		return fmt.Errorf("bus: unsupported stop bits %d", c.StopBits)
	case c.DataBits < 5 || c.DataBits > 9:
		return fmt.Errorf("bus: unsupported data bits %d", c.DataBits)
	case c.Parity > ParityOdd:
		return fmt.Errorf("bus: unsupported parity %d", c.Parity)
	}
	return nil
}

// UART models an asynchronous serial port from the host's perspective: the
// device writes bytes into the host's receive path, the host writes bytes
// toward the device.
type UART struct {
	mu       sync.Mutex
	cfg      UARTConfig
	open     bool
	onRx     func(byte) // host-side receive callback
	toDevice func(byte) // device-side receive callback
}

// NewUART returns a closed port.
func NewUART() *UART { return &UART{} }

// ErrClosed reports use of an unconfigured port.
var ErrClosed = errors.New("bus: UART not initialised")

// Init configures and opens the port.
func (u *UART) Init(cfg UARTConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	u.mu.Lock()
	u.cfg = cfg
	u.open = true
	u.mu.Unlock()
	return nil
}

// Reset restores platform defaults and closes the port.
func (u *UART) Reset() {
	u.mu.Lock()
	u.open = false
	u.onRx = nil
	u.mu.Unlock()
}

// Config returns the current line configuration and whether the port is open.
func (u *UART) Config() (UARTConfig, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.cfg, u.open
}

// OnReceive registers the host's byte-received callback.
func (u *UART) OnReceive(fn func(byte)) {
	u.mu.Lock()
	u.onRx = fn
	u.mu.Unlock()
}

// Write sends bytes from host to device.
func (u *UART) Write(data []byte) error {
	u.mu.Lock()
	open, toDev := u.open, u.toDevice
	u.mu.Unlock()
	if !open {
		return ErrClosed
	}
	if toDev != nil {
		for _, b := range data {
			toDev(b)
		}
	}
	return nil
}

// DeviceSend injects bytes from the device toward the host. Bytes arriving
// while the port is closed are dropped (as on real hardware).
func (u *UART) DeviceSend(data []byte) {
	u.mu.Lock()
	open, fn := u.open, u.onRx
	u.mu.Unlock()
	if !open || fn == nil {
		return
	}
	for _, b := range data {
		fn(b)
	}
}

// OnDeviceReceive registers the device's callback for host->device bytes.
func (u *UART) OnDeviceReceive(fn func(byte)) {
	u.mu.Lock()
	u.toDevice = fn
	u.mu.Unlock()
}
