package bus

import (
	"math"
	"testing"
	"testing/quick"
)

func TestADCSampleTMP36(t *testing.T) {
	env := NewEnvironment()
	adc := NewADC()
	adc.Connect(&TMP36{Env: env})

	env.Set(25, 40, 101_325)
	s, err := adc.Sample()
	if err != nil {
		t.Fatal(err)
	}
	// 25 °C -> 0.75 V -> 0.75/3.3*1023 ≈ 232 counts.
	if s < 230 || s > 235 {
		t.Fatalf("sample = %d, want ~232", s)
	}
	got := TMP36Celsius(s, adc.Ref, adc.Bits)
	if math.Abs(got-25) > 0.5 {
		t.Fatalf("recovered %.2f °C, want 25 ±0.5 (one LSB ≈ 0.32 °C)", got)
	}
}

func TestTMP36RoundTripProperty(t *testing.T) {
	env := NewEnvironment()
	adc := NewADC()
	adc.Connect(&TMP36{Env: env})
	f := func(raw int16) bool {
		tempC := float64(raw % 120) // −119…119 °C, clamped by sensor to −40…125
		env.Set(tempC, 40, 101_325)
		s, err := adc.Sample()
		if err != nil {
			return false
		}
		got := TMP36Celsius(s, adc.Ref, adc.Bits)
		want := math.Max(-40, math.Min(125, tempC))
		return math.Abs(got-want) < 0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestADCClampsAndErrors(t *testing.T) {
	adc := NewADC()
	if _, err := adc.Sample(); err == nil {
		t.Fatal("floating input must error")
	}
	env := NewEnvironment()
	env.Set(125, 0, 0) // 1.75 V, in range
	adc.Connect(&TMP36{Env: env})
	if s, err := adc.Sample(); err != nil || s == 0 {
		t.Fatalf("sample = %d, %v", s, err)
	}
	adc.Connect(nil)
	if _, err := adc.Sample(); err == nil {
		t.Fatal("disconnected input must error")
	}
}

func TestHIH4030RoundTrip(t *testing.T) {
	env := NewEnvironment()
	adc := NewADC()
	adc.Connect(&HIH4030{Env: env})
	for _, rh := range []float64{10, 35, 60, 90} {
		env.Set(25, rh, 101_325)
		s, err := adc.Sample()
		if err != nil {
			t.Fatal(err)
		}
		got := HIH4030Humidity(s, adc.Ref, adc.Bits, 3.3, 25)
		if math.Abs(got-rh) > 1.5 {
			t.Errorf("RH %.0f%%: recovered %.2f%%", rh, got)
		}
	}
}

func TestHIH4030TemperatureCompensation(t *testing.T) {
	env := NewEnvironment()
	sensor := &HIH4030{Env: env}
	env.Set(5, 50, 101_325)
	vCold := sensor.Voltage()
	env.Set(45, 50, 101_325)
	vHot := sensor.Voltage()
	if vCold <= vHot {
		t.Fatalf("sensor output must depend on temperature: cold %.4f V vs hot %.4f V", vCold, vHot)
	}
}

func TestI2CAttachDetach(t *testing.T) {
	b := NewI2C()
	env := NewEnvironment()
	dev := NewBMP180(env)
	if err := b.Attach(dev); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach(dev); err == nil {
		t.Fatal("duplicate address must fail")
	}
	if _, err := b.Read(0x12, 0, 1); err == nil {
		t.Fatal("missing slave must NACK")
	}
	id, err := b.Read(BMP180Addr, BMP180RegChipID, 1)
	if err != nil || id[0] != BMP180ChipID {
		t.Fatalf("chip id read = %v, %v", id, err)
	}
	b.Detach(BMP180Addr)
	if _, err := b.Read(BMP180Addr, BMP180RegChipID, 1); err == nil {
		t.Fatal("detached slave must NACK")
	}
}

func TestSPILoopback(t *testing.T) {
	s := NewSPI()
	if _, err := s.Transfer([]byte{1}); err == nil {
		t.Fatal("no slave must error")
	}
	s.Connect(spiEcho{})
	got, err := s.Transfer([]byte{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != ^byte(1) {
		t.Fatalf("echo = %v", got)
	}
}

type spiEcho struct{}

func (spiEcho) Transfer(out []byte) []byte {
	in := make([]byte, len(out))
	for i, b := range out {
		in[i] = ^b
	}
	return in
}

func TestUARTConfigValidation(t *testing.T) {
	bad := []UARTConfig{
		{Baud: 100, StopBits: 1, DataBits: 8},
		{Baud: 9600, StopBits: 3, DataBits: 8},
		{Baud: 9600, StopBits: 1, DataBits: 4},
		{Baud: 9600, StopBits: 1, DataBits: 8, Parity: 9},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %+v must be invalid", cfg)
		}
	}
	if err := DefaultUARTConfig.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUARTLifecycle(t *testing.T) {
	u := NewUART()
	if err := u.Write([]byte{1}); err == nil {
		t.Fatal("write on closed port must fail")
	}
	if err := u.Init(DefaultUARTConfig); err != nil {
		t.Fatal(err)
	}
	var hostGot, devGot []byte
	u.OnReceive(func(b byte) { hostGot = append(hostGot, b) })
	u.OnDeviceReceive(func(b byte) { devGot = append(devGot, b) })

	u.DeviceSend([]byte{0xaa, 0xbb})
	if err := u.Write([]byte{0x01}); err != nil {
		t.Fatal(err)
	}
	if len(hostGot) != 2 || len(devGot) != 1 {
		t.Fatalf("host %v dev %v", hostGot, devGot)
	}
	u.Reset()
	if _, open := u.Config(); open {
		t.Fatal("reset must close the port")
	}
	u.DeviceSend([]byte{0xcc}) // dropped, not delivered
	if len(hostGot) != 2 {
		t.Fatal("bytes on a closed port must be dropped")
	}
}

func TestID20LAFrame(t *testing.T) {
	u := NewUART()
	if err := u.Init(DefaultUARTConfig); err != nil {
		t.Fatal(err)
	}
	var rx []byte
	u.OnReceive(func(b byte) { rx = append(rx, b) })
	r := NewID20LA(u)
	if err := r.PresentCard("0415AB96C3"); err != nil {
		t.Fatal(err)
	}
	if len(rx) != 16 {
		t.Fatalf("frame length = %d, want 16", len(rx))
	}
	if rx[0] != STX || rx[15] != ETX || rx[13] != CR || rx[14] != LF {
		t.Fatalf("bad framing: % x", rx)
	}

	// Parse the way the Listing 1 driver does: skip CR/LF/STX/ETX, take 12.
	var payload []byte
	for _, c := range rx {
		if c == CR || c == LF || c == STX || c == ETX {
			continue
		}
		payload = append(payload, c)
	}
	if len(payload) != 12 {
		t.Fatalf("payload length = %d, want 12", len(payload))
	}
	if string(payload[:10]) != "0415AB96C3" {
		t.Fatalf("card ID = %q", payload[:10])
	}
	if !ChecksumOK(payload) {
		t.Fatal("checksum must verify")
	}
	payload[0] ^= 1
	if ChecksumOK(payload) {
		t.Fatal("corrupted payload must fail checksum")
	}
}

func TestID20LARejectsBadIDs(t *testing.T) {
	r := NewID20LA(NewUART())
	for _, id := range []string{"", "123", "0415AB96C", "0415AB96C3X", "ZZZZZZZZZZ"} {
		if err := r.PresentCard(id); err == nil {
			t.Errorf("card %q must be rejected", id)
		}
	}
}

func TestChecksumOKEdgeCases(t *testing.T) {
	if ChecksumOK(nil) || ChecksumOK([]byte("short")) {
		t.Fatal("wrong length must fail")
	}
	if ChecksumOK([]byte("GGGGGGGGGGGG")) {
		t.Fatal("non-hex must fail")
	}
}
