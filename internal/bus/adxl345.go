package bus

import "sync"

// ADXL345 models the Analog Devices ADXL345 3-axis accelerometer in its
// 4-wire SPI configuration — an extension peripheral demonstrating the SPI
// path of the µPnP bus (the paper's intro names accelerometers among the
// motivating peripherals).
//
// The model implements the datasheet's SPI framing: the first byte of a
// transfer carries the register address in bits 5:0, the read flag in bit 7
// and the multibyte flag in bit 6; subsequent bytes clock data. Registers:
//
//	0x00      DEVID (reads 0xE5)
//	0x2D      POWER_CTL (bit 3 = measure)
//	0x31      DATA_FORMAT (range bits; the model fixes ±2 g)
//	0x32-0x37 DATAX0..DATAZ1, little-endian int16 per axis, 3.9 mg/LSB
type ADXL345 struct {
	Env *Environment

	mu      sync.Mutex
	measure bool
	regs    map[byte]byte
}

// ADXL345 register addresses and constants.
const (
	ADXLRegDevID      = 0x00
	ADXLRegPowerCtl   = 0x2D
	ADXLRegDataFormat = 0x31
	ADXLRegDataX0     = 0x32

	ADXLDevID      = 0xE5
	ADXLMeasureBit = 0x08

	adxlReadFlag  = 0x80
	adxlMultiFlag = 0x40

	// ADXLScaleMilliG is the ±2 g full-resolution scale factor.
	ADXLScaleMilliG = 3.9
)

// NewADXL345 builds an accelerometer observing env.
func NewADXL345(env *Environment) *ADXL345 {
	return &ADXL345{Env: env, regs: map[byte]byte{}}
}

// Transfer implements SPIDevice.
func (d *ADXL345) Transfer(out []byte) []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	in := make([]byte, len(out))
	if len(out) == 0 {
		return in
	}
	cmd := out[0]
	reg := cmd & 0x3f
	read := cmd&adxlReadFlag != 0
	multi := cmd&adxlMultiFlag != 0
	for i := 1; i < len(out); i++ {
		if read {
			in[i] = d.readReg(reg)
		} else {
			d.writeReg(reg, out[i])
		}
		if multi {
			reg++
		}
	}
	return in
}

func (d *ADXL345) writeReg(reg, v byte) {
	switch reg {
	case ADXLRegPowerCtl:
		d.measure = v&ADXLMeasureBit != 0
		d.regs[reg] = v
	case ADXLRegDataFormat:
		d.regs[reg] = v
	}
}

func (d *ADXL345) readReg(reg byte) byte {
	switch {
	case reg == ADXLRegDevID:
		return ADXLDevID
	case reg >= ADXLRegDataX0 && reg <= ADXLRegDataX0+5:
		if !d.measure {
			return 0 // standby: data registers read zero
		}
		ax, ay, az := d.Env.Acceleration()
		counts := [3]int16{
			int16(ax * 1000 / ADXLScaleMilliG),
			int16(ay * 1000 / ADXLScaleMilliG),
			int16(az * 1000 / ADXLScaleMilliG),
		}
		idx := reg - ADXLRegDataX0
		v := counts[idx/2]
		if idx%2 == 0 {
			return byte(v) // low byte first (little-endian)
		}
		return byte(uint16(v) >> 8)
	default:
		return d.regs[reg]
	}
}

// PCF8574Relay models a relay bank behind a PCF8574 I²C port expander — the
// classic way to hang actuators off a two-wire bus. Writing a byte sets the
// eight relay outputs; reading returns the current state. Address 0x20.
type PCF8574Relay struct {
	mu    sync.Mutex
	state byte
}

// PCF8574Addr is the expander's I²C address (A0..A2 grounded).
const PCF8574Addr = 0x20

// I2CAddr implements I2CDevice.
func (r *PCF8574Relay) I2CAddr() byte { return PCF8574Addr }

// WriteReg implements I2CDevice. The PCF8574 has no register file: any
// write sets the port; the register byte is treated as the data when no
// payload follows (plain byte write) to match common driver idioms.
func (r *PCF8574Relay) WriteReg(reg byte, data []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(data) == 0 {
		r.state = reg
		return nil
	}
	r.state = data[len(data)-1]
	return nil
}

// ReadReg implements I2CDevice: returns the port state.
func (r *PCF8574Relay) ReadReg(reg byte, n int) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]byte, n)
	for i := range out {
		out[i] = r.state
	}
	return out, nil
}

// State returns the relay outputs (bit i = relay i energised).
func (r *PCF8574Relay) State() byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}
