package bus

import (
	"math"
	"testing"
	"testing/quick"
)

// TestBMP180DatasheetExample verifies the compensation algorithm against the
// worked example in the Bosch datasheet (section 3.5): UT=27898, UP=23843,
// oss=0 with the example calibration must yield T=15.0 °C and p=69964 Pa.
func TestBMP180DatasheetExample(t *testing.T) {
	temp, press := BMP180Compensate(27898, 23843, 0, DatasheetCalibration)
	if temp != 150 {
		t.Errorf("temperature = %d (0.1 °C), want 150", temp)
	}
	if press != 69964 {
		t.Errorf("pressure = %d Pa, want 69964", press)
	}
}

func TestBMP180DeviceRoundTrip(t *testing.T) {
	env := NewEnvironment()
	env.Set(21.5, 40, 98_700)
	dev := NewBMP180(env)
	b := NewI2C()
	if err := b.Attach(dev); err != nil {
		t.Fatal(err)
	}

	// Temperature conversion, exactly as a driver would do it.
	if err := b.Write(BMP180Addr, BMP180RegCtrl, []byte{BMP180CmdTemp}); err != nil {
		t.Fatal(err)
	}
	raw, err := b.Read(BMP180Addr, BMP180RegOutMSB, 2)
	if err != nil {
		t.Fatal(err)
	}
	ut := uint16(raw[0])<<8 | uint16(raw[1])

	// Pressure conversion at oss=0.
	if err := b.Write(BMP180Addr, BMP180RegCtrl, []byte{BMP180CmdPressure}); err != nil {
		t.Fatal(err)
	}
	raw, err = b.Read(BMP180Addr, BMP180RegOutMSB, 3)
	if err != nil {
		t.Fatal(err)
	}
	up := (uint32(raw[0])<<16 | uint32(raw[1])<<8 | uint32(raw[2])) >> 8

	temp, press := BMP180Compensate(ut, up, 0, dev.Calibration())
	if math.Abs(float64(temp)-215) > 1 {
		t.Errorf("temperature = %d (0.1 °C), want ~215", temp)
	}
	if math.Abs(float64(press)-98_700) > 5 {
		t.Errorf("pressure = %d Pa, want ~98700", press)
	}
}

func TestBMP180AllOversamplingModes(t *testing.T) {
	env := NewEnvironment()
	env.Set(25, 40, 101_325)
	dev := NewBMP180(env)
	for oss := uint(0); oss <= 3; oss++ {
		cmd := byte(BMP180CmdPressure | oss<<6)
		if err := dev.WriteReg(BMP180RegCtrl, []byte{cmd}); err != nil {
			t.Fatal(err)
		}
		raw, err := dev.ReadReg(BMP180RegOutMSB, 3)
		if err != nil {
			t.Fatal(err)
		}
		up := (uint32(raw[0])<<16 | uint32(raw[1])<<8 | uint32(raw[2])) >> (8 - oss)

		if err := dev.WriteReg(BMP180RegCtrl, []byte{BMP180CmdTemp}); err != nil {
			t.Fatal(err)
		}
		rawT, err := dev.ReadReg(BMP180RegOutMSB, 2)
		if err != nil {
			t.Fatal(err)
		}
		ut := uint16(rawT[0])<<8 | uint16(rawT[1])

		_, press := BMP180Compensate(ut, up, oss, dev.Calibration())
		if math.Abs(float64(press)-101_325) > 8 {
			t.Errorf("oss=%d: pressure = %d Pa, want ~101325", oss, press)
		}
		if BMP180ConversionTime(cmd) <= 0 {
			t.Errorf("oss=%d: conversion time must be positive", oss)
		}
	}
}

func TestBMP180RoundTripProperty(t *testing.T) {
	env := NewEnvironment()
	dev := NewBMP180(env)
	f := func(tRaw, pRaw uint16) bool {
		tempC := -20 + float64(tRaw%700)/10 // −20 … 49.9 °C
		pa := 87_000 + float64(pRaw%2_1000) // 87 kPa … 108 kPa
		env.Set(tempC, 40, pa)

		if err := dev.WriteReg(BMP180RegCtrl, []byte{BMP180CmdTemp}); err != nil {
			return false
		}
		raw, err := dev.ReadReg(BMP180RegOutMSB, 2)
		if err != nil {
			return false
		}
		ut := uint16(raw[0])<<8 | uint16(raw[1])
		if err := dev.WriteReg(BMP180RegCtrl, []byte{BMP180CmdPressure}); err != nil {
			return false
		}
		raw, err = dev.ReadReg(BMP180RegOutMSB, 3)
		if err != nil {
			return false
		}
		up := (uint32(raw[0])<<16 | uint32(raw[1])<<8 | uint32(raw[2])) >> 8

		temp, press := BMP180Compensate(ut, up, 0, dev.Calibration())
		return math.Abs(float64(temp)-tempC*10) <= 2 && math.Abs(float64(press)-pa) <= 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestBMP180CalibrationReadout(t *testing.T) {
	dev := NewBMP180(NewEnvironment())
	raw, err := dev.ReadReg(BMP180RegCalib, 22)
	if err != nil {
		t.Fatal(err)
	}
	ac1 := int16(uint16(raw[0])<<8 | uint16(raw[1]))
	if ac1 != DatasheetCalibration.AC1 {
		t.Errorf("AC1 = %d, want %d", ac1, DatasheetCalibration.AC1)
	}
	md := int16(uint16(raw[20])<<8 | uint16(raw[21]))
	if md != DatasheetCalibration.MD {
		t.Errorf("MD = %d, want %d", md, DatasheetCalibration.MD)
	}
}

func TestBMP180ErrorPaths(t *testing.T) {
	dev := NewBMP180(NewEnvironment())
	if _, err := dev.ReadReg(BMP180RegOutMSB, 2); err == nil {
		t.Error("reading results before a conversion must fail")
	}
	if err := dev.WriteReg(0x00, []byte{1}); err == nil {
		t.Error("writing a read-only register must fail")
	}
	if err := dev.WriteReg(BMP180RegCtrl, []byte{0x77}); err == nil {
		t.Error("unknown control command must fail")
	}
	if _, err := dev.ReadReg(0x10, 1); err == nil {
		t.Error("reading an unmapped register must fail")
	}
}
