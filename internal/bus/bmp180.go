package bus

import (
	"fmt"
	"sync"
)

// BMP180 models the Bosch BMP180 digital barometric pressure sensor — the
// I²C peripheral of the evaluation (Section 6). The model implements the
// genuine datasheet register interface:
//
//   - 7-bit address 0x77,
//   - calibration EEPROM (11 coefficients AC1..MD) at registers 0xAA..0xBF,
//   - chip-id register 0xD0 (reads 0x55),
//   - control register 0xF4: write 0x2E to start a temperature conversion,
//     0x34 | oss<<6 to start a pressure conversion,
//   - result registers 0xF6..0xF8 (MSB, LSB, XLSB).
//
// Raw conversion values are produced by numerically inverting the datasheet
// compensation algorithm against the simulated Environment, so a driver
// running the real BMP180 math recovers the simulated temperature and
// pressure.
type BMP180 struct {
	Env *Environment

	mu      sync.Mutex
	calib   BMP180Calibration
	ctrl    byte
	result  [3]byte
	pending bool
}

// BMP180Addr is the fixed I²C slave address.
const BMP180Addr = 0x77

// BMP180ChipID is the value of register 0xD0.
const BMP180ChipID = 0x55

// BMP180 register map (datasheet table 5).
const (
	BMP180RegCalib  = 0xAA
	BMP180RegChipID = 0xD0
	BMP180RegCtrl   = 0xF4
	BMP180RegOutMSB = 0xF6

	BMP180CmdTemp     = 0x2E
	BMP180CmdPressure = 0x34
)

// BMP180Calibration holds the 11 per-device coefficients from the
// calibration EEPROM.
type BMP180Calibration struct {
	AC1, AC2, AC3 int16
	AC4, AC5, AC6 uint16
	B1, B2        int16
	MB, MC, MD    int16
}

// DatasheetCalibration is the worked example from the BMP180 datasheet
// (section 3.5), used as the default for simulated devices so that the
// arithmetic can be verified against the published example.
var DatasheetCalibration = BMP180Calibration{
	AC1: 408, AC2: -72, AC3: -14383,
	AC4: 32741, AC5: 32757, AC6: 23153,
	B1: 6190, B2: 4,
	MB: -32768, MC: -8711, MD: 2868,
}

// NewBMP180 builds a sensor observing env with the datasheet example
// calibration.
func NewBMP180(env *Environment) *BMP180 {
	return &BMP180{Env: env, calib: DatasheetCalibration}
}

// Calibration returns the device's coefficient set.
func (d *BMP180) Calibration() BMP180Calibration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.calib
}

// I2CAddr implements I2CDevice.
func (d *BMP180) I2CAddr() byte { return BMP180Addr }

// WriteReg implements I2CDevice. Only the control register is writable.
func (d *BMP180) WriteReg(reg byte, data []byte) error {
	if reg != BMP180RegCtrl || len(data) != 1 {
		return fmt.Errorf("bus: BMP180 write to unsupported register 0x%02x", reg)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ctrl = data[0]
	switch {
	case d.ctrl == BMP180CmdTemp:
		ut := d.rawTemperature()
		d.result = [3]byte{byte(ut >> 8), byte(ut), 0}
		d.pending = true
	case d.ctrl&0x3f == BMP180CmdPressure:
		oss := uint((d.ctrl >> 6) & 0x3)
		up := d.rawPressure(oss)
		shifted := up << (8 - oss)
		d.result = [3]byte{byte(shifted >> 16), byte(shifted >> 8), byte(shifted)}
		d.pending = true
	default:
		return fmt.Errorf("bus: BMP180 unknown control command 0x%02x", d.ctrl)
	}
	return nil
}

// ReadReg implements I2CDevice.
func (d *BMP180) ReadReg(reg byte, n int) ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	switch {
	case reg == BMP180RegChipID && n >= 1:
		return []byte{BMP180ChipID}, nil
	case reg >= BMP180RegCalib && int(reg)+n <= BMP180RegCalib+22:
		buf := d.calibBytes()
		off := int(reg - BMP180RegCalib)
		return buf[off : off+n], nil
	case reg >= BMP180RegOutMSB && int(reg)+n <= BMP180RegOutMSB+3:
		if !d.pending {
			return nil, fmt.Errorf("bus: BMP180 read with no conversion started")
		}
		off := int(reg - BMP180RegOutMSB)
		return d.result[off : off+n], nil
	default:
		return nil, fmt.Errorf("bus: BMP180 read of unsupported register 0x%02x len %d", reg, n)
	}
}

func (d *BMP180) calibBytes() []byte {
	c := d.calib
	vals := []uint16{
		uint16(c.AC1), uint16(c.AC2), uint16(c.AC3),
		c.AC4, c.AC5, c.AC6,
		uint16(c.B1), uint16(c.B2),
		uint16(c.MB), uint16(c.MC), uint16(c.MD),
	}
	buf := make([]byte, 0, 22)
	for _, v := range vals {
		buf = append(buf, byte(v>>8), byte(v))
	}
	return buf
}

// rawTemperature inverts the compensation formula: find UT whose compensated
// temperature matches the environment. Monotone in UT, so binary search.
func (d *BMP180) rawTemperature() uint16 {
	tempC, _, _ := d.Env.Snapshot()
	target := int32(tempC * 10) // compensated output is in 0.1 °C
	lo, hi := uint16(0), uint16(0xffff)
	for lo < hi {
		mid := uint16((uint32(lo) + uint32(hi)) / 2)
		t, _ := BMP180Compensate(mid, 0, 0, d.calib)
		if t < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// rawPressure finds UP whose compensated pressure matches the environment at
// the current temperature. Monotone in UP, so binary search.
func (d *BMP180) rawPressure(oss uint) uint32 {
	tempC, _, pa := d.Env.Snapshot()
	_ = tempC
	ut := d.rawTemperature()
	target := int64(pa)
	lo, hi := uint32(0), uint32(1)<<(16+oss)-1
	for lo < hi {
		mid := (lo + hi) / 2
		p := compensatePressureSigned(ut, mid, oss, d.calib)
		if p < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// compensatePressureSigned mirrors the datasheet pressure math but keeps B7
// signed, so that UP values below B3 (which would underflow the uint32
// algorithm) sort as very low pressures. This keeps the function monotone in
// UP across the whole search range.
func compensatePressureSigned(ut uint16, up uint32, oss uint, c BMP180Calibration) int64 {
	x1 := (int32(ut) - int32(c.AC6)) * int32(c.AC5) >> 15
	x2 := int32(c.MC) << 11 / (x1 + int32(c.MD))
	b5 := x1 + x2
	b6 := b5 - 4000
	x1 = (int32(c.B2) * (b6 * b6 >> 12)) >> 11
	x2 = int32(c.AC2) * b6 >> 11
	x3 := x1 + x2
	b3 := (((int32(c.AC1)*4 + x3) << oss) + 2) / 4
	x1 = int32(c.AC3) * b6 >> 13
	x2 = (int32(c.B1) * (b6 * b6 >> 12)) >> 16
	x3 = ((x1 + x2) + 2) >> 2
	b4 := uint32(c.AC4) * uint32(x3+32768) >> 15
	b7 := (int64(up) - int64(b3)) * int64(50000>>oss)
	var p int64
	if b7 < 0x80000000 && b7 > -0x80000000 {
		p = b7 * 2 / int64(b4)
	} else {
		p = b7 / int64(b4) * 2
	}
	x1 = int32((p >> 8) * (p >> 8))
	x1 = (x1 * 3038) >> 16
	x2 = int32((-7357 * p) >> 16)
	return p + int64((x1+x2+3791)>>4)
}

// BMP180Compensate runs the exact integer compensation algorithm from the
// datasheet (figure 4): given raw readings UT and UP it returns the true
// temperature in 0.1 °C and the true pressure in Pa. This is the math a
// BMP180 driver must implement.
func BMP180Compensate(ut uint16, up uint32, oss uint, c BMP180Calibration) (temp01C, pressurePa int32) {
	x1 := (int32(ut) - int32(c.AC6)) * int32(c.AC5) >> 15
	x2 := int32(c.MC) << 11 / (x1 + int32(c.MD))
	b5 := x1 + x2
	temp01C = (b5 + 8) >> 4

	b6 := b5 - 4000
	x1 = (int32(c.B2) * (b6 * b6 >> 12)) >> 11
	x2 = int32(c.AC2) * b6 >> 11
	x3 := x1 + x2
	b3 := (((int32(c.AC1)*4 + x3) << oss) + 2) / 4
	x1 = int32(c.AC3) * b6 >> 13
	x2 = (int32(c.B1) * (b6 * b6 >> 12)) >> 16
	x3 = ((x1 + x2) + 2) >> 2
	b4 := uint32(c.AC4) * uint32(x3+32768) >> 15
	b7 := (up - uint32(b3)) * (50000 >> oss)
	var p int32
	if b7 < 0x80000000 {
		p = int32(b7 * 2 / b4)
	} else {
		p = int32(b7/b4) * 2
	}
	x1 = (p >> 8) * (p >> 8)
	x1 = (x1 * 3038) >> 16
	x2 = (-7357 * p) >> 16
	pressurePa = p + (x1+x2+3791)>>4
	return temp01C, pressurePa
}

// BMP180ConversionTime returns the datasheet maximum conversion time for a
// measurement, used by drivers to schedule their split-phase reads.
func BMP180ConversionTime(cmd byte) (ms int) {
	if cmd == BMP180CmdTemp {
		return 5 // 4.5 ms max
	}
	switch (cmd >> 6) & 0x3 {
	case 0:
		return 5 // ultra low power: 4.5 ms
	case 1:
		return 8 // standard: 7.5 ms
	case 2:
		return 14 // high resolution: 13.5 ms
	default:
		return 26 // ultra high resolution: 25.5 ms
	}
}
